// Quickstart: simulate a Shinjuku-Offload server (the paper's Figure 2
// configuration) under the bimodal workload and print its latency profile.
// The configuration is the checked-in scenarios/quickstart.json preset,
// assembled through the scenario registry.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"mindgap/internal/dist"
	"mindgap/internal/loadgen"
	"mindgap/internal/scenario"
	"mindgap/internal/sim"
	"mindgap/internal/stats"
	"mindgap/internal/task"
	"mindgap/scenarios"
)

func main() {
	// 1. A scenario: the declarative description of what to simulate.
	//    scenarios/quickstart.json pins the paper's SmartNIC-offloaded
	//    scheduler with 4 host workers, up to 4 outstanding requests per
	//    worker (§3.4.5), a 10µs preemption slice (§3.4.4), and Figure 2's
	//    bimodal mix — 99.5% of requests take 5µs, 0.5% take 100µs — at
	//    400k requests/second, open loop.
	preset, err := scenarios.Load("quickstart")
	if err != nil {
		log.Fatal(err)
	}
	spec := preset.SpecFor(0)
	workload, err := dist.Parse(spec.Workload)
	if err != nil {
		log.Fatal(err)
	}

	// 2. A simulation engine: deterministic, nanosecond-resolution.
	eng := sim.New()

	// 3. The system under test, built by the registry from the spec.
	factory, err := scenario.Build(spec)
	if err != nil {
		log.Fatal(err)
	}
	var latency stats.Histogram
	completed := 0
	sys := factory(eng, nil, func(r *task.Request) {
		latency.Record(r.Latency(eng.Now()))
		completed++
		if completed == 200_000 {
			eng.Halt()
		}
	})

	// 4. The workload generator, driven by the spec's distribution and load.
	loadgen.New(eng, loadgen.Config{
		RPS:     spec.Load.RPS,
		Service: workload,
		Seed:    spec.Seed,
	}, sys.Inject).Start()

	// 5. Run and report.
	start := time.Now()
	eng.Run()
	fmt.Printf("simulated %v of server time in %v of wall time\n",
		eng.Now().Duration().Round(time.Millisecond), time.Since(start).Round(time.Millisecond))
	fmt.Printf("completed: %d requests at %.0f req/s\n",
		completed, float64(completed)/eng.Now().Duration().Seconds())
	fmt.Printf("latency:   p50=%v  p99=%v  p99.9=%v  max=%v\n",
		latency.P50(), latency.P99(), latency.P999(), latency.Max())
	fmt.Printf("central queue now: %d requests\n", sys.(interface{ QueueLen() int }).QueueLen())
}
