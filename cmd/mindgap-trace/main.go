// Command mindgap-trace runs a short traced simulation of Shinjuku-Offload
// and prints complete request lifecycles — a debugging lens into the
// scheduler: arrival, NIC ingress, central-queue entry, dispatch, worker
// start, preemptions, completion, and client response, each with its
// simulated timestamp.
//
// The -format flag selects the output: "text" (default) prints per-request
// lifecycles, "chrome" emits Chrome trace-event JSON that opens directly
// in ui.perfetto.dev or chrome://tracing (one track per worker core, one
// async span per request), and "json" dumps the raw event stream as a
// JSON array.
//
// Usage:
//
//	mindgap-trace                      # trace 5 requests on the default mix
//	mindgap-trace -n 3 -dist fixed:30µs -slice 10µs -show preempted
//	mindgap-trace -format chrome > trace.json   # then open ui.perfetto.dev
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"mindgap/internal/core"
	"mindgap/internal/dist"
	"mindgap/internal/loadgen"
	"mindgap/internal/params"
	"mindgap/internal/sim"
	"mindgap/internal/task"
	"mindgap/internal/trace"
)

func main() {
	var (
		n        = flag.Int("n", 5, "number of request lifecycles to print")
		workers  = flag.Int("workers", 2, "worker cores")
		k        = flag.Int("outstanding", 2, "per-worker outstanding limit")
		slice    = flag.Duration("slice", 10*time.Microsecond, "preemption quantum")
		distSpec = flag.String("dist", "bimodal:0.8:3µs:40µs", "service-time distribution")
		rps      = flag.Float64("rps", 200_000, "offered load")
		show     = flag.String("show", "any", "which lifecycles: any, preempted")
		format   = flag.String("format", "text", "output format: text, chrome (Perfetto/chrome://tracing), json")
	)
	flag.Parse()
	switch *format {
	case "text", "chrome", "json":
	default:
		log.Fatalf("mindgap-trace: unknown -format %q (want text, chrome, or json)", *format)
	}

	svc, err := dist.Parse(*distSpec)
	if err != nil {
		log.Fatalf("mindgap-trace: %v", err)
	}

	eng := sim.New()
	buf := trace.New(0)
	completions := 0
	sys := core.NewOffload(eng, core.OffloadConfig{
		P:           params.Default(),
		Workers:     *workers,
		Outstanding: *k,
		Slice:       *slice,
		Tracer:      buf,
	}, nil, func(*task.Request) {
		completions++
		if completions >= 500 {
			eng.Halt()
		}
	})
	loadgen.New(eng, loadgen.Config{RPS: *rps, Service: svc, Seed: 7}, sys.Inject).Start()
	eng.Run()

	if err := buf.ValidateAll(); err != nil {
		log.Fatalf("mindgap-trace: causality violation: %v", err)
	}

	switch *format {
	case "chrome":
		if err := trace.WriteChrome(os.Stdout, buf); err != nil {
			log.Fatalf("mindgap-trace: %v", err)
		}
		return
	case "json":
		if err := trace.WriteJSON(os.Stdout, buf); err != nil {
			log.Fatalf("mindgap-trace: %v", err)
		}
		return
	}

	printed := 0
	for _, id := range buf.Requests() {
		if printed >= *n {
			break
		}
		lc := buf.Lifecycle(id)
		if len(lc) == 0 || lc[len(lc)-1].Kind != trace.Respond {
			continue // still in flight at halt
		}
		if *show == "preempted" {
			preempted := false
			for _, e := range lc {
				if e.Kind == trace.Preempt {
					preempted = true
				}
			}
			if !preempted {
				continue
			}
		}
		fmt.Printf("request %d (%d events, latency %v):\n", id,
			len(lc), lc[len(lc)-1].At.Sub(lc[0].At))
		fmt.Print(indent(buf.Format(id)))
		printed++
	}
	if printed == 0 {
		fmt.Println("no matching lifecycles; try -show any or a longer run")
	}
	fmt.Printf("traced %d events across %d requests (%d truncated)\n",
		buf.Len(), len(buf.Requests()), buf.Truncated())
}

func indent(s string) string {
	out := ""
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out += "  " + s[start:i+1]
			start = i + 1
		}
	}
	return out
}
