package experiment

import (
	"bytes"
	"context"
	"runtime"
	"testing"
	"time"

	"mindgap/internal/params"
	"mindgap/internal/runner"
)

// testQuality keeps sweep tests fast while still crossing the saturation
// knee (so truncation is exercised).
var testQuality = Quality{Warmup: 500, Measure: 3_000, Seed: 7}

// renderFigure executes a spec at the given parallelism and returns its
// rendered CSV bytes.
func renderFigure(t *testing.T, spec FigureSpec, parallelism int) []byte {
	t.Helper()
	f, err := spec.Run(context.Background(), &runner.Runner{Parallelism: parallelism})
	if err != nil {
		t.Fatalf("run (j=%d): %v", parallelism, err)
	}
	var buf bytes.Buffer
	if err := f.WriteCSV(&buf); err != nil {
		t.Fatalf("render: %v", err)
	}
	return buf.Bytes()
}

// TestFigureByteIdenticalAcrossParallelism is the refactor's headline
// acceptance check in miniature: a real figure rendered at -j1 and at
// GOMAXPROCS parallelism must be byte-identical, including where the
// saturation rule truncates each curve.
func TestFigureByteIdenticalAcrossParallelism(t *testing.T) {
	spec := Figure2Spec(testQuality)
	serial := renderFigure(t, spec, 1)
	for _, par := range []int{4, runtime.GOMAXPROCS(0)} {
		if got := renderFigure(t, spec, par); !bytes.Equal(serial, got) {
			t.Fatalf("figure2 CSV differs between j=1 and j=%d:\n--- j=1 ---\n%s\n--- j=%d ---\n%s",
				par, serial, par, got)
		}
	}
	if len(bytes.TrimSpace(serial)) == 0 {
		t.Fatal("rendered figure is empty")
	}
}

// TestFigureCancellation cancels a figure sweep up front: the spec must
// return the context error and an empty (but well-formed) figure rather
// than hanging or panicking.
func TestFigureCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	f, err := Figure2Spec(testQuality).Run(ctx, &runner.Runner{Parallelism: 2})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(f.Series) != 2 {
		t.Fatalf("got %d series labels, want 2 (with empty prefixes)", len(f.Series))
	}
	for _, s := range f.Series {
		if len(s.Results) != 0 {
			t.Fatalf("series %q has %d results before any point could run", s.Label, len(s.Results))
		}
	}
}

// TestMultiTenantComparisonWith checks the concurrent FIFO/priority pair
// matches two direct serial runs.
func TestMultiTenantComparisonWith(t *testing.T) {
	cfg := MultiTenantConfig{
		P:       params.Default(),
		Workers: 2, Outstanding: 2, Slice: 10 * time.Microsecond,
		Tenants: DefaultTenants(),
		Quality: Quality{Warmup: 200, Measure: 1_000, Seed: 7},
	}
	cmp, err := MultiTenantComparisonWith(context.Background(), &runner.Runner{Parallelism: 2}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	serialFIFO := RunMultiTenant(cfg)
	prio := cfg
	prio.Priority = true
	serialPrio := RunMultiTenant(prio)
	for i := range serialFIFO {
		if cmp.FIFO[i] != serialFIFO[i] {
			t.Fatalf("fifo tenant %d: concurrent %+v != serial %+v", i, cmp.FIFO[i], serialFIFO[i])
		}
		if cmp.Priority[i] != serialPrio[i] {
			t.Fatalf("priority tenant %d: concurrent %+v != serial %+v", i, cmp.Priority[i], serialPrio[i])
		}
	}
}
