package nicmodel

import (
	"fmt"

	"mindgap/internal/wire"
)

// This file models the FlexNIC-style match-action pipeline of §2.3:
// "FlexNIC uses a match-action (M+A) pipeline to modify incoming packets
// and either send responses via the network or steer packets to specific
// CPU cores... packet steering is specified by the M+A rules, such as a
// key-based hash in a key-value store."
//
// The pipeline is what existing programmable NICs give you *without* the
// paper's proposal: arbitrary stateless steering, but no view of core
// availability or request progress. The informed scheduler subsumes it.

// Verdict is a match-action outcome.
type Verdict int

const (
	// VerdictPass falls through to the next rule (or the default action).
	VerdictPass Verdict = iota
	// VerdictSteer delivers the frame to the rule's target function.
	VerdictSteer
	// VerdictDrop discards the frame (e.g. an ACL or overload rule).
	VerdictDrop
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictPass:
		return "pass"
	case VerdictSteer:
		return "steer"
	case VerdictDrop:
		return "drop"
	}
	return fmt.Sprintf("verdict(%d)", int(v))
}

// Rule is one match-action entry. Match inspects the frame (stateless, as
// in hardware); on a match the rule's verdict applies.
type Rule struct {
	// Name labels the rule in counters and diagnostics.
	Name string
	// Match reports whether the rule fires for this frame.
	Match func(Frame) bool
	// Verdict is the action on match (VerdictPass makes the rule a
	// counter-only tap).
	Verdict Verdict
	// Target is the steering destination for VerdictSteer.
	Target wire.MAC

	hits uint64
}

// Pipeline is an ordered match-action table evaluated per frame.
type Pipeline struct {
	rules []*Rule
	// defaultTarget receives frames no rule steers; the zero MAC means
	// such frames are dropped (counted by the NIC as unknown-MAC).
	defaultTarget wire.MAC
	evaluated     uint64
	dropped       uint64
}

// NewPipeline creates a pipeline with the given default steering target.
func NewPipeline(defaultTarget wire.MAC) *Pipeline {
	return &Pipeline{defaultTarget: defaultTarget}
}

// Add appends a rule and returns it (for reading hit counters later). It
// panics on a steering rule without a Match or on an unnamed rule, since
// rules are static configuration.
func (p *Pipeline) Add(r Rule) *Rule {
	if r.Name == "" {
		panic("nicmodel: match-action rule needs a name")
	}
	if r.Match == nil {
		panic("nicmodel: match-action rule needs a match predicate")
	}
	rule := &r
	p.rules = append(p.rules, rule)
	return rule
}

// Apply evaluates the pipeline for a frame, returning the (possibly
// re-targeted) frame and whether it should be delivered.
func (p *Pipeline) Apply(f Frame) (Frame, bool) {
	p.evaluated++
	for _, r := range p.rules {
		if !r.Match(f) {
			continue
		}
		r.hits++
		switch r.Verdict {
		case VerdictSteer:
			f.Dst = r.Target
			return f, true
		case VerdictDrop:
			p.dropped++
			return f, false
		case VerdictPass:
			// counter-only tap: keep evaluating
		}
	}
	f.Dst = p.defaultTarget
	return f, true
}

// Hits returns a rule's match count.
func (r *Rule) Hits() uint64 { return r.hits }

// Evaluated returns how many frames the pipeline processed.
func (p *Pipeline) Evaluated() uint64 { return p.evaluated }

// Dropped returns how many frames drop rules discarded.
func (p *Pipeline) Dropped() uint64 { return p.dropped }

// Ingress runs a frame through the pipeline and, if it survives, steers it
// through the NIC. It reports whether the frame was delivered to a ring.
func (n *NIC) Ingress(p *Pipeline, f Frame) bool {
	out, ok := p.Apply(f)
	if !ok {
		return false
	}
	return n.Send(out)
}
