package experiment

import (
	"bytes"
	"context"
	"testing"

	"mindgap/internal/runner"
	"mindgap/internal/scenario"
)

// smallFlowRulePreset shrinks the checked-in figure-flowrule preset to
// test size: runtime quality instead of the pinned counts, and a short
// fsweep grid.
func smallFlowRulePreset(t *testing.T) scenario.Preset {
	t.Helper()
	p := mustPreset("figure-flowrule")
	load := *p.Load
	load.FSweep = &scenario.FSweep{Lo: 256, Hi: 4096, Mul: 4}
	p.Load = &load
	for i := range p.Series {
		p.Series[i].Quality = nil
	}
	return p
}

// TestFlowRuleFigureParallelismInvariant pins the acceptance property
// that a figure-flowrule run is byte-identical at -j1 and -j4: flow
// records, rule tables, and telemetry registries are all per-point
// state, so runner parallelism must not leak into results.
func TestFlowRuleFigureParallelismInvariant(t *testing.T) {
	q := Quality{Warmup: 300, Measure: 2000, Seed: 7}
	render := func(parallelism int) []byte {
		spec, err := PresetFigureSpec(smallFlowRulePreset(t), q)
		if err != nil {
			t.Fatal(err)
		}
		f, err := spec.Run(context.Background(), &runner.Runner{Parallelism: parallelism})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := f.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := render(1)
	parallel := render(4)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("figure-flowrule output differs between -j1 and -j4:\n-- j1 --\n%s\n-- j4 --\n%s", serial, parallel)
	}
}

// TestFlowRuleFigureShowsCrossover pins the X14 shape on the shrunken
// grid: every series must be healthy (unsaturated) at the smallest
// population, and the eager threshold-4 policy must be saturated even
// there — its insertion pipeline is flooded by rat flows.
func TestFlowRuleFigureShowsCrossover(t *testing.T) {
	q := Quality{Warmup: 300, Measure: 2000, Seed: 7}
	spec, err := PresetFigureSpec(smallFlowRulePreset(t), q)
	if err != nil {
		t.Fatal(err)
	}
	f, err := spec.Run(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range f.Series {
		if len(s.Results) == 0 {
			t.Fatalf("series %q has no points", s.Label)
		}
		first := s.Results[0]
		if s.Label == "threshold 4 (offload everything)" {
			if !first.Saturated {
				t.Errorf("series %q: expected saturation at %v flows (flooded insertion pipeline)",
					s.Label, first.Point.OfferedRPS)
			}
			continue
		}
		if first.Saturated {
			t.Errorf("series %q: saturated at the smallest population %v flows",
				s.Label, first.Point.OfferedRPS)
		}
	}
}

// TestFlowRuleTableRows checks the detail table's telemetry plumbing on
// the full preset: every row must carry a coherent packet split and the
// policies must differ in the direction the model predicts.
func TestFlowRuleTableRows(t *testing.T) {
	if testing.Short() {
		t.Skip("full-preset detail table is not -short sized")
	}
	rows, err := FlowRuleTableWith(context.Background(), nil, Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 20 {
		t.Fatalf("rows = %d, want 4 series x 5 populations", len(rows))
	}
	byLabel := map[string][]FlowRuleRow{}
	for _, r := range rows {
		if r.FastPackets+r.SlowPackets == 0 {
			t.Fatalf("row %s/%d saw no packets", r.Label, r.Flows)
		}
		if r.FastHitRate < 0 || r.FastHitRate > 1 {
			t.Fatalf("row %s/%d hit rate = %v", r.Label, r.Flows, r.FastHitRate)
		}
		byLabel[r.Label] = append(byLabel[r.Label], r)
	}
	eager, ok := byLabel["threshold 4 (offload everything)"]
	if !ok {
		t.Fatal("missing the threshold-4 series")
	}
	for _, r := range eager {
		if r.OffloadRefused == 0 {
			t.Errorf("threshold 4 at %d flows: no refused offloads; the insertion pipeline should overflow", r.Flows)
		}
	}
	// The million-flow acceptance point: the sweep's top population ran.
	var maxFlows int
	for _, r := range rows {
		if r.Flows > maxFlows {
			maxFlows = r.Flows
		}
	}
	if maxFlows < 1_000_000 {
		t.Errorf("largest population = %d, want >= 1M concurrent flows", maxFlows)
	}
}
