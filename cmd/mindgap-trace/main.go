// Command mindgap-trace runs a short traced simulation of Shinjuku-Offload
// and prints complete request lifecycles — a debugging lens into the
// scheduler: arrival, NIC ingress, central-queue entry, dispatch, worker
// start, preemptions, completion, and client response, each with its
// simulated timestamp.
//
// The traced configuration starts from a scenario preset (the checked-in
// scenarios/trace-default.json unless -scenario names another) and any
// -workers/-outstanding/-slice/-dist/-rps flags override that preset's
// knobs. The system is assembled through the scenario registry, so any
// Observable system (offload, idealnic ablations) can be traced.
//
// The -format flag selects the output: "text" (default) prints per-request
// lifecycles, "chrome" emits Chrome trace-event JSON that opens directly
// in ui.perfetto.dev or chrome://tracing (one track per worker core, one
// async span per request), and "json" dumps the raw event stream as a
// JSON array.
//
// Usage:
//
//	mindgap-trace                      # trace 5 requests on the default mix
//	mindgap-trace -n 3 -dist fixed:30µs -slice 10µs -show preempted
//	mindgap-trace -scenario my.json    # trace a scenario file's first series
//	mindgap-trace -format chrome > trace.json   # then open ui.perfetto.dev
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"mindgap/internal/attr"
	"mindgap/internal/dist"
	"mindgap/internal/loadgen"
	"mindgap/internal/scenario"
	"mindgap/internal/sim"
	"mindgap/internal/task"
	"mindgap/internal/trace"
	"mindgap/scenarios"
)

func main() {
	var (
		n           = flag.Int("n", 5, "number of request lifecycles to print")
		scenarioArg = flag.String("scenario", "trace-default", "scenario file or embedded preset name; its first series is traced")
		workers     = flag.Int("workers", 2, "override: worker cores")
		k           = flag.Int("outstanding", 2, "override: per-worker outstanding limit")
		slice       = flag.Duration("slice", 10*time.Microsecond, "override: preemption quantum")
		distSpec    = flag.String("dist", "bimodal:0.8:3µs:40µs", "override: service-time distribution")
		rps         = flag.Float64("rps", 200_000, "override: offered load")
		show        = flag.String("show", "any", "which lifecycles: any, preempted")
		format      = flag.String("format", "text", "output format: text, chrome (Perfetto/chrome://tracing), json")
		attrFlag    = flag.Bool("attr", false, "attach the latency-attribution collector: text gains a phase waterfall + decision audit summary; chrome gains per-phase slices and audit counter tracks")
	)
	flag.Parse()
	switch *format {
	case "text", "chrome", "json":
	default:
		log.Fatalf("mindgap-trace: unknown -format %q (want text, chrome, or json)", *format)
	}

	sp, err := traceSpec(*scenarioArg)
	if err != nil {
		log.Fatalf("mindgap-trace: %v", err)
	}
	// Explicitly-set flags override the preset's knobs (traceSpec
	// guarantees sp.Knobs is non-nil).
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "workers":
			sp.Knobs.Workers = *workers
		case "outstanding":
			sp.Knobs.Outstanding = *k
		case "slice":
			sp.Knobs.Slice = scenario.Duration(*slice)
		case "dist":
			sp.Workload = *distSpec
		case "rps":
			sp.Load = &scenario.LoadSpec{RPS: *rps}
		}
	})
	if err := sp.Validate(); err != nil {
		log.Fatalf("mindgap-trace: %v", err)
	}

	svc, err := dist.Parse(sp.Workload)
	if err != nil {
		log.Fatalf("mindgap-trace: %v", err)
	}
	offered := sp.Load.RPS
	if offered <= 0 {
		log.Fatalf("mindgap-trace: scenario %q needs a single-rps load (got %+v)", sp.Name, *sp.Load)
	}

	eng := sim.New()
	buf := trace.New(0)
	opts := scenario.Options{Tracer: buf}
	var col *attr.Collector
	if *attrFlag {
		col = attr.New(attr.Config{KeepTimelines: true, AuditSamples: 4096})
		opts.Attr = col
	}
	factory, err := scenario.BuildWith(sp, opts)
	if err != nil {
		log.Fatalf("mindgap-trace: %v", err)
	}
	completions := 0
	sys := factory(eng, nil, func(*task.Request) {
		completions++
		if completions >= 500 {
			eng.Halt()
		}
	})
	loadgen.New(eng, loadgen.Config{RPS: offered, Service: svc, Seed: sp.Seed}, sys.Inject).Start()
	eng.Run()

	if err := buf.ValidateAll(); err != nil {
		log.Fatalf("mindgap-trace: causality violation: %v", err)
	}

	switch *format {
	case "chrome":
		if err := trace.WriteChromeWith(os.Stdout, buf, col.ChromeEvents()); err != nil {
			log.Fatalf("mindgap-trace: %v", err)
		}
		return
	case "json":
		if err := trace.WriteJSON(os.Stdout, buf); err != nil {
			log.Fatalf("mindgap-trace: %v", err)
		}
		return
	}

	printed := 0
	for _, id := range buf.Requests() {
		if printed >= *n {
			break
		}
		lc := buf.Lifecycle(id)
		if len(lc) == 0 || lc[len(lc)-1].Kind != trace.Respond {
			continue // still in flight at halt
		}
		if *show == "preempted" {
			preempted := false
			for _, e := range lc {
				if e.Kind == trace.Preempt {
					preempted = true
				}
			}
			if !preempted {
				continue
			}
		}
		fmt.Printf("request %d (%d events, latency %v):\n", id,
			len(lc), lc[len(lc)-1].At.Sub(lc[0].At))
		fmt.Print(indent(buf.Format(id)))
		printed++
	}
	if printed == 0 {
		fmt.Println("no matching lifecycles; try -show any or a longer run")
	}
	fmt.Printf("traced %d events across %d requests (%d truncated)\n",
		buf.Len(), len(buf.Requests()), buf.Truncated())
	if col != nil {
		printAttribution(col)
	}
}

// printAttribution renders the collector's waterfall and audit summary
// after the lifecycle listing.
func printAttribution(col *attr.Collector) {
	fmt.Printf("\nlatency attribution (%d completed requests):\n", col.Completed())
	fmt.Printf("  %-12s %12s %12s %12s %10s %10s\n",
		"phase", "mean", "p50", "p99", "mean-share", "tail-share")
	for _, ps := range col.PhaseStats() {
		if ps.Mean == 0 && ps.P99 == 0 {
			continue
		}
		fmt.Printf("  %-12s %12v %12v %12v %9.1f%% %9.1f%%\n",
			ps.Phase, ps.Mean, ps.P50, ps.P99, ps.MeanShare*100, ps.TailShare*100)
	}
	a := col.AuditSummary()
	fmt.Printf("decision audit: decisions=%d informed=%d mis-dispatch=%.1f%% staleness(mean/p99)=%v/%v excess(mean/p99)=%v/%v\n",
		a.Decisions, a.Informed, a.MisRate*100,
		a.MeanStaleness, a.P99Staleness, a.MeanExcess, a.P99Excess)
	if tail := col.Tail(); len(tail) > 0 {
		fmt.Printf("slowest %d requests:\n", len(tail))
		for _, t := range tail {
			fmt.Printf("  req %-6d total=%-10v", t.ReqID, t.Total)
			for p := attr.Phase(0); p < attr.PhaseCount; p++ {
				if d := t.Phases[p]; d > 0 {
					fmt.Printf(" %s=%v", p, d)
				}
			}
			fmt.Println()
		}
	}
}

func indent(s string) string {
	out := ""
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out += "  " + s[start:i+1]
			start = i + 1
		}
	}
	return out
}

// traceSpec resolves -scenario (file path or embedded preset name) and
// returns its first series' spec, with Knobs guaranteed non-nil so flag
// overrides can write through it.
func traceSpec(arg string) (scenario.Spec, error) {
	var (
		p   scenario.Preset
		err error
	)
	if b, rerr := os.ReadFile(arg); rerr == nil {
		p, err = scenario.DecodeAny(b)
	} else {
		p, err = scenarios.Load(strings.TrimSuffix(arg, ".json"))
	}
	if err != nil {
		return scenario.Spec{}, err
	}
	if err := p.Validate(); err != nil {
		return scenario.Spec{}, err
	}
	if len(p.Series) == 0 {
		return scenario.Spec{}, fmt.Errorf("scenario %q has no series to trace", p.ID)
	}
	sp := p.SpecFor(0)
	if sp.Knobs == nil {
		sp.Knobs = &scenario.Knobs{}
	}
	return sp, nil
}
