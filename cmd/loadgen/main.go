// Command loadgen is the live open-loop load generator (mutilate-like, §4):
// it sends UDP requests with a configurable fake-work distribution at a
// Poisson rate and reports the client-observed latency profile.
//
// Usage:
//
//	loadgen -dispatcher 127.0.0.1:9000 -rps 20000 -n 100000 \
//	        -dist bimodal:0.995:5µs:100µs
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"strconv"
	"strings"
	"time"

	"mindgap/internal/dist"
	"mindgap/internal/live"
)

func main() {
	var (
		dispatcher = flag.String("dispatcher", "127.0.0.1:9000", "dispatcher UDP address")
		rps        = flag.Float64("rps", 10_000, "offered load (requests per second)")
		sweep      = flag.String("sweep", "", "comma-separated list of rates to sweep (overrides -rps)")
		n          = flag.Int("n", 50_000, "total requests to send per rate")
		distSpec   = flag.String("dist", "fixed:20µs", "service-time distribution (see internal/dist.Parse)")
		seed       = flag.Uint64("seed", 1, "workload RNG seed")
		timeout    = flag.Duration("timeout", 10*time.Second, "straggler timeout after last send")
	)
	flag.Parse()

	svc, err := dist.Parse(*distSpec)
	if err != nil {
		log.Fatalf("loadgen: %v", err)
	}
	addr, err := net.ResolveUDPAddr("udp4", *dispatcher)
	if err != nil {
		log.Fatalf("loadgen: resolve dispatcher: %v", err)
	}

	rates := []float64{*rps}
	if *sweep != "" {
		rates = rates[:0]
		for _, f := range strings.Split(*sweep, ",") {
			r, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil || r <= 0 {
				log.Fatalf("loadgen: bad sweep rate %q", f)
			}
			rates = append(rates, r)
		}
	}

	fmt.Printf("%12s %9s %9s %12s %12s %12s %12s\n",
		"offered", "sent", "recv", "achieved", "p50", "p99", "max")
	for i, rate := range rates {
		rep, err := live.RunClient(live.ClientConfig{
			Dispatcher: addr,
			RPS:        rate,
			Service:    svc,
			Requests:   *n,
			Seed:       *seed + uint64(i),
			Timeout:    *timeout,
		})
		if err != nil {
			log.Fatalf("loadgen: %v", err)
		}
		loss := ""
		if rep.Received < rep.Sent {
			loss = fmt.Sprintf("  (%d lost)", rep.Sent-rep.Received)
		}
		fmt.Printf("%12.0f %9d %9d %12.0f %12v %12v %12v%s\n",
			rate, rep.Sent, rep.Received, rep.AchievedRPS,
			rep.Latency.P50(), rep.Latency.P99(), rep.Latency.Max(), loss)
	}
}
