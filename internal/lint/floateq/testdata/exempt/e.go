// Fixture loaded as package path "mindgap/examples/demo": floateq only
// applies to simulation/stats packages.
package e

func liveThreshold(load float64) bool { return load == 1.0 }
