package dist

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
	"time"
)

func rng() *rand.Rand { return rand.New(rand.NewPCG(7, 11)) }

// sampleMean draws n samples and returns their empirical mean in ns.
func sampleMean(d Distribution, n int) float64 {
	r := rng()
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(d.Sample(r))
	}
	return sum / float64(n)
}

func TestFixed(t *testing.T) {
	f := Fixed{D: 5 * time.Microsecond}
	r := rng()
	for i := 0; i < 100; i++ {
		if got := f.Sample(r); got != 5*time.Microsecond {
			t.Fatalf("Sample = %v, want 5µs", got)
		}
	}
	if f.Mean() != 5*time.Microsecond {
		t.Fatalf("Mean = %v", f.Mean())
	}
}

func TestBimodalPaperWorkload(t *testing.T) {
	// Figure 2: 99.5% 5µs, 0.5% 100µs ⇒ mean 5.475µs.
	b := Bimodal{P1: 0.995, D1: 5 * time.Microsecond, D2: 100 * time.Microsecond}
	if got, want := b.Mean(), 5475*time.Nanosecond; got != want {
		t.Fatalf("Mean = %v, want %v", got, want)
	}
	r := rng()
	long := 0
	const n = 200_000
	for i := 0; i < n; i++ {
		switch b.Sample(r) {
		case 100 * time.Microsecond:
			long++
		case 5 * time.Microsecond:
		default:
			t.Fatal("bimodal produced a third value")
		}
	}
	frac := float64(long) / n
	if frac < 0.004 || frac > 0.006 {
		t.Fatalf("long fraction = %v, want ≈0.005", frac)
	}
}

func TestExponentialMean(t *testing.T) {
	e := Exponential{M: 10 * time.Microsecond}
	got := sampleMean(e, 200_000)
	want := float64(10 * time.Microsecond)
	if math.Abs(got-want)/want > 0.02 {
		t.Fatalf("empirical mean = %v, want ≈%v", time.Duration(got), e.M)
	}
}

func TestExponentialNeverNonPositive(t *testing.T) {
	e := Exponential{M: time.Nanosecond}
	r := rng()
	for i := 0; i < 10_000; i++ {
		if e.Sample(r) <= 0 {
			t.Fatal("exponential produced non-positive duration")
		}
	}
}

func TestLogNormalMean(t *testing.T) {
	l := LogNormal{Mu: math.Log(1000), Sigma: 0.5}
	analytic := float64(l.Mean())
	got := sampleMean(l, 300_000)
	if math.Abs(got-analytic)/analytic > 0.03 {
		t.Fatalf("empirical mean = %v, analytic %v", got, analytic)
	}
}

func TestParetoBounds(t *testing.T) {
	p := Pareto{Min: time.Microsecond, Alpha: 1.2, Max: time.Millisecond}
	r := rng()
	for i := 0; i < 50_000; i++ {
		d := p.Sample(r)
		if d < time.Microsecond || d > time.Millisecond {
			t.Fatalf("sample %v outside [1µs, 1ms]", d)
		}
	}
}

func TestParetoUnboundedMean(t *testing.T) {
	p := Pareto{Min: time.Microsecond, Alpha: 2}
	// alpha/(alpha-1) * min = 2µs.
	if got := p.Mean(); got != 2*time.Microsecond {
		t.Fatalf("Mean = %v, want 2µs", got)
	}
	heavy := Pareto{Min: time.Microsecond, Alpha: 0.9}
	if heavy.Mean() != time.Duration(math.MaxInt64) {
		t.Fatal("alpha<=1 unbounded Pareto should report divergent mean")
	}
}

func TestUniform(t *testing.T) {
	u := Uniform{Lo: time.Microsecond, Hi: 3 * time.Microsecond}
	r := rng()
	for i := 0; i < 10_000; i++ {
		d := u.Sample(r)
		if d < u.Lo || d > u.Hi {
			t.Fatalf("sample %v outside [%v,%v]", d, u.Lo, u.Hi)
		}
	}
	if u.Mean() != 2*time.Microsecond {
		t.Fatalf("Mean = %v, want 2µs", u.Mean())
	}
	got := sampleMean(u, 100_000)
	if math.Abs(got-2000)/2000 > 0.02 {
		t.Fatalf("empirical mean %v, want ≈2µs", time.Duration(got))
	}
	degenerate := Uniform{Lo: 5, Hi: 5}
	if degenerate.Sample(r) != 5 {
		t.Fatal("degenerate uniform broken")
	}
}

func TestMixture(t *testing.T) {
	m := NewMixture(
		[]float64{3, 1},
		[]Distribution{Fixed{D: time.Microsecond}, Fixed{D: 5 * time.Microsecond}},
	)
	if got, want := m.Mean(), 2*time.Microsecond; got != want {
		t.Fatalf("Mean = %v, want %v", got, want)
	}
	got := sampleMean(m, 200_000)
	if math.Abs(got-2000)/2000 > 0.02 {
		t.Fatalf("empirical mean %v, want ≈2µs", time.Duration(got))
	}
}

func TestMixturePanics(t *testing.T) {
	cases := []func(){
		func() { NewMixture(nil, nil) },
		func() { NewMixture([]float64{1}, []Distribution{Fixed{1}, Fixed{2}}) },
		func() { NewMixture([]float64{-1, 2}, []Distribution{Fixed{1}, Fixed{2}}) },
		func() { NewMixture([]float64{0, 0}, []Distribution{Fixed{1}, Fixed{2}}) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestParseRoundTrip(t *testing.T) {
	inputs := []string{
		"fixed:5µs",
		"bimodal:0.995:5µs:100µs",
		"exp:10µs",
		"lognormal:8.5:1.2",
		"pareto:1µs:1.5",
		"pareto:1µs:1.5:1ms",
		"uniform:1µs:10µs",
	}
	for _, in := range inputs {
		d, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q) error: %v", in, err)
		}
		// String() must itself parse back to an equivalent distribution.
		d2, err := Parse(d.String())
		if err != nil {
			t.Fatalf("Parse(String()=%q) error: %v", d.String(), err)
		}
		if d.Mean() != d2.Mean() {
			t.Fatalf("round trip changed mean: %v vs %v", d.Mean(), d2.Mean())
		}
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	bad := []string{
		"", "fixed", "fixed:abc", "fixed:-5us", "bimodal:2:5us:1us",
		"bimodal:0.5:5us", "exp:", "lognormal:a:b", "pareto:1us:0",
		"uniform:10us:1us", "zipf:1:2", "fixed:5us:extra",
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

// Property: every distribution only produces positive samples and the
// empirical mean of fixed/uniform/bimodal matches the analytic mean within
// statistical tolerance.
func TestQuickPositiveSamples(t *testing.T) {
	f := func(seed uint64, meanUS uint16) bool {
		m := time.Duration(meanUS%1000+1) * time.Microsecond
		dists := []Distribution{
			Fixed{D: m},
			Bimodal{P1: 0.9, D1: m, D2: 10 * m},
			Exponential{M: m},
			Uniform{Lo: m, Hi: 2 * m},
			Pareto{Min: m, Alpha: 1.5, Max: 100 * m},
		}
		r := rand.New(rand.NewPCG(seed, seed^0x9e3779b9))
		for _, d := range dists {
			for i := 0; i < 64; i++ {
				if d.Sample(r) <= 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSamplingIsDeterministic(t *testing.T) {
	b := Bimodal{P1: 0.995, D1: 5 * time.Microsecond, D2: 100 * time.Microsecond}
	r1 := rand.New(rand.NewPCG(1, 2))
	r2 := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 1000; i++ {
		if b.Sample(r1) != b.Sample(r2) {
			t.Fatal("same seed produced different sample streams")
		}
	}
}
