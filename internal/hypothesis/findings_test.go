package hypothesis

import (
	"bytes"
	"testing"

	"mindgap/internal/experiment"
	"mindgap/internal/scenario"
)

// craftedReport builds a fully in-memory dominance report so rendering
// can be checked byte-for-byte without running any simulation.
func craftedReport() Report {
	h := base()
	h.Title = "Stealing vs blind RSS"
	rows := []SeedOutcome{
		{Seed: 7, A: 290815, B: 655359},
		{Seed: 11, A: 278527, B: 679935},
	}
	return Report{
		Spec:        h,
		Fingerprint: h.Fingerprint(),
		Quality:     experiment.Quality{Warmup: 2000, Measure: 12000},
		Rows:        rows,
		Dominance:   EvalDominance(rows, true, h.Criterion.MinMargin, h.Criterion.MinWinFrac),
		Pass:        true,
		Reason:      "A wins 2/2 seeds with mean margin +57.2%",
	}
}

func TestRenderGolden(t *testing.T) {
	r := craftedReport()
	want := "# FINDINGS — test-stealing\n" +
		"\n" +
		"Stealing vs blind RSS\n" +
		"\n" +
		"**Claim.** zygos beats rss on p99\n" +
		"\n" +
		"## Verdict: PASS\n" +
		"\n" +
		"A wins 2/2 seeds with mean margin +57.2%.\n" +
		"\n" +
		"- hypothesis: `" + r.Fingerprint + "` (schema mindgap-hypothesis/1)\n" +
		"- metric: p99 (ns, lower is better)\n" +
		"- criterion: dominance (min_margin 10.0%, min_win_frac 100.0%)\n" +
		"- quality: warmup=2000 measure=12000\n" +
		"- seeds: 7, 11\n" +
		"- arm A: zygos (`zygos`)\n" +
		"- arm B: rss (`rss`)\n" +
		"- varied: system\n" +
		"- controlled: workload, workers, load\n" +
		"\n" +
		"## Per-seed results\n" +
		"\n" +
		"| seed | A: zygos | B: rss | winner | margin (A) |\n" +
		"|---|---|---|---|---|\n" +
		"| 7 | 290815 | 655359 | A | +55.6% |\n" +
		"| 11 | 278527 | 679935 | A | +59.0% |\n" +
		"| mean | 284671 | 667647 | A | +57.4% |\n" +
		"\n" +
		"Win count: A 2, B 0, ties 0. Cross-seed mean margin +57.3%.\n" +
		"\n"
	got := string(r.Render())
	if got != want {
		t.Fatalf("rendered FINDINGS drifted:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestRenderDeterministic(t *testing.T) {
	r := craftedReport()
	first := r.Render()
	for i := 0; i < 3; i++ {
		if !bytes.Equal(first, r.Render()) {
			t.Fatal("Render must be byte-stable across calls")
		}
	}
}

func TestRenderGridAndTwin(t *testing.T) {
	h := base()
	h.Criterion = CriterionSpec{Kind: Crossover, Bracket: &Bracket{Lo: 150, Hi: 350}}
	g := &scenario.Grid{Lo: 100, Hi: 400, Step: 100}
	h.A.Scenario.Load = &scenario.LoadSpec{Grid: g}
	h.B.Scenario.Load = &scenario.LoadSpec{Grid: g}
	grid := cross(
		[]float64{100, 200, 300, 400},
		[]float64{110, 105, 95, 80},
		[]float64{100, 100, 100, 100})
	v := EvalCrossover(grid, true, *h.Criterion.Bracket)
	r := Report{
		Spec:        h,
		Fingerprint: h.Fingerprint(),
		Quality:     experiment.Quality{Warmup: 2000, Measure: 12000},
		Grid:        grid,
		Crossover:   v,
		Twin: &TwinReport{
			Model: "mm1-percore", Arm: "b", Servers: 4, Metric: "mean",
			Tolerance: 0.25, Predicted: 125000, Simulated: 138604,
			RelErr: 0.1088, Pass: true,
			Reason: "simulated rss mean tracks mm1-percore within 25.0% of theory",
		},
		Pass:   v.Pass,
		Reason: v.Reason,
	}
	out := string(r.Render())
	for _, frag := range []string{
		"## Load grid (cross-seed means over 2 seeds)",
		"| 100 | 110 | 100 | B | -9.1% |",
		"Detected crossover bracket: [200, 300] (claimed: [150, 350]).",
		"## Analytic twin: AGREES",
		"- model: mm1-percore (c=4) on arm B",
		"- predicted mean: 125000 ns",
		"- relative error: 10.9% (documented tolerance 25.0%)",
	} {
		if !bytes.Contains([]byte(out), []byte(frag)) {
			t.Fatalf("grid+twin FINDINGS missing %q:\n%s", frag, out)
		}
	}
}
