package task

import (
	"testing"
	"time"

	"mindgap/internal/sim"
)

func TestNew(t *testing.T) {
	r := New(42, sim.Time(1000), 5*time.Microsecond)
	if r.ID != 42 || r.Arrival != sim.Time(1000) {
		t.Fatalf("identity fields wrong: %+v", r)
	}
	if r.Service != 5*time.Microsecond || r.Remaining != r.Service {
		t.Fatalf("service fields wrong: %+v", r)
	}
	if r.LastWorker != NoWorker {
		t.Fatalf("LastWorker = %d, want NoWorker", r.LastWorker)
	}
	if r.Done() {
		t.Fatal("fresh request reports done")
	}
}

func TestDone(t *testing.T) {
	r := New(1, 0, time.Microsecond)
	r.Remaining = 0
	if !r.Done() {
		t.Fatal("zero remaining not done")
	}
	r.Remaining = -1
	if !r.Done() {
		t.Fatal("negative remaining not done")
	}
}

func TestLatency(t *testing.T) {
	r := New(1, sim.Time(2000), time.Microsecond)
	if got := r.Latency(sim.Time(9000)); got != 7*time.Microsecond {
		t.Fatalf("Latency = %v, want 7µs", got)
	}
}
