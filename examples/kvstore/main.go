// KVS scenario: a key-value store with cheap GETs and expensive SCANs under
// a skewed (Zipf) key popularity distribution — the workload family where
// MICA-style key-affinity steering (Flow Director) shines for cache
// locality but collapses under skew (§2.1/§2.2 "load imbalance"), while an
// informed centralized scheduler stays balanced.
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"time"

	"mindgap/internal/dist"
	"mindgap/internal/experiment"
	"mindgap/internal/params"
)

func main() {
	// 95% GETs at 2µs, 5% SCANs at 50µs.
	workload := dist.NewMixture(
		[]float64{0.95, 0.05},
		[]dist.Distribution{
			dist.Fixed{D: 2 * time.Microsecond},
			dist.Fixed{D: 50 * time.Microsecond},
		},
	)
	p := params.Default()
	const workers = 8
	const rps = 800_000

	fmt.Printf("KVS workload: %v, mean %v, offered %d krps on %d workers\n\n",
		workload, workload.Mean(), rps/1000, workers)

	run := func(label string, factory experiment.Factory, skew float64) {
		cfg := experiment.PointConfig{
			Factory:    factory,
			Service:    workload,
			OfferedRPS: rps,
			Warmup:     10_000,
			Measure:    80_000,
			Seed:       11,
		}
		if skew >= 0 {
			cfg.Keys = dist.NewZipfKeys(1024, skew)
		}
		r := experiment.RunPoint(cfg)
		sat := ""
		if r.Saturated {
			sat = "  (SATURATED)"
		}
		fmt.Printf("%-44s p50=%-10v p99=%-12v achieved=%.0f rps%s\n",
			label, r.P50, r.P99, r.AchievedRPS, sat)
	}

	fmt.Println("-- uniform key popularity (zipf s=0)")
	run("flow-director (key-affinity steering)", experiment.FlowDirFactory(p, workers), 0)
	run("shinjuku-offload (informed NIC scheduler)", experiment.OffloadFactory(p, workers, 4, 10*time.Microsecond), 0)

	fmt.Println("\n-- skewed key popularity (zipf s=1.1)")
	run("flow-director (key-affinity steering)", experiment.FlowDirFactory(p, workers), 1.1)
	run("shinjuku-offload (informed NIC scheduler)", experiment.OffloadFactory(p, workers, 4, 10*time.Microsecond), 1.1)

	fmt.Println("\nKey-affinity steering inherits the key skew as core imbalance; the")
	fmt.Println("centralized scheduler is immune because any worker can serve any key.")
}
