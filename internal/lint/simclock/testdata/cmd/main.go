// Fixture loaded as package path "mindgap/cmd/demo": command frontends
// are exempt — wall-clock progress reporting is their job.
package main

import (
	"fmt"
	"time"
)

func main() {
	start := time.Now()
	time.Sleep(time.Millisecond)
	fmt.Println(time.Since(start))
}
