package runner

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mindgap/internal/telemetry"
)

// meas is a toy measurement with the saturation probe the runner looks for.
type meas struct {
	V   int
	Sat bool
}

func (m meas) IsSaturated() bool { return m.Sat }

// jitterSweep builds a sweep whose points finish in deliberately scrambled
// wall-clock order (later grid indices finish first) so any
// completion-order dependence in the runner would corrupt the output.
func jitterSweep(series, points int) Sweep[meas] {
	sw := Sweep[meas]{Name: "jitter"}
	for si := 0; si < series; si++ {
		s := Series[meas]{Label: fmt.Sprintf("s%d", si)}
		for pi := 0; pi < points; pi++ {
			si, pi := si, pi
			s.Points = append(s.Points, Point[meas]{
				Run: func() meas {
					time.Sleep(time.Duration((points-pi)%5) * time.Millisecond)
					return meas{V: si*1000 + pi}
				},
			})
		}
		sw.Series = append(sw.Series, s)
	}
	return sw
}

// TestRunOrderedAtAnyParallelism is the determinism contract: results are
// keyed by grid index, so -j1 and -jN return identical slices even when
// points complete wildly out of order.
func TestRunOrderedAtAnyParallelism(t *testing.T) {
	sw := jitterSweep(3, 8)
	serial, err := Run(context.Background(), &Runner{Parallelism: 1}, sw)
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}
	for _, par := range []int{2, 8, runtime.GOMAXPROCS(0)} {
		got, err := Run(context.Background(), &Runner{Parallelism: par}, sw)
		if err != nil {
			t.Fatalf("parallel run (j=%d): %v", par, err)
		}
		if !reflect.DeepEqual(serial, got) {
			t.Fatalf("j=%d results differ from serial:\nserial: %+v\nj=%d:    %+v", par, serial, par, got)
		}
	}
	for si, sr := range serial {
		if len(sr.Results) != 8 {
			t.Fatalf("series %d: got %d results, want 8", si, len(sr.Results))
		}
		for pi, m := range sr.Results {
			if m.V != si*1000+pi {
				t.Fatalf("series %d point %d: got %d", si, pi, m.V)
			}
		}
	}
}

// TestStopAfterSaturated checks the truncation rule matches the old serial
// sweep: the series ends at the Nth consecutive saturated point, computed
// on grid-ordered results regardless of completion order.
func TestStopAfterSaturated(t *testing.T) {
	// Saturated at 2 (isolated), then 5,6 (the stopping run), then
	// everything beyond stays saturated but must already be cut.
	sat := map[int]bool{2: true, 5: true, 6: true, 7: true, 8: true, 9: true}
	var ran atomic.Int64
	s := Series[meas]{Label: "curve", StopAfterSaturated: 2}
	for i := 0; i < 10; i++ {
		i := i
		s.Points = append(s.Points, Point[meas]{Run: func() meas {
			ran.Add(1)
			time.Sleep(time.Duration(i%3) * time.Millisecond)
			return meas{V: i, Sat: sat[i]}
		}})
	}
	for _, par := range []int{1, 4} {
		ran.Store(0)
		got, err := RunOne(context.Background(), &Runner{Parallelism: par}, "trunc", s)
		if err != nil {
			t.Fatalf("j=%d: %v", par, err)
		}
		if len(got) != 7 { // indices 0..6: cut lands on the 2nd consecutive saturated point
			t.Fatalf("j=%d: got %d results, want 7 (%+v)", par, len(got), got)
		}
		for i, m := range got {
			if m.V != i {
				t.Fatalf("j=%d: out of order at %d: %+v", par, i, got)
			}
		}
		if par == 1 && ran.Load() != 7 {
			// Serial execution must prune everything past the cut.
			t.Fatalf("j=1: ran %d points, want 7", ran.Load())
		}
	}
}

// TestCancellationPartialPrefix cancels mid-sweep and checks the contract:
// Run returns ctx.Err(), each series holds a correctly-ordered contiguous
// prefix, and no worker goroutines are left behind.
func TestCancellationPartialPrefix(t *testing.T) {
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	gate := make(chan struct{})
	var once sync.Once
	const n = 12
	s := Series[meas]{Label: "curve"}
	for i := 0; i < n; i++ {
		i := i
		s.Points = append(s.Points, Point[meas]{Run: func() meas {
			if i >= 3 {
				// Cancel while points are in flight, then let them finish:
				// the runner must wait for them, not abandon them.
				once.Do(cancel)
				<-gate
			}
			return meas{V: i}
		}})
	}
	go func() {
		<-ctx.Done()
		time.Sleep(10 * time.Millisecond)
		close(gate)
	}()

	got, err := RunOne(ctx, &Runner{Parallelism: 2}, "cancel", s)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(got) == 0 || len(got) >= n {
		t.Fatalf("got %d results, want a non-empty strict prefix of %d", len(got), n)
	}
	for i, m := range got {
		if m.V != i {
			t.Fatalf("prefix out of order at %d: %+v", i, got)
		}
	}

	// All workers and the feeder must have exited.
	for deadline := time.Now().Add(2 * time.Second); ; {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: before=%d now=%d", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCacheRoundTrip runs the same keyed sweep twice against one on-disk
// cache: the second run must not execute any point and must return
// identical results.
func TestCacheRoundTrip(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var ran atomic.Int64
	mk := func() Sweep[meas] {
		s := Series[meas]{Label: "curve"}
		for i := 0; i < 6; i++ {
			i := i
			s.Points = append(s.Points, Point[meas]{
				Key: fmt.Sprintf("cache-test|i=%d", i),
				Run: func() meas { ran.Add(1); return meas{V: i * i} },
			})
		}
		return Sweep[meas]{Name: "cached", Series: []Series[meas]{s}}
	}

	first, err := Run(context.Background(), &Runner{Parallelism: 4, Cache: cache}, mk())
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 6 {
		t.Fatalf("first run executed %d points, want 6", ran.Load())
	}

	var cachedEvents atomic.Int64
	rn := &Runner{Parallelism: 4, Cache: cache, Progress: func(ev Event) {
		if ev.Cached {
			cachedEvents.Add(1)
		}
	}}
	second, err := Run(context.Background(), rn, mk())
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 6 {
		t.Fatalf("second run executed %d extra points, want 0", ran.Load()-6)
	}
	if cachedEvents.Load() != 6 {
		t.Fatalf("second run reported %d cached events, want 6", cachedEvents.Load())
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("cached results differ:\nfirst:  %+v\nsecond: %+v", first, second)
	}
	if hits, misses := cache.Stats(); hits != 6 || misses != 6 {
		t.Fatalf("stats = %d hits / %d misses, want 6/6", hits, misses)
	}

	// Empty keys bypass the cache entirely.
	uncached := Sweep[meas]{Name: "uncached", Series: []Series[meas]{{
		Points: []Point[meas]{{Run: func() meas { ran.Add(1); return meas{V: 99} }}},
	}}}
	if _, err := Run(context.Background(), &Runner{Cache: cache}, uncached); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 7 {
		t.Fatalf("keyless point was not executed")
	}
}

// TestTelemetryCounters checks the wired metrics reflect a completed sweep.
func TestTelemetryCounters(t *testing.T) {
	reg := telemetry.NewRegistry()
	sw := jitterSweep(2, 3)
	if _, err := Run(context.Background(), &Runner{Parallelism: 2, Metrics: reg}, sw); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("runner", "points_total").Value(); got != 6 {
		t.Fatalf("points_total = %d, want 6", got)
	}
	if got := reg.Counter("runner", "points_done").Value(); got != 6 {
		t.Fatalf("points_done = %d, want 6", got)
	}
	if got := reg.Gauge("runner", "inflight").Value(); got != 0 {
		t.Fatalf("inflight = %v, want 0 after completion", got)
	}
}

// TestPointPanicPropagates ensures a panicking point surfaces to the
// caller after the pool drains, rather than crashing a bare goroutine.
func TestPointPanicPropagates(t *testing.T) {
	before := runtime.NumGoroutine()
	s := Series[meas]{Points: []Point[meas]{
		{Run: func() meas { return meas{V: 1} }},
		{Run: func() meas { panic("boom") }},
		{Run: func() meas { return meas{V: 3} }},
	}}
	func() {
		defer func() {
			if p := recover(); p != "boom" {
				t.Fatalf("recovered %v, want \"boom\"", p)
			}
		}()
		_, _ = RunOne(context.Background(), &Runner{Parallelism: 2}, "panic", s)
		t.Fatal("RunOne returned instead of panicking")
	}()
	for deadline := time.Now().Add(2 * time.Second); runtime.NumGoroutine() > before; {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after panic: before=%d now=%d", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestNilRunner checks the documented nil-Runner convenience.
func TestNilRunner(t *testing.T) {
	got, err := RunOne(context.Background(), nil, "nil", Series[meas]{
		Points: []Point[meas]{{Run: func() meas { return meas{V: 42} }}},
	})
	if err != nil || len(got) != 1 || got[0].V != 42 {
		t.Fatalf("got %+v, %v", got, err)
	}
}
