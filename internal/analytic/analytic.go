// Package analytic provides closed-form queueing-theory results used to
// validate the simulator and to serve as analytic twins for hypotheses:
// if an idealized configuration of the event engine does not match M/M/c
// theory, no figure built on it can be trusted, and a hypothesis whose
// baseline arm disagrees with its declared closed form is flagged before
// any A/B verdict is rendered. The tests in this package run the
// engine-vs-theory cross-check.
package analytic

import (
	"math"
	"time"
)

// ErlangC returns the probability that an arriving customer waits in an
// M/M/c queue with c servers and total utilization rho = lambda/(c*mu),
// 0 <= rho < 1.
func ErlangC(c int, rho float64) float64 {
	if c <= 0 {
		panic("analytic: need at least one server")
	}
	if rho < 0 || rho >= 1 {
		panic("analytic: utilization must be in [0,1)")
	}
	a := float64(c) * rho // offered load in Erlangs
	// Sum a^k/k! for k<c, computed iteratively for stability.
	sum := 0.0
	term := 1.0
	for k := 0; k < c; k++ {
		sum += term
		term *= a / float64(k+1)
	}
	// term is now a^c/c!.
	top := term / (1 - rho)
	return top / (sum + top)
}

// MMcMeanWait returns the mean queueing delay (excluding service) of an
// M/M/c queue with the given per-server mean service time and utilization.
func MMcMeanWait(c int, rho float64, meanService time.Duration) time.Duration {
	pw := ErlangC(c, rho)
	w := pw / (float64(c) * (1 - rho)) * float64(meanService)
	return time.Duration(w)
}

// MMcMeanResponse returns the mean response time (wait + service) of an
// M/M/c queue.
func MMcMeanResponse(c int, rho float64, meanService time.Duration) time.Duration {
	return MMcMeanWait(c, rho, meanService) + meanService
}

// MMcMeanQueueLen returns the mean number of customers waiting (not in
// service) in an M/M/c queue: Lq = Pw·rho/(1−rho).
func MMcMeanQueueLen(c int, rho float64) float64 {
	return ErlangC(c, rho) * rho / (1 - rho)
}

// MMcWaitQuantile returns the q-quantile of the M/M/c queueing delay Wq.
// The conditional delay given Wq>0 is exponential with rate cµ−λ, so the
// quantile is ln(Pw/(1−q))/(cµ−λ) when Pw > 1−q, and 0 otherwise (the
// quantile then sits on the Pw atom at zero).
func MMcWaitQuantile(c int, rho float64, meanService time.Duration, q float64) time.Duration {
	if q <= 0 || q >= 1 {
		panic("analytic: quantile must be in (0,1)")
	}
	pw := ErlangC(c, rho)
	if pw <= 1-q {
		return 0
	}
	drain := float64(c) * (1 - rho) / meanService.Seconds() // cµ−λ, per second
	return time.Duration(math.Log(pw/(1-q)) / drain * float64(time.Second))
}

// MM1MeanResponse returns the mean response time (wait + service) of an
// M/M/1 queue.
func MM1MeanResponse(rho float64, meanService time.Duration) time.Duration {
	if rho < 0 || rho >= 1 {
		panic("analytic: utilization must be in [0,1)")
	}
	return time.Duration(float64(meanService) / (1 - rho))
}

// MG1MeanWait returns the Pollaczek–Khinchine mean wait of an M/G/1 queue
// given the service-time mean, its squared coefficient of variation cs2,
// and utilization rho.
func MG1MeanWait(rho, cs2 float64, meanService time.Duration) time.Duration {
	if rho < 0 || rho >= 1 {
		panic("analytic: utilization must be in [0,1)")
	}
	w := rho / (1 - rho) * (1 + cs2) / 2 * float64(meanService)
	return time.Duration(w)
}

// MM1ResponseQuantile returns the q-quantile of M/M/1 response time
// (exponentially distributed with mean MM1MeanResponse).
func MM1ResponseQuantile(rho float64, meanService time.Duration, q float64) time.Duration {
	if q <= 0 || q >= 1 {
		panic("analytic: quantile must be in (0,1)")
	}
	mean := float64(MM1MeanResponse(rho, meanService))
	return time.Duration(-mean * math.Log(1-q))
}
