package experiment

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"mindgap/internal/runner"
	"mindgap/scenarios"
)

var updateGolden = flag.Bool("update", false, "rewrite zero-fault golden outputs")

// zeroFaultQuality is deliberately small: the goldens pin byte-identical
// output across every checked-in preset, not statistically converged
// numbers, so a few thousand completions per point suffice.
var zeroFaultQuality = Quality{Warmup: 500, Measure: 3000, Seed: 7}

// isFaultPreset reports whether the named preset exercises the fault
// layer; those presets postdate the zero-fault goldens and are covered
// by the fault determinism tests instead.
func isFaultPreset(name string) bool {
	p, err := scenarios.Load(name)
	if err != nil {
		return false
	}
	for i := range p.Series {
		if p.SpecFor(i).Faults != nil {
			return true
		}
	}
	return false
}

// renderPreset produces the canonical textual form of one preset's
// measured output: the figure CSV for series presets, or the fixed-load
// tenant comparison lines for multi-tenant presets. This mirrors what
// `mindgap-sim -scenario <name> -csv` prints.
func renderPreset(t *testing.T, name string) []byte {
	t.Helper()
	p, err := scenarios.Load(name)
	if err != nil {
		t.Fatalf("load preset %s: %v", name, err)
	}
	var buf bytes.Buffer
	if len(p.Tenants) > 0 {
		cfg, err := MultiTenantFromPreset(p, zeroFaultQuality)
		if err != nil {
			t.Fatalf("preset %s: %v", name, err)
		}
		cmp, err := MultiTenantComparisonWith(context.Background(), nil, cfg)
		if err != nil {
			t.Fatalf("preset %s: %v", name, err)
		}
		for _, set := range []struct {
			name string
			rs   []TenantResult
		}{{"fifo", cmp.FIFO}, {"priority", cmp.Priority}} {
			for _, tr := range set.rs {
				fmt.Fprintf(&buf, "%s,%s,%s,%v,%v,%v,%d\n",
					p.ID, set.name, tr.Tenant.Name, tr.P50, tr.P99, tr.Mean, tr.Completed)
			}
		}
		return buf.Bytes()
	}
	spec, err := PresetFigureSpec(p, zeroFaultQuality)
	if err != nil {
		t.Fatalf("preset %s: %v", name, err)
	}
	f, err := spec.Run(context.Background(), &runner.Runner{Parallelism: 4})
	if err != nil {
		t.Fatalf("preset %s: %v", name, err)
	}
	if err := f.WriteCSV(&buf); err != nil {
		t.Fatalf("preset %s: %v", name, err)
	}
	return buf.Bytes()
}

// TestZeroFaultGolden guards the fault-injection hooks' overhead-free off
// path: with no Faults block in a spec, every checked-in preset must
// produce output byte-identical to the pre-fault-layer goldens under
// testdata/zerofault. A diff here means the hooks changed healthy-system
// behaviour (an extra event, a perturbed RNG stream, a reordered
// tie-break), which is never acceptable.
//
// Regenerate (only for intentional model changes):
//
//	go test ./internal/experiment -run TestZeroFaultGolden -update
func TestZeroFaultGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("zero-fault golden sweep is full-mode only")
	}
	for _, name := range scenarios.Names() {
		name := name
		if isFaultPreset(name) {
			continue // fault presets have no pre-fault-layer golden
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			got := renderPreset(t, name)
			path := filepath.Join("testdata", "zerofault", name+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("preset %s output diverged from zero-fault golden\ngot:\n%s\nwant:\n%s",
					name, got, want)
			}
		})
	}
}
