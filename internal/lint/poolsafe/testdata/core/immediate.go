// Rule-1 fixtures: identity reads lexically after an immediate release
// in the same block.
package core

import "mindgap/internal/task"

// finishOK copies before releasing — the sanctioned order.
func finishOK(pool *task.Pool, req *task.Request) uint64 {
	id := req.ID
	pool.Put(req)
	return id
}

func finishLeak(pool *task.Pool, req *task.Request) uint64 {
	pool.Put(req)
	return req.ID // want `read of recyclable field ID after Pool\.Put released the request back to the pool; copy the field before releasing`
}

// Delivery through a func(*task.Request) value — the done/sink
// ownership-transfer convention — is a release too.
func deliver(s *sys, req *task.Request) {
	s.done(req)
	_ = req.Arrival // want `read of recyclable field Arrival after the delivery callback released the request back to the pool; copy the field before releasing`
}

// A conditional release only poisons its own block: the read below is
// on the not-released path. (Cross-event ordering is rule 2's job.)
func conditional(pool *task.Pool, req *task.Request, shed bool) uint64 {
	if shed {
		pool.Put(req)
		return 0
	}
	return req.ID
}
