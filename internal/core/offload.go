package core

import (
	"fmt"
	"time"

	"mindgap/internal/cores"
	"mindgap/internal/fabric"
	"mindgap/internal/nicmodel"
	"mindgap/internal/params"
	"mindgap/internal/sim"
	"mindgap/internal/stats"
	"mindgap/internal/task"
	"mindgap/internal/telemetry"
	"mindgap/internal/trace"
)

// OffloadConfig describes one Shinjuku-Offload deployment (§3.4).
type OffloadConfig struct {
	// P is the hardware cost model.
	P params.Params
	// Workers is the number of host worker cores (the offload frees the
	// host cores the vanilla system burns on networking + dispatch, which
	// is why the paper's figures give Shinjuku-Offload one extra worker).
	Workers int
	// Outstanding is the per-worker outstanding-request limit k of the
	// queuing optimization (§3.4.5, Figure 3).
	Outstanding int
	// Slice is the preemption quantum; zero disables preemption (the
	// paper's fixed-service-time figures turn preemption off).
	Slice time.Duration
	// Policy is the worker-selection policy; the paper's prototype uses
	// LeastOutstanding (idle-first FIFO dispatch).
	Policy Policy
	// DirectInterrupts switches to the §5.1(3) ideal-NIC ablation: the NIC
	// posts preemption interrupts to cores directly instead of workers
	// arming local APIC timers. Delivery latency is P.CXLOneWay.
	DirectInterrupts bool
	// LoadFeedback enables periodic host→NIC load reports that upgrade the
	// selection policy to InformedLeastLoaded data (only meaningful when
	// Policy == InformedLeastLoaded).
	LoadFeedback bool
	// DispatchBurst is the queue-manager core's DPDK-style burst size: how
	// many events it drains from one input ring before polling the other.
	// 1 (the default) alternates fairly; the paper's prototype processes
	// rx_burst-sized batches, which delays credit handling under a flood
	// of new arrivals (see the Figure 3 burst ablation). 0 means 1.
	DispatchBurst int
	// DDIOToL1 models §5.2: because the scheduler bounds outstanding
	// requests per core, the NIC can place packets directly into each
	// worker's L1 without polluting it, waiving the near-cache fetch
	// penalty on pickup.
	DDIOToL1 bool
	// PriorityClasses > 1 switches the central queue to strict priority
	// classes (§2.2's co-located latency classes); ClassOf maps each
	// request to a class in [0, PriorityClasses), highest first.
	PriorityClasses int
	ClassOf         func(*task.Request) int
	// AdmissionLimit bounds the central queue: when it holds this many
	// requests the NIC sheds new arrivals instead of queuing them (the
	// §5.2 congestion-control co-design idea — the NIC knows the backlog
	// the instant a request arrives and can push back before the request
	// consumes host resources). Zero means unbounded.
	AdmissionLimit int
	// Tracer, when set, records every request's lifecycle (arrival,
	// queueing, dispatch, execution, preemption, response) for debugging
	// and causality checks.
	Tracer *trace.Buffer
	// Metrics, when set, wires every component's probes into the registry:
	// scheduler queue depth and decision counters ("sched"), per-worker
	// utilization and preemptions ("worker<i>"), ARM stage occupancy
	// ("arm-networker", "arm-queue", "arm-tx", "arm-rx"), NIC steering and
	// per-function ring occupancy ("nic", "nicfn-*"), and fabric link
	// latency histograms ("fabric/*").
	Metrics *telemetry.Registry
	// Affinity makes the scheduler resume preempted requests on the worker
	// that last ran them when possible (§3.1 cache affinity), avoiding the
	// CtxMigratePenalty of pulling the context across cores.
	Affinity bool
}

// qEventKind tags events entering the queue-manager ARM core.
type qEventKind uint8

const (
	evNew qEventKind = iota
	evFinish
	evPreempted
	evLoad
)

// qEvent is one input to the queue-manager stage.
type qEvent struct {
	kind   qEventKind
	worker int
	req    *task.Request
	load   int64 // evLoad only: reported instantaneous load (ns)
}

// Queue-manager input classes: the networker's new-request ring and the RX
// core's notification ring, polled round-robin.
const (
	qcNew = iota
	qcNotif
)

// Offload is the simulated Shinjuku-Offload system: Logic running on a
// modelled Broadcom Stingray, dispatching to host worker cores over
// packet-based NIC↔host links.
//
// The packet path (Figure 1) is modelled stage by stage:
//
//	client ──wire──▶ NIC port ──▶ networker(ARM) ──shm──▶ queue mgr(ARM)
//	     ──shm──▶ TX core(ARM) ──2.56µs──▶ worker RX ring ──▶ worker core
//	worker ──2.56µs──▶ RX core(ARM) ──shm──▶ queue mgr(ARM)   [notifications]
//	worker ──wire──▶ client                                    [responses]
type Offload struct {
	eng  *sim.Engine
	cfg  OffloadConfig
	lgc  SchedulerLogic
	rec  *stats.Recorder
	done func(*task.Request)
	shed uint64

	// Telemetry drop counters (nil when cfg.Metrics is unset): mShed
	// counts admission-control sheds, mVFDrops counts frames lost at a
	// worker VF ring, and mDrops is their sum — it matches the recorder's
	// Dropped() total.
	mShed    *telemetry.Counter
	mVFDrops *telemetry.Counter
	mDrops   *telemetry.Counter

	ingress   *fabric.Link
	egress    *fabric.Link
	networker *fabric.Stage[*task.Request]
	queueMgr  *fabric.MultiStage[qEvent]
	txCore    *fabric.Stage[Assignment]
	rxCore    *fabric.Stage[qEvent]
	shmNetQ   *fabric.Link
	shmQTx    *fabric.Link
	shmRxQ    *fabric.Link

	// nic is the modelled Stingray datapath; armFn is the ARM complex's
	// interface (notifications from workers land here) and each worker
	// owns one SR-IOV virtual function (§3.4.2).
	nic   *nicmodel.NIC
	armFn *nicmodel.Function

	workers []*offWorker
}

// offWorker is one host worker core: its SR-IOV virtual function (whose RX
// descriptor ring is where the dispatcher stashes requests, §3.4.5) plus
// the execution engine.
type offWorker struct {
	sys  *Offload
	id   int
	vf   *nicmodel.Function
	exec *cores.Exec
	// pickupPending guards against double-scheduling the pickup delay.
	pickupPending bool
	// post is set while the core is building response/notification packets
	// after finishing or preempting a request; the core is serial, so the
	// next pickup waits for it.
	post bool
}

// NewOffload builds the system on eng. done is invoked at the instant the
// client receives each response; rec (optional) accumulates drops and
// preemption counts.
func NewOffload(eng *sim.Engine, cfg OffloadConfig, rec *stats.Recorder, done func(*task.Request)) *Offload {
	if cfg.Workers <= 0 {
		panic("core: offload needs workers")
	}
	if cfg.Outstanding <= 0 {
		cfg.Outstanding = 1
	}
	if done == nil {
		panic("core: offload needs a completion callback")
	}
	p := cfg.P
	var lgc SchedulerLogic
	if cfg.PriorityClasses > 1 {
		pl := NewPriorityLogic(cfg.Workers, cfg.Outstanding, cfg.PriorityClasses, cfg.Policy, cfg.ClassOf)
		if cfg.Affinity {
			pl.EnableAffinity()
		}
		lgc = pl
	} else {
		l := NewLogic(cfg.Workers, cfg.Outstanding, cfg.Policy)
		if cfg.Affinity {
			l.EnableAffinity()
		}
		lgc = l
	}
	s := &Offload{
		eng:  eng,
		cfg:  cfg,
		lgc:  lgc,
		rec:  rec,
		done: done,
	}

	s.ingress = fabric.NewLink(eng, "client→nic", fabric.LinkConfig{
		Latency: p.ClientWireOneWay, BandwidthBps: p.WireBandwidth,
	})
	s.egress = fabric.NewLink(eng, "nic→client", fabric.LinkConfig{
		Latency: p.ClientWireOneWay, BandwidthBps: p.WireBandwidth,
	})
	s.shmNetQ = fabric.NewLink(eng, "shm net→q", fabric.LinkConfig{Latency: p.ArmShm})
	s.shmQTx = fabric.NewLink(eng, "shm q→tx", fabric.LinkConfig{Latency: p.ArmShm})
	s.shmRxQ = fabric.NewLink(eng, "shm rx→q", fabric.LinkConfig{Latency: p.ArmShm})

	s.networker = fabric.NewStage[*task.Request](eng, "arm-networker", 0,
		fabric.FixedCost[*task.Request](p.ArmNetworkerCost),
		func(r *task.Request) {
			s.shmNetQ.Send(0, func() { s.queueMgr.Submit(qcNew, qEvent{kind: evNew, req: r}) })
		})

	// The queue-manager core round-robins between its two input rings so a
	// saturating arrival flood cannot starve worker notifications.
	s.queueMgr = fabric.NewMultiStage[qEvent](eng, "arm-queue", 2, nil,
		func(ev qEvent) time.Duration {
			switch ev.kind {
			case evFinish, evLoad:
				return p.ArmCreditCost
			default:
				return p.ArmQueueCost
			}
		},
		s.handleQueueEvent)
	if cfg.DispatchBurst > 1 {
		s.queueMgr.SetBurst(cfg.DispatchBurst)
	}

	// The Stingray datapath: every dispatcher↔worker message is an
	// Ethernet frame steered by destination MAC through the NIC with the
	// measured 2.56 µs one-way latency (§3.3).
	s.nic = nicmodel.New(eng, nicmodel.Config{InternalLatency: p.NicHostOneWay})
	s.armFn = s.nic.AddFunction("arm", nicmodel.MACForIndex(0), 0)
	s.armFn.OnRx(func() {
		// The RX ARM core drains the ring as frames land; its own input
		// queue provides the backpressure accounting.
		if f, ok := s.armFn.Poll(); ok {
			s.rxCore.Submit(f.Payload.(qEvent))
		}
	})

	s.txCore = fabric.NewStage[Assignment](eng, "arm-tx", 0,
		fabric.FixedCost[Assignment](p.ArmTxCost),
		func(a Assignment) {
			w := s.workers[a.Worker]
			s.nic.Send(nicmodel.Frame{
				Dst:     w.vf.MAC(),
				Src:     s.armFn.MAC(),
				Bytes:   p.ControlFrameBytes,
				Payload: a.Req,
			})
		})

	s.rxCore = fabric.NewStage[qEvent](eng, "arm-rx", 0,
		fabric.FixedCost[qEvent](p.ArmRxCost),
		func(ev qEvent) {
			s.shmRxQ.Send(0, func() { s.queueMgr.Submit(qcNotif, ev) })
		})

	execCfg := cores.ExecConfig{
		Clock:      p.HostClock,
		Timer:      p.HostTimer,
		Slice:      cfg.Slice,
		SelfArm:    !cfg.DirectInterrupts,
		CtxSave:    p.CtxSaveCost,
		CtxResume:  p.CtxResumeCost,
		CtxMigrate: p.CtxMigratePenalty,
	}
	for i := 0; i < cfg.Workers; i++ {
		w := &offWorker{sys: s, id: i}
		// The VF ring holds the stashed requests; credits guarantee it
		// never overflows, and the +1 headroom plus drop accounting guard
		// the invariant.
		w.vf = s.nic.AddFunction(fmt.Sprintf("w%d", i),
			nicmodel.MACForIndex(i+1), cfg.Outstanding+1)
		w.vf.OnRx(w.maybeStart)
		w.vf.OnDrop(func(nicmodel.Frame) {
			if s.rec != nil {
				s.rec.RecordDrop()
			}
			if s.mVFDrops != nil {
				s.mVFDrops.Inc()
				s.mDrops.Inc()
			}
		})
		w.exec = cores.NewExec(eng, i, execCfg, w.onComplete, w.onPreempt)
		s.workers = append(s.workers, w)
	}
	if cfg.Metrics != nil {
		s.registerTelemetry(cfg.Metrics)
	}
	return s
}

// registerTelemetry wires every component's probes into reg. Called once
// from NewOffload, after all functions and workers exist.
func (s *Offload) registerTelemetry(reg *telemetry.Registry) {
	s.mShed = reg.Counter("sched", "shed")
	s.mVFDrops = reg.Counter("nic", "vf_drops")
	s.mDrops = reg.Counter("offload", "drops")

	s.lgc.RegisterTelemetry(reg, "sched", s.eng.Now)
	s.networker.RegisterTelemetry(reg, "arm-networker")
	s.queueMgr.RegisterTelemetry(reg, "arm-queue")
	s.txCore.RegisterTelemetry(reg, "arm-tx")
	s.rxCore.RegisterTelemetry(reg, "arm-rx")
	s.ingress.RegisterTelemetry(reg, "fabric/client→nic")
	s.egress.RegisterTelemetry(reg, "fabric/nic→client")
	s.shmNetQ.RegisterTelemetry(reg, "fabric/shm-net→q")
	s.shmQTx.RegisterTelemetry(reg, "fabric/shm-q→tx")
	s.shmRxQ.RegisterTelemetry(reg, "fabric/shm-rx→q")
	s.nic.RegisterTelemetry(reg)
	for i, w := range s.workers {
		w.exec.RegisterTelemetry(reg, fmt.Sprintf("worker%d", i))
	}
	reg.GaugeFunc("offload", "worker_idle_fraction", func() float64 {
		return s.WorkerIdleFraction(s.eng.Now())
	})
}

// Name implements the experiment System interface.
func (s *Offload) Name() string { return "shinjuku-offload" }

// Inject admits a client request at the current instant (its Arrival time).
func (s *Offload) Inject(req *task.Request) {
	s.trace(trace.Arrive, req.ID, -1)
	s.ingress.Send(s.cfg.P.RequestFrameBytes, func() {
		s.trace(trace.Ingress, req.ID, -1)
		s.networker.Submit(req)
	})
}

// trace records a lifecycle event when tracing is enabled.
func (s *Offload) trace(kind trace.Kind, reqID uint64, worker int) {
	if s.cfg.Tracer != nil {
		s.cfg.Tracer.Record(s.eng.Now(), kind, reqID, worker)
	}
}

// handleQueueEvent runs on the queue-manager ARM core.
func (s *Offload) handleQueueEvent(ev qEvent) {
	var as []Assignment
	now := s.eng.Now()
	switch ev.kind {
	case evNew:
		if s.cfg.AdmissionLimit > 0 && s.lgc.QueueLen() >= s.cfg.AdmissionLimit {
			// NIC-side load shedding: the request is dropped before it
			// consumes any host resource (§5.2). The client sees no
			// response — open-loop clients count it as a loss.
			s.shed++
			s.trace(trace.Drop, ev.req.ID, -1)
			if s.rec != nil {
				s.rec.RecordDrop()
			}
			if s.mShed != nil {
				s.mShed.Inc()
				s.mDrops.Inc()
			}
			return
		}
		s.trace(trace.Enqueue, ev.req.ID, -1)
		as = s.lgc.Enqueue(now, ev.req)
	case evFinish:
		as = s.lgc.Complete(ev.worker)
	case evPreempted:
		s.trace(trace.Enqueue, ev.req.ID, -1)
		as = s.lgc.Preempted(now, ev.worker, ev.req)
	case evLoad:
		s.lgc.ReportLoadAt(now, ev.worker, ev.load)
	}
	for _, a := range as {
		a := a
		s.trace(trace.Dispatch, a.Req.ID, a.Worker)
		s.shmQTx.Send(0, func() { s.txCore.Submit(a) })
	}
}

// maybeStart begins the next stashed request if the core is free. The
// pickup cost models pulling the packet out of the VF's RX ring and
// spawning or resuming a context (§3.4.3).
func (w *offWorker) maybeStart() {
	if w.exec.Busy() || w.post || w.pickupPending || w.vf.Pending() == 0 {
		return
	}
	w.pickupPending = true
	w.sys.eng.After(w.sys.cfg.P.PickupCost(w.sys.cfg.DDIOToL1), func() {
		w.pickupPending = false
		frame, ok := w.vf.Poll()
		if !ok {
			return
		}
		req := frame.Payload.(*task.Request)
		w.sys.trace(trace.Start, req.ID, w.id)
		w.exec.Start(req)
		if w.sys.cfg.LoadFeedback {
			w.reportLoad()
		}
		if w.sys.cfg.DirectInterrupts && w.sys.cfg.Slice > 0 && req.Remaining > w.sys.cfg.Slice {
			w.armRemoteSlice(req)
		}
	})
}

// armRemoteSlice models the §5.1(3) ablation: the NIC tracks the slice and
// posts an interrupt over the low-latency path when it expires.
func (w *offWorker) armRemoteSlice(req *task.Request) {
	slice := w.sys.cfg.Slice
	delivery := w.sys.cfg.P.CXLOneWay
	w.sys.eng.After(slice+delivery, func() {
		if w.exec.Current() == req {
			w.exec.Interrupt()
		}
	})
}

// onComplete handles a finished request: build and send the client response
// and the FINISH notification, then pick up the next stashed request.
func (w *offWorker) onComplete(req *task.Request) {
	p := w.sys.cfg.P
	sys := w.sys
	sys.trace(trace.Complete, req.ID, w.id)
	w.post = true
	sys.eng.After(p.WorkerResponseCost, func() {
		sys.egress.Send(p.ResponseFrameBytes, func() {
			sys.trace(trace.Respond, req.ID, -1)
			sys.done(req)
		})
		sys.eng.After(p.WorkerNotifyCost, func() {
			w.notifyDispatcher(qEvent{kind: evFinish, worker: w.id})
			w.post = false
			w.maybeStart()
		})
	})
	if sys.cfg.LoadFeedback {
		w.reportLoad()
	}
}

// onPreempt handles a slice expiry: notify the dispatcher (the request body
// and context stay in host DRAM; only the descriptor travels, §3.4.3) and
// start the next stashed request.
func (w *offWorker) onPreempt(req *task.Request) {
	p := w.sys.cfg.P
	sys := w.sys
	sys.trace(trace.Preempt, req.ID, w.id)
	if sys.rec != nil {
		sys.rec.RecordPreemption()
	}
	w.post = true
	sys.eng.After(p.WorkerNotifyCost, func() {
		w.notifyDispatcher(qEvent{kind: evPreempted, worker: w.id, req: req})
		w.post = false
		w.maybeStart()
	})
	if sys.cfg.LoadFeedback {
		w.reportLoad()
	}
}

// notifyDispatcher sends a worker→dispatcher control frame through the NIC
// to the ARM complex's interface.
func (w *offWorker) notifyDispatcher(ev qEvent) {
	w.sys.nic.Send(nicmodel.Frame{
		Dst:     w.sys.armFn.MAC(),
		Src:     w.vf.MAC(),
		Bytes:   w.sys.cfg.P.ControlFrameBytes,
		Payload: ev,
	})
}

// reportLoad sends the worker's instantaneous load (remaining work in ns,
// executing plus stashed) to the NIC — the fine-grained feedback of §3.1.
func (w *offWorker) reportLoad() {
	var load int64
	if cur := w.exec.Current(); cur != nil {
		load += int64(cur.Remaining)
	}
	w.vf.Each(func(f nicmodel.Frame) {
		if r, ok := f.Payload.(*task.Request); ok {
			load += int64(r.Remaining)
		}
	})
	id := w.id
	w.sys.nic.Send(nicmodel.Frame{
		Dst:     w.sys.armFn.MAC(),
		Src:     w.vf.MAC(),
		Bytes:   w.sys.cfg.P.ControlFrameBytes,
		Payload: qEvent{kind: evLoad, worker: id, load: load},
	})
}

// WorkerIdleFraction returns the mean idle fraction across worker cores.
func (s *Offload) WorkerIdleFraction(now sim.Time) float64 {
	var sum float64
	for _, w := range s.workers {
		sum += w.exec.Track.IdleFraction(now)
	}
	return sum / float64(len(s.workers))
}

// ArmWorkerTrackers starts worker busy-time accounting at now (measurement
// window start).
func (s *Offload) ArmWorkerTrackers(now sim.Time) {
	for _, w := range s.workers {
		w.exec.Track.Arm(now)
	}
}

// QueueLen exposes the central queue depth (tests and debugging).
func (s *Offload) QueueLen() int { return s.lgc.QueueLen() }

// Shed returns the number of arrivals rejected by NIC-side admission
// control (only nonzero when AdmissionLimit is set).
func (s *Offload) Shed() uint64 { return s.shed }

// Scheduler exposes the underlying scheduler state machine.
func (s *Offload) Scheduler() SchedulerLogic { return s.lgc }

// DispatcherUtilization returns the busy fraction of the queue-manager ARM
// core since its tracker was armed — the bottleneck metric of §5.1.
func (s *Offload) DispatcherUtilization(now sim.Time) float64 {
	return s.queueMgr.BusyTracker().BusyFraction(now)
}

// ArmDispatcherTracker starts dispatcher utilization accounting.
func (s *Offload) ArmDispatcherTracker(now sim.Time) {
	s.queueMgr.BusyTracker().Arm(now)
	s.networker.BusyTracker().Arm(now)
	s.txCore.BusyTracker().Arm(now)
	s.rxCore.BusyTracker().Arm(now)
}

// Completions returns total completed requests across workers.
func (s *Offload) Completions() uint64 {
	var n uint64
	for _, w := range s.workers {
		n += w.exec.Completions()
	}
	return n
}

// Preemptions returns total preemptions taken across workers.
func (s *Offload) Preemptions() uint64 {
	var n uint64
	for _, w := range s.workers {
		n += w.exec.Preemptions()
	}
	return n
}

// Migrations returns how many preempted requests resumed on a different
// core than they last ran on (each paid the cache-migration penalty).
func (s *Offload) Migrations() uint64 {
	var n uint64
	for _, w := range s.workers {
		n += w.exec.Migrations()
	}
	return n
}
