package faults

import (
	"math/rand/v2"
	"sort"
	"time"

	"mindgap/internal/sim"
	"mindgap/internal/telemetry"
)

// StretchFunc converts an amount of work beginning at a simulation
// instant into the wall-clock duration it takes under the active fault
// timeline. The result is always >= work.
type StretchFunc func(at sim.Time, work time.Duration) time.Duration

// Schedule is one run's compiled fault schedule: the Spec's windows
// resolved into timelines, burst windows materialized from the seeded
// stream, and the per-message loss stream ready to draw. Build one
// Schedule per system instance — it accumulates counters and consumes
// its random stream as the run progresses, so instances must never be
// shared across engines.
type Schedule struct {
	spec Spec
	rng  *rand.Rand

	nic     timeline // crash (factor 0) overlaid on slowdown spans
	crash   timeline // crash spans alone, for NICDown / degradation
	workers timeline // stall spans (factor 0)
	stall   map[int]bool
	loss    timeline // explicit + burst loss windows
	delay   timeline // explicit + burst delay windows

	lossDrops uint64
	delayHits uint64
}

// New compiles a validated spec into a run-ready schedule. The seed is
// the scenario seed; the schedule derives its own stream from it so
// fault randomness never perturbs the load generator's arrivals. New
// panics on an invalid spec — callers surface errors via Spec.Validate.
func New(sp Spec, seed uint64) *Schedule {
	if err := sp.Validate(); err != nil {
		panic(err)
	}
	s := &Schedule{
		spec: sp,
		rng:  rand.New(rand.NewPCG(seed, seed^0x6661756c7473)), // "faults"
	}
	s.crash = mergeWindows(sp.NICCrash, 0)
	s.nic = overlay(mergeWindows(sp.NICSlow, sp.NICSlowFactor), s.crash)
	s.workers = mergeWindows(sp.WorkerStall, 0)
	if len(sp.StallWorkers) > 0 {
		s.stall = make(map[int]bool, len(sp.StallWorkers))
		for _, w := range sp.StallWorkers {
			s.stall[w] = true
		}
	}
	// Burst materialization order is fixed (loss, then delay): it is part
	// of the schedule's deterministic identity.
	s.loss = mergeWindows(append(append([]Window(nil), sp.LinkLoss...), s.genBursts(sp.LossBursts)...), 0)
	s.delay = mergeWindows(append(append([]Window(nil), sp.LinkDelay...), s.genBursts(sp.DelayBursts)...), 0)
	return s
}

// genBursts draws b.N windows from the schedule's stream: uniform starts
// in [0, Horizon), exponential lengths of mean MeanLen, sorted by start
// so the resulting timeline is independent of draw order.
func (s *Schedule) genBursts(b *Bursts) []Window {
	if b == nil {
		return nil
	}
	ws := make([]Window, 0, b.N)
	for i := 0; i < b.N; i++ {
		start := Duration(s.rng.Float64() * float64(b.Horizon))
		length := Duration(s.rng.ExpFloat64() * float64(b.MeanLen))
		if length <= 0 {
			length = 1
		}
		ws = append(ws, Window{Start: start, End: start + length})
	}
	sort.Slice(ws, func(i, j int) bool { return ws[i].Start < ws[j].Start })
	return ws
}

// Spec returns the schedule's source spec.
func (s *Schedule) Spec() Spec { return s.spec }

// NICStretch returns the ARM-core stretch function, or nil when the spec
// has no NIC crash or slowdown windows — a nil hook is the zero-overhead
// healthy path.
func (s *Schedule) NICStretch() StretchFunc {
	if len(s.nic) == 0 {
		return nil
	}
	return s.nic.stretch
}

// WorkerStretch returns the stall stretch function for one worker, or
// nil when that worker never stalls.
func (s *Schedule) WorkerStretch(id int) StretchFunc {
	if len(s.workers) == 0 {
		return nil
	}
	if s.stall != nil && !s.stall[id] {
		return nil
	}
	return s.workers.stretch
}

// NICDown reports whether every NIC ARM core is inside a crash window.
func (s *Schedule) NICDown(now sim.Time) bool { return s.crash.contains(now) }

// NICRecoveryAt returns the end of the crash window containing now, or
// now itself when the NIC is up.
func (s *Schedule) NICRecoveryAt(now sim.Time) sim.Time { return s.crash.endOf(now) }

// CrashWindows returns the resolved crash windows — the bench recovery
// table uses them to place its phase boundaries.
func (s *Schedule) CrashWindows() []Window {
	ws := make([]Window, 0, len(s.crash))
	for _, sp := range s.crash {
		ws = append(ws, Window{Start: Duration(sp.start), End: Duration(sp.end)})
	}
	return ws
}

// HasLinkFaults reports whether any loss or delay window exists; when
// false the link hook is left nil and Send runs its pre-fault path.
func (s *Schedule) HasLinkFaults() bool { return len(s.loss) > 0 || len(s.delay) > 0 }

// LinkFault is consulted once per NIC↔host fabric message at send time.
// It reports whether the message is lost and any extra propagation
// latency. Loss draws happen only inside loss windows, in simulation
// event order, so the stream is deterministic.
func (s *Schedule) LinkFault(now sim.Time) (drop bool, extra time.Duration) {
	if s.loss.contains(now) && s.rng.Float64() < s.spec.LossRate {
		s.lossDrops++
		return true, 0
	}
	if s.delay.contains(now) {
		s.delayHits++
		extra = s.spec.DelayExtra.D()
	}
	return false, extra
}

// Timeout returns the base per-dispatch timeout (zero disables it).
func (s *Schedule) Timeout() time.Duration { return s.spec.Timeout.D() }

// Retries returns the retry budget per request.
func (s *Schedule) Retries() int { return s.spec.Retries }

// AttemptTimeout returns the timeout armed for the given dispatch
// attempt (0-based): Timeout · Backoff^attempt.
func (s *Schedule) AttemptTimeout(attempt int) time.Duration {
	d := float64(s.spec.Timeout)
	b := s.spec.backoff()
	for i := 0; i < attempt; i++ {
		d *= b
	}
	return time.Duration(d)
}

// Degrade reports whether arrivals fall back to hash steering while the
// NIC ARM cores are crashed.
func (s *Schedule) Degrade() bool { return s.spec.Degrade }

// LossDrops returns how many fabric messages the loss stream has eaten.
func (s *Schedule) LossDrops() uint64 { return s.lossDrops }

// DelayHits returns how many fabric messages took the delay penalty.
func (s *Schedule) DelayHits() uint64 { return s.delayHits }

// RegisterTelemetry exposes the schedule's counters on reg under the
// "faults" component.
func (s *Schedule) RegisterTelemetry(reg *telemetry.Registry) {
	reg.GaugeFunc("faults", "link_loss_drops", func() float64 { return float64(s.lossDrops) })
	reg.GaugeFunc("faults", "link_delay_hits", func() float64 { return float64(s.delayHits) })
}
