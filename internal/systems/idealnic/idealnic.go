// Package idealnic builds the §5 "ideal SmartNIC" ablations: the
// Shinjuku-Offload architecture with each hardware limitation of §5.1
// removed in turn, to show which fix recovers the Figure 6 loss.
//
//   - WithCXL: coherent shared memory replaces packet-based NIC↔host
//     communication (§5.1 suggestion 2) — 0.5 µs one way instead of
//     2.56 µs, with cache-line-cheap message construction.
//   - WithLineRate: the dispatcher runs in FPGA/ASIC hardware at line rate
//     (§5.1 suggestion 1) instead of ARM cores.
//   - WithDirectInterrupts: the NIC posts preemption interrupts straight to
//     host cores (§5.1 suggestion 3), removing the self-arm timer and its
//     unnecessary preemptions.
//   - Full: all three combined — the paper's ideal NIC (§3.1).
package idealnic

import (
	"time"

	"mindgap/internal/core"
	"mindgap/internal/params"
	"mindgap/internal/sim"
	"mindgap/internal/stats"
	"mindgap/internal/task"
)

// Config describes the ablation point.
type Config struct {
	// P is the baseline hardware cost model (before ablations).
	P params.Params
	// Workers, Outstanding, Slice, Policy as in core.OffloadConfig.
	Workers     int
	Outstanding int
	Slice       time.Duration
	Policy      core.Policy

	// CXL, LineRate, DirectInterrupts select which §5.1 fixes to apply.
	CXL              bool
	LineRate         bool
	DirectInterrupts bool
}

// New assembles the ablated system on top of the core Offload machinery.
func New(eng *sim.Engine, cfg Config, rec *stats.Recorder, done func(*task.Request)) *core.Offload {
	p := cfg.P
	if cfg.CXL {
		p = p.WithCXL()
	}
	if cfg.LineRate {
		p = p.WithLineRateScheduler()
	}
	return core.NewOffload(eng, core.OffloadConfig{
		P:                p,
		Workers:          cfg.Workers,
		Outstanding:      cfg.Outstanding,
		Slice:            cfg.Slice,
		Policy:           cfg.Policy,
		DirectInterrupts: cfg.DirectInterrupts,
	}, rec, done)
}

// NameFor returns a descriptive system name for the ablation point.
func NameFor(cfg Config) string {
	name := "idealnic"
	if cfg.CXL {
		name += "+cxl"
	}
	if cfg.LineRate {
		name += "+linerate"
	}
	if cfg.DirectInterrupts {
		name += "+directirq"
	}
	return name
}
