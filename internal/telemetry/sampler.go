package telemetry

import (
	"sort"
	"time"

	"mindgap/internal/sim"
	"mindgap/internal/stats"
)

// Sampler auto-samples registry gauges into stats.TimeSeries on a
// simulation engine — the bridge that turns instantaneous probes (queue
// depth, per-core busy state) into the time-resolved curves behind
// queue-dynamics plots and transient-behaviour assertions.
type Sampler struct {
	series map[string]*stats.TimeSeries
}

// SampleGauges starts one stats.TimeSeries per named gauge, sampling every
// interval and keeping at most max samples each (0 = the TimeSeries
// default). With no names given, every gauge registered at call time is
// sampled. Unknown names are ignored (the component may be disabled in
// this configuration).
func (r *Registry) SampleGauges(eng *sim.Engine, interval time.Duration, max int, names ...string) *Sampler {
	if len(names) == 0 {
		names = r.GaugeKeys()
	}
	s := &Sampler{series: make(map[string]*stats.TimeSeries, len(names))}
	for _, k := range names {
		r.mu.Lock()
		g, ok := r.gauges[k]
		r.mu.Unlock()
		if !ok {
			continue
		}
		s.series[k] = stats.NewTimeSeries(eng, interval, max, g.Value)
	}
	return s
}

// Series returns the time series for one gauge key, or nil.
func (s *Sampler) Series(key string) *stats.TimeSeries { return s.series[key] }

// Keys returns the sampled gauge keys in sorted order, so callers that
// emit one series per key produce deterministic output.
func (s *Sampler) Keys() []string {
	out := make([]string, 0, len(s.series))
	for k := range s.series {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Stop ends sampling on every series.
func (s *Sampler) Stop() {
	for _, ts := range s.series {
		ts.Stop()
	}
}
