package maporder_test

import (
	"testing"

	"mindgap/internal/lint/linttest"
	"mindgap/internal/lint/maporder"
)

func TestMapOrder(t *testing.T) {
	linttest.Run(t, maporder.Analyzer, "mindgap/internal/experiment", "testdata/m")
}
