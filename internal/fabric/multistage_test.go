package fabric

import (
	"testing"
	"time"

	"mindgap/internal/sim"
)

func TestMultiStageRoundRobinFairness(t *testing.T) {
	eng := sim.New()
	var served []int
	s := NewMultiStage[int](eng, "q", 2, nil,
		FixedCost[int](100*time.Nanosecond),
		func(v int) { served = append(served, v) })
	// Flood class 0; trickle class 1. Class 1 must interleave, not wait
	// behind the whole class-0 backlog.
	for i := 0; i < 10; i++ {
		s.Submit(0, i)
	}
	s.Submit(1, 100)
	s.Submit(1, 101)
	eng.Run()
	pos := map[int]int{}
	for i, v := range served {
		pos[v] = i
	}
	if pos[100] > 3 || pos[101] > 5 {
		t.Fatalf("class-1 items starved: served order %v", served)
	}
	if len(served) != 12 {
		t.Fatalf("served %d items", len(served))
	}
}

func TestMultiStageSingleClassBehavesLikeStage(t *testing.T) {
	eng := sim.New()
	var done []sim.Time
	s := NewMultiStage[int](eng, "q", 1, nil,
		FixedCost[int](500*time.Nanosecond),
		func(int) { done = append(done, eng.Now()) })
	s.Submit(0, 1)
	s.Submit(0, 2)
	eng.Run()
	if done[0] != sim.Time(500) || done[1] != sim.Time(1000) {
		t.Fatalf("done = %v", done)
	}
}

func TestMultiStageBoundedClass(t *testing.T) {
	eng := sim.New()
	processed := 0
	s := NewMultiStage[int](eng, "q", 2, []int{1, 0},
		FixedCost[int](time.Microsecond),
		func(int) { processed++ })
	s.Submit(0, 1) // in service
	if !s.Submit(0, 2) {
		t.Fatal("first queued item rejected")
	}
	if s.Submit(0, 3) {
		t.Fatal("accepted beyond class-0 limit")
	}
	// Class 1 is unbounded.
	for i := 0; i < 10; i++ {
		if !s.Submit(1, i) {
			t.Fatal("unbounded class rejected item")
		}
	}
	if s.Dropped() != 1 {
		t.Fatalf("Dropped = %d", s.Dropped())
	}
	eng.Run()
	if processed != 12 {
		t.Fatalf("processed = %d", processed)
	}
}

func TestMultiStagePerItemCost(t *testing.T) {
	eng := sim.New()
	var at []sim.Time
	s := NewMultiStage[time.Duration](eng, "q", 2, nil,
		func(d time.Duration) time.Duration { return d },
		func(time.Duration) { at = append(at, eng.Now()) })
	s.Submit(0, 500*time.Nanosecond)
	s.Submit(1, 150*time.Nanosecond)
	eng.Run()
	if at[0] != sim.Time(500) || at[1] != sim.Time(650) {
		t.Fatalf("completion times = %v", at)
	}
}

func TestMultiStageQueueLenAccessors(t *testing.T) {
	eng := sim.New()
	s := NewMultiStage[int](eng, "q", 3, nil,
		FixedCost[int](time.Microsecond), func(int) {})
	s.Submit(0, 1) // in service
	s.Submit(1, 2)
	s.Submit(1, 3)
	s.Submit(2, 4)
	if s.QueueLen(1) != 2 || s.QueueLen(2) != 1 || s.QueueLen(0) != 0 {
		t.Fatalf("queue lens: %d %d %d", s.QueueLen(0), s.QueueLen(1), s.QueueLen(2))
	}
	if s.TotalQueued() != 3 {
		t.Fatalf("TotalQueued = %d", s.TotalQueued())
	}
	if !s.Busy() {
		t.Fatal("stage should be busy")
	}
}

func TestMultiStageBurstDrainsClassInRuns(t *testing.T) {
	eng := sim.New()
	var served []int
	s := NewMultiStage[int](eng, "q", 2, nil,
		FixedCost[int](100*time.Nanosecond),
		func(v int) { served = append(served, v) })
	s.SetBurst(3)
	// Class 0 gets 7 items, class 1 gets 2. With burst 3 the server
	// drains up to 3 consecutive items per class: 0,0,0 then both class-1
	// items (a run of 2 < burst), then the rest of class 0.
	for i := 0; i < 7; i++ {
		s.Submit(0, i)
	}
	s.Submit(1, 100)
	s.Submit(1, 101)
	eng.Run()
	want := []int{0, 1, 2, 100, 101, 3, 4, 5, 6}
	if len(served) != len(want) {
		t.Fatalf("served %v", served)
	}
	for i := range want {
		if served[i] != want[i] {
			t.Fatalf("served = %v, want %v", served, want)
		}
	}
}

func TestMultiStageBurstOneIsFair(t *testing.T) {
	eng := sim.New()
	var served []int
	s := NewMultiStage[int](eng, "q", 2, nil,
		FixedCost[int](100*time.Nanosecond),
		func(v int) { served = append(served, v) })
	s.SetBurst(1)
	for i := 0; i < 4; i++ {
		s.Submit(0, i)
	}
	s.Submit(1, 100)
	eng.Run()
	// Item 100 must be served second-ish, not after all class-0 items.
	for i, v := range served {
		if v == 100 && i > 2 {
			t.Fatalf("burst=1 starved class 1: %v", served)
		}
	}
}

func TestMultiStageSetBurstValidation(t *testing.T) {
	eng := sim.New()
	s := NewMultiStage[int](eng, "q", 1, nil, nil, func(int) {})
	defer func() {
		if recover() == nil {
			t.Fatal("SetBurst(0) did not panic")
		}
	}()
	s.SetBurst(0)
}

func TestMultiStageValidation(t *testing.T) {
	eng := sim.New()
	for _, f := range []func(){
		func() { NewMultiStage[int](eng, "q", 0, nil, nil, func(int) {}) },
		func() { NewMultiStage[int](eng, "q", 2, nil, nil, nil) },
		func() { NewMultiStage[int](eng, "q", 2, []int{1}, nil, func(int) {}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid multistage did not panic")
				}
			}()
			f()
		}()
	}
}
