package scenario

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"time"

	"mindgap/internal/dist"
	"mindgap/internal/faults"
)

// SchemaVersion is baked into every fingerprint. Bump it whenever the
// Spec schema changes meaning (a renamed knob, a reinterpreted field),
// so cached results keyed by older fingerprints are never served.
const SchemaVersion = "mindgap-scenario/1"

// Duration is a time.Duration that serializes as a human-readable
// string ("10µs") in scenario files; plain nanosecond numbers are also
// accepted on decode.
type Duration time.Duration

// D converts back to the standard library type.
func (d Duration) D() time.Duration { return time.Duration(d) }

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("scenario: bad duration %q: %v", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return err
	}
	*d = Duration(n)
	return nil
}

// Knobs is the union of every per-system configuration knob. Which
// fields a given system kind accepts is declared by its registry
// Builder; Build rejects specs that set knobs their system ignores, so
// a typo'd or misplaced knob fails loudly instead of silently running
// the wrong experiment.
type Knobs struct {
	// Workers is the number of host worker cores (all systems).
	Workers int `json:"workers,omitempty"`
	// Outstanding is the per-worker outstanding-request limit k of the
	// §3.4.5 queuing optimization (offload, idealnic, shinjuku ablations).
	Outstanding int `json:"outstanding,omitempty"`
	// Slice is the preemption quantum; zero disables preemption.
	Slice Duration `json:"slice,omitempty"`
	// Policy is the worker-selection policy: "least-outstanding" (the
	// default), "round-robin", or "informed-least-loaded".
	Policy string `json:"policy,omitempty"`
	// LoadFeedback enables the host→NIC load reports that feed the
	// informed-least-loaded policy (offload).
	LoadFeedback bool `json:"load_feedback,omitempty"`
	// DispatchBurst is the queue-manager core's DPDK-style burst size
	// (offload; see the Figure 3 burst ablation).
	DispatchBurst int `json:"dispatch_burst,omitempty"`
	// DDIOToL1 models §5.2 direct-to-L1 packet placement (offload).
	DDIOToL1 bool `json:"ddio_to_l1,omitempty"`
	// AdmissionLimit bounds the central queue; the NIC sheds arrivals
	// beyond it (offload).
	AdmissionLimit int `json:"admission_limit,omitempty"`
	// Affinity resumes preempted requests on their previous worker when
	// possible (offload, §3.1).
	Affinity bool `json:"affinity,omitempty"`
	// Sockets models a multi-socket host with NUMA-blind dispatch
	// (shinjuku, §1).
	Sockets int `json:"sockets,omitempty"`
	// QueueCap bounds each per-core queue (rss/zygos/flowdir; 0 =
	// unbounded).
	QueueCap int `json:"queue_cap,omitempty"`
	// MinWorkers, Interval, UpThreshold and DownThreshold tune the
	// elastic provisioning loop (erss).
	MinWorkers    int      `json:"min_workers,omitempty"`
	Interval      Duration `json:"interval,omitempty"`
	UpThreshold   float64  `json:"up_threshold,omitempty"`
	DownThreshold float64  `json:"down_threshold,omitempty"`
	// CXL, LineRate and DirectInterrupts select the §5.1 ideal-NIC
	// ablations (idealnic).
	CXL              bool `json:"cxl,omitempty"`
	LineRate         bool `json:"linerate,omitempty"`
	DirectInterrupts bool `json:"directirq,omitempty"`
	// RuleCapacity, InsertRate and InsertQueue bound the fast-path rule
	// table and its insertion pipeline (flowrule).
	RuleCapacity int     `json:"rule_capacity,omitempty"`
	InsertRate   float64 `json:"insert_rate,omitempty"`
	InsertQueue  int     `json:"insert_queue,omitempty"`
	// OffloadThreshold is the packets-seen bar a flow must clear to earn
	// a fast-path rule; AdaptiveThreshold hands the bar to the adaptive
	// controller, adjusting every AdaptInterval (flowrule).
	OffloadThreshold  int      `json:"offload_threshold,omitempty"`
	AdaptiveThreshold bool     `json:"adaptive_threshold,omitempty"`
	AdaptInterval     Duration `json:"adapt_interval,omitempty"`
	// IdleTimeout evicts rules for flows gone quiet (flowrule).
	IdleTimeout Duration `json:"idle_timeout,omitempty"`
	// FastLatency and SlowLatency are the hardware fast-path transit
	// time and the software slow-path traversal overhead; SlowQueue
	// bounds the slow path's queue in batches (flowrule).
	FastLatency Duration `json:"fast_latency,omitempty"`
	SlowLatency Duration `json:"slow_latency,omitempty"`
	SlowQueue   int      `json:"slow_queue,omitempty"`
}

// set returns the JSON names of every non-zero knob, in declaration
// order, for per-kind validation and error messages.
func (k Knobs) set() []string {
	var out []string
	add := func(name string, isSet bool) {
		if isSet {
			out = append(out, name)
		}
	}
	add("workers", k.Workers != 0)
	add("outstanding", k.Outstanding != 0)
	add("slice", k.Slice != 0)
	add("policy", k.Policy != "")
	add("load_feedback", k.LoadFeedback)
	add("dispatch_burst", k.DispatchBurst != 0)
	add("ddio_to_l1", k.DDIOToL1)
	add("admission_limit", k.AdmissionLimit != 0)
	add("affinity", k.Affinity)
	add("sockets", k.Sockets != 0)
	add("queue_cap", k.QueueCap != 0)
	add("min_workers", k.MinWorkers != 0)
	add("interval", k.Interval != 0)
	add("up_threshold", k.UpThreshold != 0)     //lint:allow floateq exact zero means "field unset", not a computed value
	add("down_threshold", k.DownThreshold != 0) //lint:allow floateq exact zero means "field unset", not a computed value
	add("cxl", k.CXL)
	add("linerate", k.LineRate)
	add("directirq", k.DirectInterrupts)
	add("rule_capacity", k.RuleCapacity != 0)
	add("insert_rate", k.InsertRate != 0) //lint:allow floateq exact zero means "field unset", not a computed value
	add("insert_queue", k.InsertQueue != 0)
	add("offload_threshold", k.OffloadThreshold != 0)
	add("adaptive_threshold", k.AdaptiveThreshold)
	add("adapt_interval", k.AdaptInterval != 0)
	add("idle_timeout", k.IdleTimeout != 0)
	add("fast_latency", k.FastLatency != 0)
	add("slow_latency", k.SlowLatency != 0)
	add("slow_queue", k.SlowQueue != 0)
	return out
}

// KeysSpec samples per-request application keys from a Zipf popularity
// distribution (key-steering baselines read them; informed schedulers
// ignore them).
type KeysSpec struct {
	N    int     `json:"n"`
	Skew float64 `json:"skew"`
}

// Keys builds the sampler.
func (k KeysSpec) Keys() *dist.ZipfKeys { return dist.NewZipfKeys(k.N, k.Skew) }

// Grid is an inclusive arithmetic load grid: Lo, Lo+Step, ..., Hi.
type Grid struct {
	Lo   float64 `json:"lo"`
	Hi   float64 `json:"hi"`
	Step float64 `json:"step"`
}

// Points materializes the grid. Points are generated by integer index
// (Lo + i·Step), never by accumulating x += Step, so long grids do not
// drift and a grid's points — and every fingerprint derived from them —
// are exactly reproducible.
func (g Grid) Points() []float64 {
	if g.Step <= 0 || g.Hi < g.Lo {
		return nil
	}
	n := int(math.Floor((g.Hi-g.Lo)/g.Step + 0.5))
	out := make([]float64, 0, n+1)
	for i := 0; i <= n; i++ {
		x := g.Lo + float64(i)*g.Step
		if x > g.Hi+g.Step/2 {
			break
		}
		out = append(out, x)
	}
	return out
}

// KSweep varies the per-worker outstanding limit k from Lo to Hi at a
// fixed offered load — the x-axis of the paper's Figure 3.
type KSweep struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// FSweep varies the concurrent-flow population geometrically (Lo,
// Lo·Mul, ... up to Hi) at a fixed offered load — the x-axis of the
// flow-rule figure, where the question is how the fast-path hit rate
// and the slow path's headroom survive millions of concurrent flows.
// Points are exact integers, never accumulated floats.
type FSweep struct {
	Lo  int `json:"lo"`
	Hi  int `json:"hi"`
	Mul int `json:"mul"`
}

// Points materializes the population sweep.
func (f FSweep) Points() []int {
	if f.Lo < 1 || f.Mul < 2 || f.Hi < f.Lo {
		return nil
	}
	var out []int
	for n := f.Lo; n <= f.Hi; n *= f.Mul {
		out = append(out, n)
		if n > f.Hi/f.Mul {
			break // n*Mul would overflow past Hi
		}
	}
	return out
}

// FlowSpec keys the workload by flow identity: a fixed concurrent-flow
// population with an exact elephant/rat split, per-class packet trains,
// and per-class DPDK-style batch sizes. Systems that offload per-flow
// state (flowrule) require it; classic i.i.d. systems reject it. All
// fields beyond Flows are optional, with the loadgen defaults (4/64
// batches, 4/1024 trains) filling the gaps.
type FlowSpec struct {
	// Flows is the concurrent flow population (an fsweep load overrides
	// it per point).
	Flows int `json:"flows"`
	// ElephantFraction is the exact fraction of spawned flows that are
	// elephants.
	ElephantFraction float64 `json:"elephant_fraction,omitempty"`
	// RatBatch and ElephantBatch are packets per emitted batch.
	RatBatch      int `json:"rat_batch,omitempty"`
	ElephantBatch int `json:"elephant_batch,omitempty"`
	// RatTrain and ElephantTrain are packets per flow lifetime.
	RatTrain      int `json:"rat_train,omitempty"`
	ElephantTrain int `json:"elephant_train,omitempty"`
}

func (f FlowSpec) validate(hasFSweep bool) error {
	if f.Flows <= 0 && !hasFSweep {
		return fmt.Errorf("scenario: flow workload needs flows > 0 (or an fsweep load)")
	}
	if f.Flows < 0 {
		return fmt.Errorf("scenario: negative flow population %d", f.Flows)
	}
	if f.ElephantFraction < 0 || f.ElephantFraction > 1 {
		return fmt.Errorf("scenario: elephant_fraction %g outside [0, 1]", f.ElephantFraction)
	}
	if f.RatBatch < 0 || f.ElephantBatch < 0 || f.RatTrain < 0 || f.ElephantTrain < 0 {
		return fmt.Errorf("scenario: negative flow batch/train sizes")
	}
	return nil
}

// LoadSpec declares how a scenario is loaded. Exactly one of RPS, Rho
// or Grid applies; KSweep additionally requires RPS (the saturating
// load the k sweep runs at).
type LoadSpec struct {
	// RPS is a single offered load.
	RPS float64 `json:"rps,omitempty"`
	// Rho derives a single offered load from a target utilization:
	// rho · workers / mean service time.
	Rho float64 `json:"rho,omitempty"`
	// Grid sweeps offered load across an arithmetic grid.
	Grid *Grid `json:"grid,omitempty"`
	// KSweep sweeps the outstanding limit at the fixed RPS.
	KSweep *KSweep `json:"ksweep,omitempty"`
	// FSweep sweeps the concurrent-flow population at the fixed RPS
	// (flow-keyed workloads only).
	FSweep *FSweep `json:"fsweep,omitempty"`
}

// QualitySpec optionally pins sample counts inside a spec; most specs
// leave it nil and take the run-time quality (quick/full) instead.
type QualitySpec struct {
	// Preset names a standard quality: "quick" or "full".
	Preset string `json:"preset,omitempty"`
	// Warmup completions are discarded; Measure completions recorded.
	// Either overrides the preset when non-zero.
	Warmup  int `json:"warmup,omitempty"`
	Measure int `json:"measure,omitempty"`
}

// Spec is the serializable description of one simulated scenario: which
// system to build (by registry name), how it is configured, what drives
// it, and how it is measured. Specs are plain data — they JSON-encode
// canonically, round-trip exactly, and fingerprint stably — so every
// layer (experiment presets, CLIs, examples, the result cache) can
// share one description of a system under test.
type Spec struct {
	// Name optionally labels the spec (presets use the series label).
	Name string `json:"name,omitempty"`
	// System is the registry name: offload, shinjuku, rss, zygos,
	// flowdir, rpcvalet, erss, or idealnic.
	System string `json:"system"`
	// Knobs configures the system; which knobs apply depends on System.
	Knobs *Knobs `json:"knobs,omitempty"`
	// Workload is the service-time distribution in the dist
	// mini-language (e.g. "bimodal:0.995:5µs:100µs").
	Workload string `json:"workload,omitempty"`
	// Keys optionally samples per-request application keys.
	Keys *KeysSpec `json:"keys,omitempty"`
	// Flow keys the workload by flow identity: population, elephant/rat
	// mix, batch and train sizes. Only systems whose builders declare
	// FlowWorkload accept it — and they require it. Absent (nil), the
	// field is omitted from the canonical encoding, so pre-flow specs
	// keep their fingerprints.
	Flow *FlowSpec `json:"flow,omitempty"`
	// Load declares the offered load (single point, utilization-derived
	// point, load grid, k sweep, or flow-population sweep).
	Load *LoadSpec `json:"load,omitempty"`
	// Quality optionally pins sample counts.
	Quality *QualitySpec `json:"quality,omitempty"`
	// Seed fixes the workload streams (0 = take the run-time default).
	Seed uint64 `json:"seed,omitempty"`
	// Seeds requests replicated runs across an explicit seed list.
	Seeds []uint64 `json:"seeds,omitempty"`
	// Telemetry asks the run to wire a metrics registry through the
	// system's probes; Trace asks for request-lifecycle tracing. Both
	// are only honored by systems that support them.
	Telemetry bool `json:"telemetry,omitempty"`
	Trace     bool `json:"trace,omitempty"`
	// Attribution asks the run to attach a latency-attribution collector:
	// per-request phase decomposition (ingress / nic-queue / fabric /
	// host-queue / service / preemption overhead) plus a ground-truth
	// audit of every dispatch decision. Only systems whose builders
	// declare Attributable accept it. Absent (false), the field is
	// omitted from the canonical encoding, so pre-attribution specs keep
	// their fingerprints.
	Attribution bool `json:"attribution,omitempty"`
	// Faults optionally attaches a deterministic fault schedule (NIC
	// ARM-core crash/slowdown windows, fabric loss/latency bursts, host
	// worker stalls) plus the timeout/retry/degradation policy. Only
	// systems whose builders declare Faultable accept it, and a faulted
	// spec must pin its Seed: the fault timeline is part of the scenario's
	// identity, never a run-time default. Absent (nil), the field is
	// omitted from the canonical encoding, so pre-fault specs keep their
	// fingerprints.
	Faults *faults.Spec `json:"faults,omitempty"`
}

// KnobsOrZero returns the knob set, zero-valued when unset.
func (s Spec) KnobsOrZero() Knobs {
	if s.Knobs == nil {
		return Knobs{}
	}
	return *s.Knobs
}

// WithOutstanding returns a copy of the spec with the outstanding-limit
// knob replaced (the k-sweep axis).
func (s Spec) WithOutstanding(k int) Spec {
	kn := s.KnobsOrZero()
	kn.Outstanding = k
	s.Knobs = &kn
	return s
}

// WithSlice returns a copy of the spec with the preemption quantum
// replaced (the preemption on/off axis of the dispersion table).
func (s Spec) WithSlice(d time.Duration) Spec {
	kn := s.KnobsOrZero()
	kn.Slice = Duration(d)
	s.Knobs = &kn
	return s
}

// WithFlows returns a copy of the spec with the concurrent-flow
// population replaced (the fsweep axis).
func (s Spec) WithFlows(n int) Spec {
	var fl FlowSpec
	if s.Flow != nil {
		fl = *s.Flow
	}
	fl.Flows = n
	s.Flow = &fl
	return s
}

// Encode renders the spec in the canonical on-disk form: two-space
// indented JSON with a trailing newline. Decode(Encode(s)) is the
// identity; the scenarios package's golden tests enforce it for every
// checked-in preset.
func (s Spec) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Decode parses a spec, rejecting unknown fields so a misspelled knob
// cannot silently vanish.
func Decode(b []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("scenario: decode spec: %w", err)
	}
	return s, nil
}

// Fingerprint returns the canonical identity of the spec: a SHA-256
// over the schema version and the compact canonical encoding. Two specs
// fingerprint equal iff they describe the same scenario, which makes
// the fingerprint the natural result-cache key component.
func (s Spec) Fingerprint() string {
	b, err := json.Marshal(s)
	if err != nil {
		// Spec is a plain data struct; Marshal cannot fail. Guard anyway:
		// a constant fingerprint merely widens cache collisions, it never
		// corrupts results.
		return "spec-unknown"
	}
	h := sha256.New()
	h.Write([]byte(SchemaVersion))
	h.Write([]byte{0})
	h.Write(b)
	return "spec-" + hex.EncodeToString(h.Sum(nil)[:12])
}

// Validate checks everything that can be checked without building: the
// system is registered, only knobs that system accepts are set, the
// workload parses, and the load declaration is coherent.
func (s Spec) Validate() error {
	b, ok := Lookup(s.System)
	if !ok {
		return unknownSystemError(s.System)
	}
	if err := b.checkKnobs(s.KnobsOrZero()); err != nil {
		return err
	}
	if s.Workload != "" {
		if _, err := dist.Parse(s.Workload); err != nil {
			return fmt.Errorf("scenario: spec %q: %w", s.System, err)
		}
	}
	if s.Attribution && !b.Attributable {
		return fmt.Errorf("scenario: system %q does not support latency attribution", s.System)
	}
	if s.Keys != nil && (s.Keys.N <= 0 || s.Keys.Skew < 0) {
		return fmt.Errorf("scenario: keys need n > 0 and skew >= 0 (got n=%d skew=%g)", s.Keys.N, s.Keys.Skew)
	}
	if err := s.checkFlow(b); err != nil {
		return err
	}
	if s.Load != nil {
		if err := s.Load.validate(); err != nil {
			return err
		}
	}
	if s.Faults != nil {
		if s.Faults.Empty() {
			return fmt.Errorf("scenario: %s: faults block present but empty — drop it for a healthy system", s.System)
		}
		if !b.Faultable {
			return fmt.Errorf("scenario: system %q cannot degrade and rejects fault schedules", s.System)
		}
		if err := s.Faults.Validate(); err != nil {
			return fmt.Errorf("scenario: %s: %w", s.System, err)
		}
		if s.Seed == 0 {
			return fmt.Errorf("scenario: %s: faulted specs must pin a nonzero seed — the fault timeline is part of the scenario identity", s.System)
		}
		if len(s.Seeds) > 0 {
			return fmt.Errorf("scenario: %s: faulted specs take a single pinned seed, not a seeds list", s.System)
		}
	}
	return nil
}

// checkFlow gates the flow-workload block: flow-keyed systems require
// it, classic i.i.d. systems reject it — a spec can't quietly run a
// rule-table system on a flowless stream or vice versa.
func (s Spec) checkFlow(b Builder) error {
	hasFSweep := s.Load != nil && s.Load.FSweep != nil
	if hasFSweep && !b.FlowWorkload {
		return fmt.Errorf("scenario: fsweep needs a flow-keyed system, and %q is not one", s.System)
	}
	if s.Flow != nil && !b.FlowWorkload {
		return fmt.Errorf("scenario: system %q takes an i.i.d. request stream and rejects a flow workload block", s.System)
	}
	if s.Flow == nil && b.FlowWorkload {
		return fmt.Errorf("scenario: system %q keys on flow identity and needs a flow workload block", s.System)
	}
	if s.Flow != nil {
		return s.Flow.validate(hasFSweep)
	}
	return nil
}

func (l LoadSpec) validate() error {
	modes := 0
	if l.RPS < 0 || l.Rho < 0 {
		return fmt.Errorf("scenario: negative load (rps=%g rho=%g)", l.RPS, l.Rho)
	}
	if l.RPS > 0 {
		modes++
	}
	if l.Rho > 0 {
		modes++
	}
	if l.Grid != nil {
		modes++
		if l.Grid.Step <= 0 || l.Grid.Hi < l.Grid.Lo || l.Grid.Lo <= 0 {
			return fmt.Errorf("scenario: bad load grid lo=%g hi=%g step=%g", l.Grid.Lo, l.Grid.Hi, l.Grid.Step)
		}
	}
	if l.KSweep != nil && l.FSweep != nil {
		return fmt.Errorf("scenario: ksweep and fsweep are exclusive")
	}
	if l.KSweep != nil {
		if l.KSweep.Lo < 1 || l.KSweep.Hi < l.KSweep.Lo {
			return fmt.Errorf("scenario: bad ksweep lo=%d hi=%d", l.KSweep.Lo, l.KSweep.Hi)
		}
		if l.RPS <= 0 {
			return fmt.Errorf("scenario: ksweep needs a fixed rps load")
		}
		if l.Grid != nil || l.Rho > 0 {
			return fmt.Errorf("scenario: ksweep combines only with rps")
		}
		return nil
	}
	if l.FSweep != nil {
		if len(l.FSweep.Points()) == 0 {
			return fmt.Errorf("scenario: bad fsweep lo=%d hi=%d mul=%d (need lo>=1, mul>=2, hi>=lo)",
				l.FSweep.Lo, l.FSweep.Hi, l.FSweep.Mul)
		}
		if l.RPS <= 0 {
			return fmt.Errorf("scenario: fsweep needs a fixed rps load")
		}
		if l.Grid != nil || l.Rho > 0 {
			return fmt.Errorf("scenario: fsweep combines only with rps")
		}
		return nil
	}
	if modes != 1 {
		return fmt.Errorf("scenario: load needs exactly one of rps, rho, or grid")
	}
	return nil
}
