package fabric

import (
	"fmt"
	"time"

	"mindgap/internal/sim"
	"mindgap/internal/stats"
	"mindgap/internal/telemetry"
)

// MultiStage is a serial processing element with multiple input queues
// served round-robin — the way a real dispatcher core polls several shared
// memory rings (new requests from the networker, notifications from the RX
// core) so that a flood on one input cannot starve the other (§3.4.1).
//
// Without this fairness a saturating open-loop workload would bury worker
// completion notifications behind an unbounded backlog of new-request
// admissions and throughput would collapse instead of plateauing at the
// stage's service rate.
type MultiStage[T any] struct {
	eng  *sim.Engine
	cost func(T) time.Duration
	done func(T)

	name   string
	qs     []deque[T]
	limits []int
	rr     int
	burst  int // items served from one class before switching (min 1)
	inRun  int // items served consecutively from class rr
	busy   bool
	// cur is the item in service (see Stage.cur: one item per serial
	// server, so the completion event carries no payload).
	cur T
	// served is multiStageServed[T] bound once (see Stage.served).
	served sim.EventFunc

	// stretch mirrors Stage.stretch: fault-timeline cost dilation, nil on
	// the healthy path.
	stretch func(sim.Time, time.Duration) time.Duration

	processed uint64
	dropped   uint64
	busyTrack stats.BusyTracker
}

// NewMultiStage creates a round-robin server with the given number of input
// classes. limits optionally bounds each class queue (nil or 0 entries mean
// unbounded).
func NewMultiStage[T any](eng *sim.Engine, name string, classes int, limits []int, cost func(T) time.Duration, done func(T)) *MultiStage[T] {
	if classes <= 0 {
		panic("fabric: multistage needs at least one class")
	}
	if done == nil {
		panic("fabric: multistage requires a done callback")
	}
	if limits != nil && len(limits) != classes {
		panic("fabric: limits length must match class count")
	}
	s := &MultiStage[T]{
		eng:    eng,
		name:   name,
		qs:     make([]deque[T], classes),
		limits: limits,
		burst:  1,
		cost:   cost,
		done:   done,
	}
	s.served = multiStageServed[T]
	return s
}

// SetBurst makes the server drain up to n items from one class before
// switching to the next — DPDK-style burst polling (rx_burst processes a
// whole batch from one ring). Larger bursts amortize polling in real
// systems but delay the other classes; the Figure 3 burst ablation uses
// this to show how burst processing penalizes small outstanding-request
// limits at high worker counts.
func (s *MultiStage[T]) SetBurst(n int) {
	if n < 1 {
		panic("fabric: burst must be at least 1")
	}
	s.burst = n
}

// Submit offers an item to the given class queue. It reports false (and
// counts a drop) when that class's bounded queue is full.
//
//mindgap:noalloc
func (s *MultiStage[T]) Submit(class int, item T) bool {
	if !s.busy {
		s.busy = true
		s.rr = class
		s.inRun = 1
		s.busyTrack.SetBusy(s.eng.Now(), true)
		s.serve(item)
		return true
	}
	if s.limits != nil && s.limits[class] > 0 && s.qs[class].len() >= s.limits[class] {
		s.dropped++
		return false
	}
	s.qs[class].pushBack(item)
	return true
}

// SetStretch installs a fault-timeline cost dilation (see the stretch
// field). Install before the simulation starts.
func (s *MultiStage[T]) SetStretch(f func(sim.Time, time.Duration) time.Duration) { s.stretch = f }

// serve processes one item then pulls the next in round-robin class order.
//
//mindgap:noalloc
func (s *MultiStage[T]) serve(item T) {
	var d time.Duration
	if s.cost != nil {
		d = s.cost(item)
	}
	if s.stretch != nil {
		d = s.stretch(s.eng.Now(), d)
	}
	s.cur = item
	s.eng.AfterE(d, s.served, s, nil, 0)
}

// multiStageServed fires when the in-service item's processing time
// elapses.
//
//mindgap:noalloc
func multiStageServed[T any](recv, _ any, _ uint64) {
	s := recv.(*MultiStage[T])
	item := s.cur
	s.done(item)
	s.processed++
	if next, ok := s.next(); ok {
		s.serve(next)
		return
	}
	s.busy = false
	var zero T
	s.cur = zero
	s.busyTrack.SetBusy(s.eng.Now(), false)
}

// next picks the following item: continue the current class while its
// burst allowance lasts, then rotate round-robin.
//
//mindgap:noalloc
func (s *MultiStage[T]) next() (T, bool) {
	n := len(s.qs)
	if s.inRun < s.burst {
		if v, ok := s.qs[s.rr].popFront(); ok {
			s.inRun++
			return v, true
		}
	}
	for i := 1; i <= n; i++ {
		c := (s.rr + i) % n
		if v, ok := s.qs[c].popFront(); ok {
			s.rr = c
			s.inRun = 1
			return v, true
		}
	}
	var zero T
	return zero, false
}

// QueueLen returns the queued item count for one class.
func (s *MultiStage[T]) QueueLen(class int) int { return s.qs[class].len() }

// TotalQueued returns queued items across all classes.
func (s *MultiStage[T]) TotalQueued() int {
	total := 0
	for i := range s.qs {
		total += s.qs[i].len()
	}
	return total
}

// Busy reports whether an item is in service.
func (s *MultiStage[T]) Busy() bool { return s.busy }

// Processed returns the number of items fully processed.
func (s *MultiStage[T]) Processed() uint64 { return s.processed }

// Dropped returns the number of items rejected by bounded class queues.
func (s *MultiStage[T]) Dropped() uint64 { return s.dropped }

// Name returns the diagnostic name.
func (s *MultiStage[T]) Name() string { return s.name }

// BusyTracker exposes utilization accounting.
func (s *MultiStage[T]) BusyTracker() *stats.BusyTracker { return &s.busyTrack }

// RegisterTelemetry exposes the stage's occupancy, throughput, and
// utilization probes on reg under the given component label, including a
// per-class queue-depth gauge ("queue_depth_0", "queue_depth_1", …).
func (s *MultiStage[T]) RegisterTelemetry(reg *telemetry.Registry, component string) {
	reg.GaugeFunc(component, "queue_depth", func() float64 { return float64(s.TotalQueued()) })
	for c := range s.qs {
		c := c
		reg.GaugeFunc(component, fmt.Sprintf("queue_depth_%d", c), func() float64 {
			return float64(s.qs[c].len())
		})
	}
	reg.GaugeFunc(component, "busy", func() float64 { return boolGauge(s.busy) })
	reg.GaugeFunc(component, "processed", func() float64 { return float64(s.processed) })
	reg.GaugeFunc(component, "dropped", func() float64 { return float64(s.dropped) })
	reg.GaugeFunc(component, "utilization", func() float64 {
		return s.busyTrack.BusyFraction(s.eng.Now())
	})
}
