package experiment

import (
	"time"

	"mindgap/internal/core"
	"mindgap/internal/dist"
	"mindgap/internal/params"
	"mindgap/internal/sim"
	"mindgap/internal/stats"
	"mindgap/internal/task"
)

// PolicyRow is one row of the X10 experiment: the same system and workload
// under different worker-selection policies, isolating the value of the
// paper's core idea — host load feedback informing NIC decisions (§3.1).
type PolicyRow struct {
	Policy   core.Policy
	P50, P99 time.Duration
	Achieved float64
}

// PolicyAblation compares worker-selection policies on Shinjuku-Offload.
// Round-robin ignores load entirely; least-outstanding balances request
// *counts*; informed-least-loaded balances remaining *work* using host
// feedback. With shallow stashes the centralized FIFO absorbs nearly all
// imbalance and the policies tie (a finding in itself); the regime below —
// deep stashes, dispersive non-preemptible service times — is where the
// informed policy earns its keep.
func PolicyAblation(q Quality) []PolicyRow {
	p := params.Default()
	const workers = 8
	// Deep stashes (k=6) plus dispersive, non-preemptible service times:
	// the regime where *what* sits in a worker's stash matters, not just
	// how many requests do.
	svc := dist.Bimodal{P1: 0.95, D1: 5 * time.Microsecond, D2: 200 * time.Microsecond}
	rho := 0.75
	rps := rho * float64(workers) / svc.Mean().Seconds()

	policies := []core.Policy{core.RoundRobin, core.LeastOutstanding, core.InformedLeastLoaded}
	var rows []PolicyRow
	for _, pol := range policies {
		pol := pol
		r := RunPoint(PointConfig{
			Factory: func(eng *sim.Engine, rec *stats.Recorder, done func(*task.Request)) System {
				return core.NewOffload(eng, core.OffloadConfig{
					P: p, Workers: workers, Outstanding: 6,
					Policy:       pol,
					LoadFeedback: pol == core.InformedLeastLoaded,
				}, rec, done)
			},
			Service:    svc,
			OfferedRPS: rps,
			Warmup:     q.Warmup,
			Measure:    q.Measure,
			Seed:       q.Seed,
		})
		rows = append(rows, PolicyRow{Policy: pol, P50: r.P50, P99: r.P99, Achieved: r.AchievedRPS})
	}
	return rows
}
