// Package poolsafe detects use-after-release hazards on pooled
// task.Request values.
//
// PR 7 pooled requests: the instant a response reaches the client the
// request is recycled (task.Pool.Put bumps Gen and hands the struct to
// the next arrival). Any event that can fire after that instant — a
// FINISH notification crossing the NIC, a dispatch-timeout timer — must
// not re-read the request's identity fields (ID, ClientID, Key,
// Arrival, Service): it would observe a different logical request. The
// incident that motivated this analyzer leaked flight-control credits
// until the run stalled, and was only caught dynamically under fault
// presets.
//
// The analyzer enforces three rules in simulation packages:
//
//  1. Immediate release: after a request is passed to task.Pool.Put or
//     delivered through a func(*task.Request)-typed value (the done /
//     sink / onComplete ownership-transfer convention), later reads of
//     its identity fields in the same block are flagged.
//
//  2. Deferred release: when one function schedules the same request
//     into two typed events and one of the callbacks (transitively)
//     releases it, the other callback races the release. Reads of
//     identity fields inside that callback are flagged unless the read
//     is dominated by a generation guard (an if whose condition
//     compares req.Gen) — snapshot the value into the event's scalar
//     arg at build time instead. This is the exact PR-7 credit-leak
//     shape: the response path recycled the request before the FINISH
//     notification was processed.
//
//  3. Snapshot shadowing: a struct that carries both a *task.Request
//     and a build-time snapshot of one of its identity fields (qEvent's
//     id, flight's arrival/service/clientID/key) exists precisely
//     because the pointer may be stale when the struct is consumed.
//     Re-deriving the value through the pointer instead of reading the
//     snapshot is flagged everywhere.
//
// The analysis is intra-package and flow-insensitive across events by
// design: simulated time, not lexical order, decides which event fires
// first, so any pairing of a releasing and a non-releasing capture is a
// hazard.
package poolsafe

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"

	"mindgap/internal/lint/allow"
	"mindgap/internal/lint/simpkg"
)

var Analyzer = &analysis.Analyzer{
	Name: "poolsafe",
	Doc:  "flag reads of pooled task.Request identity fields that can race the request's release back to the pool",
	Run:  run,
}

const taskPkg = "mindgap/internal/task"

// identity are the task.Request fields that name the logical request.
// They are only meaningful while the request is live: Pool.Get rewrites
// every one of them for the next arrival.
var identity = map[string]bool{
	"ID":       true,
	"ClientID": true,
	"Key":      true,
	"Arrival":  true,
	"Service":  true,
}

// isReqPtr reports whether t is *task.Request.
func isReqPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Request" && obj.Pkg() != nil && obj.Pkg().Path() == taskPkg
}

// isEventShaped reports whether fn has the sim.EventFunc signature
// func(recv, obj any, arg uint64) — the typed-event callback shape.
func isEventShaped(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false
	}
	if sig.Params().Len() != 3 || sig.Results().Len() != 0 || sig.Variadic() {
		return false
	}
	for i := 0; i < 2; i++ {
		it, ok := sig.Params().At(i).Type().Underlying().(*types.Interface)
		if !ok || it.NumMethods() != 0 {
			return false
		}
	}
	b, ok := sig.Params().At(2).Type().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint64
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// walkStack traverses root keeping the ancestor stack; fn returning
// false prunes the subtree.
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// capture records one event-build site that carries a request payload:
// cb is the scheduled callback, obj the request's object.
type capture struct {
	cb   *types.Func
	obj  types.Object
	call *ast.CallExpr
}

type checker struct {
	pass       *analysis.Pass
	decls      map[*types.Func]*ast.FuncDecl // every func/method declared in the package
	eventDecls map[*types.Func]*ast.FuncDecl // package-level EventFunc-shaped subset
	relParam   map[*types.Func]int8          // releasesParam memo: 0 unknown, 1 yes, -1 no/in-progress
	tainted    map[*types.Func]map[types.Object]bool
	captures   map[*types.Func][]capture
	releasing  map[*types.Func]bool
}

func run(pass *analysis.Pass) (any, error) {
	if !simpkg.IsSimPackage(pass.Pkg.Path()) {
		return nil, nil
	}
	c := &checker{
		pass:       pass,
		decls:      make(map[*types.Func]*ast.FuncDecl),
		eventDecls: make(map[*types.Func]*ast.FuncDecl),
		relParam:   make(map[*types.Func]int8),
		tainted:    make(map[*types.Func]map[types.Object]bool),
		captures:   make(map[*types.Func][]capture),
		releasing:  make(map[*types.Func]bool),
	}
	var order []*types.Func // decls in file/position order, for deterministic walks
	for _, f := range pass.Files {
		if c.testFile(f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			c.decls[fn] = fd
			order = append(order, fn)
			if fd.Recv == nil && isEventShaped(fn) {
				c.eventDecls[fn] = fd
			}
		}
	}
	sort.Slice(order, func(i, j int) bool { return c.decls[order[i]].Pos() < c.decls[order[j]].Pos() })

	for _, fn := range order {
		c.tainted[fn] = c.taintedObjs(c.decls[fn])
		c.captures[fn] = c.collectCaptures(c.decls[fn], c.tainted[fn])
	}

	// Classify releasing callbacks: direct release of the tainted
	// payload, then a fixpoint over capture edges (a callback that
	// schedules its payload into a releasing callback releases it too,
	// just later in simulated time).
	for fn, fd := range c.eventDecls {
		if c.directlyReleases(fd.Body, c.tainted[fn]) {
			c.releasing[fn] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for fn := range c.eventDecls {
			if c.releasing[fn] {
				continue
			}
			for _, cap := range c.captures[fn] {
				if c.tainted[fn][cap.obj] && c.releasing[cap.cb] {
					c.releasing[fn] = true
					changed = true
					break
				}
			}
		}
	}

	// Rule 2: pair releasing and non-releasing captures of one request
	// in one function; the non-releasing callback races the release.
	type witness struct {
		site     string // function that scheduled both events
		releaser string // the releasing callback
		pos      token.Pos
	}
	hazardous := map[*types.Func]witness{}
	for _, fn := range order {
		byObj := map[types.Object][]capture{}
		for _, cap := range c.captures[fn] {
			byObj[cap.obj] = append(byObj[cap.obj], cap)
		}
		for _, caps := range byObj {
			var rel *capture
			for i := range caps {
				if c.releasing[caps[i].cb] {
					rel = &caps[i]
					break
				}
			}
			if rel == nil {
				continue
			}
			for _, cap := range caps {
				if c.releasing[cap.cb] {
					continue
				}
				w, ok := hazardous[cap.cb]
				if !ok || cap.call.Pos() < w.pos {
					hazardous[cap.cb] = witness{site: fn.Name(), releaser: rel.cb.Name(), pos: cap.call.Pos()}
				}
			}
		}
	}
	for cb, w := range hazardous {
		fd := c.eventDecls[cb]
		if fd == nil {
			continue
		}
		tainted := c.tainted[cb]
		walkStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if !c.identityRead(sel, tainted) || isWrite(sel, stack) || genGuarded(c.pass, stack, tainted) {
				return true
			}
			allow.Reportf(c.pass, sel.Pos(),
				"read of recyclable field %s in event callback %s, which can fire after %s releases the request back to the pool (both are scheduled in %s); snapshot the field into the event arg at build time or guard the read with a Gen compare",
				sel.Sel.Name, cb.Name(), w.releaser, w.site)
			return true
		})
	}

	// Rule 1: identity reads lexically after an immediate release in the
	// same block.
	for _, fn := range order {
		c.checkImmediate(c.decls[fn], c.tainted[fn])
	}

	// Rule 3: re-deriving a snapshotted field through the request
	// pointer.
	for _, fn := range order {
		c.checkSnapshotShadow(c.decls[fn])
	}
	return nil, nil
}

func (c *checker) testFile(pos token.Pos) bool {
	return strings.HasSuffix(c.pass.Fset.Position(pos).Filename, "_test.go")
}

// calleeFunc resolves a call to the static *types.Func it invokes, or
// nil for dynamic calls through func-typed values.
func (c *checker) calleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := c.pass.TypesInfo.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := c.pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// releaseArg returns the request-valued argument expression of a
// release call: task.Pool.Put, or an indirect call through a
// func(*task.Request) value (the done/sink delivery convention).
func (c *checker) releaseArg(call *ast.CallExpr) (ast.Expr, string) {
	if fn := c.calleeFunc(call); fn != nil {
		if fn.Name() == "Put" && fn.Pkg() != nil && fn.Pkg().Path() == taskPkg && len(call.Args) == 1 {
			return call.Args[0], "Pool.Put"
		}
		return nil, ""
	}
	tv, ok := c.pass.TypesInfo.Types[call.Fun]
	if !ok || tv.IsType() {
		return nil, ""
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok || sig.Params().Len() != 1 || sig.Results().Len() != 0 || sig.Variadic() {
		return nil, ""
	}
	if !isReqPtr(sig.Params().At(0).Type()) || len(call.Args) != 1 {
		return nil, ""
	}
	return call.Args[0], "the delivery callback"
}

// reqObjOf resolves an expression to the object of a request it
// denotes: a *task.Request ident, a tainted any-typed ident, or a type
// assertion over one.
func (c *checker) reqObjOf(e ast.Expr, tainted map[types.Object]bool) types.Object {
	e = unparen(e)
	if ta, ok := e.(*ast.TypeAssertExpr); ok && ta.Type != nil {
		if t, ok := c.pass.TypesInfo.Types[ta.Type]; !ok || !isReqPtr(t.Type) {
			return nil
		}
		e = unparen(ta.X)
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := c.pass.TypesInfo.Uses[id]
	if obj == nil {
		return nil
	}
	if isReqPtr(obj.Type()) || tainted[obj] {
		return obj
	}
	return nil
}

// taintedObjs returns the objects that carry the function's request
// payload: for EventFunc-shaped callbacks the recv/obj parameters plus
// locals assigned from type assertions or aliases over them; for plain
// functions and methods, every *task.Request parameter.
func (c *checker) taintedObjs(fd *ast.FuncDecl) map[types.Object]bool {
	t := map[types.Object]bool{}
	fn := c.pass.TypesInfo.Defs[fd.Name].(*types.Func)
	sig := fn.Type().(*types.Signature)
	if c.eventDecls[fn] != nil {
		for i := 0; i < 2; i++ {
			if p := sig.Params().At(i); p.Name() != "" && p.Name() != "_" {
				t[p] = true
			}
		}
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if p := sig.Params().At(i); isReqPtr(p.Type()) {
			t[p] = true
		}
	}
	// Forward propagation through := assertions and aliases. One pass in
	// source order suffices for the straight-line prologue idiom
	// (req := obj.(*task.Request)).
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			lhs, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			def := c.pass.TypesInfo.Defs[lhs]
			if def == nil {
				def = c.pass.TypesInfo.Uses[lhs]
			}
			if def == nil || !isReqPtr(def.Type()) {
				continue
			}
			if obj := c.reqObjOf(rhs, t); obj != nil {
				t[def] = true
			}
		}
		return true
	})
	return t
}

// collectCaptures finds calls that schedule a package-level EventFunc
// together with a request payload — AtE/AfterE/AfterTimerE/ArmAfterE,
// Link.SendT, and any wrapper with the same argument convention.
func (c *checker) collectCaptures(fd *ast.FuncDecl, tainted map[types.Object]bool) []capture {
	var out []capture
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var cb *types.Func
		for _, a := range call.Args {
			id, ok := unparen(a).(*ast.Ident)
			if !ok {
				continue
			}
			if f, ok := c.pass.TypesInfo.Uses[id].(*types.Func); ok && c.eventDecls[f] != nil {
				cb = f
				break
			}
		}
		if cb == nil {
			return true
		}
		for _, a := range call.Args {
			if obj := c.reqObjOf(a, tainted); obj != nil {
				out = append(out, capture{cb: cb, obj: obj, call: call})
			}
		}
		return true
	})
	return out
}

// directlyReleases reports whether the body passes a tainted request to
// a release call, directly or through a same-package helper that
// releases its parameter.
func (c *checker) directlyReleases(body *ast.BlockStmt, tainted map[types.Object]bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if arg, _ := c.releaseArg(call); arg != nil && c.reqObjOf(arg, tainted) != nil {
			found = true
			return false
		}
		if fn := c.calleeFunc(call); fn != nil && c.decls[fn] != nil && c.releasesParam(fn) {
			for _, a := range call.Args {
				if c.reqObjOf(a, tainted) != nil {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// releasesParam reports whether a declared function releases one of its
// *task.Request parameters (directly or via another such helper).
// Cycles resolve to false.
func (c *checker) releasesParam(fn *types.Func) bool {
	if v, ok := c.relParam[fn]; ok {
		return v == 1
	}
	c.relParam[fn] = -1 // in progress / assumed false
	fd := c.decls[fn]
	if fd == nil {
		return false
	}
	params := map[types.Object]bool{}
	sig := fn.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		if p := sig.Params().At(i); isReqPtr(p.Type()) {
			params[p] = true
		}
	}
	if len(params) == 0 {
		return false
	}
	if c.directlyReleases(fd.Body, params) {
		c.relParam[fn] = 1
		return true
	}
	return false
}

// identityRead reports whether sel reads an identity field of a tainted
// request (req.ID, obj.(*task.Request).Arrival, ...).
func (c *checker) identityRead(sel *ast.SelectorExpr, tainted map[types.Object]bool) bool {
	if !identity[sel.Sel.Name] {
		return false
	}
	s := c.pass.TypesInfo.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return false
	}
	f := s.Obj()
	if f.Pkg() == nil || f.Pkg().Path() != taskPkg {
		return false
	}
	return c.reqObjOf(sel.X, tainted) != nil
}

// isWrite reports whether sel is the target of an assignment.
func isWrite(sel *ast.SelectorExpr, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	as, ok := stack[len(stack)-1].(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, l := range as.Lhs {
		if unparen(l) == ast.Expr(sel) {
			return true
		}
	}
	return false
}

// genGuarded reports whether an enclosing if condition compares the Gen
// field of a tainted request — the pool's recycling detector.
func genGuarded(pass *analysis.Pass, stack []ast.Node, tainted map[types.Object]bool) bool {
	for _, n := range stack {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			continue
		}
		guarded := false
		ast.Inspect(ifs.Cond, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Gen" {
				return true
			}
			if id, ok := unparen(sel.X).(*ast.Ident); ok {
				if obj := pass.TypesInfo.Uses[id]; obj != nil && (tainted[obj] || isReqPtr(obj.Type())) {
					guarded = true
					return false
				}
			}
			return true
		})
		if guarded {
			return true
		}
	}
	return false
}

// checkImmediate flags identity reads that lexically follow a release
// of the same request within the release's enclosing block.
func (c *checker) checkImmediate(fd *ast.FuncDecl, tainted map[types.Object]bool) {
	type rel struct {
		obj   types.Object
		what  string
		after token.Pos // end of the release call
		until token.Pos // end of its enclosing block
	}
	var rels []rel
	walkStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		arg, what := c.releaseArg(call)
		if arg == nil {
			return true
		}
		obj := c.reqObjOf(arg, tainted)
		if obj == nil {
			return true
		}
		until := fd.Body.End()
		for i := len(stack) - 1; i >= 0; i-- {
			if b, ok := stack[i].(*ast.BlockStmt); ok {
				until = b.End()
				break
			}
		}
		rels = append(rels, rel{obj: obj, what: what, after: call.End(), until: until})
		return true
	})
	if len(rels) == 0 {
		return
	}
	walkStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if !identity[sel.Sel.Name] || isWrite(sel, stack) {
			return true
		}
		obj := c.reqObjOf(sel.X, tainted)
		if obj == nil || !c.identityRead(sel, tainted) {
			return true
		}
		for _, r := range rels {
			if r.obj == obj && sel.Pos() > r.after && sel.Pos() < r.until {
				allow.Reportf(c.pass, sel.Pos(),
					"read of recyclable field %s after %s released the request back to the pool; copy the field before releasing",
					sel.Sel.Name, r.what)
				return true
			}
		}
		return true
	})
}

// checkSnapshotShadow flags expressions of the form x.req.ID where x's
// struct also carries a build-time snapshot field (id) of the same
// identity value: the snapshot exists because the pointer may already
// be recycled when x is consumed.
func (c *checker) checkSnapshotShadow(fd *ast.FuncDecl) {
	walkStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || !identity[sel.Sel.Name] || isWrite(sel, stack) {
			return true
		}
		outer := c.pass.TypesInfo.Selections[sel]
		if outer == nil || outer.Kind() != types.FieldVal {
			return true
		}
		if f := outer.Obj(); f.Pkg() == nil || f.Pkg().Path() != taskPkg {
			return true
		}
		inner, ok := unparen(sel.X).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		is := c.pass.TypesInfo.Selections[inner]
		if is == nil || is.Kind() != types.FieldVal || !isReqPtr(is.Obj().Type()) {
			return true
		}
		// The struct owning the *task.Request field.
		recv := is.Recv()
		if p, ok := recv.Underlying().(*types.Pointer); ok {
			recv = p.Elem()
		}
		st, ok := recv.Underlying().(*types.Struct)
		if !ok {
			return true
		}
		for i := 0; i < st.NumFields(); i++ {
			g := st.Field(i)
			if g == is.Obj() || !strings.EqualFold(g.Name(), sel.Sel.Name) {
				continue
			}
			allow.Reportf(c.pass, sel.Pos(),
				"%s re-derives %s through a pooled request pointer that may already be recycled; read the build-time snapshot field %s.%s instead",
				exprString(sel), sel.Sel.Name, exprString(inner.X), g.Name())
			return true
		}
		return true
	})
}

// exprString renders simple selector/ident chains for diagnostics.
func exprString(e ast.Expr) string {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.TypeAssertExpr:
		return exprString(e.X) + ".(...)"
	}
	return "expr"
}
