// Livewire: run the real-socket Shinjuku-Offload implementation — the same
// core.Logic scheduler the simulator evaluates — as dispatcher, workers, and
// an open-loop client, all over UDP loopback in one process.
//
// This exercises internal/wire's codec and internal/live's protocol on an
// actual network stack, including cooperative preemption of long requests.
//
//	go run ./examples/livewire
package main

import (
	"fmt"
	"log"
	"time"

	"mindgap/internal/core"
	"mindgap/internal/dist"
	"mindgap/internal/live"
)

func main() {
	// Note: this demo's absolute latencies depend on how many host cores
	// the Go runtime has — workers burn real CPU for their fake work, so a
	// single-core machine serializes them. The protocol behaviour
	// (balancing, preemption, conservation) is the point here.
	const workers = 2

	// Dispatcher: centralized queue, k=3 outstanding per worker.
	d, err := live.NewDispatcher("127.0.0.1:0", live.DispatcherConfig{
		Workers:     workers,
		Outstanding: 3,
		Policy:      core.LeastOutstanding,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()
	go func() { _ = d.Serve() }()
	fmt.Printf("dispatcher on %v\n", d.Addr())

	// Workers: 100µs cooperative preemption slice.
	var ws []*live.Worker
	for i := 0; i < workers; i++ {
		w, err := live.NewWorker(live.WorkerConfig{
			ID:         uint32(i),
			Dispatcher: d.Addr(),
			Slice:      100 * time.Microsecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer w.Close()
		go func() { _ = w.Serve() }()
		fmt.Printf("worker %d on %v\n", i, w.Addr())
		ws = append(ws, w)
	}

	// Client: open-loop bimodal workload — mostly 30µs requests with a few
	// 500µs heavies that must be sliced.
	workload := dist.Bimodal{P1: 0.97, D1: 30 * time.Microsecond, D2: 500 * time.Microsecond}
	fmt.Printf("\nsending 3000 requests at 5k rps, service %v\n", workload)
	rep, err := live.RunClient(live.ClientConfig{
		Dispatcher: d.Addr(),
		RPS:        5_000,
		Service:    workload,
		Requests:   3_000,
		Seed:       99,
		Timeout:    10 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nreceived %d/%d in %v (%.0f rps achieved)\n",
		rep.Received, rep.Sent, rep.Wall.Round(time.Millisecond), rep.AchievedRPS)
	fmt.Printf("latency: p50=%v p99=%v max=%v\n",
		rep.Latency.P50(), rep.Latency.P99(), rep.Latency.Max())

	assigned, completed, preempted, queued := d.Stats()
	fmt.Printf("dispatcher: assigned=%d completed=%d preempted=%d queued=%d\n",
		assigned, completed, preempted, queued)
	for i, w := range ws {
		fmt.Printf("worker %d: completed=%d preempted=%d\n", i, w.Completed(), w.Preempted())
	}
}
