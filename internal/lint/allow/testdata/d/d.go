// Fixture for lintallow: the suppression directives themselves are
// checked — a reasonless or mistyped suppression is a diagnostic.
package d

import "math"

func directives(x float64) float64 {
	//lint:allow simclock // want `missing a reason`
	a := x + 1

	//lint:allow // want `missing an analyzer name and a reason`
	b := a * 2

	//lint:allow speling epsilon guard // want `unknown analyzer "speling"`
	c := math.Sqrt(b)

	// Negative: well-formed directive — known analyzer plus a reason.
	//lint:allow floateq epsilon guard on assigned sentinel value
	if c == 0 {
		return 0
	}

	// Negative: an ordinary comment mentioning lint:allow mid-sentence
	// is not a directive, nor is a longer token like the next line.
	//lint:allowed
	return c
}
