package experiment

import (
	"time"

	"mindgap/internal/core"
	"mindgap/internal/dist"
	"mindgap/internal/loadgen"
	"mindgap/internal/params"
	"mindgap/internal/sim"
	"mindgap/internal/stats"
	"mindgap/internal/task"
)

// AffinityResult is the X11 extension experiment: §3.1's scheduling
// affinity. With affinity off, a preempted request resumes on whichever
// worker frees first and pays a cache-migration penalty; with affinity on,
// the scheduler prefers the request's previous worker.
type AffinityResult struct {
	// MigrationsOff/On count cross-core resumes per configuration.
	MigrationsOff, MigrationsOn uint64
	// Preemptions counts preemptions in the affinity-on run (similar in
	// both; reported for rate context).
	Preemptions uint64
	// MeanOff/On and P99Off/On are client-observed latencies.
	MeanOff, MeanOn time.Duration
	P99Off, P99On   time.Duration
}

// AffinityAblation measures X11 on a preemption-heavy workload: 10% of
// requests run 100 µs against a 10 µs slice, so every long request is
// preempted ~9 times and each resume either stays local or migrates.
func AffinityAblation(q Quality) AffinityResult {
	run := func(affinity bool) (uint64, uint64, time.Duration, time.Duration) {
		p := params.Default()
		eng := sim.New()
		var lat stats.Histogram
		completions := 0
		target := q.Warmup + q.Measure
		sys := core.NewOffload(eng, core.OffloadConfig{
			P: p, Workers: 8, Outstanding: 2,
			Slice:    10 * time.Microsecond,
			Affinity: affinity,
		}, nil, func(r *task.Request) {
			completions++
			if completions > q.Warmup {
				lat.Record(r.Latency(eng.Now()))
			}
			if completions >= target {
				eng.Halt()
			}
		})
		svc := dist.Bimodal{P1: 0.9, D1: 5 * time.Microsecond, D2: 100 * time.Microsecond}
		rho := 0.7
		rps := rho * 8 / svc.Mean().Seconds()
		loadgen.New(eng, loadgen.Config{RPS: rps, Service: svc, Seed: q.Seed}, sys.Inject).Start()
		expected := time.Duration(float64(target) / rps * float64(time.Second))
		eng.At(sim.Time(8*expected+50*time.Millisecond), eng.Halt)
		eng.Run()
		return sys.Migrations(), sys.Preemptions(), lat.Mean(), lat.P99()
	}
	var res AffinityResult
	var pre uint64
	res.MigrationsOff, pre, res.MeanOff, res.P99Off = run(false)
	_ = pre
	res.MigrationsOn, res.Preemptions, res.MeanOn, res.P99On = run(true)
	return res
}
