package sim

import "time"

// Negative: *_test.go files in simulation packages may poll the wall
// clock (goroutine-leak deadlines, cancellation tests).
func testHarnessDeadline() bool {
	return time.Now().After(time.Now().Add(time.Second))
}
