package core

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
	"time"

	"mindgap/internal/dist"
	"mindgap/internal/loadgen"
	"mindgap/internal/sim"
	"mindgap/internal/task"
)

// classBySvc classifies by service time: < 10µs is latency-critical.
func classBySvc(r *task.Request) int {
	if r.Service < 10*time.Microsecond {
		return 0
	}
	return 1
}

func TestPriorityLogicStrictOrder(t *testing.T) {
	l := NewPriorityLogic(1, 1, 2, LeastOutstanding, classBySvc)
	long := task.New(1, 0, 100*time.Microsecond)
	as := l.Enqueue(0, long) // assigned immediately
	if len(as) != 1 {
		t.Fatalf("assignments = %v", as)
	}
	// Queue a low-priority and then a high-priority request.
	lp := task.New(2, 0, 50*time.Microsecond)
	hp := task.New(3, 0, time.Microsecond)
	l.Enqueue(0, lp)
	l.Enqueue(0, hp)
	if l.ClassQueueLen(0) != 1 || l.ClassQueueLen(1) != 1 {
		t.Fatalf("class queues: %d/%d", l.ClassQueueLen(0), l.ClassQueueLen(1))
	}
	// The high-priority request must dispatch first despite arriving last.
	as = l.Complete(0)
	if len(as) != 1 || as[0].Req.ID != 3 {
		t.Fatalf("dispatched %v, want high-priority id 3", as)
	}
	as = l.Complete(0)
	if len(as) != 1 || as[0].Req.ID != 2 {
		t.Fatalf("dispatched %v, want id 2", as)
	}
}

func TestPriorityLogicPreemptedKeepsClass(t *testing.T) {
	l := NewPriorityLogic(1, 1, 2, LeastOutstanding, classBySvc)
	long := task.New(1, 0, 100*time.Microsecond)
	l.Enqueue(0, long)
	l.Enqueue(0, task.New(2, 0, 30*time.Microsecond)) // low prio queued
	// Preempting the long request requeues it in class 1 behind id 2.
	as := l.Preempted(5, 0, long)
	if len(as) != 1 || as[0].Req.ID != 2 {
		t.Fatalf("dispatched %v, want id 2", as)
	}
	as = l.Complete(0)
	if len(as) != 1 || as[0].Req.ID != 1 {
		t.Fatalf("dispatched %v, want requeued id 1", as)
	}
}

func TestPriorityLogicClampsClasses(t *testing.T) {
	l := NewPriorityLogic(1, 1, 2, LeastOutstanding, func(r *task.Request) int {
		return int(r.ID) - 10 // produces negative and overflowing classes
	})
	l.Enqueue(0, task.New(1, 0, time.Microsecond))  // class -9 → 0
	l.Enqueue(0, task.New(99, 0, time.Microsecond)) // class 89 → 1
	if l.QueueLen() != 1 {                          // one assigned, one queued
		t.Fatalf("QueueLen = %d", l.QueueLen())
	}
}

func TestPriorityLogicValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero classes did not panic")
		}
	}()
	NewPriorityLogic(1, 1, 0, LeastOutstanding, nil)
}

func TestPriorityLogicNilClassOfDefaults(t *testing.T) {
	l := NewPriorityLogic(2, 1, 3, LeastOutstanding, nil)
	as := l.Enqueue(0, task.New(1, 0, time.Microsecond))
	if len(as) != 1 {
		t.Fatalf("assignments = %v", as)
	}
	if l.Classes() != 3 || l.String() == "" {
		t.Fatal("accessors broken")
	}
}

// Property: conservation holds for PriorityLogic exactly as for Logic.
func TestQuickPriorityLogicConservation(t *testing.T) {
	f := func(seed uint64, classesRaw, kRaw uint8, steps uint16) bool {
		classes := int(classesRaw%4) + 1
		k := int(kRaw%3) + 1
		const workers = 3
		rng := rand.New(rand.NewPCG(seed, 99))
		l := NewPriorityLogic(workers, k, classes, LeastOutstanding, func(r *task.Request) int {
			return int(r.ID % uint64(classes))
		})
		inFlight := make([]map[uint64]*task.Request, workers)
		for i := range inFlight {
			inFlight[i] = map[uint64]*task.Request{}
		}
		nextID := uint64(1)
		admitted, finished := 0, 0
		apply := func(as []Assignment) bool {
			for _, a := range as {
				if a.Req == nil || a.Worker < 0 || a.Worker >= workers {
					return false
				}
				if _, dup := inFlight[a.Worker][a.Req.ID]; dup {
					return false
				}
				inFlight[a.Worker][a.Req.ID] = a.Req
			}
			return true
		}
		for s := 0; s < int(steps%400); s++ {
			switch rng.IntN(3) {
			case 0:
				if !apply(l.Enqueue(0, task.New(nextID, 0, time.Microsecond))) {
					return false
				}
				nextID++
				admitted++
			case 1:
				w := rng.IntN(workers)
				if len(inFlight[w]) == 0 {
					continue
				}
				for id := range inFlight[w] {
					delete(inFlight[w], id)
					break
				}
				finished++
				if !apply(l.Complete(w)) {
					return false
				}
			case 2:
				w := rng.IntN(workers)
				if len(inFlight[w]) == 0 {
					continue
				}
				var victim *task.Request
				for id, r := range inFlight[w] {
					victim = r
					delete(inFlight[w], id)
					break
				}
				if !apply(l.Preempted(0, w, victim)) {
					return false
				}
			}
			carried := 0
			for w := 0; w < workers; w++ {
				if l.Outstanding(w) < 0 || l.Outstanding(w) > k ||
					l.Outstanding(w) != len(inFlight[w]) {
					return false
				}
				carried += l.Outstanding(w)
			}
			if admitted != finished+carried+l.QueueLen() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestOffloadWithPriorityClasses(t *testing.T) {
	// End-to-end: latency-critical class must see far lower p99 than the
	// batch class on a shared Offload server.
	eng := sim.New()
	cfg := defaultCfg(2, 2, 20*time.Microsecond)
	cfg.PriorityClasses = 2
	cfg.ClassOf = classBySvc
	var hiMax, loMax time.Duration
	completions := 0
	sys := NewOffload(eng, cfg, nil, func(r *task.Request) {
		lat := r.Latency(eng.Now())
		if classBySvc(r) == 0 {
			if lat > hiMax {
				hiMax = lat
			}
		} else if lat > loMax {
			loMax = lat
		}
		completions++
		if completions >= 8000 {
			eng.Halt()
		}
	})
	sys.ArmWorkerTrackers(0)
	// 90% 2µs critical + 10% 80µs batch at ρ≈0.8 on 2 workers.
	mix := dist.NewMixture([]float64{0.9, 0.1}, []dist.Distribution{
		dist.Fixed{D: 2 * time.Microsecond}, dist.Fixed{D: 80 * time.Microsecond},
	})
	loadgen.New(eng, loadgen.Config{RPS: 160_000, Service: mix, Seed: 13}, sys.Inject).Start()
	eng.Run()
	if completions < 8000 {
		t.Fatalf("completions = %d", completions)
	}
	if hiMax >= loMax {
		t.Fatalf("critical class max %v not below batch class max %v", hiMax, loMax)
	}
	if hiMax > 200*time.Microsecond {
		t.Fatalf("critical class max latency %v too high under strict priority", hiMax)
	}
}

func TestOffloadAdmissionControlBoundsTail(t *testing.T) {
	// §5.2 co-design: with a bounded central queue the NIC sheds overload
	// and the accepted requests keep a bounded tail, at the cost of loss.
	run := func(limit int) (p99 time.Duration, shed uint64) {
		eng := sim.New()
		cfg := defaultCfg(2, 1, 0)
		cfg.AdmissionLimit = limit
		var worst time.Duration
		completions := 0
		var sys *Offload
		sys = NewOffload(eng, cfg, nil, func(r *task.Request) {
			if lat := r.Latency(eng.Now()); lat > worst {
				worst = lat
			}
			completions++
			if completions >= 5000 {
				eng.Halt()
			}
		})
		loadgen.New(eng, loadgen.Config{
			RPS: 600_000, Service: dist.Fixed{D: 5 * time.Microsecond}, Seed: 21,
		}, sys.Inject).Start() // ~1.7× overload for 2 workers
		eng.Run()
		return worst, sys.Shed()
	}
	boundedWorst, shed := run(64)
	unboundedWorst, noShed := run(0)
	if shed == 0 {
		t.Fatal("admission control shed nothing under overload")
	}
	if noShed != 0 {
		t.Fatalf("unbounded system shed %d requests", noShed)
	}
	if boundedWorst >= unboundedWorst/2 {
		t.Fatalf("bounded worst %v not ≪ unbounded worst %v", boundedWorst, unboundedWorst)
	}
}
