package dist

import (
	"math/rand/v2"
	"testing"
)

func TestZipfUniformWhenSZero(t *testing.T) {
	z := NewZipfKeys(4, 0)
	r := rand.New(rand.NewPCG(1, 2))
	counts := make([]int, 4)
	const n = 100_000
	for i := 0; i < n; i++ {
		counts[z.Sample(r)]++
	}
	for k, c := range counts {
		frac := float64(c) / n
		if frac < 0.23 || frac > 0.27 {
			t.Fatalf("key %d frequency %v, want ≈0.25", k, frac)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipfKeys(100, 0.99)
	r := rand.New(rand.NewPCG(1, 2))
	counts := make([]int, 100)
	const n = 200_000
	for i := 0; i < n; i++ {
		counts[z.Sample(r)]++
	}
	// Key 0 must dominate: Zipf(0.99) over 100 keys gives key 0 ≈ 19%.
	frac0 := float64(counts[0]) / n
	if frac0 < 0.15 || frac0 > 0.23 {
		t.Fatalf("key 0 frequency = %v, want ≈0.19", frac0)
	}
	if counts[0] <= counts[50] {
		t.Fatal("skew absent: head key not hotter than middle key")
	}
}

func TestZipfBoundsAndValidation(t *testing.T) {
	z := NewZipfKeys(7, 1.2)
	if z.N() != 7 {
		t.Fatalf("N = %d", z.N())
	}
	r := rand.New(rand.NewPCG(5, 6))
	for i := 0; i < 10_000; i++ {
		if k := z.Sample(r); k >= 7 {
			t.Fatalf("sample %d out of range", k)
		}
	}
	for _, f := range []func(){
		func() { NewZipfKeys(0, 1) },
		func() { NewZipfKeys(5, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid zipf did not panic")
				}
			}()
			f()
		}()
	}
}
