package sim

import (
	"math/rand/v2"
	"testing"
	"time"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := New()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestAfterAdvancesClock(t *testing.T) {
	e := New()
	var fired Time
	e.After(5*time.Microsecond, func() { fired = e.Now() })
	e.Run()
	if fired != Time(5000) {
		t.Fatalf("event fired at %v, want 5µs", fired)
	}
	if e.Now() != Time(5000) {
		t.Fatalf("Now() = %v after run, want 5µs", e.Now())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	e := New()
	var order []int
	e.After(30*time.Nanosecond, func() { order = append(order, 3) })
	e.After(10*time.Nanosecond, func() { order = append(order, 1) })
	e.After(20*time.Nanosecond, func() { order = append(order, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSameInstantFIFO(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(Time(42), func() { order = append(order, i) })
	}
	e.Run()
	if len(order) != 100 {
		t.Fatalf("fired %d events, want 100", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (FIFO violated)", i, v, i)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := New()
	var hits []Time
	e.After(time.Microsecond, func() {
		hits = append(hits, e.Now())
		e.After(time.Microsecond, func() {
			hits = append(hits, e.Now())
		})
	})
	e.Run()
	if len(hits) != 2 || hits[0] != Time(1000) || hits[1] != Time(2000) {
		t.Fatalf("hits = %v, want [1µs 2µs]", hits)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := New()
	e.After(time.Millisecond, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("At(past) did not panic")
		}
	}()
	e.At(Time(1), func() {})
}

func TestNegativeDelayPanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Fatal("After(-1) did not panic")
		}
	}()
	e.After(-time.Nanosecond, func() {})
}

func TestRunUntilStopsAtBoundary(t *testing.T) {
	e := New()
	var fired []time.Duration
	for _, d := range []time.Duration{time.Microsecond, 2 * time.Microsecond, 3 * time.Microsecond} {
		d := d
		e.After(d, func() { fired = append(fired, d) })
	}
	e.RunUntil(Time(2000))
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2 (boundary inclusive)", len(fired))
	}
	if e.Now() != Time(2000) {
		t.Fatalf("Now() = %v, want 2µs", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", e.Pending())
	}
	e.Run()
	if len(fired) != 3 {
		t.Fatalf("fired %d events after Run, want 3", len(fired))
	}
}

func TestRunUntilAdvancesClockWithNoEvents(t *testing.T) {
	e := New()
	e.RunUntil(Time(12345))
	if e.Now() != Time(12345) {
		t.Fatalf("Now() = %v, want 12345", e.Now())
	}
}

func TestHaltStopsRun(t *testing.T) {
	e := New()
	count := 0
	for i := 1; i <= 10; i++ {
		e.After(time.Duration(i)*time.Nanosecond, func() {
			count++
			if count == 4 {
				e.Halt()
			}
		})
	}
	e.Run()
	if count != 4 {
		t.Fatalf("count = %d, want 4 (halt should stop run)", count)
	}
	if !e.Halted() {
		t.Fatal("Halted() = false after Halt")
	}
	e.Resume()
	e.Run()
	if count != 10 {
		t.Fatalf("count = %d after resume, want 10", count)
	}
}

func TestTimerStop(t *testing.T) {
	e := New()
	fired := false
	tm := e.AfterTimer(time.Microsecond, func() { fired = true })
	if !tm.Pending() {
		t.Fatal("timer not pending after creation")
	}
	if !tm.Stop() {
		t.Fatal("Stop() = false on pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop() = true, want false")
	}
	e.Run()
	if fired {
		t.Fatal("stopped timer still fired")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	e := New()
	tm := e.AfterTimer(time.Microsecond, func() {})
	e.Run()
	if tm.Pending() {
		t.Fatal("timer pending after firing")
	}
	if tm.Stop() {
		t.Fatal("Stop() = true after fire, want false")
	}
}

func TestTimerDeadline(t *testing.T) {
	e := New()
	tm := e.AfterTimer(7*time.Microsecond, func() {})
	if got := tm.Deadline(); got != Time(7000) {
		t.Fatalf("Deadline() = %v, want 7µs", got)
	}
	tm.Stop()
	if got := tm.Deadline(); got != 0 {
		t.Fatalf("Deadline() after stop = %v, want 0", got)
	}
}

func TestZeroTimerIsInert(t *testing.T) {
	var tm *Timer
	if tm.Stop() {
		t.Fatal("nil timer Stop() = true")
	}
	var tm2 Timer
	if tm2.Stop() || tm2.Pending() {
		t.Fatal("zero timer is not inert")
	}
}

// TestHeapRandomized drains a large random schedule and verifies global
// time ordering plus FIFO within equal timestamps, with interleaved
// cancellations exercising heap removal from interior positions.
func TestHeapRandomized(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	e := New()
	type rec struct {
		at  Time
		seq int
	}
	var fired []rec
	var timers []*Timer
	seq := 0
	for i := 0; i < 5000; i++ {
		at := Time(rng.Int64N(1000)) // dense timestamps force ties
		s := seq
		seq++
		timers = append(timers, e.AfterTimer(time.Duration(at), func() {
			fired = append(fired, rec{at, s})
		}))
	}
	// Cancel a third of them.
	cancelled := 0
	for i := 0; i < len(timers); i += 3 {
		if timers[i].Stop() {
			cancelled++
		}
	}
	e.Run()
	if len(fired) != 5000-cancelled {
		t.Fatalf("fired %d, want %d", len(fired), 5000-cancelled)
	}
	for i := 1; i < len(fired); i++ {
		prev, cur := fired[i-1], fired[i]
		if cur.at < prev.at {
			t.Fatalf("time order violated at %d: %v after %v", i, cur.at, prev.at)
		}
		if cur.at == prev.at && cur.seq < prev.seq {
			t.Fatalf("FIFO violated at %d: seq %d after %d", i, cur.seq, prev.seq)
		}
	}
}

func TestStaleTimerCannotCancelRecycledEvent(t *testing.T) {
	// The engine recycles event structs. A Timer whose event already fired
	// must not be able to cancel an unrelated later event that reuses the
	// same struct.
	e := New()
	tm := e.AfterTimer(time.Nanosecond, func() {})
	e.Run() // fires; the event struct returns to the free list
	fired := false
	e.After(time.Nanosecond, func() { fired = true }) // likely reuses it
	if tm.Stop() {
		t.Fatal("stale timer Stop() = true")
	}
	if tm.Pending() {
		t.Fatal("stale timer reports pending")
	}
	e.Run()
	if !fired {
		t.Fatal("stale timer cancelled a recycled event")
	}
}

func TestTimerDuringOwnCallback(t *testing.T) {
	// Stop() from inside the timer's own callback must report false — the
	// event has already fired.
	e := New()
	var tm *Timer
	tm = e.AfterTimer(time.Nanosecond, func() {
		if tm.Stop() {
			t.Fatal("Stop() = true inside own callback")
		}
	})
	e.Run()
}

func TestExecutedCount(t *testing.T) {
	e := New()
	for i := 0; i < 17; i++ {
		e.After(time.Duration(i)*time.Nanosecond, func() {})
	}
	e.Run()
	if e.Executed() != 17 {
		t.Fatalf("Executed() = %d, want 17", e.Executed())
	}
}

func TestTimeArithmetic(t *testing.T) {
	a := Time(1000)
	b := a.Add(500 * time.Nanosecond)
	if b != Time(1500) {
		t.Fatalf("Add = %v, want 1500", b)
	}
	if b.Sub(a) != 500*time.Nanosecond {
		t.Fatalf("Sub = %v, want 500ns", b.Sub(a))
	}
	if a.String() != "1µs" {
		t.Fatalf("String = %q, want 1µs", a.String())
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	e := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(time.Duration(i%64)*time.Nanosecond, func() {})
		if e.Pending() > 1024 {
			e.Run()
		}
	}
	e.Run()
}
