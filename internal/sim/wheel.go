// Hierarchical timing wheel.
//
// The scheduler is a 7-level radix-64 calendar queue indexed by the digits
// of the event's absolute nanosecond timestamp, with a binary heap as an
// overflow level for events beyond the wheel horizon (64^7 ns ≈ 73 min
// from the wheel origin). Scheduling and firing are O(1) amortized; the
// heap — formerly the whole scheduler — now touches only far-future events
// such as watchdogs.
//
// Leveling uses the XOR-prefix rule: an event lives at the level of its
// highest radix-64 digit that differs from the wheel origin `base`
// (level 0 if at == base). Because events are never scheduled before base,
// the differing digit of an event is always strictly greater than base's
// digit at that level, which yields the two invariants the total order
// rests on:
//
//  1. Every occupied slot at a level is strictly after base's current digit
//     at that level — a bitmap scan from the low end finds the earliest
//     slot with no wraparound ambiguity.
//  2. All events at level L fire before any event at level L+1, because a
//     level-L event shares digits ≥ L+1 with base while a level-(L+1)
//     event exceeds base in digit L+1.
//
// Level-0 slots are single nanosecond instants (all events in one slot
// share a timestamp), so draining a slot and sorting it by sequence number
// reproduces the exact (time, seq) FIFO order of the old heap. Higher-level
// slots are unordered bags; when the lowest occupied level L > 0, the wheel
// origin advances to the start of that slot's 64^L window and the slot's
// events cascade into levels < L.
//
// The origin only advances inside Step (while firing), never from a peek:
// user code runs between steps and may schedule at any t >= now, so base
// must stay <= now whenever user code can run. RunUntil therefore probes
// the schedule with a read-only peekTime.
package sim

import "math/bits"

const (
	wheelBits   = 6
	wheelSlots  = 1 << wheelBits          // 64 slots per level
	wheelLevels = 7                       // 64^7 ns ≈ 73 min horizon
	wheelSpan   = wheelBits * wheelLevels // bits covered by the wheel
	wheelMask   = uint64(wheelSlots) - 1  // low-digit mask
)

// Event locations, recorded in event.loc so cancellation knows which
// structure to remove from.
const (
	locNone      uint8 = iota // fired, cancelled, or on the free list
	locWheel                  // slots[level][slot][idx]
	locHeap                   // overflow heap at idx
	locReady                  // drained into the ready buffer, not yet fired
	locReadyDead              // cancelled while in the ready buffer
)

// file places ev into the wheel level selected by the XOR-prefix rule, or
// into the overflow heap when at is beyond the wheel horizon from base.
// Requires ev.at >= e.base.
//
//mindgap:noalloc
func (e *Engine) file(ev *event) {
	diff := uint64(ev.at) ^ uint64(e.base)
	if e.refHeap || diff>>wheelSpan != 0 {
		e.heapPush(ev)
		return
	}
	lvl := 0
	if diff != 0 {
		lvl = (bits.Len64(diff) - 1) / wheelBits
	}
	slot := (uint64(ev.at) >> (lvl * wheelBits)) & wheelMask
	sl := e.slots[lvl][slot]
	ev.loc, ev.level, ev.slot, ev.idx = locWheel, uint8(lvl), uint16(slot), int32(len(sl))
	e.slots[lvl][slot] = append(sl, ev)
	e.occ[lvl] |= 1 << slot
}

// lowestOccupied returns the lowest level > 0 with any occupied slot, or 0
// when levels 1..6 are all empty (level 0 is checked by the caller).
//
//mindgap:noalloc
func (e *Engine) lowestOccupied() int {
	for lvl := 1; lvl < wheelLevels; lvl++ {
		if e.occ[lvl] != 0 {
			return lvl
		}
	}
	return 0
}

// ensureReady guarantees the ready buffer holds the earliest pending
// instant's events in seq order, cascading higher wheel levels and the
// overflow heap as needed. It reports false when nothing is pending. Only
// Step may call it: it advances the wheel origin.
//
//mindgap:noalloc
func (e *Engine) ensureReady() bool {
	for {
		// Drain cursor first: skip tombstones left by Timer.Stop on events
		// that were already drained into the ready buffer.
		for e.readyPos < len(e.ready) {
			ev := e.ready[e.readyPos]
			if ev.loc == locReady {
				return true
			}
			e.ready[e.readyPos] = nil
			e.readyPos++
			e.recycle(ev) // pending was decremented at Stop time
		}
		e.ready = e.ready[:0]
		e.readyPos = 0

		if e.occ[0] != 0 {
			// A level-0 slot is a single instant: drain it whole, sort by
			// seq, and it becomes the ready buffer. The buffers swap so
			// both retain their capacity across instants.
			slot := bits.TrailingZeros64(e.occ[0])
			e.occ[0] &^= 1 << slot
			sl := e.slots[0][slot]
			e.slots[0][slot] = e.ready
			e.ready = sl
			e.readyTime = sl[0].at
			e.base = e.readyTime
			if len(sl) > 1 {
				sortBySeq(sl)
			}
			for _, ev := range sl {
				ev.loc = locReady
			}
			return true
		}

		if lvl := e.lowestOccupied(); lvl > 0 {
			// Cascade: advance the origin to the start of the earliest
			// occupied slot's window; its events re-file strictly below lvl.
			slot := bits.TrailingZeros64(e.occ[lvl])
			e.occ[lvl] &^= 1 << slot
			shift := uint(lvl * wheelBits)
			newBase := uint64(e.base) &^ (1<<(shift+wheelBits) - 1)
			newBase |= uint64(slot) << shift
			e.base = Time(newBase)
			sl := e.slots[lvl][slot]
			for _, ev := range sl {
				e.file(ev)
			}
			clear(sl)
			e.slots[lvl][slot] = sl[:0]
			continue
		}

		if len(e.heap) > 0 {
			if e.refHeap {
				// Reference mode: pop one instant straight off the heap.
				// (at, seq) heap order delivers it already seq-sorted.
				t := e.heap[0].at
				for len(e.heap) > 0 && e.heap[0].at == t {
					ev := e.heapPop()
					ev.loc = locReady
					e.ready = append(e.ready, ev)
				}
				e.readyTime = t
				e.base = t
				return true
			}
			// New overflow epoch: jump the origin to the earliest overflow
			// event and pull everything now within the horizon into the
			// wheel.
			e.base = e.heap[0].at
			for len(e.heap) > 0 && (uint64(e.heap[0].at)^uint64(e.base))>>wheelSpan == 0 {
				e.file(e.heapPop())
			}
			continue
		}

		return false
	}
}

// next returns the earliest pending event, removed from the schedule, or
// nil when none is pending.
//
//mindgap:noalloc
func (e *Engine) next() *event {
	if !e.ensureReady() {
		return nil
	}
	ev := e.ready[e.readyPos]
	e.ready[e.readyPos] = nil
	e.readyPos++
	ev.loc = locNone
	return ev
}

// peekTime returns the earliest pending instant without mutating the wheel
// (no cascade, no origin advance): RunUntil probes the schedule between
// steps, when user code may still schedule events at any t >= now, so the
// origin must not move past now here.
//
//mindgap:noalloc
func (e *Engine) peekTime() (Time, bool) {
	for e.readyPos < len(e.ready) {
		ev := e.ready[e.readyPos]
		if ev.loc == locReady {
			return e.readyTime, true
		}
		e.ready[e.readyPos] = nil
		e.readyPos++
		e.recycle(ev)
	}
	if e.occ[0] != 0 {
		slot := bits.TrailingZeros64(e.occ[0])
		return e.slots[0][slot][0].at, true
	}
	if lvl := e.lowestOccupied(); lvl > 0 {
		slot := bits.TrailingZeros64(e.occ[lvl])
		best := MaxTime
		for _, ev := range e.slots[lvl][slot] {
			if ev.at < best {
				best = ev.at
			}
		}
		return best, true
	}
	if len(e.heap) > 0 {
		return e.heap[0].at, true
	}
	return 0, false
}

// remove cancels a pending event wherever it currently lives. Events
// already drained into the ready buffer are tombstoned in place (the drain
// cursor recycles them); wheel and heap residents are removed immediately.
//
//mindgap:noalloc
func (e *Engine) remove(ev *event) {
	switch ev.loc {
	case locWheel:
		sl := e.slots[ev.level][ev.slot]
		last := len(sl) - 1
		if i := int(ev.idx); i >= 0 && i <= last && sl[i] == ev {
			sl[i] = sl[last]
			sl[i].idx = int32(i)
			sl[last] = nil
			e.slots[ev.level][ev.slot] = sl[:last]
			if last == 0 {
				e.occ[ev.level] &^= 1 << ev.slot
			}
		}
		e.pending--
		e.recycle(ev)
	case locHeap:
		e.heapRemove(ev)
		e.pending--
		e.recycle(ev)
	case locReady:
		ev.loc = locReadyDead
		e.pending--
	}
}

// sortBySeq orders one drained slot by sequence number (all entries share a
// timestamp; seqs are unique). Insertion sort: slots hold a handful of
// same-instant events, and the common burst arrives already ordered.
//
//mindgap:noalloc
func sortBySeq(sl []*event) {
	for i := 1; i < len(sl); i++ {
		ev := sl[i]
		j := i - 1
		for j >= 0 && sl[j].seq > ev.seq {
			sl[j+1] = sl[j]
			j--
		}
		sl[j+1] = ev
	}
}

// Overflow heap: the original binary-heap scheduler, ordered by (at, seq),
// with index-tracked removal. Doubles as the reference implementation when
// refHeap is set.

//mindgap:noalloc
func heapLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

//mindgap:noalloc
func (e *Engine) heapPush(ev *event) {
	ev.loc = locHeap
	ev.idx = int32(len(e.heap))
	e.heap = append(e.heap, ev)
	e.heapUp(int(ev.idx))
}

//mindgap:noalloc
func (e *Engine) heapPop() *event {
	ev := e.heap[0]
	last := len(e.heap) - 1
	e.heap[0] = e.heap[last]
	e.heap[0].idx = 0
	e.heap[last] = nil
	e.heap = e.heap[:last]
	if last > 0 {
		e.heapDown(0)
	}
	ev.loc = locNone
	return ev
}

//mindgap:noalloc
func (e *Engine) heapRemove(ev *event) {
	i := int(ev.idx)
	last := len(e.heap) - 1
	if i < 0 || i > last || e.heap[i] != ev {
		return
	}
	e.heap[i] = e.heap[last]
	e.heap[i].idx = int32(i)
	e.heap[last] = nil
	e.heap = e.heap[:last]
	if i < last {
		e.heapDown(i)
		e.heapUp(i)
	}
	ev.loc = locNone
}

//mindgap:noalloc
func (e *Engine) heapUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !heapLess(e.heap[i], e.heap[parent]) {
			break
		}
		e.heapSwap(i, parent)
		i = parent
	}
}

//mindgap:noalloc
func (e *Engine) heapDown(i int) {
	n := len(e.heap)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		smallest := left
		if right := left + 1; right < n && heapLess(e.heap[right], e.heap[left]) {
			smallest = right
		}
		if !heapLess(e.heap[smallest], e.heap[i]) {
			break
		}
		e.heapSwap(i, smallest)
		i = smallest
	}
}

//mindgap:noalloc
func (e *Engine) heapSwap(i, j int) {
	e.heap[i], e.heap[j] = e.heap[j], e.heap[i]
	e.heap[i].idx = int32(i)
	e.heap[j].idx = int32(j)
}
