// Suppression fixtures: a well-formed //lint:allow poolsafe directive
// (with a reason) silences a diagnostic; a reasonless one does not.
package core

import "mindgap/internal/task"

func suppressedRead(pool *task.Pool, req *task.Request) uint64 {
	pool.Put(req)
	//lint:allow poolsafe audit-only read: this fixture pool is single-owner and drained
	return req.ID
}

func reasonlessRead(pool *task.Pool, req *task.Request) uint64 {
	pool.Put(req)
	//lint:allow poolsafe
	return req.ID // want `read of recyclable field ID after Pool\.Put released the request back to the pool`
}
