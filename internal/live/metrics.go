package live

import (
	"fmt"
	"net"
	"net/http"
	"time"

	"mindgap/internal/telemetry"
)

// MetricsServer scrapes a telemetry registry over HTTP — the live twin of
// the simulator's Snapshot path. Two endpoints:
//
//   - /metrics: expvar-style "key value" plain text, one metric per line.
//   - /debug/vars: the full snapshot as JSON (counters, gauges, histogram
//     summaries), mirroring the stdlib expvar convention.
//
// Every read takes a fresh Snapshot, so probe-backed gauges (queue depth,
// in-flight count) reflect the instant of the scrape.
type MetricsServer struct {
	ln  net.Listener
	srv *http.Server
}

// ServeMetrics binds addr (e.g. "127.0.0.1:0") and serves reg until
// Close. The listener is bound synchronously — the returned server's Addr
// is immediately scrapeable — and requests are served on a background
// goroutine.
func ServeMetrics(addr string, reg *telemetry.Registry) (*MetricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("live: metrics listen: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = reg.Snapshot().WriteText(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = reg.Snapshot().WriteJSON(w)
	})
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	m := &MetricsServer{ln: ln, srv: srv}
	go func() { _ = srv.Serve(ln) }()
	return m, nil
}

// Addr returns the bound address.
func (m *MetricsServer) Addr() net.Addr { return m.ln.Addr() }

// URL returns the server's base URL, e.g. "http://127.0.0.1:43210".
func (m *MetricsServer) URL() string { return "http://" + m.ln.Addr().String() }

// Close stops serving.
func (m *MetricsServer) Close() error { return m.srv.Close() }

// RegisterMetrics exposes the dispatcher's scheduling state on reg under
// the "dispatcher" component: assignment/completion/preemption/retry
// counters, the central queue depth, in-flight assignments, and worker
// registration progress. Probes lock the dispatcher only for the
// mutex-guarded scheduler state.
func (d *Dispatcher) RegisterMetrics(reg *telemetry.Registry) {
	reg.GaugeFunc("dispatcher", "assigned", func() float64 { return float64(d.assigned.Load()) })
	reg.GaugeFunc("dispatcher", "completed", func() float64 { return float64(d.completed.Load()) })
	reg.GaugeFunc("dispatcher", "preempted", func() float64 { return float64(d.preempted.Load()) })
	reg.GaugeFunc("dispatcher", "retried", func() float64 { return float64(d.retried.Load()) })
	reg.GaugeFunc("dispatcher", "abandoned", func() float64 { return float64(d.abandoned.Load()) })
	reg.GaugeFunc("dispatcher", "queue_depth", func() float64 {
		d.mu.Lock()
		defer d.mu.Unlock()
		return float64(d.lgc.QueueLen())
	})
	reg.GaugeFunc("dispatcher", "inflight", func() float64 {
		d.mu.Lock()
		defer d.mu.Unlock()
		return float64(len(d.inflight))
	})
	reg.GaugeFunc("dispatcher", "workers_registered", func() float64 {
		d.mu.Lock()
		defer d.mu.Unlock()
		return float64(d.registered)
	})
}

// RegisterMetrics exposes the worker's execution counters on reg under
// "worker<id>".
func (w *Worker) RegisterMetrics(reg *telemetry.Registry) {
	comp := fmt.Sprintf("worker%d", w.cfg.ID)
	reg.GaugeFunc(comp, "completed", func() float64 { return float64(w.completed.Load()) })
	reg.GaugeFunc(comp, "preempted", func() float64 { return float64(w.preempted.Load()) })
}
