// Benchmarks regenerating every experiment of the paper's evaluation — one
// testing.B target per entry in DESIGN.md's experiment index. Each
// iteration runs the full figure/table harness at a reduced (benchmark)
// quality; reported custom metrics carry the reproduction's headline
// numbers so `go test -bench .` doubles as a results summary.
package mindgap

import (
	"testing"
	"time"

	"mindgap/internal/core"
	"mindgap/internal/dist"
	"mindgap/internal/experiment"
	"mindgap/internal/fabric"
	"mindgap/internal/params"
	"mindgap/internal/scenario"
	"mindgap/internal/sim"
	"mindgap/internal/stats"
	"mindgap/internal/systems/idealnic"
	"mindgap/internal/systems/shinjuku"
	"mindgap/internal/task"
	"mindgap/internal/telemetry"
)

// benchQ keeps benchmark iterations affordable while preserving shapes.
var benchQ = Quality{Warmup: 1_000, Measure: 6_000, Seed: 7}

// F2 — Figure 2: bimodal tail latency, Shinjuku (3 workers) vs
// Shinjuku-Offload (4 workers).
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := experiment.Figure2(benchQ)
		b.ReportMetric(f.Series[0].SaturationPoint(), "offload_sat_rps")
		b.ReportMetric(f.Series[1].SaturationPoint(), "shinjuku_sat_rps")
	}
}

// F3 — Figure 3: throughput vs outstanding requests (queuing optimization).
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := experiment.Figure3(benchQ)
		w4 := f.Series[1]
		gain := w4.Results[4].AchievedRPS/w4.Results[0].AchievedRPS - 1
		b.ReportMetric(gain*100, "k1→k5_gain_%")
		b.ReportMetric(w4.PeakThroughput(), "plateau_rps")
	}
}

// F4 — Figure 4: fixed 5µs, no preemption.
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := experiment.Figure4(benchQ)
		b.ReportMetric(f.Series[0].SaturationPoint(), "offload_sat_rps")
		b.ReportMetric(f.Series[1].SaturationPoint(), "shinjuku_sat_rps")
	}
}

// F5 — Figure 5: fixed 100µs, 15/16 workers.
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := experiment.Figure5(benchQ)
		b.ReportMetric(f.Series[0].SaturationPoint(), "offload_sat_rps")
		b.ReportMetric(f.Series[1].SaturationPoint(), "shinjuku_sat_rps")
	}
}

// F6 — Figure 6: fixed 1µs, 15/16 workers — the crossover where the ARM
// dispatcher bottlenecks the offload.
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := experiment.Figure6(benchQ)
		b.ReportMetric(f.Series[0].PeakThroughput(), "offload_peak_rps")
		b.ReportMetric(f.Series[1].PeakThroughput(), "shinjuku_peak_rps")
	}
}

// T1 — §3.4.4 timer/interrupt cycle costs.
func BenchmarkTimerCosts(b *testing.B) {
	p := params.Default()
	var rows []experiment.TimerCostRow
	for i := 0; i < b.N; i++ {
		rows = experiment.TimerCosts(p)
	}
	b.ReportMetric(rows[0].Reduction*100, "set_reduction_%")
	b.ReportMetric(rows[1].Reduction*100, "fire_reduction_%")
}

// T2 — §2.2 inter-thread communication tail overhead (paper ≈2µs).
func BenchmarkInterThreadOverhead(b *testing.B) {
	var r experiment.IPCOverheadResult
	for i := 0; i < b.N; i++ {
		r = experiment.IPCOverhead(benchQ)
	}
	b.ReportMetric(float64(r.Overhead.Nanoseconds()), "overhead_ns")
}

// T3 — §4 worker wait time at saturation, 100µs vs 1µs workloads.
func BenchmarkWorkerWait(b *testing.B) {
	var r experiment.WorkerWaitResult
	for i := 0; i < b.N; i++ {
		r = experiment.WorkerWait(benchQ)
	}
	b.ReportMetric(r.IdleAt100us*100, "idle@100µs_%")
	b.ReportMetric(r.IdleAt1us*100, "idle@1µs_%")
}

// T4 — §3.3 NIC↔host one-way latency through the fabric model.
func BenchmarkNicHostLatency(b *testing.B) {
	p := params.Default()
	var measured time.Duration
	for i := 0; i < b.N; i++ {
		eng := sim.New()
		link := fabric.NewLink(eng, "nic→host", fabric.LinkConfig{Latency: p.NicHostOneWay})
		var at sim.Time
		link.Send(p.ControlFrameBytes, func() { at = eng.Now() })
		eng.Run()
		measured = at.Duration()
	}
	b.ReportMetric(float64(measured.Nanoseconds()), "one_way_ns")
}

// X1 — §5.1(2) CXL ablation on the Figure 6 configuration.
func BenchmarkAblationCXL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := experiment.Figure6CXL(benchQ)
		b.ReportMetric(f.Series[0].PeakThroughput(), "cxl_peak_rps")
	}
}

// X2 — §5.1(1) line-rate scheduler ablation.
func BenchmarkAblationLineRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := experiment.Figure6LineRate(benchQ)
		b.ReportMetric(f.Series[0].PeakThroughput(), "linerate_peak_rps")
		b.ReportMetric(f.Series[1].PeakThroughput(), "ideal_peak_rps")
	}
}

// X3 — §5.1(3) direct NIC→core interrupts on the Figure 2 workload.
func BenchmarkAblationDirectInterrupt(b *testing.B) {
	p := params.Default()
	slice := 10 * time.Microsecond
	for i := 0; i < b.N; i++ {
		direct := experiment.RunPoint(experiment.PointConfig{
			Factory:    experiment.IdealNICFactory(directIRQConfig(p, slice)),
			Service:    experiment.BimodalWorkload,
			OfferedRPS: 400_000, Warmup: benchQ.Warmup, Measure: benchQ.Measure,
			Seed: benchQ.Seed,
		})
		b.ReportMetric(float64(direct.P99.Nanoseconds()), "directirq_p99_ns")
	}
}

// X5 — Figure 3 with DPDK burst polling at the queue-manager core: shows
// the k=1 penalty the paper's prototype saw at 16 workers.
func BenchmarkAblationBurst(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := experiment.Figure3Burst(benchQ)
		w16 := f.Series[0]
		gain := w16.Results[2].AchievedRPS/w16.Results[0].AchievedRPS - 1
		b.ReportMetric(gain*100, "16w_k1→k3_gain_%")
	}
}

// X6 — §5.2 DDIO-to-L1: latency saved by placing packets directly in the
// worker's L1 (safe because outstanding requests per core are bounded).
func BenchmarkAblationDDIO(b *testing.B) {
	p := params.Default()
	var with, without experiment.Result
	for i := 0; i < b.N; i++ {
		mk := func(ddio bool) experiment.Result {
			return experiment.RunPoint(experiment.PointConfig{
				Factory: func(eng *sim.Engine, rec *stats.Recorder, done func(*task.Request)) experiment.System {
					return core.NewOffload(eng, core.OffloadConfig{
						P: p, Workers: 4, Outstanding: 4,
						Slice: 10 * time.Microsecond, DDIOToL1: ddio,
					}, rec, done)
				},
				Service:    experiment.BimodalWorkload,
				OfferedRPS: 400_000,
				Warmup:     benchQ.Warmup, Measure: benchQ.Measure, Seed: benchQ.Seed,
			})
		}
		with, without = mk(true), mk(false)
	}
	b.ReportMetric(float64(with.P50.Nanoseconds()), "ddio_p50_ns")
	b.ReportMetric(float64(without.P50.Nanoseconds()), "stock_p50_ns")
}

// X7 — preemption win vs service-time dispersion (extension): the theory
// the paper cites predicts the win grows with CV².
func BenchmarkDispersionSensitivity(b *testing.B) {
	var rows []experiment.DispersionRow
	for i := 0; i < b.N; i++ {
		rows = experiment.DispersionSensitivity(benchQ)
	}
	b.ReportMetric(rows[0].Win, "fixed_win_x")
	b.ReportMetric(rows[len(rows)-1].Win, "bimodal_win_x")
}

// X8 — §1 multi-socket DDIO locality (extension): a host dispatcher that
// ignores DDIO placement sends packets to remote-socket workers; the
// informed NIC DMAs into the chosen worker's socket and avoids the fetch.
func BenchmarkAblationNUMA(b *testing.B) {
	p := params.Default()
	var one, two experiment.Result
	for i := 0; i < b.N; i++ {
		mk := func(sockets int) experiment.Result {
			return experiment.RunPoint(experiment.PointConfig{
				Factory: func(eng *sim.Engine, rec *stats.Recorder, done func(*task.Request)) experiment.System {
					return shinjuku.New(eng, shinjuku.Config{
						P: p, Workers: 4, Slice: 10 * time.Microsecond, Sockets: sockets,
					}, rec, done)
				},
				Service:    experiment.BimodalWorkload,
				OfferedRPS: 400_000,
				Warmup:     benchQ.Warmup, Measure: benchQ.Measure, Seed: benchQ.Seed,
			})
		}
		one, two = mk(1), mk(2)
	}
	b.ReportMetric(float64(one.Mean.Nanoseconds()), "1socket_mean_ns")
	b.ReportMetric(float64(two.Mean.Nanoseconds()), "2socket_mean_ns")
}

// X9 — co-located latency classes (extension): strict-priority classes at
// the NIC scheduler protect the critical tenant's tail while the batch
// tenant keeps completing.
func BenchmarkMultiTenant(b *testing.B) {
	var fifo, prio []experiment.TenantResult
	for i := 0; i < b.N; i++ {
		mk := func(priority bool) []experiment.TenantResult {
			return experiment.RunMultiTenant(experiment.MultiTenantConfig{
				P: params.Default(), Workers: 4, Outstanding: 3,
				Slice: 15 * time.Microsecond, Priority: priority,
				Tenants: experiment.DefaultTenants(), Quality: benchQ,
			})
		}
		fifo, prio = mk(false), mk(true)
	}
	b.ReportMetric(float64(fifo[0].P99.Nanoseconds()), "fifo_critical_p99_ns")
	b.ReportMetric(float64(prio[0].P99.Nanoseconds()), "prio_critical_p99_ns")
}

// X10 — worker-selection policy ablation (extension): what the "informed"
// in informed scheduling buys, isolated from everything else.
func BenchmarkPolicyAblation(b *testing.B) {
	var rows []experiment.PolicyRow
	for i := 0; i < b.N; i++ {
		rows = experiment.PolicyAblation(benchQ)
	}
	for _, r := range rows {
		b.ReportMetric(float64(r.P99.Nanoseconds()), r.Policy.String()+"_p99_ns")
	}
}

// X4 — baseline landscape on the bimodal workload.
func BenchmarkBaselines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := experiment.BaselineComparison(benchQ)
		for _, s := range f.Series {
			_ = s.SaturationPoint()
		}
		b.ReportMetric(float64(len(f.Series)), "systems")
	}
}

// BenchmarkPointThroughput measures harness throughput on the canonical
// Figure 2 point: full sweep points per wall second, wall nanoseconds per
// simulated request, and allocations per point. These three metrics are
// the tracked performance baseline — cmd/mindgap-perf compares them
// against the checked-in BENCH.json and flags >20% regressions in CI.
func BenchmarkPointThroughput(b *testing.B) {
	p := params.Default()
	cfg := experiment.PointConfig{
		Factory:    experiment.OffloadFactory(p, 4, 4, 10*time.Microsecond),
		Service:    experiment.BimodalWorkload,
		OfferedRPS: 400_000,
		Warmup:     benchQ.Warmup,
		Measure:    benchQ.Measure,
		Seed:       benchQ.Seed,
	}
	b.ReportAllocs()
	b.ResetTimer()
	var completed int64
	for i := 0; i < b.N; i++ {
		completed = experiment.RunPoint(cfg).Completed
	}
	reqs := float64(completed) * float64(b.N)
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "points/sec")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/reqs, "ns/request")
}

// BenchmarkAttributionOverhead measures the same point with a latency
// attribution collector attached (internal/attr): the delta against
// BenchmarkPointThroughput is the cost of full phase decomposition plus
// per-dispatch ground-truth audits.
func BenchmarkAttributionOverhead(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	var rows []experiment.AttributionRow
	for i := 0; i < b.N; i++ {
		rows = experiment.Attribution(benchQ)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "points/sec")
	if len(rows) > 0 {
		b.ReportMetric(rows[0].Audit.MisRate*100, "mis_dispatch_%")
	}
}

// engineBenchDelays spreads re-arm deadlines across the timing wheel's
// levels — immediate, near (level 0), mid-level, and far enough to land
// in upper levels and, at the top, the overflow heap.
var engineBenchDelays = [...]time.Duration{
	0,
	200 * time.Nanosecond,
	3 * time.Microsecond,
	50 * time.Microsecond,
	800 * time.Microsecond,
	12 * time.Millisecond,
}

// engineBenchChain is one self-rescheduling event chain; left is shared
// across chains so the run fires exactly b.N events.
type engineBenchChain struct {
	eng  *sim.Engine
	left *int
	i    int
}

func engineBenchFire(recv, _ any, _ uint64) {
	c := recv.(*engineBenchChain)
	if *c.left <= 0 {
		return
	}
	*c.left--
	d := engineBenchDelays[c.i%len(engineBenchDelays)]
	c.i++
	c.eng.AfterE(d, engineBenchFire, c, nil, 0)
}

// BenchmarkEngineSchedule measures the raw event engine: the cost of one
// schedule+fire cycle through the hierarchical timing wheel, with 64
// concurrent chains whose deadlines rotate across wheel levels. allocs/op
// is allocations per event — near zero once the wheel and free list are
// warm. Tracked by cmd/mindgap-perf against BENCH.json.
func BenchmarkEngineSchedule(b *testing.B) {
	eng := sim.New()
	left := b.N
	chains := 64
	if chains > b.N {
		chains = b.N
	}
	b.ReportAllocs()
	b.ResetTimer()
	for c := 0; c < chains; c++ {
		ch := &engineBenchChain{eng: eng, left: &left, i: c}
		left--
		eng.AfterE(engineBenchDelays[c%len(engineBenchDelays)], engineBenchFire, ch, nil, 0)
	}
	eng.Run()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkRequestPool measures the request pool's steady-state recycle
// path with a rolling window of live requests (mimicking in-flight
// turnover): every Get after warm-up is a free-list pop, so allocs/op
// must be ~0. Tracked by cmd/mindgap-perf against BENCH.json.
func BenchmarkRequestPool(b *testing.B) {
	var pool task.Pool
	const window = 256
	ring := make([]*task.Request, window)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slot := i % window
		if r := ring[slot]; r != nil {
			pool.Put(r)
		}
		ring[slot] = pool.Get(uint64(i), sim.Time(i), time.Microsecond)
	}
	b.ReportMetric(float64(pool.HighWater()), "live_highwater")
}

// BenchmarkFlowRulePoint measures one X14 flow-rule offload point: the
// figure-flowrule threshold-16 configuration at its 4096-flow anchor
// population, flow-keyed generator and all. allocs/op covers the full
// point — flow records and rule-table state are pooled, so the number
// must stay flat as Measure grows. Tracked by cmd/mindgap-perf against
// BENCH.json; fast_hit_% is the headline steering split.
func BenchmarkFlowRulePoint(b *testing.B) {
	sp := scenario.Spec{
		System:   "flowrule",
		Workload: "fixed:170ns",
		Flow: &scenario.FlowSpec{
			Flows:            4096,
			ElephantFraction: 0.2,
			RatTrain:         16,
		},
		Knobs: &scenario.Knobs{
			Workers:          1,
			RuleCapacity:     1536,
			InsertRate:       20_000,
			InsertQueue:      256,
			OffloadThreshold: 16,
			IdleTimeout:      scenario.Duration(50 * time.Millisecond),
			SlowQueue:        512,
		},
	}
	if err := sp.Validate(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var hit float64
	var completed int64
	for i := 0; i < b.N; i++ {
		reg := telemetry.NewRegistry()
		f, err := scenario.BuildWith(sp, scenario.Options{Metrics: reg})
		if err != nil {
			b.Fatal(err)
		}
		r := experiment.RunPoint(experiment.PointConfig{
			Factory:    f,
			Service:    dist.Fixed{D: 170 * time.Nanosecond},
			Flow:       sp.Flow,
			OfferedRPS: 400_000,
			Warmup:     benchQ.Warmup,
			Measure:    benchQ.Measure,
			Seed:       benchQ.Seed,
		})
		completed = r.Completed
		fast, _ := reg.GaugeValue("flowrule/fast_packets")
		slow, _ := reg.GaugeValue("flowrule/slow_packets")
		drop, _ := reg.GaugeValue("flowrule/drop_packets")
		if total := fast + slow + drop; total > 0 {
			hit = fast / total
		}
	}
	reqs := float64(completed) * float64(b.N)
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "points/sec")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/reqs, "ns/request")
	b.ReportMetric(hit*100, "fast_hit_%")
}

// BenchmarkSimulatorEventRate measures raw simulator throughput: simulated
// request completions per wall second on the Figure 2 configuration.
func BenchmarkSimulatorEventRate(b *testing.B) {
	p := params.Default()
	cfg := experiment.PointConfig{
		Factory:    experiment.OffloadFactory(p, 4, 4, 10*time.Microsecond),
		Service:    experiment.BimodalWorkload,
		OfferedRPS: 400_000,
		Warmup:     500,
		Measure:    b.N, // scale the measured window with b.N
		Seed:       7,
	}
	if cfg.Measure < 1000 {
		cfg.Measure = 1000
	}
	b.ResetTimer()
	r := experiment.RunPoint(cfg)
	b.ReportMetric(float64(r.Completed), "requests")
}

func directIRQConfig(p params.Params, slice time.Duration) idealnic.Config {
	return idealnic.Config{
		P: p, Workers: 4, Outstanding: 4, Slice: slice,
		DirectInterrupts: true,
	}
}

// X11 — §3.1 scheduling affinity (extension): preferring a preempted
// request's previous worker halves cross-core context migrations.
func BenchmarkAblationAffinity(b *testing.B) {
	var r experiment.AffinityResult
	for i := 0; i < b.N; i++ {
		r = experiment.AffinityAblation(benchQ)
	}
	b.ReportMetric(float64(r.MigrationsOff), "migrations_off")
	b.ReportMetric(float64(r.MigrationsOn), "migrations_on")
}
