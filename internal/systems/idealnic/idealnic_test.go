package idealnic

import (
	"testing"
	"time"

	"mindgap/internal/dist"
	"mindgap/internal/loadgen"
	"mindgap/internal/params"
	"mindgap/internal/sim"
	"mindgap/internal/task"
)

func throughput(t *testing.T, cfg Config, rps float64, svc dist.Distribution, measure int) float64 {
	t.Helper()
	eng := sim.New()
	completions := 0
	var start sim.Time
	sys := New(eng, cfg, nil, func(*task.Request) {
		completions++
		if completions == measure/4 {
			start = eng.Now() // crude warmup cut
		}
		if completions >= measure {
			eng.Halt()
		}
	})
	loadgen.New(eng, loadgen.Config{RPS: rps, Service: svc, Seed: 9}, sys.Inject).Start()
	eng.Run()
	if completions < measure {
		t.Fatalf("only %d/%d completions", completions, measure)
	}
	window := eng.Now().Sub(start)
	return float64(measure-measure/4) / window.Seconds()
}

func base(workers, k int) Config {
	return Config{P: params.Default(), Workers: workers, Outstanding: k}
}

func TestLineRateAblationRemovesDispatcherCap(t *testing.T) {
	svc := dist.Fixed{D: time.Microsecond}
	stock := throughput(t, base(16, 5), 6_000_000, svc, 10000)
	lr := base(16, 5)
	lr.LineRate = true
	fast := throughput(t, lr, 6_000_000, svc, 10000)
	// §5.1(1): hardware scheduling must at least double the ARM cap and
	// approach worker-bound throughput.
	if fast < 2*stock {
		t.Fatalf("line-rate ablation: %.0f not ≥ 2× stock %.0f", fast, stock)
	}
}

func TestCXLAblationShrinksKRequirement(t *testing.T) {
	// §5.1(2): with 0.5µs communication, k=1 no longer starves workers the
	// way the 2.56µs packet path does.
	svc := dist.Fixed{D: time.Microsecond}
	stockK1 := throughput(t, base(4, 1), 4_000_000, svc, 8000)
	cxl := base(4, 1)
	cxl.CXL = true
	cxlK1 := throughput(t, cxl, 4_000_000, svc, 8000)
	if cxlK1 < 1.5*stockK1 {
		t.Fatalf("CXL k=1 throughput %.0f not ≥ 1.5× stock %.0f", cxlK1, stockK1)
	}
}

func TestFullIdealNICBeatsShinjukuCap(t *testing.T) {
	// All three fixes: the ideal NIC must exceed even the host
	// dispatcher's ~3.5M/s on the Figure 6 workload.
	cfg := base(16, 2)
	cfg.CXL = true
	cfg.LineRate = true
	got := throughput(t, cfg, 12_000_000, dist.Fixed{D: time.Microsecond}, 20000)
	if got < 5_000_000 {
		t.Fatalf("ideal NIC throughput %.0f, want > 5M", got)
	}
}

func TestDirectInterruptsStillPreempt(t *testing.T) {
	eng := sim.New()
	cfg := base(2, 2)
	cfg.DirectInterrupts = true
	cfg.Slice = 10 * time.Microsecond
	var preempted bool
	sys := New(eng, cfg, nil, func(r *task.Request) {
		if r.Preemptions > 0 {
			preempted = true
		}
	})
	for i := uint64(1); i <= 3; i++ {
		sys.Inject(task.New(i, 0, 50*time.Microsecond))
	}
	eng.Run()
	if !preempted {
		t.Fatal("direct-interrupt ideal NIC never preempted a 50µs request")
	}
}

func TestNameFor(t *testing.T) {
	cfg := Config{CXL: true, LineRate: true, DirectInterrupts: true}
	if got := NameFor(cfg); got != "idealnic/cxl+linerate+directirq" {
		t.Fatalf("NameFor = %q", got)
	}
	if got := NameFor(Config{CXL: true}); got != "idealnic/cxl" {
		t.Fatalf("NameFor = %q", got)
	}
	if got := NameFor(Config{}); got != "idealnic" {
		t.Fatalf("NameFor = %q", got)
	}
	sys := New(sim.New(), base(2, 1), nil, func(*task.Request) {})
	if got := sys.Name(); got != "idealnic" {
		t.Fatalf("Name = %q", got)
	}
}
