package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"mindgap/internal/sim"
)

// buildLifecycle records one full request lifecycle with a preemption and
// a migration (worker 0 → worker 1).
func buildLifecycle(b *Buffer, id uint64, base sim.Time) {
	b.Record(base, Arrive, id, -1)
	b.Record(base+100, Ingress, id, -1)
	b.Record(base+200, Enqueue, id, -1)
	b.Record(base+300, Dispatch, id, 0)
	b.Record(base+400, Start, id, 0)
	b.Record(base+900, Preempt, id, 0)
	b.Record(base+1000, Enqueue, id, -1)
	b.Record(base+1100, Dispatch, id, 1)
	b.Record(base+1200, Start, id, 1)
	b.Record(base+1500, Complete, id, 1)
	b.Record(base+1600, Respond, id, -1)
}

func TestWriteChromeValidJSON(t *testing.T) {
	b := New(0)
	buildLifecycle(b, 1, 0)
	buildLifecycle(b, 2, 5000)
	b.Record(10_000, Arrive, 3, -1)
	b.Record(10_100, Ingress, 3, -1)
	b.Record(10_200, Drop, 3, -1)
	if err := b.ValidateAll(); err != nil {
		t.Fatalf("fixture trace invalid: %v", err)
	}

	var buf bytes.Buffer
	if err := WriteChrome(&buf, b); err != nil {
		t.Fatal(err)
	}
	var ct ChromeTrace
	if err := json.Unmarshal(buf.Bytes(), &ct); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if ct.DisplayTimeUnit != "ns" {
		t.Fatalf("displayTimeUnit = %q", ct.DisplayTimeUnit)
	}

	var (
		slices    []ChromeEvent
		asyncOpen = map[string]int{}
		meta      = map[string]bool{}
	)
	for _, e := range ct.TraceEvents {
		switch e.Ph {
		case "M":
			name, _ := e.Args["name"].(string)
			meta[name] = true
		case "X":
			if e.Dur == nil || *e.Dur < 0 {
				t.Fatalf("slice %q has invalid dur", e.Name)
			}
			if e.Pid != chromePidWorkers {
				t.Fatalf("slice %q on pid %d", e.Name, e.Pid)
			}
			slices = append(slices, e)
		case "b":
			asyncOpen[e.ID]++
		case "e":
			asyncOpen[e.ID]--
		case "n":
			if e.ID == "" {
				t.Fatalf("async instant %q missing id", e.Name)
			}
		default:
			t.Fatalf("unexpected phase %q", e.Ph)
		}
	}

	// Async begin/end must balance per request span.
	for id, n := range asyncOpen {
		if n != 0 {
			t.Fatalf("async span %s unbalanced (%+d)", id, n)
		}
	}
	if len(asyncOpen) != 3 {
		t.Fatalf("async spans for %d requests, want 3", len(asyncOpen))
	}

	// Requests 1 and 2 each ran two segments (preempted then resumed).
	if len(slices) != 4 {
		t.Fatalf("execution slices = %d, want 4", len(slices))
	}
	// The preempted segment sits on worker 0, the resumed one on worker 1.
	if slices[0].Tid != 0 || slices[1].Tid != 1 {
		t.Fatalf("slice tids = %d,%d, want 0,1", slices[0].Tid, slices[1].Tid)
	}
	if got := *slices[0].Dur; got != 0.5 { // 500ns = 0.5µs
		t.Fatalf("first slice dur = %gµs, want 0.5", got)
	}

	for _, name := range []string{"scheduler", "workers", "worker 0", "worker 1"} {
		if !meta[name] {
			t.Fatalf("missing track metadata %q", name)
		}
	}
}

func TestWriteChromeDroppedRequestHasNoSlices(t *testing.T) {
	b := New(0)
	b.Record(0, Arrive, 7, -1)
	b.Record(50, Ingress, 7, -1)
	b.Record(80, Drop, 7, -1)

	var buf bytes.Buffer
	if err := WriteChrome(&buf, b); err != nil {
		t.Fatal(err)
	}
	var ct ChromeTrace
	if err := json.Unmarshal(buf.Bytes(), &ct); err != nil {
		t.Fatal(err)
	}
	sawDropInstant := false
	for _, e := range ct.TraceEvents {
		if e.Ph == "X" {
			t.Fatalf("dropped request produced execution slice %q", e.Name)
		}
		if e.Ph == "n" && e.Name == "drop" {
			sawDropInstant = true
		}
	}
	if !sawDropInstant {
		t.Fatal("drop instant not emitted")
	}
}

func TestWriteChromeInFlightRequestBalanced(t *testing.T) {
	b := New(0)
	b.Record(0, Arrive, 9, -1)
	b.Record(100, Enqueue, 9, -1)
	b.Record(200, Dispatch, 9, 0)
	b.Record(300, Start, 9, 0) // halted mid-execution

	var buf bytes.Buffer
	if err := WriteChrome(&buf, b); err != nil {
		t.Fatal(err)
	}
	var ct ChromeTrace
	if err := json.Unmarshal(buf.Bytes(), &ct); err != nil {
		t.Fatal(err)
	}
	open := 0
	for _, e := range ct.TraceEvents {
		switch e.Ph {
		case "b":
			open++
		case "e":
			open--
		}
	}
	if open != 0 {
		t.Fatalf("in-flight request leaves %+d unbalanced async spans", open)
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	b := New(0)
	buildLifecycle(b, 4, 0)

	var buf bytes.Buffer
	if err := WriteJSON(&buf, b); err != nil {
		t.Fatal(err)
	}
	var events []struct {
		AtNS   int64  `json:"at_ns"`
		Kind   string `json:"kind"`
		ReqID  uint64 `json:"req"`
		Worker int    `json:"worker"`
	}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("raw JSON export invalid: %v", err)
	}
	if len(events) != b.Len() {
		t.Fatalf("exported %d events, want %d", len(events), b.Len())
	}
	if events[0].Kind != "arrive" || events[len(events)-1].Kind != "respond" {
		t.Fatalf("event order wrong: first=%q last=%q", events[0].Kind, events[len(events)-1].Kind)
	}
	if !strings.Contains(buf.String(), `"kind":"preempt"`) {
		t.Fatal("preempt event missing from raw export")
	}
}
