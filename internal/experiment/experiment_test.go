package experiment

import (
	"strings"
	"testing"
	"time"

	"mindgap/internal/dist"
	"mindgap/internal/params"
	"mindgap/internal/scenario"
	"mindgap/internal/stats"
)

// tiny is a fast quality for unit tests.
var tiny = Quality{Warmup: 500, Measure: 3000, Seed: 7}

func TestRunPointBasics(t *testing.T) {
	r := RunPoint(PointConfig{
		Factory:    OffloadFactory(params.Default(), 2, 2, 0),
		Service:    dist.Fixed{D: 5 * time.Microsecond},
		OfferedRPS: 100_000,
		Warmup:     tiny.Warmup,
		Measure:    tiny.Measure,
		Seed:       tiny.Seed,
	})
	if r.SystemName != "shinjuku-offload" {
		t.Fatalf("SystemName = %q", r.SystemName)
	}
	if r.Completed != int64(tiny.Measure) {
		t.Fatalf("Completed = %d, want %d", r.Completed, tiny.Measure)
	}
	if r.Saturated {
		t.Fatal("lightly loaded point flagged saturated")
	}
	// Achieved must track offered within sampling noise.
	if r.AchievedRPS < 90_000 || r.AchievedRPS > 110_000 {
		t.Fatalf("AchievedRPS = %.0f", r.AchievedRPS)
	}
	if r.P99 < r.P50 || r.P50 <= 0 {
		t.Fatalf("quantiles inconsistent: p50=%v p99=%v", r.P50, r.P99)
	}
	if r.SimTime <= 0 {
		t.Fatal("SimTime not recorded")
	}
}

func TestRunPointDetectsSaturation(t *testing.T) {
	// 2 workers at 5µs ⇒ ~350k capacity; offer 800k.
	r := RunPoint(PointConfig{
		Factory:    OffloadFactory(params.Default(), 2, 2, 0),
		Service:    dist.Fixed{D: 5 * time.Microsecond},
		OfferedRPS: 800_000,
		Warmup:     tiny.Warmup,
		Measure:    tiny.Measure,
		Seed:       tiny.Seed,
	})
	if !r.Saturated {
		t.Fatal("overloaded point not flagged saturated")
	}
	if r.AchievedRPS > 500_000 {
		t.Fatalf("achieved %.0f above physical capacity", r.AchievedRPS)
	}
}

func TestRunPointWatchdogTruncates(t *testing.T) {
	r := RunPoint(PointConfig{
		Factory:    OffloadFactory(params.Default(), 1, 1, 0),
		Service:    dist.Fixed{D: 100 * time.Microsecond},
		OfferedRPS: 1_000_000, // 100× beyond capacity
		Warmup:     1000,
		Measure:    1_000_000, // cannot complete before the watchdog
		MaxSimTime: 20 * time.Millisecond,
		Seed:       1,
	})
	if !r.Truncated || !r.Saturated {
		t.Fatalf("expected truncated+saturated, got %+v", r)
	}
	if r.SimTime > 25*time.Millisecond {
		t.Fatalf("watchdog ignored: SimTime = %v", r.SimTime)
	}
}

func TestRunPointValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero Measure did not panic")
		}
	}()
	RunPoint(PointConfig{Factory: RSSFactory(params.Default(), 1), Service: dist.Fixed{D: 1}, OfferedRPS: 1000})
}

func TestSweepStopsAfterSaturation(t *testing.T) {
	cfg := PointConfig{
		Factory: RSSFactory(params.Default(), 1),
		Service: dist.Fixed{D: 10 * time.Microsecond}, // capacity ≈ 97k
		Warmup:  200, Measure: 1500, Seed: 3,
	}
	loads := []float64{50_000, 120_000, 150_000, 200_000, 300_000, 400_000}
	res := Sweep(cfg, loads)
	if len(res) >= len(loads) {
		t.Fatalf("sweep did not stop early: %d points", len(res))
	}
	last := res[len(res)-1]
	if !last.Saturated {
		t.Fatal("sweep ended on a non-saturated point")
	}
}

func TestTimerCostsMatchPaper(t *testing.T) {
	rows := TimerCosts(params.Default())
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	set, fire := rows[0], rows[1]
	if set.Reduction < 0.92 || set.Reduction > 0.94 {
		t.Fatalf("set reduction %.3f, want ≈0.93", set.Reduction)
	}
	if fire.Reduction < 0.69 || fire.Reduction > 0.71 {
		t.Fatalf("fire reduction %.3f, want ≈0.70", fire.Reduction)
	}
	if set.DirectTime != 17*time.Nanosecond || fire.DirectTime != 553*time.Nanosecond {
		t.Fatalf("direct times %v/%v", set.DirectTime, fire.DirectTime)
	}
}

func TestCommLatency(t *testing.T) {
	r := CommLatency(params.Default())
	if r.Modelled != r.Paper {
		t.Fatalf("modelled %v != paper %v", r.Modelled, r.Paper)
	}
}

func TestIPCOverheadDirection(t *testing.T) {
	r := IPCOverhead(tiny)
	if r.Overhead <= 0 {
		t.Fatalf("IPC overhead %v, want positive (paper: ≈2µs)", r.Overhead)
	}
	if r.Overhead > 5*time.Microsecond {
		t.Fatalf("IPC overhead %v implausibly large", r.Overhead)
	}
}

func TestRenderAndCSV(t *testing.T) {
	cfg := PointConfig{
		Factory: RSSFactory(params.Default(), 2),
		Service: dist.Fixed{D: 5 * time.Microsecond},
		Warmup:  200, Measure: 1000, Seed: 3,
	}
	fig := Figure{
		ID: "test", Title: "t", XLabel: "x", YLabel: "y",
		Series: []Series{{Label: "s1", Results: Sweep(cfg, []float64{50_000, 100_000})}},
	}
	var sb strings.Builder
	fig.Render(&sb)
	out := sb.String()
	for _, want := range []string{"== test", "-- s1", "p99"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render output missing %q:\n%s", want, out)
		}
	}
	sb.Reset()
	if err := fig.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 { // header + 2 points
		t.Fatalf("CSV lines = %d:\n%s", len(lines), sb.String())
	}
	if !strings.HasPrefix(lines[0], "figure,series,x,") {
		t.Fatalf("CSV header = %q", lines[0])
	}
}

func TestSeriesSummaries(t *testing.T) {
	s := Series{Results: []Result{
		{Point: pointAt(100, 100, false)},
		{Point: pointAt(200, 195, false)},
		{Point: pointAt(300, 220, true)},
	}}
	if got := s.SaturationPoint(); got != 300 {
		t.Fatalf("SaturationPoint = %v", got)
	}
	if got := s.PeakThroughput(); got != 220 {
		t.Fatalf("PeakThroughput = %v", got)
	}
	empty := Series{}
	if empty.SaturationPoint() != 0 || empty.PeakThroughput() != 0 {
		t.Fatal("empty series summaries nonzero")
	}
	never := Series{Results: []Result{{Point: pointAt(100, 100, false)}}}
	if never.SaturationPoint() != 100 {
		t.Fatal("unsaturated series should report last x")
	}
}

func pointAt(offered, achieved float64, sat bool) stats.Point {
	return stats.Point{OfferedRPS: offered, AchievedRPS: achieved, Saturated: sat}
}

func TestLoadGrid(t *testing.T) {
	// Load grids now come from scenario specs; the figure presets rely on
	// inclusive endpoints and exact integer-index generation.
	g := (scenario.Grid{Lo: 100, Hi: 500, Step: 100}).Points()
	if len(g) != 5 || g[0] != 100 || g[4] != 500 {
		t.Fatalf("Grid.Points = %v", g)
	}
}

func TestRunPointReplicated(t *testing.T) {
	cfg := PointConfig{
		Factory:    RSSFactory(params.Default(), 2),
		Service:    dist.Fixed{D: 5 * time.Microsecond},
		OfferedRPS: 100_000,
		Warmup:     200, Measure: 1500,
	}
	rep := RunPointReplicated(cfg, []uint64{1, 2, 3})
	if len(rep.Runs) != 3 {
		t.Fatalf("runs = %d", len(rep.Runs))
	}
	if rep.MeanP99 <= 0 || rep.MeanAchieved <= 0 {
		t.Fatalf("summary zero: %+v", rep)
	}
	if rep.AnySaturated {
		t.Fatal("light load flagged saturated")
	}
	// Cross-seed noise on a light fixed workload should be small.
	if rep.RelativeP99Spread() > 0.25 {
		t.Fatalf("p99 spread %.2f too large", rep.RelativeP99Spread())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("empty seeds did not panic")
			}
		}()
		RunPointReplicated(cfg, nil)
	}()
	// Setting PointConfig.Seed alongside an explicit seed list must panic:
	// the list replaces the seed, and silently ignoring it would let a
	// replicate summary masquerade as a single-seed run.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("cfg.Seed + seed list did not panic")
			}
		}()
		bad := cfg
		bad.Seed = 42
		RunPointReplicated(bad, []uint64{1, 2})
	}()
}

func TestDispersionSensitivityMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("figure harness test")
	}
	rows := DispersionSensitivity(Quality{Warmup: 500, Measure: 6_000, Seed: 7})
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// CV² must increase along the sweep by construction.
	for i := 1; i < len(rows); i++ {
		if rows[i].CV2 <= rows[i-1].CV2 {
			t.Fatalf("CV² not increasing: %+v", rows)
		}
	}
	// The preemption win must be largest for the most dispersed workload
	// and essentially absent for the deterministic one.
	if rows[0].Win > 1.3 || rows[0].Win < 0.7 {
		t.Fatalf("fixed workload preemption 'win' = %.2f, want ≈1", rows[0].Win)
	}
	last := rows[len(rows)-1]
	if last.Win < 2 {
		t.Fatalf("bimodal short-request preemption win = %.2f, want ≥ 2", last.Win)
	}
	if last.Win <= rows[0].Win {
		t.Fatal("preemption win did not grow with dispersion")
	}
}

func TestPlotRendersAllSeries(t *testing.T) {
	cfg := PointConfig{
		Factory: RSSFactory(params.Default(), 2),
		Service: dist.Fixed{D: 5 * time.Microsecond},
		Warmup:  200, Measure: 1000, Seed: 3,
	}
	fig := Figure{
		ID: "test", Title: "t", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Label: "a", Results: Sweep(cfg, []float64{50_000, 100_000, 150_000})},
			{Label: "b", Results: Sweep(cfg, []float64{50_000, 100_000})},
		},
	}
	var sb strings.Builder
	fig.Plot(&sb, 60, 12)
	out := sb.String()
	for _, want := range []string{"o = a", "x = b", "log scale", "+--"} {
		if !strings.Contains(out, want) {
			t.Fatalf("plot missing %q:\n%s", want, out)
		}
	}
	if !strings.ContainsAny(out, "ox") {
		t.Fatal("no data glyphs plotted")
	}
	// Empty figure must not panic.
	sb.Reset()
	Figure{ID: "empty"}.Plot(&sb, 0, 0)
	if !strings.Contains(sb.String(), "no data") {
		t.Fatal("empty figure plot missing placeholder")
	}
}

func TestFormatHelpers(t *testing.T) {
	cases := map[float64]string{
		1.5e9: "1.5s", 2.3e6: "2.3ms", 4.2e3: "4.2µs", 500: "500ns",
	}
	for in, want := range cases {
		if got := formatNanos(in); got != want {
			t.Fatalf("formatNanos(%v) = %q, want %q", in, got, want)
		}
	}
	if formatCount(2.5e6) != "2.5M" || formatCount(300_000) != "300k" || formatCount(42) != "42" {
		t.Fatal("formatCount wrong")
	}
}

func TestPolicyAblationInformedWins(t *testing.T) {
	if testing.Short() {
		t.Skip("figure harness test")
	}
	rows := PolicyAblation(Quality{Warmup: 2000, Measure: 20000, Seed: 7})
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byPolicy := map[string]PolicyRow{}
	for _, r := range rows {
		byPolicy[r.Policy.String()] = r
	}
	informed := byPolicy["informed-least-loaded"]
	rr := byPolicy["round-robin"]
	// The informed policy must beat blind round-robin on the tail by a
	// meaningful margin in this deep-stash dispersive regime.
	if float64(informed.P99) > 0.9*float64(rr.P99) {
		t.Fatalf("informed p99 %v not ≤ 0.9× round-robin %v", informed.P99, rr.P99)
	}
	// Throughput is load-bound and must match across policies.
	for _, r := range rows {
		if r.Achieved < 0.95*rr.Achieved || r.Achieved > 1.05*rr.Achieved {
			t.Fatalf("achieved rates diverge: %+v", rows)
		}
	}
}

func TestAffinityAblationReducesMigrations(t *testing.T) {
	if testing.Short() {
		t.Skip("figure harness test")
	}
	r := AffinityAblation(Quality{Warmup: 1000, Measure: 10000, Seed: 7})
	if r.MigrationsOff == 0 || r.Preemptions == 0 {
		t.Fatalf("no preemption activity: %+v", r)
	}
	if float64(r.MigrationsOn) > 0.7*float64(r.MigrationsOff) {
		t.Fatalf("affinity did not cut migrations: off=%d on=%d",
			r.MigrationsOff, r.MigrationsOn)
	}
	// The latency impact at a 250ns penalty is small; just require that
	// affinity does not hurt the mean materially.
	if float64(r.MeanOn) > 1.1*float64(r.MeanOff) {
		t.Fatalf("affinity hurt mean latency: off=%v on=%v", r.MeanOff, r.MeanOn)
	}
}

func TestRunPointIsDeterministic(t *testing.T) {
	// The reproducibility guarantee behind EXPERIMENTS.md: identical
	// config + seed ⇒ bit-identical measurements, across every system.
	factories := map[string]Factory{
		"offload":  OffloadFactory(params.Default(), 3, 3, 10*time.Microsecond),
		"shinjuku": ShinjukuFactory(params.Default(), 2, 10*time.Microsecond),
		"rss":      RSSFactory(params.Default(), 3),
		"zygos":    ZygOSFactory(params.Default(), 3),
		"rpcvalet": RPCValetFactory(params.Default(), 3),
		"erss":     ERSSFactory(params.Default(), 3),
	}
	for name, f := range factories {
		cfg := PointConfig{
			Factory:    f,
			Service:    dist.Bimodal{P1: 0.95, D1: 3 * time.Microsecond, D2: 50 * time.Microsecond},
			OfferedRPS: 200_000,
			Warmup:     300, Measure: 2_000, Seed: 99,
		}
		a := RunPoint(cfg)
		b := RunPoint(cfg)
		if a.Point != b.Point {
			t.Errorf("%s: rerun diverged:\n  %+v\n  %+v", name, a.Point, b.Point)
		}
	}
}
