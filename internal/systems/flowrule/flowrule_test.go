package flowrule

import (
	"testing"
	"time"

	"mindgap/internal/params"
	"mindgap/internal/sim"
	"mindgap/internal/stats"
	"mindgap/internal/task"
)

// completion records one finished request and its respond instant.
type completion struct {
	req *task.Request
	at  sim.Time
}

// newSys builds a system on a fresh engine with the given config (P
// defaulted) and records completions.
func newSys(t *testing.T, cfg Config) (*sim.Engine, *FlowRule, *[]completion) {
	t.Helper()
	eng := sim.New()
	var done []completion
	if cfg.P.ClientWireOneWay == 0 {
		cfg.P = params.Default()
	}
	s := New(eng, cfg, &stats.Recorder{}, func(r *task.Request) {
		done = append(done, completion{req: r, at: eng.Now()})
	})
	return eng, s, &done
}

// inject sends one batch of a flow through the front door, maintaining
// the generator-side bookkeeping the system expects.
func inject(eng *sim.Engine, s *FlowRule, f *task.Flow, id uint64, pkts uint32, svc time.Duration) {
	req := task.New(id, eng.Now(), svc)
	req.FlowID = f.ID
	req.FlowState = f
	req.Packets = pkts
	f.InFlight++
	s.Inject(req)
}

func TestSlowThenFastSteering(t *testing.T) {
	eng, s, done := newSys(t, Config{
		Workers:   1,
		Threshold: 1,
	})
	wire := params.Default().ClientWireOneWay
	f := task.NewFlow(1, task.ClassElephant, 1024)

	inject(eng, s, f, 1, 64, 10*time.Microsecond)
	eng.RunUntil(sim.Time(int64(time.Millisecond)))
	if s.SlowBatches() != 1 || s.FastBatches() != 0 {
		t.Fatalf("first batch: slow=%d fast=%d, want 1/0", s.SlowBatches(), s.FastBatches())
	}
	// Empty queue, idle core: the first batch pays wire, its service
	// time, the 80µs slow-path overhead, and the wire back.
	wantSlow := sim.Time(int64(wire + 10*time.Microsecond + 80*time.Microsecond + wire))
	if got := (*done)[0].at - (*done)[0].req.Arrival; got != wantSlow {
		t.Fatalf("slow-path latency = %v, want %v", got, wantSlow)
	}
	// One observed batch ≥ threshold 1: the rule must now be installed
	// (insertion pipeline drained long ago at 200k rules/s).
	if s.Resident() != 1 || s.Insertions() != 1 {
		t.Fatalf("resident=%d insertions=%d after qualifying batch, want 1/1", s.Resident(), s.Insertions())
	}

	inject(eng, s, f, 2, 64, 10*time.Microsecond)
	eng.RunUntil(sim.Time(int64(2 * time.Millisecond)))
	if s.FastBatches() != 1 {
		t.Fatalf("second batch did not take the fast path (fast=%d)", s.FastBatches())
	}
	// Fast path: wire + 10µs hardware transit + wire. No queue, no core,
	// no slow-path overhead.
	wantFast := sim.Time(int64(wire + 10*time.Microsecond + wire))
	if got := (*done)[1].at - (*done)[1].req.Arrival; got != wantFast {
		t.Fatalf("fast-path latency = %v, want %v", got, wantFast)
	}
	if f.Seen != 128 {
		t.Fatalf("classifier saw %d packets, want 128", f.Seen)
	}
}

func TestLRUEvictionDeterminism(t *testing.T) {
	eng, s, _ := newSys(t, Config{
		Workers:      1,
		Threshold:    1,
		RuleCapacity: 2,
		IdleTimeout:  time.Hour, // keep idle eviction out of the picture
	})
	a := task.NewFlow(1, task.ClassElephant, 1<<20)
	b := task.NewFlow(2, task.ClassElephant, 1<<20)
	c := task.NewFlow(3, task.ClassElephant, 1<<20)

	inject(eng, s, a, 1, 64, time.Microsecond)
	eng.RunUntil(sim.Time(int64(time.Millisecond)))
	inject(eng, s, b, 2, 64, time.Microsecond)
	eng.RunUntil(sim.Time(int64(2 * time.Millisecond)))
	if s.Resident() != 2 {
		t.Fatalf("resident = %d, want 2 (a and b installed)", s.Resident())
	}
	// Touch a on the fast path: b becomes least-recently-used.
	inject(eng, s, a, 3, 64, time.Microsecond)
	eng.RunUntil(sim.Time(int64(3 * time.Millisecond)))
	if !a.Resident || !b.Resident {
		t.Fatal("expected a and b resident before the eviction")
	}
	// c's install must evict exactly b, the LRU rule.
	inject(eng, s, c, 4, 64, time.Microsecond)
	eng.RunUntil(sim.Time(int64(4 * time.Millisecond)))
	if !a.Resident || b.Resident || !c.Resident {
		t.Fatalf("after eviction: a=%v b=%v c=%v, want a and c resident", a.Resident, b.Resident, c.Resident)
	}
	if s.LRUEvictions() != 1 {
		t.Fatalf("lru evictions = %d, want 1", s.LRUEvictions())
	}
}

func TestIdleTimeoutEviction(t *testing.T) {
	eng, s, _ := newSys(t, Config{
		Workers:     1,
		Threshold:   1,
		IdleTimeout: time.Millisecond,
	})
	f := task.NewFlow(1, task.ClassElephant, 1<<20)
	inject(eng, s, f, 1, 64, time.Microsecond)
	eng.RunUntil(sim.Time(int64(500 * time.Microsecond)))
	if !f.Resident {
		t.Fatal("rule not installed")
	}
	// No further traffic: the idle sweep must evict within a few periods.
	eng.RunUntil(sim.Time(int64(5 * time.Millisecond)))
	if f.Resident {
		t.Fatal("rule still resident after 5x the idle timeout")
	}
	if s.IdleEvictions() != 1 {
		t.Fatalf("idle evictions = %d, want 1", s.IdleEvictions())
	}
}

func TestInsertionBackPressure(t *testing.T) {
	eng, s, _ := newSys(t, Config{
		Workers:        1,
		Threshold:      1,
		InsertRate:     1000, // 1ms per rule
		InsertQueueCap: 2,
		SlowQueueCap:   1 << 20,
	})
	// 10 qualifying flows arrive within one insertion service time. A
	// rule in service keeps its queue slot until it completes, so 2 are
	// admitted and 8 refused.
	for i := 0; i < 10; i++ {
		f := task.NewFlow(task.FlowID(i+1), task.ClassElephant, 1<<20)
		inject(eng, s, f, uint64(i+1), 64, time.Microsecond)
	}
	eng.RunUntil(sim.Time(int64(100 * time.Microsecond)))
	if s.OverOffload() != 8 {
		t.Fatalf("refused offloads = %d, want 8 (insert queue cap 2 of 10)", s.OverOffload())
	}
	if s.Insertions() != 0 {
		t.Fatalf("insertions = %d before the pipeline's 1ms service time", s.Insertions())
	}
	// The pipeline drains its admitted backlog at the bounded rate.
	eng.RunUntil(sim.Time(int64(10 * time.Millisecond)))
	if s.Insertions() != 2 {
		t.Fatalf("insertions = %d, want 2 (bounded insertion rate)", s.Insertions())
	}
}

func TestSlowQueueSaturationDrops(t *testing.T) {
	rec := &stats.Recorder{}
	eng := sim.New()
	var done []*task.Request
	cfg := Config{
		P:            params.Default(),
		Workers:      1,
		SlowQueueCap: 1,
	}
	s := New(eng, cfg, rec, func(r *task.Request) { done = append(done, r) })
	rec.Arm(0)
	// Three flowless batches in one instant: one in service, one queued,
	// one dropped.
	for i := 0; i < 3; i++ {
		s.Inject(task.New(uint64(i+1), 0, 100*time.Microsecond))
	}
	eng.RunUntil(sim.Time(int64(10 * time.Millisecond)))
	if s.DroppedBatches() != 1 {
		t.Fatalf("dropped = %d, want 1", s.DroppedBatches())
	}
	if rec.Dropped() != 1 {
		t.Fatalf("recorder drops = %d, want 1", rec.Dropped())
	}
	if len(done) != 2 {
		t.Fatalf("completions = %d, want 2", len(done))
	}
}

func TestRetiredFlowSkipsInstallAndReleases(t *testing.T) {
	pool := &task.FlowPool{}
	eng, s, _ := newSys(t, Config{
		Workers:    1,
		Threshold:  1,
		InsertRate: 1000, // 1ms per rule: the flow retires mid-pipeline
	})
	f := pool.Get(1, task.ClassRat, 4)
	f.Remaining = 0
	inject(eng, s, f, 1, 4, time.Microsecond)
	// The generator retires the flow right after emitting its last batch.
	f.Retired = true
	eng.RunUntil(sim.Time(int64(10 * time.Millisecond)))
	if s.Insertions() != 0 {
		t.Fatal("installed a rule for a retired flow")
	}
	if s.Resident() != 0 {
		t.Fatalf("resident = %d, want 0", s.Resident())
	}
	if pool.Live() != 0 {
		t.Fatalf("flow record leaked: live = %d, want 0", pool.Live())
	}
}

func TestAdaptiveThresholdController(t *testing.T) {
	eng, s, _ := newSys(t, Config{
		Workers:       1,
		Threshold:     16,
		Adaptive:      true,
		AdaptInterval: time.Millisecond,
	})
	// Insertion-pipeline overflow in the first interval: threshold
	// doubles.
	s.overOffload = 5
	eng.RunUntil(sim.Time(int64(1500 * time.Microsecond)))
	if s.Threshold() != 32 {
		t.Fatalf("threshold = %d after overflow, want 32", s.Threshold())
	}
	// Quiet interval: no movement.
	eng.RunUntil(sim.Time(int64(2500 * time.Microsecond)))
	if s.Threshold() != 32 {
		t.Fatalf("threshold = %d after quiet interval, want 32", s.Threshold())
	}
	// Slow-path drops with a healthy pipeline: threshold halves.
	s.dropBatches = 3
	eng.RunUntil(sim.Time(int64(3500 * time.Microsecond)))
	if s.Threshold() != 16 {
		t.Fatalf("threshold = %d after drops, want 16", s.Threshold())
	}
	if s.Adjustments() != 2 {
		t.Fatalf("adjustments = %d, want 2", s.Adjustments())
	}
}

func TestBelowThresholdStaysSlow(t *testing.T) {
	eng, s, _ := newSys(t, Config{Workers: 1, Threshold: 1 << 19})
	f := task.NewFlow(1, task.ClassElephant, 1<<20)
	for i := 0; i < 5; i++ {
		inject(eng, s, f, uint64(i+1), 64, time.Microsecond)
		eng.RunUntil(sim.Time(int64((i + 1) * int(time.Millisecond))))
	}
	if s.Insertions() != 0 || s.FastBatches() != 0 {
		t.Fatalf("insertions=%d fast=%d below threshold, want 0/0", s.Insertions(), s.FastBatches())
	}
	if s.SlowBatches() != 5 {
		t.Fatalf("slow batches = %d, want 5", s.SlowBatches())
	}
}
