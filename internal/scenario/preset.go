package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"

	"mindgap/internal/dist"
)

// Preset is a checked-in scenario file: presentation metadata plus one
// or more series, each a full Spec. Preset-level Workload, Keys, Load
// and Seed are defaults inherited by series that leave them unset, so a
// figure whose curves share a workload and load grid states them once.
//
// A preset with a Tenants list instead describes a multi-tenant
// topology (the X9 experiment): several co-located load classes driven
// against one server described by System + Knobs.
type Preset struct {
	// ID names the preset; checked-in files are named <id>.json.
	ID string `json:"id"`
	// Title, XLabel and YLabel are presentation metadata.
	Title  string `json:"title,omitempty"`
	XLabel string `json:"xlabel,omitempty"`
	YLabel string `json:"ylabel,omitempty"`
	// Workload, Keys, Flow, Load and Seed are series defaults.
	Workload string    `json:"workload,omitempty"`
	Keys     *KeysSpec `json:"keys,omitempty"`
	Flow     *FlowSpec `json:"flow,omitempty"`
	Load     *LoadSpec `json:"load,omitempty"`
	Seed     uint64    `json:"seed,omitempty"`
	// Series holds one entry per measured curve.
	Series []SeriesSpec `json:"series,omitempty"`
	// System, Knobs and Tenants describe a multi-tenant preset: the
	// shared server and the co-located load classes driving it.
	System  string       `json:"system,omitempty"`
	Knobs   *Knobs       `json:"knobs,omitempty"`
	Tenants []TenantSpec `json:"tenants,omitempty"`
}

// SeriesSpec is one labelled curve of a preset.
type SeriesSpec struct {
	// Label names the curve in rendered figures and cache keys.
	Label string `json:"label"`
	Spec
}

// TenantSpec is one co-located application class of a multi-tenant
// preset (§2.2: "multiple co-located applications from different
// latency classes").
type TenantSpec struct {
	// Name labels the tenant in reports.
	Name string `json:"name"`
	// RPS is the tenant's offered load.
	RPS float64 `json:"rps"`
	// Workload is the tenant's service-time distribution.
	Workload string `json:"workload"`
	// Class is the tenant's priority class (0 = highest).
	Class int `json:"class,omitempty"`
}

// SpecFor resolves series i against the preset defaults: the series
// spec with unset Workload/Keys/Load/Seed filled from the preset and
// Name filled from the label.
func (p Preset) SpecFor(i int) Spec {
	sp := p.Series[i].Spec
	if sp.Name == "" {
		sp.Name = p.Series[i].Label
	}
	if sp.Workload == "" {
		sp.Workload = p.Workload
	}
	if sp.Keys == nil {
		sp.Keys = p.Keys
	}
	if sp.Flow == nil {
		sp.Flow = p.Flow
	}
	if sp.Load == nil {
		sp.Load = p.Load
	}
	if sp.Seed == 0 {
		sp.Seed = p.Seed
	}
	return sp
}

// Encode renders the preset in the canonical on-disk form: two-space
// indented JSON with a trailing newline. The scenarios package's golden
// tests pin Encode(DecodePreset(file)) == file for every checked-in
// preset, so files stay canonical.
func (p Preset) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// DecodePreset parses a preset file, rejecting unknown fields.
func DecodePreset(b []byte) (Preset, error) {
	var p Preset
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return Preset{}, fmt.Errorf("scenario: decode preset: %w", err)
	}
	return p, nil
}

// DecodeAny parses either a preset or a bare single Spec, wrapping the
// latter into a one-series preset — so `mindgap-sim -scenario file.json`
// accepts both shapes.
func DecodeAny(b []byte) (Preset, error) {
	p, perr := DecodePreset(b)
	if perr == nil && (len(p.Series) > 0 || len(p.Tenants) > 0) {
		return p, nil
	}
	sp, serr := Decode(b)
	if serr == nil && sp.System != "" {
		label := sp.Name
		if label == "" {
			label = sp.System
		}
		return Preset{
			ID:     label,
			Series: []SeriesSpec{{Label: label, Spec: sp}},
		}, nil
	}
	if perr != nil {
		return Preset{}, perr
	}
	return Preset{}, fmt.Errorf("scenario: file declares neither series nor tenants nor a system")
}

// Validate checks the preset and every resolved series spec.
func (p Preset) Validate() error {
	if p.ID == "" {
		return fmt.Errorf("scenario: preset needs an id")
	}
	if len(p.Tenants) > 0 {
		if len(p.Series) > 0 {
			return fmt.Errorf("scenario: preset %q mixes series and tenants", p.ID)
		}
		sp := Spec{System: p.System, Knobs: p.Knobs}
		if err := sp.Validate(); err != nil {
			return fmt.Errorf("scenario: preset %q: %w", p.ID, err)
		}
		for _, t := range p.Tenants {
			if t.Name == "" || t.RPS <= 0 {
				return fmt.Errorf("scenario: preset %q: tenant needs a name and rps > 0", p.ID)
			}
			if _, err := dist.Parse(t.Workload); err != nil {
				return fmt.Errorf("scenario: preset %q tenant %q: %w", p.ID, t.Name, err)
			}
		}
		return nil
	}
	if len(p.Series) == 0 {
		return fmt.Errorf("scenario: preset %q has no series", p.ID)
	}
	for i, s := range p.Series {
		if s.Label == "" {
			return fmt.Errorf("scenario: preset %q series %d has no label", p.ID, i)
		}
		sp := p.SpecFor(i)
		if err := sp.Validate(); err != nil {
			return fmt.Errorf("scenario: preset %q series %q: %w", p.ID, s.Label, err)
		}
		if sp.Workload == "" {
			return fmt.Errorf("scenario: preset %q series %q has no workload", p.ID, s.Label)
		}
		if sp.Load == nil {
			return fmt.Errorf("scenario: preset %q series %q has no load", p.ID, s.Label)
		}
	}
	return nil
}
