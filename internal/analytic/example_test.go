package analytic_test

import (
	"fmt"
	"time"

	"mindgap/internal/analytic"
)

// Closed-form queueing results used to validate the simulator.
func ExampleErlangC() {
	// Probability an arrival waits in an M/M/4 queue at 70% utilization.
	fmt.Printf("P(wait) = %.3f\n", analytic.ErlangC(4, 0.7))
	// Mean queueing delay for 10µs mean service.
	w := analytic.MMcMeanWait(4, 0.7, 10*time.Microsecond)
	fmt.Printf("mean wait = %v\n", w.Round(100*time.Nanosecond))
	// Output:
	// P(wait) = 0.429
	// mean wait = 3.6µs
}
