package hypothesis

import (
	"fmt"
	"math"
	"time"

	"mindgap/internal/analytic"
	"mindgap/internal/dist"
)

// TwinReport is the analytic-twin check of one executed hypothesis: the
// closed-form prediction for the named arm against the cross-seed mean
// of the simulation, with the documented tolerance.
type TwinReport struct {
	// Model, Arm, Servers, Metric and Tolerance echo the spec.
	Model     string
	Arm       string
	Servers   int
	Metric    string
	Tolerance float64
	// Predicted is the closed-form value; Simulated is the cross-seed
	// mean of the simulated arm. Both in the metric's unit (ns).
	Predicted, Simulated float64
	// RelErr is |Simulated−Predicted| / Predicted.
	RelErr float64
	Pass   bool
	Reason string
}

// evalTwin runs the closed form against the arm's measurements. The
// hypothesis has already validated: exponential workload, known model,
// resolvable server count, single load point.
func evalTwin(h Spec, loadsA, loadsB []float64, mA, mB []measurement) TwinReport {
	a := h.Analytic
	arm, rps, ms := h.A, loadsA[0], mA
	if a.Arm == "b" {
		arm, rps, ms = h.B, loadsB[0], mB
	}
	t := TwinReport{
		Model:     a.Model,
		Arm:       a.Arm,
		Servers:   a.servers(arm),
		Metric:    a.Metric,
		Tolerance: a.Tolerance,
	}

	svc, err := dist.Parse(arm.Scenario.Workload)
	if err != nil {
		// Validation parsed it already; defend anyway.
		t.Reason = fmt.Sprintf("workload reparse failed: %v", err)
		return t
	}
	meanSvc := svc.Mean()
	c := t.Servers
	rho := rps * meanSvc.Seconds() / float64(c)
	if rho >= 1 {
		t.Reason = fmt.Sprintf("utilization %.3f ≥ 1 — the closed form diverges, pick a stable load", rho)
		return t
	}

	var predicted time.Duration
	switch a.Model {
	case "mm1-percore":
		// c hash-partitioned cores, each an independent M/M/1 at λ/c and
		// per-core utilization equal to the system utilization.
		if a.Metric == "p99" {
			predicted = analytic.MM1ResponseQuantile(rho, meanSvc, 0.99)
		} else {
			predicted = analytic.MM1MeanResponse(rho, meanSvc)
		}
	case "mmc":
		predicted = analytic.MMcMeanResponse(c, rho, meanSvc)
	}
	t.Predicted = float64(predicted)

	def := metrics[a.Metric]
	var sum float64
	for _, m := range ms {
		sum += def.value(m)
	}
	t.Simulated = sum / float64(len(ms))
	t.RelErr = math.Abs(t.Simulated-t.Predicted) / t.Predicted

	if t.RelErr <= t.Tolerance {
		t.Pass = true
		t.Reason = fmt.Sprintf("simulated %s %s tracks %s within %s of theory (measured error %s)",
			arm.Label, a.Metric, a.Model, pct(t.Tolerance), pct(t.RelErr))
	} else {
		t.Reason = fmt.Sprintf("simulated %s %s is %s from %s theory, beyond documented tolerance %s",
			arm.Label, a.Metric, pct(t.RelErr), a.Model, pct(t.Tolerance))
	}
	return t
}
