package experiment

import (
	"context"
	"math"
	"strconv"
	"time"

	"mindgap/internal/runner"
)

// Replicated summarizes one load point measured across several independent
// seeds — the error bars a careful reproduction reports.
type Replicated struct {
	// Runs holds the individual results in seed order.
	Runs []Result
	// MeanP99 and P99StdDev summarize the tail metric across seeds.
	MeanP99   time.Duration
	P99StdDev time.Duration
	// MeanAchieved and AchievedStdDev summarize throughput.
	MeanAchieved   float64
	AchievedStdDev float64
	// AnySaturated reports whether any replicate saturated.
	AnySaturated bool
}

// IsSaturated implements the sweep runner's saturation probe.
func (r Replicated) IsSaturated() bool { return r.AnySaturated }

// RunPointReplicatedWith measures cfg across the given seeds — one
// independent simulation per seed, fanned out on rn — and returns
// cross-seed summary statistics. The explicit seed list replaces
// cfg.Seed; setting both panics, so a replicate summary can never be
// mistaken for (or silently collapse into) a single-seed run. sysKey must
// uniquely describe the system under test (cfg.Factory is not
// introspectable); it enables result caching, and an empty sysKey
// disables it.
func RunPointReplicatedWith(ctx context.Context, rn *runner.Runner, sysKey string, cfg PointConfig, seeds []uint64) (Replicated, error) {
	if len(seeds) == 0 {
		panic("experiment: need at least one seed")
	}
	if cfg.Seed != 0 {
		panic("experiment: PointConfig.Seed is set alongside an explicit seed list; zero cfg.Seed (the seed list replaces it)")
	}
	pts := make([]runner.Point[Result], len(seeds))
	for i, seed := range seeds {
		c := cfg
		c.Seed = seed
		key := ""
		if sysKey != "" {
			key = pointKey("replicate", sysKey, c, "seed="+strconv.FormatUint(seed, 10))
		}
		pts[i] = runner.Point[Result]{
			Key: key,
			Run: func() Result { return RunPoint(c) },
		}
	}
	runs, err := runner.RunOne(ctx, rn, "replicate", runner.Series[Result]{Points: pts})
	rep := Replicated{Runs: runs}
	var p99s, tputs []float64
	for _, r := range runs {
		p99s = append(p99s, float64(r.P99))
		tputs = append(tputs, r.AchievedRPS)
		rep.AnySaturated = rep.AnySaturated || r.Saturated
	}
	mean, sd := meanStd(p99s)
	rep.MeanP99, rep.P99StdDev = time.Duration(mean), time.Duration(sd)
	rep.MeanAchieved, rep.AchievedStdDev = meanStd(tputs)
	return rep, err
}

// RunPointReplicated measures cfg across the given seeds on the default
// parallel runner. cfg.Seed must be zero — the seed list replaces it.
func RunPointReplicated(cfg PointConfig, seeds []uint64) Replicated {
	rep, _ := RunPointReplicatedWith(context.Background(), nil, "", cfg, seeds)
	return rep
}

// RelativeP99Spread returns the coefficient of variation of p99 across
// seeds — the run-to-run noise figure quoted in EXPERIMENTS.md.
func (r Replicated) RelativeP99Spread() float64 {
	if r.MeanP99 == 0 {
		return 0
	}
	return float64(r.P99StdDev) / float64(r.MeanP99)
}

// meanStd returns the sample mean and (population) standard deviation.
func meanStd(xs []float64) (mean, sd float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var acc float64
	for _, x := range xs {
		d := x - mean
		acc += d * d
	}
	return mean, math.Sqrt(acc / float64(len(xs)))
}
