package stats

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEmptyHistogram(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.P99() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestExactRange(t *testing.T) {
	var h Histogram
	for v := int64(0); v < subBuckets; v++ {
		h.Record(time.Duration(v))
	}
	// Every value below subBuckets is stored exactly.
	for v := int64(1); v < subBuckets; v++ {
		q := float64(v+1) / float64(subBuckets)
		got := h.Quantile(q)
		if got != time.Duration(v) {
			t.Fatalf("Quantile(%v) = %v, want %v", q, got, v)
		}
	}
}

func TestBucketRoundTrip(t *testing.T) {
	// bucketUpper(bucketIndex(v)) must be >= v and within the relative
	// error bound, and indices must be monotone in v.
	prev := -1
	for _, v := range []int64{0, 1, 127, 128, 129, 255, 256, 1000, 4096, 65535,
		1_000_000, 123_456_789, int64(time.Hour)} {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex not monotone at %d", v)
		}
		prev = idx
		u := bucketUpper(idx)
		if u < v {
			t.Fatalf("bucketUpper(%d)=%d < v=%d", idx, u, v)
		}
		if v >= subBuckets && float64(u-v) > float64(v)/float64(halfRow)+1 {
			t.Fatalf("bucket error too large: v=%d upper=%d", v, u)
		}
	}
}

func TestQuantileAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 9))
	var h Histogram
	var vals []int64
	for i := 0; i < 50_000; i++ {
		v := rng.Int64N(100_000_000) // up to 100ms
		vals = append(vals, v)
		h.Record(time.Duration(v))
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := vals[int(q*float64(len(vals)))-1]
		got := int64(h.Quantile(q))
		if got < exact {
			t.Fatalf("Quantile(%v)=%d below exact %d", q, got, exact)
		}
		if float64(got-exact) > float64(exact)*0.02+2 {
			t.Fatalf("Quantile(%v)=%d too far above exact %d", q, got, exact)
		}
	}
}

func TestMinMaxMean(t *testing.T) {
	var h Histogram
	for _, v := range []time.Duration{5 * time.Microsecond, time.Microsecond, 9 * time.Microsecond} {
		h.Record(v)
	}
	if h.Min() != time.Microsecond {
		t.Fatalf("Min = %v", h.Min())
	}
	if h.Max() != 9*time.Microsecond {
		t.Fatalf("Max = %v", h.Max())
	}
	if h.Mean() != 5*time.Microsecond {
		t.Fatalf("Mean = %v", h.Mean())
	}
}

func TestNegativeClampsToZero(t *testing.T) {
	var h Histogram
	h.Record(-5)
	if h.Min() != 0 || h.Max() != 0 || h.Count() != 1 {
		t.Fatal("negative record should clamp to zero")
	}
}

func TestHugeValueClamps(t *testing.T) {
	var h Histogram
	h.Record(time.Duration(1) << 62)
	if h.Count() != 1 {
		t.Fatal("huge value not recorded")
	}
	if h.Quantile(0.5) != h.Max() {
		t.Fatal("clamped value should still resolve to max")
	}
}

func TestQuantileEdges(t *testing.T) {
	var h Histogram
	h.Record(10)
	h.Record(20)
	if h.Quantile(0) != 10 {
		t.Fatalf("Quantile(0) = %v, want min", h.Quantile(0))
	}
	if h.Quantile(1) != 20 {
		t.Fatalf("Quantile(1) = %v, want max", h.Quantile(1))
	}
}

func TestMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 1000; i++ {
		a.Record(time.Duration(i))
		b.Record(time.Duration(1000 + i))
	}
	a.Merge(&b)
	if a.Count() != 2000 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Min() != 0 || a.Max() != time.Duration(1999) {
		t.Fatalf("merged min/max = %v/%v", a.Min(), a.Max())
	}
	med := a.Quantile(0.5)
	if med < 990 || med > 1010 {
		t.Fatalf("merged median = %v, want ≈1000", med)
	}
	a.Merge(nil) // must not panic
	var empty Histogram
	a.Merge(&empty)
	if a.Count() != 2000 {
		t.Fatal("merging empty changed count")
	}
}

func TestReset(t *testing.T) {
	var h Histogram
	h.Record(time.Millisecond)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 || h.Quantile(0.99) != 0 {
		t.Fatal("Reset did not clear state")
	}
}

// Property: for any set of durations, every quantile is between min and max
// and quantiles are monotone in q.
func TestQuickQuantileSanity(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		for _, v := range raw {
			h.Record(time.Duration(v))
		}
		prev := time.Duration(-1)
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1} {
			v := h.Quantile(q)
			if v < h.Min() || v > h.Max() {
				return false
			}
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: merging two histograms is equivalent to recording the union.
func TestQuickMergeEquivalence(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		var a, b, u Histogram
		for _, v := range xs {
			a.Record(time.Duration(v))
			u.Record(time.Duration(v))
		}
		for _, v := range ys {
			b.Record(time.Duration(v))
			u.Record(time.Duration(v))
		}
		a.Merge(&b)
		if a.Count() != u.Count() || a.Min() != u.Min() || a.Max() != u.Max() {
			return false
		}
		for _, q := range []float64{0.5, 0.9, 0.99} {
			if a.Quantile(q) != u.Quantile(q) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRecord(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(time.Duration(i%1_000_000 + 1))
	}
}

func BenchmarkQuantile(b *testing.B) {
	var h Histogram
	rng := rand.New(rand.NewPCG(1, 1))
	for i := 0; i < 100_000; i++ {
		h.Record(time.Duration(rng.Int64N(10_000_000)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.P99()
	}
}
