package erss

import (
	"testing"
	"time"

	"mindgap/internal/dist"
	"mindgap/internal/loadgen"
	"mindgap/internal/params"
	"mindgap/internal/sim"
	"mindgap/internal/stats"
	"mindgap/internal/task"
)

func run(t *testing.T, cfg Config, rps float64, svc dist.Distribution, measure int) (*stats.Recorder, *ERSS, *sim.Engine) {
	t.Helper()
	eng := sim.New()
	rec := &stats.Recorder{}
	rec.Arm(0)
	completions := 0
	var sys *ERSS
	sys = New(eng, cfg, rec, func(r *task.Request) {
		rec.RecordLatency(r.Latency(eng.Now()))
		completions++
		if completions >= measure {
			eng.Halt()
		}
	})
	sys.ArmWorkerTrackers(0)
	loadgen.New(eng, loadgen.Config{RPS: rps, Service: svc, Seed: 17}, sys.Inject).Start()
	eng.Run()
	if completions < measure {
		t.Fatalf("only %d/%d completions", completions, measure)
	}
	return rec, sys, eng
}

func cfg(workers int) Config {
	return Config{P: params.Default(), Workers: workers}
}

func TestScalesUpUnderLoad(t *testing.T) {
	// Start at 1 provisioned core; a load needing ~3 cores must grow the
	// set.
	_, sys, _ := run(t, cfg(8), 600_000, dist.Fixed{D: 5 * time.Microsecond}, 10000)
	if sys.Provisioned() < 3 {
		t.Fatalf("provisioned = %d, want ≥ 3 under 600k×5µs load", sys.Provisioned())
	}
	if sys.Resizes() == 0 {
		t.Fatal("no reprovisioning happened")
	}
}

func TestScalesDownWhenIdle(t *testing.T) {
	eng := sim.New()
	sys := New(eng, cfg(8), nil, func(*task.Request) {})
	// Force a large provisioned set, then run with no load.
	sys.provisioned = 8
	eng.RunUntil(sim.Time(int64(2 * time.Millisecond)))
	if sys.Provisioned() != 1 {
		t.Fatalf("provisioned = %d after idle period, want 1", sys.Provisioned())
	}
}

func TestKeepsFewCoresBusyAtLowLoad(t *testing.T) {
	// The eRSS pitch: at low load, most cores stay unprovisioned (idle
	// and reusable). Mean idle fraction across all 8 cores must stay very
	// high for a load one core can handle.
	_, sys, eng := run(t, cfg(8), 50_000, dist.Fixed{D: 5 * time.Microsecond}, 4000)
	if idle := sys.WorkerIdleFraction(eng.Now()); idle < 0.85 {
		t.Fatalf("idle fraction %v, want ≥ 0.85 (cores should be deprovisioned)", idle)
	}
	if sys.Provisioned() > 3 {
		t.Fatalf("provisioned = %d at trivial load", sys.Provisioned())
	}
}

func TestCompletesEverythingWhileResizing(t *testing.T) {
	// Requests hashed to a core that later gets deprovisioned must still
	// complete (the core drains its queue).
	rec, sys, _ := run(t, cfg(6),
		400_000, dist.Exponential{M: 5 * time.Microsecond}, 12000)
	if rec.Dropped() != 0 {
		t.Fatalf("drops = %d", rec.Dropped())
	}
	if sys.Completions() < 12000 {
		t.Fatalf("completions = %d", sys.Completions())
	}
}

func TestNoPreemptionHeadOfLineBlocking(t *testing.T) {
	// eRSS fixes provisioning, not blocking: a long request still blocks
	// shorts on its core.
	rec, _, _ := run(t, cfg(4), 300_000,
		dist.Bimodal{P1: 0.99, D1: 2 * time.Microsecond, D2: 300 * time.Microsecond}, 8000)
	if rec.Preemptions() != 0 {
		t.Fatal("erss must never preempt")
	}
	if rec.Latency.P99() < 100*time.Microsecond {
		t.Fatalf("p99 = %v; expected head-of-line blocking to push it high", rec.Latency.P99())
	}
}

func TestValidationAndDefaults(t *testing.T) {
	eng := sim.New()
	for _, f := range []func(){
		func() { New(eng, Config{P: params.Default()}, nil, func(*task.Request) {}) },
		func() { New(eng, cfg(1), nil, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid config did not panic")
				}
			}()
			f()
		}()
	}
	sys := New(eng, Config{P: params.Default(), Workers: 2, MinWorkers: 5}, nil, func(*task.Request) {})
	if sys.Provisioned() != 2 {
		t.Fatalf("MinWorkers not clamped: %d", sys.Provisioned())
	}
	if sys.Name() != "erss" {
		t.Fatalf("Name = %q", sys.Name())
	}
}
