package experiment

import (
	"context"
	"reflect"
	"testing"

	"mindgap/internal/dist"
	"mindgap/internal/runner"
	"mindgap/internal/scenario"
)

// attrTestQuality keeps the attribution tests cheap enough to run under
// the race detector in short mode while still completing thousands of
// requests per point.
var attrTestQuality = Quality{Warmup: 300, Measure: 1500, Seed: 7}

// TestAttributionObservationInvariance is the observer contract: attaching
// a collector must not change the measurement. Every series of the
// attribution preset is run twice from identical configurations — once
// plain, once with a collector attached — and the conventional Result
// (latency percentiles, throughput, completion counts) must be deeply
// equal. Any divergence means an attribution hook scheduled an event or
// perturbed an RNG stream.
func TestAttributionObservationInvariance(t *testing.T) {
	p := mustPreset("table-attribution")
	for i := range p.Series {
		sp := p.SpecFor(i)
		t.Run(sp.Name, func(t *testing.T) {
			svc, err := dist.Parse(sp.Workload)
			if err != nil {
				t.Fatal(err)
			}
			eq := qualityFor(sp, attrTestQuality)
			loads := specLoads(sp, svc)
			if len(loads) == 0 {
				t.Fatal("preset series has no load points")
			}
			rps := loads[0]

			row := runAttributionPoint(sp, eq, rps)

			f, err := scenario.Build(sp)
			if err != nil {
				t.Fatal(err)
			}
			cfg := PointConfig{
				Factory:    f,
				Service:    svc,
				OfferedRPS: rps,
				Warmup:     eq.Warmup,
				Measure:    eq.Measure,
				Seed:       eq.Seed,
			}
			if sp.Keys != nil {
				cfg.Keys = sp.Keys.Keys()
			}
			plain := RunPoint(cfg)

			if !reflect.DeepEqual(row.Result, plain) {
				t.Errorf("attaching the collector changed the measurement\nwith:    %+v\nwithout: %+v",
					row.Result, plain)
			}
			if row.Audit.Decisions == 0 {
				t.Error("collector audited no dispatch decisions")
			}
			if len(row.Phases) == 0 {
				t.Error("collector produced no phase rows")
			}
		})
	}
}

// TestAttributionParallelismIndependent pins the determinism contract for
// the attribution table: per-point collectors are created inside each
// point run and never shared, so the full table must be deeply equal at
// -j1 and -j4 (CI runs this under -race, where sharing would also trip
// the detector).
func TestAttributionParallelismIndependent(t *testing.T) {
	run := func(par int) []AttributionRow {
		t.Helper()
		rows, err := AttributionWith(context.Background(),
			&runner.Runner{Parallelism: par}, attrTestQuality)
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	j1 := run(1)
	j4 := run(4)
	if !reflect.DeepEqual(j1, j4) {
		t.Errorf("attribution table differs between -j1 and -j4\nj1: %+v\nj4: %+v", j1, j4)
	}
	if len(j1) != 3 {
		t.Fatalf("attribution table has %d rows, want 3", len(j1))
	}
}

// TestAttributionHostQueueCollapse asserts the table's headline claim at
// test quality: the host-queue share of tail latency is strictly lower
// under informed offload than under blind RSS steering.
func TestAttributionHostQueueCollapse(t *testing.T) {
	rows, err := AttributionWith(context.Background(),
		&runner.Runner{Parallelism: 4}, attrTestQuality)
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]AttributionRow{}
	for _, r := range rows {
		byLabel[r.Label] = r
	}
	off, ok := byLabel["shinjuku-offload"]
	if !ok {
		t.Fatal("missing shinjuku-offload row")
	}
	rss, ok := byLabel["rss"]
	if !ok {
		t.Fatal("missing rss row")
	}
	if off.HostQueueTailShare() >= rss.HostQueueTailShare() {
		t.Errorf("host-queue tail share: offload %.3f, rss %.3f — want offload strictly lower",
			off.HostQueueTailShare(), rss.HostQueueTailShare())
	}
	if off.Audit.Informed == 0 {
		t.Error("offload row recorded no informed decisions")
	}
	if rss.Audit.Informed != 0 {
		t.Errorf("rss row recorded %d informed decisions, want 0 (hash steering holds no estimate)",
			rss.Audit.Informed)
	}
}
