// Package queue provides the queue structures used across the scheduling
// systems: an unbounded FIFO (the centralized task queue of Shinjuku and
// Shinjuku-Offload, §3.4.1) and a bounded ring (worker RX queues, where the
// dispatcher stashes outstanding requests — the queuing optimization of
// §3.4.5).
package queue

// FIFO is an unbounded first-in-first-out queue with amortized O(1)
// operations. The zero value is an empty queue ready for use.
//
// Every queue keeps free telemetry probes — push/pop totals and the
// depth high-water mark — that cost one integer update per operation, so
// observability layers can read rates and peaks without wrapping the
// container.
type FIFO[T any] struct {
	items []T
	head  int

	pushes  uint64
	pops    uint64
	highWat int
}

// Len returns the number of queued items.
//
//mindgap:noalloc
func (q *FIFO[T]) Len() int { return len(q.items) - q.head }

// Pushes returns the total number of items ever enqueued.
func (q *FIFO[T]) Pushes() uint64 { return q.pushes }

// Pops returns the total number of items ever dequeued (head or tail).
func (q *FIFO[T]) Pops() uint64 { return q.pops }

// HighWater returns the largest depth the queue ever reached.
func (q *FIFO[T]) HighWater() int { return q.highWat }

// Push appends v to the tail.
//
//mindgap:noalloc
func (q *FIFO[T]) Push(v T) {
	if q.head > 64 && q.head*2 >= len(q.items) {
		n := copy(q.items, q.items[q.head:])
		var zero T
		for i := n; i < len(q.items); i++ {
			q.items[i] = zero
		}
		q.items = q.items[:n]
		q.head = 0
	}
	q.items = append(q.items, v)
	q.pushes++
	if d := q.Len(); d > q.highWat {
		q.highWat = d
	}
}

// Pop removes and returns the head. ok is false on an empty queue.
//
//mindgap:noalloc
func (q *FIFO[T]) Pop() (v T, ok bool) {
	var zero T
	if q.Len() == 0 {
		return zero, false
	}
	v = q.items[q.head]
	q.items[q.head] = zero
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	q.pops++
	return v, true
}

// Peek returns the head without removing it.
//
//mindgap:noalloc
func (q *FIFO[T]) Peek() (v T, ok bool) {
	var zero T
	if q.Len() == 0 {
		return zero, false
	}
	return q.items[q.head], true
}

// Do calls fn for each queued item, head first, without removing any —
// ground-truth backlog scans (the attribution layer's decision audit)
// read per-core queues this way.
func (q *FIFO[T]) Do(fn func(T)) {
	for i := q.head; i < len(q.items); i++ {
		fn(q.items[i])
	}
}

// PopTail removes and returns the tail — used by work-stealing baselines
// (ZygOS steals from the far end of a sibling's queue).
//
//mindgap:noalloc
func (q *FIFO[T]) PopTail() (v T, ok bool) {
	var zero T
	if q.Len() == 0 {
		return zero, false
	}
	last := len(q.items) - 1
	v = q.items[last]
	q.items[last] = zero
	q.items = q.items[:last]
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	q.pops++
	return v, true
}

// Ring is a bounded FIFO ring buffer. The zero value is unusable; call
// NewRing. It models fixed-size hardware queues (NIC RX descriptor rings):
// Push fails when full and the caller decides whether that is backpressure
// or a drop.
type Ring[T any] struct {
	buf   []T
	head  int
	count int

	pushes   uint64
	pops     uint64
	rejected uint64
	highWat  int
}

// NewRing creates a ring with the given capacity (must be positive).
func NewRing[T any](capacity int) *Ring[T] {
	if capacity <= 0 {
		panic("queue: ring capacity must be positive")
	}
	return &Ring[T]{buf: make([]T, capacity)}
}

// Cap returns the ring's fixed capacity.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// Len returns the number of items currently queued.
func (r *Ring[T]) Len() int { return r.count }

// Full reports whether Push would fail.
func (r *Ring[T]) Full() bool { return r.count == len(r.buf) }

// Empty reports whether Pop would fail.
func (r *Ring[T]) Empty() bool { return r.count == 0 }

// Push appends v; it reports false if the ring is full.
//
//mindgap:noalloc
func (r *Ring[T]) Push(v T) bool {
	if r.count == len(r.buf) {
		r.rejected++
		return false
	}
	r.buf[(r.head+r.count)%len(r.buf)] = v
	r.count++
	r.pushes++
	if r.count > r.highWat {
		r.highWat = r.count
	}
	return true
}

// Pop removes and returns the oldest item.
//
//mindgap:noalloc
func (r *Ring[T]) Pop() (v T, ok bool) {
	var zero T
	if r.count == 0 {
		return zero, false
	}
	v = r.buf[r.head]
	r.buf[r.head] = zero
	r.head = (r.head + 1) % len(r.buf)
	r.count--
	r.pops++
	return v, true
}

// Pushes returns the total number of items ever accepted.
func (r *Ring[T]) Pushes() uint64 { return r.pushes }

// Pops returns the total number of items ever dequeued.
func (r *Ring[T]) Pops() uint64 { return r.pops }

// Rejected returns how many Push calls failed on a full ring.
func (r *Ring[T]) Rejected() uint64 { return r.rejected }

// HighWater returns the peak occupancy the ring ever reached.
func (r *Ring[T]) HighWater() int { return r.highWat }

// Peek returns the oldest item without removing it.
//
//mindgap:noalloc
func (r *Ring[T]) Peek() (v T, ok bool) {
	var zero T
	if r.count == 0 {
		return zero, false
	}
	return r.buf[r.head], true
}

// Do calls fn for each queued item, oldest first, without removing any —
// how a host core inspects its RX descriptor ring to summarize pending
// work for load feedback.
func (r *Ring[T]) Do(fn func(T)) {
	for i := 0; i < r.count; i++ {
		fn(r.buf[(r.head+i)%len(r.buf)])
	}
}
