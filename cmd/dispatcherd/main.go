// Command dispatcherd runs the live mindgap dispatcher: the centralized,
// informed scheduler (internal/core.Logic) behind a UDP socket, playing the
// role the paper offloads to the SmartNIC ARM cores.
//
// Usage:
//
//	dispatcherd -listen 127.0.0.1:9000 -workers 4 -outstanding 5
//
// Then start `workerd` processes and drive load with `loadgen`.
//
// With -metrics the scheduler's telemetry registry is served over HTTP:
// `curl http://127.0.0.1:9090/metrics` (plain text) or `/debug/vars`
// (JSON snapshot).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"mindgap/internal/core"
	"mindgap/internal/live"
	"mindgap/internal/telemetry"
)

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:9000", "UDP address to listen on")
		workers     = flag.Int("workers", 2, "number of workers that will register")
		outstanding = flag.Int("outstanding", 5, "per-worker outstanding-request limit (queuing optimization)")
		policy      = flag.String("policy", "least-outstanding", "worker selection: least-outstanding, round-robin, informed")
		statsEvery  = flag.Duration("stats", 5*time.Second, "stats print interval (0 = quiet)")
		metricsAddr = flag.String("metrics", "", "HTTP address serving /metrics and /debug/vars (empty = off)")
	)
	flag.Parse()

	var pol core.Policy
	switch *policy {
	case "least-outstanding":
		pol = core.LeastOutstanding
	case "round-robin":
		pol = core.RoundRobin
	case "informed":
		pol = core.InformedLeastLoaded
	default:
		fmt.Fprintf(os.Stderr, "dispatcherd: unknown policy %q\n", *policy)
		os.Exit(2)
	}

	d, err := live.NewDispatcher(*listen, live.DispatcherConfig{
		Workers:     *workers,
		Outstanding: *outstanding,
		Policy:      pol,
	})
	if err != nil {
		log.Fatalf("dispatcherd: %v", err)
	}
	log.Printf("dispatcherd: listening on %v, expecting %d workers (k=%d, %v)",
		d.Addr(), *workers, *outstanding, pol)

	if *metricsAddr != "" {
		reg := telemetry.NewRegistry()
		d.RegisterMetrics(reg)
		ms, err := live.ServeMetrics(*metricsAddr, reg)
		if err != nil {
			log.Fatalf("dispatcherd: %v", err)
		}
		defer ms.Close()
		log.Printf("dispatcherd: metrics on %s/metrics", ms.URL())
	}

	if *statsEvery > 0 {
		go func() {
			for range time.Tick(*statsEvery) {
				a, c, p, q := d.Stats()
				log.Printf("dispatcherd: assigned=%d completed=%d preempted=%d queued=%d", a, c, p, q)
			}
		}()
	}

	errCh := make(chan error, 1)
	go func() { errCh <- d.Serve() }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	select {
	case <-sig:
		log.Print("dispatcherd: shutting down")
		_ = d.Close()
	case err := <-errCh:
		if err != nil {
			log.Fatalf("dispatcherd: %v", err)
		}
	}
}
