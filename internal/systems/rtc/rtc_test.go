package rtc

import (
	"testing"
	"time"

	"mindgap/internal/dist"
	"mindgap/internal/loadgen"
	"mindgap/internal/params"
	"mindgap/internal/sim"
	"mindgap/internal/stats"
	"mindgap/internal/task"
)

func run(t *testing.T, cfg Config, rps float64, svc dist.Distribution, keys *dist.ZipfKeys, measure int) (*stats.Recorder, *Pool, *sim.Engine) {
	t.Helper()
	eng := sim.New()
	rec := &stats.Recorder{}
	rec.Arm(0)
	completions := 0
	var sys *Pool
	sys = New(eng, cfg, rec, func(r *task.Request) {
		rec.RecordLatency(r.Latency(eng.Now()))
		completions++
		if completions >= measure {
			eng.Halt()
		}
	})
	sys.ArmWorkerTrackers(0)
	loadgen.New(eng, loadgen.Config{RPS: rps, Service: svc, Keys: keys, Seed: 11}, sys.Inject).Start()
	eng.Run()
	if completions < measure {
		t.Fatalf("only %d/%d completions", completions, measure)
	}
	return rec, sys, eng
}

func TestNames(t *testing.T) {
	eng := sim.New()
	done := func(*task.Request) {}
	p := params.Default()
	if got := New(eng, Config{P: p, Workers: 1}, nil, done).Name(); got != "rss" {
		t.Fatalf("Name = %q", got)
	}
	if got := New(eng, Config{P: p, Workers: 1, WorkStealing: true}, nil, done).Name(); got != "zygos" {
		t.Fatalf("Name = %q", got)
	}
	if got := New(eng, Config{P: p, Workers: 1, Steering: SteerKey}, nil, done).Name(); got != "flow-director" {
		t.Fatalf("Name = %q", got)
	}
	if got := New(eng, Config{P: p, Workers: 1, NameOverride: "ix"}, nil, done).Name(); got != "ix" {
		t.Fatalf("Name = %q", got)
	}
}

func TestRunToCompletionNoPreemption(t *testing.T) {
	rec, _, _ := run(t, Config{P: params.Default(), Workers: 2}, 100_000,
		dist.Bimodal{P1: 0.99, D1: time.Microsecond, D2: 100 * time.Microsecond}, nil, 3000)
	if rec.Preemptions() != 0 {
		t.Fatalf("rtc system preempted %d times", rec.Preemptions())
	}
}

func TestRSSSpreadsLoad(t *testing.T) {
	_, sys, eng := run(t, Config{P: params.Default(), Workers: 4}, 800_000,
		dist.Fixed{D: time.Microsecond}, nil, 8000)
	// All four cores must have done meaningful work.
	for i, w := range sys.workers {
		if w.exec.Completions() < 1000 {
			t.Fatalf("worker %d only completed %d (RSS imbalance too extreme)", i, w.exec.Completions())
		}
	}
	_ = eng
}

func TestKeySteeringIsSticky(t *testing.T) {
	// All requests with one key land on one worker.
	eng := sim.New()
	sys := New(eng, Config{P: params.Default(), Workers: 4, Steering: SteerKey}, nil, func(*task.Request) {})
	for i := uint64(0); i < 50; i++ {
		r := task.New(i, 0, time.Microsecond)
		r.Key = 42
		sys.Inject(r)
	}
	eng.Run()
	busy := 0
	for _, w := range sys.workers {
		if w.exec.Completions() > 0 {
			busy++
			if w.exec.Completions() != 50 {
				t.Fatalf("sticky worker completed %d, want 50", w.exec.Completions())
			}
		}
	}
	if busy != 1 {
		t.Fatalf("%d workers served a single key, want 1", busy)
	}
}

func TestSkewedKeysOverloadFlowDirector(t *testing.T) {
	// §2.2 item 1: key skew creates load imbalance that RSS avoids.
	keys := dist.NewZipfKeys(64, 1.2)
	svc := dist.Fixed{D: 5 * time.Microsecond}
	p99 := func(steer Steering) time.Duration {
		rec, _, _ := run(t, Config{P: params.Default(), Workers: 4, Steering: steer},
			500_000, svc, keys, 8000)
		return rec.Latency.P99()
	}
	fd := p99(SteerKey)
	rss := p99(SteerHash)
	if fd <= rss {
		t.Fatalf("flow director p99 %v not worse than RSS %v under skew", fd, rss)
	}
}

func TestWorkStealingRepairsImbalance(t *testing.T) {
	// With uniform hash steering, random bursts still pile onto one core;
	// stealing must cut the tail versus plain RSS.
	svc := dist.Fixed{D: 10 * time.Microsecond}
	p99 := func(steal bool) time.Duration {
		rec, _, _ := run(t, Config{P: params.Default(), Workers: 4, WorkStealing: steal},
			330_000, svc, nil, 10000)
		return rec.Latency.P99()
	}
	zygos := p99(true)
	rss := p99(false)
	if zygos >= rss {
		t.Fatalf("work stealing did not help: zygos p99 %v vs rss %v", zygos, rss)
	}
}

func TestStealingConservation(t *testing.T) {
	rec, sys, _ := run(t, Config{P: params.Default(), Workers: 4, WorkStealing: true},
		600_000, dist.Exponential{M: 5 * time.Microsecond}, nil, 10000)
	if rec.Dropped() != 0 {
		t.Fatalf("drops = %d", rec.Dropped())
	}
	if sys.Completions() < 10000 {
		t.Fatalf("completions = %d", sys.Completions())
	}
}

func TestBoundedQueuesDrop(t *testing.T) {
	eng := sim.New()
	rec := &stats.Recorder{}
	rec.Arm(0)
	sys := New(eng, Config{P: params.Default(), Workers: 1, QueueCap: 2}, rec, func(*task.Request) {})
	// Burst of simultaneous arrivals at one instant: queue cap 2 forces
	// drops once the backlog exceeds it.
	for i := uint64(0); i < 10; i++ {
		sys.Inject(task.New(i, 0, 100*time.Microsecond))
	}
	eng.Run()
	if rec.Dropped() == 0 {
		t.Fatal("no drops despite bounded queue and burst")
	}
	if got := sys.Completions() + uint64(rec.Dropped()); got != 10 {
		t.Fatalf("completions+drops = %d, want 10", got)
	}
}

func TestHeadOfLineBlockingWithoutPreemption(t *testing.T) {
	// The §2.2 item-2 pathology: a single worker, one long request, then
	// short ones — they must all wait (contrast with the Offload test).
	eng := sim.New()
	var lat []time.Duration
	sys := New(eng, Config{P: params.Default(), Workers: 1}, nil, func(r *task.Request) {
		lat = append(lat, r.Latency(eng.Now()))
	})
	sys.Inject(task.New(1, 0, 500*time.Microsecond))
	eng.After(time.Microsecond, func() {
		sys.Inject(task.New(2, eng.Now(), time.Microsecond))
	})
	eng.Run()
	if len(lat) != 2 {
		t.Fatalf("completions = %d", len(lat))
	}
	if lat[1] < 400*time.Microsecond {
		t.Fatalf("short request latency %v — run-to-completion should block it", lat[1])
	}
}

func TestValidation(t *testing.T) {
	eng := sim.New()
	for _, f := range []func(){
		func() { New(eng, Config{P: params.Default()}, nil, func(*task.Request) {}) },
		func() { New(eng, Config{P: params.Default(), Workers: 1}, nil, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid config did not panic")
				}
			}()
			f()
		}()
	}
}

func TestQueueLensSnapshot(t *testing.T) {
	eng := sim.New()
	sys := New(eng, Config{P: params.Default(), Workers: 3}, nil, func(*task.Request) {})
	if got := sys.QueueLens(); len(got) != 3 {
		t.Fatalf("QueueLens = %v", got)
	}
	if sys.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestSplitmix64Distribution(t *testing.T) {
	counts := make([]int, 8)
	for i := uint64(0); i < 80_000; i++ {
		counts[splitmix64(i)%8]++
	}
	for b, c := range counts {
		if c < 9_000 || c > 11_000 {
			t.Fatalf("bucket %d count %d, want ≈10000", b, c)
		}
	}
}
