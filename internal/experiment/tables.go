package experiment

import (
	"context"
	"time"

	"mindgap/internal/params"
	"mindgap/internal/runner"
)

// TimerCostRow is one row of the §3.4.4 timer-cost table (T1).
type TimerCostRow struct {
	Operation    string
	LinuxCycles  float64
	DirectCycles float64
	LinuxTime    time.Duration
	DirectTime   time.Duration
	Reduction    float64 // fractional cost reduction, e.g. 0.93
}

// TimerCosts regenerates the §3.4.4 numbers: arming the timer drops from
// 610 to 40 cycles (93%), receiving the interrupt from 4193 to 1272 (70%).
func TimerCosts(p params.Params) []TimerCostRow {
	clk := p.HostClock
	rows := []TimerCostRow{
		{
			Operation:    "set timer",
			LinuxCycles:  params.LinuxTimer.ArmCycles,
			DirectCycles: params.DirectAPIC.ArmCycles,
		},
		{
			Operation:    "receive timer interrupt",
			LinuxCycles:  params.LinuxTimer.FireCycles,
			DirectCycles: params.DirectAPIC.FireCycles,
		},
	}
	for i := range rows {
		r := &rows[i]
		r.LinuxTime = clk.CyclesToDuration(r.LinuxCycles)
		r.DirectTime = clk.CyclesToDuration(r.DirectCycles)
		r.Reduction = 1 - r.DirectCycles/r.LinuxCycles
	}
	return rows
}

// presetPair runs a two-series preset — the shape of the T2/T3
// experiments, which compare one configuration against another — and
// returns the two measured points. Both run concurrently under the
// sweep runner.
func presetPair(ctx context.Context, rn *runner.Runner, id string, q Quality) ([]Result, error) {
	spec, err := PresetFigureSpec(mustPreset(id), q)
	if err != nil {
		return nil, err
	}
	res, err := runner.Run(ctx, rn, spec.Sweep)
	var out []Result
	for _, sr := range res {
		if len(sr.Results) == 0 {
			break // cancelled mid-sweep: keep the completed prefix
		}
		out = append(out, sr.Results[0])
	}
	return out, err
}

// IPCOverheadResult is the T2 experiment: the extra tail latency vanilla
// Shinjuku's inter-thread communication adds to minimal-work requests
// compared to single-thread run-to-completion (§2.2 item 4: ≈2 µs).
type IPCOverheadResult struct {
	ShinjukuP99 time.Duration
	RSSP99      time.Duration
	Overhead    time.Duration
}

// IPCOverheadWith measures T2 (the table-ipc preset) on rn. Both systems
// run far from saturation with near-zero application work so the path
// cost dominates.
func IPCOverheadWith(ctx context.Context, rn *runner.Runner, q Quality) (IPCOverheadResult, error) {
	res, err := presetPair(ctx, rn, "table-ipc", q)
	if len(res) < 2 {
		return IPCOverheadResult{}, err
	}
	return IPCOverheadResult{
		ShinjukuP99: res[0].P99,
		RSSP99:      res[1].P99,
		Overhead:    res[0].P99 - res[1].P99,
	}, err
}

// IPCOverhead measures T2 on the default parallel runner.
func IPCOverhead(q Quality) IPCOverheadResult {
	r, _ := IPCOverheadWith(context.Background(), nil, q)
	return r
}

// WorkerWaitResult is the T3 experiment: at their respective saturation
// points, Shinjuku-Offload workers running the 1 µs workload (Figure 6)
// wait for work far more than those running the 100 µs workload (Figure 5)
// — the paper measures 110% more waiting.
type WorkerWaitResult struct {
	IdleAt100us   float64
	IdleAt1us     float64
	ExtraWaitFrac float64 // (IdleAt1us - IdleAt100us) / IdleAt100us
}

// WorkerWaitWith measures T3 (the table-wait preset) on rn: the Figure 5
// and Figure 6 offload configurations, each at its knee (just below
// saturation).
func WorkerWaitWith(ctx context.Context, rn *runner.Runner, q Quality) (WorkerWaitResult, error) {
	res, err := presetPair(ctx, rn, "table-wait", q)
	if len(res) < 2 {
		return WorkerWaitResult{}, err
	}
	r := WorkerWaitResult{
		IdleAt100us: res[0].WorkerIdleFraction,
		IdleAt1us:   res[1].WorkerIdleFraction,
	}
	if r.IdleAt100us > 0 {
		r.ExtraWaitFrac = (r.IdleAt1us - r.IdleAt100us) / r.IdleAt100us
	}
	return r, err
}

// WorkerWait measures T3 on the default parallel runner.
func WorkerWait(q Quality) WorkerWaitResult {
	r, _ := WorkerWaitWith(context.Background(), nil, q)
	return r
}

// CommLatencyResult is the T4 check: the modelled one-way NIC↔host message
// latency against the paper's measured 2.56 µs.
type CommLatencyResult struct {
	Modelled time.Duration
	Paper    time.Duration
}

// CommLatency reports T4.
func CommLatency(p params.Params) CommLatencyResult {
	return CommLatencyResult{Modelled: p.NicHostOneWay, Paper: 2560 * time.Nanosecond}
}
