// Negative fixture for the generation-guard escape hatch: a hazardous
// callback may re-read identity fields under an if whose condition
// compares the request's Gen, because a recycled request fails the
// compare before the read executes.
package core

import "mindgap/internal/task"

// notifyGuarded races respond (scheduled together in guardedBuild) but
// every identity read is dominated by a Gen compare.
func notifyGuarded(recv, obj any, arg uint64) {
	w := recv.(*worker)
	req := obj.(*task.Request)
	if uint64(req.Gen) == arg {
		_ = req.ID // guarded: no diagnostic
	}
	w.credits++
}

func guardedBuild(recv, obj any, _ uint64) {
	w := recv.(*worker)
	req := obj.(*task.Request)
	w.s.eng.AfterE(1, respond, w.s, req, 0)
	w.s.eng.AfterE(2, notifyGuarded, w, req, uint64(req.Gen))
}
