package analytic

import (
	"math"
	"testing"
	"time"

	"mindgap/internal/dist"
	"mindgap/internal/loadgen"
	"mindgap/internal/queue"
	"mindgap/internal/sim"
	"mindgap/internal/stats"
	"mindgap/internal/task"
)

func TestErlangCKnownValues(t *testing.T) {
	// c=1: Erlang C reduces to rho.
	for _, rho := range []float64{0.1, 0.5, 0.9} {
		if got := ErlangC(1, rho); math.Abs(got-rho) > 1e-12 {
			t.Fatalf("ErlangC(1,%v) = %v, want %v", rho, got, rho)
		}
	}
	// Textbook value: c=2, rho=0.75 (a=1.5) ⇒ P(wait) = a²/2 /(1-ρ) over
	// (1 + a + that) = 1.125/0.25=4.5 → 4.5/(1+1.5+4.5) = 0.642857...
	if got, want := ErlangC(2, 0.75), 0.6428571428571429; math.Abs(got-want) > 1e-9 {
		t.Fatalf("ErlangC(2,0.75) = %v, want %v", got, want)
	}
	// More servers at equal utilization ⇒ less waiting.
	if ErlangC(8, 0.7) >= ErlangC(2, 0.7) {
		t.Fatal("Erlang C not decreasing in server count")
	}
}

// TestMM1MMcConsistency pins that the M/M/c forms reduce to the M/M/1
// forms at c=1: mean response, wait quantiles, and queue length must all
// agree with the single-server closed forms.
func TestMM1MMcConsistency(t *testing.T) {
	meanSvc := 10 * time.Microsecond
	for _, rho := range []float64{0.1, 0.5, 0.7, 0.9} {
		if got, want := MMcMeanResponse(1, rho, meanSvc), MM1MeanResponse(rho, meanSvc); got != want {
			t.Errorf("rho=%v: MMcMeanResponse(1) = %v, MM1MeanResponse = %v", rho, got, want)
		}
		// M/M/1 queue length: Lq = rho²/(1−rho).
		if got, want := MMcMeanQueueLen(1, rho), rho*rho/(1-rho); math.Abs(got-want) > 1e-12 {
			t.Errorf("rho=%v: MMcMeanQueueLen(1) = %v, want %v", rho, got, want)
		}
		// M/M/1 wait quantile: P(Wq > t) = rho·e^(−(µ−λ)t), so for
		// q above 1−rho the M/M/c quantile must match the shifted
		// response-quantile identity ln(rho/(1−q))·meanSvc/(1−rho).
		q := 0.99
		want := time.Duration(math.Log(rho/(1-q)) / (1 - rho) * float64(meanSvc))
		if rho <= 1-q {
			want = 0
		}
		got := MMcWaitQuantile(1, rho, meanSvc, q)
		if diff := math.Abs(float64(got - want)); diff > 1 {
			t.Errorf("rho=%v: MMcWaitQuantile(1) = %v, want %v", rho, got, want)
		}
	}
}

// TestMMcWaitQuantileAtoms pins the zero atom: when fewer than 1−q of
// arrivals wait at all, the q-quantile of Wq is exactly zero.
func TestMMcWaitQuantileAtoms(t *testing.T) {
	// M/M/8 at rho=0.3: Pw ≈ 0.0129 > 0.01, so p99 is tiny but nonzero
	// while the p90 sits on the atom.
	if got := MMcWaitQuantile(8, 0.3, 10*time.Microsecond, 0.90); got != 0 {
		t.Errorf("p90 with Pw≈1.3%% = %v, want 0", got)
	}
	if got := MMcWaitQuantile(8, 0.3, 10*time.Microsecond, 0.999); got <= 0 {
		t.Errorf("p99.9 with Pw≈1.3%% = %v, want > 0", got)
	}
	// Quantiles are monotone in q once off the atom.
	if MMcWaitQuantile(4, 0.8, 10*time.Microsecond, 0.999) <= MMcWaitQuantile(4, 0.8, 10*time.Microsecond, 0.99) {
		t.Error("wait quantile not increasing in q")
	}
}

func TestErlangCValidation(t *testing.T) {
	for _, f := range []func(){
		func() { ErlangC(0, 0.5) },
		func() { ErlangC(2, 1.0) },
		func() { ErlangC(2, -0.1) },
		func() { MM1MeanResponse(1.0, time.Microsecond) },
		func() { MG1MeanWait(1.0, 1, time.Microsecond) },
		func() { MM1ResponseQuantile(0.5, time.Microsecond, 0) },
		func() { MMcWaitQuantile(2, 0.5, time.Microsecond, 1.0) },
		func() { MMcMeanQueueLen(2, 1.0) },
		func() { MMcMeanResponse(2, -0.5, time.Microsecond) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid input did not panic")
				}
			}()
			f()
		}()
	}
}

// idealQueue is a zero-overhead M/M/c station built directly on the
// simulator: the reference configuration for validating the engine.
type idealQueue struct {
	eng     *sim.Engine
	busy    int
	servers int
	q       queue.FIFO[*task.Request]
	done    func(*task.Request)
}

func (s *idealQueue) inject(r *task.Request) {
	if s.busy < s.servers {
		s.serve(r)
		return
	}
	s.q.Push(r)
}

func (s *idealQueue) serve(r *task.Request) {
	s.busy++
	s.eng.After(r.Service, func() {
		s.busy--
		s.done(r)
		if next, ok := s.q.Pop(); ok {
			s.serve(next)
		}
	})
}

// runMMc simulates an M/M/c queue and returns the empirical mean response
// time.
func runMMc(t *testing.T, c int, rho float64, meanSvc time.Duration, n int) time.Duration {
	t.Helper()
	eng := sim.New()
	var lat stats.Histogram
	completed := 0
	st := &idealQueue{eng: eng, servers: c}
	st.done = func(r *task.Request) {
		completed++
		if completed > n/5 { // discard warmup fifth
			lat.Record(r.Latency(eng.Now()))
		}
		if completed >= n {
			eng.Halt()
		}
	}
	lambda := rho * float64(c) / meanSvc.Seconds()
	loadgen.New(eng, loadgen.Config{
		RPS:     lambda,
		Service: dist.Exponential{M: meanSvc},
		Seed:    1234,
	}, st.inject).Start()
	eng.Run()
	if completed < n {
		t.Fatalf("only %d/%d completions", completed, n)
	}
	return lat.Mean()
}

// TestSimulatorMatchesMMc is the engine's ground-truth check: an idealized
// station must reproduce Erlang-C mean response times.
func TestSimulatorMatchesMMc(t *testing.T) {
	cases := []struct {
		c   int
		rho float64
	}{
		{1, 0.5},
		{1, 0.8},
		{4, 0.7},
		{16, 0.9},
	}
	meanSvc := 10 * time.Microsecond
	for _, tc := range cases {
		want := MMcMeanWait(tc.c, tc.rho, meanSvc) + meanSvc
		got := runMMc(t, tc.c, tc.rho, meanSvc, 120_000)
		relErr := math.Abs(float64(got)-float64(want)) / float64(want)
		if relErr > 0.06 {
			t.Errorf("M/M/%d ρ=%v: sim mean %v vs theory %v (err %.1f%%)",
				tc.c, tc.rho, got, want, relErr*100)
		}
	}
}

// TestSimulatorMatchesMM1Quantile checks the tail, not just the mean: the
// p99 of M/M/1 response time is analytic.
func TestSimulatorMatchesMM1Quantile(t *testing.T) {
	meanSvc := 10 * time.Microsecond
	rho := 0.7
	eng := sim.New()
	var lat stats.Histogram
	completed := 0
	const n = 200_000
	st := &idealQueue{eng: eng, servers: 1}
	st.done = func(r *task.Request) {
		completed++
		if completed > n/5 {
			lat.Record(r.Latency(eng.Now()))
		}
		if completed >= n {
			eng.Halt()
		}
	}
	loadgen.New(eng, loadgen.Config{
		RPS:     rho / meanSvc.Seconds(),
		Service: dist.Exponential{M: meanSvc},
		Seed:    77,
	}, st.inject).Start()
	eng.Run()
	want := MM1ResponseQuantile(rho, meanSvc, 0.99)
	got := lat.P99()
	relErr := math.Abs(float64(got)-float64(want)) / float64(want)
	if relErr > 0.08 {
		t.Fatalf("M/M/1 p99: sim %v vs theory %v (err %.1f%%)", got, want, relErr*100)
	}
}

// TestSimulatorMatchesMG1 checks the Pollaczek–Khinchine mean wait with a
// high-variance (bimodal) service distribution — the regime the paper's
// workloads live in.
func TestSimulatorMatchesMG1(t *testing.T) {
	// Figure 2's bimodal: mean 5.475µs.
	b := dist.Bimodal{P1: 0.995, D1: 5 * time.Microsecond, D2: 100 * time.Microsecond}
	mean := float64(b.Mean())
	// E[s²] and cs².
	es2 := 0.995*math.Pow(5000, 2) + 0.005*math.Pow(100000, 2)
	cs2 := es2/(mean*mean) - 1

	rho := 0.6
	eng := sim.New()
	var lat stats.Histogram
	completed := 0
	const n = 300_000
	st := &idealQueue{eng: eng, servers: 1}
	st.done = func(r *task.Request) {
		completed++
		if completed > n/5 {
			lat.Record(r.Latency(eng.Now()))
		}
		if completed >= n {
			eng.Halt()
		}
	}
	loadgen.New(eng, loadgen.Config{
		RPS:     rho / (time.Duration(mean)).Seconds(),
		Service: b,
		Seed:    31,
	}, st.inject).Start()
	eng.Run()
	want := MG1MeanWait(rho, cs2, b.Mean()) + b.Mean()
	got := lat.Mean()
	relErr := math.Abs(float64(got)-float64(want)) / float64(want)
	if relErr > 0.08 {
		t.Fatalf("M/G/1 mean: sim %v vs P-K %v (err %.1f%%)", got, want, relErr*100)
	}
}
