// Struct-field timer fixtures: an armed field needs a Stop through the
// same (type, field) somewhere in the package, not necessarily in the
// arming function.
package core

import "mindgap/internal/sim"

type leaky struct{ tm *sim.Timer }

func (l *leaky) arm(eng *sim.Engine) {
	l.tm = eng.AfterTimerE(0, cb, nil, nil, 0) // want `timer field leaky\.tm armed by AfterTimerE has no Stop anywhere in package mindgap/internal/core; a completion that outruns it leaks the armed event`
}

type careful struct{ tm sim.Timer }

func (c *careful) arm(eng *sim.Engine) {
	eng.ArmAfterE(&c.tm, 0, cb, nil, nil, 0)
}

func (c *careful) cancel() {
	c.tm.Stop()
}

func allowLeak(eng *sim.Engine) {
	//lint:allow timerstop fires exactly once at teardown; cancellation is impossible by construction
	t := eng.AfterTimerE(0, cb, nil, nil, 0)
	_ = t
}
