// Package stats provides the measurement machinery for experiments:
// a log-linear latency histogram with bounded relative error (the same idea
// as HdrHistogram), latency recorders, throughput accounting, and the
// summary rows printed by the figure harness.
package stats

import (
	"fmt"
	"math"
	"math/bits"
	"time"
)

// subBucketBits controls histogram precision. Values below 2^subBucketBits
// ns are recorded exactly; larger values fall into log-linear buckets with a
// worst-case relative error of 2^-(subBucketBits-1) (≈1.6% at 7 bits), which
// is far below the run-to-run noise of a queueing simulation.
const subBucketBits = 7

const subBuckets = 1 << subBucketBits

// halfRow is the number of buckets per power-of-two row above the exact
// range: each row covers [2^(e+subBucketBits-1), 2^(e+subBucketBits)) with
// subBuckets/2 linear buckets.
const halfRow = subBuckets / 2

// maxRows bounds recordable values at roughly subBuckets<<maxRows ns
// (≈2.4 hours with 36 rows), far beyond any simulated latency.
const maxRows = 36

const numBuckets = subBuckets + maxRows*halfRow

// Histogram counts durations with bounded relative error. The zero value is
// ready to use. Histogram is not safe for concurrent use; the simulator is
// single-threaded and live mode shards per goroutine then merges.
type Histogram struct {
	counts [numBuckets]int64
	total  int64
	sum    float64
	min    int64
	max    int64
}

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	if v < subBuckets {
		return int(v)
	}
	// exp ≥ 1; shifting v right by exp lands in [halfRow, subBuckets).
	exp := bits.Len64(uint64(v)) - subBucketBits
	sub := int(v >> uint(exp)) // in [halfRow, subBuckets)
	idx := subBuckets + (exp-1)*halfRow + (sub - halfRow)
	if idx >= numBuckets {
		idx = numBuckets - 1
	}
	return idx
}

// bucketUpper returns the largest value mapping into bucket idx, so
// percentile queries report a conservative (upper-bound) latency.
func bucketUpper(idx int) int64 {
	if idx < subBuckets {
		return int64(idx)
	}
	off := idx - subBuckets
	exp := off/halfRow + 1
	sub := int64(off%halfRow + halfRow)
	return (sub+1)<<uint(exp) - 1
}

// Record adds one observation. Negative durations count as zero; absurdly
// large values are clamped to the top bucket.
func (h *Histogram) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)]++
	h.total++
	h.sum += float64(v)
	if h.total == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.total }

// Mean returns the mean of recorded observations (0 if empty).
func (h *Histogram) Mean() time.Duration {
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.sum / float64(h.total))
}

// Min returns the smallest recorded observation (0 if empty).
func (h *Histogram) Min() time.Duration { return time.Duration(h.min) }

// Max returns the largest recorded observation (0 if empty).
func (h *Histogram) Max() time.Duration { return time.Duration(h.max) }

// Quantile returns an upper bound for the q-quantile (q in [0,1]) with the
// histogram's relative error. Quantile(1) returns the exact maximum.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return time.Duration(h.min)
	}
	if q >= 1 {
		return time.Duration(h.max)
	}
	rank := int64(math.Ceil(q * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := range h.counts {
		seen += h.counts[i]
		if seen >= rank {
			if i == numBuckets-1 {
				// Overflow bucket: its nominal upper bound is meaningless.
				return time.Duration(h.max)
			}
			u := bucketUpper(i)
			if u > h.max {
				u = h.max
			}
			return time.Duration(u)
		}
	}
	return time.Duration(h.max)
}

// P50, P99 and P999 are the quantiles the paper plots ("we refer to the 99th
// percentile latency as the tail latency", §4).
func (h *Histogram) P50() time.Duration  { return h.Quantile(0.50) }
func (h *Histogram) P99() time.Duration  { return h.Quantile(0.99) }
func (h *Histogram) P999() time.Duration { return h.Quantile(0.999) }

// Merge adds all of o's observations into h.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.total == 0 {
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if h.total == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.total += o.total
	h.sum += o.sum
}

// Reset forgets all observations.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total, h.sum, h.min, h.max = 0, 0, 0, 0
}

// String summarizes the distribution for logs.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		h.total, h.Mean(), h.P50(), h.P99(), h.Max())
}
