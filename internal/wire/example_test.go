package wire_test

import (
	"fmt"

	"mindgap/internal/wire"
)

// Building and parsing a full request frame, the way the live dispatcher
// and the NIC model's integration tests do.
func ExampleEncodeFrame() {
	out := wire.Frame{
		Eth: wire.Ethernet{
			Dst: wire.MAC{0x02, 0x6d, 0x67, 0, 0, 1},
			Src: wire.MAC{0x02, 0x6d, 0x67, 0, 0, 0},
		},
		IP:  wire.IPv4{Src: [4]byte{10, 0, 0, 1}, Dst: [4]byte{10, 0, 0, 2}},
		UDP: wire.UDP{SrcPort: 9000, DstPort: 9001},
		App: wire.Header{
			Type:      wire.MsgRequest,
			ReqID:     42,
			ServiceNS: 5_000, // 5µs of fake work (§4.1)
		},
		Payload: []byte("key=alpha"),
	}
	buf := make([]byte, 256)
	n, err := wire.EncodeFrame(buf, &out)
	if err != nil {
		panic(err)
	}

	var in wire.Frame
	if err := wire.DecodeFrame(buf[:n], &in); err != nil {
		panic(err)
	}
	fmt.Printf("%s req=%d service=%dns payload=%q\n",
		in.App.Type, in.App.ReqID, in.App.ServiceNS, in.Payload)
	fmt.Printf("dst=%s bytes=%d\n", in.Eth.Dst, n)
	// Output:
	// request req=42 service=5000ns payload="key=alpha"
	// dst=02:6d:67:00:00:01 bytes=83
}
