// Package mindgap reproduces "Mind the Gap: A Case for Informed Request
// Scheduling at the NIC" (Humphries, Kaffes, Mazières, Kozyrakis —
// HotNets '19) as a pure-Go library: the Shinjuku-Offload scheduler, every
// baseline system the paper discusses, the hardware models they run on,
// and the harness that regenerates every figure and in-text measurement of
// the paper's evaluation.
//
// The package layout follows the paper's structure:
//
//   - internal/core — the contribution: the informed NIC-side scheduler
//     (centralized queue, credits, core selection, load feedback) and its
//     assembly onto the simulated SmartNIC.
//   - internal/systems/... — vanilla Shinjuku, RSS/IX, ZygOS, Flow
//     Director, RPCValet, and the §5 ideal-NIC ablations.
//   - internal/sim, fabric, nic/cores models, wire, stats — the substrate.
//   - internal/live + cmd/{dispatcherd,workerd,loadgen} — a real-socket
//     implementation of the same scheduler over UDP.
//   - internal/experiment — figure/table harness (see EXPERIMENTS.md).
//
// This root package is a thin façade over internal/experiment for
// programmatic use; the cmd/ binaries expose the same functionality on the
// command line.
package mindgap

import (
	"fmt"
	"sort"

	"mindgap/internal/experiment"
)

// Quality trades run time for statistical confidence in figure runs.
type Quality = experiment.Quality

// Figure is a reproduced paper figure (labelled series of measured points).
type Figure = experiment.Figure

// Result is one measured load point.
type Result = experiment.Result

// Preset qualities: Quick for CI-sized runs, Full for EXPERIMENTS.md runs.
var (
	Quick = experiment.Quick
	Full  = experiment.Full
)

// figureBuilders maps figure IDs to their harness constructors.
var figureBuilders = map[string]func(Quality) Figure{
	"figure2":          experiment.Figure2,
	"figure3":          experiment.Figure3,
	"figure3-burst":    experiment.Figure3Burst,
	"figure4":          experiment.Figure4,
	"figure5":          experiment.Figure5,
	"figure6":          experiment.Figure6,
	"figure6-cxl":      experiment.Figure6CXL,
	"figure6-linerate": experiment.Figure6LineRate,
	"baselines":        experiment.BaselineComparison,
}

// Figures lists the reproducible figure IDs in stable order.
func Figures() []string {
	out := make([]string, 0, len(figureBuilders))
	for id := range figureBuilders {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// RunFigure regenerates one paper figure by ID.
func RunFigure(id string, q Quality) (Figure, error) {
	build, ok := figureBuilders[id]
	if !ok {
		return Figure{}, fmt.Errorf("mindgap: unknown figure %q (have %v)", id, Figures())
	}
	return build(q), nil
}
