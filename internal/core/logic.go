// Package core implements the paper's primary contribution: informed,
// centralized, preemptive request scheduling at the NIC.
//
// The package has two halves:
//
//   - Logic is the pure scheduling state machine — the centralized FIFO task
//     queue, per-worker outstanding-request credits (the queuing
//     optimization of §3.4.5), worker selection, and the host load-feedback
//     interface (§3.1/§3.2 requirement 2). It has no dependency on the
//     simulator, so the live UDP implementation (internal/live) runs the
//     exact same scheduler the simulation evaluates.
//
//   - Offload assembles Logic onto the simulated Stingray SmartNIC: the
//     networking subsystem and the three-core dispatcher pipeline (§3.4.1)
//     on ARM stage servers, packet-based dispatcher↔worker communication
//     (§3.4.2), self-armed APIC-timer preemption on workers (§3.4.4), and
//     request stashing in worker RX rings (§3.4.5).
package core

import (
	"fmt"
	"time"

	"mindgap/internal/queue"
	"mindgap/internal/sim"
	"mindgap/internal/task"
	"mindgap/internal/telemetry"
)

// Policy selects how the scheduler picks a worker for the request at the
// head of the central queue.
type Policy int

const (
	// LeastOutstanding picks the worker with the fewest outstanding
	// requests (ties broken round-robin). With per-worker credit k=1 this
	// degenerates to Shinjuku's "assign to an idle worker".
	LeastOutstanding Policy = iota
	// RoundRobin cycles through workers with available credit regardless of
	// how loaded they are; it isolates the value of informed selection.
	RoundRobin
	// InformedLeastLoaded picks the worker with the smallest reported
	// instantaneous load (host→NIC feedback, §3.1), falling back to
	// outstanding counts for workers that have not reported.
	InformedLeastLoaded
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case LeastOutstanding:
		return "least-outstanding"
	case RoundRobin:
		return "round-robin"
	case InformedLeastLoaded:
		return "informed-least-loaded"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// Assignment is one scheduling decision: send req to worker.
type Assignment struct {
	Worker int
	Req    *task.Request
}

// Logic is the centralized scheduler state machine. It is deliberately
// synchronous and allocation-light: each input event returns the
// assignments it triggers, and the caller provides the transport (ARM
// stages + packets in simulation, UDP sockets in live mode).
//
// Invariants (checked by tests):
//   - 0 <= outstanding[w] <= k for every worker.
//   - A request is either in the central queue or covered by exactly one
//     credit; it is never both, never neither, until completed.
//   - The central queue drains in FIFO order.
type Logic struct {
	k      int
	policy Policy

	outstanding []int
	load        []int64
	hasLoad     []bool
	loadAt      []sim.Time
	rrNext      int
	affinity    bool

	q queue.FIFO[*task.Request]

	assigned    uint64
	completed   uint64
	requeued    uint64
	scanSteps   uint64
	loadReports uint64
}

// NewLogic creates scheduler state for the given worker count and
// per-worker outstanding-credit limit k (the queuing optimization; k=1
// means a worker never has a request stashed while executing another).
func NewLogic(workers, k int, policy Policy) *Logic {
	if workers <= 0 {
		panic("core: need at least one worker")
	}
	if k <= 0 {
		panic("core: outstanding credit limit must be positive")
	}
	return &Logic{
		k:           k,
		policy:      policy,
		outstanding: make([]int, workers),
		load:        make([]int64, workers),
		hasLoad:     make([]bool, workers),
		loadAt:      make([]sim.Time, workers),
	}
}

// EnableAffinity makes the scheduler prefer resuming a preempted request
// on the worker that last ran it when that worker has spare credit — §3.1's
// "good scheduling affinity": the request's context is still warm in that
// core's caches. Fresh requests are unaffected.
func (l *Logic) EnableAffinity() { l.affinity = true }

// Workers returns the number of workers.
func (l *Logic) Workers() int { return len(l.outstanding) }

// CreditLimit returns k, the per-worker outstanding-request limit.
func (l *Logic) CreditLimit() int { return l.k }

// QueueLen returns the central queue depth.
func (l *Logic) QueueLen() int { return l.q.Len() }

// Outstanding returns worker w's outstanding request count.
func (l *Logic) Outstanding(w int) int { return l.outstanding[w] }

// Assigned returns the total number of assignments emitted.
func (l *Logic) Assigned() uint64 { return l.assigned }

// Enqueue admits a new request at the tail of the central queue and returns
// any assignment it enables (at most one).
func (l *Logic) Enqueue(now sim.Time, req *task.Request) []Assignment {
	return l.EnqueueTo(nil, now, req)
}

// EnqueueTo is Enqueue appending to a caller-provided slice, so a hot
// caller can reuse one scratch buffer across events instead of allocating
// a fresh assignment slice per input.
func (l *Logic) EnqueueTo(out []Assignment, now sim.Time, req *task.Request) []Assignment {
	req.Enqueued = now
	l.q.Push(req)
	return l.drain(out)
}

// Complete processes a FINISH notification from worker w: the credit is
// released, possibly dispatching the queue head (at most one assignment).
func (l *Logic) Complete(w int) []Assignment {
	return l.CompleteTo(nil, w)
}

// CompleteTo is Complete appending to a caller-provided slice.
func (l *Logic) CompleteTo(out []Assignment, w int) []Assignment {
	l.release(w)
	l.completed++
	return l.drain(out)
}

// Preempted processes a PREEMPTED notification: worker w's credit is
// released and req re-enters the tail of the central queue (§3.4.1 — "once
// the request reaches the front of the queue again, it can be assigned to
// any worker").
func (l *Logic) Preempted(now sim.Time, w int, req *task.Request) []Assignment {
	return l.PreemptedTo(nil, now, w, req)
}

// PreemptedTo is Preempted appending to a caller-provided slice.
func (l *Logic) PreemptedTo(out []Assignment, now sim.Time, w int, req *task.Request) []Assignment {
	l.release(w)
	l.requeued++
	req.Enqueued = now
	l.q.Push(req)
	return l.drain(out)
}

// ReportLoad records host load feedback for worker w — the instantaneous
// load information an informed NIC folds into its decisions (§3.1). The
// unit is caller-defined (the simulation reports remaining work in ns).
func (l *Logic) ReportLoad(w int, load int64) {
	l.load[w] = load
	l.hasLoad[w] = true
	l.loadReports++
}

// ReportLoadAt is ReportLoad plus a receipt timestamp, enabling staleness
// accounting: by the time a report influences a decision it is already
// one NIC↔host hop old, and the gap only grows between reports.
func (l *Logic) ReportLoadAt(now sim.Time, w int, load int64) {
	l.ReportLoad(w, load)
	l.loadAt[w] = now
}

// LoadAge returns how stale worker w's last load report is at instant
// now; ok is false if w never reported (or reported without a timestamp).
func (l *Logic) LoadAge(now sim.Time, w int) (age time.Duration, ok bool) {
	if !l.hasLoad[w] || l.loadAt[w] == 0 {
		return 0, false
	}
	return now.Sub(l.loadAt[w]), true
}

// EstimateFor returns the backlog estimate the scheduler would act on for
// worker w at instant now, plus its staleness. ok is false when the
// scheduler holds no numeric belief about w — an uninformed policy, or an
// informed one before w's first load report — in which case a decision
// audit should classify the dispatch as uninformed.
func (l *Logic) EstimateFor(now sim.Time, w int) (est int64, age time.Duration, ok bool) {
	if l.policy != InformedLeastLoaded || !l.hasLoad[w] {
		return 0, 0, false
	}
	age, _ = l.LoadAge(now, w)
	return l.load[w], age, true
}

// OldestLoadAge returns the worst staleness across workers that have
// reported — the scheduler's view of its own information gap. It returns
// 0 when no worker has reported.
func (l *Logic) OldestLoadAge(now sim.Time) time.Duration {
	var worst time.Duration
	for w := range l.loadAt {
		if age, ok := l.LoadAge(now, w); ok && age > worst {
			worst = age
		}
	}
	return worst
}

// LoadReports returns the total number of load reports received.
func (l *Logic) LoadReports() uint64 { return l.loadReports }

// Completed returns the number of FINISH notifications processed.
func (l *Logic) Completed() uint64 { return l.completed }

// Requeued returns the number of preempted requests re-admitted to the
// central queue.
func (l *Logic) Requeued() uint64 { return l.requeued }

// ScanSteps returns the cumulative number of per-worker probes the
// selection policy performed — the queue-scan cost that grows with the
// worker count and bounds an ARM dispatcher core's decision rate (§5.1).
func (l *Logic) ScanSteps() uint64 { return l.scanSteps }

// RegisterTelemetry exposes the scheduler's decision counters and queue
// probes on reg under the given component label. now supplies the current
// instant for the load-staleness gauge (nil disables it).
func (l *Logic) RegisterTelemetry(reg *telemetry.Registry, component string, now func() sim.Time) {
	reg.GaugeFunc(component, "queue_depth", func() float64 { return float64(l.QueueLen()) })
	reg.GaugeFunc(component, "queue_high_water", func() float64 { return float64(l.q.HighWater()) })
	reg.GaugeFunc(component, "assigned", func() float64 { return float64(l.assigned) })
	reg.GaugeFunc(component, "completed", func() float64 { return float64(l.completed) })
	reg.GaugeFunc(component, "requeued", func() float64 { return float64(l.requeued) })
	reg.GaugeFunc(component, "scan_steps", func() float64 { return float64(l.scanSteps) })
	reg.GaugeFunc(component, "load_reports", func() float64 { return float64(l.loadReports) })
	if now != nil {
		reg.GaugeFunc(component, "load_staleness_ns", func() float64 {
			return float64(l.OldestLoadAge(now()))
		})
	}
}

func (l *Logic) release(w int) {
	if l.outstanding[w] <= 0 {
		panic(fmt.Sprintf("core: credit underflow on worker %d", w))
	}
	l.outstanding[w]--
}

// drain dispatches from the queue head while a worker has spare credit.
func (l *Logic) drain(out []Assignment) []Assignment {
	for l.q.Len() > 0 {
		head, _ := l.q.Peek()
		w := -1
		if l.affinity && head.Preemptions > 0 &&
			head.LastWorker >= 0 && head.LastWorker < len(l.outstanding) &&
			l.outstanding[head.LastWorker] < l.k {
			w = head.LastWorker
		} else {
			w = l.pick()
		}
		if w < 0 {
			break
		}
		req, _ := l.q.Pop()
		l.outstanding[w]++
		l.assigned++
		out = append(out, Assignment{Worker: w, Req: req})
	}
	return out
}

// pick returns the chosen worker, or -1 if no worker has spare credit.
func (l *Logic) pick() int {
	n := len(l.outstanding)
	switch l.policy {
	case RoundRobin:
		for i := 0; i < n; i++ {
			l.scanSteps++
			w := (l.rrNext + i) % n
			if l.outstanding[w] < l.k {
				l.rrNext = (w + 1) % n
				return w
			}
		}
		return -1
	case InformedLeastLoaded:
		best, bestLoad := -1, int64(0)
		for i := 0; i < n; i++ {
			l.scanSteps++
			w := (l.rrNext + i) % n
			if l.outstanding[w] >= l.k {
				continue
			}
			ld := l.load[w]
			if !l.hasLoad[w] {
				// No feedback yet: approximate load by outstanding count.
				ld = int64(l.outstanding[w]) * 1_000_000
			}
			if best < 0 || ld < bestLoad {
				best, bestLoad = w, ld
			}
		}
		if best >= 0 {
			l.rrNext = (best + 1) % n
		}
		return best
	default: // LeastOutstanding
		best, bestOut := -1, 0
		for i := 0; i < n; i++ {
			l.scanSteps++
			w := (l.rrNext + i) % n
			if l.outstanding[w] >= l.k {
				continue
			}
			if best < 0 || l.outstanding[w] < bestOut {
				best, bestOut = w, l.outstanding[w]
				if bestOut == 0 {
					break // cannot do better than an idle worker
				}
			}
		}
		if best >= 0 {
			l.rrNext = (best + 1) % n
		}
		return best
	}
}
