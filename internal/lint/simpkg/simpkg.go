// Package simpkg decides which packages are "simulation packages" for
// the purposes of mindgap-lint.
//
// The reproduction's headline guarantee is that experiment output is a
// deterministic function of (config, seed): byte-identical at -j1 and
// -jN, independent of wall clock, scheduler, and iteration order. That
// guarantee only has to hold for the packages that compute simulated
// results. Live-serving code (internal/live), command-line frontends
// (cmd/...) and examples are free to read the wall clock.
package simpkg

import "strings"

// simSegments are the final path segments of packages in which the
// determinism rules (simclock, floateq) apply. The list mirrors the
// simulation core enumerated in ISSUE 3 — everything that runs between
// parsing a config and emitting a latency number — plus the segments
// ISSUE 8 found missing: core (the Offload dispatcher), the four
// systems/* models (ISSUE 9 adds flowrule), and the telemetry/trace
// exporters whose output feeds golden files.
var simSegments = map[string]bool{
	"sim":        true,
	"attr":       true,
	"core":       true,
	"queue":      true,
	"nicmodel":   true,
	"cores":      true,
	"fabric":     true,
	"faults":     true,
	"task":       true,
	"dist":       true,
	"loadgen":    true,
	"experiment": true,
	"runner":     true,
	"stats":      true,
	"scenario":   true,
	"scenarios":  true,
	"shinjuku":   true,
	"rtc":        true,
	"rpcvalet":   true,
	"erss":       true,
	"idealnic":   true,
	"flowrule":   true,
	"telemetry":  true,
	"trace":      true,
	// ISSUE 10: the hypothesis layer renders golden FINDINGS and the
	// analytic package feeds its twin checks — both must stay
	// deterministic.
	"hypothesis": true,
	"analytic":   true,
	"hypotheses": true,
}

// exemptPrefixes are path fragments that are never simulation packages
// even if their last segment collides with simSegments (e.g. a
// hypothetical cmd/runner).
var exemptPrefixes = []string{
	"mindgap/cmd/",
	"mindgap/internal/live",
	"mindgap/examples/",
}

// IsSimPackage reports whether the import path names a package whose
// code must be clock- and scheduler-independent.
func IsSimPackage(path string) bool {
	for _, p := range exemptPrefixes {
		if strings.HasPrefix(path, p) {
			return false
		}
	}
	// Test binaries are loaded under paths like
	// "mindgap/internal/sim [mindgap/internal/sim.test]" by go vet;
	// strip the variant suffix so they classify like their package.
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i]
	}
	path = strings.TrimSuffix(path, ".test")
	last := path[strings.LastIndexByte(path, '/')+1:]
	return simSegments[last]
}
