// Command mindgap-bench regenerates every figure and in-text measurement of
// the paper's evaluation section (see DESIGN.md's experiment index) and
// prints the series to stdout, optionally as CSV.
//
// Usage:
//
//	mindgap-bench                    # every figure and table, full quality
//	mindgap-bench -fig 2             # one figure
//	mindgap-bench -table timer       # one table
//	mindgap-bench -quick             # reduced sample counts (CI-sized)
//	mindgap-bench -csv               # machine-readable output
//	mindgap-bench -plot              # ASCII charts of the tail curves
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mindgap/internal/experiment"
	"mindgap/internal/params"
)

func main() {
	var (
		fig   = flag.String("fig", "", "figure to run: 2, 3, 3burst, 4, 5, 6, 6cxl, 6linerate, baselines (empty = all)")
		table = flag.String("table", "", "table to run: timer, ipc, wait, latency, dispersion, policy (empty = all)")
		quick = flag.Bool("quick", false, "reduced sample counts")
		csv   = flag.Bool("csv", false, "CSV output for figures")
		plot  = flag.Bool("plot", false, "ASCII chart output for figures")
		only  = flag.Bool("figs-only", false, "skip tables")
	)
	flag.Parse()

	q := experiment.Full
	if *quick {
		q = experiment.Quick
	}

	figures := map[string]func(experiment.Quality) experiment.Figure{
		"2":         experiment.Figure2,
		"3":         experiment.Figure3,
		"3burst":    experiment.Figure3Burst,
		"4":         experiment.Figure4,
		"5":         experiment.Figure5,
		"6":         experiment.Figure6,
		"6cxl":      experiment.Figure6CXL,
		"6linerate": experiment.Figure6LineRate,
		"baselines": experiment.BaselineComparison,
	}
	order := []string{"2", "3", "3burst", "4", "5", "6", "6cxl", "6linerate", "baselines"}

	runFigure := func(id string) {
		build, ok := figures[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "mindgap-bench: unknown figure %q\n", id)
			os.Exit(2)
		}
		start := time.Now()
		f := build(q)
		switch {
		case *csv:
			if err := f.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "mindgap-bench: %v\n", err)
				os.Exit(1)
			}
		case *plot:
			f.Plot(os.Stdout, 72, 20)
			fmt.Println()
		default:
			f.Render(os.Stdout)
			fmt.Printf("   (wall time %v)\n\n", time.Since(start).Round(time.Millisecond))
		}
	}

	runTables := func(which string) {
		p := params.Default()
		if which == "" || which == "timer" {
			fmt.Println("== T1: §3.4.4 timer/interrupt costs (host clock 2.3 GHz)")
			fmt.Printf("%-26s %12s %12s %12s %12s %10s\n",
				"operation", "linux(cyc)", "direct(cyc)", "linux", "direct", "reduction")
			for _, r := range experiment.TimerCosts(p) {
				fmt.Printf("%-26s %12.0f %12.0f %12v %12v %9.0f%%\n",
					r.Operation, r.LinuxCycles, r.DirectCycles, r.LinuxTime, r.DirectTime, r.Reduction*100)
			}
			fmt.Println()
		}
		if which == "" || which == "ipc" {
			fmt.Println("== T2: §2.2 inter-thread communication overhead (paper: ≈2µs added tail)")
			r := experiment.IPCOverhead(q)
			fmt.Printf("shinjuku p99 = %v, single-thread (rss) p99 = %v, overhead = %v\n\n",
				r.ShinjukuP99, r.RSSP99, r.Overhead)
		}
		if which == "" || which == "wait" {
			fmt.Println("== T3: §4 worker wait time at saturation (paper: 1µs workload waits 110% more)")
			r := experiment.WorkerWait(q)
			fmt.Printf("idle@100µs = %.1f%%, idle@1µs = %.1f%%, extra waiting = %.0f%%\n\n",
				r.IdleAt100us*100, r.IdleAt1us*100, r.ExtraWaitFrac*100)
		}
		if which == "" || which == "latency" {
			fmt.Println("== T4: §3.3 NIC↔host one-way latency")
			r := experiment.CommLatency(p)
			fmt.Printf("modelled = %v, paper = %v\n\n", r.Modelled, r.Paper)
		}
		if which == "" || which == "policy" {
			fmt.Println("== X10: worker-selection policy ablation (bimodal, k=6, no preemption, ρ=0.75)")
			fmt.Printf("%-26s %12s %12s %14s\n", "policy", "p50", "p99", "achieved")
			for _, r := range experiment.PolicyAblation(q) {
				fmt.Printf("%-26s %12v %12v %14.0f\n", r.Policy, r.P50, r.P99, r.Achieved)
			}
			fmt.Println()
		}
		if which == "" || which == "dispersion" {
			fmt.Println("== X7: preemption win vs service-time dispersion (mean 10µs, ρ=0.7, 4 workers)")
			fmt.Printf("%-36s %8s %16s %16s %8s\n", "workload", "cv²", "short p99 (pre)", "short p99 (rtc)", "win")
			for _, r := range experiment.DispersionSensitivity(q) {
				fmt.Printf("%-36s %8.2f %16v %16v %7.1fx\n",
					r.Workload, r.CV2, r.PreemptShortP99, r.NoPreemptShortP99, r.Win)
			}
			fmt.Println()
		}
	}

	switch {
	case *fig != "":
		runFigure(*fig)
	case *table != "":
		runTables(*table)
	default:
		for _, id := range order {
			runFigure(id)
		}
		if !*only {
			runTables("")
		}
	}
}
