// Package loadgen implements the open-loop load generator of the paper's
// evaluation (§4: "an open loop load generator similar to mutilate that
// transmits requests over UDP"). Arrivals form a Poisson process at a fixed
// offered rate regardless of system state — the property that makes tail
// latency explode at saturation instead of politely backing off.
package loadgen

import (
	"math/rand/v2"
	"time"

	"mindgap/internal/dist"
	"mindgap/internal/sim"
	"mindgap/internal/task"
)

// Config describes one client workload.
type Config struct {
	// RPS is the offered arrival rate in requests per second.
	RPS float64
	// Service is the fake-work service-time distribution (§4.1).
	Service dist.Distribution
	// Keys optionally samples an application key per request (used by
	// flow-steering baselines). Nil leaves keys zero.
	Keys *dist.ZipfKeys
	// Seed makes the arrival and service streams reproducible.
	Seed uint64
	// MaxArrivals stops generation after this many requests (0 = run until
	// the engine halts).
	MaxArrivals uint64
	// ClientID is stamped on every request.
	ClientID uint32
	// Pool, when set, recycles Request objects: arrivals draw from it and
	// the harness returns each request at response time. Nil allocates a
	// fresh request per arrival.
	Pool *task.Pool
}

// Generator produces requests on a simulation engine and hands them to a
// sink (a System's Inject method) at their arrival instants.
type Generator struct {
	// Counters holds the shared arrival accounting (Arrivals, Packets,
	// Flows accessors).
	Counters

	eng  *sim.Engine
	cfg  Config
	rng  *rand.Rand
	sink func(*task.Request)

	nextID uint64
}

// New creates a generator. sink is called exactly at each request's arrival
// instant with a freshly built request.
func New(eng *sim.Engine, cfg Config, sink func(*task.Request)) *Generator {
	if cfg.RPS <= 0 {
		panic("loadgen: RPS must be positive")
	}
	if cfg.Service == nil {
		panic("loadgen: service distribution required")
	}
	if sink == nil {
		panic("loadgen: sink required")
	}
	return &Generator{
		eng:  eng,
		cfg:  cfg,
		rng:  rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x6d696e64676170)), // "mindgap"
		sink: sink,
	}
}

// Start schedules the first arrival. Generation continues open-loop until
// MaxArrivals (if set) or until the engine halts.
func (g *Generator) Start() {
	g.eng.AfterE(g.interarrival(), genArrive, g, nil, 0)
}

// genArrive fires at each arrival instant: build (or recycle) the request,
// hand it to the sink, and schedule the next arrival. Typed event + pooled
// request make the steady-state arrival path allocation-free.
//
//mindgap:noalloc
func genArrive(recv, _ any, _ uint64) {
	g := recv.(*Generator)
	if g.cfg.MaxArrivals > 0 && g.arrivals >= g.cfg.MaxArrivals {
		return
	}
	g.nextID++
	g.arrivals++
	g.packets++
	var req *task.Request
	if g.cfg.Pool != nil {
		req = g.cfg.Pool.Get(g.nextID, g.eng.Now(), g.cfg.Service.Sample(g.rng))
	} else {
		req = task.New(g.nextID, g.eng.Now(), g.cfg.Service.Sample(g.rng))
	}
	req.ClientID = g.cfg.ClientID
	if g.cfg.Keys != nil {
		req.Key = g.cfg.Keys.Sample(g.rng)
	}
	g.sink(req)
	g.eng.AfterE(g.interarrival(), genArrive, g, nil, 0)
}

// interarrival draws the next Poisson gap.
//
//mindgap:noalloc
func (g *Generator) interarrival() time.Duration {
	return expGap(g.rng, g.cfg.RPS)
}
