package loadgen

import (
	"testing"
	"time"

	"mindgap/internal/dist"
	"mindgap/internal/sim"
	"mindgap/internal/task"
	"mindgap/internal/telemetry"
)

// drainSink classifies like a flow-aware system: count the batch,
// decrement InFlight, and drop the last reference so retired records can
// recycle.
func drainSink(counts map[task.FlowClass]uint64) func(*task.Request) {
	return func(r *task.Request) {
		f := r.FlowState
		r.FlowState = nil
		counts[f.Class] += uint64(r.Packets)
		f.InFlight--
		f.ReleaseIfIdle()
	}
}

func TestFlowGeneratorPopulationExact(t *testing.T) {
	eng := sim.New()
	fp := &task.FlowPool{}
	counts := map[task.FlowClass]uint64{}
	g := NewFlow(eng, FlowConfig{
		RPS:              1_000_000,
		Service:          dist.Fixed{D: 100 * time.Nanosecond},
		Flows:            64,
		ElephantFraction: 0.25,
		Seed:             3,
		MaxArrivals:      50_000,
		FlowPool:         fp,
	}, drainSink(counts))
	g.Start()
	if g.Population() != 64 {
		t.Fatalf("population after Start = %d, want 64", g.Population())
	}
	eng.Run()
	if g.Population() != 64 {
		t.Fatalf("population after run = %d, want 64 (exact, retire-and-replace)", g.Population())
	}
	if g.RetiredFlows() == 0 {
		t.Fatal("no flows retired over 50k batches of finite trains")
	}
	// Retired records whose batches have all been classified must have
	// been recycled: live = the 64 active + nothing else.
	if fp.Live() != 64 {
		t.Fatalf("flow pool live = %d, want 64", fp.Live())
	}
	if g.Arrivals() != 50_000 {
		t.Fatalf("arrivals = %d, want 50000", g.Arrivals())
	}
}

func TestFlowGeneratorElephantSplitExact(t *testing.T) {
	eng := sim.New()
	counts := map[task.FlowClass]uint64{}
	g := NewFlow(eng, FlowConfig{
		RPS:              1_000_000,
		Service:          dist.Fixed{D: 100 * time.Nanosecond},
		Flows:            1000,
		ElephantFraction: 0.2,
		Seed:             9,
		MaxArrivals:      1,
	}, drainSink(counts))
	g.Start()
	// The split is an error accumulator, not a coin flip: of the first
	// 1000 spawns at fraction 0.2, exactly 200 are elephants.
	var elephants uint64
	for _, f := range g.active {
		if f.Class == task.ClassElephant {
			elephants++
		}
	}
	if elephants != 200 {
		t.Fatalf("elephants = %d of 1000 at fraction 0.2, want exactly 200", elephants)
	}
	if g.Flows() != 1000 {
		t.Fatalf("flows counter = %d, want 1000", g.Flows())
	}
}

func TestFlowGeneratorBatchAndTrainAccounting(t *testing.T) {
	eng := sim.New()
	counts := map[task.FlowClass]uint64{}
	g := NewFlow(eng, FlowConfig{
		RPS:              500_000,
		Service:          dist.Fixed{D: 170 * time.Nanosecond},
		Flows:            8,
		ElephantFraction: 0.5,
		RatBatch:         2, RatTrain: 6,
		ElephantBatch: 8, ElephantTrain: 24,
		Seed:        11,
		MaxArrivals: 20_000,
	}, func(r *task.Request) {
		f := r.FlowState
		r.FlowState = nil
		if r.FlowID == 0 {
			t.Fatal("batch without a flow id")
		}
		counts[f.Class] += uint64(r.Packets)
		// A batch's service time is the per-packet draw times its size.
		if want := 170 * time.Nanosecond * time.Duration(r.Packets); r.Service != want {
			t.Fatalf("batch service = %v for %d packets, want %v", r.Service, r.Packets, want)
		}
		f.InFlight--
		f.ReleaseIfIdle()
	})
	g.Start()
	eng.Run()
	if counts[task.ClassRat] == 0 || counts[task.ClassElephant] == 0 {
		t.Fatalf("packet counts by class = %v, want both classes seen", counts)
	}
	if g.Packets() != counts[task.ClassRat]+counts[task.ClassElephant] {
		t.Fatalf("generator packets = %d, sink saw %d", g.Packets(),
			counts[task.ClassRat]+counts[task.ClassElephant])
	}
}

func TestFlowGeneratorDeterministicStreams(t *testing.T) {
	run := func() []uint64 {
		eng := sim.New()
		var ids []uint64
		g := NewFlow(eng, FlowConfig{
			RPS:              2_000_000,
			Service:          dist.Fixed{D: time.Microsecond},
			Flows:            32,
			ElephantFraction: 0.2,
			Seed:             21,
			MaxArrivals:      5000,
			FlowPool:         &task.FlowPool{},
		}, func(r *task.Request) {
			f := r.FlowState
			r.FlowState = nil
			ids = append(ids, uint64(r.FlowID)<<32|uint64(r.Packets))
			f.InFlight--
			f.ReleaseIfIdle()
		})
		g.Start()
		eng.Run()
		return ids
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at batch %d", i)
		}
	}
}

// TestCounterMetricsShared pins the deduped counter-accessor pattern:
// both generators publish the same probe set through the same embedded
// Counters, and the gauges read the live values.
func TestCounterMetricsShared(t *testing.T) {
	eng := sim.New()
	reg := telemetry.NewRegistry()
	g := New(eng, Config{
		RPS:         1_000_000,
		Service:     dist.Fixed{D: time.Microsecond},
		Seed:        1,
		MaxArrivals: 100,
	}, func(r *task.Request) {})
	g.PublishMetrics(reg, "loadgen")
	fg := NewFlow(eng, FlowConfig{
		RPS:              1_000_000,
		Service:          dist.Fixed{D: time.Microsecond},
		Flows:            10,
		ElephantFraction: 0.2,
		Seed:             2,
		MaxArrivals:      100,
	}, func(r *task.Request) {
		f := r.FlowState
		r.FlowState = nil
		f.InFlight--
		f.ReleaseIfIdle()
	})
	fg.PublishMetrics(reg, "flowgen")
	g.Start()
	fg.Start()
	eng.Run()
	for key, want := range map[string]float64{
		"loadgen/arrivals": float64(g.Arrivals()),
		"loadgen/packets":  float64(g.Packets()),
		"flowgen/arrivals": float64(fg.Arrivals()),
		"flowgen/packets":  float64(fg.Packets()),
		"flowgen/flows":    float64(fg.Flows()),
	} {
		got, ok := reg.GaugeValue(key)
		if !ok {
			t.Fatalf("gauge %q not published", key)
		}
		if got != want {
			t.Fatalf("gauge %q = %v, want %v", key, got, want)
		}
	}
	if g.Arrivals() != 100 || fg.Arrivals() != 100 {
		t.Fatalf("arrivals = %d/%d, want 100 each", g.Arrivals(), fg.Arrivals())
	}
}

func TestFlowConfigValidation(t *testing.T) {
	eng := sim.New()
	sink := func(*task.Request) {}
	for name, cfg := range map[string]FlowConfig{
		"zero rps":     {Service: dist.Fixed{D: 1}, Flows: 1},
		"no service":   {RPS: 1, Flows: 1},
		"zero flows":   {RPS: 1, Service: dist.Fixed{D: 1}},
		"bad fraction": {RPS: 1, Service: dist.Fixed{D: 1}, Flows: 1, ElephantFraction: 1.5},
		"neg fraction": {RPS: 1, Service: dist.Fixed{D: 1}, Flows: 1, ElephantFraction: -0.1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: NewFlow did not panic", name)
				}
			}()
			NewFlow(eng, cfg, sink)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("nil sink: NewFlow did not panic")
			}
		}()
		NewFlow(eng, FlowConfig{RPS: 1, Service: dist.Fixed{D: 1}, Flows: 1}, nil)
	}()
}
