package mindgap

import (
	"strings"
	"testing"
)

func TestFiguresListStableAndComplete(t *testing.T) {
	ids := Figures()
	if len(ids) != len(figureBuilders) {
		t.Fatalf("Figures() returned %d ids, registry has %d", len(ids), len(figureBuilders))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("Figures() not sorted: %v", ids)
		}
	}
	for _, want := range []string{"figure2", "figure3", "figure4", "figure5", "figure6"} {
		found := false
		for _, id := range ids {
			if id == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("paper figure %q missing from registry", want)
		}
	}
}

func TestRunFigureUnknownID(t *testing.T) {
	_, err := RunFigure("figure99", Quick)
	if err == nil {
		t.Fatal("unknown figure accepted")
	}
	if !strings.Contains(err.Error(), "figure99") {
		t.Fatalf("error does not name the id: %v", err)
	}
}

func TestRunFigureSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the figure harness")
	}
	f, err := RunFigure("figure4", Quality{Warmup: 300, Measure: 2_000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if f.ID != "figure4" || len(f.Series) != 2 {
		t.Fatalf("unexpected figure: %+v", f.ID)
	}
	for _, s := range f.Series {
		if len(s.Results) == 0 {
			t.Fatalf("series %q empty", s.Label)
		}
	}
}
