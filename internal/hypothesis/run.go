package hypothesis

import (
	"context"
	"fmt"

	"mindgap/internal/experiment"
	"mindgap/internal/runner"
	"mindgap/internal/scenario"
)

// sweepID keys every hypothesis point in the runner cache. It is shared
// across hypotheses on purpose: the cache identity of a point is the
// scenario it measures (fingerprint with load/quality/seed baked in),
// so two hypotheses whose arms describe the same scenario — or a
// re-run of the same hypothesis — reuse each other's results.
const sweepID = "hyp"

// Report is one executed hypothesis: the inputs, the per-seed (or
// per-load) measurements, the criterion verdict, and the analytic-twin
// check. Render writes it as a FINDINGS document.
type Report struct {
	Spec        Spec
	Fingerprint string
	// Quality is the effective sample-count/seed-independent quality both
	// arms ran at (the run-time quality merged with the spec's pin).
	Quality experiment.Quality
	// Rows holds per-seed outcomes (dominance/equivalence; nil for
	// crossover). Grid holds per-load cross-seed means (crossover only).
	Rows []SeedOutcome
	Grid []GridOutcome
	// Dominance/Equivalence/Crossover carries the criterion verdict for
	// the matching kind; the others are zero.
	Dominance   DominanceVerdict
	Equivalence EquivalenceVerdict
	Crossover   CrossoverVerdict
	// Twin is the analytic-twin check (nil when none was declared).
	Twin *TwinReport
	// Pass is the overall verdict: the criterion passed and the twin, if
	// declared, agreed.
	Pass bool
	// Reason is the one-line explanation rendered under the verdict.
	Reason string
}

// Run executes the hypothesis on the runner: every (arm, seed, load)
// point through the cached pool, then the pure verdict functions. The
// spec is validated first; q is the base quality (the spec's Quality
// block overrides its sample counts, each pinned seed overrides its
// seed).
func Run(ctx context.Context, rn *runner.Runner, h Spec, q experiment.Quality) (Report, error) {
	if err := h.Validate(); err != nil {
		return Report{}, err
	}
	// Merge the hypothesis quality pin exactly as scenario specs merge
	// theirs: through the experiment layer's resolver.
	eq := experiment.QualityFor(scenario.Spec{Quality: h.Quality}, q)

	loadsA, err := armLoads(h.A)
	if err != nil {
		return Report{}, fmt.Errorf("hypothesis %s: arm a: %w", h.ID, err)
	}
	loadsB, err := armLoads(h.B)
	if err != nil {
		return Report{}, fmt.Errorf("hypothesis %s: arm b: %w", h.ID, err)
	}

	def := metrics[h.Metric]
	sw := runner.Sweep[measurement]{Name: sweepID + ":" + h.ID}
	for _, side := range []struct {
		label string
		arm   Arm
		loads []float64
	}{{"a", h.A, loadsA}, {"b", h.B, loadsB}} {
		series, err := armSeries(side.label, side.arm, side.loads, h.Seeds, eq, def)
		if err != nil {
			return Report{}, fmt.Errorf("hypothesis %s: arm %s: %w", h.ID, side.label, err)
		}
		sw.Series = append(sw.Series, series)
	}

	res, err := runner.Run(ctx, rn, sw)
	if err != nil {
		return Report{}, fmt.Errorf("hypothesis %s: %w", h.ID, err)
	}
	mA, mB := res[0].Results, res[1].Results
	want := len(h.Seeds) * len(loadsA)
	if len(mA) != want || len(mB) != len(h.Seeds)*len(loadsB) {
		return Report{}, fmt.Errorf("hypothesis %s: incomplete run (%d/%d a-points, %d/%d b-points)",
			h.ID, len(mA), want, len(mB), len(h.Seeds)*len(loadsB))
	}

	rep := Report{Spec: h, Fingerprint: h.Fingerprint(), Quality: eq}
	if h.Criterion.Kind == Crossover {
		rep.Grid = gridOutcomes(loadsA, h.Seeds, mA, mB, def)
		rep.Crossover = EvalCrossover(rep.Grid, def.LowerBetter, *h.Criterion.Bracket)
		rep.Pass, rep.Reason = rep.Crossover.Pass, rep.Crossover.Reason
	} else {
		rep.Rows = seedOutcomes(h.Seeds, mA, mB, def)
		switch h.Criterion.Kind {
		case Dominance:
			rep.Dominance = EvalDominance(rep.Rows, def.LowerBetter, h.Criterion.MinMargin, h.Criterion.MinWinFrac)
			rep.Pass, rep.Reason = rep.Dominance.Pass, rep.Dominance.Reason
		case Equivalence:
			rep.Equivalence = EvalEquivalence(rep.Rows, h.Criterion.Tolerance)
			rep.Pass, rep.Reason = rep.Equivalence.Pass, rep.Equivalence.Reason
		}
	}

	if h.Analytic != nil {
		twin := evalTwin(h, loadsA, loadsB, mA, mB)
		rep.Twin = &twin
		if !twin.Pass {
			rep.Pass = false
			rep.Reason = "analytic twin disagrees: " + twin.Reason
		}
	}
	return rep, nil
}

// armLoads resolves an arm's load declaration to offered-RPS points.
func armLoads(a Arm) ([]float64, error) {
	loads, err := experiment.SpecLoads(a.Scenario)
	if err != nil {
		return nil, err
	}
	if len(loads) == 0 {
		return nil, fmt.Errorf("load resolves to no points")
	}
	return loads, nil
}

// armSeries compiles one arm into a runner series: seeds outer, loads
// inner, so per-seed rows are contiguous. Point keys go through
// experiment.SpecPointKey with the seed substituted into the spec —
// identical scenarios measured by figures, tables or other hypotheses
// share cache entries.
func armSeries(label string, a Arm, loads []float64, seeds []uint64, q experiment.Quality, def MetricDef) (runner.Series[measurement], error) {
	pts := make([]runner.Point[measurement], 0, len(seeds)*len(loads))
	for _, seed := range seeds {
		sp := a.Scenario
		sp.Name = ""
		sp.Seed = seed
		eq := q
		eq.Seed = seed
		if def.Attribution {
			sp.Attribution = true
		}
		cfg, err := experiment.PointConfigFor(sp, eq)
		if err != nil {
			return runner.Series[measurement]{}, err
		}
		for _, rps := range loads {
			sp, rps := sp, rps
			var p runner.Point[measurement]
			if def.Attribution {
				// Attribution points carry the audit collector; the salt
				// matches the attribution table's, keeping them distinct
				// from plain Result entries for the same scenario.
				p = runner.Point[measurement]{
					Key: experiment.SpecPointKey(sweepID, sp, eq, rps, "attr1"),
					Run: func() measurement {
						row := experiment.RunAttributionPoint(sp, eq, rps)
						return measurement{Result: row.Result, MisRate: row.Audit.MisRate}
					},
				}
			} else {
				cfg := cfg
				cfg.OfferedRPS = rps
				p = runner.Point[measurement]{
					Key: experiment.SpecPointKey(sweepID, sp, eq, rps),
					Run: func() measurement { return measurement{Result: experiment.RunPoint(cfg)} },
				}
			}
			pts = append(pts, p)
		}
	}
	return runner.Series[measurement]{Label: label, Points: pts}, nil
}

// seedOutcomes pairs the single-load measurements per seed.
func seedOutcomes(seeds []uint64, mA, mB []measurement, def MetricDef) []SeedOutcome {
	rows := make([]SeedOutcome, len(seeds))
	for i, seed := range seeds {
		rows[i] = SeedOutcome{Seed: seed, A: def.value(mA[i]), B: def.value(mB[i])}
	}
	return rows
}

// gridOutcomes reduces per-(seed, load) measurements to per-load
// cross-seed means, in grid order. Summation runs in fixed seed order,
// so the means — and every FINDINGS byte derived from them — are
// parallelism-independent.
func gridOutcomes(loads []float64, seeds []uint64, mA, mB []measurement, def MetricDef) []GridOutcome {
	out := make([]GridOutcome, len(loads))
	n := float64(len(seeds))
	for li, x := range loads {
		var sumA, sumB float64
		for si := range seeds {
			idx := si*len(loads) + li
			sumA += def.value(mA[idx])
			sumB += def.value(mB[idx])
		}
		out[li] = GridOutcome{X: x, A: sumA / n, B: sumB / n}
	}
	return out
}
