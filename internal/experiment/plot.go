package experiment

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Plot renders the figure as an ASCII chart — x is the sweep variable, y
// is p99 latency on a log scale (the tail curves of the paper span three
// orders of magnitude between floor and saturation). Each series gets a
// distinct glyph; saturated points render as '!'.
func (f Figure) Plot(w io.Writer, width, height int) {
	if width < 20 {
		width = 72
	}
	if height < 6 {
		height = 20
	}
	glyphs := []byte{'o', 'x', '+', '*', '#', '@', '%', '&'}

	// Collect the plotted points.
	type pt struct {
		x, y   float64
		series int
		sat    bool
	}
	var pts []pt
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for si, s := range f.Series {
		for _, r := range s.Results {
			y := float64(r.P99.Nanoseconds())
			if y <= 0 {
				continue
			}
			p := pt{x: r.OfferedRPS, y: math.Log10(y), series: si, sat: r.Saturated}
			pts = append(pts, p)
			minX, maxX = math.Min(minX, p.x), math.Max(maxX, p.x)
			minY, maxY = math.Min(minY, p.y), math.Max(maxY, p.y)
		}
	}
	if len(pts) == 0 {
		fmt.Fprintln(w, "(no data)")
		return
	}
	// max >= min by construction; <= (rather than ==) widens degenerate
	// ranges without an exact float comparison.
	if maxX <= minX {
		maxX = minX + 1
	}
	if maxY <= minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for _, p := range pts {
		col := int((p.x - minX) / (maxX - minX) * float64(width-1))
		row := height - 1 - int((p.y-minY)/(maxY-minY)*float64(height-1))
		g := glyphs[p.series%len(glyphs)]
		if p.sat {
			g = '!'
		}
		grid[row][col] = g
	}

	fmt.Fprintf(w, "%s — %s (y: p99, log scale)\n", f.ID, f.Title)
	topLabel := formatNanos(math.Pow(10, maxY))
	botLabel := formatNanos(math.Pow(10, minY))
	for i, row := range grid {
		label := strings.Repeat(" ", 9)
		switch i {
		case 0:
			label = fmt.Sprintf("%9s", topLabel)
		case height - 1:
			label = fmt.Sprintf("%9s", botLabel)
		}
		fmt.Fprintf(w, "%s |%s\n", label, string(row))
	}
	fmt.Fprintf(w, "%9s +%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(w, "%9s  %-*s%s\n", "", width-12, formatCount(minX), formatCount(maxX))
	for si, s := range f.Series {
		fmt.Fprintf(w, "   %c = %s\n", glyphs[si%len(glyphs)], s.Label)
	}
	fmt.Fprintln(w, "   ! = saturated point")
}

// formatNanos renders a nanosecond value compactly (1.5µs, 23ms).
func formatNanos(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.3gs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.3gms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.3gµs", ns/1e3)
	default:
		return fmt.Sprintf("%.3gns", ns)
	}
}

// formatCount renders an x-axis value compactly (250k, 1.5M).
func formatCount(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.3gM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.3gk", v/1e3)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}
