package live

import (
	"net"
	"testing"
	"time"

	"mindgap/internal/core"
	"mindgap/internal/dist"
)

// startSystem boots a dispatcher and workers on loopback, returning a
// cleanup function.
func startSystem(t *testing.T, workers int, k int, slice time.Duration) (*Dispatcher, []*Worker, func()) {
	t.Helper()
	d, err := NewDispatcher("127.0.0.1:0", DispatcherConfig{
		Workers: workers, Outstanding: k, Policy: core.LeastOutstanding,
		// Real UDP drops under scheduler pressure on small CI machines;
		// retries make the tests assert protocol behaviour, not kernel
		// buffer luck.
		RetryTimeout: 100 * time.Millisecond, MaxAttempts: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = d.Serve() }()
	var ws []*Worker
	for i := 0; i < workers; i++ {
		// SpinFloor 1ns: always sleep instead of busy-spinning, so the
		// test is robust on single-core CI machines where spinning workers
		// would starve the UDP sockets.
		w, err := NewWorker(WorkerConfig{
			ID: uint32(i), Dispatcher: d.Addr(), Slice: slice,
			SpinFloor: time.Nanosecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		go func() { _ = w.Serve() }()
		ws = append(ws, w)
	}
	cleanup := func() {
		for _, w := range ws {
			_ = w.Close()
		}
		_ = d.Close()
	}
	return d, ws, cleanup
}

func TestLiveEndToEnd(t *testing.T) {
	d, _, cleanup := startSystem(t, 3, 2, 0)
	defer cleanup()
	rep, err := RunClient(ClientConfig{
		Dispatcher: d.Addr(),
		RPS:        10_000,
		Service:    dist.Fixed{D: 20 * time.Microsecond},
		Requests:   2_000,
		Seed:       1,
		Timeout:    10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	// UDP is lossy under CI scheduling pressure; the protocol claim is
	// that (nearly) everything sent is scheduled, executed, and answered.
	if rep.Received < 1_980 {
		t.Fatalf("received %d/%d responses", rep.Received, rep.Sent)
	}
	if rep.Latency.P50() < 20*time.Microsecond {
		t.Fatalf("p50 %v below service time", rep.Latency.P50())
	}
	// Workers answer the client before notifying the dispatcher, so the
	// dispatcher's completion counter can trail the client by a few
	// in-flight FINISH datagrams; give it a moment to drain.
	var assigned, completed uint64
	deadline := time.Now().Add(2 * time.Second)
	for {
		assigned, completed, _, _ = d.Stats()
		if completed >= uint64(rep.Received) || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if completed < uint64(rep.Received) {
		t.Fatalf("dispatcher completed = %d < received %d", completed, rep.Received)
	}
	if assigned < completed {
		t.Fatalf("dispatcher assigned = %d < completed %d", assigned, completed)
	}
}

func TestLiveCooperativePreemption(t *testing.T) {
	d, ws, cleanup := startSystem(t, 2, 2, 50*time.Microsecond)
	defer cleanup()
	rep, err := RunClient(ClientConfig{
		Dispatcher: d.Addr(),
		RPS:        5_000,
		Service: dist.Bimodal{
			P1: 0.9, D1: 20 * time.Microsecond, D2: 300 * time.Microsecond,
		},
		Requests: 800,
		Seed:     2,
		Timeout:  15 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Received < 792 {
		t.Fatalf("received %d/%d", rep.Received, rep.Sent)
	}
	var preempts uint64
	for _, w := range ws {
		preempts += w.Preempted()
	}
	if preempts == 0 {
		t.Fatal("no cooperative preemptions despite 300µs requests at 50µs slice")
	}
	// The dispatcher's counter trails in-flight PREEMPTED datagrams, and
	// with retries enabled it legitimately ignores notifications for
	// assignments it already reaped — so it may stay slightly below the
	// workers' count.
	var dp uint64
	deadline := time.Now().Add(2 * time.Second)
	for {
		_, _, dp, _ = d.Stats()
		if dp >= preempts || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if dp > preempts {
		t.Fatalf("dispatcher preempted=%d exceeds workers' %d", dp, preempts)
	}
	if float64(dp) < 0.9*float64(preempts) {
		t.Fatalf("dispatcher preempted=%d, workers preempted=%d", dp, preempts)
	}
}

func TestLiveWorkSpreadsAcrossWorkers(t *testing.T) {
	d, ws, cleanup := startSystem(t, 4, 1, 0)
	defer cleanup()
	rep, err := RunClient(ClientConfig{
		Dispatcher: d.Addr(),
		RPS:        40_000,
		Service:    dist.Fixed{D: 50 * time.Microsecond},
		Requests:   2_000,
		Seed:       3,
		Timeout:    10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Received < 1_980 {
		t.Fatalf("received %d", rep.Received)
	}
	for i, w := range ws {
		if w.Completed() < 100 {
			t.Fatalf("worker %d only completed %d — centralized queue not balancing", i, w.Completed())
		}
	}
}

func TestLiveValidation(t *testing.T) {
	if _, err := NewDispatcher("127.0.0.1:0", DispatcherConfig{}); err == nil {
		t.Fatal("zero workers accepted")
	}
	if _, err := NewWorker(WorkerConfig{}); err == nil {
		t.Fatal("worker without dispatcher accepted")
	}
	if _, err := RunClient(ClientConfig{}); err == nil {
		t.Fatal("empty client config accepted")
	}
	if _, err := RunClient(ClientConfig{Dispatcher: &net.UDPAddr{}, RPS: 0}); err == nil {
		t.Fatal("zero rps accepted")
	}
}

func TestAddrCodec(t *testing.T) {
	a := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 54321}
	enc := encodeAddr(nil, a)
	if len(enc) != 6 {
		t.Fatalf("encoded length %d", len(enc))
	}
	got, ok := decodeAddr(enc)
	if !ok || !got.IP.Equal(a.IP) || got.Port != a.Port {
		t.Fatalf("decodeAddr = %v, %v", got, ok)
	}
	if _, ok := decodeAddr(encodeAddr(nil, nil)); ok {
		t.Fatal("nil addr round-tripped as valid")
	}
	if _, ok := decodeAddr([]byte{1, 2}); ok {
		t.Fatal("short buffer decoded")
	}
}

func TestLiveSurvivesMalformedDatagrams(t *testing.T) {
	// Fire garbage at both the dispatcher and a worker mid-run: corrupted
	// packets must be dropped like a NIC would drop bad frames, without
	// disturbing in-flight scheduling.
	d, ws, cleanup := startSystem(t, 2, 2, 0)
	defer cleanup()

	attacker, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer attacker.Close()
	garbage := [][]byte{
		{},
		{0x01},
		make([]byte, 7),
		[]byte("this is not a mindgap datagram at all, not even close"),
		func() []byte { // valid header, corrupted checksum
			b := make([]byte, 64)
			b[0] = 1
			b[1] = 2
			return b
		}(),
	}
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, g := range garbage {
				_, _ = attacker.WriteToUDP(g, d.Addr())
				_, _ = attacker.WriteToUDP(g, ws[0].Addr())
			}
			time.Sleep(time.Millisecond)
		}
	}()

	rep, err := RunClient(ClientConfig{
		Dispatcher: d.Addr(),
		RPS:        5_000,
		Service:    dist.Fixed{D: 20 * time.Microsecond},
		Requests:   500,
		Seed:       9,
		Timeout:    10 * time.Second,
	})
	close(stop)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Received < 495 {
		t.Fatalf("received %d/%d under garbage fire", rep.Received, rep.Sent)
	}
}

func TestLiveRetryRecoversFromWorkerDeath(t *testing.T) {
	// Kill one of three workers mid-run. With RetryTimeout set, requests
	// assigned to the dead worker time out and requeue until they land on
	// a live one — at-least-once delivery over lossy UDP.
	d, err := NewDispatcher("127.0.0.1:0", DispatcherConfig{
		Workers: 3, Outstanding: 1, Policy: core.LeastOutstanding,
		RetryTimeout: 30 * time.Millisecond, MaxAttempts: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	go func() { _ = d.Serve() }()
	var ws []*Worker
	for i := 0; i < 3; i++ {
		w, err := NewWorker(WorkerConfig{
			ID: uint32(i), Dispatcher: d.Addr(), SpinFloor: time.Nanosecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		go func() { _ = w.Serve() }()
		ws = append(ws, w)
	}
	defer func() {
		for _, w := range ws[1:] {
			_ = w.Close()
		}
	}()
	// Worker 0 dies before any load arrives.
	_ = ws[0].Close()

	rep, err := RunClient(ClientConfig{
		Dispatcher: d.Addr(),
		RPS:        2_000,
		Service:    dist.Fixed{D: 20 * time.Microsecond},
		Requests:   200,
		Seed:       5,
		Timeout:    20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Received != 200 {
		t.Fatalf("received %d/200 despite retries (abandoned=%d)", rep.Received, d.Abandoned())
	}
	if d.Retried() == 0 {
		t.Fatal("no retries recorded despite a dead worker")
	}
}

func TestDispatcherDoubleCloseIsSafe(t *testing.T) {
	d, _, cleanup := startSystem(t, 1, 1, 0)
	cleanup()
	if err := d.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestLiveMultipleClientsDoNotCollide(t *testing.T) {
	// Two clients use overlapping request IDs (both start at 1); the
	// dispatcher must key its state by (client, id) so responses reach
	// the right client.
	d, _, cleanup := startSystem(t, 2, 2, 0)
	defer cleanup()
	type res struct {
		rep *ClientReport
		err error
	}
	ch := make(chan res, 2)
	for c := uint32(1); c <= 2; c++ {
		c := c
		go func() {
			rep, err := RunClient(ClientConfig{
				Dispatcher: d.Addr(),
				RPS:        3_000,
				Service:    dist.Fixed{D: 20 * time.Microsecond},
				Requests:   400,
				Seed:       uint64(c),
				ClientID:   c,
				Timeout:    10 * time.Second,
			})
			ch <- res{rep, err}
		}()
	}
	for i := 0; i < 2; i++ {
		r := <-ch
		if r.err != nil {
			t.Fatal(r.err)
		}
		if r.rep.Received < 396 {
			t.Fatalf("client received %d/400 with concurrent clients", r.rep.Received)
		}
	}
}
