// Package cores models host worker cores executing requests, including the
// preemption machinery of §3.4.4: arming the local APIC timer, taking the
// timer (or posted) interrupt, and saving/restoring request contexts.
//
// Two preemption styles exist in the paper and both are modelled:
//
//   - Self-armed (Shinjuku-Offload): the worker arms a local timer when it
//     picks up a request and preempts itself on expiry, because the NIC has
//     no low-latency interrupt path to host cores.
//   - Externally posted (vanilla Shinjuku): the dispatcher tracks elapsed
//     time and posts an interrupt to the worker core.
package cores

import (
	"time"

	"mindgap/internal/params"
	"mindgap/internal/sim"
	"mindgap/internal/stats"
	"mindgap/internal/task"
	"mindgap/internal/telemetry"
)

// ExecConfig fixes the cost model for a core's execution of requests.
type ExecConfig struct {
	// Clock converts the timer profile's cycle costs to time.
	Clock params.Clock
	// Timer is the timer/interrupt cost profile (§3.4.4).
	Timer params.TimerProfile
	// Slice is the preemption quantum; zero disables self-preemption.
	Slice time.Duration
	// SelfArm selects the Shinjuku-Offload style: the worker arms its own
	// APIC timer per segment and preempts itself. When false, preemption
	// only happens through Interrupt (vanilla Shinjuku style).
	SelfArm bool
	// CtxSave and CtxResume are the context save/restore costs charged on
	// preemption and on resuming a previously preempted request.
	CtxSave, CtxResume time.Duration
	// CtxMigrate is the additional resume cost when the request last ran
	// on a different core (cold caches for its context).
	CtxMigrate time.Duration
	// Stretch, when set, converts the core's busy time into the wall
	// duration it takes under a fault timeline (worker-stall windows
	// freeze the core). The reported work amounts (slice lengths,
	// Remaining) stay in work units; only the wall clock dilates. Nil —
	// the only state healthy systems ever see — changes nothing.
	// Incompatible with Interrupt-driven preemption, which reconstructs
	// work done from wall time.
	Stretch func(sim.Time, time.Duration) time.Duration
}

// Exec is the execution engine of one worker core. It runs one request at a
// time; the surrounding system supplies queuing and communication.
type Exec struct {
	eng *sim.Engine
	cfg ExecConfig
	id  int

	busy      bool
	cur       *task.Request
	workStart sim.Time
	doneTimer sim.Timer // armed in place; a core has at most one pending expiry

	onComplete func(*task.Request)
	onPreempt  func(*task.Request)

	// Track accounts busy time for the worker-idle statistics behind the
	// paper's §4 "110% more time waiting for work" measurement.
	Track stats.BusyTracker

	completions uint64
	preemptions uint64
	migrations  uint64
}

// NewExec creates a core execution engine. onComplete fires when a request
// finishes; onPreempt fires when a slice expires or Interrupt lands, after
// the interrupt-receipt and context-save costs, with Remaining updated.
func NewExec(eng *sim.Engine, id int, cfg ExecConfig, onComplete, onPreempt func(*task.Request)) *Exec {
	if onComplete == nil {
		panic("cores: onComplete is required")
	}
	if (cfg.SelfArm && cfg.Slice > 0) && onPreempt == nil {
		panic("cores: onPreempt is required when self-preemption is enabled")
	}
	return &Exec{eng: eng, cfg: cfg, id: id, onComplete: onComplete, onPreempt: onPreempt}
}

// ID returns the worker core's identifier.
func (e *Exec) ID() int { return e.id }

// Busy reports whether a request is currently being executed (including
// preemption/IRQ overhead windows).
func (e *Exec) Busy() bool { return e.busy }

// Current returns the request in execution, or nil.
func (e *Exec) Current() *task.Request { return e.cur }

// Completions returns the number of requests completed on this core.
func (e *Exec) Completions() uint64 { return e.completions }

// Preemptions returns the number of preemptions taken on this core.
func (e *Exec) Preemptions() uint64 { return e.preemptions }

// Migrations returns how many resumed requests arrived from another core
// (each paid CtxMigrate).
func (e *Exec) Migrations() uint64 { return e.migrations }

// RegisterTelemetry exposes the core's busy state, utilization, and
// lifetime counters on reg under the given component label. Utilization
// reads the core's BusyTracker at the engine's current instant, so it is
// only meaningful after Track.Arm.
func (e *Exec) RegisterTelemetry(reg *telemetry.Registry, component string) {
	reg.GaugeFunc(component, "busy", func() float64 {
		if e.busy {
			return 1
		}
		return 0
	})
	reg.GaugeFunc(component, "utilization", func() float64 {
		return e.Track.BusyFraction(e.eng.Now())
	})
	reg.GaugeFunc(component, "completions", func() float64 { return float64(e.completions) })
	reg.GaugeFunc(component, "preemptions", func() float64 { return float64(e.preemptions) })
	reg.GaugeFunc(component, "migrations", func() float64 { return float64(e.migrations) })
}

// Start begins executing req. It panics if the core is already busy —
// callers must serialize through their own queues.
//
//mindgap:noalloc
func (e *Exec) Start(req *task.Request) { e.start(req, true) }

// StartRTC begins executing req run-to-completion: no slice timer is
// armed (and no arm cost charged), so the request holds the core until
// it finishes. The degraded hash-steering path uses it — RSS-style
// steering has no preemption (§2.1).
//
//mindgap:noalloc
func (e *Exec) StartRTC(req *task.Request) { e.start(req, false) }

//mindgap:noalloc
func (e *Exec) start(req *task.Request, allowSlice bool) {
	if e.busy {
		panic("cores: Start on busy core")
	}
	if req.Done() {
		panic("cores: Start on completed request")
	}
	e.busy = true
	e.cur = req
	e.Track.SetBusy(e.eng.Now(), true)
	req.Assignments++

	var overhead time.Duration
	if req.Preemptions > 0 {
		overhead += e.cfg.CtxResume
		if req.LastWorker != task.NoWorker && req.LastWorker != e.id {
			// The context lives in the previous core's caches.
			overhead += e.cfg.CtxMigrate
			e.migrations++
		}
	}
	req.LastWorker = e.id
	selfSlice := allowSlice && e.cfg.SelfArm && e.cfg.Slice > 0
	if selfSlice {
		overhead += e.cfg.Clock.CyclesToDuration(e.cfg.Timer.ArmCycles)
	}
	e.workStart = e.eng.Now().Add(overhead)

	if selfSlice && req.Remaining > e.cfg.Slice {
		// The slice will expire: schedule the self-preemption.
		fireAt := e.stretched(overhead + e.cfg.Slice)
		e.eng.ArmAfterE(&e.doneTimer, fireAt, execSliceExpired, e, nil, 0)
		return
	}
	e.eng.ArmAfterE(&e.doneTimer, e.stretched(overhead+req.Remaining), execCompleted, e, nil, 0)
}

// execSliceExpired fires when the self-armed preemption timer expires.
//
//mindgap:noalloc
func execSliceExpired(recv, _ any, _ uint64) {
	e := recv.(*Exec)
	e.slice(e.cfg.Slice)
}

// execCompleted fires when the current request's remaining work elapses.
//
//mindgap:noalloc
func execCompleted(recv, _ any, _ uint64) {
	recv.(*Exec).complete()
}

// execPreempted fires after the interrupt-receipt and context-save
// overhead of a preemption; obj is the preempted request.
//
//mindgap:noalloc
func execPreempted(recv, obj any, _ uint64) {
	e := recv.(*Exec)
	e.finishRun()
	e.onPreempt(obj.(*task.Request))
}

// stretched dilates a busy-time amount through the fault timeline.
//
//mindgap:noalloc
func (e *Exec) stretched(d time.Duration) time.Duration {
	if e.cfg.Stretch == nil {
		return d
	}
	return e.cfg.Stretch(e.eng.Now(), d)
}

// complete finishes the current request.
//
//mindgap:noalloc
func (e *Exec) complete() {
	req := e.cur
	req.Remaining = 0
	e.finishRun()
	e.completions++
	e.onComplete(req)
}

// slice handles expiry of the self-armed timer: charge the interrupt
// receipt and context save, then hand the request back.
//
//mindgap:noalloc
func (e *Exec) slice(ran time.Duration) {
	req := e.cur
	req.Remaining -= ran
	if req.Remaining < 0 {
		req.Remaining = 0
	}
	req.Preemptions++
	e.preemptions++
	overhead := e.cfg.Clock.CyclesToDuration(e.cfg.Timer.FireCycles) + e.cfg.CtxSave
	e.eng.AfterE(e.stretched(overhead), execPreempted, e, req, 0)
}

// Interrupt posts an external preemption interrupt to the core (vanilla
// Shinjuku's dispatcher-driven preemption). It reports false if the core
// already finished the request — the benign race of §3.4.4 where an
// interrupt arrives after completion. The preempted request is reported
// through onPreempt after interrupt-receipt and context-save costs.
//
//mindgap:noalloc
func (e *Exec) Interrupt() bool {
	if !e.busy || e.cur == nil {
		return false
	}
	if e.onPreempt == nil {
		panic("cores: Interrupt without an onPreempt handler")
	}
	if e.cfg.Stretch != nil {
		// ran-so-far below divides wall time by an assumed healthy rate;
		// under a stall timeline that arithmetic is wrong, and no modelled
		// system combines posted interrupts with worker stalls.
		panic("cores: Interrupt is not supported under a fault stretch")
	}
	now := e.eng.Now()
	if now < e.workStart {
		// Interrupt landed during pickup overhead: no work done yet.
		e.workStart = now
	}
	ran := now.Sub(e.workStart)
	if ran >= e.cur.Remaining {
		// Completion event will fire this instant anyway.
		return false
	}
	e.doneTimer.Stop()
	e.slice(ran)
	return true
}

//mindgap:noalloc
func (e *Exec) finishRun() {
	e.busy = false
	e.cur = nil
	e.doneTimer = sim.Timer{}
	e.Track.SetBusy(e.eng.Now(), false)
}
