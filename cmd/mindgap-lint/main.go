// Command mindgap-lint enforces the determinism and hot-path invariants
// of the mindgap simulator:
//
//	simclock    no wall clock / global rand in simulation packages
//	maporder    no order-sensitive emission from map-range loops
//	floateq     no ==/!= between floats in sim/stats code
//	lockedsend  no blocking channel ops while a mutex is held
//	poolsafe    no reads of recycled task.Request identity fields after release
//	hotalloc    no closures/boxing/fmt in //mindgap:noalloc functions
//	timerstop   every armed sim.Timer is fired or stopped
//	lintallow   every //lint:allow suppression names an analyzer and a reason
//
// Usage:
//
//	mindgap-lint [packages]             # standalone, defaults to ./...
//	mindgap-lint -escapes               # escape-budget gate vs ESCAPES.json
//	mindgap-lint -escapes -write        # regenerate ESCAPES.json
//	go vet -vettool=$(which mindgap-lint) ./...
//
// Standalone mode exits 0 if the tree is clean, 1 if there are
// diagnostics, and 2 on a loading or internal error. When invoked by
// the go vet driver (-V=full handshake or a *.cfg argument) it speaks
// the unitchecker protocol instead.
//
// The -escapes mode is the dynamic complement to hotalloc: it runs
// `go build -gcflags=-m`, counts the compiler's heap-escape diagnostics
// inside every //mindgap:noalloc function, and fails if any function
// exceeds its entry in the checked-in ESCAPES.json budget (all zeros).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"mindgap/internal/lint"
	"mindgap/internal/lint/driver"
	"mindgap/internal/lint/escapes"
)

func main() {
	// go vet probes the tool with `-V=full` (version handshake) and
	// `-flags` (flag inventory), then invokes it once per package with a
	// *.cfg file; delegate all three forms to unitchecker.
	args := os.Args[1:]
	if n := len(args); n > 0 && (strings.HasPrefix(args[0], "-V=") || args[0] == "-flags" || strings.HasSuffix(args[n-1], ".cfg")) {
		unitchecker.Main(lint.Analyzers()...) // does not return
	}

	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mindgap-lint [-escapes [-write]] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", "-escapes", "compare compiler heap escapes in //mindgap:noalloc functions against "+escapes.BudgetFile)
	}
	escapesMode := flag.Bool("escapes", false, "run the escape-budget gate instead of the analyzers")
	write := flag.Bool("write", false, "with -escapes: rewrite "+escapes.BudgetFile+" from the observed counts")
	flag.Parse()
	if *escapesMode {
		runEscapes(*write)
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	diags, err := driver.Run(patterns, lint.Analyzers())
	if err != nil {
		fmt.Fprintf(os.Stderr, "mindgap-lint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Printf("%s\n", d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "mindgap-lint: %d diagnostic(s); fix them or add //lint:allow <analyzer> <reason>\n", len(diags))
		os.Exit(1)
	}
}

// runEscapes executes the escape-budget gate and exits.
func runEscapes(write bool) {
	moduleDir, err := escapes.ModuleDir()
	if err != nil {
		fmt.Fprintf(os.Stderr, "mindgap-lint: %v\n", err)
		os.Exit(2)
	}
	observed, err := escapes.Collect(moduleDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mindgap-lint: %v\n", err)
		os.Exit(2)
	}
	if write {
		if err := escapes.Save(moduleDir, observed); err != nil {
			fmt.Fprintf(os.Stderr, "mindgap-lint: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("mindgap-lint: wrote %s with %d annotated function(s)\n", escapes.BudgetFile, len(observed))
		return
	}
	budget, err := escapes.Load(moduleDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mindgap-lint: loading %s: %v (run mindgap-lint -escapes -write to create it)\n", escapes.BudgetFile, err)
		os.Exit(2)
	}
	violations := escapes.Check(observed, budget)
	for _, v := range violations {
		fmt.Println(v)
	}
	if len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "mindgap-lint: escape budget violated: %d mismatch(es)\n", len(violations))
		os.Exit(1)
	}
	fmt.Printf("mindgap-lint: escape budget clean: %d //mindgap:noalloc function(s), all within budget\n", len(observed))
}
