package loadgen

import (
	"math"
	"testing"
	"time"

	"mindgap/internal/dist"
	"mindgap/internal/sim"
	"mindgap/internal/task"
)

func TestPoissonRate(t *testing.T) {
	eng := sim.New()
	var arrivals []sim.Time
	g := New(eng, Config{
		RPS:     100_000,
		Service: dist.Fixed{D: time.Microsecond},
		Seed:    1,
	}, func(r *task.Request) { arrivals = append(arrivals, eng.Now()) })
	g.Start()
	eng.RunUntil(sim.Time(int64(time.Second)))
	// 100k RPS over 1 s: expect 100k ± 1.5%.
	got := float64(len(arrivals))
	if math.Abs(got-100_000)/100_000 > 0.015 {
		t.Fatalf("arrivals = %v, want ≈100000", got)
	}
	// Coefficient of variation of interarrivals ≈ 1 for Poisson.
	var sum, sumSq float64
	for i := 1; i < len(arrivals); i++ {
		d := float64(arrivals[i] - arrivals[i-1])
		sum += d
		sumSq += d * d
	}
	n := float64(len(arrivals) - 1)
	mean := sum / n
	cv := math.Sqrt(sumSq/n-mean*mean) / mean
	if cv < 0.95 || cv > 1.05 {
		t.Fatalf("interarrival CV = %v, want ≈1 (Poisson)", cv)
	}
}

func TestRequestFieldsPopulated(t *testing.T) {
	eng := sim.New()
	var got []*task.Request
	g := New(eng, Config{
		RPS:         1_000_000,
		Service:     dist.Fixed{D: 5 * time.Microsecond},
		Keys:        dist.NewZipfKeys(16, 0.99),
		Seed:        7,
		ClientID:    42,
		MaxArrivals: 100,
	}, func(r *task.Request) { got = append(got, r) })
	g.Start()
	eng.Run()
	if len(got) != 100 {
		t.Fatalf("arrivals = %d, want 100 (MaxArrivals)", len(got))
	}
	seenKey := false
	for i, r := range got {
		if r.ID != uint64(i+1) {
			t.Fatalf("IDs not sequential: %d at %d", r.ID, i)
		}
		if r.Service != 5*time.Microsecond || r.Remaining != r.Service {
			t.Fatalf("service not set: %+v", r)
		}
		if r.ClientID != 42 {
			t.Fatalf("client id = %d", r.ClientID)
		}
		if r.Arrival != eng.Now() && r.Arrival > eng.Now() {
			t.Fatal("arrival in the future")
		}
		if r.Key != 0 {
			seenKey = true
		}
	}
	if !seenKey {
		t.Fatal("zipf keys never sampled a non-zero key")
	}
	if g.Arrivals() != 100 {
		t.Fatalf("Arrivals() = %d", g.Arrivals())
	}
}

func TestDeterministicStreams(t *testing.T) {
	run := func() []time.Duration {
		eng := sim.New()
		var svc []time.Duration
		g := New(eng, Config{
			RPS:         500_000,
			Service:     dist.Exponential{M: 2 * time.Microsecond},
			Seed:        99,
			MaxArrivals: 500,
		}, func(r *task.Request) { svc = append(svc, r.Service) })
		g.Start()
		eng.Run()
		return svc
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different workloads")
		}
	}
}

func TestConfigValidation(t *testing.T) {
	eng := sim.New()
	sink := func(*task.Request) {}
	for _, f := range []func(){
		func() { New(eng, Config{RPS: 0, Service: dist.Fixed{D: 1}}, sink) },
		func() { New(eng, Config{RPS: 1000}, sink) },
		func() { New(eng, Config{RPS: 1000, Service: dist.Fixed{D: 1}}, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid config did not panic")
				}
			}()
			f()
		}()
	}
}
