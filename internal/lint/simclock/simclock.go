// Package simclock forbids wall-clock and ambient-randomness APIs in
// simulation packages.
//
// Every latency number the reproduction emits must be a deterministic
// function of (config, seed). Code inside the simulation core therefore
// may not observe the host: time must come from the discrete-event
// engine clock (sim.Engine.Now) and randomness from a seeded
// *rand.Rand threaded through the config. Calling time.Now — or any of
// the process-global math/rand helpers, which draw from a shared,
// unseedable source — silently breaks the -j1/-jN byte-identical
// guarantee that CI enforces.
//
// The analyzer skips *_test.go files: tests may legitimately poll the
// wall clock to bound goroutine-leak checks or exercise cancellation.
// Shipped simulator code gets no such exemption.
package simclock

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"mindgap/internal/lint/allow"
	"mindgap/internal/lint/simpkg"
)

var Analyzer = &analysis.Analyzer{
	Name:     "simclock",
	Doc:      "forbid wall-clock reads and global math/rand in simulation packages; use the engine clock and seeded rand.Rand sources",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// forbiddenTime are the package time functions that observe or act on
// the host clock. Pure conversions and constructors over time.Duration
// (ParseDuration, Duration.String, ...) remain legal.
var forbiddenTime = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// randAllowed are the constructors of math/rand and math/rand/v2:
// building an explicitly seeded source is exactly what sim code should
// do. Every other package-level function draws from the global source.
func randAllowed(name string) bool { return strings.HasPrefix(name, "New") }

func hint(pkg, name string) string {
	if pkg == "time" {
		return "use the engine clock (sim.Engine.Now / Engine.At)"
	}
	return "use a seeded *rand.Rand from the run config"
}

func run(pass *analysis.Pass) (any, error) {
	if !simpkg.IsSimPackage(pass.Pkg.Path()) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.Ident)(nil)}, func(n ast.Node) {
		id := n.(*ast.Ident)
		fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return
		}
		if strings.HasSuffix(pass.Fset.Position(id.Pos()).Filename, "_test.go") {
			return
		}
		pkg := fn.Pkg().Path()
		switch pkg {
		case "time":
			if forbiddenTime[fn.Name()] {
				allow.Reportf(pass, id.Pos(), "time.%s is forbidden in simulation package %q: %s", fn.Name(), pass.Pkg.Path(), hint(pkg, fn.Name()))
			}
		case "math/rand", "math/rand/v2":
			// Only package-level functions are globals; methods on
			// *rand.Rand / *rand.Zipf carry their own seeded source.
			if fn.Type().(*types.Signature).Recv() == nil && !randAllowed(fn.Name()) {
				allow.Reportf(pass, id.Pos(), "global %s.%s is forbidden in simulation package %q: %s", pkg, fn.Name(), pass.Pkg.Path(), hint(pkg, fn.Name()))
			}
		}
	})
	return nil, nil
}
