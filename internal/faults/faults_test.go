package faults

import (
	"testing"
	"time"

	"mindgap/internal/sim"
)

func d(v time.Duration) Duration { return Duration(v) }

func validBase() Spec {
	return Spec{
		NICCrash: []Window{{Start: d(10 * time.Millisecond), End: d(14 * time.Millisecond)}},
		Timeout:  d(time.Millisecond),
		Retries:  3,
		Degrade:  true,
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
		ok   bool
	}{
		{"base", func(*Spec) {}, true},
		{"inverted window", func(s *Spec) { s.NICCrash[0].End = d(time.Millisecond) }, false},
		{"zero-length window", func(s *Spec) { s.NICCrash[0].End = s.NICCrash[0].Start }, false},
		{"negative start", func(s *Spec) { s.NICCrash[0].Start = d(-time.Millisecond) }, false},
		{"slow windows without factor", func(s *Spec) {
			s.NICSlow = []Window{{Start: d(time.Millisecond), End: d(2 * time.Millisecond)}}
		}, false},
		{"slow factor without windows", func(s *Spec) { s.NICSlowFactor = 0.5 }, false},
		{"slow factor out of range", func(s *Spec) {
			s.NICSlow = []Window{{Start: d(time.Millisecond), End: d(2 * time.Millisecond)}}
			s.NICSlowFactor = 1.5
		}, false},
		{"valid slowdown", func(s *Spec) {
			s.NICSlow = []Window{{Start: d(time.Millisecond), End: d(2 * time.Millisecond)}}
			s.NICSlowFactor = 0.25
		}, true},
		{"stall workers without windows", func(s *Spec) { s.StallWorkers = []int{1} }, false},
		{"loss rate without windows", func(s *Spec) { s.LossRate = 0.1 }, false},
		{"loss windows without rate", func(s *Spec) {
			s.LinkLoss = []Window{{Start: 0, End: d(time.Millisecond)}}
		}, false},
		{"loss rate above one", func(s *Spec) {
			s.LinkLoss = []Window{{Start: 0, End: d(time.Millisecond)}}
			s.LossRate = 1.5
		}, false},
		{"valid loss bursts", func(s *Spec) {
			s.LossBursts = &Bursts{N: 3, Horizon: d(time.Second), MeanLen: d(time.Millisecond)}
			s.LossRate = 0.5
		}, true},
		{"bursts without n", func(s *Spec) {
			s.LossBursts = &Bursts{Horizon: d(time.Second), MeanLen: d(time.Millisecond)}
			s.LossRate = 0.5
		}, false},
		{"delay windows without extra", func(s *Spec) {
			s.LinkDelay = []Window{{Start: 0, End: d(time.Millisecond)}}
		}, false},
		{"delay extra without windows", func(s *Spec) { s.DelayExtra = d(time.Microsecond) }, false},
		{"retries without timeout", func(s *Spec) { s.Timeout = 0 }, false},
		{"negative retries", func(s *Spec) { s.Retries = -1 }, false},
		{"backoff below one", func(s *Spec) { s.Backoff = 0.5 }, false},
		{"explicit backoff", func(s *Spec) { s.Backoff = 1.5 }, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sp := validBase()
			tc.mut(&sp)
			err := sp.Validate()
			if tc.ok && err != nil {
				t.Fatalf("Validate() = %v, want nil", err)
			}
			if !tc.ok && err == nil {
				t.Fatalf("Validate() = nil, want error")
			}
		})
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	sp := validBase()
	sp.LossBursts = &Bursts{N: 4, Horizon: d(100 * time.Millisecond), MeanLen: d(250 * time.Microsecond)}
	sp.LossRate = 0.05
	b, err := sp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := got.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(b2) {
		t.Fatalf("round trip changed encoding:\n%s\nvs\n%s", b, b2)
	}
}

func TestDecodeRejectsUnknownFields(t *testing.T) {
	if _, err := Decode([]byte(`{"nic_crash":[],"bogus":1}`)); err == nil {
		t.Fatal("Decode accepted an unknown field")
	}
}

func TestDurationForms(t *testing.T) {
	var got Spec
	for _, in := range []string{`{"timeout":"500µs"}`, `{"timeout":500000}`} {
		sp, err := Decode([]byte(in))
		if err != nil {
			t.Fatalf("Decode(%s): %v", in, err)
		}
		got = sp
		if got.Timeout.D() != 500*time.Microsecond {
			t.Fatalf("Decode(%s) timeout = %v, want 500µs", in, got.Timeout.D())
		}
	}
}

func TestStretchOutsideSpans(t *testing.T) {
	tl := mergeWindows([]Window{{Start: d(10 * time.Millisecond), End: d(14 * time.Millisecond)}}, 0)
	// Work that completes before the span starts is untouched.
	if got := tl.stretch(0, 5*time.Millisecond); got != 5*time.Millisecond {
		t.Fatalf("stretch before span = %v, want 5ms", got)
	}
	// Work starting after the span ends is untouched.
	if got := tl.stretch(sim.Time(20*time.Millisecond), time.Millisecond); got != time.Millisecond {
		t.Fatalf("stretch after span = %v, want 1ms", got)
	}
}

func TestStretchThroughCrash(t *testing.T) {
	tl := mergeWindows([]Window{{Start: d(10 * time.Millisecond), End: d(14 * time.Millisecond)}}, 0)
	// 2ms of work starting at 9ms: 1ms runs, 4ms crash, 1ms runs = 6ms wall.
	if got := tl.stretch(sim.Time(9*time.Millisecond), 2*time.Millisecond); got != 6*time.Millisecond {
		t.Fatalf("stretch through crash = %v, want 6ms", got)
	}
	// Work starting inside the crash waits for the end first.
	if got := tl.stretch(sim.Time(12*time.Millisecond), time.Millisecond); got != 3*time.Millisecond {
		t.Fatalf("stretch from inside crash = %v, want 3ms", got)
	}
}

func TestStretchThroughSlowdown(t *testing.T) {
	tl := mergeWindows([]Window{{Start: d(10 * time.Millisecond), End: d(20 * time.Millisecond)}}, 0.5)
	// 2ms of work starting at the span start runs at half rate: 4ms wall.
	if got := tl.stretch(sim.Time(10*time.Millisecond), 2*time.Millisecond); got != 4*time.Millisecond {
		t.Fatalf("stretch in slowdown = %v, want 4ms", got)
	}
	// 6ms of work starting at 18ms: 2ms span capacity is 1ms of work (2ms
	// wall), remaining 5ms runs healthy = 7ms wall.
	if got := tl.stretch(sim.Time(18*time.Millisecond), 6*time.Millisecond); got != 7*time.Millisecond {
		t.Fatalf("stretch across slowdown end = %v, want 7ms", got)
	}
}

func TestStretchNeverShrinks(t *testing.T) {
	tl := mergeWindows([]Window{{Start: d(time.Microsecond), End: d(time.Millisecond)}}, 0.999999)
	for _, work := range []time.Duration{1, 7, time.Microsecond, 333 * time.Nanosecond} {
		for _, at := range []sim.Time{0, 1, sim.Time(time.Microsecond), sim.Time(500 * time.Microsecond)} {
			if got := tl.stretch(at, work); got < work {
				t.Fatalf("stretch(%v, %v) = %v < work", at, work, got)
			}
		}
	}
}

func TestMergeWindowsCoalesces(t *testing.T) {
	tl := mergeWindows([]Window{
		{Start: d(5 * time.Millisecond), End: d(8 * time.Millisecond)},
		{Start: d(1 * time.Millisecond), End: d(3 * time.Millisecond)},
		{Start: d(2 * time.Millisecond), End: d(6 * time.Millisecond)},
	}, 0)
	if len(tl) != 1 {
		t.Fatalf("merged timeline has %d spans, want 1: %+v", len(tl), tl)
	}
	if tl[0].start != sim.Time(time.Millisecond) || tl[0].end != sim.Time(8*time.Millisecond) {
		t.Fatalf("merged span = %+v, want [1ms, 8ms)", tl[0])
	}
}

func TestOverlayCrashWins(t *testing.T) {
	slow := mergeWindows([]Window{{Start: d(0), End: d(10 * time.Millisecond)}}, 0.5)
	crash := mergeWindows([]Window{{Start: d(4 * time.Millisecond), End: d(6 * time.Millisecond)}}, 0)
	tl := overlay(slow, crash)
	if len(tl) != 3 {
		t.Fatalf("overlay produced %d spans, want 3: %+v", len(tl), tl)
	}
	wantFactors := []float64{0.5, 0, 0.5}
	for i, f := range wantFactors {
		if tl[i].factor != f {
			t.Fatalf("span %d factor = %v, want %v (%+v)", i, tl[i].factor, f, tl)
		}
	}
	// 3ms of work at 3ms: the 1ms before the crash runs at half rate
	// (0.5ms of work done), the crash holds 2ms, the next 4ms at half
	// rate do 2ms of work, and the final 0.5ms runs healthy = 7.5ms.
	if got := tl.stretch(sim.Time(3*time.Millisecond), 3*time.Millisecond); got != 7500*time.Microsecond {
		t.Fatalf("stretch over overlay = %v, want 7.5ms", got)
	}
}

func TestScheduleDeterministic(t *testing.T) {
	sp := Spec{
		LossRate:    0.5,
		LossBursts:  &Bursts{N: 16, Horizon: d(50 * time.Millisecond), MeanLen: d(200 * time.Microsecond)},
		DelayExtra:  d(20 * time.Microsecond),
		DelayBursts: &Bursts{N: 8, Horizon: d(50 * time.Millisecond), MeanLen: d(100 * time.Microsecond)},
	}
	a, b := New(sp, 7), New(sp, 7)
	if len(a.loss) == 0 || len(a.delay) == 0 {
		t.Fatal("burst materialization produced no windows")
	}
	for i := range a.loss {
		if a.loss[i] != b.loss[i] {
			t.Fatalf("loss span %d differs across same-seed schedules", i)
		}
	}
	for i := range a.delay {
		if a.delay[i] != b.delay[i] {
			t.Fatalf("delay span %d differs across same-seed schedules", i)
		}
	}
	// Same spec, different seed: windows must move.
	c := New(sp, 8)
	same := len(a.loss) == len(c.loss)
	if same {
		for i := range a.loss {
			if a.loss[i] != c.loss[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical burst windows")
	}
	// The per-message draw stream is deterministic too.
	for i := 0; i < 1000; i++ {
		now := sim.Time(i) * sim.Time(50*time.Microsecond)
		da, ea := a.LinkFault(now)
		db, eb := b.LinkFault(now)
		if da != db || ea != eb {
			t.Fatalf("LinkFault diverged at %v", now)
		}
	}
	if a.LossDrops() != b.LossDrops() || a.DelayHits() != b.DelayHits() {
		t.Fatal("fault counters diverged across same-seed schedules")
	}
}

func TestAttemptTimeout(t *testing.T) {
	s := New(Spec{Timeout: d(time.Millisecond), Retries: 3}, 1)
	if got := s.AttemptTimeout(0); got != time.Millisecond {
		t.Fatalf("attempt 0 timeout = %v, want 1ms", got)
	}
	// Default backoff is 2x per attempt.
	if got := s.AttemptTimeout(2); got != 4*time.Millisecond {
		t.Fatalf("attempt 2 timeout = %v, want 4ms", got)
	}
	s = New(Spec{Timeout: d(time.Millisecond), Retries: 1, Backoff: 1}, 1)
	if got := s.AttemptTimeout(3); got != time.Millisecond {
		t.Fatalf("attempt 3 timeout with backoff 1 = %v, want 1ms", got)
	}
}

func TestWorkerStretchSelectsWorkers(t *testing.T) {
	sp := Spec{
		WorkerStall:  []Window{{Start: d(time.Millisecond), End: d(2 * time.Millisecond)}},
		StallWorkers: []int{1, 3},
	}
	s := New(sp, 1)
	if s.WorkerStretch(0) != nil || s.WorkerStretch(2) != nil {
		t.Fatal("unlisted workers got a stretch hook")
	}
	if s.WorkerStretch(1) == nil || s.WorkerStretch(3) == nil {
		t.Fatal("listed workers missing their stretch hook")
	}
	// An empty StallWorkers list stalls everyone.
	all := New(Spec{WorkerStall: sp.WorkerStall}, 1)
	if all.WorkerStretch(0) == nil || all.WorkerStretch(7) == nil {
		t.Fatal("empty stall_workers should stall every worker")
	}
}

func TestNICDownAndRecovery(t *testing.T) {
	s := New(validBase(), 1)
	if s.NICDown(sim.Time(9 * time.Millisecond)) {
		t.Fatal("NICDown before the crash window")
	}
	if !s.NICDown(sim.Time(10 * time.Millisecond)) {
		t.Fatal("NICDown false at crash start (window is half-open)")
	}
	if s.NICDown(sim.Time(14 * time.Millisecond)) {
		t.Fatal("NICDown true at crash end (window is half-open)")
	}
	if got := s.NICRecoveryAt(sim.Time(12 * time.Millisecond)); got != sim.Time(14*time.Millisecond) {
		t.Fatalf("NICRecoveryAt inside crash = %v, want 14ms", got)
	}
	if got := s.NICRecoveryAt(sim.Time(20 * time.Millisecond)); got != sim.Time(20*time.Millisecond) {
		t.Fatalf("NICRecoveryAt outside crash = %v, want now", got)
	}
}

func TestEmpty(t *testing.T) {
	var nilSpec *Spec
	if !nilSpec.Empty() {
		t.Fatal("nil spec should be Empty")
	}
	z := &Spec{}
	if !z.Empty() {
		t.Fatal("zero spec should be Empty")
	}
	v := validBase()
	if (&v).Empty() {
		t.Fatal("populated spec should not be Empty")
	}
}
