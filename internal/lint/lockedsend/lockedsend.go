// Package lockedsend flags blocking channel operations performed while
// a sync.Mutex or sync.RWMutex is held.
//
// This is a real deadlock class in the telemetry and runner hot paths:
// a goroutine that sends on an unbuffered (or full) channel while
// holding a registry mutex blocks until a receiver runs — and if that
// receiver needs the same mutex (to snapshot counters, say), the
// program wedges. The analysis is lexical and per-function: it tracks
// Lock/RLock and Unlock/RUnlock calls in statement order and reports
// sends, receives, and blocking selects that occur while at least one
// mutex is held. A `defer mu.Unlock()` keeps the mutex held to the end
// of the function, which is exactly how the deadlock usually ships.
//
// A select statement with a default clause is non-blocking and is not
// reported — that is the sanctioned pattern for best-effort emission
// (drop the sample rather than stall the simulator) under a lock.
package lockedsend

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"mindgap/internal/lint/allow"
)

var Analyzer = &analysis.Analyzer{
	Name:     "lockedsend",
	Doc:      "flag blocking channel operations while a sync.Mutex/RWMutex is held",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (any, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	// Each function body is analyzed independently with no mutexes
	// held: the lock set is lexical, not interprocedural.
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}, func(n ast.Node) {
		w := &walker{pass: pass}
		var body *ast.BlockStmt
		switch n := n.(type) {
		case *ast.FuncDecl:
			body = n.Body
		case *ast.FuncLit:
			body = n.Body
		}
		if body != nil {
			w.stmts(body.List, nil)
		}
	})
	return nil, nil
}

type walker struct {
	pass *analysis.Pass
}

// held maps a mutex variable (or field) to the position where it was
// locked. Maps are copied at branch points, so a lock taken inside an
// if-arm does not leak into the statements after it.
type held map[types.Object]token.Pos

func (h held) clone() held {
	c := make(held, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

// any returns an arbitrary-but-deterministic held mutex to name in the
// diagnostic: the one locked at the smallest position.
func (h held) any() (types.Object, token.Pos) {
	var best types.Object
	var bestPos token.Pos
	for o, p := range h {
		if best == nil || p < bestPos {
			best, bestPos = o, p
		}
	}
	return best, bestPos
}

// mutexCall reports whether e is a call m.Lock/RLock/Unlock/RUnlock on
// a sync.Mutex or sync.RWMutex, returning the mutex object and whether
// the call acquires (true) or releases (false).
func (w *walker) mutexCall(e ast.Expr) (obj types.Object, acquire, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return nil, false, false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, false, false
	}
	var rel bool
	switch sel.Sel.Name {
	case "Lock", "RLock":
	case "Unlock", "RUnlock":
		rel = true
	default:
		return nil, false, false
	}
	recv := w.pass.TypesInfo.TypeOf(sel.X)
	if recv == nil {
		return nil, false, false
	}
	if p, isPtr := recv.Underlying().(*types.Pointer); isPtr {
		recv = p.Elem()
	}
	named, isNamed := recv.(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return nil, false, false
	}
	if name := named.Obj().Name(); name != "Mutex" && name != "RWMutex" {
		return nil, false, false
	}
	return exprObj(w.pass, sel.X), !rel, true
}

func exprObj(pass *analysis.Pass, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return pass.TypesInfo.ObjectOf(x)
	case *ast.SelectorExpr:
		return pass.TypesInfo.ObjectOf(x.Sel)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return exprObj(pass, x.X)
		}
	}
	return nil
}

func (w *walker) report(pos token.Pos, what string, h held) {
	obj, lockPos := h.any()
	name := "mutex"
	if obj != nil {
		name = obj.Name()
	}
	allow.Reportf(w.pass, pos, "%s while %q is held (locked at %s): blocking under a mutex can deadlock with the receiver",
		what, name, w.pass.Fset.Position(lockPos))
}

// stmts walks a statement list in order, threading the lock set through
// and returning the set live after the last statement.
func (w *walker) stmts(list []ast.Stmt, h held) held {
	for _, s := range list {
		h = w.stmt(s, h)
	}
	return h
}

func (w *walker) stmt(s ast.Stmt, h held) held {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if obj, acquire, ok := w.mutexCall(s.X); ok {
			h = h.clone()
			if acquire {
				if h == nil {
					h = make(held)
				}
				h[obj] = s.Pos()
			} else {
				delete(h, obj)
			}
			return h
		}
		w.exprs(h, s.X)
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the mutex held for the rest of the
		// function body; any other deferred call runs at return, not
		// in map... not in lock order, so only its operands matter.
		if _, _, ok := w.mutexCall(s.Call); !ok {
			for _, a := range s.Call.Args {
				w.exprs(h, a)
			}
		}
	case *ast.SendStmt:
		if len(h) > 0 {
			w.report(s.Arrow, "send on channel", h)
		}
		w.exprs(h, s.Chan, s.Value)
	case *ast.AssignStmt:
		w.exprs(h, s.Rhs...)
		w.exprs(h, s.Lhs...)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					w.exprs(h, vs.Values...)
				}
			}
		}
	case *ast.ReturnStmt:
		w.exprs(h, s.Results...)
	case *ast.IncDecStmt:
		w.exprs(h, s.X)
	case *ast.GoStmt:
		// The spawned goroutine does not hold this goroutine's locks;
		// its body is analyzed separately. Arguments are evaluated
		// here, though.
		for _, a := range s.Call.Args {
			w.exprs(h, a)
		}
	case *ast.BlockStmt:
		// A bare block is not a branch: locks taken inside persist.
		h = w.stmts(s.List, h)
	case *ast.IfStmt:
		if s.Init != nil {
			h = w.stmt(s.Init, h)
		}
		w.exprs(h, s.Cond)
		w.stmts(s.Body.List, h.clone())
		if s.Else != nil {
			w.stmt(s.Else, h.clone())
		}
	case *ast.ForStmt:
		if s.Init != nil {
			h = w.stmt(s.Init, h)
		}
		if s.Cond != nil {
			w.exprs(h, s.Cond)
		}
		w.stmts(s.Body.List, h.clone())
	case *ast.RangeStmt:
		w.exprs(h, s.X)
		w.stmts(s.Body.List, h.clone())
	case *ast.SwitchStmt:
		if s.Init != nil {
			h = w.stmt(s.Init, h)
		}
		if s.Tag != nil {
			w.exprs(h, s.Tag)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, h.clone())
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, h.clone())
			}
		}
	case *ast.SelectStmt:
		blocking := true
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				blocking = false // has a default clause
			}
		}
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			if cc.Comm != nil && blocking && len(h) > 0 {
				w.report(cc.Comm.Pos(), "blocking select communication", h)
			}
			w.stmts(cc.Body, h.clone())
		}
	case *ast.LabeledStmt:
		h = w.stmt(s.Stmt, h)
	}
	return h
}

// exprs reports blocking channel receives (<-ch) appearing in the given
// expressions while h is non-empty, without descending into function
// literals (their bodies run with their own lock context).
func (w *walker) exprs(h held, es ...ast.Expr) {
	if len(h) == 0 {
		return
	}
	for _, e := range es {
		if e == nil {
			continue
		}
		ast.Inspect(e, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					w.report(n.OpPos, "receive from channel", h)
				}
			}
			return true
		})
	}
}
