package simclock_test

import (
	"testing"

	"mindgap/internal/lint/linttest"
	"mindgap/internal/lint/simclock"
)

func TestSimPackage(t *testing.T) {
	linttest.Run(t, simclock.Analyzer, "mindgap/internal/sim", "testdata/sim")
}

func TestLiveExempt(t *testing.T) {
	linttest.Run(t, simclock.Analyzer, "mindgap/internal/live", "testdata/live")
}

func TestCmdExempt(t *testing.T) {
	linttest.Run(t, simclock.Analyzer, "mindgap/cmd/demo", "testdata/cmd")
}
