package experiment

import (
	"mindgap/internal/dist"
	"mindgap/internal/scenario"
)

// This file exports the preset-compilation internals that the hypothesis
// layer (internal/hypothesis) builds on. A hypothesis arm is an inline
// scenario.Spec measured through exactly the same path as a preset
// series point — same PointConfig compilation, same fingerprint-derived
// cache keys — so A/B verdicts share the runner cache with the figures
// and tables that measure the same scenarios.

// QualityFor resolves the effective sample counts and seed for one spec:
// the run-time quality, overridden by any spec-pinned QualitySpec, with a
// spec-pinned seed winning over the quality's.
func QualityFor(sp scenario.Spec, q Quality) Quality { return qualityFor(sp, q) }

// PointConfigFor compiles a spec into a runnable point config (offered
// load left to the caller): registry build, workload parse, keys, and
// effective quality.
func PointConfigFor(sp scenario.Spec, q Quality) (PointConfig, error) {
	return pointConfigFor(sp, q)
}

// SpecPointKey builds the cache identity of one measured point from the
// spec fingerprint with the offered load, effective quality and seed
// baked in. Two callers that describe the same scenario share cache
// entries regardless of which sweep asked first.
func SpecPointKey(sweepID string, sp scenario.Spec, q Quality, rps float64, extra ...string) string {
	return specPointKey(sweepID, sp, q, rps, extra...)
}

// SpecLoads resolves a spec's load declaration into offered-RPS values
// using the same rho·workers/mean formula the preset compiler applies,
// so utilization-derived hypothesis arms produce bit-identical loads —
// and therefore shared cache keys — with any preset describing the same
// scenario.
func SpecLoads(sp scenario.Spec) ([]float64, error) {
	svc, err := dist.Parse(sp.Workload)
	if err != nil {
		return nil, err
	}
	return specLoads(sp, svc), nil
}

// RunAttributionPoint measures one spec at one offered load with a fresh
// attribution collector attached (never shared across concurrent sweep
// points), returning the waterfall and decision-audit row.
func RunAttributionPoint(sp scenario.Spec, eq Quality, rps float64) AttributionRow {
	return runAttributionPoint(sp, eq, rps)
}
