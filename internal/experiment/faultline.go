package experiment

import (
	"fmt"
	"time"

	"mindgap/internal/core"
	"mindgap/internal/loadgen"
	"mindgap/internal/sim"
	"mindgap/internal/stats"
	"mindgap/internal/task"
	"mindgap/scenarios"
)

// This file renders the fault-recovery timeline: one faulted run chopped
// into phases around the injected NIC crash windows, showing goodput and
// tail latency degrading while the ARM cores are down (degraded
// hash-steering keeps a reduced service running, §2.1) and recovering
// once the crash window closes.

// FaultPhase is one row of the recovery table: completions observed in
// [Start, End) of a faulted run.
type FaultPhase struct {
	// Phase names the interval: healthy, crash, recovery, or recovered
	// (crash presets), or faulted for presets without crash windows.
	Phase      string
	Start, End time.Duration
	// Completed counts requests whose response landed inside the phase;
	// GoodputRPS is that count over the phase length.
	Completed  int64
	GoodputRPS float64
	// P50/P99/Max summarize the latency of those completions.
	P50, P99, Max time.Duration
}

// FaultTimelineResult is the rendered recovery table for one preset's
// faulted series, with the fault engine's own accounting alongside.
type FaultTimelineResult struct {
	Preset, Label string
	OfferedRPS    float64
	Phases        []FaultPhase
	// Retries/TimeoutDrops/Degraded come from the offload system's
	// timeout-retry machinery; LossDrops/DelayHits from the fabric fault
	// hook; RecorderDrops is every drop the stats recorder saw (ring
	// overflows, frame losses, and retry-budget abandonments combined).
	Retries, TimeoutDrops, Degraded uint64
	LossDrops, DelayHits            uint64
	RecorderDrops                   int64
}

// faultObs is one completion: when it finished and how long it took.
type faultObs struct {
	at  sim.Time
	lat time.Duration
}

// FaultTimeline runs the first faulted series of the named preset at the
// top of its load grid — where degraded hash steering visibly hurts the
// tail, which is the point of the table — and buckets completions into
// phases derived from the compiled fault schedule's crash windows. The
// run is a single deterministic simulation (no sweep): same preset, same
// bytes out.
func FaultTimeline(presetID string, q Quality) (FaultTimelineResult, error) {
	p, err := scenarios.Load(presetID)
	if err != nil {
		return FaultTimelineResult{}, err
	}
	idx := -1
	for i := range p.Series {
		if p.SpecFor(i).Faults != nil {
			idx = i
			break
		}
	}
	if idx < 0 {
		return FaultTimelineResult{}, fmt.Errorf("experiment: preset %q has no faulted series", presetID)
	}
	sp := p.SpecFor(idx)
	cfg, err := pointConfigFor(sp, q)
	if err != nil {
		return FaultTimelineResult{}, err
	}
	loads := specLoads(sp, cfg.Service)
	if len(loads) == 0 {
		return FaultTimelineResult{}, fmt.Errorf("experiment: preset %q declares no load", presetID)
	}
	rps := loads[len(loads)-1]

	eng := sim.New()
	rec := &stats.Recorder{}
	rec.Arm(0)
	var obs []faultObs
	done := func(r *task.Request) {
		lat := r.Latency(eng.Now())
		rec.RecordLatency(lat)
		obs = append(obs, faultObs{at: eng.Now(), lat: lat})
	}
	sys := cfg.Factory(eng, rec, done)
	sys.ArmWorkerTrackers(0)

	off, ok := sys.(*core.Offload)
	if !ok || off.FaultSchedule() == nil {
		return FaultTimelineResult{}, fmt.Errorf("experiment: preset %q did not build a faulted offload system", presetID)
	}
	sched := off.FaultSchedule()

	// Phase boundaries: lead-in, the first crash window, an equal-length
	// recovery interval, then a recovered tail as long as the lead-in.
	// Presets without crash windows get one whole-run "faulted" phase
	// sized to the quality's measurement count.
	type bound struct {
		name       string
		start, end time.Duration
	}
	var bounds []bound
	var horizon time.Duration
	if ws := sched.CrashWindows(); len(ws) > 0 {
		start, end := ws[0].Start.D(), ws[0].End.D()
		crashLen := end - start
		horizon = end + crashLen + start
		bounds = []bound{
			{"healthy", 0, start},
			{"crash", start, end},
			{"recovery", end, end + crashLen},
			{"recovered", end + crashLen, horizon},
		}
	} else {
		horizon = time.Duration(float64(q.Measure) / rps * float64(time.Second))
		bounds = []bound{{"faulted", 0, horizon}}
	}

	gen := loadgen.New(eng, loadgen.Config{
		RPS:     rps,
		Service: cfg.Service,
		Keys:    cfg.Keys,
		Seed:    cfg.Seed,
	}, sys.Inject)
	gen.Start()
	eng.At(sim.Time(horizon), func() {
		rec.Stop(eng.Now())
		eng.Halt()
	})
	eng.Run()

	res := FaultTimelineResult{
		Preset:        presetID,
		Label:         p.Series[idx].Label,
		OfferedRPS:    rps,
		Retries:       off.Retries(),
		TimeoutDrops:  off.TimeoutDrops(),
		Degraded:      off.DegradedSteered(),
		LossDrops:     sched.LossDrops(),
		DelayHits:     sched.DelayHits(),
		RecorderDrops: rec.Dropped(),
	}
	for _, b := range bounds {
		var h stats.Histogram
		for _, o := range obs {
			if o.at >= sim.Time(b.start) && o.at < sim.Time(b.end) {
				h.Record(o.lat)
			}
		}
		res.Phases = append(res.Phases, FaultPhase{
			Phase:      b.name,
			Start:      b.start,
			End:        b.end,
			Completed:  h.Count(),
			GoodputRPS: float64(h.Count()) / (b.end - b.start).Seconds(),
			P50:        h.P50(),
			P99:        h.P99(),
			Max:        h.Max(),
		})
	}
	return res, nil
}

// FaultPresetIDs lists the checked-in fault presets the faults table
// renders, in output order.
func FaultPresetIDs() []string {
	return []string{"figure-faults-niccrash", "figure-faults-lossyfabric"}
}
