package experiment

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"

	"mindgap/internal/params"
	"mindgap/internal/runner"
)

// This file is the bridge between the experiment definitions and the
// parallel sweep runner (internal/runner): it declares figure grids as
// runner sweeps, assigns every point a stable cache key, and assembles
// executed sweeps back into Figures.

// paramsSig fingerprints the calibrated model constants, so cached results
// are invalidated when the calibration (params.Default) changes.
var paramsSig = sync.OnceValue(func() string {
	b, err := json.Marshal(params.Default())
	if err != nil {
		// Params is a plain struct of numbers; Marshal cannot fail. Guard
		// anyway: an empty signature merely widens cache collisions across
		// calibrations, it never corrupts results.
		return "params-unknown"
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8])
})

// pointKey builds the cache identity of one measured point. sweepID and
// label must together uniquely describe the system configuration (the
// Factory closure is not introspectable); the remaining inputs come from
// the point config and the calibration fingerprint. extra salts encode
// per-point config not visible in cfg (e.g. Figure 3's k).
func pointKey(sweepID, label string, cfg PointConfig, extra ...string) string {
	if sweepID == "" {
		return "" // anonymous sweeps are not cacheable
	}
	keys := "-"
	if cfg.Keys != nil {
		keys = cfg.Keys.String()
	}
	k := fmt.Sprintf("%s|%s|svc=%s|keys=%s|rps=%g|warm=%d|meas=%d|seed=%d|maxt=%s|params=%s",
		sweepID, label, cfg.Service, keys, cfg.OfferedRPS,
		cfg.Warmup, cfg.Measure, cfg.Seed, cfg.MaxSimTime, paramsSig())
	for _, e := range extra {
		k += "|" + e
	}
	return k
}

// LoadSeries declares one figure curve: cfg swept across the offered-load
// grid, stopping after the second consecutive saturated point. sweepID
// enables caching ("" disables it); it must be unique per figure.
func LoadSeries(sweepID, label string, cfg PointConfig, loads []float64) runner.Series[Result] {
	pts := make([]runner.Point[Result], len(loads))
	for i, rps := range loads {
		c := cfg
		c.OfferedRPS = rps
		pts[i] = runner.Point[Result]{
			Key: pointKey(sweepID, label, c),
			Run: func() Result { return RunPoint(c) },
		}
	}
	return runner.Series[Result]{Label: label, Points: pts, StopAfterSaturated: 2}
}

// FigureSpec is a declarative, runnable figure: presentation metadata plus
// the sweep that measures its curves.
type FigureSpec struct {
	ID             string
	Title          string
	XLabel, YLabel string
	Sweep          runner.Sweep[Result]
}

// Run executes the spec's sweep on r (nil = default parallel runner) and
// assembles the Figure. On cancellation it returns the partially measured
// figure — every series holds its correctly-ordered completed prefix —
// together with the context error.
func (s FigureSpec) Run(ctx context.Context, r *runner.Runner) (Figure, error) {
	res, err := runner.Run(ctx, r, s.Sweep)
	f := Figure{ID: s.ID, Title: s.Title, XLabel: s.XLabel, YLabel: s.YLabel}
	for _, sr := range res {
		f.Series = append(f.Series, Series{Label: sr.Label, Results: sr.Results})
	}
	return f, err
}

// mustFigure runs a spec on the default parallel runner, for the
// convenience wrappers (Figure2..Figure6 etc.) whose callers hold no
// context; with a background context the error path is unreachable.
func mustFigure(s FigureSpec) Figure {
	f, _ := s.Run(context.Background(), nil)
	return f
}
