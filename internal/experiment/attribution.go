package experiment

import (
	"context"
	"fmt"
	"time"

	"mindgap/internal/attr"
	"mindgap/internal/dist"
	"mindgap/internal/runner"
	"mindgap/internal/scenario"
)

// This file runs the attribution table: the same scenario measured under
// informed offload and its baselines, with a latency-attribution
// collector attached, so the end-to-end percentiles every other table
// reports can be split into where the time actually went — and every
// dispatch decision graded against the ground-truth backlog the
// scheduler could not see.

// attributionTailK is the slowest-K reservoir size used by the table:
// enough requests for the tail share to be stable at quick quality
// without retaining full timelines.
const attributionTailK = 32

// PhaseRow is one phase of a system's latency waterfall.
type PhaseRow struct {
	// Phase is the phase name (ingress, nic-queue, host-queue, ...).
	Phase string
	// Mean, P50 and P99 summarize the per-request time spent in the phase.
	Mean, P50, P99 time.Duration
	// MeanShare is the phase's fraction of total mean latency; TailShare
	// is its fraction within the slowest-K requests — where the p99 lives.
	MeanShare, TailShare float64
}

// AttributionRow is one measured system of the attribution table: the
// usual latency point plus its phase waterfall and decision audit.
type AttributionRow struct {
	// Label names the series (from the preset).
	Label string
	// Result is the conventional measured point.
	Result Result
	// Phases is the latency waterfall, in phase order.
	Phases []PhaseRow
	// Audit grades every dispatch decision against ground truth.
	Audit attr.AuditSummary
}

// HostQueueTailShare returns the host-queue phase's share of tail
// latency — the single number the paper's thesis predicts collapses
// under informed offload (requests wait at the NIC, where the scheduler
// can see them, instead of behind a blind core's backlog).
func (r AttributionRow) HostQueueTailShare() float64 {
	for _, p := range r.Phases {
		if p.Phase == attr.PhaseHostQueue.String() {
			return p.TailShare
		}
	}
	return 0
}

// runAttributionPoint measures one spec at one offered load with a fresh
// collector. The collector is created inside the point run — never shared
// across concurrent sweep points — so attribution tables are
// byte-identical at any runner parallelism.
func runAttributionPoint(sp scenario.Spec, eq Quality, rps float64) AttributionRow {
	col := attr.New(attr.Config{TailK: attributionTailK})
	f, err := scenario.BuildWith(sp, scenario.Options{Attr: col})
	if err != nil {
		// The spec already built once during series compilation.
		panic(fmt.Sprintf("experiment: attribution rebuild failed: %v", err))
	}
	svc, err := dist.Parse(sp.Workload)
	if err != nil {
		panic(fmt.Sprintf("experiment: attribution workload reparse failed: %v", err))
	}
	cfg := PointConfig{
		Factory:    f,
		Service:    svc,
		OfferedRPS: rps,
		Warmup:     eq.Warmup,
		Measure:    eq.Measure,
		Seed:       eq.Seed,
	}
	if sp.Keys != nil {
		cfg.Keys = sp.Keys.Keys()
	}
	res := RunPoint(cfg)
	row := AttributionRow{Label: sp.Name, Result: res, Audit: col.AuditSummary()}
	for _, ps := range col.PhaseStats() {
		row.Phases = append(row.Phases, PhaseRow{
			Phase:     ps.Phase.String(),
			Mean:      ps.Mean,
			P50:       ps.P50,
			P99:       ps.P99,
			MeanShare: ps.MeanShare,
			TailShare: ps.TailShare,
		})
	}
	return row
}

// attributionSeries compiles one resolved spec into a runner series of
// attribution rows. Cache keys are salted so attribution rows never
// collide with plain Result entries for the same scenario.
func attributionSeries(sweepID, label string, sp scenario.Spec, q Quality) (runner.Series[AttributionRow], error) {
	if _, err := scenario.Build(sp); err != nil {
		return runner.Series[AttributionRow]{}, err
	}
	svc, err := dist.Parse(sp.Workload)
	if err != nil {
		return runner.Series[AttributionRow]{}, err
	}
	eq := qualityFor(sp, q)
	loads := specLoads(sp, svc)
	pts := make([]runner.Point[AttributionRow], len(loads))
	for i, rps := range loads {
		sp, rps := sp, rps
		pts[i] = runner.Point[AttributionRow]{
			Key: specPointKey(sweepID, sp, eq, rps, "attr1"),
			Run: func() AttributionRow { return runAttributionPoint(sp, eq, rps) },
		}
	}
	return runner.Series[AttributionRow]{Label: label, Points: pts}, nil
}

// AttributionWith runs the table-attribution preset on rn: informed
// offload vs. its baselines at the same fixed load, each with a collector
// attached, returning one row per series.
func AttributionWith(ctx context.Context, rn *runner.Runner, q Quality) ([]AttributionRow, error) {
	p := mustPreset("table-attribution")
	sw := runner.Sweep[AttributionRow]{Name: p.ID}
	for i := range p.Series {
		s, err := attributionSeries(p.ID, p.Series[i].Label, p.SpecFor(i), q)
		if err != nil {
			return nil, fmt.Errorf("experiment: preset %q series %q: %w", p.ID, p.Series[i].Label, err)
		}
		sw.Series = append(sw.Series, s)
	}
	res, err := runner.Run(ctx, rn, sw)
	var out []AttributionRow
	for _, sr := range res {
		out = append(out, sr.Results...)
	}
	return out, err
}

// Attribution runs the attribution table on the default parallel runner.
func Attribution(q Quality) []AttributionRow {
	r, _ := AttributionWith(context.Background(), nil, q)
	return r
}
