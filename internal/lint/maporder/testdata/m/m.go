// Fixture for maporder: order-sensitive emission from map-range loops.
// The package path does not matter — maporder runs repo-wide.
package m

import (
	"fmt"
	"os"
	"sort"
	"strings"
)

func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append inside map-range loop without a later sort`
	}
	return keys
}

func printRange(m map[string]int, b *strings.Builder) {
	for k, v := range m {
		fmt.Fprintf(os.Stdout, "%s=%d\n", k, v) // want `fmt\.Fprintf inside map-range loop`
		b.WriteString(k)                        // want `WriteString call inside map-range loop`
	}
}

func sendRange(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want `send on channel inside map-range loop`
	}
}

func accumulate(m map[string]float64) (float64, string) {
	var sum float64
	var s string
	for k, v := range m {
		sum += v // want `floating-point accumulation inside map-range loop`
		s += k   // want `string concatenation inside map-range loop`
	}
	return sum, s
}

func indexWrite(m map[string]int) []string {
	keys := make([]string, len(m))
	i := 0
	for k := range m {
		keys[i] = k // want `slice element written in map-range order without a later sort`
		i++
	}
	return keys
}

// Negative: the canonical collect-then-sort idiom must not be flagged —
// it is the fix the analyzer asks for.
func collectSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Negative: index-write variant of the same idiom, sorted with
// sort.Slice after the loop.
func indexWriteSorted(m map[string]int) []string {
	keys := make([]string, len(m))
	i := 0
	for k := range m {
		keys[i] = k
		i++
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	return keys
}

// Negative: integer accumulation commutes; map order cannot change the
// result.
func intSum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Negative: ranging over a slice is ordered; append is fine.
func sliceAppend(items []string) []string {
	var out []string
	for _, it := range items {
		out = append(out, it)
	}
	return out
}

// Negative: a function literal built inside the loop runs later (or
// never); it does not emit in map-range order at this site.
func closures(m map[string]int) []func() string {
	keys := make([]string, 0, len(m))
	var fns []func() string // collected below, then sorted via keys
	for k := range m {
		keys = append(keys, k)
		k := k
		_ = func() string { return fmt.Sprintf("%s", k) }
	}
	sort.Strings(keys)
	for _, k := range keys {
		k := k
		fns = append(fns, func() string { return k })
	}
	return fns
}
