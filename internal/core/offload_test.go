package core

import (
	"testing"
	"time"

	"mindgap/internal/dist"
	"mindgap/internal/loadgen"
	"mindgap/internal/params"
	"mindgap/internal/sim"
	"mindgap/internal/stats"
	"mindgap/internal/task"
	"mindgap/internal/trace"
)

// runOffload drives an Offload system with an open-loop workload and
// returns the recorder after `measure` completions (no warmup here; the
// experiment harness handles warmup for real runs).
func runOffload(t *testing.T, cfg OffloadConfig, rps float64, svc dist.Distribution, measure int) (*stats.Recorder, *Offload, *sim.Engine) {
	t.Helper()
	eng := sim.New()
	rec := &stats.Recorder{}
	rec.Arm(0)
	completions := 0
	var sys *Offload
	sys = NewOffload(eng, cfg, rec, func(r *task.Request) {
		rec.RecordLatency(r.Latency(eng.Now()))
		completions++
		if completions >= measure {
			eng.Halt()
		}
	})
	sys.ArmWorkerTrackers(0)
	gen := loadgen.New(eng, loadgen.Config{RPS: rps, Service: svc, Seed: 42}, sys.Inject)
	gen.Start()
	eng.Run()
	if completions < measure {
		t.Fatalf("only %d/%d completions before engine drained", completions, measure)
	}
	return rec, sys, eng
}

func defaultCfg(workers, k int, slice time.Duration) OffloadConfig {
	return OffloadConfig{
		P:           params.Default(),
		Workers:     workers,
		Outstanding: k,
		Slice:       slice,
		Policy:      LeastOutstanding,
	}
}

func TestOffloadSingleRequestPath(t *testing.T) {
	eng := sim.New()
	p := params.Default()
	var doneAt sim.Time
	var done *task.Request
	sys := NewOffload(eng, defaultCfg(1, 1, 0), nil, func(r *task.Request) {
		done = r
		doneAt = eng.Now()
	})
	req := task.New(1, 0, time.Microsecond)
	sys.Inject(req)
	eng.Run()
	if done != req || !req.Done() {
		t.Fatal("request did not complete")
	}
	lat := doneAt.Duration()
	// Lower bound: two client wire hops, one NIC→host dispatch hop (the
	// response goes straight from the worker to the wire; the FINISH
	// notification is off the latency path), and the service time.
	floor := 2*p.ClientWireOneWay + p.NicHostOneWay + time.Microsecond
	if lat < floor {
		t.Fatalf("latency %v below physical floor %v", lat, floor)
	}
	// Upper bound: floor plus all per-stage costs with generous slack.
	if lat > floor+4*time.Microsecond {
		t.Fatalf("latency %v too far above floor %v", lat, floor)
	}
	if req.Assignments != 1 || req.Preemptions != 0 {
		t.Fatalf("assignments=%d preemptions=%d", req.Assignments, req.Preemptions)
	}
}

func TestOffloadConservation(t *testing.T) {
	// Every injected request completes exactly once, with no drops.
	rec, sys, _ := runOffload(t, defaultCfg(4, 4, 10*time.Microsecond),
		300_000, dist.Bimodal{P1: 0.995, D1: 5 * time.Microsecond, D2: 100 * time.Microsecond}, 5000)
	if rec.Dropped() != 0 {
		t.Fatalf("drops = %d", rec.Dropped())
	}
	if got := rec.Completed(); got != 5000 {
		t.Fatalf("completed = %d", got)
	}
	if sys.Completions() < 5000 {
		t.Fatalf("worker completions = %d", sys.Completions())
	}
}

func TestOffloadPreemptionProtectsShortRequests(t *testing.T) {
	// One 100µs request then a stream of 5µs requests on one worker. With
	// a 10µs slice the short requests must not wait for the long one.
	eng := sim.New()
	cfg := defaultCfg(1, 2, 10*time.Microsecond)
	var latencies = map[uint64]time.Duration{}
	sys := NewOffload(eng, cfg, nil, func(r *task.Request) {
		latencies[r.ID] = r.Latency(eng.Now())
	})
	long := task.New(1, 0, 100*time.Microsecond)
	sys.Inject(long)
	for i := uint64(2); i <= 4; i++ {
		i := i
		eng.After(time.Duration(i)*time.Microsecond, func() {
			sys.Inject(task.New(i, eng.Now(), 5*time.Microsecond))
		})
	}
	eng.Run()
	if len(latencies) != 4 {
		t.Fatalf("completions = %d", len(latencies))
	}
	if long.Preemptions == 0 {
		t.Fatal("long request never preempted")
	}
	for id := uint64(2); id <= 4; id++ {
		// Without preemption a short request behind 100µs of work would
		// see ≥100µs; with 10µs slices it must stay far below that.
		if latencies[id] >= 100*time.Microsecond {
			t.Fatalf("short request %d latency %v: head-of-line blocked", id, latencies[id])
		}
	}
	// The long request must still finish, paying for its preemptions.
	if latencies[1] < 100*time.Microsecond {
		t.Fatalf("long request latency %v impossibly low", latencies[1])
	}
}

func TestOffloadNoPreemptionWhenSliceZero(t *testing.T) {
	rec, _, _ := runOffload(t, defaultCfg(2, 2, 0),
		200_000, dist.Fixed{D: 5 * time.Microsecond}, 2000)
	if rec.Preemptions() != 0 {
		t.Fatalf("preemptions = %d with slice disabled", rec.Preemptions())
	}
}

func TestOffloadQueuingOptimizationThroughput(t *testing.T) {
	// Figure 3 mechanism: at saturation, k=5 must beat k=1 substantially
	// for a small worker count (paper: +250%).
	measure := 4000
	throughput := func(k int) float64 {
		rec, _, eng := runOffload(t, defaultCfg(4, k, 0),
			3_000_000, // far beyond capacity: saturating load
			dist.Fixed{D: time.Microsecond}, measure)
		return rec.Throughput(eng.Now())
	}
	t1 := throughput(1)
	t5 := throughput(5)
	if t5 < 2*t1 {
		t.Fatalf("k=5 throughput %.0f not ≥ 2× k=1 throughput %.0f", t5, t1)
	}
}

func TestOffloadDispatcherIsBottleneckAtHighWorkerCount(t *testing.T) {
	// Figure 6 mechanism: with 16 workers and 1µs requests the ARM
	// dispatcher caps throughput well below the worker pool capacity.
	p := params.Default()
	rec, sys, eng := runOffload(t, defaultCfg(16, 5, 0),
		5_000_000, dist.Fixed{D: time.Microsecond}, 8000)
	got := rec.Throughput(eng.Now())
	cap := float64(time.Second) / float64(p.ArmStageMax())
	if got > 1.15*cap {
		t.Fatalf("throughput %.0f exceeds dispatcher cap %.0f", got, cap)
	}
	if got < 0.6*cap {
		t.Fatalf("throughput %.0f far below dispatcher cap %.0f", got, cap)
	}
	// Workers must be mostly idle — they are starved by the dispatcher.
	if idle := sys.WorkerIdleFraction(eng.Now()); idle < 0.5 {
		t.Fatalf("worker idle fraction %v, want > 0.5 (dispatcher-bound)", idle)
	}
}

func TestOffloadWorkersSaturateWhenDispatcherIsNot(t *testing.T) {
	// With 100µs requests (Figure 5 regime) the dispatcher load is tiny
	// and workers should be nearly fully busy at saturating load.
	_, sys, eng := runOffload(t, defaultCfg(4, 2, 0),
		200_000, dist.Fixed{D: 100 * time.Microsecond}, 2000)
	if idle := sys.WorkerIdleFraction(eng.Now()); idle > 0.15 {
		t.Fatalf("worker idle fraction %v, want < 0.15 (worker-bound)", idle)
	}
}

func TestOffloadLatencyRisesWithLoad(t *testing.T) {
	p99 := func(rps float64) time.Duration {
		rec, _, _ := runOffload(t, defaultCfg(4, 4, 10*time.Microsecond),
			rps, dist.Bimodal{P1: 0.995, D1: 5 * time.Microsecond, D2: 100 * time.Microsecond}, 4000)
		return rec.Latency.P99()
	}
	low := p99(50_000)
	high := p99(600_000)
	if high <= low {
		t.Fatalf("p99 did not rise with load: low=%v high=%v", low, high)
	}
}

func TestOffloadInformedPolicyWithFeedback(t *testing.T) {
	cfg := defaultCfg(4, 3, 0)
	cfg.Policy = InformedLeastLoaded
	cfg.LoadFeedback = true
	rec, _, eng := runOffload(t, cfg, 400_000, dist.Fixed{D: 5 * time.Microsecond}, 3000)
	if rec.Completed() != 3000 {
		t.Fatalf("completed = %d", rec.Completed())
	}
	if rec.Throughput(eng.Now()) < 300_000 {
		t.Fatalf("informed policy throughput collapsed: %.0f", rec.Throughput(eng.Now()))
	}
}

func TestOffloadDirectInterruptAblation(t *testing.T) {
	// §5.1(3): NIC-posted interrupts instead of self-armed timers. The
	// system must still preempt and complete everything.
	eng := sim.New()
	cfg := defaultCfg(2, 2, 10*time.Microsecond)
	cfg.DirectInterrupts = true
	rec := &stats.Recorder{}
	rec.Arm(0)
	completed := 0
	sys := NewOffload(eng, cfg, rec, func(r *task.Request) { completed++ })
	for i := uint64(1); i <= 4; i++ {
		sys.Inject(task.New(i, 0, 35*time.Microsecond))
	}
	eng.Run()
	if completed != 4 {
		t.Fatalf("completed = %d", completed)
	}
	if rec.Preemptions() == 0 {
		t.Fatal("no preemptions under direct-interrupt ablation")
	}
}

func TestOffloadConstructorValidation(t *testing.T) {
	eng := sim.New()
	done := func(*task.Request) {}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("zero workers did not panic")
			}
		}()
		NewOffload(eng, OffloadConfig{P: params.Default()}, nil, done)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("nil done did not panic")
			}
		}()
		NewOffload(eng, defaultCfg(1, 1, 0), nil, nil)
	}()
	// Outstanding defaults to 1.
	sys := NewOffload(eng, OffloadConfig{P: params.Default(), Workers: 1}, nil, done)
	if sys.lgc.CreditLimit() != 1 {
		t.Fatalf("default credit limit = %d", sys.lgc.CreditLimit())
	}
}

func TestOffloadTracesAreCausallyValid(t *testing.T) {
	// Run a preemption-heavy workload with full tracing and validate every
	// request's lifecycle: no request starts before dispatch, completes
	// twice, responds before completing, etc.
	eng := sim.New()
	cfg := defaultCfg(3, 2, 10*time.Microsecond)
	buf := trace.New(0)
	cfg.Tracer = buf
	completions := 0
	sys := NewOffload(eng, cfg, nil, func(*task.Request) {
		completions++
		if completions >= 2000 {
			eng.Halt()
		}
	})
	loadgen.New(eng, loadgen.Config{
		RPS:     300_000,
		Service: dist.Bimodal{P1: 0.95, D1: 3 * time.Microsecond, D2: 60 * time.Microsecond},
		Seed:    8,
	}, sys.Inject).Start()
	eng.Run()
	if completions < 2000 {
		t.Fatalf("completions = %d", completions)
	}
	if err := buf.ValidateAll(); err != nil {
		t.Fatal(err)
	}
	// At least one request must show a full preemption cycle in its trace.
	sawPreempt := false
	for _, id := range buf.Requests() {
		for _, e := range buf.Lifecycle(id) {
			if e.Kind == trace.Preempt {
				sawPreempt = true
			}
		}
	}
	if !sawPreempt {
		t.Fatal("no preemption events traced despite 60µs requests at 10µs slice")
	}
}

func TestOffloadQueueDynamicsAfterBurst(t *testing.T) {
	// Inject a 200-request burst into an idle 4-worker system and watch
	// the central queue with a sampler: it must spike and then settle to
	// zero within the work's drain time plus pipeline overheads.
	eng := sim.New()
	sys := NewOffload(eng, defaultCfg(4, 2, 0), nil, func(*task.Request) {})
	qdepth := stats.NewTimeSeries(eng, 5*time.Microsecond, 0, func() float64 {
		return float64(sys.QueueLen())
	})
	const n = 200
	svc := 5 * time.Microsecond
	for i := uint64(1); i <= n; i++ {
		sys.Inject(task.New(i, 0, svc))
	}
	eng.RunUntil(sim.Time(int64(2 * time.Millisecond)))
	qdepth.Stop()
	if qdepth.Max() < 100 {
		t.Fatalf("queue never spiked: max depth %v", qdepth.Max())
	}
	settled, ok := qdepth.LastBelow(0)
	if !ok {
		t.Fatal("queue never drained")
	}
	// Ideal drain: 200 × 5µs / 4 workers = 250µs; allow pipeline slack.
	if settled.Duration() > 500*time.Microsecond {
		t.Fatalf("queue settled at %v, want ≤ 500µs", settled)
	}
}

func TestOffloadDDIOToL1ReducesLatency(t *testing.T) {
	// §5.2: with DDIO-to-L1, pickup skips the near-cache fetch penalty;
	// the single-request latency drops by exactly PickupMemPenalty.
	lat := func(ddio bool) time.Duration {
		eng := sim.New()
		cfg := defaultCfg(1, 1, 0)
		cfg.DDIOToL1 = ddio
		var doneAt sim.Time
		sys := NewOffload(eng, cfg, nil, func(*task.Request) { doneAt = eng.Now() })
		sys.Inject(task.New(1, 0, time.Microsecond))
		eng.Run()
		return doneAt.Duration()
	}
	p := params.Default()
	with, without := lat(true), lat(false)
	if without-with != p.PickupMemPenalty {
		t.Fatalf("DDIO saving = %v, want %v", without-with, p.PickupMemPenalty)
	}
}

func TestOffloadDispatchBurstDelaysCreditsUnderFlood(t *testing.T) {
	// The Figure 3 burst ablation mechanism: with k=1 and a saturating
	// flood, burst processing of new arrivals delays credit handling and
	// lowers throughput versus fair alternation.
	tput := func(burst int) float64 {
		eng := sim.New()
		cfg := defaultCfg(4, 1, 0)
		cfg.DispatchBurst = burst
		completions := 0
		var armedAt sim.Time
		sys := NewOffload(eng, cfg, nil, func(*task.Request) {
			completions++
			if completions == 1000 {
				armedAt = eng.Now()
			}
			if completions >= 5000 {
				eng.Halt()
			}
		})
		gen := loadgen.New(eng, loadgen.Config{
			RPS: 3_000_000, Service: dist.Fixed{D: time.Microsecond}, Seed: 4,
		}, sys.Inject)
		gen.Start()
		eng.Run()
		return 4000 / eng.Now().Sub(armedAt).Seconds()
	}
	fair := tput(1)
	burst := tput(16)
	if burst >= 0.85*fair {
		t.Fatalf("burst=16 throughput %.0f not meaningfully below fair %.0f at k=1", burst, fair)
	}
}

func TestOffloadPreemptedRequestMigratesWorkers(t *testing.T) {
	// A preempted request can resume on a different worker (§3.4.1).
	eng := sim.New()
	cfg := defaultCfg(2, 1, 10*time.Microsecond)
	migrated := false
	sys := NewOffload(eng, cfg, nil, func(r *task.Request) {
		if r.Preemptions > 0 && r.Assignments > 1 {
			migrated = true
		}
	})
	// Two long requests keep both workers busy; preemption shuffles them
	// through the central queue.
	for i := uint64(1); i <= 3; i++ {
		sys.Inject(task.New(i, 0, 40*time.Microsecond))
	}
	eng.Run()
	if !migrated {
		t.Fatal("no preempted request was reassigned")
	}
}
