package hypothesis

import (
	"bytes"
	"strings"
	"testing"

	"mindgap/internal/scenario"
)

// base returns a valid dominance hypothesis: work stealing (zygos) vs
// blind RSS on the same exponential workload.
func base() Spec {
	return Spec{
		ID:         "test-stealing",
		Claim:      "zygos beats rss on p99",
		Metric:     "p99",
		Seeds:      []uint64{7, 11},
		Controlled: []string{"workload", "workers", "load"},
		Varied:     []string{"system"},
		A: Arm{Label: "zygos", Scenario: scenario.Spec{
			System:   "zygos",
			Knobs:    &scenario.Knobs{Workers: 4},
			Workload: "exp:50µs",
			Load:     &scenario.LoadSpec{RPS: 48000},
		}},
		B: Arm{Label: "rss", Scenario: scenario.Spec{
			System:   "rss",
			Knobs:    &scenario.Knobs{Workers: 4},
			Workload: "exp:50µs",
			Load:     &scenario.LoadSpec{RPS: 48000},
		}},
		Criterion: CriterionSpec{Kind: Dominance, MinMargin: 0.1},
	}
}

func wantErr(t *testing.T, s Spec, frag string) {
	t.Helper()
	err := s.Validate()
	if err == nil {
		t.Fatalf("expected validation error containing %q", frag)
	}
	if !strings.Contains(err.Error(), frag) {
		t.Fatalf("error %q does not mention %q", err, frag)
	}
}

func TestValidateAccepts(t *testing.T) {
	if err := base().Validate(); err != nil {
		t.Fatalf("base spec must validate: %v", err)
	}
}

func TestValidateIdentity(t *testing.T) {
	s := base()
	s.ID = "Bad_ID"
	wantErr(t, s, "kebab-case")
	s = base()
	s.Claim = "  "
	wantErr(t, s, "claim")
}

func TestValidateMetric(t *testing.T) {
	s := base()
	s.Metric = "p42"
	wantErr(t, s, "unknown metric")
}

func TestValidateSeeds(t *testing.T) {
	s := base()
	s.Seeds = nil
	wantErr(t, s, "at least one pinned seed")
	s = base()
	s.Seeds = []uint64{7, 0}
	wantErr(t, s, "seed 0")
	s = base()
	s.Seeds = []uint64{7, 7}
	wantErr(t, s, "duplicate seed")
}

func TestValidateArmPins(t *testing.T) {
	s := base()
	s.A.Scenario.Seed = 3
	wantErr(t, s, "must not pin seeds")
	s = base()
	s.B.Scenario.Seeds = []uint64{1}
	wantErr(t, s, "must not pin seeds")
	s = base()
	s.A.Scenario.Quality = &scenario.QualitySpec{Warmup: 10}
	wantErr(t, s, "must not pin quality")
	s = base()
	s.B.Label = ""
	wantErr(t, s, "needs a label")
	s = base()
	s.A.Scenario.Load = nil
	wantErr(t, s, "needs a load")
}

func TestValidateLoadShapes(t *testing.T) {
	// Dominance rejects grids.
	s := base()
	s.A.Scenario.Load = &scenario.LoadSpec{Grid: &scenario.Grid{Lo: 1000, Hi: 2000, Step: 500}}
	s.Varied = []string{"system", "load"}
	s.Controlled = []string{"workload", "workers"}
	wantErr(t, s, "single-point loads")

	// Crossover requires identical grids on both arms.
	s = base()
	s.Criterion = CriterionSpec{Kind: Crossover, Bracket: &Bracket{Lo: 1000, Hi: 2000}}
	s.A.Scenario.Load = &scenario.LoadSpec{Grid: &scenario.Grid{Lo: 1000, Hi: 3000, Step: 1000}}
	s.B.Scenario.Load = &scenario.LoadSpec{Grid: &scenario.Grid{Lo: 1000, Hi: 2000, Step: 500}}
	s.Varied = []string{"system", "load"}
	s.Controlled = []string{"workload", "workers"}
	wantErr(t, s, "share one load grid")
	s.B.Scenario.Load = &scenario.LoadSpec{Grid: &scenario.Grid{Lo: 1000, Hi: 3000, Step: 1000}}
	s.Varied = []string{"system"}
	if err := s.Validate(); err != nil {
		t.Fatalf("matched grids must validate: %v", err)
	}
}

func TestValidateCriterionParams(t *testing.T) {
	s := base()
	s.Criterion = CriterionSpec{Kind: "majority"}
	wantErr(t, s, "unknown criterion")
	s = base()
	s.Criterion = CriterionSpec{Kind: Dominance, MinMargin: 1.5}
	wantErr(t, s, "min_margin")
	s = base()
	s.Criterion = CriterionSpec{Kind: Dominance, Tolerance: 0.1}
	wantErr(t, s, "min_margin/min_win_frac only")
	s = base()
	s.Criterion = CriterionSpec{Kind: Equivalence}
	wantErr(t, s, "tolerance")
	s = base()
	s.Criterion = CriterionSpec{Kind: Crossover}
	wantErr(t, s, "bracket")
	s = base()
	s.Criterion = CriterionSpec{Kind: Crossover, Bracket: &Bracket{Lo: 2000, Hi: 1000}}
	wantErr(t, s, "bad bracket")
}

func TestValidateDiffContract(t *testing.T) {
	// An undeclared difference is a confounded comparison.
	s := base()
	s.A.Scenario.Knobs.QueueCap = 64
	wantErr(t, s, "undeclared dimensions [queue_cap]")

	// Declared varied but identical.
	s = base()
	s.Varied = []string{"system", "workers"}
	wantErr(t, s, "identical in both arms")

	// Controlled but differing.
	s = base()
	s.A.Scenario.Knobs.Workers = 8
	s.Varied = []string{"system", "workers"}
	s.Controlled = []string{"workload", "workers"}
	wantErr(t, s, "cannot be both controlled and varied")
	s.Varied = []string{"system"}
	s.Controlled = []string{"workers"}
	wantErr(t, s, "declared controlled but differs")

	// Unknown dimension names.
	s = base()
	s.Varied = []string{"system", "frobnication"}
	wantErr(t, s, "unknown dimension")
	s = base()
	s.Controlled = []string{"frobnication"}
	wantErr(t, s, "unknown dimension")

	// Controlled but set in neither arm.
	s = base()
	s.Controlled = []string{"slice"}
	wantErr(t, s, "set in neither arm")
}

func TestValidateScenarioErrorsSurface(t *testing.T) {
	// A knob the system rejects fails through the scenario validator.
	s := base()
	s.A.Scenario.Knobs.RuleCapacity = 100
	s.Varied = []string{"system", "rule_capacity"}
	if err := s.Validate(); err == nil {
		t.Fatal("zygos must reject flowrule knobs")
	}
}

func TestValidateAnalytic(t *testing.T) {
	good := func() Spec {
		s := base()
		s.Analytic = &AnalyticSpec{Model: "mm1-percore", Arm: "b", Metric: "mean", Tolerance: 0.25}
		return s
	}
	if err := good().Validate(); err != nil {
		t.Fatalf("twin must validate: %v", err)
	}
	s := good()
	s.Analytic.Arm = "c"
	wantErr(t, s, `"a" or "b"`)
	s = good()
	s.Analytic.Model = "md1"
	wantErr(t, s, "unknown analytic model")
	s = good()
	s.Analytic.Metric = "max"
	wantErr(t, s, "mean or p99")
	s = good()
	s.Analytic.Model = "mmc"
	s.Analytic.Metric = "p99"
	wantErr(t, s, "closed form for the mean")
	s = good()
	s.Analytic.Tolerance = 0
	wantErr(t, s, "tolerance")
	s = good()
	s.B.Scenario.Workload = "fixed:50µs"
	s.A.Scenario.Workload = "fixed:50µs"
	wantErr(t, s, "exponential service")
	s = good()
	s.Analytic.Servers = 0
	s.B.Scenario.Knobs.Workers = 0
	s.A.Scenario.Knobs.Workers = 0
	s.Controlled = []string{"workload", "load"}
	wantErr(t, s, "needs servers")
	// Crossover hypotheses cannot carry a twin.
	s = good()
	s.Criterion = CriterionSpec{Kind: Crossover, Bracket: &Bracket{Lo: 1, Hi: 2}}
	g := &scenario.Grid{Lo: 1000, Hi: 2000, Step: 500}
	s.A.Scenario.Load = &scenario.LoadSpec{Grid: g}
	s.B.Scenario.Load = &scenario.LoadSpec{Grid: g}
	wantErr(t, s, "single load point")
}

func TestCanonicalRoundTrip(t *testing.T) {
	s := base()
	enc1, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Decode(enc1)
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := s2.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc1, enc2) {
		t.Fatalf("canonical encoding is not a fixed point:\n%s\nvs\n%s", enc1, enc2)
	}
	if s.Fingerprint() != s2.Fingerprint() {
		t.Fatal("fingerprint must survive an encode/decode round trip")
	}
}

func TestDecodeRejectsUnknownFields(t *testing.T) {
	for _, bad := range []string{
		`{"id":"x","clame":"typo"}`,
		`{"id":"x","claim":"c","a":{"label":"l","scenario":{"system":"rss","knbs":{}}}}`,
		`{"id":"x","claim":"c","criterion":{"kind":"dominance","margin":0.1}}`,
	} {
		if _, err := Decode([]byte(bad)); err == nil {
			t.Fatalf("unknown field must be rejected: %s", bad)
		}
	}
}

func TestFingerprintDistinguishes(t *testing.T) {
	a := base()
	b := base()
	b.Criterion.MinMargin = 0.11
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("different criteria must fingerprint differently")
	}
}
