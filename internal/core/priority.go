package core

import (
	"fmt"

	"mindgap/internal/queue"
	"mindgap/internal/sim"
	"mindgap/internal/task"
	"mindgap/internal/telemetry"
)

// SchedulerLogic is the surface the Offload assembly (and the live
// dispatcher) need from a scheduler state machine; *Logic and
// *PriorityLogic both implement it.
type SchedulerLogic interface {
	Enqueue(now sim.Time, req *task.Request) []Assignment
	Complete(w int) []Assignment
	Preempted(now sim.Time, w int, req *task.Request) []Assignment
	// The *To variants append to a caller-provided slice so hot callers can
	// reuse one scratch buffer across events. The returned slice is only
	// valid until the next call that reuses the same buffer.
	EnqueueTo(out []Assignment, now sim.Time, req *task.Request) []Assignment
	CompleteTo(out []Assignment, w int) []Assignment
	PreemptedTo(out []Assignment, now sim.Time, w int, req *task.Request) []Assignment
	ReportLoad(w int, load int64)
	ReportLoadAt(now sim.Time, w int, load int64)
	QueueLen() int
	Workers() int
	CreditLimit() int
	RegisterTelemetry(reg *telemetry.Registry, component string, now func() sim.Time)
}

var (
	_ SchedulerLogic = (*Logic)(nil)
	_ SchedulerLogic = (*PriorityLogic)(nil)
)

// PriorityLogic extends Logic to multiple latency classes — the §2.2
// scenario of "multiple co-located applications from different latency
// classes" sharing one server. Each class gets its own FIFO; dispatch
// drains classes in strict priority order (class 0 highest), so a
// latency-critical class never waits behind best-effort work in the
// central queue. Preemption still protects classes from long requests
// *within* a class.
//
// PriorityLogic reuses Logic's credit accounting; only queue selection
// differs. It is exercised by the faas example and the priority tests.
type PriorityLogic struct {
	*Logic
	classes []queue.FIFO[*task.Request]
	// classOf maps a request to its class; defaults to class 0.
	classOf func(*task.Request) int
}

// NewPriorityLogic creates scheduler state with the given number of strict
// priority classes. classOf assigns each request a class in [0, classes);
// out-of-range values are clamped.
func NewPriorityLogic(workers, k, classes int, policy Policy, classOf func(*task.Request) int) *PriorityLogic {
	if classes <= 0 {
		panic("core: need at least one priority class")
	}
	if classOf == nil {
		classOf = func(*task.Request) int { return 0 }
	}
	return &PriorityLogic{
		Logic:   NewLogic(workers, k, policy),
		classes: make([]queue.FIFO[*task.Request], classes),
		classOf: classOf,
	}
}

// Classes returns the number of priority classes.
func (l *PriorityLogic) Classes() int { return len(l.classes) }

// QueueLen returns the total queued requests across classes.
func (l *PriorityLogic) QueueLen() int {
	total := 0
	for i := range l.classes {
		total += l.classes[i].Len()
	}
	return total
}

// ClassQueueLen returns the queue depth of one class.
func (l *PriorityLogic) ClassQueueLen(c int) int { return l.classes[c].Len() }

// clamp maps a request to a valid class index.
func (l *PriorityLogic) clamp(req *task.Request) int {
	c := l.classOf(req)
	if c < 0 {
		return 0
	}
	if c >= len(l.classes) {
		return len(l.classes) - 1
	}
	return c
}

// Enqueue admits a request into its class queue and dispatches if credit
// is available.
func (l *PriorityLogic) Enqueue(now sim.Time, req *task.Request) []Assignment {
	return l.EnqueueTo(nil, now, req)
}

// EnqueueTo is Enqueue appending to a caller-provided slice (it shadows
// the embedded Logic's variant, which would drain the wrong queue).
func (l *PriorityLogic) EnqueueTo(out []Assignment, now sim.Time, req *task.Request) []Assignment {
	req.Enqueued = now
	l.classes[l.clamp(req)].Push(req)
	return l.drainPriority(out)
}

// Complete processes a FINISH notification.
func (l *PriorityLogic) Complete(w int) []Assignment {
	return l.CompleteTo(nil, w)
}

// CompleteTo is Complete appending to a caller-provided slice.
func (l *PriorityLogic) CompleteTo(out []Assignment, w int) []Assignment {
	l.release(w)
	l.completed++
	return l.drainPriority(out)
}

// Preempted processes a PREEMPTED notification; the request re-enters the
// tail of its own class queue.
func (l *PriorityLogic) Preempted(now sim.Time, w int, req *task.Request) []Assignment {
	return l.PreemptedTo(nil, now, w, req)
}

// PreemptedTo is Preempted appending to a caller-provided slice.
func (l *PriorityLogic) PreemptedTo(out []Assignment, now sim.Time, w int, req *task.Request) []Assignment {
	l.release(w)
	l.requeued++
	req.Enqueued = now
	l.classes[l.clamp(req)].Push(req)
	return l.drainPriority(out)
}

// drainPriority dispatches from the highest non-empty class while credit
// lasts.
func (l *PriorityLogic) drainPriority(out []Assignment) []Assignment {
	for {
		var req *task.Request
		for c := range l.classes {
			if r, ok := l.classes[c].Peek(); ok {
				req = r
				w := -1
				if l.affinity && r.Preemptions > 0 &&
					r.LastWorker >= 0 && r.LastWorker < len(l.outstanding) &&
					l.outstanding[r.LastWorker] < l.k {
					w = r.LastWorker
				} else {
					w = l.pick()
				}
				if w < 0 {
					return out
				}
				l.classes[c].Pop()
				l.outstanding[w]++
				l.assigned++
				out = append(out, Assignment{Worker: w, Req: req})
				break
			}
		}
		if req == nil {
			return out
		}
	}
}

// RegisterTelemetry exposes the scheduler probes of the embedded Logic,
// corrects the queue-depth gauges to read the class queues, and adds one
// depth gauge per priority class.
func (l *PriorityLogic) RegisterTelemetry(reg *telemetry.Registry, component string, now func() sim.Time) {
	l.Logic.RegisterTelemetry(reg, component, now)
	reg.GaugeFunc(component, "queue_depth", func() float64 { return float64(l.QueueLen()) })
	high := func() float64 {
		h := 0
		for c := range l.classes {
			h += l.classes[c].HighWater()
		}
		return float64(h)
	}
	reg.GaugeFunc(component, "queue_high_water", high)
	for c := range l.classes {
		c := c
		reg.GaugeFunc(component, fmt.Sprintf("queue_depth_class%d", c), func() float64 {
			return float64(l.classes[c].Len())
		})
	}
}

// String describes the configuration.
func (l *PriorityLogic) String() string {
	return fmt.Sprintf("priority-logic(classes=%d, workers=%d, k=%d)",
		len(l.classes), l.Workers(), l.CreditLimit())
}
