package params

import (
	"testing"
	"time"
)

func TestCyclesToDuration(t *testing.T) {
	host := Clock{Hz: 2.3e9}
	cases := []struct {
		cycles float64
		want   time.Duration
	}{
		{0, 0},
		{2.3e9, time.Second},
		{40, 17 * time.Nanosecond},    // §3.4.4 direct APIC arm: 40 cycles ≈ 17 ns
		{610, 265 * time.Nanosecond},  // Linux timer arm
		{1272, 553 * time.Nanosecond}, // posted interrupt receive
		{4193, 1823 * time.Nanosecond},
	}
	for _, c := range cases {
		if got := host.CyclesToDuration(c.cycles); got != c.want {
			t.Errorf("CyclesToDuration(%v) = %v, want %v", c.cycles, got, c.want)
		}
	}
}

func TestZeroClockIsSafe(t *testing.T) {
	var c Clock
	if got := c.CyclesToDuration(1000); got != 0 {
		t.Fatalf("zero clock returned %v, want 0", got)
	}
}

func TestPaperConstants(t *testing.T) {
	p := Default()
	if p.NicHostOneWay != 2560*time.Nanosecond {
		t.Errorf("NicHostOneWay = %v, want 2.56µs (§3.3)", p.NicHostOneWay)
	}
	if p.TimeSlice != 10*time.Microsecond {
		t.Errorf("TimeSlice = %v, want 10µs (§3.4.4)", p.TimeSlice)
	}
	// 200 ns dispatch cost ⇒ 5 M req/s dispatcher capacity (§1).
	if got := time.Second / p.HostDispatchCost; got != 5_000_000 {
		t.Errorf("host dispatcher capacity = %d req/s, want 5M", got)
	}
	if LinuxTimer.ArmCycles != 610 || DirectAPIC.ArmCycles != 40 {
		t.Error("timer arm cycle constants do not match §3.4.4")
	}
	if LinuxTimer.FireCycles != 4193 || DirectAPIC.FireCycles != 1272 {
		t.Error("timer fire cycle constants do not match §3.4.4")
	}
}

func TestTimerCostReductions(t *testing.T) {
	// §3.4.4: direct APIC reduces timer-set cost by 93% and interrupt
	// receipt cost by 70%.
	setReduction := 1 - DirectAPIC.ArmCycles/LinuxTimer.ArmCycles
	if setReduction < 0.92 || setReduction > 0.94 {
		t.Errorf("timer set reduction = %.2f, want ≈0.93", setReduction)
	}
	fireReduction := 1 - DirectAPIC.FireCycles/LinuxTimer.FireCycles
	if fireReduction < 0.69 || fireReduction > 0.71 {
		t.Errorf("interrupt receipt reduction = %.2f, want ≈0.70", fireReduction)
	}
}

func TestArmStageMax(t *testing.T) {
	p := Default()
	// With the default calibration the queue-manager core is the
	// bottleneck: it sees each request twice (admit + credit release).
	if got, want := p.ArmStageMax(), p.ArmQueueCost+p.ArmCreditCost; got != want {
		t.Fatalf("ArmStageMax = %v, want %v", got, want)
	}
	// The calibrated offload dispatcher cap should land in the 1.3–1.6M
	// req/s band implied by Figures 3 and 6.
	cap := float64(time.Second) / float64(p.ArmStageMax())
	if cap < 1.2e6 || cap > 1.7e6 {
		t.Errorf("offload dispatcher cap = %.0f req/s, want ≈1.4M", cap)
	}
}

func TestFrameWireTime(t *testing.T) {
	p := Default()
	// 128 B at 10 Gb/s = 102.4 ns.
	got := p.FrameWireTime(128)
	if got < 102*time.Nanosecond || got > 103*time.Nanosecond {
		t.Fatalf("FrameWireTime(128) = %v, want ≈102ns", got)
	}
	var zero Params
	if zero.FrameWireTime(128) != 0 {
		t.Fatal("zero-bandwidth params should yield zero wire time")
	}
}

func TestWithCXL(t *testing.T) {
	p := Default()
	c := p.WithCXL()
	if c.NicHostOneWay != p.CXLOneWay {
		t.Fatalf("WithCXL NicHostOneWay = %v, want %v", c.NicHostOneWay, p.CXLOneWay)
	}
	if c.NicHostOneWay >= p.NicHostOneWay {
		t.Fatal("CXL path should be faster than packet path")
	}
	// Original must be unmodified (value semantics).
	if p.NicHostOneWay != 2560*time.Nanosecond {
		t.Fatal("WithCXL mutated the receiver")
	}
}

func TestWithLineRateScheduler(t *testing.T) {
	p := Default().WithLineRateScheduler()
	// Hardware scheduler should comfortably exceed the host dispatcher's
	// 5 M req/s so the Fig. 6 crossover disappears.
	cap := float64(time.Second) / float64(p.ArmStageMax())
	if cap < 10e6 {
		t.Fatalf("line-rate scheduler cap = %.0f req/s, want > 10M", cap)
	}
}
