// Package lint assembles the mindgap-lint analyzer suite.
//
// The suite enforces the invariants the reproduction's evaluation
// methodology rests on: simulation output must be a deterministic
// function of (config, seed), byte-identical at -j1 and -jN. See the
// individual analyzer packages for the rules, and package allow for the
// //lint:allow <analyzer> <reason> suppression mechanism.
package lint

import (
	"golang.org/x/tools/go/analysis"

	"mindgap/internal/lint/allow"
	"mindgap/internal/lint/floateq"
	"mindgap/internal/lint/lockedsend"
	"mindgap/internal/lint/maporder"
	"mindgap/internal/lint/simclock"
)

// Analyzers returns the full suite in a fixed order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		simclock.Analyzer,
		maporder.Analyzer,
		floateq.Analyzer,
		lockedsend.Analyzer,
		allow.Analyzer,
	}
}
