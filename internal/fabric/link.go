// Package fabric models the communication substrates connecting the
// simulated components: Ethernet wires, the NIC-internal path between the
// SmartNIC ARM complex and host cores (2.56 µs one way, §3.3), host
// cache-line channels, and the coherent CXL window of the §5 ideal NIC.
//
// All substrates share one abstraction, Link: a FIFO, point-to-point pipe
// with a propagation latency, an optional serialization bandwidth, and an
// optional bounded queue that drops on overflow.
package fabric

import (
	"time"

	"mindgap/internal/sim"
	"mindgap/internal/telemetry"
)

// LinkConfig describes a link's physical properties.
type LinkConfig struct {
	// Latency is the one-way propagation delay applied to every message.
	Latency time.Duration
	// BandwidthBps is the serialization rate in bits per second; zero means
	// infinitely fast serialization (appropriate for cache-line channels).
	BandwidthBps float64
	// QueueLimit bounds the number of messages waiting to serialize; zero
	// means unbounded. Messages arriving at a full queue are dropped.
	QueueLimit int
}

// Link is a point-to-point, order-preserving message pipe. Not safe for
// concurrent use — it lives inside a single-threaded simulation.
type Link struct {
	eng  *sim.Engine
	cfg  LinkConfig
	name string

	lastDeparture sim.Time
	queued        int
	delivered     uint64
	dropped       uint64
	stalls        uint64

	// fault, when set, is consulted once per message at send time: a true
	// drop loses the message on the wire (counted in faultDropped, not
	// dropped — queue overflow and wire loss are different failures), and
	// extra adds propagation latency (a fabric latency spike). Nil — the
	// only state healthy systems ever see — leaves Send untouched.
	fault        func(sim.Time) (drop bool, extra time.Duration)
	faultDropped uint64

	// latency, when attached, records each message's send→deliver time —
	// the NIC↔host message-latency distribution of §3.3, inflated by
	// serialization waits near saturation.
	latency *telemetry.Histogram

	// pend is the in-flight message table: each accepted send claims a slot
	// holding its delivery callback and timing, and the slot index rides
	// through both engine events as the scalar argument. The table plus the
	// typed event API make an accepted send allocate nothing in steady
	// state (slots recycle through freeSlots).
	pend      []pendingMsg
	freeSlots []uint32
}

// pendingMsg is one accepted, not-yet-delivered message.
type pendingMsg struct {
	fn        sim.EventFunc
	recv, obj any
	arg       uint64
	sent      sim.Time
	deliverAt sim.Time
}

// NewLink creates a link on the engine. name appears in diagnostics only.
func NewLink(eng *sim.Engine, name string, cfg LinkConfig) *Link {
	return &Link{eng: eng, cfg: cfg, name: name}
}

// Name returns the diagnostic name.
func (l *Link) Name() string { return l.name }

// SendOutcome classifies the synchronous fate of a Send: accepted for
// delivery, rejected by the bounded queue, or lost to an injected wire
// fault. The distinction lets callers attribute the loss (queue overflow
// is backpressure; a wire fault is the failure the fault layer injected).
type SendOutcome uint8

const (
	// SendAccepted: the message will be delivered.
	SendAccepted SendOutcome = iota
	// SendQueueDrop: the bounded queue was full (counted in Dropped).
	SendQueueDrop
	// SendFaultDrop: an injected fault lost the message on the wire
	// (counted in FaultDropped).
	SendFaultDrop
)

// Send enqueues a message of the given wire size; deliver runs at the
// receiver once serialization and propagation complete. It reports false
// (and counts a drop) when the bounded queue is full or an injected wire
// fault loses the message. FIFO order is guaranteed: deliveries happen in
// Send order.
func (l *Link) Send(bytes int, deliver func()) bool {
	return l.SendEx(bytes, deliver) == SendAccepted
}

// SendEx is Send with a distinguishable outcome, so callers can tell a
// queue-overflow drop from an injected wire fault. The closure form
// allocates; hot paths should use SendT/SendTEx.
func (l *Link) SendEx(bytes int, deliver func()) SendOutcome {
	return l.SendTEx(bytes, callClosure, deliver, nil, 0)
}

// callClosure adapts the legacy closure delivery onto the typed path.
func callClosure(recv, _ any, _ uint64) { recv.(func())() }

// SendT is the typed, zero-alloc Send: fn(recv, obj, arg) runs at the
// receiver once serialization and propagation complete.
//
//mindgap:noalloc
func (l *Link) SendT(bytes int, fn sim.EventFunc, recv, obj any, arg uint64) bool {
	return l.SendTEx(bytes, fn, recv, obj, arg) == SendAccepted
}

// SendTEx is SendT with a distinguishable outcome. It schedules the same
// two events per message as the original closure path — departure after
// serialization, then delivery after propagation — so the engine's event
// sequence (and therefore every golden) is unchanged; only the callback
// representation differs.
//
//mindgap:noalloc
func (l *Link) SendTEx(bytes int, fn sim.EventFunc, recv, obj any, arg uint64) SendOutcome {
	if l.cfg.QueueLimit > 0 && l.queued >= l.cfg.QueueLimit {
		l.dropped++
		return SendQueueDrop
	}
	now := l.eng.Now()
	latency := l.cfg.Latency
	if l.fault != nil {
		drop, extra := l.fault(now)
		if drop {
			// Lost on the wire: the message occupies no queue slot and no
			// serialization time, and the receiver never hears of it.
			l.faultDropped++
			return SendFaultDrop
		}
		latency += extra
	}
	depart := now
	if l.lastDeparture > depart {
		// The transmitter is still serializing an earlier message: this
		// one stalls behind it (port serialization, §3.3).
		l.stalls++
		depart = l.lastDeparture
	}
	depart = depart.Add(l.serialization(bytes))
	l.lastDeparture = depart
	l.queued++

	var slot uint32
	if n := len(l.freeSlots); n > 0 {
		slot = l.freeSlots[n-1]
		l.freeSlots = l.freeSlots[:n-1]
	} else {
		slot = uint32(len(l.pend))
		l.pend = append(l.pend, pendingMsg{})
	}
	l.pend[slot] = pendingMsg{fn: fn, recv: recv, obj: obj, arg: arg, sent: now, deliverAt: depart.Add(latency)}
	l.eng.AtE(depart, linkDepart, l, nil, uint64(slot))
	return SendAccepted
}

// linkDepart fires when a message finishes serialization: the transmit
// queue slot frees and the propagation leg begins.
//
//mindgap:noalloc
func linkDepart(recv, _ any, slot uint64) {
	l := recv.(*Link)
	l.queued--
	l.eng.AtE(l.pend[slot].deliverAt, linkDeliver, l, nil, slot)
}

// linkDeliver fires at the receiver and hands off to the message's
// callback after releasing the in-flight slot.
//
//mindgap:noalloc
func linkDeliver(recv, _ any, slot uint64) {
	l := recv.(*Link)
	p := l.pend[slot]
	l.pend[slot] = pendingMsg{}
	l.freeSlots = append(l.freeSlots, uint32(slot))
	l.delivered++
	if l.latency != nil {
		l.latency.Observe(l.eng.Now().Sub(p.sent))
	}
	p.fn(p.recv, p.obj, p.arg)
}

// serialization returns how long a message of the given size occupies the
// transmitter.
//
//mindgap:noalloc
func (l *Link) serialization(bytes int) time.Duration {
	if l.cfg.BandwidthBps <= 0 || bytes <= 0 {
		return 0
	}
	return time.Duration(float64(bytes*8) / l.cfg.BandwidthBps * 1e9)
}

// Queued returns the number of messages waiting to finish serialization.
func (l *Link) Queued() int { return l.queued }

// Delivered returns the number of messages delivered so far.
func (l *Link) Delivered() uint64 { return l.delivered }

// Dropped returns the number of messages rejected by the bounded queue.
func (l *Link) Dropped() uint64 { return l.dropped }

// Stalls returns how many messages waited behind an earlier message's
// serialization before departing.
func (l *Link) Stalls() uint64 { return l.stalls }

// SetFault installs a per-message fault hook (see the fault field).
// Install before the simulation starts.
func (l *Link) SetFault(f func(sim.Time) (drop bool, extra time.Duration)) { l.fault = f }

// FaultDropped returns the number of messages lost to injected wire
// faults (distinct from bounded-queue drops).
func (l *Link) FaultDropped() uint64 { return l.faultDropped }

// RegisterTelemetry exposes the link's counters on reg under the given
// component label and starts recording per-message latency into the
// registry's component/"latency" histogram.
func (l *Link) RegisterTelemetry(reg *telemetry.Registry, component string) {
	l.latency = reg.Histogram(component, "latency")
	reg.GaugeFunc(component, "queued", func() float64 { return float64(l.queued) })
	reg.GaugeFunc(component, "delivered", func() float64 { return float64(l.delivered) })
	reg.GaugeFunc(component, "dropped", func() float64 { return float64(l.dropped) })
	reg.GaugeFunc(component, "stalls", func() float64 { return float64(l.stalls) })
	reg.GaugeFunc(component, "fault_dropped", func() float64 { return float64(l.faultDropped) })
}
