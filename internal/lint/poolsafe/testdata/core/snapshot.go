// Rule-3 fixtures: structs that pair a pooled request pointer with a
// build-time snapshot of one of its identity fields exist precisely
// because the pointer may be stale when the struct is consumed;
// re-deriving the value through the pointer defeats the snapshot.
package core

import "mindgap/internal/task"

// qev mirrors the dispatcher's queue event.
type qev struct {
	req *task.Request
	id  uint64
}

func consumeQev(ev qev) uint64 {
	return ev.req.ID // want `ev\.req\.ID re-derives ID through a pooled request pointer that may already be recycled; read the build-time snapshot field ev\.id instead`
}

func consumeQevOK(ev qev) uint64 {
	return ev.id
}

// holder has no snapshot field: it owns a live request, so reading
// through the pointer is the only way and is not flagged.
type holder struct{ req *task.Request }

func consumeHolder(h holder) uint64 {
	return h.req.ID
}
