package trace

import (
	"strings"
	"testing"

	"mindgap/internal/sim"
)

func TestKindString(t *testing.T) {
	if Arrive.String() != "arrive" || Respond.String() != "respond" {
		t.Fatal("kind names wrong")
	}
	if Kind(200).String() == "" {
		t.Fatal("unknown kind empty")
	}
}

func TestRecordAndLifecycle(t *testing.T) {
	b := New(100)
	b.Record(0, Arrive, 1, -1)
	b.Record(5, Ingress, 1, -1)
	b.Record(7, Enqueue, 1, -1)
	b.Record(9, Dispatch, 1, 2)
	b.Record(12, Start, 1, 2)
	b.Record(20, Complete, 1, 2)
	b.Record(25, Respond, 1, -1)
	// Interleave another request.
	b.Record(3, Arrive, 2, -1)

	lc := b.Lifecycle(1)
	if len(lc) != 7 {
		t.Fatalf("lifecycle events = %d", len(lc))
	}
	for i := 1; i < len(lc); i++ {
		if lc[i].At < lc[i-1].At {
			t.Fatal("lifecycle not time-ordered")
		}
	}
	if err := b.Validate(1); err != nil {
		t.Fatalf("valid lifecycle rejected: %v", err)
	}
	reqs := b.Requests()
	if len(reqs) != 2 || reqs[0] != 1 || reqs[1] != 2 {
		t.Fatalf("Requests = %v", reqs)
	}
	if !strings.Contains(b.Format(1), "dispatch req=1 w=2") {
		t.Fatalf("Format output:\n%s", b.Format(1))
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	cases := []struct {
		name   string
		events []Event
	}{
		{"complete without start", []Event{
			{At: 0, Kind: Arrive, ReqID: 1, Worker: -1}, {At: 5, Kind: Complete, ReqID: 1, Worker: 0},
		}},
		{"respond before complete", []Event{
			{At: 0, Kind: Arrive, ReqID: 1, Worker: -1}, {At: 1, Kind: Dispatch, ReqID: 1, Worker: 0}, {At: 2, Kind: Start, ReqID: 1, Worker: 0}, {At: 3, Kind: Respond, ReqID: 1, Worker: -1},
		}},
		{"double completion", []Event{
			{At: 0, Kind: Dispatch, ReqID: 1, Worker: 0}, {At: 1, Kind: Start, ReqID: 1, Worker: 0}, {At: 2, Kind: Complete, ReqID: 1, Worker: 0}, {At: 3, Kind: Complete, ReqID: 1, Worker: 0},
		}},
		{"start without dispatch", []Event{
			{At: 0, Kind: Arrive, ReqID: 1, Worker: -1}, {At: 1, Kind: Start, ReqID: 1, Worker: 0},
		}},
		{"preempt before start", []Event{
			{At: 0, Kind: Dispatch, ReqID: 1, Worker: 0}, {At: 1, Kind: Preempt, ReqID: 1, Worker: 0},
		}},
		{"drop after complete", []Event{
			{At: 0, Kind: Dispatch, ReqID: 1, Worker: 0}, {At: 1, Kind: Start, ReqID: 1, Worker: 0}, {At: 2, Kind: Complete, ReqID: 1, Worker: 0}, {At: 3, Kind: Drop, ReqID: 1, Worker: -1},
		}},
		{"arrive mid-trace", []Event{
			{At: 0, Kind: Dispatch, ReqID: 1, Worker: 0}, {At: 1, Kind: Arrive, ReqID: 1, Worker: -1},
		}},
	}
	for _, tc := range cases {
		b := New(100)
		for _, e := range tc.events {
			b.Record(e.At, e.Kind, e.ReqID, e.Worker)
		}
		if err := b.Validate(1); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestValidateUnknownRequest(t *testing.T) {
	b := New(10)
	if err := b.Validate(99); err == nil {
		t.Fatal("empty lifecycle accepted")
	}
}

func TestPreemptionCycleIsLegal(t *testing.T) {
	b := New(100)
	steps := []Event{
		{At: 0, Kind: Arrive, ReqID: 1, Worker: -1}, {At: 1, Kind: Enqueue, ReqID: 1, Worker: -1},
		{At: 2, Kind: Dispatch, ReqID: 1, Worker: 0}, {At: 3, Kind: Start, ReqID: 1, Worker: 0}, {At: 13, Kind: Preempt, ReqID: 1, Worker: 0},
		{At: 14, Kind: Enqueue, ReqID: 1, Worker: -1}, {At: 15, Kind: Dispatch, ReqID: 1, Worker: 1}, {At: 16, Kind: Start, ReqID: 1, Worker: 1},
		{At: 20, Kind: Complete, ReqID: 1, Worker: 1}, {At: 22, Kind: Respond, ReqID: 1, Worker: -1},
	}
	for _, e := range steps {
		b.Record(e.At, e.Kind, e.ReqID, e.Worker)
	}
	if err := b.Validate(1); err != nil {
		t.Fatalf("legal preemption cycle rejected: %v", err)
	}
	if err := b.ValidateAll(); err != nil {
		t.Fatalf("ValidateAll: %v", err)
	}
}

func TestBufferCapacity(t *testing.T) {
	b := New(3)
	for i := 0; i < 5; i++ {
		b.Record(sim.Time(i), Arrive, uint64(i), -1)
	}
	if b.Len() != 3 {
		t.Fatalf("Len = %d, want 3", b.Len())
	}
	if b.Truncated() != 2 {
		t.Fatalf("Truncated = %d, want 2", b.Truncated())
	}
}

func TestEventString(t *testing.T) {
	e := Event{At: 100, Kind: Start, ReqID: 7, Worker: 3}
	if !strings.Contains(e.String(), "w=3") {
		t.Fatalf("Event.String = %q", e.String())
	}
	e.Worker = -1
	if strings.Contains(e.String(), "w=") {
		t.Fatalf("workerless event mentions worker: %q", e.String())
	}
}
