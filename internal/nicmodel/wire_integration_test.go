package nicmodel

import (
	"testing"
	"time"

	"mindgap/internal/sim"
	"mindgap/internal/wire"
)

// TestWireFramesThroughNIC carries real encoded Ethernet/IPv4/UDP frames
// (not just descriptors) through the steered datapath: the bytes a worker
// polls must decode to exactly what the sender built, and the frame's MAC
// addressing must agree with the steering decision.
func TestWireFramesThroughNIC(t *testing.T) {
	eng := sim.New()
	nic := New(eng, Config{InternalLatency: 2560 * time.Nanosecond})
	disp := nic.AddFunction("dispatcher", MACForIndex(0), 0)
	worker := nic.AddFunction("worker", MACForIndex(1), 0)

	// The dispatcher builds a real ASSIGN frame.
	out := wire.Frame{
		Eth: wire.Ethernet{Dst: worker.MAC(), Src: disp.MAC()},
		IP:  wire.IPv4{Src: [4]byte{10, 0, 0, 1}, Dst: [4]byte{10, 0, 0, 2}},
		UDP: wire.UDP{SrcPort: 9000, DstPort: 9001},
		App: wire.Header{
			Type:      wire.MsgAssign,
			ReqID:     0xabcdef,
			WorkerID:  1,
			ServiceNS: 5_000,
		},
		Payload: []byte("ctx"),
	}
	buf := make([]byte, 256)
	n, err := wire.EncodeFrame(buf, &out)
	if err != nil {
		t.Fatal(err)
	}
	raw := append([]byte(nil), buf[:n]...)

	// Steer by the Ethernet destination MAC, exactly as the Stingray does
	// (§3.3: "it is steered to the proper CPU based on the MAC address in
	// the Ethernet header").
	if !nic.Send(Frame{Dst: out.Eth.Dst, Src: out.Eth.Src, Bytes: out.WireSize(), Payload: raw}) {
		t.Fatal("frame not steered")
	}
	eng.Run()

	got, ok := worker.Poll()
	if !ok {
		t.Fatal("worker ring empty")
	}
	var in wire.Frame
	if err := wire.DecodeFrame(got.Payload.([]byte), &in); err != nil {
		t.Fatalf("decode at worker: %v", err)
	}
	if in.App.ReqID != 0xabcdef || in.App.Type != wire.MsgAssign || in.App.ServiceNS != 5000 {
		t.Fatalf("decoded header %+v", in.App)
	}
	if string(in.Payload) != "ctx" {
		t.Fatalf("payload %q", in.Payload)
	}
	if in.Eth.Dst != worker.MAC() || got.Dst != in.Eth.Dst {
		t.Fatal("steering MAC and frame MAC disagree")
	}
	if disp.Pending() != 0 {
		t.Fatal("frame leaked to the dispatcher function")
	}
}
