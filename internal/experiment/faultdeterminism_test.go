package experiment

import (
	"bytes"
	"context"
	"reflect"
	"runtime"
	"testing"

	"mindgap/internal/runner"
	"mindgap/scenarios"
)

// faultQuality mirrors zeroFaultQuality: the property under test is
// byte-identity, not statistical convergence, so small runs suffice.
var faultQuality = Quality{Warmup: 300, Measure: 2000, Seed: 7}

// renderFaultPreset renders one fault preset's figure CSV at the given
// runner parallelism.
func renderFaultPreset(t *testing.T, name string, parallelism int) []byte {
	t.Helper()
	p, err := scenarios.Load(name)
	if err != nil {
		t.Fatalf("load preset %s: %v", name, err)
	}
	spec, err := PresetFigureSpec(p, faultQuality)
	if err != nil {
		t.Fatalf("preset %s: %v", name, err)
	}
	f, err := spec.Run(context.Background(), &runner.Runner{Parallelism: parallelism})
	if err != nil {
		t.Fatalf("preset %s: %v", name, err)
	}
	var buf bytes.Buffer
	if err := f.WriteCSV(&buf); err != nil {
		t.Fatalf("preset %s: %v", name, err)
	}
	return buf.Bytes()
}

// TestFaultPresetsDeterministic is the reproducibility gate for the fault
// layer: a faulted sweep must be byte-identical across runner parallelism
// (-j1 vs -j4) and across GOMAXPROCS settings, because every source of
// fault randomness is a per-instance stream compiled from the scenario
// seed. This test deliberately has no -short skip — CI runs it under
// -race, where a shared Schedule between concurrently simulated points
// would also surface as a data race.
func TestFaultPresetsDeterministic(t *testing.T) {
	for _, name := range FaultPresetIDs() {
		name := name
		t.Run(name, func(t *testing.T) {
			serial := renderFaultPreset(t, name, 1)
			if len(serial) == 0 {
				t.Fatal("empty render")
			}
			for _, j := range []int{2, 4} {
				if got := renderFaultPreset(t, name, j); !bytes.Equal(got, serial) {
					t.Fatalf("-j%d output differs from -j1:\n%s\nvs\n%s", j, got, serial)
				}
			}
			old := runtime.GOMAXPROCS(1)
			single := renderFaultPreset(t, name, 4)
			runtime.GOMAXPROCS(old)
			if !bytes.Equal(single, serial) {
				t.Fatalf("GOMAXPROCS=1 output differs:\n%s\nvs\n%s", single, serial)
			}
		})
	}
}

// TestFaultTimelineDeterministic pins the recovery table the same way:
// two builds of the same preset produce identical phase rows and
// counters.
func TestFaultTimelineDeterministic(t *testing.T) {
	for _, name := range FaultPresetIDs() {
		a, err := FaultTimeline(name, faultQuality)
		if err != nil {
			t.Fatalf("FaultTimeline(%s): %v", name, err)
		}
		b, err := FaultTimeline(name, faultQuality)
		if err != nil {
			t.Fatalf("FaultTimeline(%s) rerun: %v", name, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("FaultTimeline(%s) not deterministic:\n%+v\nvs\n%+v", name, a, b)
		}
	}
}

// TestFaultTimelineShowsRecovery asserts the headline behaviour the
// recovery table exists to demonstrate: during the NIC crash window the
// degraded hash-steering path keeps goodput alive but with a visibly
// worse tail than the healthy phase, and after recovery the tail returns
// to its healthy neighbourhood.
func TestFaultTimelineShowsRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full-horizon faulted simulation")
	}
	r, err := FaultTimeline("figure-faults-niccrash", faultQuality)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Phases) != 4 {
		t.Fatalf("expected 4 phases, got %+v", r.Phases)
	}
	healthy, crash, recovered := r.Phases[0], r.Phases[1], r.Phases[3]
	if crash.Completed == 0 {
		t.Fatal("no completions during the crash window — degradation is not serving")
	}
	if r.Degraded == 0 {
		t.Fatal("no requests took the degraded steering path during the crash")
	}
	if crash.GoodputRPS < 0.5*healthy.GoodputRPS {
		t.Fatalf("degraded goodput collapsed: crash %.0f vs healthy %.0f rps",
			crash.GoodputRPS, healthy.GoodputRPS)
	}
	if crash.P99 < 2*healthy.P99 {
		t.Fatalf("crash-phase p99 (%v) not visibly degraded vs healthy (%v)",
			crash.P99, healthy.P99)
	}
	if recovered.P99 > 2*healthy.P99 {
		t.Fatalf("recovered p99 (%v) did not return near healthy (%v)",
			recovered.P99, healthy.P99)
	}
}
