package hypothesis

import (
	"sort"
	"strings"

	"mindgap/internal/experiment"
)

// MetricDef describes one comparable measurement of a simulated point.
type MetricDef struct {
	// Name is the spec-facing identifier.
	Name string
	// LowerBetter orients the comparison: latency and error rates are
	// minimized, goodput is maximized.
	LowerBetter bool
	// Unit labels values in FINDINGS tables ("ns", "rps", "fraction").
	Unit string
	// Attribution marks metrics that need a decision-audit collector
	// attached to the run (mis_dispatch); such points are measured
	// through experiment.RunAttributionPoint.
	Attribution bool
}

// metrics is the closed set of supported metrics. Each reads existing
// experiment accessors — the hypothesis layer never computes new
// statistics from raw events.
var metrics = map[string]MetricDef{
	"p50":          {Name: "p50", LowerBetter: true, Unit: "ns"},
	"p99":          {Name: "p99", LowerBetter: true, Unit: "ns"},
	"mean":         {Name: "mean", LowerBetter: true, Unit: "ns"},
	"max":          {Name: "max", LowerBetter: true, Unit: "ns"},
	"goodput":      {Name: "goodput", LowerBetter: false, Unit: "rps"},
	"drop_rate":    {Name: "drop_rate", LowerBetter: true, Unit: "fraction"},
	"mis_dispatch": {Name: "mis_dispatch", LowerBetter: true, Unit: "fraction"},
}

// metricNames returns the supported names, sorted, for error messages.
func metricNames() string {
	names := make([]string, 0, len(metrics))
	for n := range metrics {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// measurement is the per-point value carrier the executor caches: the
// conventional result plus the audit rate when attribution ran.
type measurement struct {
	Result experiment.Result
	// MisRate is the decision-audit mis-dispatch fraction (attribution
	// metrics only).
	MisRate float64
}

// value extracts the metric from one measured point.
func (d MetricDef) value(m measurement) float64 {
	switch d.Name {
	case "p50":
		return float64(m.Result.P50)
	case "p99":
		return float64(m.Result.P99)
	case "mean":
		return float64(m.Result.Mean)
	case "max":
		return float64(m.Result.Max)
	case "goodput":
		return m.Result.AchievedRPS
	case "drop_rate":
		total := m.Result.Completed + m.Result.Dropped
		if total == 0 {
			return 0
		}
		return float64(m.Result.Dropped) / float64(total)
	case "mis_dispatch":
		return m.MisRate
	default:
		panic("hypothesis: unknown metric " + d.Name)
	}
}
