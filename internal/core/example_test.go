package core_test

import (
	"fmt"
	"time"

	"mindgap/internal/core"
	"mindgap/internal/task"
)

// The scheduler state machine by hand: two workers with one credit each,
// three requests, a completion, and a preemption.
func ExampleLogic() {
	lgc := core.NewLogic(2, 1, core.LeastOutstanding)

	r1 := task.New(1, 0, 5*time.Microsecond)
	r2 := task.New(2, 0, 5*time.Microsecond)
	r3 := task.New(3, 0, 100*time.Microsecond)

	for _, r := range []*task.Request{r1, r2, r3} {
		for _, a := range lgc.Enqueue(0, r) {
			fmt.Printf("request %d → worker %d\n", a.Req.ID, a.Worker)
		}
	}
	fmt.Printf("queued: %d\n", lgc.QueueLen())

	// Worker 0 finishes request 1: the queued request 3 dispatches.
	for _, a := range lgc.Complete(0) {
		fmt.Printf("request %d → worker %d\n", a.Req.ID, a.Worker)
	}

	// Worker 0 preempts request 3: it requeues at the tail (empty queue,
	// so it re-dispatches immediately — possibly to another worker).
	for _, a := range lgc.Preempted(50_000, 0, r3) {
		fmt.Printf("request %d resumes on worker %d (remaining %v)\n",
			a.Req.ID, a.Worker, a.Req.Remaining)
	}
	// Output:
	// request 1 → worker 0
	// request 2 → worker 1
	// queued: 1
	// request 3 → worker 0
	// request 3 resumes on worker 0 (remaining 100µs)
}
