package experiment

import (
	"context"
	"time"

	"mindgap/internal/core"
	"mindgap/internal/runner"
	"mindgap/internal/scenario"
)

// PolicyRow is one row of the X10 experiment: the same system and workload
// under different worker-selection policies, isolating the value of the
// paper's core idea — host load feedback informing NIC decisions (§3.1).
type PolicyRow struct {
	Policy   core.Policy
	P50, P99 time.Duration
	Achieved float64
}

// PolicyAblationWith compares worker-selection policies on
// Shinjuku-Offload, one point per policy, concurrently on rn.
// Round-robin ignores load entirely; least-outstanding balances request
// *counts*; informed-least-loaded balances remaining *work* using host
// feedback. With shallow stashes the centralized FIFO absorbs nearly all
// imbalance and the policies tie (a finding in itself); the regime in the
// table-policy preset — deep stashes, dispersive non-preemptible service
// times — is where the informed policy earns its keep.
func PolicyAblationWith(ctx context.Context, rn *runner.Runner, q Quality) ([]PolicyRow, error) {
	p := mustPreset("table-policy")
	sw := runner.Sweep[Result]{Name: p.ID}
	policies := make([]core.Policy, len(p.Series))
	for i := range p.Series {
		sp := p.SpecFor(i)
		pol, err := scenario.ParsePolicy(sp.KnobsOrZero().Policy)
		if err != nil {
			return nil, err
		}
		policies[i] = pol
		s, err := specSeries(p.ID, p.Series[i].Label, sp, q)
		if err != nil {
			return nil, err
		}
		sw.Series = append(sw.Series, s)
	}
	res, err := runner.Run(ctx, rn, sw)
	var rows []PolicyRow
	for i, sr := range res {
		if len(sr.Results) == 0 {
			break // cancelled mid-sweep: keep complete rows only
		}
		r := sr.Results[0]
		rows = append(rows, PolicyRow{Policy: policies[i], P50: r.P50, P99: r.P99, Achieved: r.AchievedRPS})
	}
	return rows, err
}

// PolicyAblation runs PolicyAblationWith on the default parallel runner.
func PolicyAblation(q Quality) []PolicyRow {
	rows, _ := PolicyAblationWith(context.Background(), nil, q)
	return rows
}
