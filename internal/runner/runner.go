// Package runner executes declarative experiment sweeps on a bounded
// worker pool. Every measured point in this repository is an independent,
// deterministic simulation (its own sim.Engine, RNG streams, and
// recorder), so a figure grid is embarrassingly parallel: the runner
// fans points out across host cores, keys every result by its grid index
// so output ordering — and therefore rendered figures — is byte-identical
// at any parallelism, honours context cancellation between points, reports
// live progress through an internal/telemetry registry, and can memoise
// results in an on-disk cache so re-renders skip already-measured points.
//
// The package is deliberately generic: a Sweep[T] measures values of any
// JSON-serializable type T, so the figure grids (T = experiment.Result),
// the replicate harness (T = experiment.Result per seed), and the custom
// ablation experiments (dispersion, affinity, multi-tenant) all share one
// execution engine instead of hand-rolled serial loops.
package runner

import (
	"context"
	"runtime"
	"sync"

	"mindgap/internal/telemetry"
)

// Point is one schedulable unit of work: a closure that runs one
// simulation to completion and returns its measurement.
type Point[T any] struct {
	// Key is the point's stable cache identity. It must uniquely describe
	// everything that determines the measurement (system configuration,
	// workload, load, seed, quality, calibration constants). An empty Key
	// disables caching for the point.
	Key string
	// Run executes the point. It is called at most once per sweep and may
	// run concurrently with other points, so it must not share mutable
	// state with sibling closures.
	Run func() T
}

// Series is one labelled curve of a sweep: points in grid order.
type Series[T any] struct {
	// Label names the curve in figures.
	Label string
	// Points in grid (x-axis) order.
	Points []Point[T]
	// StopAfterSaturated truncates the series after this many consecutive
	// saturated points (0 keeps every point) — matching how the paper's
	// figures end shortly after the knee. Saturation is read from results
	// implementing interface{ IsSaturated() bool }; other types never
	// truncate. Truncation is applied to the *ordered* results, so the
	// cut falls at the same grid index at any parallelism; points past
	// the cut that have not started yet are skipped as an optimization.
	StopAfterSaturated int
}

// Sweep is a named declarative grid of measurement points.
type Sweep[T any] struct {
	// Name identifies the sweep in progress reports and telemetry.
	Name   string
	Series []Series[T]
}

// SeriesResult is one executed curve: results in grid order, truncated
// per StopAfterSaturated (and, after cancellation, to the contiguous
// completed prefix).
type SeriesResult[T any] struct {
	Label   string
	Results []T
}

// Event describes one completed point, delivered to Runner.Progress.
type Event struct {
	// Sweep and Series locate the point; Index is its grid position.
	Sweep, Series string
	Index         int
	// Done and Total count completed and scheduled points of the sweep.
	Done, Total int
	// Cached is set when the result came from the on-disk cache.
	Cached bool
}

// Runner owns the execution policy for sweeps: parallelism, telemetry,
// caching, and progress reporting. The zero value is a ready-to-use
// serial-equivalent runner at GOMAXPROCS parallelism with no cache.
// A single Runner may execute many sweeps, concurrently if desired.
type Runner struct {
	// Parallelism bounds concurrently running points; values <= 0 mean
	// runtime.GOMAXPROCS(0).
	Parallelism int
	// Metrics optionally receives live progress: counters
	// runner/points_total, runner/points_done, runner/cache_hits,
	// runner/points_skipped and gauge runner/inflight.
	Metrics *telemetry.Registry
	// Cache optionally memoises results of points with non-empty keys.
	Cache *Cache
	// Progress is invoked after every completed point (from worker
	// goroutines; it must be safe for concurrent use).
	Progress func(Event)
}

// saturated reports whether a measurement flags itself saturated.
func saturated(v any) bool {
	if m, ok := v.(interface{ IsSaturated() bool }); ok {
		return m.IsSaturated()
	}
	return false
}

// task locates one point in the sweep grid.
type task struct{ si, pi int }

// seriesState tracks per-series completion under state.mu.
type seriesState[T any] struct {
	results []T
	have    []bool
	// contig is the length of the contiguous completed prefix.
	contig int
	// satRun counts consecutive saturated points at the end of the
	// contiguous prefix.
	satRun int
	// cut is the index of the last point to keep, or -1 while the stop
	// rule has not triggered.
	cut int
}

// Run executes the sweep and returns one SeriesResult per declared
// series, in declaration order, with results in grid order — the output
// is byte-identical at -j1 and -jN. On context cancellation it stops
// scheduling new points, waits for in-flight points to finish (no
// goroutine leaks), and returns the contiguous completed prefix of every
// series together with ctx.Err(). A nil Runner behaves like &Runner{}.
func Run[T any](ctx context.Context, r *Runner, sw Sweep[T]) ([]SeriesResult[T], error) {
	if r == nil {
		r = &Runner{}
	}
	par := r.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}

	var tasks []task
	states := make([]*seriesState[T], len(sw.Series))
	for si, s := range sw.Series {
		states[si] = &seriesState[T]{
			results: make([]T, len(s.Points)),
			have:    make([]bool, len(s.Points)),
			cut:     -1,
		}
		for pi := range s.Points {
			tasks = append(tasks, task{si, pi})
		}
	}
	total := len(tasks)

	var (
		cTotal, cDone, cHits, cSkip *telemetry.Counter
		gInflight                   *telemetry.Gauge
	)
	if r.Metrics != nil {
		cTotal = r.Metrics.Counter("runner", "points_total")
		cDone = r.Metrics.Counter("runner", "points_done")
		cHits = r.Metrics.Counter("runner", "cache_hits")
		cSkip = r.Metrics.Counter("runner", "points_skipped")
		gInflight = r.Metrics.Gauge("runner", "inflight")
		cTotal.Add(int64(total))
	}

	var (
		mu       sync.Mutex
		done     int
		panicked any
		panicSet bool
	)

	// The feeder pushes tasks in grid order (so -j1 runs the exact serial
	// schedule) and stops at cancellation; closing the channel drains the
	// workers.
	runCtx, stopFeed := context.WithCancel(ctx)
	defer stopFeed()
	ch := make(chan task)
	go func() {
		defer close(ch)
		for _, t := range tasks {
			// Checked separately first: when a send and the cancellation are
			// both ready, select picks randomly, and a cancelled sweep must
			// never schedule another point.
			if runCtx.Err() != nil {
				return
			}
			select {
			case ch <- t:
			case <-runCtx.Done():
				return
			}
		}
	}()

	// complete records a finished point and advances the series' stop rule.
	complete := func(t task, v T, cached bool) {
		st := states[t.si]
		stop := sw.Series[t.si].StopAfterSaturated
		mu.Lock()
		st.results[t.pi] = v
		st.have[t.pi] = true
		for st.contig < len(st.have) && st.have[st.contig] {
			if saturated(st.results[st.contig]) {
				st.satRun++
				if stop > 0 && st.satRun >= stop && st.cut < 0 {
					st.cut = st.contig
				}
			} else {
				st.satRun = 0
			}
			st.contig++
		}
		done++
		doneNow := done
		mu.Unlock()
		if cDone != nil {
			cDone.Inc()
			if cached {
				cHits.Inc()
			}
		}
		if r.Progress != nil {
			r.Progress(Event{
				Sweep:  sw.Name,
				Series: sw.Series[t.si].Label,
				Index:  t.pi,
				Done:   doneNow,
				Total:  total,
				Cached: cached,
			})
		}
	}

	// pruned reports whether the point lies beyond its series' cut and can
	// be skipped without affecting the (truncated) output.
	pruned := func(t task) bool {
		st := states[t.si]
		mu.Lock()
		defer mu.Unlock()
		return st.cut >= 0 && t.pi > st.cut
	}

	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					mu.Lock()
					if !panicSet {
						panicked, panicSet = p, true
					}
					mu.Unlock()
					stopFeed()
				}
			}()
			for t := range ch {
				if pruned(t) {
					if cSkip != nil {
						cSkip.Inc()
					}
					continue
				}
				p := sw.Series[t.si].Points[t.pi]
				if r.Cache != nil && p.Key != "" {
					var v T
					if r.Cache.get(p.Key, &v) {
						complete(t, v, true)
						continue
					}
				}
				if gInflight != nil {
					gInflight.Add(1)
				}
				v := p.Run()
				if gInflight != nil {
					gInflight.Add(-1)
				}
				if r.Cache != nil && p.Key != "" {
					r.Cache.put(p.Key, v)
				}
				complete(t, v, false)
			}
		}()
	}
	wg.Wait()
	if panicSet {
		panic(panicked)
	}

	mu.Lock()
	out := make([]SeriesResult[T], len(sw.Series))
	for si, s := range sw.Series {
		st := states[si]
		n := st.contig
		if st.cut >= 0 && st.cut+1 < n {
			n = st.cut + 1
		}
		out[si] = SeriesResult[T]{Label: s.Label, Results: st.results[:n:n]}
	}
	mu.Unlock()
	if ctx.Err() != nil {
		return out, ctx.Err()
	}
	return out, nil
}

// RunOne is the single-series convenience form of Run.
func RunOne[T any](ctx context.Context, r *Runner, name string, s Series[T]) ([]T, error) {
	res, err := Run(ctx, r, Sweep[T]{Name: name, Series: []Series[T]{s}})
	return res[0].Results, err
}
