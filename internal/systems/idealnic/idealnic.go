// Package idealnic builds the §5 "ideal SmartNIC" ablations: the
// Shinjuku-Offload architecture with each hardware limitation of §5.1
// removed in turn, to show which fix recovers the Figure 6 loss.
//
//   - WithCXL: coherent shared memory replaces packet-based NIC↔host
//     communication (§5.1 suggestion 2) — 0.5 µs one way instead of
//     2.56 µs, with cache-line-cheap message construction.
//   - WithLineRate: the dispatcher runs in FPGA/ASIC hardware at line rate
//     (§5.1 suggestion 1) instead of ARM cores.
//   - WithDirectInterrupts: the NIC posts preemption interrupts straight to
//     host cores (§5.1 suggestion 3), removing the self-arm timer and its
//     unnecessary preemptions.
//   - Full: all three combined — the paper's ideal NIC (§3.1).
package idealnic

import (
	"strings"
	"time"

	"mindgap/internal/core"
	"mindgap/internal/params"
	"mindgap/internal/sim"
	"mindgap/internal/stats"
	"mindgap/internal/task"
	"mindgap/internal/telemetry"
	"mindgap/internal/trace"
)

// Config describes the ablation point.
type Config struct {
	// P is the baseline hardware cost model (before ablations).
	P params.Params
	// Workers, Outstanding, Slice, Policy as in core.OffloadConfig.
	Workers     int
	Outstanding int
	Slice       time.Duration
	Policy      core.Policy

	// CXL, LineRate, DirectInterrupts select which §5.1 fixes to apply.
	CXL              bool
	LineRate         bool
	DirectInterrupts bool

	// Tracer and Metrics forward to the underlying Offload's
	// observability hooks.
	Tracer  *trace.Buffer
	Metrics *telemetry.Registry
}

// System is an ablated Offload with its own name, so report rows
// distinguish "idealnic/cxl" from the stock "shinjuku-offload".
type System struct {
	*core.Offload
	name string
}

// Name identifies the ablation point in reports.
func (s *System) Name() string { return s.name }

// New assembles the ablated system on top of the core Offload machinery.
func New(eng *sim.Engine, cfg Config, rec *stats.Recorder, done func(*task.Request)) *System {
	p := cfg.P
	if cfg.CXL {
		p = p.WithCXL()
	}
	if cfg.LineRate {
		p = p.WithLineRateScheduler()
	}
	off := core.NewOffload(eng, core.OffloadConfig{
		P:                p,
		Workers:          cfg.Workers,
		Outstanding:      cfg.Outstanding,
		Slice:            cfg.Slice,
		Policy:           cfg.Policy,
		DirectInterrupts: cfg.DirectInterrupts,
		Tracer:           cfg.Tracer,
		Metrics:          cfg.Metrics,
	}, rec, done)
	return &System{Offload: off, name: NameFor(cfg)}
}

// NameFor returns the system name for the ablation point: "idealnic"
// bare, or "idealnic/" plus the "+"-joined active ablations, e.g.
// "idealnic/cxl" or "idealnic/cxl+linerate+directirq".
func NameFor(cfg Config) string {
	var abl []string
	if cfg.CXL {
		abl = append(abl, "cxl")
	}
	if cfg.LineRate {
		abl = append(abl, "linerate")
	}
	if cfg.DirectInterrupts {
		abl = append(abl, "directirq")
	}
	if len(abl) == 0 {
		return "idealnic"
	}
	return "idealnic/" + strings.Join(abl, "+")
}
