// Package dist provides the service-time and inter-arrival distributions
// used by the synthetic workloads in the paper's evaluation (§4.1): fixed
// service times, the 99.5%/0.5% bimodal mix, and the heavier-tailed shapes
// (exponential, log-normal, Pareto) used by the extension experiments.
package dist

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Distribution produces positive durations. Implementations must be
// deterministic given the caller's RNG, so simulations are reproducible.
type Distribution interface {
	// Sample draws one value using r.
	Sample(r *rand.Rand) time.Duration
	// Mean returns the distribution's expected value.
	Mean() time.Duration
	// String describes the distribution in the same mini-language accepted
	// by Parse.
	String() string
}

// Fixed is a degenerate distribution: every sample equals D.
type Fixed struct {
	D time.Duration
}

// Sample implements Distribution.
func (f Fixed) Sample(*rand.Rand) time.Duration { return f.D }

// Mean implements Distribution.
func (f Fixed) Mean() time.Duration { return f.D }

func (f Fixed) String() string { return fmt.Sprintf("fixed:%s", f.D) }

// Bimodal mixes two fixed service times. The paper's Figure 2 workload is
// Bimodal{P1: 0.995, D1: 5µs, D2: 100µs}.
type Bimodal struct {
	// P1 is the probability of drawing D1; D2 is drawn otherwise.
	P1     float64
	D1, D2 time.Duration
}

// Sample implements Distribution.
func (b Bimodal) Sample(r *rand.Rand) time.Duration {
	if r.Float64() < b.P1 {
		return b.D1
	}
	return b.D2
}

// Mean implements Distribution.
func (b Bimodal) Mean() time.Duration {
	m := b.P1*float64(b.D1) + (1-b.P1)*float64(b.D2)
	return time.Duration(m)
}

func (b Bimodal) String() string {
	return fmt.Sprintf("bimodal:%g:%s:%s", b.P1, b.D1, b.D2)
}

// Exponential has the given mean; it models memoryless service times and is
// also the inter-arrival distribution of the open-loop Poisson load
// generator.
type Exponential struct {
	M time.Duration
}

// Sample implements Distribution.
func (e Exponential) Sample(r *rand.Rand) time.Duration {
	d := time.Duration(r.ExpFloat64() * float64(e.M))
	if d <= 0 {
		d = 1 // clamp: zero-length work items confuse occupancy accounting
	}
	return d
}

// Mean implements Distribution.
func (e Exponential) Mean() time.Duration { return e.M }

func (e Exponential) String() string { return fmt.Sprintf("exp:%s", e.M) }

// LogNormal is parameterized by the underlying normal's mu and sigma, with
// durations expressed in nanoseconds: a sample is exp(mu + sigma·Z) ns.
type LogNormal struct {
	Mu, Sigma float64
}

// Sample implements Distribution.
func (l LogNormal) Sample(r *rand.Rand) time.Duration {
	d := time.Duration(math.Exp(l.Mu + l.Sigma*r.NormFloat64()))
	if d <= 0 {
		d = 1
	}
	return d
}

// Mean implements Distribution.
func (l LogNormal) Mean() time.Duration {
	return time.Duration(math.Exp(l.Mu + l.Sigma*l.Sigma/2))
}

func (l LogNormal) String() string { return fmt.Sprintf("lognormal:%g:%g", l.Mu, l.Sigma) }

// Pareto is a bounded Pareto with shape Alpha and minimum Min, truncated at
// Max (0 means untruncated). High-dispersion FaaS-like workloads use this.
type Pareto struct {
	Min   time.Duration
	Alpha float64
	Max   time.Duration
}

// Sample implements Distribution.
func (p Pareto) Sample(r *rand.Rand) time.Duration {
	u := r.Float64()
	//lint:allow floateq rejecting the exact value 0 from the seeded rng; any nonzero u is a valid draw
	for u == 0 {
		u = r.Float64()
	}
	d := time.Duration(float64(p.Min) / math.Pow(u, 1/p.Alpha))
	if p.Max > 0 && d > p.Max {
		d = p.Max
	}
	if d <= 0 {
		d = 1
	}
	return d
}

// Mean implements Distribution. For Alpha <= 1 the untruncated mean
// diverges; a truncated Pareto falls back to a numeric estimate.
func (p Pareto) Mean() time.Duration {
	if p.Max == 0 {
		if p.Alpha <= 1 {
			return time.Duration(math.MaxInt64)
		}
		return time.Duration(p.Alpha * float64(p.Min) / (p.Alpha - 1))
	}
	// Mean of a bounded Pareto on [L, H].
	l, h, a := float64(p.Min), float64(p.Max), p.Alpha
	//lint:allow floateq alpha exactly 1 selects the log-form closed formula; the general branch handles every nearby alpha
	if a == 1 {
		return time.Duration(l * h / (h - l) * math.Log(h/l))
	}
	num := math.Pow(l, a) / (1 - math.Pow(l/h, a)) * a / (a - 1) *
		(1/math.Pow(l, a-1) - 1/math.Pow(h, a-1))
	return time.Duration(num)
}

func (p Pareto) String() string {
	if p.Max > 0 {
		return fmt.Sprintf("pareto:%s:%g:%s", p.Min, p.Alpha, p.Max)
	}
	return fmt.Sprintf("pareto:%s:%g", p.Min, p.Alpha)
}

// Uniform draws uniformly from [Lo, Hi].
type Uniform struct {
	Lo, Hi time.Duration
}

// Sample implements Distribution.
func (u Uniform) Sample(r *rand.Rand) time.Duration {
	if u.Hi <= u.Lo {
		return u.Lo
	}
	return u.Lo + time.Duration(r.Int64N(int64(u.Hi-u.Lo)+1))
}

// Mean implements Distribution.
func (u Uniform) Mean() time.Duration { return (u.Lo + u.Hi) / 2 }

func (u Uniform) String() string { return fmt.Sprintf("uniform:%s:%s", u.Lo, u.Hi) }

// Mixture is a general finite mixture of component distributions, used to
// compose multi-class workloads (e.g. co-located latency classes, §2.2).
type Mixture struct {
	Weights    []float64
	Components []Distribution
	cum        []float64
}

// NewMixture builds a mixture, normalizing weights. It panics on mismatched
// or empty inputs since a mixture is always constructed from literals.
func NewMixture(weights []float64, components []Distribution) *Mixture {
	if len(weights) == 0 || len(weights) != len(components) {
		panic("dist: mixture needs equal, non-zero numbers of weights and components")
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("dist: negative mixture weight")
		}
		total += w
	}
	//lint:allow floateq config validation: an all-zero weight vector sums to exactly 0, not to a rounding artifact
	if total == 0 {
		panic("dist: mixture weights sum to zero")
	}
	m := &Mixture{Weights: weights, Components: components}
	acc := 0.0
	for _, w := range weights {
		acc += w / total
		m.cum = append(m.cum, acc)
	}
	m.cum[len(m.cum)-1] = 1.0 // guard against rounding
	return m
}

// Sample implements Distribution.
func (m *Mixture) Sample(r *rand.Rand) time.Duration {
	u := r.Float64()
	i := sort.SearchFloat64s(m.cum, u)
	if i >= len(m.Components) {
		i = len(m.Components) - 1
	}
	return m.Components[i].Sample(r)
}

// Mean implements Distribution.
func (m *Mixture) Mean() time.Duration {
	total := 0.0
	for _, w := range m.Weights {
		total += w
	}
	acc := 0.0
	for i, w := range m.Weights {
		acc += w / total * float64(m.Components[i].Mean())
	}
	return time.Duration(acc)
}

func (m *Mixture) String() string {
	parts := make([]string, len(m.Components))
	for i, c := range m.Components {
		parts[i] = fmt.Sprintf("%g*(%s)", m.Weights[i], c)
	}
	return "mix:" + strings.Join(parts, "+")
}

// Parse reads the textual mini-language used by the CLIs:
//
//	fixed:5us
//	bimodal:0.995:5us:100us
//	exp:10us
//	lognormal:8.5:1.2
//	pareto:1us:1.5[:1ms]
//	uniform:1us:10us
func Parse(s string) (Distribution, error) {
	fields := strings.Split(s, ":")
	bad := func() (Distribution, error) {
		return nil, fmt.Errorf("dist: cannot parse %q", s)
	}
	dur := func(f string) (time.Duration, bool) {
		d, err := time.ParseDuration(f)
		return d, err == nil && d > 0
	}
	switch fields[0] {
	case "fixed":
		if len(fields) != 2 {
			return bad()
		}
		d, ok := dur(fields[1])
		if !ok {
			return bad()
		}
		return Fixed{D: d}, nil
	case "bimodal":
		if len(fields) != 4 {
			return bad()
		}
		p, err := strconv.ParseFloat(fields[1], 64)
		if err != nil || p < 0 || p > 1 {
			return bad()
		}
		d1, ok1 := dur(fields[2])
		d2, ok2 := dur(fields[3])
		if !ok1 || !ok2 {
			return bad()
		}
		return Bimodal{P1: p, D1: d1, D2: d2}, nil
	case "exp":
		if len(fields) != 2 {
			return bad()
		}
		d, ok := dur(fields[1])
		if !ok {
			return bad()
		}
		return Exponential{M: d}, nil
	case "lognormal":
		if len(fields) != 3 {
			return bad()
		}
		mu, err1 := strconv.ParseFloat(fields[1], 64)
		sigma, err2 := strconv.ParseFloat(fields[2], 64)
		if err1 != nil || err2 != nil || sigma < 0 {
			return bad()
		}
		return LogNormal{Mu: mu, Sigma: sigma}, nil
	case "pareto":
		if len(fields) != 3 && len(fields) != 4 {
			return bad()
		}
		min, ok := dur(fields[1])
		if !ok {
			return bad()
		}
		alpha, err := strconv.ParseFloat(fields[2], 64)
		if err != nil || alpha <= 0 {
			return bad()
		}
		p := Pareto{Min: min, Alpha: alpha}
		if len(fields) == 4 {
			max, ok := dur(fields[3])
			if !ok || max < min {
				return bad()
			}
			p.Max = max
		}
		return p, nil
	case "uniform":
		if len(fields) != 3 {
			return bad()
		}
		lo, ok1 := dur(fields[1])
		hi, ok2 := dur(fields[2])
		if !ok1 || !ok2 || hi < lo {
			return bad()
		}
		return Uniform{Lo: lo, Hi: hi}, nil
	}
	return bad()
}
