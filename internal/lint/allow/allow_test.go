package allow_test

import (
	"testing"

	"mindgap/internal/lint/allow"
	"mindgap/internal/lint/linttest"
)

// TestDirectives proves, among other cases, that a //lint:allow
// directive without a reason is itself a diagnostic.
func TestDirectives(t *testing.T) {
	linttest.Run(t, allow.Analyzer, "mindgap/internal/queue", "testdata/d")
}
