package lockedsend_test

import (
	"testing"

	"mindgap/internal/lint/linttest"
	"mindgap/internal/lint/lockedsend"
)

func TestLockedSend(t *testing.T) {
	linttest.Run(t, lockedsend.Analyzer, "mindgap/internal/telemetry", "testdata/l")
}
