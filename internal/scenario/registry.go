package scenario

import (
	"fmt"
	"sort"
	"strings"

	"mindgap/internal/attr"
	"mindgap/internal/core"
	"mindgap/internal/params"
	"mindgap/internal/sim"
	"mindgap/internal/stats"
	"mindgap/internal/systems/erss"
	"mindgap/internal/systems/flowrule"
	"mindgap/internal/systems/idealnic"
	"mindgap/internal/systems/rpcvalet"
	"mindgap/internal/systems/rtc"
	"mindgap/internal/systems/shinjuku"
	"mindgap/internal/task"
	"mindgap/internal/telemetry"
	"mindgap/internal/trace"
)

// Options carries per-run wiring that is not part of a scenario's
// identity: the calibration constants and optional observability sinks.
type Options struct {
	// Params overrides the hardware cost model (nil = params.Default()).
	Params *params.Params
	// Tracer, when non-nil, records request lifecycles. Only systems
	// that support tracing accept it; others refuse to build.
	Tracer *trace.Buffer
	// Metrics, when non-nil, wires component probes into the registry.
	// Only systems that support telemetry accept it.
	Metrics *telemetry.Registry
	// Attr, when non-nil, attaches the latency-attribution collector:
	// per-request phase decomposition plus a ground-truth decision audit.
	// Only systems whose builders declare Attributable accept it.
	Attr *attr.Collector
}

func (o Options) params() params.Params {
	if o.Params != nil {
		return *o.Params
	}
	return params.Default()
}

// Builder registers one system kind: its registry name, documentation,
// the knobs it accepts, and the function that assembles it.
type Builder struct {
	// Name is the registry key ("offload", "shinjuku", ...).
	Name string
	// Doc is a one-line description for -list-systems.
	Doc string
	// Knobs lists the JSON names of the knobs this kind accepts; Build
	// rejects specs that set any other knob.
	Knobs []string
	// Observable marks systems that accept Options.Tracer / Options.Metrics.
	Observable bool
	// Faultable marks systems that accept a Spec.Faults schedule — they
	// can stretch, drop, retry, and degrade. Systems without the machinery
	// refuse faulted specs instead of silently simulating healthy hardware.
	Faultable bool
	// Attributable marks systems wired with latency-attribution hooks:
	// they accept Options.Attr / Spec.Attribution and feed the collector
	// phase marks and dispatch audits. Others refuse, instead of silently
	// returning empty waterfalls.
	Attributable bool
	// FlowWorkload marks systems that key on flow identity: they require
	// a Spec.Flow block (and are driven by the flow generator), while
	// every other system rejects one — the workload model is part of the
	// contract, not a silent default.
	FlowWorkload bool
	// Build assembles the factory from the validated spec (knobs have
	// passed checkKnobs; faulted specs have passed the fault gate).
	Build func(o Options, sp Spec) (Factory, error)
}

// checkKnobs rejects knobs the kind does not accept.
func (b Builder) checkKnobs(k Knobs) error {
	allowed := make(map[string]bool, len(b.Knobs))
	for _, n := range b.Knobs {
		allowed[n] = true
	}
	var bad []string
	for _, n := range k.set() {
		if !allowed[n] {
			bad = append(bad, n)
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("scenario: system %q does not accept knob(s) %s (accepted: %s)",
			b.Name, strings.Join(bad, ", "), strings.Join(b.Knobs, ", "))
	}
	return nil
}

// registry maps system names to builders. It is written once during
// package init and read-only afterwards.
var registry = map[string]Builder{}

// Register adds a system kind; duplicate names are a programmer error.
func Register(b Builder) {
	if b.Name == "" || b.Build == nil {
		panic("scenario: Register needs a name and a build function")
	}
	if _, dup := registry[b.Name]; dup {
		panic("scenario: duplicate system " + b.Name)
	}
	registry[b.Name] = b
}

// Lookup returns the builder registered under name.
func Lookup(name string) (Builder, bool) {
	b, ok := registry[name]
	return b, ok
}

// Systems returns every registered builder, sorted by name.
func Systems() []Builder {
	out := make([]Builder, 0, len(registry))
	for _, b := range registry {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SystemNames returns the sorted registry names.
func SystemNames() []string {
	sys := Systems()
	out := make([]string, len(sys))
	for i, b := range sys {
		out[i] = b.Name
	}
	return out
}

func unknownSystemError(name string) error {
	return fmt.Errorf("scenario: unknown system %q (known: %s)",
		name, strings.Join(SystemNames(), ", "))
}

// Build assembles the spec's system factory with default options. It is
// the single assembly point for every system in the repository: knob
// validation happens here, so an invalid spec fails before any
// simulation runs.
func Build(sp Spec) (Factory, error) { return BuildWith(sp, Options{}) }

// BuildWith assembles the spec's system factory with explicit options.
func BuildWith(sp Spec, o Options) (Factory, error) {
	b, ok := Lookup(sp.System)
	if !ok {
		return nil, unknownSystemError(sp.System)
	}
	k := sp.KnobsOrZero()
	if err := b.checkKnobs(k); err != nil {
		return nil, err
	}
	if k.Workers < 1 {
		return nil, fmt.Errorf("scenario: system %q needs workers >= 1", sp.System)
	}
	if (o.Tracer != nil || o.Metrics != nil || sp.Trace || sp.Telemetry) && !b.Observable {
		return nil, fmt.Errorf("scenario: system %q does not support tracing/telemetry", sp.System)
	}
	if err := sp.checkFlow(b); err != nil {
		return nil, err
	}
	if (o.Attr != nil || sp.Attribution) && !b.Attributable {
		return nil, fmt.Errorf("scenario: system %q does not support latency attribution", sp.System)
	}
	if sp.Faults != nil {
		if sp.Faults.Empty() {
			return nil, fmt.Errorf("scenario: %s: faults block present but empty — drop it for a healthy system", sp.System)
		}
		if !b.Faultable {
			return nil, fmt.Errorf("scenario: system %q cannot degrade and rejects fault schedules", sp.System)
		}
		if err := sp.Faults.Validate(); err != nil {
			return nil, fmt.Errorf("scenario: %s: %w", sp.System, err)
		}
		if sp.Seed == 0 {
			return nil, fmt.Errorf("scenario: %s: faulted specs must pin a nonzero seed", sp.System)
		}
		if len(sp.Seeds) > 0 {
			return nil, fmt.Errorf("scenario: %s: faulted specs take a single pinned seed, not a seeds list", sp.System)
		}
	}
	return b.Build(o, sp)
}

// ParsePolicy maps a policy knob string to the core policy; the empty
// string is the default (least-outstanding, the paper prototype's
// idle-first FIFO dispatch).
func ParsePolicy(s string) (core.Policy, error) {
	switch s {
	case "", core.LeastOutstanding.String():
		return core.LeastOutstanding, nil
	case core.RoundRobin.String():
		return core.RoundRobin, nil
	case core.InformedLeastLoaded.String():
		return core.InformedLeastLoaded, nil
	}
	return 0, fmt.Errorf("scenario: unknown policy %q (known: %s, %s, %s)",
		s, core.LeastOutstanding, core.RoundRobin, core.InformedLeastLoaded)
}

// rtcBuilder makes a run-to-completion variant builder (RSS, ZygOS,
// Flow Director differ only in steering and stealing).
func rtcBuilder(name, doc string, cfg func(k Knobs) rtc.Config) Builder {
	return Builder{
		Name:         name,
		Doc:          doc,
		Knobs:        []string{"workers", "queue_cap"},
		Attributable: true,
		Build: func(o Options, sp Spec) (Factory, error) {
			k := sp.KnobsOrZero()
			c := cfg(k)
			c.P = o.params()
			c.Workers = k.Workers
			c.QueueCap = k.QueueCap
			c.Attr = o.Attr
			return func(eng *sim.Engine, rec *stats.Recorder, done func(*task.Request)) System {
				return rtc.New(eng, c, rec, done)
			}, nil
		},
	}
}

func init() {
	Register(Builder{
		Name: "offload",
		Doc:  "Shinjuku-Offload: the paper's informed NIC-resident scheduler (§3)",
		Knobs: []string{"workers", "outstanding", "slice", "policy", "load_feedback",
			"dispatch_burst", "ddio_to_l1", "admission_limit", "affinity"},
		Observable:   true,
		Faultable:    true,
		Attributable: true,
		Build: func(o Options, sp Spec) (Factory, error) {
			k := sp.KnobsOrZero()
			pol, err := ParsePolicy(k.Policy)
			if err != nil {
				return nil, err
			}
			if k.Outstanding < 1 {
				return nil, fmt.Errorf("scenario: offload needs outstanding >= 1")
			}
			cfg := core.OffloadConfig{
				P:              o.params(),
				Workers:        k.Workers,
				Outstanding:    k.Outstanding,
				Slice:          k.Slice.D(),
				Policy:         pol,
				LoadFeedback:   k.LoadFeedback,
				DispatchBurst:  k.DispatchBurst,
				DDIOToL1:       k.DDIOToL1,
				AdmissionLimit: k.AdmissionLimit,
				Affinity:       k.Affinity,
				Tracer:         o.Tracer,
				Attr:           o.Attr,
				Metrics:        o.Metrics,
			}
			if sp.Faults != nil {
				// Each system instance compiles its own schedule: the loss
				// stream and counters are per-run state, and sweep points run
				// concurrently. The fault stream is seeded by the spec's
				// pinned seed (BuildWith enforces it is nonzero).
				cfg.FaultSpec = sp.Faults
				cfg.FaultSeed = sp.Seed
			}
			return func(eng *sim.Engine, rec *stats.Recorder, done func(*task.Request)) System {
				return core.NewOffload(eng, cfg, rec, done)
			}, nil
		},
	})

	Register(Builder{
		Name:         "shinjuku",
		Doc:          "vanilla Shinjuku: host-core networker + dispatcher baseline (§2.1)",
		Knobs:        []string{"workers", "outstanding", "slice", "policy", "sockets"},
		Attributable: true,
		Build: func(o Options, sp Spec) (Factory, error) {
			k := sp.KnobsOrZero()
			pol, err := ParsePolicy(k.Policy)
			if err != nil {
				return nil, err
			}
			cfg := shinjuku.Config{
				P:           o.params(),
				Workers:     k.Workers,
				Slice:       k.Slice.D(),
				Outstanding: k.Outstanding,
				Policy:      pol,
				Sockets:     k.Sockets,
				Attr:        o.Attr,
			}
			return func(eng *sim.Engine, rec *stats.Recorder, done func(*task.Request)) System {
				return shinjuku.New(eng, cfg, rec, done)
			}, nil
		},
	})

	Register(rtcBuilder("rss",
		"IX-style RSS: hash steering, run to completion, no preemption (§2.1)",
		func(Knobs) rtc.Config { return rtc.Config{} }))
	Register(rtcBuilder("zygos",
		"ZygOS: RSS steering plus work stealing from sibling queues (§2.1)",
		func(Knobs) rtc.Config { return rtc.Config{WorkStealing: true} }))
	Register(rtcBuilder("flowdir",
		"MICA-style Flow Director: key-affinity steering, run to completion (§2.1)",
		func(Knobs) rtc.Config { return rtc.Config{Steering: rtc.SteerKey} }))

	Register(Builder{
		Name:  "rpcvalet",
		Doc:   "RPCValet: NI-integrated single queue, no preemption (§2.1)",
		Knobs: []string{"workers"},
		Build: func(o Options, sp Spec) (Factory, error) {
			k := sp.KnobsOrZero()
			cfg := rpcvalet.Config{P: o.params(), Workers: k.Workers}
			return func(eng *sim.Engine, rec *stats.Recorder, done func(*task.Request)) System {
				return rpcvalet.New(eng, cfg, rec, done)
			}, nil
		},
	})

	Register(Builder{
		Name:  "erss",
		Doc:   "Elastic RSS: load feedback resizes the core set, fixed policy (§5.1)",
		Knobs: []string{"workers", "min_workers", "interval", "up_threshold", "down_threshold"},
		Build: func(o Options, sp Spec) (Factory, error) {
			k := sp.KnobsOrZero()
			cfg := erss.Config{
				P:             o.params(),
				Workers:       k.Workers,
				MinWorkers:    k.MinWorkers,
				Interval:      k.Interval.D(),
				UpThreshold:   k.UpThreshold,
				DownThreshold: k.DownThreshold,
			}
			return func(eng *sim.Engine, rec *stats.Recorder, done func(*task.Request)) System {
				return erss.New(eng, cfg, rec, done)
			}, nil
		},
	})

	Register(Builder{
		Name: "flowrule",
		Doc:  "SmartNIC flow-rule offload: bounded rule insertion, LRU table, fast/slow path steering",
		Knobs: []string{"workers", "rule_capacity", "insert_rate", "insert_queue",
			"offload_threshold", "adaptive_threshold", "adapt_interval", "idle_timeout",
			"fast_latency", "slow_latency", "slow_queue"},
		Observable:   true,
		Attributable: true,
		FlowWorkload: true,
		Build: func(o Options, sp Spec) (Factory, error) {
			if o.Tracer != nil || sp.Trace {
				return nil, fmt.Errorf("scenario: flowrule exposes telemetry probes, not request traces")
			}
			k := sp.KnobsOrZero()
			cfg := flowrule.Config{
				P:              o.params(),
				Workers:        k.Workers,
				RuleCapacity:   k.RuleCapacity,
				InsertRate:     k.InsertRate,
				InsertQueueCap: k.InsertQueue,
				Threshold:      k.OffloadThreshold,
				Adaptive:       k.AdaptiveThreshold,
				AdaptInterval:  k.AdaptInterval.D(),
				IdleTimeout:    k.IdleTimeout.D(),
				FastLatency:    k.FastLatency.D(),
				SlowLatency:    k.SlowLatency.D(),
				SlowQueueCap:   k.SlowQueue,
				Metrics:        o.Metrics,
				Attr:           o.Attr,
			}
			return func(eng *sim.Engine, rec *stats.Recorder, done func(*task.Request)) System {
				return flowrule.New(eng, cfg, rec, done)
			}, nil
		},
	})

	Register(Builder{
		Name:       "idealnic",
		Doc:        "§5 ideal SmartNIC ablations: CXL memory, line-rate scheduler, direct interrupts",
		Knobs:      []string{"workers", "outstanding", "slice", "policy", "cxl", "linerate", "directirq"},
		Observable: true,
		Build: func(o Options, sp Spec) (Factory, error) {
			k := sp.KnobsOrZero()
			pol, err := ParsePolicy(k.Policy)
			if err != nil {
				return nil, err
			}
			if k.Outstanding < 1 {
				return nil, fmt.Errorf("scenario: idealnic needs outstanding >= 1")
			}
			cfg := idealnic.Config{
				P:                o.params(),
				Workers:          k.Workers,
				Outstanding:      k.Outstanding,
				Slice:            k.Slice.D(),
				Policy:           pol,
				CXL:              k.CXL,
				LineRate:         k.LineRate,
				DirectInterrupts: k.DirectInterrupts,
				Tracer:           o.Tracer,
				Metrics:          o.Metrics,
			}
			return func(eng *sim.Engine, rec *stats.Recorder, done func(*task.Request)) System {
				return idealnic.New(eng, cfg, rec, done)
			}, nil
		},
	})
}
