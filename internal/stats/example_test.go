package stats_test

import (
	"fmt"
	"time"

	"mindgap/internal/stats"
)

// Recording latencies and reading the percentiles the paper plots.
func ExampleHistogram() {
	var h stats.Histogram
	for i := 1; i <= 99; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	h.Record(time.Millisecond) // one outlier in a hundred

	fmt.Printf("n=%d\n", h.Count())
	// Quantiles are conservative upper bounds with ≤1.6% relative error
	// (log-linear buckets), hence 50.175µs rather than exactly 50µs.
	fmt.Printf("p50=%v\n", h.P50())
	fmt.Printf("p99=%v\n", h.Quantile(0.99))
	fmt.Printf("max=%v\n", h.Max())
	// Output:
	// n=100
	// p50=50.175µs
	// p99=99.327µs
	// max=1ms
}
