package floateq_test

import (
	"testing"

	"mindgap/internal/lint/floateq"
	"mindgap/internal/lint/linttest"
)

func TestStatsPackage(t *testing.T) {
	linttest.Run(t, floateq.Analyzer, "mindgap/internal/stats", "testdata/stats")
}

func TestExemptPackage(t *testing.T) {
	linttest.Run(t, floateq.Analyzer, "mindgap/examples/demo", "testdata/exempt")
}
