package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"mindgap/internal/sim"
)

func TestCounterGaugeHistogram(t *testing.T) {
	reg := NewRegistry()

	c := reg.Counter("sched", "shed")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if reg.Counter("sched", "shed") != c {
		t.Fatal("Counter is not get-or-create")
	}

	g := reg.Gauge("worker0", "load")
	g.Set(2.5)
	g.Add(0.5)
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge = %g, want 3", got)
	}

	depth := 7
	reg.GaugeFunc("queue", "depth", func() float64 { return float64(depth) })
	if v, ok := reg.GaugeValue("queue/depth"); !ok || v != 7 {
		t.Fatalf("GaugeValue(queue/depth) = %g, %v", v, ok)
	}
	depth = 9
	if v, _ := reg.GaugeValue("queue/depth"); v != 9 {
		t.Fatalf("probe gauge not re-evaluated: %g", v)
	}

	h := reg.Histogram("fabric", "latency")
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	sum := h.Summary()
	if sum.Count != 100 {
		t.Fatalf("histogram count = %d, want 100", sum.Count)
	}
	if sum.P50 < 49*time.Microsecond || sum.P50 > 52*time.Microsecond {
		t.Fatalf("histogram p50 = %v", sum.P50)
	}
}

func TestSetOnProbeGaugePanics(t *testing.T) {
	reg := NewRegistry()
	reg.GaugeFunc("x", "y", func() float64 { return 1 })
	defer func() {
		if recover() == nil {
			t.Fatal("Set on probe-backed gauge did not panic")
		}
	}()
	reg.gauges["x/y"].Set(1)
}

func TestSnapshotFormats(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a", "events").Add(3)
	reg.Gauge("b", "depth").Set(1.5)
	reg.Histogram("c", "lat").Observe(10 * time.Microsecond)

	snap := reg.Snapshot()
	if snap.Counters["a/events"] != 3 || snap.Gauges["b/depth"] != 1.5 {
		t.Fatalf("snapshot wrong: %+v", snap)
	}
	if snap.Histograms["c/lat"].Count != 1 {
		t.Fatalf("snapshot histogram wrong: %+v", snap.Histograms)
	}

	var jsonBuf bytes.Buffer
	if err := snap.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	var round Snapshot
	if err := json.Unmarshal(jsonBuf.Bytes(), &round); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if round.Counters["a/events"] != 3 {
		t.Fatalf("round-tripped snapshot wrong: %+v", round)
	}

	var csvBuf bytes.Buffer
	if err := snap.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	csv := csvBuf.String()
	for _, want := range []string{
		"kind,key,field,value",
		"counter,a/events,value,3",
		"gauge,b/depth,value,1.5",
		"histogram,c/lat,count,1",
	} {
		if !strings.Contains(csv, want) {
			t.Fatalf("CSV missing %q:\n%s", want, csv)
		}
	}

	var txtBuf bytes.Buffer
	if err := snap.WriteText(&txtBuf); err != nil {
		t.Fatal(err)
	}
	txt := txtBuf.String()
	if !strings.Contains(txt, "a/events 3\n") || !strings.Contains(txt, "b/depth 1.5\n") {
		t.Fatalf("text format wrong:\n%s", txt)
	}
}

func TestSampleGauges(t *testing.T) {
	eng := sim.New()
	reg := NewRegistry()
	depth := 0.0
	reg.GaugeFunc("queue", "depth", func() float64 { return depth })
	reg.Gauge("other", "x").Set(1)

	// Depth steps up at 25µs and down at 75µs; samples every 10µs.
	eng.At(sim.Time(25*time.Microsecond), func() { depth = 4 })
	eng.At(sim.Time(75*time.Microsecond), func() { depth = 1 })

	smp := reg.SampleGauges(eng, 10*time.Microsecond, 10, "queue/depth", "no/such_gauge")
	if smp.Series("no/such_gauge") != nil {
		t.Fatal("unknown gauge produced a series")
	}
	ts := smp.Series("queue/depth")
	if ts == nil {
		t.Fatal("queue/depth not sampled")
	}
	eng.RunUntil(sim.Time(200 * time.Microsecond))

	if ts.Len() != 10 {
		t.Fatalf("samples = %d, want 10 (max)", ts.Len())
	}
	if ts.Max() != 4 {
		t.Fatalf("sampled max = %g, want 4", ts.Max())
	}
	// Sample at 30µs..70µs sees 4; at 80µs+ sees 1.
	if _, v := ts.At(2); v != 4 {
		t.Fatalf("sample at 30µs = %g, want 4", v)
	}
	if _, v := ts.At(7); v != 1 {
		t.Fatalf("sample at 80µs = %g, want 1", v)
	}
}

func TestSampleGaugesDefaultAll(t *testing.T) {
	eng := sim.New()
	reg := NewRegistry()
	reg.GaugeFunc("a", "x", func() float64 { return 1 })
	reg.GaugeFunc("b", "y", func() float64 { return 2 })
	smp := reg.SampleGauges(eng, time.Microsecond, 3)
	if len(smp.Keys()) != 2 {
		t.Fatalf("sampled %d gauges, want 2", len(smp.Keys()))
	}
	eng.RunUntil(sim.Time(10 * time.Microsecond))
	smp.Stop()
	if smp.Series("b/y").Len() != 3 {
		t.Fatalf("series len = %d, want 3", smp.Series("b/y").Len())
	}
}

func TestRegistryConcurrency(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				reg.Counter("c", "n").Inc()
				reg.Gauge("g", "v").Add(1)
				reg.Histogram("h", "lat").Observe(time.Microsecond)
				_ = reg.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("c", "n").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got, _ := reg.GaugeValue("g/v"); got != 8000 {
		t.Fatalf("gauge = %g, want 8000", got)
	}
	if got := reg.Histogram("h", "lat").Summary().Count; got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}
