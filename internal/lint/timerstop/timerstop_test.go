package timerstop_test

import (
	"testing"

	"mindgap/internal/lint/linttest"
	"mindgap/internal/lint/timerstop"
)

func TestTimerLifecycle(t *testing.T) {
	linttest.Run(t, timerstop.Analyzer, "mindgap/internal/core", "testdata/timer")
}
