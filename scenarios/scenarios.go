// Package scenarios holds the checked-in scenario presets: every figure,
// table, and CLI default of the paper reproduction as declarative JSON
// (see internal/scenario). The files are embedded so the experiment
// harness, mindgap-sim, and mindgap-trace resolve preset names without
// caring where the binary runs.
//
// Files are canonical: for every preset,
// scenario.DecodePreset(file).Encode() reproduces the file byte for
// byte (enforced by TestPresetsAreCanonical), so diffs stay minimal and
// spec fingerprints are stable.
package scenarios

import (
	"embed"
	"fmt"
	"sort"
	"strings"

	"mindgap/internal/scenario"
)

//go:embed *.json
var files embed.FS

// Names returns every embedded preset name (without the .json suffix),
// sorted.
func Names() []string {
	ents, err := files.ReadDir(".")
	if err != nil {
		// The embedded FS root always reads; guard for completeness.
		return nil
	}
	out := make([]string, 0, len(ents))
	for _, e := range ents {
		out = append(out, strings.TrimSuffix(e.Name(), ".json"))
	}
	sort.Strings(out)
	return out
}

// Raw returns the canonical bytes of a preset.
func Raw(name string) ([]byte, error) {
	b, err := files.ReadFile(name + ".json")
	if err != nil {
		return nil, fmt.Errorf("scenarios: unknown preset %q (known: %s)",
			name, strings.Join(Names(), ", "))
	}
	return b, nil
}

// Load decodes and validates a preset by name.
func Load(name string) (scenario.Preset, error) {
	b, err := Raw(name)
	if err != nil {
		return scenario.Preset{}, err
	}
	p, err := scenario.DecodePreset(b)
	if err != nil {
		return scenario.Preset{}, fmt.Errorf("scenarios: preset %q: %w", name, err)
	}
	if err := p.Validate(); err != nil {
		return scenario.Preset{}, err
	}
	return p, nil
}
