package hypothesis

import (
	"encoding/json"
	"fmt"
	"reflect"
	"sort"
	"strings"

	"mindgap/internal/scenario"
)

// A hypothesis is only as good as its experimental design: if the arms
// differ in a dimension the claim does not mention, the comparison is
// confounded. This file diffs the two arm scenarios dimension by
// dimension — every scenario knob plus the structural dimensions below —
// and requires the spec to declare exactly the differing set in Varied.
// Controlled is the complementary assertion: dimensions listed there
// must be set in both arms and equal, so a later edit that quietly
// unbalances a controlled knob fails validation instead of shipping a
// confounded FINDINGS report.

// Structural (non-knob) dimensions of a scenario spec.
var structuralDims = []string{
	"system", "workload", "keys", "flow", "load",
	"telemetry", "trace", "attribution", "faults",
}

// knobDims returns the JSON names of every scenario knob, derived from
// the Knobs struct tags so a knob added to the scenario schema is
// automatically diffable here.
func knobDims() []string {
	t := reflect.TypeOf(scenario.Knobs{})
	out := make([]string, 0, t.NumField())
	for i := 0; i < t.NumField(); i++ {
		tag := t.Field(i).Tag.Get("json")
		if name, _, _ := strings.Cut(tag, ","); name != "" && name != "-" {
			out = append(out, name)
		}
	}
	return out
}

// dimValue renders one dimension of a spec as canonical JSON; "" means
// the dimension is unset. Values are compared as encoded bytes — never
// as floats — so the diff is exact and deterministic.
type dimValues struct {
	a, b string
}

func encodeDim(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		// Scenario specs are plain data; Marshal cannot fail.
		return "unencodable"
	}
	s := string(b)
	switch s {
	case "null", `""`, "0", "false":
		return "" // zero values read as "unset", matching omitempty
	}
	return s
}

// specDims explodes a scenario into its dimension map.
func specDims(sp scenario.Spec) map[string]string {
	out := map[string]string{
		"system":      encodeDim(sp.System),
		"workload":    encodeDim(sp.Workload),
		"keys":        encodeDim(sp.Keys),
		"flow":        encodeDim(sp.Flow),
		"load":        encodeDim(sp.Load),
		"telemetry":   encodeDim(sp.Telemetry),
		"trace":       encodeDim(sp.Trace),
		"attribution": encodeDim(sp.Attribution),
		"faults":      encodeDim(sp.Faults),
	}
	kn := sp.KnobsOrZero()
	kb, err := json.Marshal(kn)
	if err != nil {
		return out
	}
	var km map[string]json.RawMessage
	if err := json.Unmarshal(kb, &km); err != nil {
		return out
	}
	for _, name := range knobDims() {
		if raw, ok := km[name]; ok {
			out[name] = string(raw)
		} else {
			out[name] = ""
		}
	}
	return out
}

// validateDiff enforces the controlled/varied contract described above.
func (s Spec) validateDiff() error {
	da, db := specDims(s.A.Scenario), specDims(s.B.Scenario)
	known := make(map[string]dimValues, len(da))
	for name, va := range da {
		known[name] = dimValues{a: va, b: db[name]}
	}

	varied := make(map[string]bool, len(s.Varied))
	for _, name := range s.Varied {
		v, ok := known[name]
		if !ok {
			return fmt.Errorf("hypothesis %s: varied names unknown dimension %q", s.ID, name)
		}
		if varied[name] {
			return fmt.Errorf("hypothesis %s: varied lists %q twice", s.ID, name)
		}
		if v.a == v.b {
			return fmt.Errorf("hypothesis %s: %q is declared varied but is identical in both arms", s.ID, name)
		}
		varied[name] = true
	}
	for _, name := range s.Controlled {
		v, ok := known[name]
		if !ok {
			return fmt.Errorf("hypothesis %s: controlled names unknown dimension %q", s.ID, name)
		}
		if varied[name] {
			return fmt.Errorf("hypothesis %s: %q cannot be both controlled and varied", s.ID, name)
		}
		if v.a == "" && v.b == "" {
			return fmt.Errorf("hypothesis %s: %q is declared controlled but set in neither arm", s.ID, name)
		}
		if v.a != v.b {
			return fmt.Errorf("hypothesis %s: %q is declared controlled but differs (a: %s, b: %s)",
				s.ID, name, orUnset(v.a), orUnset(v.b))
		}
	}

	// Every actual difference must be declared.
	var undeclared []string
	for name, v := range known {
		if v.a != v.b && !varied[name] {
			undeclared = append(undeclared, name)
		}
	}
	if len(undeclared) > 0 {
		sort.Strings(undeclared)
		return fmt.Errorf("hypothesis %s: arms differ in undeclared dimensions %v — list them in varied or equalize the arms",
			s.ID, undeclared)
	}
	return nil
}

func orUnset(v string) string {
	if v == "" {
		return "unset"
	}
	return v
}
