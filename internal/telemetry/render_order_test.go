package telemetry

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"
	"time"

	"mindgap/internal/sim"
)

// renderSeriesTable emits the per-gauge sampled-series table the way a
// results consumer does: one CSV row per sampled key via Sampler.Keys,
// followed by the registry snapshot. This is the emission path maporder
// flagged — Sampler.Keys used to return keys in map-iteration order,
// which would have made this table's row order random per process.
func renderSeriesTable() []byte {
	eng := sim.New()
	reg := NewRegistry()
	for i := 0; i < 16; i++ {
		v := float64(i)
		reg.GaugeFunc(fmt.Sprintf("comp%02d", i), "depth", func() float64 { return v })
	}
	smp := reg.SampleGauges(eng, time.Microsecond, 4)
	eng.RunUntil(sim.Time(10 * time.Microsecond))
	smp.Stop()

	var buf bytes.Buffer
	for _, k := range smp.Keys() {
		fmt.Fprintf(&buf, "%s", k)
		for _, v := range smp.Series(k).Values() {
			fmt.Fprintf(&buf, ",%g", v)
		}
		fmt.Fprintln(&buf)
	}
	if err := reg.Snapshot().WriteCSV(&buf); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// TestSeriesTableBytesAcrossGOMAXPROCS is the regression gate for the
// maporder fix: the rendered table must be byte-identical run after
// run, at GOMAXPROCS=1 and GOMAXPROCS=4 alike. Map iteration order is
// re-randomized every execution, so the repeated renders (not just the
// GOMAXPROCS flip) are what catch an unsorted emission creeping back.
func TestSeriesTableBytesAcrossGOMAXPROCS(t *testing.T) {
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)

	runtime.GOMAXPROCS(1)
	want := renderSeriesTable()
	for _, procs := range []int{1, 4} {
		runtime.GOMAXPROCS(procs)
		for i := 0; i < 8; i++ {
			if got := renderSeriesTable(); !bytes.Equal(got, want) {
				t.Fatalf("GOMAXPROCS=%d render %d differs from baseline:\n got: %q\nwant: %q", procs, i, got, want)
			}
		}
	}
}
