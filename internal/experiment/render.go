package experiment

import (
	"fmt"
	"io"
)

// Render prints a figure as human-readable tables, one block per series.
func (f Figure) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s\n", f.ID, f.Title)
	fmt.Fprintf(w, "   x = %s, y = %s\n", f.XLabel, f.YLabel)
	for _, s := range f.Series {
		fmt.Fprintf(w, "-- %s\n", s.Label)
		fmt.Fprintf(w, "%14s %14s %12s %12s %10s %6s\n",
			"x", "achieved_rps", "p50", "p99", "idle%", "sat")
		for _, r := range s.Results {
			sat := ""
			if r.Saturated {
				sat = "*"
			}
			fmt.Fprintf(w, "%14.0f %14.0f %12v %12v %9.1f%% %6s\n",
				r.OfferedRPS, r.AchievedRPS, r.P50, r.P99,
				r.WorkerIdleFraction*100, sat)
		}
	}
}

// WriteCSV emits the figure in a machine-readable form, one row per point.
func (f Figure) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "figure,series,x,achieved_rps,p50_ns,p99_ns,mean_ns,max_ns,completed,dropped,preemptions,idle_frac,saturated"); err != nil {
		return err
	}
	for _, s := range f.Series {
		for _, r := range s.Results {
			if _, err := fmt.Fprintf(w, "%s,%q,%g,%g,%d,%d,%d,%d,%d,%d,%d,%g,%t\n",
				f.ID, s.Label, r.OfferedRPS, r.AchievedRPS,
				r.P50.Nanoseconds(), r.P99.Nanoseconds(),
				r.Mean.Nanoseconds(), r.Max.Nanoseconds(),
				r.Completed, r.Dropped, r.Preemptions,
				r.WorkerIdleFraction, r.Saturated); err != nil {
				return err
			}
		}
	}
	return nil
}

// SaturationPoint returns the lowest offered load at which the series
// saturated, or the last x value if it never did (useful for summarizing
// who-wins-by-how-much comparisons).
func (s Series) SaturationPoint() float64 {
	for _, r := range s.Results {
		if r.Saturated {
			return r.OfferedRPS
		}
	}
	if n := len(s.Results); n > 0 {
		return s.Results[n-1].OfferedRPS
	}
	return 0
}

// PeakThroughput returns the highest achieved rate in the series.
func (s Series) PeakThroughput() float64 {
	best := 0.0
	for _, r := range s.Results {
		if r.AchievedRPS > best {
			best = r.AchievedRPS
		}
	}
	return best
}
