// Package sim provides a deterministic discrete-event simulation engine
// with nanosecond resolution.
//
// The engine is the substrate every hardware model in this repository runs
// on: NIC ports, SmartNIC ARM cores, host worker cores, and communication
// links are all components that schedule events on a shared Engine.
// Determinism is guaranteed by a stable tie-break: events scheduled for the
// same instant fire in the order they were scheduled, so a simulation with a
// fixed seed always produces identical results.
//
// Two scheduling APIs coexist. The legacy closure form (At, After,
// AfterTimer) takes a func() and is convenient for cold paths. The typed
// form (AtE, AfterE, AfterTimerE) takes a plain function plus a receiver,
// an object pointer and a scalar argument; because the function is not a
// closure and pointers stored in interfaces do not allocate, a typed
// schedule performs zero heap allocations in steady state. The hot paths
// of every system model use the typed form.
package sim

import (
	"fmt"
	"math"
	"time"
)

// Time is an instant in simulated time, expressed in nanoseconds since the
// start of the simulation.
type Time int64

// MaxTime is the largest representable simulation instant.
const MaxTime = Time(math.MaxInt64)

// Add returns the instant d after t. Negative durations are allowed and move
// the instant backwards.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Duration converts t to the duration elapsed since the simulation epoch.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// String formats the instant as a duration since the epoch, e.g. "1.5ms".
func (t Time) String() string { return time.Duration(t).String() }

// EventFunc is the typed event callback. recv is the scheduling component
// (typically a struct pointer), obj an optional object flowing through the
// event (a request, a frame payload), and arg an optional scalar. All three
// are stored inline in the event, so a typed schedule allocates nothing.
type EventFunc func(recv, obj any, arg uint64)

// event is a pending callback. seq provides FIFO ordering among events that
// share a timestamp. loc/level/slot/idx record where the event currently
// lives (wheel slot, overflow heap, or ready buffer) so cancellation
// (Timer.Stop) can remove it without a linear scan. gen guards recycled
// events against stale Timer handles: each reuse increments it.
type event struct {
	at    Time
	seq   uint64
	fn    EventFunc
	recv  any
	obj   any
	arg   uint64
	gen   uint32
	loc   uint8
	level uint8
	slot  uint16
	idx   int32
}

// Engine is a discrete-event simulator. The zero value is not usable; call
// New. Engine is not safe for concurrent use: a simulation is a single
// logical thread of control, which is what makes it reproducible.
//
// Internally the engine is a hierarchical timing wheel (see wheel.go) with
// a binary-heap overflow level for events beyond the wheel horizon; the
// combination preserves the exact (time, seq) total order of the original
// pure-heap scheduler while making schedule/fire O(1) in steady state.
type Engine struct {
	now Time
	seq uint64

	// base is the wheel origin: the instant whose radix-64 digits index the
	// wheel levels. Invariant: base <= now whenever user code can run, and
	// every pending event has at >= base.
	base  Time
	occ   [wheelLevels]uint64 // per-level slot-occupancy bitmaps
	slots [wheelLevels][wheelSlots][]*event

	// heap holds overflow events beyond the wheel horizon from base,
	// ordered by (at, seq). With refHeap set it holds every event and the
	// engine degenerates to the original binary-heap scheduler, kept as
	// the reference implementation for differential tests.
	heap    []*event
	refHeap bool

	// ready buffers the earliest pending instant's events in seq order;
	// readyPos is the drain cursor. Cancelled-while-ready events are
	// tombstoned in place and skipped.
	ready     []*event
	readyPos  int
	readyTime Time

	free      []*event // recycled events (simulations schedule millions)
	pending   int      // scheduled, not yet fired or cancelled
	highWater int      // max pending ever observed; sizes the free list
	halted    bool
	stepped   uint64 // number of events executed
}

// New returns an engine positioned at time zero with an empty event queue.
func New() *Engine {
	return &Engine{heap: make([]*event, 0, 64)}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Pending reports the number of scheduled (not yet fired) events.
func (e *Engine) Pending() int { return e.pending }

// Executed reports how many events have fired since the engine was created.
func (e *Engine) Executed() uint64 { return e.stepped }

// HighWater reports the maximum number of simultaneously pending events
// observed so far; it bounds the event free list (see recycle).
func (e *Engine) HighWater() int { return e.highWater }

// At schedules fn to run at the absolute instant t. Scheduling in the past
// panics: a component that needs to "run now" should schedule at e.Now().
// This closure form allocates; hot paths should use AtE.
func (e *Engine) At(t Time, fn func()) {
	e.AtE(t, runClosure, fn, nil, 0)
}

// runClosure adapts the legacy closure API onto the typed event path.
func runClosure(recv, _ any, _ uint64) { recv.(func())() }

// AtE schedules the typed event fn(recv, obj, arg) at the absolute instant
// t. Scheduling in the past panics. AtE performs no heap allocation in
// steady state (once the event free list is warm).
//
//mindgap:noalloc
func (e *Engine) AtE(t Time, fn EventFunc, recv, obj any, arg uint64) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v which is before now %v", t, e.now))
	}
	e.schedule(e.alloc(t, fn, recv, obj, arg))
}

// After schedules fn to run d after the current instant. Negative d panics.
func (e *Engine) After(d time.Duration, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.At(e.now.Add(d), fn)
}

// AfterE schedules the typed event fn(recv, obj, arg) to run d after the
// current instant. Negative d panics.
//
//mindgap:noalloc
func (e *Engine) AfterE(d time.Duration, fn EventFunc, recv, obj any, arg uint64) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.AtE(e.now.Add(d), fn, recv, obj, arg)
}

// alloc takes an event from the free list or the heap allocator.
func (e *Engine) alloc(t Time, fn EventFunc, recv, obj any, arg uint64) *event {
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &event{}
	}
	ev.at = t
	e.seq++
	ev.seq = e.seq
	ev.fn = fn
	ev.recv = recv
	ev.obj = obj
	ev.arg = arg
	return ev
}

// recycle returns a finished or cancelled event to the free list,
// invalidating any Timer handle that still points at it. The free list is
// capped at the measured high-water mark of concurrently pending events: a
// steady-state simulation can never consume recycled events faster than it
// fires them, so the pool that sufficed at peak backlog suffices forever
// after, and the cap adapts to the workload instead of a magic constant.
//
//mindgap:noalloc
func (e *Engine) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.recv = nil
	ev.obj = nil
	ev.loc = locNone
	if len(e.free) < e.highWater {
		e.free = append(e.free, ev)
	}
}

// schedule enters a freshly allocated event into the wheel (or overflow
// heap) and maintains the pending high-water mark.
//
//mindgap:noalloc
func (e *Engine) schedule(ev *event) {
	e.pending++
	if e.pending > e.highWater {
		e.highWater = e.pending
	}
	e.file(ev)
}

// Timer is a handle to a scheduled event that can be cancelled before it
// fires. The zero value is an inert, already-stopped timer.
type Timer struct {
	e   *Engine
	ev  *event
	gen uint32
}

// AfterTimer schedules fn to run d from now and returns a cancellable
// handle. This closure form allocates; hot paths should use AfterTimerE.
func (e *Engine) AfterTimer(d time.Duration, fn func()) *Timer {
	return e.AfterTimerE(d, runClosure, fn, nil, 0)
}

// AfterTimerE schedules the typed event fn(recv, obj, arg) to run d from
// now and returns a cancellable handle.
func (e *Engine) AfterTimerE(d time.Duration, fn EventFunc, recv, obj any, arg uint64) *Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	at := e.now.Add(d)
	if at < e.now {
		// Deadline overflowed Time. The wheel's total order rests on every
		// pending event being >= the wheel origin, so a wrapped deadline
		// must not enter the schedule.
		panic(fmt.Sprintf("sim: delay %v from %v overflows simulated time", d, e.now))
	}
	ev := e.alloc(at, fn, recv, obj, arg)
	e.schedule(ev)
	return &Timer{e: e, ev: ev, gen: ev.gen}
}

// ArmAfterE is AfterTimerE writing into a caller-owned Timer value instead
// of allocating a handle — for components that re-arm one timer per work
// item (e.g. a core's slice/completion timer). tm must not be pending;
// stale handles from fired or stopped events are fine.
//
//mindgap:noalloc
func (e *Engine) ArmAfterE(tm *Timer, d time.Duration, fn EventFunc, recv, obj any, arg uint64) {
	if tm.live() {
		panic("sim: ArmAfterE on a pending timer")
	}
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	at := e.now.Add(d)
	if at < e.now {
		panic(fmt.Sprintf("sim: delay %v from %v overflows simulated time", d, e.now))
	}
	ev := e.alloc(at, fn, recv, obj, arg)
	e.schedule(ev)
	tm.e, tm.ev, tm.gen = e, ev, ev.gen
}

// live reports whether the handle still refers to its original, pending
// event (recycled events bump their generation; cancelled-while-ready
// events are tombstoned with locReadyDead).
//
//mindgap:noalloc
func (t *Timer) live() bool {
	if t == nil || t.ev == nil || t.ev.gen != t.gen {
		return false
	}
	switch t.ev.loc {
	case locWheel, locHeap, locReady:
		return true
	}
	return false
}

// Stop cancels the timer. It reports whether the timer was still pending:
// false means the event already fired (or Stop was already called).
//
//mindgap:noalloc
func (t *Timer) Stop() bool {
	if !t.live() {
		return false
	}
	t.e.remove(t.ev)
	t.ev = nil
	return true
}

// Pending reports whether the timer has yet to fire.
//
//mindgap:noalloc
func (t *Timer) Pending() bool { return t.live() }

// Deadline returns the instant the timer will fire. It is only meaningful
// while Pending reports true.
func (t *Timer) Deadline() Time {
	if !t.live() {
		return 0
	}
	return t.ev.at
}

// Step executes the single earliest pending event. It reports false when the
// queue is empty or the engine has been halted.
//
//mindgap:noalloc
func (e *Engine) Step() bool {
	if e.halted {
		return false
	}
	ev := e.next()
	if ev == nil {
		return false
	}
	e.now = ev.at
	e.pending--
	e.stepped++
	fn, recv, obj, arg := ev.fn, ev.recv, ev.obj, ev.arg
	e.recycle(ev)
	fn(recv, obj, arg)
	return true
}

// Run executes events until the queue drains or Halt is called.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// t. Events scheduled exactly at t do fire.
func (e *Engine) RunUntil(t Time) {
	for !e.halted {
		next, ok := e.peekTime()
		if !ok || next > t {
			break
		}
		e.Step()
	}
	if !e.halted && e.now < t {
		e.now = t
	}
}

// Halt stops Run/RunUntil after the currently executing event returns.
// Pending events remain queued; Resume re-enables execution.
func (e *Engine) Halt() { e.halted = true }

// Resume clears a previous Halt.
func (e *Engine) Resume() { e.halted = false }

// Halted reports whether the engine is halted.
func (e *Engine) Halted() bool { return e.halted }
