// Package sim provides a deterministic discrete-event simulation engine
// with nanosecond resolution.
//
// The engine is the substrate every hardware model in this repository runs
// on: NIC ports, SmartNIC ARM cores, host worker cores, and communication
// links are all components that schedule closures on a shared Engine.
// Determinism is guaranteed by a stable tie-break: events scheduled for the
// same instant fire in the order they were scheduled, so a simulation with a
// fixed seed always produces identical results.
package sim

import (
	"fmt"
	"math"
	"time"
)

// Time is an instant in simulated time, expressed in nanoseconds since the
// start of the simulation.
type Time int64

// MaxTime is the largest representable simulation instant.
const MaxTime = Time(math.MaxInt64)

// Add returns the instant d after t. Negative durations are allowed and move
// the instant backwards.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Duration converts t to the duration elapsed since the simulation epoch.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// String formats the instant as a duration since the epoch, e.g. "1.5ms".
func (t Time) String() string { return time.Duration(t).String() }

// event is a pending closure. seq provides FIFO ordering among events that
// share a timestamp. index is the event's position in the heap, maintained so
// cancellation (Timer.Stop) can remove it without a linear scan. gen guards
// recycled events against stale Timer handles: each reuse increments it.
type event struct {
	at    Time
	seq   uint64
	fn    func()
	index int    // position in heap; -1 once popped or cancelled
	gen   uint32 // incremented on recycle
}

// Engine is a discrete-event simulator. The zero value is not usable; call
// New. Engine is not safe for concurrent use: a simulation is a single
// logical thread of control, which is what makes it reproducible.
type Engine struct {
	now     Time
	seq     uint64
	heap    []*event
	free    []*event // recycled events (simulations schedule millions)
	halted  bool
	stepped uint64 // number of events executed
}

// New returns an engine positioned at time zero with an empty event queue.
func New() *Engine {
	return &Engine{heap: make([]*event, 0, 1024)}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Pending reports the number of scheduled (not yet fired) events.
func (e *Engine) Pending() int { return len(e.heap) }

// Executed reports how many events have fired since the engine was created.
func (e *Engine) Executed() uint64 { return e.stepped }

// At schedules fn to run at the absolute instant t. Scheduling in the past
// panics: a component that needs to "run now" should schedule at e.Now().
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v which is before now %v", t, e.now))
	}
	e.push(e.alloc(t, fn))
}

// alloc takes an event from the free list or the heap allocator.
func (e *Engine) alloc(t Time, fn func()) *event {
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &event{}
	}
	ev.at = t
	ev.seq = e.nextSeq()
	ev.fn = fn
	return ev
}

// recycle returns a finished or cancelled event to the free list,
// invalidating any Timer handle that still points at it.
func (e *Engine) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	if len(e.free) < 4096 {
		e.free = append(e.free, ev)
	}
}

// After schedules fn to run d after the current instant. Negative d panics.
func (e *Engine) After(d time.Duration, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.At(e.now.Add(d), fn)
}

// Timer is a handle to a scheduled event that can be cancelled before it
// fires. The zero value is an inert, already-stopped timer.
type Timer struct {
	e   *Engine
	ev  *event
	gen uint32
}

// AfterTimer schedules fn to run d from now and returns a cancellable handle.
func (e *Engine) AfterTimer(d time.Duration, fn func()) *Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	ev := e.alloc(e.now.Add(d), fn)
	e.push(ev)
	return &Timer{e: e, ev: ev, gen: ev.gen}
}

// live reports whether the handle still refers to its original, pending
// event (recycled events bump their generation).
func (t *Timer) live() bool {
	return t != nil && t.ev != nil && t.ev.gen == t.gen && t.ev.index >= 0
}

// Stop cancels the timer. It reports whether the timer was still pending:
// false means the event already fired (or Stop was already called).
func (t *Timer) Stop() bool {
	if !t.live() {
		return false
	}
	t.e.remove(t.ev)
	t.ev = nil
	return true
}

// Pending reports whether the timer has yet to fire.
func (t *Timer) Pending() bool { return t.live() }

// Deadline returns the instant the timer will fire. It is only meaningful
// while Pending reports true.
func (t *Timer) Deadline() Time {
	if !t.live() {
		return 0
	}
	return t.ev.at
}

// Step executes the single earliest pending event. It reports false when the
// queue is empty or the engine has been halted.
func (e *Engine) Step() bool {
	if e.halted || len(e.heap) == 0 {
		return false
	}
	ev := e.pop()
	e.now = ev.at
	e.stepped++
	fn := ev.fn
	e.recycle(ev)
	fn()
	return true
}

// Run executes events until the queue drains or Halt is called.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// t. Events scheduled exactly at t do fire.
func (e *Engine) RunUntil(t Time) {
	for !e.halted && len(e.heap) > 0 && e.heap[0].at <= t {
		e.Step()
	}
	if !e.halted && e.now < t {
		e.now = t
	}
}

// Halt stops Run/RunUntil after the currently executing event returns.
// Pending events remain queued; Resume re-enables execution.
func (e *Engine) Halt() { e.halted = true }

// Resume clears a previous Halt.
func (e *Engine) Resume() { e.halted = false }

// Halted reports whether the engine is halted.
func (e *Engine) Halted() bool { return e.halted }

func (e *Engine) nextSeq() uint64 {
	e.seq++
	return e.seq
}

// less orders the heap by (time, sequence) so same-instant events preserve
// scheduling order.
func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) push(ev *event) {
	ev.index = len(e.heap)
	e.heap = append(e.heap, ev)
	e.up(ev.index)
}

func (e *Engine) pop() *event {
	ev := e.heap[0]
	last := len(e.heap) - 1
	e.heap[0] = e.heap[last]
	e.heap[0].index = 0
	e.heap[last] = nil
	e.heap = e.heap[:last]
	if last > 0 {
		e.down(0)
	}
	ev.index = -1
	return ev
}

func (e *Engine) remove(ev *event) {
	i := ev.index
	last := len(e.heap) - 1
	if i < 0 || i > last || e.heap[i] != ev {
		return
	}
	e.heap[i] = e.heap[last]
	e.heap[i].index = i
	e.heap[last] = nil
	e.heap = e.heap[:last]
	if i < last {
		e.down(i)
		e.up(i)
	}
	ev.index = -1
	e.recycle(ev)
}

func (e *Engine) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(e.heap[i], e.heap[parent]) {
			break
		}
		e.swap(i, parent)
		i = parent
	}
}

func (e *Engine) down(i int) {
	n := len(e.heap)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		smallest := left
		if right := left + 1; right < n && eventLess(e.heap[right], e.heap[left]) {
			smallest = right
		}
		if !eventLess(e.heap[smallest], e.heap[i]) {
			break
		}
		e.swap(i, smallest)
		i = smallest
	}
}

func (e *Engine) swap(i, j int) {
	e.heap[i], e.heap[j] = e.heap[j], e.heap[i]
	e.heap[i].index = i
	e.heap[j].index = j
}
