package stats

import (
	"fmt"
	"io"
	"time"

	"mindgap/internal/sim"
)

// TimeSeries samples a scalar (queue depth, provisioned cores, utilization)
// at a fixed simulated-time cadence, for queue-dynamics plots and for
// assertions about transient behaviour (e.g. "the backlog drains within
// 2 ms of the burst ending").
type TimeSeries struct {
	eng      *sim.Engine
	interval time.Duration
	probe    func() float64

	times  []sim.Time
	values []float64
	max    int
	timer  *sim.Timer
}

// NewTimeSeries starts sampling probe every interval, keeping at most max
// samples (0 = 1<<20). Sampling begins one interval from now and stops
// when the buffer fills or Stop is called.
func NewTimeSeries(eng *sim.Engine, interval time.Duration, max int, probe func() float64) *TimeSeries {
	if interval <= 0 {
		panic("stats: sampling interval must be positive")
	}
	if probe == nil {
		panic("stats: sampling probe required")
	}
	if max <= 0 {
		max = 1 << 20
	}
	ts := &TimeSeries{eng: eng, interval: interval, probe: probe, max: max}
	ts.arm()
	return ts
}

func (ts *TimeSeries) arm() {
	ts.timer = ts.eng.AfterTimer(ts.interval, func() {
		ts.times = append(ts.times, ts.eng.Now())
		ts.values = append(ts.values, ts.probe())
		if len(ts.values) < ts.max {
			ts.arm()
		}
	})
}

// Stop ends sampling.
func (ts *TimeSeries) Stop() { ts.timer.Stop() }

// Len returns the number of samples taken.
func (ts *TimeSeries) Len() int { return len(ts.values) }

// At returns the i-th sample.
func (ts *TimeSeries) At(i int) (sim.Time, float64) { return ts.times[i], ts.values[i] }

// Values returns the sampled values.
func (ts *TimeSeries) Values() []float64 { return ts.values }

// Max returns the largest sampled value (0 when empty).
func (ts *TimeSeries) Max() float64 {
	m := 0.0
	for _, v := range ts.values {
		if v > m {
			m = v
		}
	}
	return m
}

// Mean returns the mean sampled value (0 when empty).
func (ts *TimeSeries) Mean() float64 {
	if len(ts.values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range ts.values {
		sum += v
	}
	return sum / float64(len(ts.values))
}

// LastBelow returns the first instant after which every sample stays at or
// below threshold, and ok=false if the series never settles.
func (ts *TimeSeries) LastBelow(threshold float64) (sim.Time, bool) {
	settled := -1
	for i, v := range ts.values {
		if v > threshold {
			settled = -1
		} else if settled < 0 {
			settled = i
		}
	}
	if settled < 0 {
		return 0, false
	}
	return ts.times[settled], true
}

// WriteCSV emits "time_ns,value" rows.
func (ts *TimeSeries) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "time_ns,value"); err != nil {
		return err
	}
	for i := range ts.values {
		if _, err := fmt.Fprintf(w, "%d,%g\n", int64(ts.times[i]), ts.values[i]); err != nil {
			return err
		}
	}
	return nil
}
