// Command mindgap-bench regenerates every figure and in-text measurement of
// the paper's evaluation section (see DESIGN.md's experiment index) and
// prints the series to stdout, optionally as CSV.
//
// Figures and tables are declared as sweeps and executed by the parallel
// sweep runner (internal/runner): points fan out across -j workers, results
// are keyed by grid index so output is byte-identical at any parallelism,
// Ctrl-C (or -timeout) cancels between points and prints what completed,
// and -cache memoises per-point results on disk so re-renders only run
// points the cache has not seen.
//
// Usage:
//
//	mindgap-bench                    # every figure and table, full quality
//	mindgap-bench -fig 2             # one figure
//	mindgap-bench -table timer       # one table
//	mindgap-bench -quality quick     # reduced sample counts (CI-sized)
//	mindgap-bench -j 8               # up to 8 concurrent points
//	mindgap-bench -cache ~/.mindgap  # reuse already-measured points
//	mindgap-bench -timeout 2m        # stop (with partial output) after 2m
//	mindgap-bench -csv               # machine-readable output
//	mindgap-bench -plot              # ASCII charts of the tail curves
//	mindgap-bench -list              # figure/table ids and their presets
//	mindgap-bench -hypothesis all    # execute the checked-in hypothesis corpus
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"mindgap/hypotheses"
	"mindgap/internal/experiment"
	"mindgap/internal/hypothesis"
	"mindgap/internal/params"
	"mindgap/internal/runner"
	"mindgap/internal/telemetry"
)

func main() {
	var (
		fig      = flag.String("fig", "", "figure to run: 2, 3, 3burst, 4, 5, 6, 6cxl, 6linerate, baselines, faults-niccrash, faults-lossyfabric, flowrule (empty = all)")
		table    = flag.String("table", "", "table to run: timer, ipc, wait, latency, dispersion, policy, affinity, attribution, tenants, faults, flowrule (empty = all)")
		quality  = flag.String("quality", "full", "sample counts: quick or full")
		quick    = flag.Bool("quick", false, "shorthand for -quality quick")
		csv      = flag.Bool("csv", false, "CSV output for figures")
		plot     = flag.Bool("plot", false, "ASCII chart output for figures")
		only     = flag.Bool("figs-only", false, "skip tables")
		jobs     = flag.Int("j", runtime.GOMAXPROCS(0), "max concurrently simulated points")
		timeout  = flag.Duration("timeout", 0, "overall deadline; on expiry, completed points are printed (0 = none)")
		cacheDir = flag.String("cache", "", "directory for the on-disk result cache (empty = no caching)")
		progress = flag.Bool("progress", false, "live point-completion progress on stderr")
		list     = flag.Bool("list", false, "list figure/table/hypothesis ids and their scenario presets, then exit")
		hyp      = flag.String("hypothesis", "", "hypothesis to execute: a corpus name, a spec file path, or \"all\" (prints FINDINGS; exits 1 on a FAIL verdict)")
		cpuProf  = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProf  = flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mindgap-bench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "mindgap-bench: %v\n", err)
			os.Exit(1)
		}
	}
	// main exits via os.Exit, so profiles are flushed explicitly, not by
	// defers.
	writeProfiles := func() {
		if *cpuProf != "" {
			pprof.StopCPUProfile()
		}
		if *memProf != "" {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mindgap-bench: %v\n", err)
				return
			}
			runtime.GC() // flush recently-freed objects out of the heap profile
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "mindgap-bench: %v\n", err)
			}
			f.Close()
		}
	}

	if *list {
		fmt.Println("figures (-fig ID, scenario preset in scenarios/):")
		for _, e := range [][2]string{
			{"2", "figure2"}, {"3", "figure3"}, {"3burst", "figure3-burst"},
			{"4", "figure4"}, {"5", "figure5"}, {"6", "figure6"},
			{"6cxl", "figure6-cxl"}, {"6linerate", "figure6-linerate"},
			{"baselines", "baselines"},
			{"faults-niccrash", "figure-faults-niccrash"},
			{"faults-lossyfabric", "figure-faults-lossyfabric"},
			{"flowrule", "figure-flowrule"},
		} {
			fmt.Printf("  %-10s scenarios/%s.json\n", e[0], e[1])
		}
		fmt.Println("tables (-table ID):")
		for _, e := range [][2]string{
			{"timer", "(analytic, no preset)"}, {"ipc", "scenarios/table-ipc.json"},
			{"wait", "scenarios/table-wait.json"}, {"latency", "(analytic, no preset)"},
			{"policy", "scenarios/table-policy.json"}, {"dispersion", "scenarios/table-dispersion.json"},
			{"affinity", "scenarios/table-affinity.json"}, {"attribution", "scenarios/table-attribution.json"},
			{"tenants", "scenarios/table-tenants.json"},
			{"faults", "scenarios/figure-faults-*.json"},
			{"flowrule", "scenarios/figure-flowrule.json"},
		} {
			fmt.Printf("  %-10s %s\n", e[0], e[1])
		}
		fmt.Println("hypotheses (-hypothesis ID, spec in hypotheses/):")
		for _, name := range hypotheses.Names() {
			fmt.Printf("  %s\n", name)
		}
		return
	}

	q := experiment.Full
	switch {
	case *quick || *quality == "quick":
		q = experiment.Quick
	case *quality == "full":
	default:
		fmt.Fprintf(os.Stderr, "mindgap-bench: unknown -quality %q (want quick or full)\n", *quality)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	rn := &runner.Runner{
		Parallelism: *jobs,
		Metrics:     telemetry.NewRegistry(),
	}
	if *cacheDir != "" {
		c, err := runner.OpenCache(*cacheDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mindgap-bench: %v\n", err)
			os.Exit(1)
		}
		rn.Cache = c
	}
	if *progress {
		rn.Progress = func(ev runner.Event) {
			note := ""
			if ev.Cached {
				note = " (cached)"
			}
			fmt.Fprintf(os.Stderr, "[%s] %d/%d %s #%d%s\n",
				ev.Sweep, ev.Done, ev.Total, ev.Series, ev.Index, note)
		}
	}

	// interrupted reports (and remembers) whether the run was cut short.
	exitCode := 0
	interrupted := func(err error) bool {
		if err == nil {
			return false
		}
		fmt.Fprintf(os.Stderr, "mindgap-bench: %v — results below are the completed prefix\n", err)
		exitCode = 1
		return true
	}

	figures := map[string]func(experiment.Quality) experiment.FigureSpec{
		"2":         experiment.Figure2Spec,
		"3":         experiment.Figure3Spec,
		"3burst":    experiment.Figure3BurstSpec,
		"4":         experiment.Figure4Spec,
		"5":         experiment.Figure5Spec,
		"6":         experiment.Figure6Spec,
		"6cxl":      experiment.Figure6CXLSpec,
		"6linerate": experiment.Figure6LineRateSpec,
		"baselines": experiment.BaselineComparisonSpec,

		"faults-niccrash":    experiment.FigureFaultsNICCrashSpec,
		"faults-lossyfabric": experiment.FigureFaultsLossyFabricSpec,
		"flowrule":           experiment.FigureFlowRuleSpec,
	}
	order := []string{"2", "3", "3burst", "4", "5", "6", "6cxl", "6linerate", "baselines",
		"faults-niccrash", "faults-lossyfabric", "flowrule"}

	runFigure := func(id string) {
		build, ok := figures[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "mindgap-bench: unknown figure %q\n", id)
			os.Exit(2)
		}
		start := time.Now()
		f, err := build(q).Run(ctx, rn)
		interrupted(err)
		switch {
		case *csv:
			if err := f.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "mindgap-bench: %v\n", err)
				os.Exit(1)
			}
		case *plot:
			f.Plot(os.Stdout, 72, 20)
			fmt.Println()
		default:
			f.Render(os.Stdout)
			fmt.Printf("   (wall time %v)\n\n", time.Since(start).Round(time.Millisecond))
		}
	}

	runTables := func(which string) {
		p := params.Default()
		if which == "" || which == "timer" {
			fmt.Println("== T1: §3.4.4 timer/interrupt costs (host clock 2.3 GHz)")
			fmt.Printf("%-26s %12s %12s %12s %12s %10s\n",
				"operation", "linux(cyc)", "direct(cyc)", "linux", "direct", "reduction")
			for _, r := range experiment.TimerCosts(p) {
				fmt.Printf("%-26s %12.0f %12.0f %12v %12v %9.0f%%\n",
					r.Operation, r.LinuxCycles, r.DirectCycles, r.LinuxTime, r.DirectTime, r.Reduction*100)
			}
			fmt.Println()
		}
		if which == "" || which == "ipc" {
			fmt.Println("== T2: §2.2 inter-thread communication overhead (paper: ≈2µs added tail)")
			r, err := experiment.IPCOverheadWith(ctx, rn, q)
			if !interrupted(err) {
				fmt.Printf("shinjuku p99 = %v, single-thread (rss) p99 = %v, overhead = %v\n\n",
					r.ShinjukuP99, r.RSSP99, r.Overhead)
			}
		}
		if which == "" || which == "wait" {
			fmt.Println("== T3: §4 worker wait time at saturation (paper: 1µs workload waits 110% more)")
			r, err := experiment.WorkerWaitWith(ctx, rn, q)
			if !interrupted(err) {
				fmt.Printf("idle@100µs = %.1f%%, idle@1µs = %.1f%%, extra waiting = %.0f%%\n\n",
					r.IdleAt100us*100, r.IdleAt1us*100, r.ExtraWaitFrac*100)
			}
		}
		if which == "" || which == "latency" {
			fmt.Println("== T4: §3.3 NIC↔host one-way latency")
			r := experiment.CommLatency(p)
			fmt.Printf("modelled = %v, paper = %v\n\n", r.Modelled, r.Paper)
		}
		if which == "" || which == "policy" {
			fmt.Println("== X10: worker-selection policy ablation (bimodal, k=6, no preemption, ρ=0.75)")
			fmt.Printf("%-26s %12s %12s %14s\n", "policy", "p50", "p99", "achieved")
			rows, err := experiment.PolicyAblationWith(ctx, rn, q)
			for _, r := range rows {
				fmt.Printf("%-26s %12v %12v %14.0f\n", r.Policy, r.P50, r.P99, r.Achieved)
			}
			interrupted(err)
			fmt.Println()
		}
		if which == "" || which == "dispersion" {
			fmt.Println("== X7: preemption win vs service-time dispersion (mean 10µs, ρ=0.7, 4 workers)")
			fmt.Printf("%-36s %8s %16s %16s %8s\n", "workload", "cv²", "short p99 (pre)", "short p99 (rtc)", "win")
			rows, err := experiment.DispersionSensitivityWith(ctx, rn, q)
			for _, r := range rows {
				fmt.Printf("%-36s %8.2f %16v %16v %7.1fx\n",
					r.Workload, r.CV2, r.PreemptShortP99, r.NoPreemptShortP99, r.Win)
			}
			interrupted(err)
			fmt.Println()
		}
		if which == "" || which == "affinity" {
			fmt.Println("== X11: scheduling-affinity ablation (10% 100µs requests, 10µs slice, 8 workers)")
			r, err := experiment.AffinityAblationWith(ctx, rn, q)
			if !interrupted(err) {
				fmt.Printf("migrations: off=%d on=%d (preemptions %d); mean: off=%v on=%v; p99: off=%v on=%v\n\n",
					r.MigrationsOff, r.MigrationsOn, r.Preemptions,
					r.MeanOff, r.MeanOn, r.P99Off, r.P99On)
			}
		}
		if which == "" || which == "attribution" {
			fmt.Println("== X13: latency attribution (per-phase share of the tail + decision audit, 450 krps)")
			rows, err := experiment.AttributionWith(ctx, rn, q)
			for _, r := range rows {
				fmt.Printf("%s — p50=%v p99=%v achieved=%.0f rps\n",
					r.Label, r.Result.P50, r.Result.P99, r.Result.AchievedRPS)
				fmt.Printf("  %-12s %12s %12s %12s %10s %10s\n",
					"phase", "mean", "p50", "p99", "mean-share", "tail-share")
				for _, ph := range r.Phases {
					if ph.Mean == 0 && ph.P99 == 0 {
						continue // phase the system never enters (e.g. fabric on rss)
					}
					fmt.Printf("  %-12s %12v %12v %12v %9.1f%% %9.1f%%\n",
						ph.Phase, ph.Mean, ph.P50, ph.P99, ph.MeanShare*100, ph.TailShare*100)
				}
				a := r.Audit
				fmt.Printf("  decisions=%d informed=%d mis-dispatch=%.1f%% staleness(mean/p99)=%v/%v est-err=%v excess(mean/p99)=%v/%v\n\n",
					a.Decisions, a.Informed, a.MisRate*100,
					a.MeanStaleness, a.P99Staleness, a.MeanEstimateError,
					a.MeanExcess, a.P99Excess)
			}
			interrupted(err)
		}
		if which == "" || which == "faults" {
			fmt.Println("== X12: fault recovery timeline (goodput and tail per phase of a faulted run)")
			for _, id := range experiment.FaultPresetIDs() {
				r, err := experiment.FaultTimeline(id, q)
				if err != nil {
					fmt.Fprintf(os.Stderr, "mindgap-bench: %v\n", err)
					exitCode = 1
					continue
				}
				fmt.Printf("%s — %s @ %.0f rps\n", r.Preset, r.Label, r.OfferedRPS)
				fmt.Printf("  %-10s %16s %10s %12s %12s %12s %12s\n",
					"phase", "window", "completed", "goodput", "p50", "p99", "max")
				for _, ph := range r.Phases {
					fmt.Printf("  %-10s %7v–%-8v %10d %12.0f %12v %12v %12v\n",
						ph.Phase, ph.Start, ph.End, ph.Completed, ph.GoodputRPS, ph.P50, ph.P99, ph.Max)
				}
				fmt.Printf("  retries=%d timeout_drops=%d degraded=%d loss_drops=%d delay_hits=%d drops=%d\n\n",
					r.Retries, r.TimeoutDrops, r.Degraded, r.LossDrops, r.DelayHits, r.RecorderDrops)
			}
		}
		if which == "" || which == "flowrule" {
			fmt.Println("== X14: flow-rule offload detail (rule-table telemetry behind the figure)")
			fmt.Printf("%-34s %10s %8s %12s %10s %10s %10s %10s %10s %8s %8s\n",
				"policy", "flows", "hit", "p99", "fast", "slow", "drop", "inserted", "refused", "evicted", "thr")
			rows, err := experiment.FlowRuleTableWith(ctx, rn, q)
			for _, r := range rows {
				fmt.Printf("%-34s %10d %7.1f%% %12v %10.0f %10.0f %10.0f %10.0f %10.0f %8.0f %8.0f\n",
					r.Label, r.Flows, r.FastHitRate*100, r.Result.P99,
					r.FastPackets, r.SlowPackets, r.DropPackets,
					r.Insertions, r.OffloadRefused, r.LRUEvictions+r.IdleEvictions, r.Threshold)
			}
			interrupted(err)
			fmt.Println()
		}
		if which == "" || which == "tenants" {
			fmt.Println("== X9: multi-tenant isolation (FIFO vs strict class priority)")
			cmp, err := experiment.MultiTenantComparisonWith(ctx, rn, experiment.DefaultMultiTenant(q))
			if !interrupted(err) {
				fmt.Printf("%-22s %-10s %12s %12s %12s %10s\n", "tenant", "sched", "p50", "p99", "mean", "completed")
				for _, set := range []struct {
					name string
					rs   []experiment.TenantResult
				}{{"fifo", cmp.FIFO}, {"priority", cmp.Priority}} {
					for _, tr := range set.rs {
						fmt.Printf("%-22s %-10s %12v %12v %12v %10d\n",
							tr.Tenant.Name, set.name, tr.P50, tr.P99, tr.Mean, tr.Completed)
					}
				}
				fmt.Println()
			}
		}
	}

	// runHypotheses executes checked-in or on-disk hypotheses through the
	// same cached runner as the figures and prints their FINDINGS. A FAIL
	// verdict — a claim the simulator no longer supports — exits nonzero.
	runHypotheses := func(which string) {
		load := func(name string) (hypothesis.Spec, error) {
			if strings.ContainsAny(name, "/.") {
				b, err := os.ReadFile(name)
				if err != nil {
					return hypothesis.Spec{}, err
				}
				s, err := hypothesis.Decode(b)
				if err != nil {
					return hypothesis.Spec{}, err
				}
				return s, s.Validate()
			}
			return hypotheses.Load(name)
		}
		names := []string{which}
		if which == "all" {
			names = hypotheses.Names()
		}
		for _, name := range names {
			s, err := load(name)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mindgap-bench: %v\n", err)
				os.Exit(2)
			}
			rep, err := hypothesis.Run(ctx, rn, s, q)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mindgap-bench: %v\n", err)
				exitCode = 1
				continue
			}
			os.Stdout.Write(rep.Render())
			if !rep.Pass {
				exitCode = 1
			}
		}
	}

	switch {
	case *hyp != "":
		runHypotheses(*hyp)
	case *fig != "":
		runFigure(*fig)
	case *table != "":
		runTables(*table)
	default:
		for _, id := range order {
			runFigure(id)
		}
		if !*only {
			runTables("")
		}
	}

	if rn.Cache != nil {
		hits, misses := rn.Cache.Stats()
		fmt.Fprintf(os.Stderr, "mindgap-bench: cache %s: %d hits, %d misses\n",
			rn.Cache.Dir(), hits, misses)
	}
	writeProfiles()
	os.Exit(exitCode)
}
