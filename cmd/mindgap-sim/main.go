// Command mindgap-sim runs simulated configurations and prints their
// measured points — the interactive counterpart to mindgap-bench's fixed
// figure grids. Systems are assembled through the scenario registry
// (internal/scenario): either from command-line flags, or from a
// declarative scenario file / named preset via -scenario. With
// -replicates (or -seeds) a flag-mode point is measured across several
// independent seeds — fanned out in parallel by the sweep runner — and
// reported with cross-seed error bars.
//
// Usage:
//
//	mindgap-sim -system offload -workers 4 -outstanding 4 -slice 10µs \
//	            -dist bimodal:0.995:5µs:100µs -rps 400000
//	mindgap-sim -system shinjuku -workers 3 -rps 300000
//	mindgap-sim -system rss|zygos|flowdir|rpcvalet|erss -workers 4 ...
//	mindgap-sim -system idealnic -cxl -linerate ...
//	mindgap-sim -list-systems              # registry names, docs, knobs
//	mindgap-sim -scenario figure2 -quality quick -csv
//	mindgap-sim -scenario my-spec.json     # file: preset or single spec
//	mindgap-sim -replicates 5 -j 5         # error bars across seeds 7..11
//	mindgap-sim -seeds 1,2,3 -cache ~/.mindgap
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"time"

	"mindgap/internal/dist"
	"mindgap/internal/experiment"
	"mindgap/internal/runner"
	"mindgap/internal/scenario"
	"mindgap/scenarios"
)

func main() {
	var (
		system      = flag.String("system", "offload", "system registry name (see -list-systems)")
		workers     = flag.Int("workers", 4, "worker cores")
		outstanding = flag.Int("outstanding", 4, "per-worker outstanding limit (offload/idealnic)")
		slice       = flag.Duration("slice", 10*time.Microsecond, "preemption quantum (0 disables)")
		distSpec    = flag.String("dist", "bimodal:0.995:5µs:100µs", "service-time distribution")
		rps         = flag.Float64("rps", 400_000, "offered load")
		warmup      = flag.Int("warmup", 20_000, "warmup completions to discard")
		measure     = flag.Int("measure", 100_000, "completions to measure")
		seed        = flag.Uint64("seed", 7, "workload seed")
		replicates  = flag.Int("replicates", 0, "measure across this many consecutive seeds starting at -seed (0 = single run)")
		seedList    = flag.String("seeds", "", "comma-separated explicit seed list (overrides -replicates)")
		jobs        = flag.Int("j", runtime.GOMAXPROCS(0), "max concurrently simulated points")
		timeout     = flag.Duration("timeout", 0, "deadline; points completed by then are still printed (0 = none)")
		cacheDir    = flag.String("cache", "", "directory for the on-disk result cache (empty = no caching)")
		zipfN       = flag.Int("zipf-keys", 0, "key-space size for zipf keys (0 = no keys)")
		zipfS       = flag.Float64("zipf-skew", 0.99, "zipf skew")
		cxl         = flag.Bool("cxl", false, "idealnic: coherent-memory communication (§5.1-2)")
		lineRate    = flag.Bool("linerate", false, "idealnic: hardware line-rate scheduler (§5.1-1)")
		directIRQ   = flag.Bool("directirq", false, "idealnic: NIC-posted interrupts (§5.1-3)")
		scenarioArg = flag.String("scenario", "", "scenario file (preset or single spec JSON) or embedded preset name")
		quality     = flag.String("quality", "", "scenario mode sample counts: quick or full (default: -warmup/-measure/-seed)")
		csv         = flag.Bool("csv", false, "scenario mode: CSV output")
		listSystems = flag.Bool("list-systems", false, "print the system registry and exit")
	)
	flag.Parse()

	if *listSystems {
		fmt.Println("registered systems (build any of them with -system or a scenario file):")
		for _, b := range scenario.Systems() {
			fmt.Printf("  %-10s %s\n", b.Name, b.Doc)
			fmt.Printf("  %-10s knobs: %s\n", "", strings.Join(b.Knobs, ", "))
		}
		fmt.Println("\nembedded presets (run with -scenario <name>):")
		fmt.Printf("  %s\n", strings.Join(scenarios.Names(), ", "))
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	rn := &runner.Runner{Parallelism: *jobs}
	if *cacheDir != "" {
		c, err := runner.OpenCache(*cacheDir)
		if err != nil {
			log.Fatalf("mindgap-sim: %v", err)
		}
		rn.Cache = c
	}

	q := experiment.Quality{Warmup: *warmup, Measure: *measure, Seed: *seed}
	switch *quality {
	case "":
	case "quick":
		q = experiment.Quick
	case "full":
		q = experiment.Full
	default:
		log.Fatalf("mindgap-sim: unknown -quality %q (want quick or full)", *quality)
	}

	if *scenarioArg != "" {
		runScenario(ctx, rn, *scenarioArg, q, *csv)
		return
	}

	// Flag mode: assemble a spec from the command line and build it
	// through the registry — only knobs the chosen system accepts are
	// set, so e.g. `-system rss -slice 10µs` fails loudly.
	sp, err := specFromFlags(*system, *workers, *outstanding, *slice, *cxl, *lineRate, *directIRQ)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mindgap-sim: %v\n", err)
		os.Exit(2)
	}
	sp.Workload = *distSpec
	if *zipfN > 0 {
		sp.Keys = &scenario.KeysSpec{N: *zipfN, Skew: *zipfS}
	}
	svc, err := dist.Parse(*distSpec)
	if err != nil {
		log.Fatalf("mindgap-sim: %v", err)
	}
	factory, err := scenario.Build(sp)
	if err != nil {
		log.Fatalf("mindgap-sim: %v", err)
	}

	cfg := experiment.PointConfig{
		Factory:    factory,
		Service:    svc,
		OfferedRPS: *rps,
		Warmup:     q.Warmup,
		Measure:    q.Measure,
	}
	if sp.Keys != nil {
		cfg.Keys = sp.Keys.Keys()
	}

	seeds, err := replicateSeeds(*seedList, *replicates, q.Seed)
	if err != nil {
		log.Fatalf("mindgap-sim: %v", err)
	}

	start := time.Now()
	if len(seeds) > 0 {
		// The spec fingerprint is the canonical cache identity of the
		// system + workload under test.
		rep, err := experiment.RunPointReplicatedWith(ctx, rn, sp.Fingerprint(), cfg, seeds)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mindgap-sim: %v — %d/%d replicates completed\n",
				err, len(rep.Runs), len(seeds))
		}
		if len(rep.Runs) == 0 {
			os.Exit(1)
		}
		fmt.Printf("system=%s workload=%v offered=%.0f rps replicates=%d seeds=%v\n",
			rep.Runs[0].SystemName, svc, *rps, len(rep.Runs), seeds[:len(rep.Runs)])
		fmt.Printf("p99 = %v ± %v   achieved = %.0f ± %.0f rps   saturated=%t\n",
			rep.MeanP99, rep.P99StdDev, rep.MeanAchieved, rep.AchievedStdDev, rep.AnySaturated)
		fmt.Printf("relative p99 spread = %.2f%% (std dev / mean across seeds)\n",
			rep.RelativeP99Spread()*100)
		for i, r := range rep.Runs {
			fmt.Printf("  seed %-6d %s\n", seeds[i], r.Point)
		}
		fmt.Printf("walltime=%v\n", time.Since(start).Round(time.Millisecond))
		if err != nil {
			os.Exit(1)
		}
		return
	}

	cfg.Seed = q.Seed
	r := experiment.RunPoint(cfg)
	fmt.Printf("system=%s workload=%v offered=%.0f rps\n", r.SystemName, svc, *rps)
	fmt.Printf("%s\n", r.Point)
	fmt.Printf("mean=%v max=%v preemptions=%d drops=%d simtime=%v walltime=%v\n",
		r.Mean, r.Max, r.Preemptions, r.Dropped,
		r.SimTime.Round(time.Millisecond), time.Since(start).Round(time.Millisecond))
}

// specFromFlags maps the flag surface onto a scenario spec, setting only
// the knobs the chosen system kind accepts.
func specFromFlags(system string, workers, outstanding int, slice time.Duration, cxl, lineRate, directIRQ bool) (scenario.Spec, error) {
	b, ok := scenario.Lookup(system)
	if !ok {
		return scenario.Spec{}, fmt.Errorf("unknown system %q (see -list-systems)", system)
	}
	accepts := func(name string) bool {
		for _, k := range b.Knobs {
			if k == name {
				return true
			}
		}
		return false
	}
	k := scenario.Knobs{Workers: workers}
	if accepts("outstanding") {
		k.Outstanding = outstanding
	}
	if accepts("slice") {
		k.Slice = scenario.Duration(slice)
	}
	k.CXL = cxl
	k.LineRate = lineRate
	k.DirectInterrupts = directIRQ
	sp := scenario.Spec{System: system, Knobs: &k}
	if err := sp.Validate(); err != nil {
		return scenario.Spec{}, err
	}
	return sp, nil
}

// runScenario resolves -scenario (embedded preset name or JSON file),
// compiles it through the experiment harness, and prints every measured
// series. Output is byte-identical at any -j parallelism.
func runScenario(ctx context.Context, rn *runner.Runner, arg string, q experiment.Quality, csv bool) {
	p, err := loadPresetArg(arg)
	if err != nil {
		log.Fatalf("mindgap-sim: %v", err)
	}
	if err := p.Validate(); err != nil {
		log.Fatalf("mindgap-sim: %v", err)
	}

	if len(p.Tenants) > 0 {
		cfg, err := experiment.MultiTenantFromPreset(p, q)
		if err != nil {
			log.Fatalf("mindgap-sim: %v", err)
		}
		cmp, err := experiment.MultiTenantComparisonWith(ctx, rn, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mindgap-sim: %v\n", err)
		}
		fmt.Printf("# scenario %s (multi-tenant)\n", p.ID)
		for _, set := range []struct {
			name string
			rs   []experiment.TenantResult
		}{{"fifo", cmp.FIFO}, {"priority", cmp.Priority}} {
			for _, tr := range set.rs {
				fmt.Printf("%s,%s,%s,%v,%v,%v,%d\n",
					p.ID, set.name, tr.Tenant.Name, tr.P50, tr.P99, tr.Mean, tr.Completed)
			}
		}
		if err != nil {
			os.Exit(1)
		}
		return
	}

	spec, err := experiment.PresetFigureSpec(p, q)
	if err != nil {
		log.Fatalf("mindgap-sim: %v", err)
	}
	f, err := spec.Run(ctx, rn)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mindgap-sim: %v — results below are the completed prefix\n", err)
	}
	if csv {
		if werr := f.WriteCSV(os.Stdout); werr != nil {
			log.Fatalf("mindgap-sim: %v", werr)
		}
	} else {
		f.Render(os.Stdout)
	}
	if err != nil {
		os.Exit(1)
	}
}

// loadPresetArg resolves the -scenario argument: a path to a JSON file
// (preset or bare single-spec) if one exists, else an embedded preset
// name.
func loadPresetArg(arg string) (scenario.Preset, error) {
	if b, err := os.ReadFile(arg); err == nil {
		return scenario.DecodeAny(b)
	}
	return scenarios.Load(strings.TrimSuffix(arg, ".json"))
}

// replicateSeeds resolves the -seeds / -replicates flags: an explicit list
// wins; otherwise n consecutive seeds starting at base. An empty result
// means single-run mode.
func replicateSeeds(list string, n int, base uint64) ([]uint64, error) {
	if list != "" {
		var out []uint64
		for _, f := range strings.Split(list, ",") {
			f = strings.TrimSpace(f)
			if f == "" {
				continue
			}
			v, err := strconv.ParseUint(f, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad -seeds entry %q: %v", f, err)
			}
			out = append(out, v)
		}
		if len(out) == 0 {
			return nil, fmt.Errorf("-seeds given but empty")
		}
		return out, nil
	}
	if n <= 0 {
		return nil, nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = base + uint64(i)
	}
	return out, nil
}
