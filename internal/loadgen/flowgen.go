// The flow generator: the flow-identity-keyed counterpart of the
// open-loop request generator. Where Generator emits i.i.d. requests,
// FlowGenerator maintains an exact population of concurrent flows —
// elephants and rats with per-class packet trains — and emits each
// request as one DPDK-style packet batch stamped with its flow's
// identity and state record. Flow-state systems (the flowrule kind) key
// their rule tables on those records; flow-blind systems simply see a
// request stream whose service times happen to be batch-sized.
package loadgen

import (
	"math/rand/v2"
	"time"

	"mindgap/internal/dist"
	"mindgap/internal/sim"
	"mindgap/internal/task"
)

// Default batch and train sizes, from the chen622/SmartNICSimulator
// exemplar: rats ride 4-packet bursts and die young; elephants ride
// 64-packet bursts and live for many of them.
const (
	DefaultRatBatch      = 4
	DefaultElephantBatch = 64
	DefaultRatTrain      = DefaultRatBatch
	DefaultElephantTrain = 16 * DefaultElephantBatch
)

// FlowConfig describes one flow-keyed client workload.
type FlowConfig struct {
	// RPS is the offered batch arrival rate (batches per second); each
	// batch is one Request standing for up to a class-batch of packets.
	RPS float64
	// Service samples the slow-path per-packet processing cost; a
	// batch's Service time is the per-packet draw times its packet
	// count.
	Service dist.Distribution
	// Flows is the concurrent flow population, held exactly constant: a
	// retiring flow is replaced by a fresh one the same instant. Churn
	// (and with it rule-table pressure) comes from the flows' finite
	// packet trains, not from a drifting population.
	Flows int
	// ElephantFraction is the fraction of spawned flows that are
	// elephants, applied exactly via an error accumulator (a fraction of
	// 0.2 makes every fifth spawn an elephant, not a coin flip).
	ElephantFraction float64
	// RatBatch and ElephantBatch are packets per emitted batch (defaults
	// 4 and 64).
	RatBatch, ElephantBatch int
	// RatTrain and ElephantTrain are packets per flow lifetime (defaults
	// 4 and 1024).
	RatTrain, ElephantTrain int
	// Seed makes the arrival, selection, and service streams
	// reproducible.
	Seed uint64
	// MaxArrivals stops generation after this many batches (0 = run
	// until the engine halts).
	MaxArrivals uint64
	// ClientID is stamped on every request.
	ClientID uint32
	// Pool, when set, recycles Request objects (as in Config).
	Pool *task.Pool
	// FlowPool, when set, recycles Flow records. Records are released by
	// whoever drops a flow's last reference (generator or system) via
	// Flow.ReleaseIfIdle; nil allocates fresh records and leaves them to
	// the GC.
	FlowPool *task.FlowPool
}

// FlowGenerator produces flow-keyed batches on a simulation engine and
// hands them to a sink at their arrival instants.
type FlowGenerator struct {
	// Counters holds the shared arrival accounting (Arrivals, Packets,
	// Flows accessors — the same set the request generator exposes).
	Counters

	eng  *sim.Engine
	cfg  FlowConfig
	rng  *rand.Rand
	sink func(*task.Request)

	// active is the dense live-flow population; batch arrivals index it
	// uniformly and retirement swap-deletes, so selection is O(1) and
	// allocation-free.
	active []*task.Flow

	nextReqID  uint64
	nextFlowID task.FlowID
	// elephantCredit is the class error accumulator: += fraction per
	// spawn, an elephant whenever it crosses 1.
	elephantCredit float64
	retiredFlows   uint64
}

// NewFlow creates a flow generator. sink is called exactly at each
// batch's arrival instant.
func NewFlow(eng *sim.Engine, cfg FlowConfig, sink func(*task.Request)) *FlowGenerator {
	if cfg.RPS <= 0 {
		panic("loadgen: RPS must be positive")
	}
	if cfg.Service == nil {
		panic("loadgen: service distribution required")
	}
	if sink == nil {
		panic("loadgen: sink required")
	}
	if cfg.Flows <= 0 {
		panic("loadgen: flow population must be positive")
	}
	if cfg.ElephantFraction < 0 || cfg.ElephantFraction > 1 {
		panic("loadgen: elephant fraction must be in [0, 1]")
	}
	if cfg.RatBatch <= 0 {
		cfg.RatBatch = DefaultRatBatch
	}
	if cfg.ElephantBatch <= 0 {
		cfg.ElephantBatch = DefaultElephantBatch
	}
	if cfg.RatTrain <= 0 {
		cfg.RatTrain = DefaultRatTrain
	}
	if cfg.ElephantTrain <= 0 {
		cfg.ElephantTrain = DefaultElephantTrain
	}
	return &FlowGenerator{
		eng:  eng,
		cfg:  cfg,
		rng:  rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x6d696e64676170)), // "mindgap"
		sink: sink,
	}
}

// Start spawns the initial flow population and schedules the first
// batch arrival. Generation continues open-loop until MaxArrivals (if
// set) or until the engine halts.
func (g *FlowGenerator) Start() {
	g.active = make([]*task.Flow, 0, g.cfg.Flows)
	for i := 0; i < g.cfg.Flows; i++ {
		g.spawn()
	}
	g.eng.AfterE(expGap(g.rng, g.cfg.RPS), flowGenBatch, g, nil, 0)
}

// Population returns the current number of live flows (constant by
// construction; tests pin it).
func (g *FlowGenerator) Population() int { return len(g.active) }

// RetiredFlows returns how many flows have exhausted their trains.
func (g *FlowGenerator) RetiredFlows() uint64 { return g.retiredFlows }

// spawn starts one flow: assign its class by exact proportion, draw its
// train, and add it to the live population.
//
//mindgap:noalloc
func (g *FlowGenerator) spawn() {
	g.nextFlowID++
	class, train := task.ClassRat, uint32(g.cfg.RatTrain)
	g.elephantCredit += g.cfg.ElephantFraction
	if g.elephantCredit >= 1 {
		g.elephantCredit--
		class, train = task.ClassElephant, uint32(g.cfg.ElephantTrain)
	}
	var f *task.Flow
	if g.cfg.FlowPool != nil {
		f = g.cfg.FlowPool.Get(g.nextFlowID, class, train)
	} else {
		f = task.NewFlow(g.nextFlowID, class, train)
	}
	g.flows++
	g.active = append(g.active, f)
}

// flowGenBatch fires at each batch arrival instant: pick a live flow
// uniformly, emit one batch of its train, retire-and-replace it if the
// train is exhausted, and schedule the next arrival. Typed event,
// pooled request, pooled flow record, swap-delete population — the
// steady-state path is allocation-free.
//
//mindgap:noalloc
func flowGenBatch(recv, _ any, _ uint64) {
	g := recv.(*FlowGenerator)
	if g.cfg.MaxArrivals > 0 && g.arrivals >= g.cfg.MaxArrivals {
		return
	}
	idx := g.rng.IntN(len(g.active))
	f := g.active[idx]
	batch := uint32(g.cfg.RatBatch)
	if f.Class == task.ClassElephant {
		batch = uint32(g.cfg.ElephantBatch)
	}
	if batch > f.Remaining {
		batch = f.Remaining
	}
	g.nextReqID++
	g.arrivals++
	g.packets += uint64(batch)
	svc := g.cfg.Service.Sample(g.rng) * time.Duration(batch)
	var req *task.Request
	if g.cfg.Pool != nil {
		req = g.cfg.Pool.Get(g.nextReqID, g.eng.Now(), svc)
	} else {
		req = task.New(g.nextReqID, g.eng.Now(), svc)
	}
	req.ClientID = g.cfg.ClientID
	req.FlowID = f.ID
	req.FlowState = f
	req.Packets = batch
	f.Remaining -= batch
	f.InFlight++
	if f.Remaining == 0 {
		// Train exhausted: retire the flow and spawn its replacement in
		// the same instant, keeping the population exact. The record
		// itself stays live — at least this batch is still in flight —
		// and is freed by whoever drops its last reference.
		f.Retired = true
		last := len(g.active) - 1
		g.active[idx] = g.active[last]
		g.active[last] = nil
		g.active = g.active[:last]
		g.retiredFlows++
		g.spawn()
	}
	g.sink(req)
	g.eng.AfterE(expGap(g.rng, g.cfg.RPS), flowGenBatch, g, nil, 0)
}
