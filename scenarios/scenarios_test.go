package scenarios

import (
	"bytes"
	"testing"

	"mindgap/internal/scenario"
	"mindgap/internal/sim"
	"mindgap/internal/task"
)

// TestPresetsAreCanonical is the golden check for every checked-in
// preset: the file must decode strictly, validate, and re-encode to the
// exact bytes on disk — so presets stay in the one canonical form and a
// hand edit that drifts from it (or a schema change that re-shapes the
// encoding) fails here with a byte diff.
func TestPresetsAreCanonical(t *testing.T) {
	names := Names()
	if len(names) == 0 {
		t.Fatal("no embedded presets")
	}
	for _, name := range names {
		raw, err := Raw(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		p, err := scenario.DecodePreset(raw)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if p.ID != name {
			t.Errorf("%s: preset id %q does not match file name", name, p.ID)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		enc, err := p.Encode()
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if !bytes.Equal(enc, raw) {
			t.Errorf("%s is not canonical: re-encoding changes the bytes.\n--- on disk ---\n%s--- canonical ---\n%s", name, raw, enc)
		}
	}
}

// TestPresetSystemsBuild builds every series of every preset through the
// registry: the checked-in experiment definitions must all be runnable.
func TestPresetSystemsBuild(t *testing.T) {
	for _, name := range Names() {
		p, err := Load(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if len(p.Tenants) > 0 {
			// Tenants presets build their shared server from System+Knobs.
			sp := scenario.Spec{System: p.System, Knobs: p.Knobs}
			if _, err := scenario.Build(sp); err != nil {
				t.Errorf("%s: server spec: %v", name, err)
			}
			continue
		}
		for i, s := range p.Series {
			sp := p.SpecFor(i)
			if sp.Load != nil && sp.Load.KSweep != nil {
				// A k sweep's spec leaves outstanding to the sweep axis.
				sp = sp.WithOutstanding(sp.Load.KSweep.Lo)
			}
			f, err := scenario.Build(sp)
			if err != nil {
				t.Errorf("%s series %q: %v", name, s.Label, err)
				continue
			}
			if sys := f(sim.New(), nil, func(*task.Request) {}); sys == nil || sys.Name() == "" {
				t.Errorf("%s series %q: built a nameless system", name, s.Label)
			}
		}
	}
}

// TestLoadUnknown checks the error path.
func TestLoadUnknown(t *testing.T) {
	if _, err := Load("no-such-preset"); err == nil {
		t.Error("Load of a missing preset succeeded")
	}
}
