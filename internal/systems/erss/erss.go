// Package erss models Elastic RSS (Rucker et al., APNet '19), the §5.1
// related system: hardware RSS whose set of provisioned cores grows and
// shrinks with load at microsecond scale, driven by fine-grained host load
// feedback — but with the scheduling policy itself fixed in hardware and
// no preemption.
//
// eRSS sits between plain RSS and the informed NIC scheduler: it uses load
// feedback (like the paper's proposal) but only to resize the hash target
// set, so it repairs provisioning, not head-of-line blocking. The contrast
// motivates the paper's claim that the *policy*, not just parameters,
// should be programmable.
package erss

import (
	"time"

	"mindgap/internal/cores"
	"mindgap/internal/fabric"
	"mindgap/internal/params"
	"mindgap/internal/queue"
	"mindgap/internal/sim"
	"mindgap/internal/stats"
	"mindgap/internal/task"
)

// Config describes one eRSS deployment.
type Config struct {
	// P is the hardware cost model.
	P params.Params
	// Workers is the maximum number of provisionable cores.
	Workers int
	// MinWorkers is the floor of the provisioned set (default 1).
	MinWorkers int
	// Interval is the reprovisioning period — eRSS adapts "on the µs
	// scale" (default 20µs).
	Interval time.Duration
	// UpThreshold and DownThreshold are per-provisioned-core queue-depth
	// watermarks: above Up, add a core; below Down, remove one.
	// Defaults: 2.0 and 0.5.
	UpThreshold, DownThreshold float64
}

// ERSS is the simulated Elastic RSS system.
type ERSS struct {
	eng  *sim.Engine
	cfg  Config
	rec  *stats.Recorder
	done func(*task.Request)

	ingress *fabric.Link
	egress  *fabric.Link
	workers []*worker

	// provisioned is the current RSS indirection set size: arrivals hash
	// into workers [0, provisioned).
	provisioned int
	resizes     uint64
}

type worker struct {
	sys      *ERSS
	id       int
	q        queue.FIFO[*task.Request]
	exec     *cores.Exec
	starting bool
	post     bool
}

// New builds the system. done runs when the client receives each response.
func New(eng *sim.Engine, cfg Config, rec *stats.Recorder, done func(*task.Request)) *ERSS {
	if cfg.Workers <= 0 {
		panic("erss: need workers")
	}
	if done == nil {
		panic("erss: need a completion callback")
	}
	if cfg.MinWorkers <= 0 {
		cfg.MinWorkers = 1
	}
	if cfg.MinWorkers > cfg.Workers {
		cfg.MinWorkers = cfg.Workers
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 20 * time.Microsecond
	}
	if cfg.UpThreshold <= 0 {
		cfg.UpThreshold = 2.0
	}
	if cfg.DownThreshold <= 0 {
		cfg.DownThreshold = 0.5
	}
	p := cfg.P
	s := &ERSS{
		eng: eng, cfg: cfg, rec: rec, done: done,
		provisioned: cfg.MinWorkers,
	}
	s.ingress = fabric.NewLink(eng, "client→nic", fabric.LinkConfig{
		Latency: p.ClientWireOneWay, BandwidthBps: p.WireBandwidth,
	})
	s.egress = fabric.NewLink(eng, "nic→client", fabric.LinkConfig{
		Latency: p.ClientWireOneWay, BandwidthBps: p.WireBandwidth,
	})
	execCfg := cores.ExecConfig{
		Clock: p.HostClock, Timer: p.HostTimer,
		Slice: 0, SelfArm: false, // no preemption: eRSS's fixed policy
	}
	for i := 0; i < cfg.Workers; i++ {
		w := &worker{sys: s, id: i}
		w.exec = cores.NewExec(eng, i, execCfg, w.onComplete, nil)
		s.workers = append(s.workers, w)
	}
	// The reprovisioning loop runs on the NIC from host load feedback.
	eng.AfterE(cfg.Interval, erssReprovision, s, nil, 0)
	return s
}

// Name implements the experiment System interface.
func (s *ERSS) Name() string { return "erss" }

// Inject admits a client request at the current instant.
func (s *ERSS) Inject(req *task.Request) {
	s.ingress.SendT(s.cfg.P.RequestFrameBytes, erssIngress, s, req, 0)
}

// erssIngress fires when a request frame reaches the NIC: RSS hash over
// the provisioned set only.
//
//mindgap:noalloc
func erssIngress(recv, obj any, _ uint64) {
	s := recv.(*ERSS)
	req := obj.(*task.Request)
	w := s.workers[int(splitmix64(req.ID)%uint64(s.provisioned))]
	w.q.Push(req)
	w.maybeStart()
}

// erssReprovision is the periodic reprovisioning tick.
//
//mindgap:noalloc
func erssReprovision(recv, _ any, _ uint64) {
	recv.(*ERSS).reprovision()
}

// reprovision implements the elastic part: watermark-based resizing of the
// RSS indirection set from instantaneous queue-depth feedback.
//
//mindgap:noalloc
func (s *ERSS) reprovision() {
	backlog := 0
	for i := 0; i < s.provisioned; i++ {
		backlog += s.workers[i].q.Len()
		if s.workers[i].exec.Busy() {
			backlog++
		}
	}
	perCore := float64(backlog) / float64(s.provisioned)
	switch {
	case perCore > s.cfg.UpThreshold && s.provisioned < s.cfg.Workers:
		s.provisioned++
		s.resizes++
	case perCore < s.cfg.DownThreshold && s.provisioned > s.cfg.MinWorkers:
		// A deprovisioned core finishes its queue; new arrivals just stop
		// hashing to it.
		s.provisioned--
		s.resizes++
	}
	s.eng.AfterE(s.cfg.Interval, erssReprovision, s, nil, 0)
}

//mindgap:noalloc
func (w *worker) maybeStart() {
	if w.exec.Busy() || w.starting || w.post || w.q.Len() == 0 {
		return
	}
	w.starting = true
	cost := w.sys.cfg.P.HostNetworkerCost + w.sys.cfg.P.PickupCost(false)
	w.sys.eng.AfterE(cost, erssPickup, w, nil, 0)
}

// erssPickup fires once parse+pickup has elapsed.
//
//mindgap:noalloc
func erssPickup(recv, _ any, _ uint64) {
	w := recv.(*worker)
	w.starting = false
	if req, ok := w.q.Pop(); ok {
		w.exec.Start(req)
	}
}

//mindgap:noalloc
func (w *worker) onComplete(req *task.Request) {
	w.post = true
	w.sys.eng.AfterE(w.sys.cfg.P.WorkerResponseCost, erssResponseBuilt, w, req, 0)
}

// erssResponseBuilt fires once the worker has built the response packet.
//
//mindgap:noalloc
func erssResponseBuilt(recv, obj any, _ uint64) {
	w := recv.(*worker)
	sys := w.sys
	sys.egress.SendT(sys.cfg.P.ResponseFrameBytes, erssRespond, sys, obj, 0)
	w.post = false
	w.maybeStart()
}

// erssRespond fires when the response frame reaches the client.
//
//mindgap:noalloc
func erssRespond(recv, obj any, _ uint64) {
	recv.(*ERSS).done(obj.(*task.Request))
}

// Provisioned returns the current RSS set size.
func (s *ERSS) Provisioned() int { return s.provisioned }

// Resizes returns how many reprovisioning steps have fired.
func (s *ERSS) Resizes() uint64 { return s.resizes }

// WorkerIdleFraction returns the mean idle fraction across all cores
// (including deprovisioned ones — eRSS's efficiency win is that idle cores
// can do other work, which this statistic surfaces).
func (s *ERSS) WorkerIdleFraction(now sim.Time) float64 {
	var sum float64
	for _, w := range s.workers {
		sum += w.exec.Track.IdleFraction(now)
	}
	return sum / float64(len(s.workers))
}

// ArmWorkerTrackers starts busy-time accounting at now.
func (s *ERSS) ArmWorkerTrackers(now sim.Time) {
	for _, w := range s.workers {
		w.exec.Track.Arm(now)
	}
}

// Completions returns total completed requests.
func (s *ERSS) Completions() uint64 {
	var n uint64
	for _, w := range s.workers {
		n += w.exec.Completions()
	}
	return n
}

// splitmix64 is the SplitMix64 finalizer (the stand-in RSS hash).
//
//mindgap:noalloc
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
