package hypothesis

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
)

// Render writes the report as a deterministic FINDINGS document:
// markdown, byte-identical at any runner parallelism and across
// platforms. Checked-in hypotheses commit this output as a golden file,
// so a verdict flip — or any drift in the measured numbers — shows up
// as a diff.
func (r Report) Render() []byte {
	var b bytes.Buffer
	h := r.Spec
	def := metrics[h.Metric]

	fmt.Fprintf(&b, "# FINDINGS — %s\n\n", h.ID)
	if h.Title != "" {
		fmt.Fprintf(&b, "%s\n\n", h.Title)
	}
	fmt.Fprintf(&b, "**Claim.** %s\n\n", h.Claim)
	verdict := "FAIL"
	if r.Pass {
		verdict = "PASS"
	}
	fmt.Fprintf(&b, "## Verdict: %s\n\n", verdict)
	fmt.Fprintf(&b, "%s.\n\n", r.Reason)

	dir := "lower is better"
	if !def.LowerBetter {
		dir = "higher is better"
	}
	fmt.Fprintf(&b, "- hypothesis: `%s` (schema %s)\n", r.Fingerprint, SchemaVersion)
	fmt.Fprintf(&b, "- metric: %s (%s, %s)\n", h.Metric, def.Unit, dir)
	fmt.Fprintf(&b, "- criterion: %s\n", criterionLine(h.Criterion))
	fmt.Fprintf(&b, "- quality: warmup=%d measure=%d\n", r.Quality.Warmup, r.Quality.Measure)
	fmt.Fprintf(&b, "- seeds: %s\n", seedList(h.Seeds))
	fmt.Fprintf(&b, "- arm A: %s (`%s`)\n", h.A.Label, h.A.Scenario.System)
	fmt.Fprintf(&b, "- arm B: %s (`%s`)\n", h.B.Label, h.B.Scenario.System)
	fmt.Fprintf(&b, "- varied: %s\n", strings.Join(h.Varied, ", "))
	if len(h.Controlled) > 0 {
		fmt.Fprintf(&b, "- controlled: %s\n", strings.Join(h.Controlled, ", "))
	}
	b.WriteString("\n")

	if r.Grid != nil {
		renderGrid(&b, r, def)
	} else {
		renderSeeds(&b, r, def)
	}
	if r.Twin != nil {
		renderTwin(&b, *r.Twin)
	}
	return b.Bytes()
}

func renderSeeds(b *bytes.Buffer, r Report, def MetricDef) {
	h := r.Spec
	fmt.Fprintf(b, "## Per-seed results\n\n")
	fmt.Fprintf(b, "| seed | A: %s | B: %s | winner | margin (A) |\n", h.A.Label, h.B.Label)
	fmt.Fprintf(b, "|---|---|---|---|---|\n")
	var sumA, sumB float64
	for _, row := range r.Rows {
		m := relMargin(row.A, row.B, def.LowerBetter)
		fmt.Fprintf(b, "| %d | %s | %s | %s | %+.1f%% |\n",
			row.Seed, num(row.A), num(row.B), winner(m), m*100)
		sumA += row.A
		sumB += row.B
	}
	n := float64(len(r.Rows))
	meanA, meanB := sumA/n, sumB/n
	fmt.Fprintf(b, "| mean | %s | %s | %s | %+.1f%% |\n\n",
		num(meanA), num(meanB), winner(relMargin(meanA, meanB, def.LowerBetter)),
		relMargin(meanA, meanB, def.LowerBetter)*100)

	switch h.Criterion.Kind {
	case Dominance:
		d := r.Dominance
		fmt.Fprintf(b, "Win count: A %d, B %d, ties %d. Cross-seed mean margin %+.1f%%.\n\n",
			d.Wins, d.Losses, d.Ties, d.MeanMargin*100)
	case Equivalence:
		e := r.Equivalence
		fmt.Fprintf(b, "Worst per-seed gap %s (seed %d) against tolerance %s.\n\n",
			pct(e.MaxGap), e.WorstSeed, pct(h.Criterion.Tolerance))
	}
}

func renderGrid(b *bytes.Buffer, r Report, def MetricDef) {
	h := r.Spec
	fmt.Fprintf(b, "## Load grid (cross-seed means over %d seeds)\n\n", len(h.Seeds))
	fmt.Fprintf(b, "| load (rps) | A: %s | B: %s | leader | margin (A) |\n", h.A.Label, h.B.Label)
	fmt.Fprintf(b, "|---|---|---|---|---|\n")
	for i, g := range r.Grid {
		adv := r.Crossover.Advantage[i]
		fmt.Fprintf(b, "| %s | %s | %s | %s | %+.1f%% |\n",
			num(g.X), num(g.A), num(g.B), winner(adv), adv*100)
	}
	b.WriteString("\n")
	if r.Crossover.Flips > 0 {
		fmt.Fprintf(b, "Detected crossover bracket: [%s, %s] (claimed: [%s, %s]).\n\n",
			num(r.Crossover.FlipLo), num(r.Crossover.FlipHi),
			num(h.Criterion.Bracket.Lo), num(h.Criterion.Bracket.Hi))
	} else {
		fmt.Fprintf(b, "No crossover detected (claimed bracket: [%s, %s]).\n\n",
			num(h.Criterion.Bracket.Lo), num(h.Criterion.Bracket.Hi))
	}
}

func renderTwin(b *bytes.Buffer, t TwinReport) {
	status := "DISAGREES"
	if t.Pass {
		status = "AGREES"
	}
	fmt.Fprintf(b, "## Analytic twin: %s\n\n", status)
	fmt.Fprintf(b, "%s.\n\n", t.Reason)
	fmt.Fprintf(b, "- model: %s (c=%d) on arm %s\n", t.Model, t.Servers, strings.ToUpper(t.Arm))
	fmt.Fprintf(b, "- predicted %s: %s ns\n", t.Metric, num(t.Predicted))
	fmt.Fprintf(b, "- simulated %s (cross-seed mean): %s ns\n", t.Metric, num(t.Simulated))
	fmt.Fprintf(b, "- relative error: %s (documented tolerance %s)\n", pct(t.RelErr), pct(t.Tolerance))
}

// criterionLine renders the criterion parameters.
func criterionLine(c CriterionSpec) string {
	switch c.Kind {
	case Dominance:
		winFrac := c.MinWinFrac
		if winFrac <= 0 {
			winFrac = 1
		}
		return fmt.Sprintf("dominance (min_margin %s, min_win_frac %s)", pct(c.MinMargin), pct(winFrac))
	case Equivalence:
		return fmt.Sprintf("equivalence (tolerance %s)", pct(c.Tolerance))
	case Crossover:
		return fmt.Sprintf("crossover (bracket [%s, %s])", num(c.Bracket.Lo), num(c.Bracket.Hi))
	default:
		return c.Kind
	}
}

// winner names the leading arm for a signed margin in favor of A.
func winner(margin float64) string {
	switch {
	case margin > 0:
		return "A"
	case margin < 0:
		return "B"
	default:
		return "tie"
	}
}

// num renders a measured value exactly and deterministically: the
// shortest decimal that round-trips (strconv 'g' with precision -1), so
// re-rendering a report can never change a byte without the underlying
// measurement changing.
func num(v float64) string {
	return strconv.FormatFloat(v, 'f', -1, 64)
}

// seedList renders the pinned seeds.
func seedList(seeds []uint64) string {
	parts := make([]string, len(seeds))
	for i, s := range seeds {
		parts[i] = strconv.FormatUint(s, 10)
	}
	return strings.Join(parts, ", ")
}
