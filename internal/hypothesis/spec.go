// Package hypothesis states the repository's headline comparisons as
// machine-checked claims: a declarative A/B spec naming two scenario
// arms, the knobs that are controlled vs varied between them, a pinned
// seed list, one metric, and a statistical criterion (dominance with a
// required margin, equivalence within a tolerance, or a crossover-point
// bracket). Hypotheses execute through internal/runner's cached pool —
// every (arm, seed, load) point is an ordinary experiment point with a
// fingerprint-derived cache key — and render as deterministic FINDINGS
// reports, so a regression that flips a paper conclusion fails a test
// instead of silently re-drawing a figure. A hypothesis may additionally
// declare an analytic twin: a closed-form queueing model
// (internal/analytic) that must agree with one simulated arm within a
// documented tolerance before any A/B verdict is trusted.
package hypothesis

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"regexp"
	"strings"

	"mindgap/internal/scenario"
)

// SchemaVersion is baked into every hypothesis fingerprint. Bump it
// whenever the spec schema changes meaning, so cached FINDINGS keyed by
// older fingerprints are never trusted.
const SchemaVersion = "mindgap-hypothesis/1"

// Criterion kinds.
const (
	// Dominance claims arm A beats arm B on the metric: A must win on at
	// least MinWinFrac of the seeds and by at least MinMargin mean
	// relative margin.
	Dominance = "dominance"
	// Equivalence claims the arms are interchangeable on the metric: the
	// per-seed symmetric relative gap must stay within Tolerance.
	Equivalence = "equivalence"
	// Crossover claims B wins at the low end of a shared load grid, A
	// wins at the high end, and the single sign flip falls inside
	// Bracket.
	Crossover = "crossover"
)

// Arm is one side of the comparison: a label and an inline scenario.
// The scenario must leave Seed, Seeds and Quality unset — the hypothesis
// pins those for both arms, so the only differences between A and B are
// the ones the varied list declares.
type Arm struct {
	// Label names the arm in FINDINGS tables.
	Label string `json:"label"`
	// Scenario is the system under test, in the scenario-spec schema.
	Scenario scenario.Spec `json:"scenario"`
}

// Bracket is an inclusive load interval in which a crossover must fall.
type Bracket struct {
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
}

// CriterionSpec selects and parameterizes the statistical test.
type CriterionSpec struct {
	// Kind is dominance, equivalence, or crossover.
	Kind string `json:"kind"`
	// MinMargin is the required cross-seed mean relative margin in favor
	// of A (dominance only; 0 requires any positive margin).
	MinMargin float64 `json:"min_margin,omitempty"`
	// MinWinFrac is the fraction of seeds A must win outright (dominance
	// only; 0 means every seed). Ties never count as wins.
	MinWinFrac float64 `json:"min_win_frac,omitempty"`
	// Tolerance bounds the per-seed symmetric relative gap (equivalence
	// only).
	Tolerance float64 `json:"tolerance,omitempty"`
	// Bracket is the load interval the sign flip must fall in (crossover
	// only).
	Bracket *Bracket `json:"bracket,omitempty"`
}

// AnalyticSpec declares a closed-form twin: before the A/B verdict is
// rendered, the named arm's cross-seed mean of Metric must agree with
// the queueing model within Tolerance. A twin that disagrees fails the
// hypothesis regardless of the A/B outcome — the simulation and the
// theory it was validated against have diverged.
type AnalyticSpec struct {
	// Model is the closed form: "mm1-percore" (hash-partitioned cores,
	// each an independent M/M/1 at λ/c) or "mmc" (a single shared queue
	// with c servers).
	Model string `json:"model"`
	// Arm names the side the model describes: "a" or "b".
	Arm string `json:"arm"`
	// Servers overrides the server count c; 0 takes the arm's workers
	// knob.
	Servers int `json:"servers,omitempty"`
	// Metric is the compared moment: "mean" (both models) or "p99"
	// (mm1-percore only — the M/M/c response tail has no simple closed
	// form).
	Metric string `json:"metric"`
	// Tolerance is the allowed relative error |sim−model|/model. The
	// value is part of the claim: it documents how closely the simulated
	// system, with its calibrated overheads, is expected to track the
	// overhead-free closed form.
	Tolerance float64 `json:"tolerance"`
}

// Spec is the serializable statement of one hypothesis.
type Spec struct {
	// ID names the hypothesis (kebab-case; doubles as its directory name
	// in the hypotheses/ corpus).
	ID string `json:"id"`
	// Title is the one-line human heading of the FINDINGS report.
	Title string `json:"title,omitempty"`
	// Claim is the falsifiable sentence being tested.
	Claim string `json:"claim"`
	// Metric is what is measured per (arm, seed, load) point: p50, p99,
	// mean, max, goodput, drop_rate, or mis_dispatch.
	Metric string `json:"metric"`
	// Seeds is the pinned replication list; every arm runs every seed.
	Seeds []uint64 `json:"seeds"`
	// Quality optionally pins sample counts for both arms (preset name
	// or explicit warmup/measure); unset takes the run-time quality.
	Quality *scenario.QualitySpec `json:"quality,omitempty"`
	// Controlled lists the dimensions (knob JSON names, or "system",
	// "workload", "flow", "faults") that are asserted equal across arms.
	Controlled []string `json:"controlled,omitempty"`
	// Varied lists the dimensions that are allowed — and required — to
	// differ between arms. Any dimension that differs but is not listed
	// here fails validation: the comparison would be confounded.
	Varied []string `json:"varied"`
	// A and B are the two arms. Direction matters: the criterion speaks
	// about A (dominance: A wins; crossover: A wins above the flip).
	A Arm `json:"a"`
	B Arm `json:"b"`
	// Criterion is the statistical test.
	Criterion CriterionSpec `json:"criterion"`
	// Analytic optionally declares the closed-form twin.
	Analytic *AnalyticSpec `json:"analytic,omitempty"`
}

// Encode renders the spec in the canonical on-disk form: two-space
// indented JSON with a trailing newline, mirroring scenario specs.
func (s Spec) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Decode parses a hypothesis, rejecting unknown fields at every level
// (including inside the embedded scenario specs), so a misspelled knob
// or criterion parameter cannot silently weaken a claim.
func Decode(b []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("hypothesis: decode spec: %w", err)
	}
	return s, nil
}

// Fingerprint returns the canonical identity of the hypothesis: a
// SHA-256 over the schema version and the compact encoding. It names
// the claim, not its outcome — FINDINGS reports embed it so a report
// can be matched to the exact spec that produced it.
func (s Spec) Fingerprint() string {
	b, err := json.Marshal(s)
	if err != nil {
		// Spec is plain data; Marshal cannot fail. A constant fallback
		// merely widens collisions, it never corrupts results.
		return "hyp-unknown"
	}
	h := sha256.New()
	h.Write([]byte(SchemaVersion))
	h.Write([]byte{0})
	h.Write(b)
	return "hyp-" + hex.EncodeToString(h.Sum(nil)[:12])
}

var idPattern = regexp.MustCompile(`^[a-z0-9][a-z0-9-]*$`)

// Validate checks everything that can be checked without running: the
// metric and criterion are coherent, the seed list is usable, both arms
// validate as scenarios under the pinned seeds, the load shapes match
// the criterion, every difference between the arms is declared in
// Varied, and the analytic twin (if any) is applicable.
func (s Spec) Validate() error {
	if !idPattern.MatchString(s.ID) {
		return fmt.Errorf("hypothesis: id %q must be non-empty kebab-case", s.ID)
	}
	if strings.TrimSpace(s.Claim) == "" {
		return fmt.Errorf("hypothesis %s: a hypothesis needs a claim", s.ID)
	}
	if _, ok := metrics[s.Metric]; !ok {
		return fmt.Errorf("hypothesis %s: unknown metric %q (want one of %s)", s.ID, s.Metric, metricNames())
	}
	if err := s.validateSeeds(); err != nil {
		return err
	}
	if err := s.validateArms(); err != nil {
		return err
	}
	if err := s.validateDiff(); err != nil {
		return err
	}
	if err := s.validateCriterion(); err != nil {
		return err
	}
	return s.validateAnalytic()
}

func (s Spec) validateSeeds() error {
	if len(s.Seeds) == 0 {
		return fmt.Errorf("hypothesis %s: need at least one pinned seed", s.ID)
	}
	seen := make(map[uint64]bool, len(s.Seeds))
	for _, sd := range s.Seeds {
		if sd == 0 {
			return fmt.Errorf("hypothesis %s: seed 0 is the run-time default, pin real seeds", s.ID)
		}
		if seen[sd] {
			return fmt.Errorf("hypothesis %s: duplicate seed %d", s.ID, sd)
		}
		seen[sd] = true
	}
	return nil
}

func (s Spec) validateArms() error {
	for _, side := range []struct {
		name string
		arm  Arm
	}{{"a", s.A}, {"b", s.B}} {
		if strings.TrimSpace(side.arm.Label) == "" {
			return fmt.Errorf("hypothesis %s: arm %s needs a label", s.ID, side.name)
		}
		sp := side.arm.Scenario
		if sp.Seed != 0 || len(sp.Seeds) != 0 {
			return fmt.Errorf("hypothesis %s: arm %s must not pin seeds — the hypothesis seed list drives both arms", s.ID, side.name)
		}
		if sp.Quality != nil {
			return fmt.Errorf("hypothesis %s: arm %s must not pin quality — set it on the hypothesis", s.ID, side.name)
		}
		if sp.Load == nil {
			return fmt.Errorf("hypothesis %s: arm %s needs a load", s.ID, side.name)
		}
		if sp.Load.KSweep != nil || sp.Load.FSweep != nil {
			return fmt.Errorf("hypothesis %s: arm %s: hypotheses compare fixed scenarios, not k/flow sweeps", s.ID, side.name)
		}
		// Arms are validated exactly as the executor runs them: each
		// pinned seed substituted (faulted arms require a nonzero seed),
		// and the attribution collector attached when the metric needs
		// one — a system that cannot be audited fails here, not mid-run.
		if metrics[s.Metric].Attribution {
			sp.Attribution = true
		}
		for _, sd := range s.Seeds {
			sp.Seed = sd
			if err := sp.Validate(); err != nil {
				return fmt.Errorf("hypothesis %s: arm %s: %w", s.ID, side.name, err)
			}
		}
	}
	return nil
}

// validateCriterion checks the test parameters and the load shapes they
// require: dominance and equivalence compare single load points,
// crossover compares identical load grids.
func (s Spec) validateCriterion() error {
	c := s.Criterion
	singlePoint := func() error {
		for _, side := range []struct {
			name string
			arm  Arm
		}{{"a", s.A}, {"b", s.B}} {
			if side.arm.Scenario.Load.Grid != nil {
				return fmt.Errorf("hypothesis %s: %s criterion needs single-point loads, arm %s has a grid", s.ID, c.Kind, side.name)
			}
		}
		return nil
	}
	switch c.Kind {
	case Dominance:
		if c.MinMargin < 0 || c.MinMargin >= 1 {
			return fmt.Errorf("hypothesis %s: min_margin %g outside [0,1)", s.ID, c.MinMargin)
		}
		if c.MinWinFrac < 0 || c.MinWinFrac > 1 {
			return fmt.Errorf("hypothesis %s: min_win_frac %g outside [0,1]", s.ID, c.MinWinFrac)
		}
		if c.Tolerance != 0 || c.Bracket != nil { //lint:allow floateq exact zero means "field unset", not a computed value
			return fmt.Errorf("hypothesis %s: dominance takes min_margin/min_win_frac only", s.ID)
		}
		return singlePoint()
	case Equivalence:
		if c.Tolerance <= 0 || c.Tolerance >= 2 {
			return fmt.Errorf("hypothesis %s: equivalence tolerance %g outside (0,2)", s.ID, c.Tolerance)
		}
		if c.MinMargin != 0 || c.MinWinFrac != 0 || c.Bracket != nil { //lint:allow floateq exact zero means "field unset", not a computed value
			return fmt.Errorf("hypothesis %s: equivalence takes a tolerance only", s.ID)
		}
		return singlePoint()
	case Crossover:
		if c.Bracket == nil {
			return fmt.Errorf("hypothesis %s: crossover needs a bracket", s.ID)
		}
		if c.Bracket.Lo <= 0 || c.Bracket.Hi <= c.Bracket.Lo {
			return fmt.Errorf("hypothesis %s: bad bracket lo=%g hi=%g", s.ID, c.Bracket.Lo, c.Bracket.Hi)
		}
		if c.MinMargin != 0 || c.MinWinFrac != 0 || c.Tolerance != 0 { //lint:allow floateq exact zero means "field unset", not a computed value
			return fmt.Errorf("hypothesis %s: crossover takes a bracket only", s.ID)
		}
		ga, gb := s.A.Scenario.Load.Grid, s.B.Scenario.Load.Grid
		if ga == nil || gb == nil {
			return fmt.Errorf("hypothesis %s: crossover needs a load grid on both arms", s.ID)
		}
		if *ga != *gb {
			return fmt.Errorf("hypothesis %s: crossover arms must share one load grid (a: %+v, b: %+v)", s.ID, *ga, *gb)
		}
		return nil
	default:
		return fmt.Errorf("hypothesis %s: unknown criterion kind %q", s.ID, c.Kind)
	}
}

func (s Spec) validateAnalytic() error {
	a := s.Analytic
	if a == nil {
		return nil
	}
	if s.Criterion.Kind == Crossover {
		return fmt.Errorf("hypothesis %s: analytic twins describe a single load point, not a crossover grid", s.ID)
	}
	var arm Arm
	switch a.Arm {
	case "a":
		arm = s.A
	case "b":
		arm = s.B
	default:
		return fmt.Errorf("hypothesis %s: analytic arm must be \"a\" or \"b\", got %q", s.ID, a.Arm)
	}
	switch a.Model {
	case "mm1-percore":
		if a.Metric != "mean" && a.Metric != "p99" {
			return fmt.Errorf("hypothesis %s: mm1-percore twin metric must be mean or p99, got %q", s.ID, a.Metric)
		}
	case "mmc":
		if a.Metric != "mean" {
			return fmt.Errorf("hypothesis %s: mmc twin only has a closed form for the mean, got %q", s.ID, a.Metric)
		}
	default:
		return fmt.Errorf("hypothesis %s: unknown analytic model %q", s.ID, a.Model)
	}
	if a.Tolerance <= 0 || a.Tolerance >= 1 {
		return fmt.Errorf("hypothesis %s: analytic tolerance %g outside (0,1)", s.ID, a.Tolerance)
	}
	if !strings.HasPrefix(arm.Scenario.Workload, "exp:") {
		return fmt.Errorf("hypothesis %s: M/M models assume exponential service, arm %s runs %q", s.ID, a.Arm, arm.Scenario.Workload)
	}
	if a.servers(arm) < 1 {
		return fmt.Errorf("hypothesis %s: analytic twin needs servers (or a workers knob on arm %s)", s.ID, a.Arm)
	}
	return nil
}

// servers resolves the twin's server count: the explicit override, else
// the arm's workers knob.
func (a AnalyticSpec) servers(arm Arm) int {
	if a.Servers > 0 {
		return a.Servers
	}
	return arm.Scenario.KnobsOrZero().Workers
}
