package live

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"time"

	"mindgap/internal/dist"
	"mindgap/internal/stats"
	"mindgap/internal/wire"
)

// ClientConfig configures a live open-loop load generator.
type ClientConfig struct {
	// Dispatcher is the dispatcher's UDP address.
	Dispatcher *net.UDPAddr
	// RPS is the offered Poisson arrival rate.
	RPS float64
	// Service is the fake-work distribution stamped on requests.
	Service dist.Distribution
	// Requests is the total number to send.
	Requests int
	// Seed fixes the arrival/service streams.
	Seed uint64
	// ClientID tags requests from this client.
	ClientID uint32
	// Timeout bounds the wait for stragglers after the last send
	// (default 5s).
	Timeout time.Duration
}

// ClientReport summarizes one live run.
type ClientReport struct {
	// Latency holds client-observed response times.
	Latency stats.Histogram
	// Sent, Received count requests and responses.
	Sent, Received int
	// Wall is the total wall-clock duration of the run.
	Wall time.Duration
	// AchievedRPS is Received / Wall.
	AchievedRPS float64
}

// RunClient executes one open-loop run against a live dispatcher and
// returns the latency report. It blocks until all responses arrive or the
// timeout expires.
func RunClient(cfg ClientConfig) (*ClientReport, error) {
	if cfg.Dispatcher == nil {
		return nil, errors.New("live: client needs a dispatcher address")
	}
	if cfg.RPS <= 0 || cfg.Requests <= 0 || cfg.Service == nil {
		return nil, errors.New("live: client needs rps, request count, and a service distribution")
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 5 * time.Second
	}
	conn, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, fmt.Errorf("live: client listen: %w", err)
	}
	defer conn.Close()
	_ = conn.SetReadBuffer(4 << 20)

	report := &ClientReport{}
	var mu sync.Mutex
	sendTimes := make(map[uint64]time.Time, cfg.Requests)
	done := make(chan struct{})

	// Receiver: match responses to send times.
	go func() {
		defer close(done)
		buf := make([]byte, maxDatagram)
		var h wire.Header
		for report.Received < cfg.Requests {
			_ = conn.SetReadDeadline(time.Now().Add(cfg.Timeout))
			n, _, err := conn.ReadFromUDP(buf)
			if err != nil {
				return // timeout or closed: give up on stragglers
			}
			if _, err := wire.DecodeDatagram(buf[:n], &h); err != nil || h.Type != wire.MsgResponse {
				continue
			}
			mu.Lock()
			if t0, ok := sendTimes[h.ReqID]; ok {
				delete(sendTimes, h.ReqID)
				report.Latency.Record(time.Since(t0))
				report.Received++
			}
			mu.Unlock()
		}
	}()

	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0xc11e47))
	start := time.Now()
	sendBuf := make([]byte, 0, wire.HeaderSize)
	next := start
	for i := 0; i < cfg.Requests; i++ {
		gap := time.Duration(rng.ExpFloat64() * float64(time.Second) / cfg.RPS)
		next = next.Add(gap)
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		id := uint64(i + 1)
		h := wire.Header{
			Type:      wire.MsgRequest,
			ReqID:     id,
			ClientID:  cfg.ClientID,
			ServiceNS: uint32(cfg.Service.Sample(rng)),
		}
		sendBuf = sendBuf[:0]
		buf, err := wire.EncodeDatagram(sendBuf, &h, nil)
		if err != nil {
			return nil, err
		}
		mu.Lock()
		sendTimes[id] = time.Now()
		mu.Unlock()
		if _, err := conn.WriteToUDP(buf, cfg.Dispatcher); err != nil {
			return nil, fmt.Errorf("live: client send: %w", err)
		}
		report.Sent++
	}
	<-done
	report.Wall = time.Since(start)
	if report.Wall > 0 {
		report.AchievedRPS = float64(report.Received) / report.Wall.Seconds()
	}
	return report, nil
}
