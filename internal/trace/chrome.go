package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"mindgap/internal/sim"
)

// This file exports a Buffer in the Chrome trace-event JSON format, which
// ui.perfetto.dev and chrome://tracing open directly. The mapping:
//
//   - pid 1 "scheduler": one async track per request (ph "b"/"n"/"e",
//     keyed by request ID) spanning arrive→respond/drop, with async
//     instants for ingress, enqueue, dispatch, and drop.
//   - pid 2 "workers": one thread per worker core; each uninterrupted
//     execution segment (Start → Preempt/Complete) is a complete slice
//     (ph "X") on that worker's track, so preemptions appear as a request
//     hopping between rows exactly as it hops between cores.
//
// Timestamps are microseconds (the format's unit); sim.Time nanoseconds
// survive as fractional µs.

// ChromeEvent is one object of the Chrome trace-event format. Fields are
// exported for the encoder and for tests that parse the output back.
type ChromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   string         `json:"id,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// ChromeTrace is the JSON-object container variant of the format.
type ChromeTrace struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

const (
	chromePidScheduler = 1
	chromePidWorkers   = 2
)

func toMicros(t sim.Time) float64 { return float64(t) / 1e3 }

// ChromeTraceEvents converts the buffer to trace-event objects. Events are
// emitted per request in lifecycle order, after the metadata naming the
// process and worker-thread tracks.
func ChromeTraceEvents(b *Buffer) []ChromeEvent {
	events := []ChromeEvent{
		metaEvent("process_name", chromePidScheduler, 0, "scheduler"),
		metaEvent("process_name", chromePidWorkers, 0, "workers"),
	}
	namedWorkers := map[int]bool{}
	for _, id := range b.Requests() {
		lc := b.Lifecycle(id)
		reqName := fmt.Sprintf("req %d", id)
		asyncID := fmt.Sprintf("0x%x", id)
		async := func(ph string, at sim.Time, name string) ChromeEvent {
			return ChromeEvent{
				Name: name, Cat: "request", Ph: ph, Ts: toMicros(at),
				Pid: chromePidScheduler, Tid: 0, ID: asyncID,
			}
		}

		var openStart *Event // Start event awaiting its Preempt/Complete
		closeSlice := func(end Event) {
			if openStart == nil {
				return
			}
			dur := toMicros(end.At) - toMicros(openStart.At)
			events = append(events, ChromeEvent{
				Name: reqName, Cat: "exec", Ph: "X",
				Ts: toMicros(openStart.At), Dur: &dur,
				Pid: chromePidWorkers, Tid: openStart.Worker,
				Args: map[string]any{"end": end.Kind.String()},
			})
			openStart = nil
		}

		started := false
		for _, e := range lc {
			switch e.Kind {
			case Arrive:
				events = append(events, async("b", e.At, reqName))
				started = true
			case Ingress, Enqueue, Dispatch, Drop:
				if !started {
					// Lifecycle captured mid-flight: open the span at its
					// first event so the async track stays balanced.
					events = append(events, async("b", e.At, reqName))
					started = true
				}
				inst := async("n", e.At, e.Kind.String())
				if e.Kind == Drop && e.Reason != DropUnspecified {
					inst.Args = map[string]any{"reason": e.Reason.String()}
				}
				events = append(events, inst)
			case Start:
				e := e
				openStart = &e
				if e.Worker >= 0 && !namedWorkers[e.Worker] {
					namedWorkers[e.Worker] = true
					events = append(events,
						metaEvent("thread_name", chromePidWorkers, e.Worker,
							fmt.Sprintf("worker %d", e.Worker)))
				}
			case Preempt, Complete:
				closeSlice(e)
			}
		}
		// Close the async span at the request's final recorded instant —
		// Respond or Drop normally; the last event for in-flight requests.
		last := lc[len(lc)-1]
		if started {
			events = append(events, async("e", last.At, reqName))
		}
		closeSlice(last) // halted mid-execution: close as a zero-length slice
	}
	return events
}

func metaEvent(name string, pid, tid int, value string) ChromeEvent {
	return ChromeEvent{
		Name: name, Ph: "M", Pid: pid, Tid: tid,
		Args: map[string]any{"name": value},
	}
}

// WriteChrome serializes the buffer as Chrome trace-event JSON, ready for
// ui.perfetto.dev or chrome://tracing.
func WriteChrome(w io.Writer, b *Buffer) error {
	return WriteChromeWith(w, b, nil)
}

// WriteChromeWith serializes the buffer plus pre-built extra events —
// the attribution layer appends per-phase slice tracks and decision-audit
// counter tracks this way without the trace package knowing about them.
func WriteChromeWith(w io.Writer, b *Buffer, extra []ChromeEvent) error {
	enc := json.NewEncoder(w)
	return enc.Encode(ChromeTrace{
		TraceEvents:     append(ChromeTraceEvents(b), extra...),
		DisplayTimeUnit: "ns",
	})
}

// jsonEvent is the raw-export schema of one lifecycle event. Reason is
// omitted when unset, so traces without drop reasons serialize exactly as
// they did before reasons existed.
type jsonEvent struct {
	AtNS   int64  `json:"at_ns"`
	Kind   string `json:"kind"`
	ReqID  uint64 `json:"req"`
	Worker int    `json:"worker"`
	Reason string `json:"reason,omitempty"`
}

// WriteJSON serializes the raw event stream as a JSON array in record
// order — the machine-readable twin of the text format.
func WriteJSON(w io.Writer, b *Buffer) error {
	out := make([]jsonEvent, 0, b.Len())
	for _, e := range b.Events() {
		out = append(out, jsonEvent{
			AtNS: int64(e.At), Kind: e.Kind.String(), ReqID: e.ReqID, Worker: e.Worker,
			Reason: e.Reason.String(),
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
