// Package params centralizes every calibration constant used by the
// hardware models. Constants that the paper states explicitly (clock rates,
// the 2.56 µs NIC↔host latency, APIC timer cycle costs, the 5 M req/s
// dispatcher capacity, the 10 µs preemption slice) are taken verbatim;
// constants the paper implies (the ARM dispatcher pipeline stage cost) are
// calibrated so the modelled systems saturate where the paper's figures say
// they do. See DESIGN.md for the derivations.
package params

import "time"

// Clock models a CPU clock and converts cycle counts to wall time.
type Clock struct {
	// Hz is the core frequency in cycles per second.
	Hz float64
}

// CyclesToDuration converts a cycle count on this clock to a duration,
// rounding to the nearest nanosecond (the simulator's resolution).
func (c Clock) CyclesToDuration(cycles float64) time.Duration {
	if c.Hz <= 0 {
		return 0
	}
	ns := cycles / c.Hz * 1e9
	return time.Duration(ns + 0.5)
}

// TimerProfile is the cost of arming a one-shot timer and of taking its
// interrupt, in cycles on the host clock. The paper (§3.4.4) measures two
// profiles: the stock Linux timer path and the Dune-mapped local APIC path
// with posted interrupts.
type TimerProfile struct {
	Name string
	// ArmCycles is the cost of setting the timer.
	ArmCycles float64
	// FireCycles is the cost of receiving the timer interrupt.
	FireCycles float64
}

// Timer profiles measured in §3.4.4.
var (
	// LinuxTimer is the unoptimized path: timer set via the kernel,
	// interrupt delivered as a signal.
	LinuxTimer = TimerProfile{Name: "linux", ArmCycles: 610, FireCycles: 4193}
	// DirectAPIC is the Dune path: APIC timer registers mapped into the
	// process, interrupt delivered as a posted interrupt.
	DirectAPIC = TimerProfile{Name: "direct-apic", ArmCycles: 40, FireCycles: 1272}
)

// Params is the full set of model constants for one simulated deployment.
type Params struct {
	// HostClock is the x86 server clock (2.3 GHz Intel E5-2658, §4).
	HostClock Clock
	// ArmClock is the SmartNIC ARM A72 clock. Only used to convert the few
	// ARM-side cycle costs; stage costs below are stated in time directly.
	ArmClock Clock

	// NicHostOneWay is the measured one-way latency for a message from the
	// SmartNIC ARM CPU to a host core (or back), including packet
	// construction and NIC traversal (§3.3: 2.56 µs).
	NicHostOneWay time.Duration
	// CXLOneWay is the projected one-way latency for a coherent
	// shared-memory path (§5.1: "a few hundred nanoseconds to a
	// microsecond"); used by the ideal-NIC ablations.
	CXLOneWay time.Duration
	// CacheLine is the one-way latency of host inter-thread communication
	// through a shared cache line (vanilla Shinjuku's IPC mechanism).
	CacheLine time.Duration
	// ClientWireOneWay is the one-way client↔server network latency,
	// a constant offset on every measured response time.
	ClientWireOneWay time.Duration

	// WireBandwidth is the Ethernet port rate in bits per second (10 GbE).
	WireBandwidth float64
	// RequestFrameBytes is the on-wire size of a request frame, and
	// ResponseFrameBytes of a response frame (64 B requests per §1 plus
	// Ethernet/IP/UDP overhead; see internal/wire for exact layout).
	RequestFrameBytes  int
	ResponseFrameBytes int
	// ControlFrameBytes is the size of dispatcher↔worker control messages
	// (assign/finish/preempt) which carry only a descriptor.
	ControlFrameBytes int

	// HostDispatchCost is the per-request cost of the vanilla Shinjuku
	// dispatcher on a host core. 200 ns reproduces the paper's 5 M req/s
	// dispatcher capacity (§1, §2.2 item 3).
	HostDispatchCost time.Duration
	// HostCompletionCost is the dispatcher-side cost of consuming a worker
	// completion flag (credit release).
	HostCompletionCost time.Duration
	// HostNetworkerCost is the per-packet cost of the vanilla Shinjuku
	// networking subsystem (parse UDP, hand off to dispatcher).
	HostNetworkerCost time.Duration

	// ArmNetworkerCost is the per-packet cost of the offloaded networking
	// subsystem on a Stingray ARM core.
	ArmNetworkerCost time.Duration
	// ArmQueueCost is the cost on the queue-manager ARM core of admitting a
	// new or preempted request (enqueue + dequeue + core selection).
	ArmQueueCost time.Duration
	// ArmCreditCost is the cost on the queue-manager ARM core of processing
	// a completion notification (credit release + possible dispatch).
	ArmCreditCost time.Duration
	// ArmTxCost is the per-request cost of the ARM core that packetizes
	// dequeued requests and hands them to the NIC.
	ArmTxCost time.Duration
	// ArmRxCost is the per-notification cost of the ARM core that polls for
	// and parses worker responses.
	ArmRxCost time.Duration
	// ArmShm is the one-way latency of shared-memory handoff between the
	// three ARM dispatcher cores (§3.4.1: "communicate via shared memory").
	ArmShm time.Duration

	// WorkerPickupCost is the host-side cost to pull a request descriptor
	// out of the worker's RX queue and spawn/resume its context, assuming
	// the packet bytes are already in a near cache.
	WorkerPickupCost time.Duration
	// PickupMemPenalty is the extra cost of fetching the packet from LLC
	// or DRAM into the core's L1 on pickup. §5.2's DDIO-to-L1 idea — safe
	// because the scheduler bounds outstanding requests per core — waives
	// this penalty (see OffloadConfig.DDIOToL1).
	PickupMemPenalty time.Duration
	// NUMAPenalty is the additional pickup cost when the packet was
	// DDIO-placed into the LLC of a *different* socket than the worker's
	// (§1: "the situation is worse if the worker chosen by the dispatcher
	// is not on the socket whose last-level cache had the packet
	// pre-loaded with DDIO"). An informed NIC avoids it by DMAing into
	// the chosen worker's socket.
	NUMAPenalty time.Duration
	// WorkerNotifyCost is the host-side cost to build the FINISH/PREEMPTED
	// notification packet for the dispatcher.
	WorkerNotifyCost time.Duration
	// WorkerResponseCost is the host-side cost to build the client response.
	WorkerResponseCost time.Duration
	// CtxSaveCost is the cost of saving a preempted context (stack and
	// register state) to host DRAM; CtxResumeCost of restoring one.
	CtxSaveCost   time.Duration
	CtxResumeCost time.Duration
	// CtxMigratePenalty is the extra resume cost when a preempted request
	// resumes on a *different* core than it last ran on: its stack and
	// data are in the previous core's caches. §3.1's affinity feedback
	// exists to avoid this.
	CtxMigratePenalty time.Duration

	// HostTimer is the timer profile used by workers (Dune direct APIC by
	// default); LinuxTimerProfile kept for the T1 comparison table.
	HostTimer TimerProfile

	// TimeSlice is the preemption quantum (§3.4.4: e.g. 10 µs). Zero
	// disables preemption.
	TimeSlice time.Duration

	// StealCost is the one-off cost a ZygOS worker pays to steal a request
	// from a sibling's queue (cross-core cache traffic, §2.2 item 4).
	StealCost time.Duration

	// RPCValetDispatchCost is the per-request cost of the RPCValet-style
	// integrated NI hardware queue (tens of ns; it is an ASIC).
	RPCValetDispatchCost time.Duration
	// RPCValetLinkLatency is the NI→core delivery latency of RPCValet's
	// integrated network interface ("close to the cores", §2.1).
	RPCValetLinkLatency time.Duration
}

// Default returns the calibrated parameter set used by every experiment
// unless a figure overrides a field.
func Default() Params {
	return Params{
		HostClock: Clock{Hz: 2.3e9},
		ArmClock:  Clock{Hz: 3.0e9},

		NicHostOneWay:    2560 * time.Nanosecond,
		CXLOneWay:        500 * time.Nanosecond,
		CacheLine:        400 * time.Nanosecond,
		ClientWireOneWay: 5 * time.Microsecond,

		WireBandwidth:      10e9,
		RequestFrameBytes:  128,
		ResponseFrameBytes: 128,
		ControlFrameBytes:  64,

		HostDispatchCost:   200 * time.Nanosecond,
		HostCompletionCost: 80 * time.Nanosecond,
		HostNetworkerCost:  120 * time.Nanosecond,

		ArmNetworkerCost: 450 * time.Nanosecond,
		ArmQueueCost:     500 * time.Nanosecond,
		ArmCreditCost:    150 * time.Nanosecond,
		ArmTxCost:        600 * time.Nanosecond,
		ArmRxCost:        550 * time.Nanosecond,
		ArmShm:           200 * time.Nanosecond,

		WorkerPickupCost:   40 * time.Nanosecond,
		PickupMemPenalty:   60 * time.Nanosecond,
		NUMAPenalty:        300 * time.Nanosecond,
		WorkerNotifyCost:   250 * time.Nanosecond,
		WorkerResponseCost: 150 * time.Nanosecond,
		CtxSaveCost:        120 * time.Nanosecond,
		CtxResumeCost:      120 * time.Nanosecond,
		CtxMigratePenalty:  250 * time.Nanosecond,

		HostTimer: DirectAPIC,

		TimeSlice: 10 * time.Microsecond,

		StealCost: 600 * time.Nanosecond,

		RPCValetDispatchCost: 40 * time.Nanosecond,
		RPCValetLinkLatency:  50 * time.Nanosecond,
	}
}

// WithCXL returns a copy of p where all dispatcher↔worker traffic uses a
// coherent shared-memory window instead of packets through the NIC
// (§5.1 suggestion 2). Message build costs drop to cache-line writes.
func (p Params) WithCXL() Params {
	p.NicHostOneWay = p.CXLOneWay
	p.WorkerNotifyCost = 30 * time.Nanosecond
	p.ArmTxCost = 250 * time.Nanosecond
	p.ArmRxCost = 250 * time.Nanosecond
	return p
}

// WithLineRateScheduler returns a copy of p where the NIC scheduler runs in
// dedicated hardware (FPGA/ASIC, §5.1 suggestion 1) instead of ARM cores.
func (p Params) WithLineRateScheduler() Params {
	p.ArmNetworkerCost = 40 * time.Nanosecond
	p.ArmQueueCost = 25 * time.Nanosecond
	p.ArmCreditCost = 10 * time.Nanosecond
	p.ArmTxCost = 25 * time.Nanosecond
	p.ArmRxCost = 25 * time.Nanosecond
	p.ArmShm = 10 * time.Nanosecond
	return p
}

// ArmStageMax returns the per-request cost of the busiest ARM dispatcher
// pipeline stage — the bottleneck that caps offload dispatcher throughput.
// In steady state (no preemption) each completed request crosses the queue
// manager twice (admit + credit) and each other stage once.
func (p Params) ArmStageMax() time.Duration {
	m := p.ArmQueueCost + p.ArmCreditCost
	if p.ArmNetworkerCost > m {
		m = p.ArmNetworkerCost
	}
	if p.ArmTxCost > m {
		m = p.ArmTxCost
	}
	if p.ArmRxCost > m {
		m = p.ArmRxCost
	}
	return m
}

// PickupCost returns the total cost of pulling a request into execution on
// a worker core: descriptor handling plus, unless the NIC placed the packet
// directly into the core's L1 (§5.2 DDIO-to-L1), the near-cache fetch
// penalty.
func (p Params) PickupCost(ddioL1 bool) time.Duration {
	if ddioL1 {
		return p.WorkerPickupCost
	}
	return p.WorkerPickupCost + p.PickupMemPenalty
}

// FrameWireTime returns how long a frame of the given size occupies a port
// at the configured wire bandwidth.
func (p Params) FrameWireTime(bytes int) time.Duration {
	if p.WireBandwidth <= 0 {
		return 0
	}
	return time.Duration(float64(bytes*8) / p.WireBandwidth * 1e9)
}
