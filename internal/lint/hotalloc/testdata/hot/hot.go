// Fixtures for the //mindgap:noalloc discipline: closure-scheduling
// APIs, capturing closures, fmt, string conversions, and interface
// boxing are all rejected inside annotated functions.
package core

import (
	"fmt"

	"mindgap/internal/sim"
)

//mindgap:noalloc
func hotClosure(eng *sim.Engine) {
	eng.After(0, func() {}) // want `After schedules a closure and allocates; use the typed AfterE form \(annotated //mindgap:noalloc\)`
}

//mindgap:noalloc
func hotCapture(eng *sim.Engine, n int) {
	eng.At(eng.Now(), func() { _ = n }) // want `At schedules a closure and allocates; use the typed AtE form \(annotated //mindgap:noalloc\)` `closure captures n and allocates per event; use a typed EventFunc with recv/obj/arg \(annotated //mindgap:noalloc\)`
}

//mindgap:noalloc
func hotFmt(id uint64) {
	fmt.Println("req", id) // want `fmt\.Println allocates on every call \(annotated //mindgap:noalloc\)`
}

//mindgap:noalloc
func hotString(b []byte) string {
	return string(b) // want `conversion to string allocates \(annotated //mindgap:noalloc\)`
}

// hotTyped is the sanctioned shape: typed events, scalar args, pointer
// payloads. No diagnostics.
//
//mindgap:noalloc
func hotTyped(eng *sim.Engine, id uint64) {
	eng.AfterE(0, fire, eng, nil, id)
}

func fire(_, _ any, _ uint64) {}

// coldPath is not annotated and not reachable from any annotated
// function: the closure API is fine here (it is how setup code works).
func coldPath(eng *sim.Engine) {
	eng.After(0, func() {})
}
