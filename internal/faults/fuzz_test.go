package faults

import (
	"bytes"
	"testing"
	"time"

	"mindgap/internal/sim"
)

// FuzzDecode guards the fault-spec parser: no input panics, any accepted
// input reaches a canonical encode fixed point, and any spec that both
// decodes and validates must compile into a Schedule without panicking —
// New's panic-on-invalid contract may only ever fire on specs Validate
// rejects.
func FuzzDecode(f *testing.F) {
	f.Add([]byte(`{"nic_crash":[{"start":"10ms","end":"14ms"}],"timeout":"1ms","retries":3,"degrade":true}`))
	f.Add([]byte(`{"nic_slow":[{"start":"1ms","end":"2ms"}],"nic_slow_factor":0.25}`))
	f.Add([]byte(`{"worker_stall":[{"start":0,"end":1000000}],"stall_workers":[0,2]}`))
	f.Add([]byte(`{"loss_rate":0.05,"loss_bursts":{"n":4,"horizon":"150ms","mean_len":"250µs"}}`))
	f.Add([]byte(`{"link_delay":[{"start":"1ms","end":"3ms"}],"delay_extra":"20µs","timeout":500000,"backoff":1.5}`))
	f.Add([]byte(`{}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		sp, err := Decode(data)
		if err != nil {
			return
		}
		enc1, err := sp.Encode()
		if err != nil {
			t.Fatalf("Encode after Decode failed: %v", err)
		}
		sp2, err := Decode(enc1)
		if err != nil {
			t.Fatalf("Decode of canonical encoding failed: %v\n%s", err, enc1)
		}
		enc2, err := sp2.Encode()
		if err != nil {
			t.Fatalf("second Encode failed: %v", err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("canonical encoding is not a fixed point:\n%s\nvs\n%s", enc1, enc2)
		}
		if sp.Validate() != nil {
			return
		}
		s := New(sp, 7)
		// Exercise the compiled schedule's query surface a little: these
		// must hold for every valid spec.
		for _, at := range []time.Duration{0, time.Millisecond, time.Second} {
			if got := s.NICRecoveryAt(sim.Time(at)); got < sim.Time(at) {
				t.Fatalf("NICRecoveryAt(%v) = %v went backwards", at, got)
			}
			if st := s.NICStretch(); st != nil {
				if got := st(sim.Time(at), time.Microsecond); got < time.Microsecond {
					t.Fatalf("NICStretch shrank work at %v: %v", at, got)
				}
			}
		}
		if s.AttemptTimeout(0) != sp.Timeout.D() {
			t.Fatalf("AttemptTimeout(0) = %v, want %v", s.AttemptTimeout(0), sp.Timeout.D())
		}
	})
}
