package experiment

import (
	"context"
	"fmt"

	"mindgap/internal/runner"
	"mindgap/internal/scenario"
	"mindgap/internal/telemetry"
)

// This file runs the X14 flow-rule offload experiment: the fast-path /
// slow-path SmartNIC steering system swept across concurrent-flow
// populations (the fsweep axis), both as a latency figure and as a
// detail table that reads the rule-table telemetry — fast-path hit
// rate, insertion-pipeline pressure, eviction churn — behind each
// measured point.

// FigureFlowRuleSpec compiles the figure-flowrule preset: p99 vs
// concurrent flows for static offload thresholds and the adaptive
// policy, at a fixed offered batch rate that only the fast path can
// absorb.
func FigureFlowRuleSpec(q Quality) FigureSpec { return presetFigureSpec("figure-flowrule", q) }

// FigureFlowRule runs the X14 figure on the default parallel runner.
func FigureFlowRule(q Quality) Figure { return mustFigure(FigureFlowRuleSpec(q)) }

// FlowRuleRow is one measured point of the flow-rule detail table: the
// conventional latency point plus the rule-table counters that explain
// it.
type FlowRuleRow struct {
	// Label names the series (offload policy) from the preset.
	Label string
	// Flows is the concurrent-flow population of the point.
	Flows int
	// Result is the conventional measured point.
	Result Result
	// FastPackets / SlowPackets / DropPackets split classified packets
	// by steering outcome.
	FastPackets, SlowPackets, DropPackets float64
	// FastHitRate is FastPackets over all classified packets.
	FastHitRate float64
	// Insertions counts completed rule installs; LRUEvictions and
	// IdleEvictions count rule-table departures by cause;
	// OffloadRefused counts insert attempts dropped because the bounded
	// insertion pipeline was full.
	Insertions, LRUEvictions, IdleEvictions, OffloadRefused float64
	// Resident is the rule-table occupancy at the end of the run and
	// Threshold the (possibly adapted) offload threshold in packets.
	Resident, Threshold float64
}

// flowRuleGauges maps FlowRuleRow fields to the registry keys published
// by internal/systems/flowrule.
func (r *FlowRuleRow) read(reg *telemetry.Registry) {
	get := func(key string) float64 {
		v, _ := reg.GaugeValue(key)
		return v
	}
	r.FastPackets = get("flowrule/fast_packets")
	r.SlowPackets = get("flowrule/slow_packets")
	r.DropPackets = get("flowrule/drop_packets")
	r.Insertions = get("flowrule/rule_insertions")
	r.LRUEvictions = get("flowrule/rule_evictions_lru")
	r.IdleEvictions = get("flowrule/rule_evictions_idle")
	r.OffloadRefused = get("flowrule/offload_refused")
	r.Resident = get("flowrule/rules_resident")
	r.Threshold = get("flowrule/offload_threshold")
	if total := r.FastPackets + r.SlowPackets + r.DropPackets; total > 0 {
		r.FastHitRate = r.FastPackets / total
	}
}

// runFlowRulePoint measures one spec at one flow population with a
// fresh telemetry registry. The registry is created inside the point
// run — never shared across concurrent sweep points — so detail tables
// are byte-identical at any runner parallelism.
func runFlowRulePoint(sp scenario.Spec, eq Quality, rps float64) FlowRuleRow {
	reg := telemetry.NewRegistry()
	f, err := scenario.BuildWith(sp, scenario.Options{Metrics: reg})
	if err != nil {
		// The spec already built once during series compilation.
		panic(fmt.Sprintf("experiment: flowrule rebuild failed: %v", err))
	}
	cfg, err := pointConfigFor(sp, eq)
	if err != nil {
		panic(fmt.Sprintf("experiment: flowrule reconfig failed: %v", err))
	}
	cfg.Factory = f
	cfg.OfferedRPS = rps
	res := RunPoint(cfg)
	res.Point.OfferedRPS = float64(sp.Flow.Flows) // x-axis is the flow population
	row := FlowRuleRow{Label: sp.Name, Flows: sp.Flow.Flows, Result: res}
	row.read(reg)
	return row
}

// flowRuleSeries compiles one resolved fsweep spec into a runner series
// of detail rows, one per flow population. Cache keys are salted so
// detail rows never collide with plain Result entries for the same
// scenario.
func flowRuleSeries(sweepID, label string, sp scenario.Spec, q Quality) (runner.Series[FlowRuleRow], error) {
	if _, err := scenario.Build(sp); err != nil {
		return runner.Series[FlowRuleRow]{}, err
	}
	if sp.Load == nil || sp.Load.FSweep == nil {
		return runner.Series[FlowRuleRow]{}, fmt.Errorf("experiment: flowrule table needs an fsweep load")
	}
	flows := sp.Load.FSweep.Points()
	pts := make([]runner.Point[FlowRuleRow], 0, len(flows))
	for _, n := range flows {
		spn := sp.WithFlows(n)
		eq := qualityFor(spn, q)
		rps := sp.Load.RPS
		pts = append(pts, runner.Point[FlowRuleRow]{
			Key: specPointKey(sweepID, spn, eq, rps, fmt.Sprintf("flows=%d", n), "flowdetail1"),
			Run: func() FlowRuleRow { return runFlowRulePoint(spn, eq, rps) },
		})
	}
	return runner.Series[FlowRuleRow]{Label: label, Points: pts}, nil
}

// FlowRuleTableWith runs the figure-flowrule preset on rn with a
// telemetry registry attached to every point, returning one row per
// (policy, flow population) pair.
func FlowRuleTableWith(ctx context.Context, rn *runner.Runner, q Quality) ([]FlowRuleRow, error) {
	p := mustPreset("figure-flowrule")
	sw := runner.Sweep[FlowRuleRow]{Name: p.ID}
	for i := range p.Series {
		s, err := flowRuleSeries(p.ID, p.Series[i].Label, p.SpecFor(i), q)
		if err != nil {
			return nil, fmt.Errorf("experiment: preset %q series %q: %w", p.ID, p.Series[i].Label, err)
		}
		sw.Series = append(sw.Series, s)
	}
	res, err := runner.Run(ctx, rn, sw)
	var out []FlowRuleRow
	for _, sr := range res {
		out = append(out, sr.Results...)
	}
	return out, err
}

// FlowRuleTable runs the flow-rule detail table on the default parallel
// runner.
func FlowRuleTable(q Quality) []FlowRuleRow {
	r, _ := FlowRuleTableWith(context.Background(), nil, q)
	return r
}
