package experiment

import (
	"testing"
	"time"

	"mindgap/internal/params"
)

func multiTenantCfg(priority bool, q Quality) MultiTenantConfig {
	return MultiTenantConfig{
		P:           params.Default(),
		Workers:     4,
		Outstanding: 3,
		Slice:       15 * time.Microsecond,
		Priority:    priority,
		Tenants:     DefaultTenants(),
		Quality:     q,
	}
}

func TestMultiTenantBothTenantsServed(t *testing.T) {
	res := RunMultiTenant(multiTenantCfg(false, Quality{Warmup: 1000, Measure: 8000, Seed: 7}))
	if len(res) != 2 {
		t.Fatalf("results = %d", len(res))
	}
	for _, r := range res {
		if r.Completed == 0 {
			t.Fatalf("tenant %q starved entirely", r.Tenant.Name)
		}
		if r.P99 <= 0 {
			t.Fatalf("tenant %q has no latency profile", r.Tenant.Name)
		}
	}
	// The critical tenant sends ~37× the batch tenant's rate.
	if res[0].Completed < 10*res[1].Completed {
		t.Fatalf("completion mix off: %d vs %d", res[0].Completed, res[1].Completed)
	}
}

func TestMultiTenantPriorityProtectsCriticalClass(t *testing.T) {
	if testing.Short() {
		t.Skip("figure harness test")
	}
	q := Quality{Warmup: 2000, Measure: 20000, Seed: 7}
	fifo := RunMultiTenant(multiTenantCfg(false, q))
	prio := RunMultiTenant(multiTenantCfg(true, q))
	// With strict priority, the critical tenant's p99 must improve
	// substantially over single-FIFO scheduling...
	if prio[0].P99 >= fifo[0].P99 {
		t.Fatalf("priority did not help critical tenant: %v vs %v", prio[0].P99, fifo[0].P99)
	}
	// ...while the batch tenant still completes its work.
	if prio[1].Completed == 0 {
		t.Fatal("batch tenant starved under priority scheduling")
	}
}

func TestMultiTenantValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty tenants accepted")
		}
	}()
	RunMultiTenant(MultiTenantConfig{P: params.Default(), Workers: 1, Quality: Quick})
}
