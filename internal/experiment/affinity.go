package experiment

import (
	"context"
	"fmt"
	"time"

	"mindgap/internal/core"
	"mindgap/internal/dist"
	"mindgap/internal/loadgen"
	"mindgap/internal/params"
	"mindgap/internal/runner"
	"mindgap/internal/sim"
	"mindgap/internal/stats"
	"mindgap/internal/task"
)

// AffinityResult is the X11 extension experiment: §3.1's scheduling
// affinity. With affinity off, a preempted request resumes on whichever
// worker frees first and pays a cache-migration penalty; with affinity on,
// the scheduler prefers the request's previous worker.
type AffinityResult struct {
	// MigrationsOff/On count cross-core resumes per configuration.
	MigrationsOff, MigrationsOn uint64
	// Preemptions counts preemptions in the affinity-on run (similar in
	// both; reported for rate context).
	Preemptions uint64
	// MeanOff/On and P99Off/On are client-observed latencies.
	MeanOff, MeanOn time.Duration
	P99Off, P99On   time.Duration
}

// affinityMeasure is the runner payload of one X11 simulation.
type affinityMeasure struct {
	Migrations, Preemptions uint64
	Mean, P99               time.Duration
}

// AffinityAblationWith measures X11 on rn, running the affinity-off and
// affinity-on configurations concurrently. The workload is
// preemption-heavy: 10% of requests run 100 µs against a 10 µs slice, so
// every long request is preempted ~9 times and each resume either stays
// local or migrates.
func AffinityAblationWith(ctx context.Context, rn *runner.Runner, q Quality) (AffinityResult, error) {
	point := func(affinity bool) runner.Point[affinityMeasure] {
		return runner.Point[affinityMeasure]{
			Key: fmt.Sprintf("table-affinity|affinity=%t|warm=%d|meas=%d|seed=%d|params=%s",
				affinity, q.Warmup, q.Measure, q.Seed, paramsSig()),
			Run: func() affinityMeasure {
				p := params.Default()
				eng := sim.New()
				var lat stats.Histogram
				completions := 0
				target := q.Warmup + q.Measure
				sys := core.NewOffload(eng, core.OffloadConfig{
					P: p, Workers: 8, Outstanding: 2,
					Slice:    10 * time.Microsecond,
					Affinity: affinity,
				}, nil, func(r *task.Request) {
					completions++
					if completions > q.Warmup {
						lat.Record(r.Latency(eng.Now()))
					}
					if completions >= target {
						eng.Halt()
					}
				})
				svc := dist.Bimodal{P1: 0.9, D1: 5 * time.Microsecond, D2: 100 * time.Microsecond}
				rho := 0.7
				rps := rho * 8 / svc.Mean().Seconds()
				loadgen.New(eng, loadgen.Config{RPS: rps, Service: svc, Seed: q.Seed}, sys.Inject).Start()
				expected := time.Duration(float64(target) / rps * float64(time.Second))
				eng.At(sim.Time(8*expected+50*time.Millisecond), eng.Halt)
				eng.Run()
				return affinityMeasure{
					Migrations:  sys.Migrations(),
					Preemptions: sys.Preemptions(),
					Mean:        lat.Mean(),
					P99:         lat.P99(),
				}
			},
		}
	}
	runs, err := runner.RunOne(ctx, rn, "table-affinity",
		runner.Series[affinityMeasure]{Points: []runner.Point[affinityMeasure]{point(false), point(true)}})
	if len(runs) < 2 {
		return AffinityResult{}, err
	}
	off, on := runs[0], runs[1]
	return AffinityResult{
		MigrationsOff: off.Migrations,
		MigrationsOn:  on.Migrations,
		Preemptions:   on.Preemptions,
		MeanOff:       off.Mean,
		MeanOn:        on.Mean,
		P99Off:        off.P99,
		P99On:         on.P99,
	}, err
}

// AffinityAblation measures X11 on the default parallel runner.
func AffinityAblation(q Quality) AffinityResult {
	r, _ := AffinityAblationWith(context.Background(), nil, q)
	return r
}
