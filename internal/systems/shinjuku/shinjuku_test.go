package shinjuku

import (
	"testing"
	"time"

	"mindgap/internal/dist"
	"mindgap/internal/loadgen"
	"mindgap/internal/params"
	"mindgap/internal/sim"
	"mindgap/internal/stats"
	"mindgap/internal/task"
)

func run(t *testing.T, cfg Config, rps float64, svc dist.Distribution, measure int) (*stats.Recorder, *Shinjuku, *sim.Engine) {
	t.Helper()
	eng := sim.New()
	rec := &stats.Recorder{}
	rec.Arm(0)
	completions := 0
	var sys *Shinjuku
	sys = New(eng, cfg, rec, func(r *task.Request) {
		rec.RecordLatency(r.Latency(eng.Now()))
		completions++
		if completions >= measure {
			eng.Halt()
		}
	})
	sys.ArmWorkerTrackers(0)
	loadgen.New(eng, loadgen.Config{RPS: rps, Service: svc, Seed: 5}, sys.Inject).Start()
	eng.Run()
	if completions < measure {
		t.Fatalf("only %d/%d completions", completions, measure)
	}
	return rec, sys, eng
}

func cfg(workers int, slice time.Duration) Config {
	return Config{P: params.Default(), Workers: workers, Slice: slice}
}

func TestSingleRequestLatencyFloor(t *testing.T) {
	eng := sim.New()
	p := params.Default()
	var doneAt sim.Time
	sys := New(eng, cfg(1, 0), nil, func(r *task.Request) { doneAt = eng.Now() })
	sys.Inject(task.New(1, 0, time.Microsecond))
	eng.Run()
	lat := doneAt.Duration()
	floor := 2*p.ClientWireOneWay + time.Microsecond
	if lat < floor {
		t.Fatalf("latency %v below floor %v", lat, floor)
	}
	// Host-side IPC is far cheaper than the offload's packet path: the
	// whole overhead above the floor must stay under 3µs.
	if lat > floor+3*time.Microsecond {
		t.Fatalf("latency %v too high above floor %v", lat, floor)
	}
}

func TestShinjukuFasterFloorThanOffloadPath(t *testing.T) {
	// Vanilla Shinjuku's dispatch path (cache lines) must beat the
	// offload's 2.56µs packet hop at low load — the §2.2/§5.1 trade-off.
	eng := sim.New()
	var doneAt sim.Time
	sys := New(eng, cfg(1, 0), nil, func(*task.Request) { doneAt = eng.Now() })
	sys.Inject(task.New(1, 0, time.Microsecond))
	eng.Run()
	p := params.Default()
	offloadFloor := 2*p.ClientWireOneWay + p.NicHostOneWay + time.Microsecond
	if doneAt.Duration() >= offloadFloor {
		t.Fatalf("shinjuku floor %v not below offload floor %v", doneAt.Duration(), offloadFloor)
	}
}

func TestConservation(t *testing.T) {
	rec, sys, _ := run(t, cfg(3, 10*time.Microsecond), 300_000,
		dist.Bimodal{P1: 0.995, D1: 5 * time.Microsecond, D2: 100 * time.Microsecond}, 5000)
	if rec.Dropped() != 0 {
		t.Fatalf("drops = %d", rec.Dropped())
	}
	if sys.Completions() < 5000 {
		t.Fatalf("completions = %d", sys.Completions())
	}
}

func TestDispatcherDrivenPreemption(t *testing.T) {
	rec, _, _ := run(t, cfg(2, 10*time.Microsecond), 50_000,
		dist.Bimodal{P1: 0.9, D1: 5 * time.Microsecond, D2: 100 * time.Microsecond}, 2000)
	if rec.Preemptions() == 0 {
		t.Fatal("no preemptions despite 100µs requests and 10µs slice")
	}
	// A 100µs request at a 10µs slice preempts ≈9 times; with 10% long
	// requests expect roughly 0.9 preemptions per request.
	perReq := float64(rec.Preemptions()) / float64(rec.Completed())
	if perReq < 0.5 || perReq > 1.3 {
		t.Fatalf("preemptions per request = %v, want ≈0.9", perReq)
	}
}

func TestPreemptionBoundsShortRequestTail(t *testing.T) {
	// At ρ≈0.67 with 1% of requests taking 200µs, short requests without
	// preemption frequently wait behind a long one; the 90th percentile
	// (still below the long-request mass at p99+) exposes it.
	short := func(slice time.Duration) time.Duration {
		rec, _, _ := run(t, cfg(2, slice), 450_000,
			dist.Bimodal{P1: 0.99, D1: 1 * time.Microsecond, D2: 200 * time.Microsecond}, 12000)
		return rec.Latency.Quantile(0.90)
	}
	withPre := short(10 * time.Microsecond)
	withoutPre := short(0)
	if withPre >= withoutPre/2 {
		t.Fatalf("preemption did not protect short requests: with=%v without=%v", withPre, withoutPre)
	}
}

func TestDispatcherCapBounds(t *testing.T) {
	// Saturating 1µs load on 15 workers: the dispatcher (≈3.5M/s with
	// completion processing) must be the binding constraint, far below
	// the 15M/s worker capacity.
	rec, sys, eng := run(t, cfg(15, 0), 6_000_000, dist.Fixed{D: time.Microsecond}, 10000)
	got := rec.Throughput(eng.Now())
	if got > 4_500_000 {
		t.Fatalf("throughput %.0f exceeds plausible dispatcher cap", got)
	}
	if got < 2_500_000 {
		t.Fatalf("throughput %.0f far below dispatcher cap", got)
	}
	if util := sys.DispatcherUtilization(eng.Now()); util >= 0 && util < 0.9 {
		// Tracker armed at 0 via ArmDispatcherTracker? Not armed in this
		// test — BusyFraction returns 0; only check when armed.
		_ = util
	}
}

func TestShinjukuOutperformsOffloadCapAt1us(t *testing.T) {
	// Figure 6's headline: vanilla Shinjuku's host dispatcher sustains
	// far more than the ARM pipeline's ~1.5M req/s.
	rec, _, eng := run(t, cfg(15, 0), 6_000_000, dist.Fixed{D: time.Microsecond}, 10000)
	p := params.Default()
	armCap := float64(time.Second) / float64(p.ArmStageMax())
	if got := rec.Throughput(eng.Now()); got < 1.5*armCap {
		t.Fatalf("shinjuku throughput %.0f not well above offload cap %.0f", got, armCap)
	}
}

func TestValidation(t *testing.T) {
	eng := sim.New()
	for _, f := range []func(){
		func() { New(eng, Config{P: params.Default()}, nil, func(*task.Request) {}) },
		func() { New(eng, cfg(1, 0), nil, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid config did not panic")
				}
			}()
			f()
		}()
	}
}

func TestNameAndAccessors(t *testing.T) {
	eng := sim.New()
	sys := New(eng, cfg(2, 0), nil, func(*task.Request) {})
	if sys.Name() != "shinjuku" {
		t.Fatalf("Name = %q", sys.Name())
	}
	if sys.QueueLen() != 0 {
		t.Fatalf("QueueLen = %d", sys.QueueLen())
	}
	sys.ArmDispatcherTracker(0)
	if sys.DispatcherUtilization(0) != 0 {
		t.Fatal("fresh dispatcher utilization nonzero")
	}
}

func TestNUMAPenaltySlowsRemoteSocketWorkers(t *testing.T) {
	// §1: with two sockets, the dispatcher's ignorance of DDIO placement
	// costs remote workers a cross-socket fetch per pickup. Mean latency
	// and capacity degrade relative to a single-socket host.
	mean := func(sockets int) time.Duration {
		c := cfg(4, 0)
		c.Sockets = sockets
		rec, _, _ := run(t, c, 500_000, dist.Fixed{D: 5 * time.Microsecond}, 8000)
		return rec.Latency.Mean()
	}
	one := mean(1)
	two := mean(2)
	if two <= one {
		t.Fatalf("2-socket mean %v not above 1-socket mean %v", two, one)
	}
	// Half the pickups pay the 300ns penalty: the mean shift should be
	// visible but bounded (well under a microsecond at this load).
	if two-one > time.Microsecond {
		t.Fatalf("NUMA penalty shifted mean by %v, implausibly large", two-one)
	}
}

func TestSocketAssignmentBlocks(t *testing.T) {
	eng := sim.New()
	c := cfg(4, 0)
	c.Sockets = 2
	sys := New(eng, c, nil, func(*task.Request) {})
	got := []int{}
	for _, w := range sys.workers {
		got = append(got, w.socket())
	}
	want := []int{0, 0, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("socket layout = %v, want %v", got, want)
		}
	}
}
