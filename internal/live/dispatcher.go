// Package live is a real-socket implementation of the Shinjuku-Offload
// protocol: the same core.Logic scheduler that the simulator evaluates,
// driven by UDP datagrams (§3.4.2 — the dispatcher and workers communicate
// by sending UDP packets) encoded with internal/wire.
//
// It exists to demonstrate that the scheduling library is an executable
// artifact, not just a model: cmd/dispatcherd, cmd/workerd and cmd/loadgen
// run it across processes, and examples/livewire runs all three roles in
// one process over loopback.
//
// Fidelity notes (documented deviations from the SmartNIC prototype):
//   - The "NIC" is the kernel UDP stack; MAC steering becomes UDP
//     addressing.
//   - Preemption is cooperative: workers execute fake work in slice-sized
//     chunks and return the remainder, because a Go process cannot take an
//     APIC timer interrupt. The scheduler-visible behaviour (PREEMPTED
//     notifications, tail-of-queue requeue, resume on any worker) is
//     identical.
package live

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mindgap/internal/core"
	"mindgap/internal/sim"
	"mindgap/internal/task"
	"mindgap/internal/wire"
)

// maxDatagram bounds receive buffers; all protocol messages are far
// smaller.
const maxDatagram = 2048

// DispatcherConfig configures a live dispatcher.
type DispatcherConfig struct {
	// Workers is the number of workers that will register; scheduling
	// starts once all have said hello.
	Workers int
	// Outstanding is the per-worker credit limit (queuing optimization).
	Outstanding int
	// Policy selects the worker-selection policy.
	Policy core.Policy
	// RetryTimeout, when positive, enables at-least-once delivery: an
	// assignment not acknowledged (FINISH or PREEMPTED) within this window
	// is presumed lost — a dropped datagram or a dead worker — and the
	// request re-enters the tail of the central queue. Duplicate responses
	// caused by false timeouts are deduplicated by request ID at the
	// client. Zero disables retries (the simulator's fabric is lossless;
	// real UDP is not).
	RetryTimeout time.Duration
	// MaxAttempts caps deliveries per request under RetryTimeout (default
	// 5); beyond it the request is dropped and its credit reclaimed.
	MaxAttempts int
}

// Dispatcher is the live scheduler process: it owns the centralized queue
// and speaks the wire protocol with clients and workers.
type Dispatcher struct {
	cfg  DispatcherConfig
	conn *net.UDPConn
	lgc  *core.Logic

	mu         sync.Mutex
	workerAddr []*net.UDPAddr
	registered int
	pending    []*task.Request // buffered until all workers register
	clients    map[reqKey]*net.UDPAddr
	inflight   map[reqKey]*inflightEntry
	started    time.Time

	assigned   atomic.Uint64
	completed  atomic.Uint64
	preempted  atomic.Uint64
	retried    atomic.Uint64
	abandoned  atomic.Uint64
	closed     atomic.Bool
	quit       chan struct{}
	loopDone   chan struct{}
	sendBuf    []byte
	recvBuf    []byte
	payloadBuf []byte
}

// NewDispatcher binds a UDP socket on addr (e.g. "127.0.0.1:0") and
// prepares the scheduler.
func NewDispatcher(addr string, cfg DispatcherConfig) (*Dispatcher, error) {
	if cfg.Workers <= 0 {
		return nil, errors.New("live: dispatcher needs at least one worker")
	}
	if cfg.Outstanding <= 0 {
		cfg.Outstanding = 1
	}
	udpAddr, err := net.ResolveUDPAddr("udp4", addr)
	if err != nil {
		return nil, fmt.Errorf("live: resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp4", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("live: listen: %w", err)
	}
	// A saturating open-loop client plus per-request FINISH notifications
	// can overrun the default socket buffer; ask for a large one (the
	// kernel clamps to its limits).
	_ = conn.SetReadBuffer(4 << 20)
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 5
	}
	d := &Dispatcher{
		cfg:        cfg,
		conn:       conn,
		lgc:        core.NewLogic(cfg.Workers, cfg.Outstanding, cfg.Policy),
		workerAddr: make([]*net.UDPAddr, cfg.Workers),
		clients:    make(map[reqKey]*net.UDPAddr),
		inflight:   make(map[reqKey]*inflightEntry),
		quit:       make(chan struct{}),
		loopDone:   make(chan struct{}),
		sendBuf:    make([]byte, 0, maxDatagram),
		recvBuf:    make([]byte, maxDatagram),
		payloadBuf: make([]byte, 0, 64),
		started:    time.Now(),
	}
	if cfg.RetryTimeout > 0 {
		go d.reaper()
	}
	return d, nil
}

// reqKey identifies a request globally: IDs are only unique per client.
type reqKey struct {
	client uint32
	id     uint64
}

func keyOfHeader(h *wire.Header) reqKey { return reqKey{client: h.ClientID, id: h.ReqID} }
func keyOfReq(r *task.Request) reqKey   { return reqKey{client: r.ClientID, id: r.ID} }

// inflightEntry tracks one delivered assignment awaiting acknowledgement.
type inflightEntry struct {
	req      *task.Request
	worker   int
	sentAt   time.Time
	attempts int
}

// Addr returns the dispatcher's bound UDP address.
func (d *Dispatcher) Addr() *net.UDPAddr { return d.conn.LocalAddr().(*net.UDPAddr) }

// Serve processes datagrams until Close. It is typically run in its own
// goroutine.
func (d *Dispatcher) Serve() error {
	defer close(d.loopDone)
	var h wire.Header
	for {
		n, from, err := d.conn.ReadFromUDP(d.recvBuf)
		if err != nil {
			if d.closed.Load() {
				return nil
			}
			return fmt.Errorf("live: dispatcher read: %w", err)
		}
		payload, err := wire.DecodeDatagram(d.recvBuf[:n], &h)
		if err != nil {
			continue // malformed datagram: drop, like a NIC would
		}
		d.handle(&h, payload, from)
	}
}

// Close shuts the dispatcher down and waits for the serve loop to exit.
func (d *Dispatcher) Close() error {
	if d.closed.Swap(true) {
		return nil
	}
	close(d.quit)
	err := d.conn.Close()
	<-d.loopDone
	return err
}

func (d *Dispatcher) handle(h *wire.Header, payload []byte, from *net.UDPAddr) {
	switch h.Type {
	case wire.MsgHello:
		d.hello(h.WorkerID, from)
	case wire.MsgRequest:
		req := task.New(h.ReqID, sim.Time(time.Since(d.started)), time.Duration(h.ServiceNS))
		req.ClientID = h.ClientID
		d.mu.Lock()
		d.clients[keyOfHeader(h)] = from
		if d.registered < d.cfg.Workers {
			d.pending = append(d.pending, req)
			d.mu.Unlock()
			return
		}
		as := d.lgc.Enqueue(req.Arrival, req)
		d.mu.Unlock()
		d.dispatch(as)
	case wire.MsgFinish:
		d.mu.Lock()
		e, ok := d.inflight[keyOfHeader(h)]
		if !ok || e.worker != int(h.WorkerID) {
			// Stale or duplicate acknowledgement (e.g. the request was
			// already retried elsewhere): its credit was reclaimed when it
			// timed out, so there is nothing to release.
			d.mu.Unlock()
			return
		}
		delete(d.inflight, keyOfHeader(h))
		delete(d.clients, keyOfHeader(h))
		as := d.lgc.Complete(e.worker)
		d.mu.Unlock()
		d.completed.Add(1)
		d.dispatch(as)
	case wire.MsgPreempted:
		d.mu.Lock()
		e, ok := d.inflight[keyOfHeader(h)]
		if !ok || e.worker != int(h.WorkerID) {
			d.mu.Unlock()
			return
		}
		delete(d.inflight, keyOfHeader(h))
		e.req.Remaining = time.Duration(h.RemainingNS)
		e.req.Preemptions++
		as := d.lgc.Preempted(0, e.worker, e.req)
		d.mu.Unlock()
		d.preempted.Add(1)
		d.dispatch(as)
	}
}

// reaper implements at-least-once delivery: assignments unacknowledged for
// RetryTimeout are requeued (or abandoned past MaxAttempts).
func (d *Dispatcher) reaper() {
	interval := d.cfg.RetryTimeout / 2
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-d.quit:
			return
		case <-ticker.C:
		}
		now := time.Now()
		d.mu.Lock()
		var as []core.Assignment
		for id, e := range d.inflight {
			if now.Sub(e.sentAt) < d.cfg.RetryTimeout {
				continue
			}
			delete(d.inflight, id)
			if e.attempts >= d.cfg.MaxAttempts {
				// Reclaim the credit and give up on the request.
				d.abandoned.Add(1)
				delete(d.clients, id)
				//lint:allow maporder live retry path is wall-clock driven; retry order among timed-out requests is not a determinism contract
				as = append(as, d.lgc.Complete(e.worker)...)
				continue
			}
			d.retried.Add(1)
			//lint:allow maporder live retry path is wall-clock driven; retry order among timed-out requests is not a determinism contract
			as = append(as, d.lgc.Preempted(0, e.worker, e.req)...)
		}
		d.mu.Unlock()
		d.dispatch(as)
	}
}

// hello registers a worker and, once the roster is complete, admits any
// buffered client requests.
func (d *Dispatcher) hello(id uint32, from *net.UDPAddr) {
	d.mu.Lock()
	var flush []*task.Request
	if int(id) < len(d.workerAddr) && d.workerAddr[id] == nil {
		d.workerAddr[id] = from
		d.registered++
		if d.registered == d.cfg.Workers {
			flush = d.pending
			d.pending = nil
		}
	}
	var as []core.Assignment
	for _, req := range flush {
		as = append(as, d.lgc.Enqueue(req.Arrival, req)...)
	}
	d.mu.Unlock()
	d.dispatch(as)
}

// dispatch transmits assignments to workers. The payload carries the
// client's address so the worker can respond directly (§3.4: "the worker
// also sends a response to the client").
func (d *Dispatcher) dispatch(as []core.Assignment) {
	for _, a := range as {
		d.mu.Lock()
		addr := d.workerAddr[a.Worker]
		client := d.clients[keyOfReq(a.Req)]
		a.Req.Assignments++
		d.inflight[keyOfReq(a.Req)] = &inflightEntry{
			req:      a.Req,
			worker:   a.Worker,
			sentAt:   time.Now(),
			attempts: a.Req.Assignments,
		}
		h := wire.Header{
			Type:        wire.MsgAssign,
			ReqID:       a.Req.ID,
			ClientID:    a.Req.ClientID,
			WorkerID:    uint32(a.Worker),
			ServiceNS:   uint32(a.Req.Service),
			RemainingNS: uint32(a.Req.Remaining),
		}
		d.payloadBuf = encodeAddr(d.payloadBuf[:0], client)
		d.sendBuf = d.sendBuf[:0]
		buf, err := wire.EncodeDatagram(d.sendBuf, &h, d.payloadBuf)
		d.mu.Unlock()
		if err != nil || addr == nil {
			continue
		}
		d.assigned.Add(1)
		_, _ = d.conn.WriteToUDP(buf, addr)
	}
}

// Stats reports scheduling counters.
func (d *Dispatcher) Stats() (assigned, completed, preempted uint64, queued int) {
	d.mu.Lock()
	queued = d.lgc.QueueLen()
	d.mu.Unlock()
	return d.assigned.Load(), d.completed.Load(), d.preempted.Load(), queued
}

// Retried returns how many assignments timed out and were requeued.
func (d *Dispatcher) Retried() uint64 { return d.retried.Load() }

// Abandoned returns how many requests exhausted MaxAttempts.
func (d *Dispatcher) Abandoned() uint64 { return d.abandoned.Load() }

// encodeAddr packs an IPv4 UDP address into 6 payload bytes.
func encodeAddr(dst []byte, a *net.UDPAddr) []byte {
	if a == nil {
		return append(dst, 0, 0, 0, 0, 0, 0)
	}
	ip4 := a.IP.To4()
	if ip4 == nil {
		ip4 = net.IPv4zero.To4()
	}
	dst = append(dst, ip4...)
	return append(dst, byte(a.Port>>8), byte(a.Port))
}

// decodeAddr unpacks encodeAddr's format; ok is false for the zero addr.
func decodeAddr(b []byte) (*net.UDPAddr, bool) {
	if len(b) < 6 {
		return nil, false
	}
	port := int(b[4])<<8 | int(b[5])
	if port == 0 {
		return nil, false
	}
	ip := make(net.IP, 4)
	copy(ip, b[:4])
	return &net.UDPAddr{IP: ip, Port: port}, true
}
