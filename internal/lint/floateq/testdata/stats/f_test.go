package stats

// Negative: *_test.go files assert exact float equality on purpose —
// deterministic output is the contract under test.
func exactAssertion(got, want float64) bool {
	return got == want
}
