// Package nicmodel models the Broadcom Stingray datapath of §3.3: a NIC
// that presents network interfaces — each with a unique MAC address — to
// both the host CPU (one SR-IOV virtual function per worker, §3.4.2) and
// the onboard ARM CPU, steering every frame to the right function by the
// destination MAC in its Ethernet header.
//
// Each function owns a bounded RX descriptor ring; frames addressed to an
// unknown MAC or arriving at a full ring are dropped, exactly like real
// hardware. Delivery between functions crosses the NIC's internal fabric
// with the measured 2.56 µs one-way latency (§3.3).
package nicmodel

import (
	"fmt"
	"time"

	"mindgap/internal/fabric"
	"mindgap/internal/queue"
	"mindgap/internal/sim"
	"mindgap/internal/telemetry"
	"mindgap/internal/wire"
)

// Frame is a steered unit of delivery: a modelled Ethernet frame whose
// payload is the simulation-level message (a request pointer or a
// notification descriptor) rather than marshalled bytes — internal/wire
// defines the real byte layout and supplies the sizes.
type Frame struct {
	Dst, Src wire.MAC
	// Bytes is the on-wire size used for serialization accounting.
	Bytes int
	// Payload is the simulation message.
	Payload any
}

// Config sizes the NIC model.
type Config struct {
	// InternalLatency is the one-way function↔function delivery latency
	// through the NIC (ARM↔host: 2.56 µs, §3.3).
	InternalLatency time.Duration
	// RingCap bounds each function's RX descriptor ring.
	RingCap int
	// LinkFault, when set, is installed on every function's internal
	// delivery link: consulted once per steered frame, it can drop the
	// frame (NIC↔host fabric loss) or add propagation latency (a latency
	// spike). Nil — the only state healthy systems ever see — leaves the
	// links untouched.
	LinkFault func(sim.Time) (drop bool, extra time.Duration)
}

// NIC is the modelled device.
type NIC struct {
	eng *sim.Engine
	cfg Config

	fns      []*Function
	macTable map[wire.MAC]*Function

	steered     uint64
	unknownDrop uint64

	// pend is the in-flight frame table (same technique as fabric.Link's
	// message table): each steered frame parks here between send and
	// delivery, and its slot index rides through the delivery event as the
	// scalar argument, so steering allocates nothing in steady state.
	pend      []Frame
	freeSlots []uint32
}

// Function is one NIC interface: the ARM complex's port or a worker's VF.
type Function struct {
	nic  *NIC
	mac  wire.MAC
	name string

	rx *queue.Ring[Frame]
	// deliver is the internal fabric path into this function.
	deliver *fabric.Link
	// onRx fires after a frame lands in the RX ring (consumers poll, but
	// the simulation needs a wake-up edge for idle consumers).
	onRx func()
	// onDeliver fires just before onRx with the frame that landed —
	// observability layers timestamp per-frame arrival here. Nil (the
	// default) costs nothing.
	onDeliver func(Frame)
	// onDrop fires when a frame is lost to a full RX ring.
	onDrop func(Frame)
	// onWireDrop fires when an injected fabric fault loses a frame on
	// this function's delivery link — the only place the lost frame's
	// identity is still known (the link itself counts bytes, not frames).
	onWireDrop func(Frame)

	ringDrops uint64
	received  uint64
}

// New creates a NIC with no functions; AddFunction registers interfaces.
func New(eng *sim.Engine, cfg Config) *NIC {
	if cfg.RingCap <= 0 {
		cfg.RingCap = 256
	}
	return &NIC{eng: eng, cfg: cfg, macTable: make(map[wire.MAC]*Function)}
}

// MACForIndex derives a stable, locally administered MAC for function i.
func MACForIndex(i int) wire.MAC {
	return wire.MAC{0x02, 0x6d, 0x67, byte(i >> 16), byte(i >> 8), byte(i)}
}

// AddFunction registers an interface with the given MAC. It panics on a
// duplicate MAC — NIC provisioning is static configuration.
func (n *NIC) AddFunction(name string, mac wire.MAC, ringCap int) *Function {
	if _, dup := n.macTable[mac]; dup {
		panic(fmt.Sprintf("nicmodel: duplicate MAC %v", mac))
	}
	if ringCap <= 0 {
		ringCap = n.cfg.RingCap
	}
	f := &Function{
		nic:  n,
		mac:  mac,
		name: name,
		rx:   queue.NewRing[Frame](ringCap),
		deliver: fabric.NewLink(n.eng, "nic→"+name, fabric.LinkConfig{
			Latency: n.cfg.InternalLatency,
		}),
	}
	if n.cfg.LinkFault != nil {
		f.deliver.SetFault(n.cfg.LinkFault)
	}
	n.fns = append(n.fns, f)
	n.macTable[mac] = f
	return f
}

// Send steers a frame by destination MAC through the NIC. It reports false
// (and counts the drop) when the MAC is unknown or the target ring is full
// at delivery time.
//
//mindgap:noalloc
func (n *NIC) Send(f Frame) bool {
	target, ok := n.macTable[f.Dst]
	if !ok {
		n.unknownDrop++
		return false
	}
	n.steered++
	var slot uint32
	if m := len(n.freeSlots); m > 0 {
		slot = n.freeSlots[m-1]
		n.freeSlots = n.freeSlots[:m-1]
	} else {
		slot = uint32(len(n.pend))
		n.pend = append(n.pend, Frame{})
	}
	n.pend[slot] = f
	outcome := target.deliver.SendTEx(f.Bytes, nicDeliver, target, nil, uint64(slot))
	if outcome != fabric.SendAccepted {
		// The delivery event will never fire; reclaim the slot now.
		n.pend[slot] = Frame{}
		n.freeSlots = append(n.freeSlots, slot)
	}
	if outcome == fabric.SendFaultDrop && target.onWireDrop != nil {
		target.onWireDrop(f)
	}
	return outcome == fabric.SendAccepted
}

// nicDeliver fires when a steered frame crosses the NIC-internal fabric
// into its target function: release the in-flight slot, then land the
// frame in the RX ring (or drop it if the ring is full, like hardware).
//
//mindgap:noalloc
func nicDeliver(recv, _ any, slot uint64) {
	target := recv.(*Function)
	n := target.nic
	f := n.pend[slot]
	n.pend[slot] = Frame{}
	n.freeSlots = append(n.freeSlots, uint32(slot))
	if !target.rx.Push(f) {
		target.ringDrops++
		if target.onDrop != nil {
			target.onDrop(f)
		}
		return
	}
	target.received++
	if target.onDeliver != nil {
		target.onDeliver(f)
	}
	if target.onRx != nil {
		target.onRx()
	}
}

// Steered returns the number of frames accepted for steering.
func (n *NIC) Steered() uint64 { return n.steered }

// UnknownMACDrops returns frames dropped for an unknown destination.
func (n *NIC) UnknownMACDrops() uint64 { return n.unknownDrop }

// Functions returns the registered functions.
func (n *NIC) Functions() []*Function { return n.fns }

// MAC returns the function's address.
func (f *Function) MAC() wire.MAC { return f.mac }

// Name returns the diagnostic name.
func (f *Function) Name() string { return f.name }

// OnRx registers the wake-up callback invoked after each delivery.
func (f *Function) OnRx(fn func()) { f.onRx = fn }

// OnDeliver registers a per-frame delivery callback, invoked after a frame
// lands in the RX ring and before the OnRx wake-up edge.
func (f *Function) OnDeliver(fn func(Frame)) { f.onDeliver = fn }

// OnDrop registers the callback invoked when the RX ring rejects a frame.
func (f *Function) OnDrop(fn func(Frame)) { f.onDrop = fn }

// OnWireDrop registers the callback invoked when an injected fabric fault
// loses a frame destined for this function.
func (f *Function) OnWireDrop(fn func(Frame)) { f.onWireDrop = fn }

// Poll removes the oldest frame from the RX ring.
//
//mindgap:noalloc
func (f *Function) Poll() (Frame, bool) { return f.rx.Pop() }

// Pending returns the RX ring occupancy.
//
//mindgap:noalloc
func (f *Function) Pending() int { return f.rx.Len() }

// Each visits the queued frames, oldest first, without removing them.
func (f *Function) Each(fn func(Frame)) { f.rx.Do(fn) }

// RingDrops returns frames lost to a full RX ring.
func (f *Function) RingDrops() uint64 { return f.ringDrops }

// Received returns frames successfully enqueued to the RX ring.
func (f *Function) Received() uint64 { return f.received }

// FaultDropped returns frames this function's delivery link lost to
// injected fabric faults.
func (f *Function) FaultDropped() uint64 { return f.deliver.FaultDropped() }

// PeakPending returns the highest RX ring occupancy ever reached — how
// close the function came to dropping frames.
func (f *Function) PeakPending() int { return f.rx.HighWater() }

// RegisterTelemetry exposes device-level steering counters plus, for every
// function registered at call time, its RX-ring occupancy probes
// (component "nicfn-<name>") and its internal delivery link's counters and
// latency histogram (component "fabric/nic→<name>") — the per-function
// view behind the paper's NIC↔host communication accounting (§3.3).
func (n *NIC) RegisterTelemetry(reg *telemetry.Registry) {
	reg.GaugeFunc("nic", "steered", func() float64 { return float64(n.steered) })
	reg.GaugeFunc("nic", "unknown_mac_drops", func() float64 { return float64(n.unknownDrop) })
	for _, f := range n.fns {
		f := f
		comp := "nicfn-" + f.name
		reg.GaugeFunc(comp, "pending", func() float64 { return float64(f.rx.Len()) })
		reg.GaugeFunc(comp, "peak_pending", func() float64 { return float64(f.rx.HighWater()) })
		reg.GaugeFunc(comp, "received", func() float64 { return float64(f.received) })
		reg.GaugeFunc(comp, "ring_drops", func() float64 { return float64(f.ringDrops) })
		f.deliver.RegisterTelemetry(reg, "fabric/nic→"+f.name)
	}
}
