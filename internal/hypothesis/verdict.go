package hypothesis

import (
	"fmt"
	"math"
)

// This file is the pure statistical core: verdict functions take per-seed
// (or per-load) metric vectors and criterion parameters, and return a
// verdict with a human-readable reason. Nothing here touches the
// simulator, the runner, or the clock — the table-driven unit tests
// exercise every branch on crafted vectors.

// SeedOutcome is one seed's A/B measurement pair.
type SeedOutcome struct {
	Seed uint64
	A, B float64
}

// relMargin returns the direction-adjusted relative margin in favor of A:
// positive when A is better, negative when B is, in [-1, 1]. The margin
// is normalized by the larger magnitude, so a zero-vs-nonzero pair (a
// faultless arm against one that drops requests) yields the full ±1
// rather than a division by zero.
func relMargin(a, b float64, lowerBetter bool) float64 {
	adv := a - b
	if lowerBetter {
		adv = b - a
	}
	denom := math.Max(math.Abs(a), math.Abs(b))
	if denom == 0 { //lint:allow floateq exact zero means "both arms measured nothing", not a computed value
		return 0
	}
	return adv / denom
}

// symGap returns the symmetric relative gap |a−b| / ((a+b)/2), the
// equivalence-test statistic. A zero-vs-zero pair gaps 0; a
// zero-vs-nonzero pair gaps 2 (the statistic's maximum).
func symGap(a, b float64) float64 {
	mid := (math.Abs(a) + math.Abs(b)) / 2
	if mid == 0 { //lint:allow floateq exact zero means "both arms measured nothing", not a computed value
		return 0
	}
	return math.Abs(a-b) / mid
}

// DominanceVerdict is the outcome of a dominance test.
type DominanceVerdict struct {
	// Wins, Ties and Losses count seeds from A's perspective; ties never
	// count as wins.
	Wins, Ties, Losses int
	// WinFrac is Wins over all seeds.
	WinFrac float64
	// Margins holds the per-seed relative margins in favor of A, in seed
	// order; MeanMargin is their cross-seed mean.
	Margins    []float64
	MeanMargin float64
	// Pass reports whether A dominates; Reason explains either way.
	Pass   bool
	Reason string
}

// EvalDominance tests whether A beats B: at least minWinFrac of the
// seeds outright (0 means all of them), with a cross-seed mean relative
// margin of at least minMargin (which must itself be positive — a "win"
// on margin 0 would pass a tie-everywhere vector).
func EvalDominance(rows []SeedOutcome, lowerBetter bool, minMargin, minWinFrac float64) DominanceVerdict {
	if len(rows) == 0 {
		return DominanceVerdict{Reason: "no seeds measured"}
	}
	if minWinFrac <= 0 {
		minWinFrac = 1
	}
	v := DominanceVerdict{Margins: make([]float64, 0, len(rows))}
	sum := 0.0
	for _, r := range rows {
		m := relMargin(r.A, r.B, lowerBetter)
		v.Margins = append(v.Margins, m)
		sum += m
		switch {
		case m > 0:
			v.Wins++
		case m < 0:
			v.Losses++
		default:
			v.Ties++
		}
	}
	v.WinFrac = float64(v.Wins) / float64(len(rows))
	v.MeanMargin = sum / float64(len(rows))
	switch {
	case v.WinFrac < minWinFrac:
		v.Reason = fmt.Sprintf("A wins %d/%d seeds (%d ties), below required fraction %s",
			v.Wins, len(rows), v.Ties, pct(minWinFrac))
	case v.MeanMargin <= minMargin:
		v.Reason = fmt.Sprintf("mean margin %s does not clear required %s", pct(v.MeanMargin), pct(minMargin))
	default:
		v.Pass = true
		v.Reason = fmt.Sprintf("A wins %d/%d seeds with mean margin %s (required: %s of seeds, margin > %s)",
			v.Wins, len(rows), pct(v.MeanMargin), pct(minWinFrac), pct(minMargin))
	}
	return v
}

// EquivalenceVerdict is the outcome of an equivalence test.
type EquivalenceVerdict struct {
	// Gaps holds the per-seed symmetric relative gaps, in seed order;
	// MaxGap is the worst of them and the test statistic.
	Gaps   []float64
	MaxGap float64
	// WorstSeed is the seed producing MaxGap.
	WorstSeed uint64
	Pass      bool
	Reason    string
}

// EvalEquivalence tests whether every seed's symmetric relative gap
// stays within tolerance. The max (not the mean) is compared: a single
// diverging seed is exactly the signal an equivalence claim must not
// average away.
func EvalEquivalence(rows []SeedOutcome, tolerance float64) EquivalenceVerdict {
	if len(rows) == 0 {
		return EquivalenceVerdict{Reason: "no seeds measured"}
	}
	v := EquivalenceVerdict{Gaps: make([]float64, 0, len(rows))}
	for _, r := range rows {
		g := symGap(r.A, r.B)
		v.Gaps = append(v.Gaps, g)
		if g > v.MaxGap || len(v.Gaps) == 1 {
			v.MaxGap, v.WorstSeed = g, r.Seed
		}
	}
	if v.MaxGap <= tolerance {
		v.Pass = true
		v.Reason = fmt.Sprintf("worst per-seed gap %s (seed %d) within tolerance %s", pct(v.MaxGap), v.WorstSeed, pct(tolerance))
	} else {
		v.Reason = fmt.Sprintf("seed %d gaps %s, beyond tolerance %s", v.WorstSeed, pct(v.MaxGap), pct(tolerance))
	}
	return v
}

// GridOutcome is one load point's cross-seed mean A/B pair.
type GridOutcome struct {
	// X is the offered load.
	X float64
	// A and B are cross-seed means of the metric at X.
	A, B float64
}

// CrossoverVerdict is the outcome of a crossover test.
type CrossoverVerdict struct {
	// Advantage holds the per-load relative margins in favor of A, in
	// grid order.
	Advantage []float64
	// FlipLo and FlipHi bracket the detected sign change (the last load
	// where B led and the first where A led); zero when no flip exists.
	FlipLo, FlipHi float64
	// Flips counts sign changes across the grid; a clean crossover has
	// exactly one.
	Flips  int
	Pass   bool
	Reason string
}

// EvalCrossover tests for a single B→A crossover inside the bracket: B
// must lead at the low end of the grid, A at the high end, the lead must
// change exactly once, and the bracketing pair of loads must fall inside
// [want.Lo, want.Hi]. Exact ties (margin 0) carry no sign and are
// skipped; a tie sitting exactly at the flip widens the reported
// bracket, it does not count as an extra crossing. Non-monotone series
// that cross more than once fail: the claim "A wins above X" has no
// single X.
func EvalCrossover(grid []GridOutcome, lowerBetter bool, want Bracket) CrossoverVerdict {
	v := CrossoverVerdict{Advantage: make([]float64, 0, len(grid))}
	for _, g := range grid {
		v.Advantage = append(v.Advantage, relMargin(g.A, g.B, lowerBetter))
	}
	// Collapse to the signed subsequence, remembering each sign's load.
	type signed struct {
		x    float64
		sign int
	}
	var signs []signed
	for i, adv := range v.Advantage {
		s := 0
		if adv > 0 {
			s = 1
		} else if adv < 0 {
			s = -1
		}
		if s == 0 {
			continue
		}
		signs = append(signs, signed{x: grid[i].X, sign: s})
	}
	for i := 1; i < len(signs); i++ {
		if signs[i].sign != signs[i-1].sign {
			v.Flips++
			v.FlipLo, v.FlipHi = signs[i-1].x, signs[i].x
		}
	}
	switch {
	case len(grid) < 2:
		v.Reason = "crossover needs at least two grid points"
	case len(signs) == 0:
		v.Reason = "the arms tie at every load — no crossover exists"
	case v.Flips == 0:
		leader := "A"
		if signs[0].sign < 0 {
			leader = "B"
		}
		v.Reason = fmt.Sprintf("%s leads across the whole grid — no crossover", leader)
	case v.Flips > 1:
		v.Reason = fmt.Sprintf("the lead changes %d times — no single crossover point", v.Flips)
	case signs[0].sign != -1:
		v.Reason = "A already leads at the low end — the claimed B-then-A crossover is inverted"
	case v.FlipLo < want.Lo || v.FlipHi > want.Hi:
		v.Reason = fmt.Sprintf("crossover sits in [%.0f, %.0f], outside the claimed bracket [%.0f, %.0f]",
			v.FlipLo, v.FlipHi, want.Lo, want.Hi)
	default:
		v.Pass = true
		v.Reason = fmt.Sprintf("B leads below and A above one flip in [%.0f, %.0f], inside the claimed bracket [%.0f, %.0f]",
			v.FlipLo, v.FlipHi, want.Lo, want.Hi)
	}
	return v
}

// pct renders a fraction as a fixed-precision percentage — deterministic
// output for FINDINGS files.
func pct(f float64) string {
	return fmt.Sprintf("%.1f%%", f*100)
}
