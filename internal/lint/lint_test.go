package lint_test

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"mindgap/internal/lint"
	"mindgap/internal/lint/allow"
)

// TestKnownMatchesSuite pins allow.Known to the assembled analyzer
// suite: every suite analyzer must be suppressible by name, and every
// name the suppression mechanism accepts must correspond to a real
// analyzer — a stale entry would let //lint:allow directives reference
// a check that no longer exists.
func TestKnownMatchesSuite(t *testing.T) {
	suite := map[string]bool{}
	for _, a := range lint.Analyzers() {
		if a.Name == "lintallow" {
			// The directive validator itself is not suppressible: a
			// malformed suppression must always be a diagnostic.
			continue
		}
		suite[a.Name] = true
		if !allow.Known[a.Name] {
			t.Errorf("analyzer %q is in the suite but not in allow.Known: its diagnostics cannot be suppressed", a.Name)
		}
	}
	for name := range allow.Known {
		if !suite[name] {
			t.Errorf("allow.Known lists %q but no analyzer with that name is in the suite", name)
		}
	}
}

// moduleRoot walks up from this package to the directory holding go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs(".")
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above the test directory")
		}
		dir = parent
	}
}

// auditedSuppressions is the reviewed inventory of //lint:allow
// directives in the tree, keyed "<relative file> <analyzer>" with the
// number of directives. Adding a suppression anywhere in the module
// must update this table — the point is that every new exemption is an
// explicit, reviewed diff, not a drive-by comment.
var auditedSuppressions = map[string]int{
	"internal/core/offload.go hotalloc":   2,
	"internal/dist/dist.go floateq":       3,
	"internal/faults/faults.go floateq":   3,
	"internal/hypothesis/spec.go floateq": 3,
	// relMargin/symGap: zero denominators mean "both arms measured
	// exactly zero", a defined tie, not a float comparison.
	"internal/hypothesis/verdict.go floateq": 2,
	"internal/live/dispatcher.go maporder":   2,
	"internal/scenario/spec.go floateq":      3,
	"internal/systems/rtc/rtc.go hotalloc":   1,
}

// TestTreeSuppressionsAudited parses every non-testdata Go file in the
// module and checks that each //lint:allow directive names a known
// analyzer, carries a reason, and appears in the audited inventory.
func TestTreeSuppressionsAudited(t *testing.T) {
	root := moduleRoot(t)
	found := map[string]int{}
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case "testdata", "vendor", ".git":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("parsing %s: %w", path, err)
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, allow.Prefix) {
					continue
				}
				rest := text[len(allow.Prefix):]
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // //lint:allowed etc — not a directive
				}
				if i := strings.Index(rest, "//"); i >= 0 {
					rest = rest[:i]
				}
				fields := strings.Fields(rest)
				posn := fset.Position(c.Slash)
				if len(fields) == 0 {
					t.Errorf("%s:%d: suppression has no analyzer name", rel, posn.Line)
					continue
				}
				name := fields[0]
				if !allow.Known[name] {
					t.Errorf("%s:%d: suppression names unknown analyzer %q", rel, posn.Line, name)
					continue
				}
				if len(fields) < 2 {
					t.Errorf("%s:%d: suppression of %s has no reason", rel, posn.Line, name)
					continue
				}
				found[rel+" "+name]++
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	var keys []string
	for k := range found {
		keys = append(keys, k)
	}
	for k := range auditedSuppressions {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	seen := map[string]bool{}
	for _, k := range keys {
		if seen[k] {
			continue
		}
		seen[k] = true
		if found[k] != auditedSuppressions[k] {
			t.Errorf("suppression inventory drifted for %q: found %d directive(s), audited %d — review the change and update auditedSuppressions",
				k, found[k], auditedSuppressions[k])
		}
	}
}
