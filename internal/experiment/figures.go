package experiment

import (
	"time"

	"mindgap/internal/dist"
	"mindgap/internal/params"
	"mindgap/internal/scenario"
	"mindgap/internal/systems/idealnic"
)

// Quality trades run time for statistical confidence.
type Quality struct {
	// Warmup completions are discarded; Measure completions recorded.
	Warmup, Measure int
	// Seed fixes every random stream.
	Seed uint64
}

// Quick is suitable for tests and testing.B benchmarks; Full for the CLI
// runs recorded in EXPERIMENTS.md.
var (
	Quick = Quality{Warmup: 2_000, Measure: 12_000, Seed: 7}
	Full  = Quality{Warmup: 20_000, Measure: 100_000, Seed: 7}
)

// Workload constants of §4.1.
var (
	// BimodalWorkload is Figure 2's distribution: 99.5% 5 µs, 0.5% 100 µs.
	BimodalWorkload = dist.Bimodal{P1: 0.995, D1: 5 * time.Microsecond, D2: 100 * time.Microsecond}
	// Fixed1us, Fixed5us, Fixed100us are the fixed service times of
	// Figures 3–6.
	Fixed1us   = dist.Fixed{D: 1 * time.Microsecond}
	Fixed5us   = dist.Fixed{D: 5 * time.Microsecond}
	Fixed100us = dist.Fixed{D: 100 * time.Microsecond}
)

// The historical *Factory helpers below are kept for tests and examples
// but are now thin registry lookups: every one of them assembles its
// system through scenario.BuildWith, the single audited assembly point.

// mustFactory builds a spec's factory against an explicit calibration;
// the specs below are static and valid, so failure is a programmer error.
func mustFactory(sp scenario.Spec, p params.Params) Factory {
	f, err := scenario.BuildWith(sp, scenario.Options{Params: &p})
	if err != nil {
		panic(err)
	}
	return f
}

// OffloadFactory builds a Shinjuku-Offload system factory.
func OffloadFactory(p params.Params, workers, outstanding int, slice time.Duration) Factory {
	return mustFactory(scenario.Spec{System: "offload", Knobs: &scenario.Knobs{
		Workers: workers, Outstanding: outstanding, Slice: scenario.Duration(slice),
	}}, p)
}

// ShinjukuFactory builds a vanilla Shinjuku system factory.
func ShinjukuFactory(p params.Params, workers int, slice time.Duration) Factory {
	return mustFactory(scenario.Spec{System: "shinjuku", Knobs: &scenario.Knobs{
		Workers: workers, Slice: scenario.Duration(slice),
	}}, p)
}

// RSSFactory builds an IX-style RSS run-to-completion factory.
func RSSFactory(p params.Params, workers int) Factory {
	return mustFactory(scenario.Spec{System: "rss", Knobs: &scenario.Knobs{Workers: workers}}, p)
}

// ZygOSFactory builds an RSS + work-stealing factory.
func ZygOSFactory(p params.Params, workers int) Factory {
	return mustFactory(scenario.Spec{System: "zygos", Knobs: &scenario.Knobs{Workers: workers}}, p)
}

// FlowDirFactory builds a MICA-style key-steering factory.
func FlowDirFactory(p params.Params, workers int) Factory {
	return mustFactory(scenario.Spec{System: "flowdir", Knobs: &scenario.Knobs{Workers: workers}}, p)
}

// RPCValetFactory builds an integrated-NI hardware-queue factory.
func RPCValetFactory(p params.Params, workers int) Factory {
	return mustFactory(scenario.Spec{System: "rpcvalet", Knobs: &scenario.Knobs{Workers: workers}}, p)
}

// ERSSFactory builds an Elastic RSS factory (§5.1's cited related work:
// load feedback resizes the RSS core set, but the policy stays fixed).
func ERSSFactory(p params.Params, workers int) Factory {
	return mustFactory(scenario.Spec{System: "erss", Knobs: &scenario.Knobs{Workers: workers}}, p)
}

// IdealNICFactory builds a §5.1 ablation factory.
func IdealNICFactory(cfg idealnic.Config) Factory {
	return mustFactory(scenario.Spec{System: "idealnic", Knobs: &scenario.Knobs{
		Workers:          cfg.Workers,
		Outstanding:      cfg.Outstanding,
		Slice:            scenario.Duration(cfg.Slice),
		CXL:              cfg.CXL,
		LineRate:         cfg.LineRate,
		DirectInterrupts: cfg.DirectInterrupts,
	}}, cfg.P)
}

// The figure definitions are checked-in scenario presets under
// scenarios/; each FigureSpec function compiles its preset against the
// requested quality. Titles, labels, grids, workloads, and knobs live
// in the JSON files.

// Figure2Spec declares the bimodal tail-latency figure: 99.5% 5 µs + 0.5%
// 100 µs, 10 µs slice, Shinjuku with 3 workers vs Shinjuku-Offload with 4
// workers and up to 4 outstanding requests.
func Figure2Spec(q Quality) FigureSpec { return presetFigureSpec("figure2", q) }

// Figure2 runs Figure2Spec on the default parallel runner.
func Figure2(q Quality) Figure { return mustFigure(Figure2Spec(q)) }

// Figure3Spec declares the queuing-optimization figure: fixed 1 µs service
// time, Shinjuku-Offload throughput at saturation as the per-worker
// outstanding-request limit k sweeps 1..7, for 4 and 16 workers.
func Figure3Spec(q Quality) FigureSpec { return presetFigureSpec("figure3", q) }

// Figure3 runs Figure3Spec on the default parallel runner.
func Figure3(q Quality) Figure { return mustFigure(Figure3Spec(q)) }

// Figure3BurstSpec declares the burst-processing ablation of Figure 3: the
// same k sweep with the queue-manager core draining DPDK-style bursts (16
// events) from one input ring before polling the other. Burst processing
// delays credit handling behind floods of new arrivals, deepening the k=1
// penalty — the effect that made the paper's 16-worker curve gain 88% from
// k=1 to k=3 where the fair-polling model gains almost nothing.
func Figure3BurstSpec(q Quality) FigureSpec { return presetFigureSpec("figure3-burst", q) }

// Figure3Burst runs Figure3BurstSpec on the default parallel runner.
func Figure3Burst(q Quality) Figure { return mustFigure(Figure3BurstSpec(q)) }

// Figure4Spec declares the fixed 5 µs figure: preemption off, Shinjuku 3
// workers vs Offload 4 workers (k=4).
func Figure4Spec(q Quality) FigureSpec { return presetFigureSpec("figure4", q) }

// Figure4 runs Figure4Spec on the default parallel runner.
func Figure4(q Quality) Figure { return mustFigure(Figure4Spec(q)) }

// Figure5Spec declares the fixed 100 µs figure: Shinjuku 15 workers vs
// Offload 16 workers (k=2), preemption off.
func Figure5Spec(q Quality) FigureSpec { return presetFigureSpec("figure5", q) }

// Figure5 runs Figure5Spec on the default parallel runner.
func Figure5(q Quality) Figure { return mustFigure(Figure5Spec(q)) }

// Figure6Spec declares the fixed 1 µs figure at high worker counts:
// Shinjuku 15 workers vs Offload 16 workers (k=5). Here the offloaded
// dispatcher is the bottleneck and vanilla Shinjuku greatly outperforms
// (§5.1).
func Figure6Spec(q Quality) FigureSpec { return presetFigureSpec("figure6", q) }

// Figure6 runs Figure6Spec on the default parallel runner.
func Figure6(q Quality) Figure { return mustFigure(Figure6Spec(q)) }

// Figure6CXLSpec declares the X1 ablation: Figure 6's offload
// configuration with the §5.1(2) coherent-memory communication path.
func Figure6CXLSpec(q Quality) FigureSpec { return presetFigureSpec("figure6-cxl", q) }

// Figure6CXL runs Figure6CXLSpec on the default parallel runner.
func Figure6CXL(q Quality) Figure { return mustFigure(Figure6CXLSpec(q)) }

// Figure6LineRateSpec declares the X2 ablation: Figure 6 with a line-rate
// hardware scheduler (§5.1-1), alone and combined with CXL.
func Figure6LineRateSpec(q Quality) FigureSpec { return presetFigureSpec("figure6-linerate", q) }

// Figure6LineRate runs Figure6LineRateSpec on the default parallel runner.
func Figure6LineRate(q Quality) Figure { return mustFigure(Figure6LineRateSpec(q)) }

// FigureFaultsNICCrashSpec declares the NIC-crash adversity figure: the
// Figure 2 offload configuration, healthy vs a run whose NIC ARM cores
// crash for 4 ms (10–14 ms), with a 1 ms request timeout, 3 retries, and
// degradation to RSS-style hash steering while the cores are down.
func FigureFaultsNICCrashSpec(q Quality) FigureSpec {
	return presetFigureSpec("figure-faults-niccrash", q)
}

// FigureFaultsNICCrash runs FigureFaultsNICCrashSpec on the default
// parallel runner.
func FigureFaultsNICCrash(q Quality) Figure { return mustFigure(FigureFaultsNICCrashSpec(q)) }

// FigureFaultsLossyFabricSpec declares the lossy-fabric adversity figure:
// clean NIC↔host fabric vs seeded loss bursts (5% per-frame) and 20 µs
// latency spikes, recovered by the timeout/retry machinery.
func FigureFaultsLossyFabricSpec(q Quality) FigureSpec {
	return presetFigureSpec("figure-faults-lossyfabric", q)
}

// FigureFaultsLossyFabric runs FigureFaultsLossyFabricSpec on the default
// parallel runner.
func FigureFaultsLossyFabric(q Quality) Figure { return mustFigure(FigureFaultsLossyFabricSpec(q)) }

// BaselineComparisonSpec declares the X4 landscape: every system of §2.1
// on the bimodal workload, normalized per worker (all systems get equal
// host cores; systems that burn a core on dispatch get fewer workers).
func BaselineComparisonSpec(q Quality) FigureSpec { return presetFigureSpec("baselines", q) }

// BaselineComparison runs BaselineComparisonSpec on the default parallel
// runner.
func BaselineComparison(q Quality) Figure { return mustFigure(BaselineComparisonSpec(q)) }
