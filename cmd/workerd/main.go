// Command workerd runs one or more live mindgap workers: they register with
// a dispatcher, execute fake work (§4.1), cooperatively preempt at the time
// slice, and respond to clients directly.
//
// Usage:
//
//	workerd -dispatcher 127.0.0.1:9000 -id 0 -n 4 -slice 50µs
//
// starts workers 0..3 in one process (each with its own socket). With
// -metrics, per-worker completion/preemption counters are served over
// HTTP at /metrics and /debug/vars.
package main

import (
	"flag"
	"log"
	"net"
	"os"
	"os/signal"

	"mindgap/internal/live"
	"mindgap/internal/telemetry"
)

func main() {
	var (
		dispatcher = flag.String("dispatcher", "127.0.0.1:9000", "dispatcher UDP address")
		id         = flag.Int("id", 0, "first worker ID")
		n          = flag.Int("n", 1, "number of workers to run in this process")
		slice      = flag.Duration("slice", 0, "cooperative preemption quantum (0 = run to completion)")
		metrics    = flag.String("metrics", "", "HTTP address serving /metrics and /debug/vars (empty = off)")
	)
	flag.Parse()

	addr, err := net.ResolveUDPAddr("udp4", *dispatcher)
	if err != nil {
		log.Fatalf("workerd: resolve dispatcher: %v", err)
	}

	var workers []*live.Worker
	for i := 0; i < *n; i++ {
		w, err := live.NewWorker(live.WorkerConfig{
			ID:         uint32(*id + i),
			Dispatcher: addr,
			Slice:      *slice,
		})
		if err != nil {
			log.Fatalf("workerd: worker %d: %v", *id+i, err)
		}
		log.Printf("workerd: worker %d on %v (slice %v)", *id+i, w.Addr(), *slice)
		go func() {
			if err := w.Serve(); err != nil {
				log.Printf("workerd: %v", err)
			}
		}()
		workers = append(workers, w)
	}

	if *metrics != "" {
		reg := telemetry.NewRegistry()
		for _, w := range workers {
			w.RegisterMetrics(reg)
		}
		ms, err := live.ServeMetrics(*metrics, reg)
		if err != nil {
			log.Fatalf("workerd: %v", err)
		}
		defer ms.Close()
		log.Printf("workerd: metrics on %s/metrics", ms.URL())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	for _, w := range workers {
		_ = w.Close()
	}
	var done, pre uint64
	for _, w := range workers {
		done += w.Completed()
		pre += w.Preempted()
	}
	log.Printf("workerd: completed=%d preempted=%d", done, pre)
}
