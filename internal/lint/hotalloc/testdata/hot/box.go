// Interface-boxing fixtures: storing a non-pointer-shaped value in an
// any allocates; pointers, constants, nil and interface-to-interface
// moves do not.
package core

import "mindgap/internal/task"

func consume(v any) {}

type box struct{ payload any }

//mindgap:noalloc
func hotBox(id uint64, req *task.Request, v any) {
	consume(id)       // want `uint64 boxed into an interface allocates; pass a pointer or use the event's scalar arg \(annotated //mindgap:noalloc\)`
	consume(req)      // pointer-shaped: stored inline
	consume(nil)      // nil: no allocation
	consume("static") // constant: static data
	consume(v)        // interface to interface: no re-boxing
}

//mindgap:noalloc
func hotAssign(x int) {
	var v any
	v = x // want `int boxed into an interface allocates; pass a pointer or use the event's scalar arg \(annotated //mindgap:noalloc\)`
	_ = v
}

//mindgap:noalloc
func hotLit(n int64) box {
	return box{payload: n} // want `int64 boxed into an interface allocates; pass a pointer or use the event's scalar arg \(annotated //mindgap:noalloc\)`
}
