package experiment

import (
	"context"
	"math"
	"math/rand/v2"
	"time"

	"mindgap/internal/dist"
	"mindgap/internal/loadgen"
	"mindgap/internal/runner"
	"mindgap/internal/scenario"
	"mindgap/internal/sim"
	"mindgap/internal/stats"
	"mindgap/internal/task"
)

// DispersionRow is one row of the X7 extension experiment: the same mean
// service time and utilization, with increasing service-time dispersion.
// The theory the paper leans on (§2.2, Wierman & Zwart) is about *short
// requests*: "without preemption, short requests will get stuck behind
// long requests and the tail latency of the short requests will explode".
// So the metric is the p99 latency of requests whose service time is at
// most the distribution mean — preemption deliberately trades long-request
// latency away, which overall p99 would (correctly but uninterestingly)
// penalize.
type DispersionRow struct {
	// Workload names the distribution.
	Workload string
	// CV2 is the empirical squared coefficient of variation.
	CV2 float64
	// PreemptShortP99 and NoPreemptShortP99 are the short-request tails
	// with a 10µs slice and with preemption disabled.
	PreemptShortP99, NoPreemptShortP99 time.Duration
	// Win is NoPreemptShortP99 / PreemptShortP99.
	Win float64
}

// shortTailMeasure is the runner payload of one X7 simulation.
type shortTailMeasure struct {
	ShortP99 time.Duration
}

// DispersionSensitivityWith runs the X7 sweep on rn, as declared by the
// table-dispersion preset: distributions of increasing dispersion with a
// 10µs mean at ρ≈0.7 on four workers, on the Shinjuku-Offload system.
// Each (workload, preemption) cell is an independent simulation, so the
// whole table fans out in parallel.
func DispersionSensitivityWith(ctx context.Context, rn *runner.Runner, q Quality) ([]DispersionRow, error) {
	p := mustPreset("table-dispersion")

	// One series per workload, two points each: the preset's slice, and
	// preemption off (slice 0).
	sw := runner.Sweep[shortTailMeasure]{Name: p.ID}
	workloads := make([]dist.Distribution, len(p.Series))
	for i := range p.Series {
		base := p.SpecFor(i)
		w, err := dist.Parse(base.Workload)
		if err != nil {
			return nil, err
		}
		workloads[i] = w
		eq := qualityFor(base, q)
		rps := specLoads(base, w)[0]
		point := func(sp scenario.Spec) (runner.Point[shortTailMeasure], error) {
			f, err := scenario.Build(sp)
			if err != nil {
				return runner.Point[shortTailMeasure]{}, err
			}
			return runner.Point[shortTailMeasure]{
				Key: specPointKey(p.ID, sp, eq, rps),
				Run: func() shortTailMeasure {
					return shortTailMeasure{ShortP99: shortTail(f, w, rps, eq)}
				},
			}, nil
		}
		on, err := point(base)
		if err != nil {
			return nil, err
		}
		off, err := point(base.WithSlice(0))
		if err != nil {
			return nil, err
		}
		sw.Series = append(sw.Series, runner.Series[shortTailMeasure]{
			Label:  p.Series[i].Label,
			Points: []runner.Point[shortTailMeasure]{on, off},
		})
	}

	res, err := runner.Run(ctx, rn, sw)
	var rows []DispersionRow
	for i, sr := range res {
		if len(sr.Results) < 2 {
			break // cancelled mid-sweep: keep complete rows only
		}
		pre, nopre := sr.Results[0].ShortP99, sr.Results[1].ShortP99
		row := DispersionRow{
			Workload:          sr.Label,
			CV2:               empiricalCV2(workloads[i]),
			PreemptShortP99:   pre,
			NoPreemptShortP99: nopre,
		}
		if pre > 0 {
			row.Win = float64(nopre) / float64(pre)
		}
		rows = append(rows, row)
	}
	return rows, err
}

// DispersionSensitivity runs the X7 sweep on the default parallel runner.
func DispersionSensitivity(q Quality) []DispersionRow {
	rows, _ := DispersionSensitivityWith(context.Background(), nil, q)
	return rows
}

// shortTail measures the p99 latency of requests with Service <= mean on
// the system built by f (the preemption quantum is already baked into
// the factory by the scenario spec).
func shortTail(f Factory, w dist.Distribution, rps float64, q Quality) time.Duration {
	eng := sim.New()
	mean := w.Mean()
	var short stats.Histogram
	completions := 0
	target := q.Warmup + q.Measure
	sys := f(eng, nil, func(r *task.Request) {
		completions++
		if completions > q.Warmup && r.Service <= mean {
			short.Record(r.Latency(eng.Now()))
		}
		if completions >= target {
			eng.Halt()
		}
	})
	loadgen.New(eng, loadgen.Config{RPS: rps, Service: w, Seed: q.Seed}, sys.Inject).Start()
	// Watchdog mirrors RunPoint's: bounded even if something saturates.
	expected := time.Duration(float64(target) / rps * float64(time.Second))
	eng.At(sim.Time(8*expected+50*time.Millisecond), eng.Halt)
	eng.Run()
	return short.P99()
}

// empiricalCV2 estimates the squared coefficient of variation by sampling.
func empiricalCV2(d dist.Distribution) float64 {
	r := rand.New(rand.NewPCG(5, 55))
	const n = 100_000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := float64(d.Sample(r))
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	varr := sumSq/n - mean*mean
	// Samples are non-negative, so mean <= 0 means every draw was zero
	// and CV² is undefined; <= sidesteps an exact float comparison.
	if mean <= 0 {
		return 0
	}
	cv2 := varr / (mean * mean)
	if math.IsNaN(cv2) || cv2 < 0 {
		return 0
	}
	return cv2
}
