package fabric

import (
	"testing"
	"testing/quick"
	"time"

	"mindgap/internal/sim"
)

func TestLinkLatencyOnly(t *testing.T) {
	eng := sim.New()
	l := NewLink(eng, "wire", LinkConfig{Latency: 2560 * time.Nanosecond})
	var arrived sim.Time
	l.Send(64, func() { arrived = eng.Now() })
	eng.Run()
	if arrived != sim.Time(2560) {
		t.Fatalf("arrival at %v, want 2.56µs", arrived)
	}
	if l.Delivered() != 1 {
		t.Fatalf("Delivered = %d", l.Delivered())
	}
}

func TestLinkSerialization(t *testing.T) {
	eng := sim.New()
	// 10 Gb/s: 1000 bytes = 800 ns.
	l := NewLink(eng, "wire", LinkConfig{Latency: time.Microsecond, BandwidthBps: 10e9})
	var arrivals []sim.Time
	l.Send(1000, func() { arrivals = append(arrivals, eng.Now()) })
	l.Send(1000, func() { arrivals = append(arrivals, eng.Now()) })
	eng.Run()
	if arrivals[0] != sim.Time(1800) {
		t.Fatalf("first arrival %v, want 1.8µs", arrivals[0])
	}
	// Second frame waits for the first to serialize: departs 1600, arrives 2600.
	if arrivals[1] != sim.Time(2600) {
		t.Fatalf("second arrival %v, want 2.6µs", arrivals[1])
	}
}

func TestLinkFIFOWithMixedSizes(t *testing.T) {
	eng := sim.New()
	l := NewLink(eng, "wire", LinkConfig{Latency: time.Microsecond, BandwidthBps: 1e9})
	var order []int
	// A large frame followed by a tiny one: the tiny one must not overtake.
	l.Send(10_000, func() { order = append(order, 1) })
	l.Send(10, func() { order = append(order, 2) })
	eng.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v, want [1 2]", order)
	}
}

func TestLinkBoundedQueueDrops(t *testing.T) {
	eng := sim.New()
	l := NewLink(eng, "wire", LinkConfig{Latency: 0, BandwidthBps: 8e9, QueueLimit: 2})
	delivered := 0
	ok1 := l.Send(1000, func() { delivered++ }) // serializing µs-scale
	ok2 := l.Send(1000, func() { delivered++ })
	ok3 := l.Send(1000, func() { delivered++ }) // third still fits (2 queued)? queued=2 now
	if !ok1 || !ok2 {
		t.Fatal("first two sends rejected")
	}
	_ = ok3
	// Queue limit 2: after two sends queued=2, so the third is dropped.
	if ok3 {
		t.Fatalf("third send accepted with QueueLimit=2, queued=%d", l.Queued())
	}
	if l.Dropped() != 1 {
		t.Fatalf("Dropped = %d, want 1", l.Dropped())
	}
	eng.Run()
	if delivered != 2 {
		t.Fatalf("delivered = %d, want 2", delivered)
	}
	// After draining, capacity is available again.
	if !l.Send(1000, func() { delivered++ }) {
		t.Fatal("send after drain rejected")
	}
	eng.Run()
	if delivered != 3 {
		t.Fatalf("delivered = %d, want 3", delivered)
	}
}

func TestLinkZeroConfigIsInstant(t *testing.T) {
	eng := sim.New()
	l := NewLink(eng, "shm", LinkConfig{})
	fired := false
	l.Send(0, func() { fired = true })
	eng.Run()
	if !fired || eng.Now() != 0 {
		t.Fatalf("instant link: fired=%v now=%v", fired, eng.Now())
	}
}

// Property: with random sizes, deliveries always occur in send order and
// never earlier than latency after the send.
func TestQuickLinkOrdering(t *testing.T) {
	f := func(sizes []uint16) bool {
		eng := sim.New()
		lat := 500 * time.Nanosecond
		l := NewLink(eng, "wire", LinkConfig{Latency: lat, BandwidthBps: 10e9})
		var order []int
		var times []sim.Time
		for i, sz := range sizes {
			i := i
			sent := eng.Now()
			_ = sent
			l.Send(int(sz%2000)+1, func() {
				order = append(order, i)
				times = append(times, eng.Now())
			})
		}
		eng.Run()
		if len(order) != len(sizes) {
			return false
		}
		for i := range order {
			if order[i] != i {
				return false
			}
			if times[i] < sim.Time(lat) {
				return false
			}
			if i > 0 && times[i] < times[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStageSerialProcessing(t *testing.T) {
	eng := sim.New()
	var done []sim.Time
	s := NewStage[int](eng, "arm", 0, FixedCost[int](700*time.Nanosecond), func(int) {
		done = append(done, eng.Now())
	})
	s.Submit(1)
	s.Submit(2)
	s.Submit(3)
	eng.Run()
	want := []sim.Time{700, 1400, 2100}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("done[%d] = %v, want %v", i, done[i], want[i])
		}
	}
	if s.Processed() != 3 {
		t.Fatalf("Processed = %d", s.Processed())
	}
}

func TestStagePerItemCost(t *testing.T) {
	eng := sim.New()
	var done []sim.Time
	s := NewStage[time.Duration](eng, "w", 0,
		func(d time.Duration) time.Duration { return d },
		func(time.Duration) { done = append(done, eng.Now()) })
	s.Submit(100 * time.Nanosecond)
	s.Submit(1 * time.Microsecond)
	eng.Run()
	if done[0] != sim.Time(100) || done[1] != sim.Time(1100) {
		t.Fatalf("done = %v", done)
	}
}

func TestStageBoundedQueue(t *testing.T) {
	eng := sim.New()
	processed := 0
	s := NewStage[int](eng, "arm", 1, FixedCost[int](time.Microsecond), func(int) { processed++ })
	if !s.Submit(1) { // enters service
		t.Fatal("submit 1 rejected")
	}
	if !s.Submit(2) { // queued (limit 1)
		t.Fatal("submit 2 rejected")
	}
	if s.Submit(3) { // queue full
		t.Fatal("submit 3 accepted beyond limit")
	}
	if s.Dropped() != 1 {
		t.Fatalf("Dropped = %d", s.Dropped())
	}
	eng.Run()
	if processed != 2 {
		t.Fatalf("processed = %d", processed)
	}
}

func TestStageIdleRestart(t *testing.T) {
	eng := sim.New()
	processed := 0
	s := NewStage[int](eng, "arm", 0, FixedCost[int](time.Microsecond), func(int) { processed++ })
	s.Submit(1)
	eng.Run()
	if s.Busy() {
		t.Fatal("stage busy after drain")
	}
	s.Submit(2)
	eng.Run()
	if processed != 2 {
		t.Fatalf("processed = %d", processed)
	}
}

func TestStageUtilization(t *testing.T) {
	eng := sim.New()
	s := NewStage[int](eng, "arm", 0, FixedCost[int](time.Microsecond), func(int) {})
	s.BusyTracker().Arm(0)
	s.Submit(1)
	eng.Run()
	eng.RunUntil(sim.Time(2000))
	got := s.BusyTracker().BusyFraction(eng.Now())
	if got != 0.5 {
		t.Fatalf("busy fraction = %v, want 0.5", got)
	}
}

func TestStageNilDonePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil done did not panic")
		}
	}()
	NewStage[int](sim.New(), "x", 0, nil, nil)
}

func TestDequeCompaction(t *testing.T) {
	var d deque[int]
	for i := 0; i < 1000; i++ {
		d.pushBack(i)
	}
	for i := 0; i < 900; i++ {
		v, ok := d.popFront()
		if !ok || v != i {
			t.Fatalf("popFront = %d,%v want %d", v, ok, i)
		}
	}
	// Trigger compaction path.
	d.pushBack(1000)
	for i := 900; i <= 1000; i++ {
		v, ok := d.popFront()
		if !ok || v != i {
			t.Fatalf("after compaction popFront = %d,%v want %d", v, ok, i)
		}
	}
	if _, ok := d.popFront(); ok {
		t.Fatal("popFront on empty deque succeeded")
	}
}
