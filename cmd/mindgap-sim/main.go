// Command mindgap-sim runs a single simulated configuration and prints its
// measured point — the interactive counterpart to mindgap-bench's fixed
// figure grids.
//
// Usage:
//
//	mindgap-sim -system offload -workers 4 -outstanding 4 -slice 10µs \
//	            -dist bimodal:0.995:5µs:100µs -rps 400000
//	mindgap-sim -system shinjuku -workers 3 -rps 300000
//	mindgap-sim -system rss|zygos|flowdir|rpcvalet -workers 4 ...
//	mindgap-sim -system idealnic -cxl -linerate ...
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"mindgap/internal/dist"
	"mindgap/internal/experiment"
	"mindgap/internal/params"
	"mindgap/internal/systems/idealnic"
)

func main() {
	var (
		system      = flag.String("system", "offload", "offload, shinjuku, rss, zygos, flowdir, rpcvalet, idealnic")
		workers     = flag.Int("workers", 4, "worker cores")
		outstanding = flag.Int("outstanding", 4, "per-worker outstanding limit (offload/idealnic)")
		slice       = flag.Duration("slice", 10*time.Microsecond, "preemption quantum (0 disables)")
		distSpec    = flag.String("dist", "bimodal:0.995:5µs:100µs", "service-time distribution")
		rps         = flag.Float64("rps", 400_000, "offered load")
		warmup      = flag.Int("warmup", 20_000, "warmup completions to discard")
		measure     = flag.Int("measure", 100_000, "completions to measure")
		seed        = flag.Uint64("seed", 7, "workload seed")
		zipfN       = flag.Int("zipf-keys", 0, "key-space size for zipf keys (0 = no keys)")
		zipfS       = flag.Float64("zipf-skew", 0.99, "zipf skew")
		cxl         = flag.Bool("cxl", false, "idealnic: coherent-memory communication (§5.1-2)")
		lineRate    = flag.Bool("linerate", false, "idealnic: hardware line-rate scheduler (§5.1-1)")
		directIRQ   = flag.Bool("directirq", false, "idealnic: NIC-posted interrupts (§5.1-3)")
	)
	flag.Parse()

	svc, err := dist.Parse(*distSpec)
	if err != nil {
		log.Fatalf("mindgap-sim: %v", err)
	}
	p := params.Default()

	var factory experiment.Factory
	switch *system {
	case "offload":
		factory = experiment.OffloadFactory(p, *workers, *outstanding, *slice)
	case "shinjuku":
		factory = experiment.ShinjukuFactory(p, *workers, *slice)
	case "rss":
		factory = experiment.RSSFactory(p, *workers)
	case "zygos":
		factory = experiment.ZygOSFactory(p, *workers)
	case "flowdir":
		factory = experiment.FlowDirFactory(p, *workers)
	case "rpcvalet":
		factory = experiment.RPCValetFactory(p, *workers)
	case "idealnic":
		factory = experiment.IdealNICFactory(idealnic.Config{
			P: p, Workers: *workers, Outstanding: *outstanding, Slice: *slice,
			CXL: *cxl, LineRate: *lineRate, DirectInterrupts: *directIRQ,
		})
	default:
		fmt.Fprintf(os.Stderr, "mindgap-sim: unknown system %q\n", *system)
		os.Exit(2)
	}

	cfg := experiment.PointConfig{
		Factory:    factory,
		Service:    svc,
		OfferedRPS: *rps,
		Warmup:     *warmup,
		Measure:    *measure,
		Seed:       *seed,
	}
	if *zipfN > 0 {
		cfg.Keys = dist.NewZipfKeys(*zipfN, *zipfS)
	}

	start := time.Now()
	r := experiment.RunPoint(cfg)
	fmt.Printf("system=%s workload=%v offered=%.0f rps\n", r.SystemName, svc, *rps)
	fmt.Printf("%s\n", r.Point)
	fmt.Printf("mean=%v max=%v preemptions=%d drops=%d simtime=%v walltime=%v\n",
		r.Mean, r.Max, r.Preemptions, r.Dropped,
		r.SimTime.Round(time.Millisecond), time.Since(start).Round(time.Millisecond))
}
