package experiment

import (
	"context"
	"time"

	"mindgap/internal/core"
	"mindgap/internal/dist"
	"mindgap/internal/params"
	"mindgap/internal/runner"
	"mindgap/internal/sim"
	"mindgap/internal/stats"
	"mindgap/internal/task"
)

// PolicyRow is one row of the X10 experiment: the same system and workload
// under different worker-selection policies, isolating the value of the
// paper's core idea — host load feedback informing NIC decisions (§3.1).
type PolicyRow struct {
	Policy   core.Policy
	P50, P99 time.Duration
	Achieved float64
}

// PolicyAblationWith compares worker-selection policies on
// Shinjuku-Offload, one point per policy, concurrently on rn.
// Round-robin ignores load entirely; least-outstanding balances request
// *counts*; informed-least-loaded balances remaining *work* using host
// feedback. With shallow stashes the centralized FIFO absorbs nearly all
// imbalance and the policies tie (a finding in itself); the regime below —
// deep stashes, dispersive non-preemptible service times — is where the
// informed policy earns its keep.
func PolicyAblationWith(ctx context.Context, rn *runner.Runner, q Quality) ([]PolicyRow, error) {
	p := params.Default()
	const workers = 8
	// Deep stashes (k=6) plus dispersive, non-preemptible service times:
	// the regime where *what* sits in a worker's stash matters, not just
	// how many requests do.
	svc := dist.Bimodal{P1: 0.95, D1: 5 * time.Microsecond, D2: 200 * time.Microsecond}
	rho := 0.75
	rps := rho * float64(workers) / svc.Mean().Seconds()

	policies := []core.Policy{core.RoundRobin, core.LeastOutstanding, core.InformedLeastLoaded}
	pts := make([]runner.Point[Result], len(policies))
	for i, pol := range policies {
		pol := pol
		cfg := PointConfig{
			Factory: func(eng *sim.Engine, rec *stats.Recorder, done func(*task.Request)) System {
				return core.NewOffload(eng, core.OffloadConfig{
					P: p, Workers: workers, Outstanding: 6,
					Policy:       pol,
					LoadFeedback: pol == core.InformedLeastLoaded,
				}, rec, done)
			},
			Service:    svc,
			OfferedRPS: rps,
			Warmup:     q.Warmup,
			Measure:    q.Measure,
			Seed:       q.Seed,
		}
		pts[i] = runner.Point[Result]{
			Key: pointKey("table-policy", pol.String(), cfg),
			Run: func() Result { return RunPoint(cfg) },
		}
	}
	res, err := runner.RunOne(ctx, rn, "table-policy", runner.Series[Result]{Points: pts})
	rows := make([]PolicyRow, len(res))
	for i, r := range res {
		rows[i] = PolicyRow{Policy: policies[i], P50: r.P50, P99: r.P99, Achieved: r.AchievedRPS}
	}
	return rows, err
}

// PolicyAblation runs PolicyAblationWith on the default parallel runner.
func PolicyAblation(q Quality) []PolicyRow {
	rows, _ := PolicyAblationWith(context.Background(), nil, q)
	return rows
}
