package stats

import (
	"fmt"
	"time"
)

// Waterfall aggregates per-request latency decompositions: one histogram
// for the end-to-end latency plus one per causal phase, recorded together
// so per-phase shares of the total are well-defined. The phase vector of
// every observation must partition its total exactly (the attribution
// layer guarantees this by construction), which keeps share arithmetic
// honest: phase means sum to the total mean.
//
// The zero value is unusable; use NewWaterfall. Not safe for concurrent
// use — each simulation run owns its own Waterfall.
type Waterfall struct {
	total  Histogram
	phases []Histogram
}

// NewWaterfall creates an aggregator for the given number of phases.
func NewWaterfall(phases int) *Waterfall {
	if phases <= 0 {
		panic("stats: waterfall needs at least one phase")
	}
	return &Waterfall{phases: make([]Histogram, phases)}
}

// Phases returns the number of phases.
func (w *Waterfall) Phases() int { return len(w.phases) }

// Record adds one request: its end-to-end latency and the per-phase
// decomposition. len(parts) must equal Phases().
func (w *Waterfall) Record(total time.Duration, parts []time.Duration) {
	if len(parts) != len(w.phases) {
		panic(fmt.Sprintf("stats: waterfall expects %d phases, got %d", len(w.phases), len(parts)))
	}
	w.total.Record(total)
	for i, d := range parts {
		w.phases[i].Record(d)
	}
}

// Count returns the number of recorded requests.
func (w *Waterfall) Count() int64 { return w.total.Count() }

// Total returns the end-to-end latency histogram.
func (w *Waterfall) Total() *Histogram { return &w.total }

// Phase returns phase i's duration histogram.
func (w *Waterfall) Phase(i int) *Histogram { return &w.phases[i] }

// MeanShare returns phase i's share of the total latency mass: the sum of
// phase-i time across all requests divided by the sum of end-to-end
// latency. It returns 0 when nothing was recorded.
func (w *Waterfall) MeanShare(i int) float64 {
	if w.total.sum <= 0 {
		return 0
	}
	return w.phases[i].sum / w.total.sum
}

// Merge adds all of o's observations into w. Phase counts must match.
func (w *Waterfall) Merge(o *Waterfall) {
	if o == nil {
		return
	}
	if len(o.phases) != len(w.phases) {
		panic("stats: merging waterfalls with different phase counts")
	}
	w.total.Merge(&o.total)
	for i := range w.phases {
		w.phases[i].Merge(&o.phases[i])
	}
}

// Reset forgets all observations.
func (w *Waterfall) Reset() {
	w.total.Reset()
	for i := range w.phases {
		w.phases[i].Reset()
	}
}
