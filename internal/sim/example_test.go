package sim_test

import (
	"fmt"
	"time"

	"mindgap/internal/sim"
)

// A minimal simulation: two events and a cancelled timer.
func Example() {
	eng := sim.New()
	eng.After(2*time.Microsecond, func() {
		fmt.Printf("second event at %v\n", eng.Now())
	})
	eng.After(1*time.Microsecond, func() {
		fmt.Printf("first event at %v\n", eng.Now())
	})
	tm := eng.AfterTimer(3*time.Microsecond, func() {
		fmt.Println("never printed")
	})
	tm.Stop()
	eng.Run()
	fmt.Printf("done at %v after %d events\n", eng.Now(), eng.Executed())
	// Output:
	// first event at 1µs
	// second event at 2µs
	// done at 2µs after 2 events
}
