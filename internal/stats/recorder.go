package stats

import (
	"fmt"
	"time"

	"mindgap/internal/sim"
)

// Recorder accumulates per-request latency observations plus the counters a
// load-sweep point needs: completions, drops, and the time window over which
// throughput is computed. Warmup observations are excluded by arming the
// recorder only when measurement starts.
type Recorder struct {
	Latency Histogram

	armed     bool
	started   sim.Time
	stopped   sim.Time
	completed int64
	dropped   int64
	preempts  int64
}

// Arm begins measurement at instant now; everything recorded earlier was
// warmup and is discarded.
func (r *Recorder) Arm(now sim.Time) {
	r.Latency.Reset()
	r.completed, r.dropped, r.preempts = 0, 0, 0
	r.armed = true
	r.started = now
	r.stopped = 0
}

// Stop ends the measurement window.
func (r *Recorder) Stop(now sim.Time) {
	r.armed = false
	r.stopped = now
}

// Armed reports whether observations are currently being kept.
func (r *Recorder) Armed() bool { return r.armed }

// RecordLatency records one completed request's client-observed latency.
func (r *Recorder) RecordLatency(d time.Duration) {
	if !r.armed {
		return
	}
	r.Latency.Record(d)
	r.completed++
}

// RecordDrop counts a request lost to a full queue.
func (r *Recorder) RecordDrop() {
	if r.armed {
		r.dropped++
	}
}

// RecordPreemption counts one preemption event.
func (r *Recorder) RecordPreemption() {
	if r.armed {
		r.preempts++
	}
}

// Completed returns the number of requests completed inside the window.
func (r *Recorder) Completed() int64 { return r.completed }

// Dropped returns the number of requests dropped inside the window.
func (r *Recorder) Dropped() int64 { return r.dropped }

// Preemptions returns the number of preemptions inside the window.
func (r *Recorder) Preemptions() int64 { return r.preempts }

// PreemptionRate returns preemptions per completed request — how many
// extra scheduling round trips and context switches the average request
// cost. It returns 0 when nothing completed.
func (r *Recorder) PreemptionRate() float64 {
	if r.completed == 0 {
		return 0
	}
	return float64(r.preempts) / float64(r.completed)
}

// Summary renders the recorder's counters at instant now as one report
// line, including the preemption rate and latency percentiles.
func (r *Recorder) Summary(now sim.Time) string {
	return fmt.Sprintf(
		"completed=%d dropped=%d preempts=%d preempt_rate=%.3f throughput=%.0f rps p50=%v p99=%v max=%v",
		r.completed, r.dropped, r.preempts, r.PreemptionRate(),
		r.Throughput(now), r.Latency.P50(), r.Latency.P99(), r.Latency.Max())
}

// String is Summary at the end of the measurement window (zero throughput
// if the recorder was never stopped).
func (r *Recorder) String() string { return r.Summary(r.stopped) }

// Window returns the measurement window length, using now if the recorder
// has not been stopped yet.
func (r *Recorder) Window(now sim.Time) time.Duration {
	end := r.stopped
	if r.armed || end == 0 {
		end = now
	}
	return end.Sub(r.started)
}

// Throughput returns achieved requests per second over the window.
func (r *Recorder) Throughput(now sim.Time) float64 {
	w := r.Window(now)
	if w <= 0 {
		return 0
	}
	return float64(r.completed) / w.Seconds()
}

// BusyTracker accounts how much of a core's time was spent doing useful
// work versus waiting, the statistic behind the paper's "workers spend 110%
// more time waiting for work" observation (§4).
type BusyTracker struct {
	busySince sim.Time
	busy      bool
	accBusy   time.Duration
	opened    sim.Time
	armed     bool
}

// Arm starts accounting at now, discarding prior state.
func (b *BusyTracker) Arm(now sim.Time) {
	b.accBusy = 0
	b.opened = now
	b.armed = true
	if b.busy {
		b.busySince = now
	}
}

// SetBusy transitions the core's busy state at instant now. Redundant
// transitions are ignored.
func (b *BusyTracker) SetBusy(now sim.Time, busy bool) {
	if busy == b.busy {
		return
	}
	if b.busy && b.armed {
		b.accBusy += now.Sub(b.busySince)
	}
	b.busy = busy
	if busy {
		b.busySince = now
	}
}

// BusyFraction returns the fraction of [arm, now] the core was busy.
func (b *BusyTracker) BusyFraction(now sim.Time) float64 {
	if !b.armed {
		return 0
	}
	total := now.Sub(b.opened)
	if total <= 0 {
		return 0
	}
	busy := b.accBusy
	if b.busy {
		busy += now.Sub(b.busySince)
	}
	return float64(busy) / float64(total)
}

// IdleFraction is 1 − BusyFraction.
func (b *BusyTracker) IdleFraction(now sim.Time) float64 {
	return 1 - b.BusyFraction(now)
}

// Point is one measured point of a load sweep: the row format behind every
// figure in the paper.
type Point struct {
	// OfferedRPS is the open-loop arrival rate.
	OfferedRPS float64
	// AchievedRPS is the measured completion rate.
	AchievedRPS float64
	// P50, P99, Mean, Max describe client-observed latency.
	P50, P99, Mean, Max time.Duration
	// Completed and Dropped are raw counts inside the window.
	Completed, Dropped int64
	// Preemptions inside the window.
	Preemptions int64
	// WorkerIdleFraction is the mean idle fraction across worker cores.
	WorkerIdleFraction float64
	// Saturated is set when the system failed to keep up with the offered
	// load (achieved < 97% of offered) — the point where tail curves shoot
	// up in the paper's figures.
	Saturated bool
}

// String renders the point as a human-readable table row.
func (p Point) String() string {
	sat := ""
	if p.Saturated {
		sat = " SATURATED"
	}
	return fmt.Sprintf("offered=%9.0f rps achieved=%9.0f rps p50=%8v p99=%8v idle=%5.1f%%%s",
		p.OfferedRPS, p.AchievedRPS, p.P50, p.P99, p.WorkerIdleFraction*100, sat)
}
