package hypothesis

import (
	"math"
	"strings"
	"testing"
)

// The verdict layer is pure: every test here runs on crafted vectors,
// no simulation. Directions use "lower is better" unless stated.

func TestDominanceCleanWin(t *testing.T) {
	rows := []SeedOutcome{
		{Seed: 1, A: 80, B: 100},
		{Seed: 2, A: 90, B: 100},
		{Seed: 3, A: 70, B: 100},
	}
	v := EvalDominance(rows, true, 0.05, 1.0)
	if !v.Pass {
		t.Fatalf("expected pass: %s", v.Reason)
	}
	if v.Wins != 3 || v.Ties != 0 || v.Losses != 0 {
		t.Fatalf("wins/ties/losses = %d/%d/%d", v.Wins, v.Ties, v.Losses)
	}
	want := (0.20 + 0.10 + 0.30) / 3
	if math.Abs(v.MeanMargin-want) > 1e-12 {
		t.Fatalf("mean margin %v, want %v", v.MeanMargin, want)
	}
}

func TestDominanceMarginTooThin(t *testing.T) {
	rows := []SeedOutcome{
		{Seed: 1, A: 99, B: 100},
		{Seed: 2, A: 98, B: 100},
	}
	v := EvalDominance(rows, true, 0.10, 1.0)
	if v.Pass {
		t.Fatal("2% margin must not clear a 10% requirement")
	}
	if !strings.Contains(v.Reason, "margin") {
		t.Fatalf("reason should name the margin: %q", v.Reason)
	}
}

func TestDominanceExactMarginFails(t *testing.T) {
	// Mean margin exactly equal to min_margin is not a clear win.
	rows := []SeedOutcome{{Seed: 1, A: 90, B: 100}}
	v := EvalDominance(rows, true, 0.10, 1.0)
	if v.Pass {
		t.Fatal("margin == min_margin must fail (strict inequality)")
	}
}

func TestDominanceTiesAreNotWins(t *testing.T) {
	rows := []SeedOutcome{
		{Seed: 1, A: 50, B: 100},
		{Seed: 2, A: 100, B: 100}, // tie
	}
	if v := EvalDominance(rows, true, 0, 1.0); v.Pass {
		t.Fatal("a tie must break an every-seed dominance claim")
	}
	// With min_win_frac 0.5 the tie is tolerated.
	v := EvalDominance(rows, true, 0, 0.5)
	if !v.Pass {
		t.Fatalf("expected pass at min_win_frac 0.5: %s", v.Reason)
	}
	if v.Ties != 1 || v.Wins != 1 {
		t.Fatalf("wins/ties = %d/%d", v.Wins, v.Ties)
	}
}

func TestDominanceZeroWinFracMeansAll(t *testing.T) {
	rows := []SeedOutcome{
		{Seed: 1, A: 50, B: 100},
		{Seed: 2, A: 110, B: 100},
	}
	if v := EvalDominance(rows, true, 0, 0); v.Pass {
		t.Fatal("min_win_frac 0 must default to every seed")
	}
}

func TestDominanceHigherBetter(t *testing.T) {
	// Goodput direction: A achieves more.
	rows := []SeedOutcome{
		{Seed: 1, A: 120, B: 100},
		{Seed: 2, A: 130, B: 100},
	}
	v := EvalDominance(rows, false, 0.05, 1.0)
	if !v.Pass {
		t.Fatalf("expected pass: %s", v.Reason)
	}
	// Same vector under lower-is-better flips to a loss.
	if v := EvalDominance(rows, true, 0, 1.0); v.Pass {
		t.Fatal("direction must flip the verdict")
	}
}

func TestDominanceZeroVsNonzero(t *testing.T) {
	// A faultless arm (0 drops) against a dropping arm: full margin, no
	// division by zero.
	rows := []SeedOutcome{{Seed: 1, A: 0, B: 0.05}}
	v := EvalDominance(rows, true, 0.5, 1.0)
	if !v.Pass {
		t.Fatalf("expected pass: %s", v.Reason)
	}
	if math.Abs(v.Margins[0]-1) > 1e-12 {
		t.Fatalf("zero-vs-nonzero margin = %v, want 1", v.Margins[0])
	}
}

func TestDominanceEmpty(t *testing.T) {
	if v := EvalDominance(nil, true, 0, 1.0); v.Pass {
		t.Fatal("no seeds must not pass")
	}
}

func TestEquivalenceWithinTolerance(t *testing.T) {
	rows := []SeedOutcome{
		{Seed: 1, A: 100, B: 104},
		{Seed: 2, A: 100, B: 97},
	}
	v := EvalEquivalence(rows, 0.05)
	if !v.Pass {
		t.Fatalf("expected pass: %s", v.Reason)
	}
	if v.WorstSeed != 1 {
		t.Fatalf("worst seed = %d, want 1", v.WorstSeed)
	}
}

func TestEquivalenceToleranceEdge(t *testing.T) {
	// Gap exactly at tolerance passes (inclusive bound), a hair over
	// fails.
	rows := []SeedOutcome{{Seed: 1, A: 100, B: 100}}
	if v := EvalEquivalence(rows, 0.01); !v.Pass {
		t.Fatalf("identical arms must be equivalent: %s", v.Reason)
	}
	edge := []SeedOutcome{{Seed: 1, A: 95, B: 105}}
	g := symGap(95, 105)
	if v := EvalEquivalence(edge, g); !v.Pass {
		t.Fatalf("gap exactly at tolerance must pass: %s", v.Reason)
	}
	if v := EvalEquivalence(edge, g*0.999); v.Pass {
		t.Fatal("gap beyond tolerance must fail")
	}
}

func TestEquivalenceOneDivergingSeed(t *testing.T) {
	rows := []SeedOutcome{
		{Seed: 1, A: 100, B: 101},
		{Seed: 9, A: 100, B: 150},
		{Seed: 3, A: 100, B: 99},
	}
	v := EvalEquivalence(rows, 0.05)
	if v.Pass {
		t.Fatal("one diverging seed must fail the max-gap test")
	}
	if v.WorstSeed != 9 {
		t.Fatalf("worst seed = %d, want 9", v.WorstSeed)
	}
}

func TestEquivalenceBothZero(t *testing.T) {
	rows := []SeedOutcome{{Seed: 1, A: 0, B: 0}}
	if v := EvalEquivalence(rows, 0.01); !v.Pass {
		t.Fatalf("zero-vs-zero must gap 0: %s", v.Reason)
	}
}

func cross(xs []float64, a, b []float64) []GridOutcome {
	out := make([]GridOutcome, len(xs))
	for i := range xs {
		out[i] = GridOutcome{X: xs[i], A: a[i], B: b[i]}
	}
	return out
}

func TestCrossoverMonotone(t *testing.T) {
	// B leads at 100 and 200, A from 300 on.
	g := cross(
		[]float64{100, 200, 300, 400},
		[]float64{110, 105, 95, 80},
		[]float64{100, 100, 100, 100})
	v := EvalCrossover(g, true, Bracket{Lo: 150, Hi: 350})
	if !v.Pass {
		t.Fatalf("expected pass: %s", v.Reason)
	}
	if v.FlipLo != 200 || v.FlipHi != 300 {
		t.Fatalf("flip bracket [%v, %v], want [200, 300]", v.FlipLo, v.FlipHi)
	}
	if v.Flips != 1 {
		t.Fatalf("flips = %d, want 1", v.Flips)
	}
}

func TestCrossoverOutsideBracket(t *testing.T) {
	g := cross(
		[]float64{100, 200, 300},
		[]float64{110, 90, 80},
		[]float64{100, 100, 100})
	if v := EvalCrossover(g, true, Bracket{Lo: 250, Hi: 300}); v.Pass {
		t.Fatal("flip at [100,200] must miss bracket [250,300]")
	}
}

func TestCrossoverNoFlip(t *testing.T) {
	g := cross(
		[]float64{100, 200},
		[]float64{90, 80},
		[]float64{100, 100})
	v := EvalCrossover(g, true, Bracket{Lo: 100, Hi: 200})
	if v.Pass {
		t.Fatal("A leading everywhere is not a crossover")
	}
	if !strings.Contains(v.Reason, "A leads") {
		t.Fatalf("reason should name the constant leader: %q", v.Reason)
	}
}

func TestCrossoverInverted(t *testing.T) {
	// A leads at the low end, B at the high end: a flip exists but in
	// the wrong direction for the claim.
	g := cross(
		[]float64{100, 200},
		[]float64{90, 110},
		[]float64{100, 100})
	if v := EvalCrossover(g, true, Bracket{Lo: 100, Hi: 200}); v.Pass {
		t.Fatal("an A-then-B flip must not satisfy a B-then-A claim")
	}
}

func TestCrossoverNonMonotone(t *testing.T) {
	// B, A, B, A: two crossings — no single crossover point.
	g := cross(
		[]float64{100, 200, 300, 400},
		[]float64{110, 90, 110, 90},
		[]float64{100, 100, 100, 100})
	v := EvalCrossover(g, true, Bracket{Lo: 100, Hi: 400})
	if v.Pass {
		t.Fatal("a double crossing must fail")
	}
	if v.Flips != 3 {
		t.Fatalf("flips = %d, want 3", v.Flips)
	}
}

func TestCrossoverTieAtFlip(t *testing.T) {
	// An exact tie between the signed points widens the bracket instead
	// of counting as a crossing.
	g := cross(
		[]float64{100, 200, 300},
		[]float64{110, 100, 90},
		[]float64{100, 100, 100})
	v := EvalCrossover(g, true, Bracket{Lo: 100, Hi: 300})
	if !v.Pass {
		t.Fatalf("expected pass: %s", v.Reason)
	}
	if v.FlipLo != 100 || v.FlipHi != 300 {
		t.Fatalf("flip bracket [%v, %v], want the tie-widened [100, 300]", v.FlipLo, v.FlipHi)
	}
}

func TestCrossoverAllTies(t *testing.T) {
	g := cross(
		[]float64{100, 200},
		[]float64{100, 100},
		[]float64{100, 100})
	if v := EvalCrossover(g, true, Bracket{Lo: 100, Hi: 200}); v.Pass {
		t.Fatal("identical arms have no crossover")
	}
}

func TestCrossoverTooFewPoints(t *testing.T) {
	g := cross([]float64{100}, []float64{90}, []float64{100})
	if v := EvalCrossover(g, true, Bracket{Lo: 50, Hi: 150}); v.Pass {
		t.Fatal("one grid point cannot bracket a crossover")
	}
}

func TestRelMarginSymmetry(t *testing.T) {
	// Swapping arms negates the margin exactly.
	for _, pair := range [][2]float64{{80, 100}, {0, 5}, {3, 3}} {
		m1 := relMargin(pair[0], pair[1], true)
		m2 := relMargin(pair[1], pair[0], true)
		if m1 != -m2 {
			t.Fatalf("relMargin(%v,%v) = %v, swapped %v: not antisymmetric", pair[0], pair[1], m1, m2)
		}
	}
}
