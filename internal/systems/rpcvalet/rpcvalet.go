// Package rpcvalet models RPCValet (Daglis et al., ASPLOS '19) as described
// in §2.1: a network interface integrated next to the cores maintains a
// single hardware request queue and dispatches each request to an idle core
// with near-zero communication latency. It eliminates load imbalance like
// Shinjuku but lacks preemption — so it shines on uniform service times and
// suffers head-of-line blocking on dispersive ones (§2.2 item 2).
package rpcvalet

import (
	"fmt"

	"mindgap/internal/core"
	"mindgap/internal/cores"
	"mindgap/internal/fabric"
	"mindgap/internal/params"
	"mindgap/internal/sim"
	"mindgap/internal/stats"
	"mindgap/internal/task"
)

// Config describes one RPCValet deployment.
type Config struct {
	// P is the hardware cost model.
	P params.Params
	// Workers is the number of cores served by the integrated NI.
	Workers int
}

type niEventKind uint8

const (
	evNew niEventKind = iota
	evFinish
)

type niEvent struct {
	kind   niEventKind
	worker int
	req    *task.Request
}

const (
	ncNew = iota
	ncNotif
)

// Valet is the simulated RPCValet system.
type Valet struct {
	eng  *sim.Engine
	cfg  Config
	lgc  *core.Logic
	rec  *stats.Recorder
	done func(*task.Request)

	ingress *fabric.Link
	egress  *fabric.Link
	ni      *fabric.MultiStage[niEvent]
	workers []*worker

	// asScratch is the reusable assignment buffer for the NI's scheduling
	// calls (consumed synchronously per event).
	asScratch []core.Assignment
}

type worker struct {
	sys      *Valet
	id       int
	exec     *cores.Exec
	fromNI   *fabric.Link
	toNI     *fabric.Link
	starting bool
	post     bool
	stash    []*task.Request
}

// New builds the system. done runs when the client receives each response.
func New(eng *sim.Engine, cfg Config, rec *stats.Recorder, done func(*task.Request)) *Valet {
	if cfg.Workers <= 0 {
		panic("rpcvalet: need workers")
	}
	if done == nil {
		panic("rpcvalet: need a completion callback")
	}
	p := cfg.P
	s := &Valet{
		eng: eng, cfg: cfg,
		lgc:  core.NewLogic(cfg.Workers, 1, core.LeastOutstanding),
		rec:  rec,
		done: done,
	}
	s.ingress = fabric.NewLink(eng, "client→ni", fabric.LinkConfig{
		Latency: p.ClientWireOneWay, BandwidthBps: p.WireBandwidth,
	})
	s.egress = fabric.NewLink(eng, "ni→client", fabric.LinkConfig{
		Latency: p.ClientWireOneWay, BandwidthBps: p.WireBandwidth,
	})
	// The NI is dedicated hardware: per-request cost is tens of ns.
	s.ni = fabric.NewMultiStage[niEvent](eng, "ni-queue", 2, nil,
		fabric.FixedCost[niEvent](p.RPCValetDispatchCost),
		s.handleNIEvent)
	execCfg := cores.ExecConfig{
		Clock:   p.HostClock,
		Timer:   p.HostTimer,
		Slice:   0, // no preemption: RPCValet's structural weakness
		SelfArm: false,
	}
	for i := 0; i < cfg.Workers; i++ {
		w := &worker{
			sys: s, id: i,
			fromNI: fabric.NewLink(eng, fmt.Sprintf("ni→w%d", i),
				fabric.LinkConfig{Latency: p.RPCValetLinkLatency}),
			toNI: fabric.NewLink(eng, fmt.Sprintf("w%d→ni", i),
				fabric.LinkConfig{Latency: p.RPCValetLinkLatency}),
		}
		w.exec = cores.NewExec(eng, i, execCfg, w.onComplete, nil)
		s.workers = append(s.workers, w)
	}
	return s
}

// Name implements the experiment System interface.
func (s *Valet) Name() string { return "rpcvalet" }

// Inject admits a client request at the current instant.
func (s *Valet) Inject(req *task.Request) {
	s.ingress.SendT(s.cfg.P.RequestFrameBytes, niIngress, s, req, 0)
}

// niIngress fires when a request frame reaches the integrated NI.
//
//mindgap:noalloc
func niIngress(recv, obj any, _ uint64) {
	s := recv.(*Valet)
	s.ni.Submit(ncNew, niEvent{kind: evNew, req: obj.(*task.Request)})
}

//mindgap:noalloc
func (s *Valet) handleNIEvent(ev niEvent) {
	as := s.asScratch[:0]
	switch ev.kind {
	case evNew:
		as = s.lgc.EnqueueTo(as, s.eng.Now(), ev.req)
	case evFinish:
		as = s.lgc.CompleteTo(as, ev.worker)
	}
	for _, a := range as {
		w := s.workers[a.Worker]
		w.fromNI.SendT(0, niDeliver, w, a.Req, 0)
	}
	s.asScratch = as[:0]
}

// niDeliver fires when an assignment crosses the NI→core link.
//
//mindgap:noalloc
func niDeliver(recv, obj any, _ uint64) {
	recv.(*worker).receive(obj.(*task.Request))
}

//mindgap:noalloc
func (w *worker) receive(req *task.Request) {
	w.stash = append(w.stash, req)
	w.maybeStart()
}

//mindgap:noalloc
func (w *worker) maybeStart() {
	if w.exec.Busy() || w.starting || w.post || len(w.stash) == 0 {
		return
	}
	w.starting = true
	w.sys.eng.AfterE(w.sys.cfg.P.PickupCost(false), niPickup, w, nil, 0)
}

// niPickup fires once the pickup cost has elapsed.
//
//mindgap:noalloc
func niPickup(recv, _ any, _ uint64) {
	w := recv.(*worker)
	w.starting = false
	if len(w.stash) == 0 {
		return
	}
	req := w.stash[0]
	w.stash = w.stash[1:]
	w.exec.Start(req)
}

//mindgap:noalloc
func (w *worker) onComplete(req *task.Request) {
	w.post = true
	w.sys.eng.AfterE(w.sys.cfg.P.WorkerResponseCost, niResponseBuilt, w, req, 0)
}

// niResponseBuilt fires once the worker has built the response packet.
//
//mindgap:noalloc
func niResponseBuilt(recv, obj any, _ uint64) {
	w := recv.(*worker)
	sys := w.sys
	req := obj.(*task.Request)
	sys.egress.SendT(sys.cfg.P.ResponseFrameBytes, niRespond, sys, req, 0)
	w.toNI.SendT(0, niNotifyFinish, w, nil, 0)
	w.post = false
	w.maybeStart()
}

// niRespond fires when the response frame reaches the client.
//
//mindgap:noalloc
func niRespond(recv, obj any, _ uint64) {
	recv.(*Valet).done(obj.(*task.Request))
}

// niNotifyFinish fires when the completion notification reaches the NI.
//
//mindgap:noalloc
func niNotifyFinish(recv, _ any, _ uint64) {
	w := recv.(*worker)
	w.sys.ni.Submit(ncNotif, niEvent{kind: evFinish, worker: w.id})
}

// WorkerIdleFraction returns the mean idle fraction across cores.
func (s *Valet) WorkerIdleFraction(now sim.Time) float64 {
	var sum float64
	for _, w := range s.workers {
		sum += w.exec.Track.IdleFraction(now)
	}
	return sum / float64(len(s.workers))
}

// ArmWorkerTrackers starts busy-time accounting at now.
func (s *Valet) ArmWorkerTrackers(now sim.Time) {
	for _, w := range s.workers {
		w.exec.Track.Arm(now)
	}
}

// QueueLen exposes the central hardware queue depth.
func (s *Valet) QueueLen() int { return s.lgc.QueueLen() }

// Completions returns total completed requests.
func (s *Valet) Completions() uint64 {
	var n uint64
	for _, w := range s.workers {
		n += w.exec.Completions()
	}
	return n
}
