// FaaS scenario: the paper's introduction motivates NIC scheduling with
// highly-variable workloads like function-as-a-service frameworks (§1).
// This example co-locates three latency classes on one server — short API
// functions, medium data transforms, and long batch functions — and
// measures *per-class* tail latency under each §2.1 scheduling
// architecture.
//
// Expected outcome (the paper's §2.2 argument): without preemption, the
// batch class head-of-line blocks the API class and its tail explodes;
// centralized preemptive scheduling keeps the API class fast at the price
// of stretching the (latency-insensitive) batch class.
//
//	go run ./examples/faas
package main

import (
	"fmt"
	"time"

	"mindgap/internal/dist"
	"mindgap/internal/experiment"
	"mindgap/internal/loadgen"
	"mindgap/internal/params"
	"mindgap/internal/sim"
	"mindgap/internal/stats"
	"mindgap/internal/task"
)

// Class thresholds on the sampled service time.
const (
	apiMax       = 15 * time.Microsecond
	transformMax = 250 * time.Microsecond
)

func classify(svc time.Duration) int {
	switch {
	case svc < apiMax:
		return 0
	case svc < transformMax:
		return 1
	default:
		return 2
	}
}

var classNames = [3]string{"api(µs)", "transform(10µs)", "batch(ms)"}

func main() {
	workload := dist.NewMixture(
		[]float64{0.80, 0.18, 0.02},
		[]dist.Distribution{
			dist.Exponential{M: 3 * time.Microsecond},                             // API handlers
			dist.Exponential{M: 40 * time.Microsecond},                            // transforms
			dist.Uniform{Lo: 300 * time.Microsecond, Hi: 1200 * time.Microsecond}, // batch
		},
	)
	p := params.Default()
	const workers = 8
	const rps = 220_000 // ρ ≈ 0.68 on 8 workers
	slice := 15 * time.Microsecond

	fmt.Printf("workload: %v (mean %v), %d krps on %d host cores\n\n",
		workload, workload.Mean(), rps/1000, workers)

	configs := []struct {
		label   string
		factory experiment.Factory
	}{
		{"shinjuku-offload (preemptive, NIC)", experiment.OffloadFactory(p, workers, 4, slice)},
		{"shinjuku (preemptive, host core)", experiment.ShinjukuFactory(p, workers-1, slice)},
		{"rpcvalet (central, no preempt)", experiment.RPCValetFactory(p, workers)},
		{"zygos (stealing, no preempt)", experiment.ZygOSFactory(p, workers)},
		{"rss/ix (static, no preempt)", experiment.RSSFactory(p, workers)},
	}

	fmt.Printf("%-36s %14s %14s %14s\n",
		"p99 per class →", classNames[0], classNames[1], classNames[2])
	for _, c := range configs {
		perClass := measure(c.factory, workload, rps)
		fmt.Printf("%-36s %14v %14v %14v\n",
			c.label, perClass[0].P99(), perClass[1].P99(), perClass[2].P99())
	}
	fmt.Println("\nPreemptive systems hold the API class near its µs-scale service time;")
	fmt.Println("run-to-completion systems let millisecond batch functions block it")
	fmt.Println("(§2.2 problem 2). The batch class pays for its own preemptions — the")
	fmt.Println("processor-sharing trade the paper cites from Wierman & Zwart.")
}

// measure runs one system and returns per-class latency histograms.
func measure(factory experiment.Factory, svc dist.Distribution, rps float64) [3]*stats.Histogram {
	eng := sim.New()
	var hist [3]*stats.Histogram
	for i := range hist {
		hist[i] = &stats.Histogram{}
	}
	const warmup, measure = 10_000, 80_000
	completions := 0
	var sys experiment.System
	sys = factory(eng, nil, func(r *task.Request) {
		completions++
		if completions <= warmup {
			return
		}
		hist[classify(r.Service)].Record(r.Latency(eng.Now()))
		if completions >= warmup+measure {
			eng.Halt()
		}
	})
	loadgen.New(eng, loadgen.Config{RPS: rps, Service: svc, Seed: 7}, sys.Inject).Start()
	eng.Run()
	return hist
}
