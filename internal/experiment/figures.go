package experiment

import (
	"time"

	"mindgap/internal/core"
	"mindgap/internal/dist"
	"mindgap/internal/params"
	"mindgap/internal/sim"
	"mindgap/internal/stats"
	"mindgap/internal/systems/erss"
	"mindgap/internal/systems/idealnic"
	"mindgap/internal/systems/rpcvalet"
	"mindgap/internal/systems/rtc"
	"mindgap/internal/systems/shinjuku"
	"mindgap/internal/task"
)

// Quality trades run time for statistical confidence.
type Quality struct {
	// Warmup completions are discarded; Measure completions recorded.
	Warmup, Measure int
	// Seed fixes every random stream.
	Seed uint64
}

// Quick is suitable for tests and testing.B benchmarks; Full for the CLI
// runs recorded in EXPERIMENTS.md.
var (
	Quick = Quality{Warmup: 2_000, Measure: 12_000, Seed: 7}
	Full  = Quality{Warmup: 20_000, Measure: 100_000, Seed: 7}
)

// Workload constants of §4.1.
var (
	// BimodalWorkload is Figure 2's distribution: 99.5% 5 µs, 0.5% 100 µs.
	BimodalWorkload = dist.Bimodal{P1: 0.995, D1: 5 * time.Microsecond, D2: 100 * time.Microsecond}
	// Fixed1us, Fixed5us, Fixed100us are the fixed service times of
	// Figures 3–6.
	Fixed1us   = dist.Fixed{D: 1 * time.Microsecond}
	Fixed5us   = dist.Fixed{D: 5 * time.Microsecond}
	Fixed100us = dist.Fixed{D: 100 * time.Microsecond}
)

// OffloadFactory builds a Shinjuku-Offload system factory.
func OffloadFactory(p params.Params, workers, outstanding int, slice time.Duration) Factory {
	return func(eng *sim.Engine, rec *stats.Recorder, done func(*task.Request)) System {
		return core.NewOffload(eng, core.OffloadConfig{
			P: p, Workers: workers, Outstanding: outstanding, Slice: slice,
			Policy: core.LeastOutstanding,
		}, rec, done)
	}
}

// ShinjukuFactory builds a vanilla Shinjuku system factory.
func ShinjukuFactory(p params.Params, workers int, slice time.Duration) Factory {
	return func(eng *sim.Engine, rec *stats.Recorder, done func(*task.Request)) System {
		return shinjuku.New(eng, shinjuku.Config{
			P: p, Workers: workers, Slice: slice,
		}, rec, done)
	}
}

// RSSFactory builds an IX-style RSS run-to-completion factory.
func RSSFactory(p params.Params, workers int) Factory {
	return func(eng *sim.Engine, rec *stats.Recorder, done func(*task.Request)) System {
		return rtc.New(eng, rtc.Config{P: p, Workers: workers}, rec, done)
	}
}

// ZygOSFactory builds an RSS + work-stealing factory.
func ZygOSFactory(p params.Params, workers int) Factory {
	return func(eng *sim.Engine, rec *stats.Recorder, done func(*task.Request)) System {
		return rtc.New(eng, rtc.Config{P: p, Workers: workers, WorkStealing: true}, rec, done)
	}
}

// FlowDirFactory builds a MICA-style key-steering factory.
func FlowDirFactory(p params.Params, workers int) Factory {
	return func(eng *sim.Engine, rec *stats.Recorder, done func(*task.Request)) System {
		return rtc.New(eng, rtc.Config{P: p, Workers: workers, Steering: rtc.SteerKey}, rec, done)
	}
}

// RPCValetFactory builds an integrated-NI hardware-queue factory.
func RPCValetFactory(p params.Params, workers int) Factory {
	return func(eng *sim.Engine, rec *stats.Recorder, done func(*task.Request)) System {
		return rpcvalet.New(eng, rpcvalet.Config{P: p, Workers: workers}, rec, done)
	}
}

// ERSSFactory builds an Elastic RSS factory (§5.1's cited related work:
// load feedback resizes the RSS core set, but the policy stays fixed).
func ERSSFactory(p params.Params, workers int) Factory {
	return func(eng *sim.Engine, rec *stats.Recorder, done func(*task.Request)) System {
		return erss.New(eng, erss.Config{P: p, Workers: workers}, rec, done)
	}
}

// IdealNICFactory builds a §5.1 ablation factory.
func IdealNICFactory(cfg idealnic.Config) Factory {
	return func(eng *sim.Engine, rec *stats.Recorder, done func(*task.Request)) System {
		return idealnic.New(eng, cfg, rec, done)
	}
}

// loadGrid returns lo, lo+step, ..., hi.
func loadGrid(lo, hi, step float64) []float64 {
	var out []float64
	for x := lo; x <= hi+step/2; x += step {
		out = append(out, x)
	}
	return out
}

// sweepSeries runs one curve.
func sweepSeries(label string, f Factory, svc dist.Distribution, q Quality, loads []float64) Series {
	return sweepSeriesKeys(label, f, svc, nil, q, loads)
}

// sweepSeriesKeys is sweepSeries with a per-request key sampler (used by
// steering-sensitive baselines).
func sweepSeriesKeys(label string, f Factory, svc dist.Distribution, keys *dist.ZipfKeys, q Quality, loads []float64) Series {
	cfg := PointConfig{
		Factory: f,
		Service: svc,
		Keys:    keys,
		Warmup:  q.Warmup,
		Measure: q.Measure,
		Seed:    q.Seed,
	}
	return Series{Label: label, Results: Sweep(cfg, loads)}
}

// Figure2 reproduces the bimodal tail-latency figure: 99.5% 5 µs + 0.5%
// 100 µs, 10 µs slice, Shinjuku with 3 workers vs Shinjuku-Offload with 4
// workers and up to 4 outstanding requests.
func Figure2(q Quality) Figure {
	p := params.Default()
	loads := loadGrid(50_000, 650_000, 50_000)
	slice := 10 * time.Microsecond
	return Figure{
		ID:     "figure2",
		Title:  "Bimodal 99.5%/0.5% (5µs/100µs), slice 10µs",
		XLabel: "offered load (RPS)",
		YLabel: "p99 latency",
		Series: []Series{
			sweepSeries("shinjuku-offload (4 workers, k=4)",
				OffloadFactory(p, 4, 4, slice), BimodalWorkload, q, loads),
			sweepSeries("shinjuku (3 workers)",
				ShinjukuFactory(p, 3, slice), BimodalWorkload, q, loads),
		},
	}
}

// Figure3 reproduces the queuing-optimization figure: fixed 1 µs service
// time, Shinjuku-Offload throughput at saturation as the per-worker
// outstanding-request limit k sweeps 1..7, for 4 and 16 workers.
func Figure3(q Quality) Figure {
	p := params.Default()
	const saturating = 5_000_000 // far beyond capacity
	run := func(workers int) Series {
		s := Series{Label: offloadLabel(workers)}
		for k := 1; k <= 7; k++ {
			r := RunPoint(PointConfig{
				Factory: OffloadFactory(p, workers, k, 0),
				Service: Fixed1us,
				// Saturating throughput converges fast; warmup matters
				// more than sample count here.
				OfferedRPS: saturating,
				Warmup:     q.Warmup,
				Measure:    q.Measure,
				Seed:       q.Seed,
			})
			r.Point.OfferedRPS = float64(k) // x-axis is k, not load
			s.Results = append(s.Results, r)
		}
		return s
	}
	return Figure{
		ID:     "figure3",
		Title:  "Fixed 1µs service time: throughput vs outstanding requests (Shinjuku-Offload)",
		XLabel: "outstanding requests per worker (k)",
		YLabel: "throughput (RPS)",
		Series: []Series{run(16), run(4)},
	}
}

func offloadLabel(workers int) string {
	if workers == 1 {
		return "1 worker"
	}
	return itoa(workers) + " workers"
}

// itoa avoids pulling strconv into the hot import path for one use.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	neg := n < 0
	if neg {
		n = -n
	}
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// Figure3Burst is the burst-processing ablation of Figure 3: the same k
// sweep with the queue-manager core draining DPDK-style bursts (16 events)
// from one input ring before polling the other. Burst processing delays
// credit handling behind floods of new arrivals, deepening the k=1 penalty
// — the effect that made the paper's 16-worker curve gain 88% from k=1 to
// k=3 where the fair-polling model gains almost nothing.
func Figure3Burst(q Quality) Figure {
	p := params.Default()
	const saturating = 5_000_000
	const burst = 16
	run := func(workers int) Series {
		s := Series{Label: offloadLabel(workers) + " (burst 16)"}
		for k := 1; k <= 7; k++ {
			r := RunPoint(PointConfig{
				Factory: func(eng *sim.Engine, rec *stats.Recorder, done func(*task.Request)) System {
					return core.NewOffload(eng, core.OffloadConfig{
						P: p, Workers: workers, Outstanding: k,
						Policy: core.LeastOutstanding, DispatchBurst: burst,
					}, rec, done)
				},
				Service:    Fixed1us,
				OfferedRPS: saturating,
				Warmup:     q.Warmup,
				Measure:    q.Measure,
				Seed:       q.Seed,
			})
			r.Point.OfferedRPS = float64(k)
			s.Results = append(s.Results, r)
		}
		return s
	}
	return Figure{
		ID:     "figure3-burst",
		Title:  "Figure 3 with DPDK burst polling (16 events) at the queue-manager core",
		XLabel: "outstanding requests per worker (k)",
		YLabel: "throughput (RPS)",
		Series: []Series{run(16), run(4)},
	}
}

// Figure4 reproduces the fixed 5 µs figure: preemption off, Shinjuku 3
// workers vs Offload 4 workers (k=4).
func Figure4(q Quality) Figure {
	p := params.Default()
	loads := loadGrid(50_000, 750_000, 50_000)
	return Figure{
		ID:     "figure4",
		Title:  "Fixed 5µs service time, no preemption",
		XLabel: "offered load (RPS)",
		YLabel: "p99 latency",
		Series: []Series{
			sweepSeries("shinjuku-offload (4 workers, k=4)",
				OffloadFactory(p, 4, 4, 0), Fixed5us, q, loads),
			sweepSeries("shinjuku (3 workers)",
				ShinjukuFactory(p, 3, 0), Fixed5us, q, loads),
		},
	}
}

// Figure5 reproduces the fixed 100 µs figure: Shinjuku 15 workers vs
// Offload 16 workers (k=2), preemption off.
func Figure5(q Quality) Figure {
	p := params.Default()
	loads := loadGrid(10_000, 170_000, 10_000)
	return Figure{
		ID:     "figure5",
		Title:  "Fixed 100µs service time, no preemption",
		XLabel: "offered load (RPS)",
		YLabel: "p99 latency",
		Series: []Series{
			sweepSeries("shinjuku-offload (16 workers, k=2)",
				OffloadFactory(p, 16, 2, 0), Fixed100us, q, loads),
			sweepSeries("shinjuku (15 workers)",
				ShinjukuFactory(p, 15, 0), Fixed100us, q, loads),
		},
	}
}

// Figure6 reproduces the fixed 1 µs figure at high worker counts: Shinjuku
// 15 workers vs Offload 16 workers (k=5). Here the offloaded dispatcher is
// the bottleneck and vanilla Shinjuku greatly outperforms (§5.1).
func Figure6(q Quality) Figure {
	p := params.Default()
	loads := loadGrid(250_000, 4_000_000, 250_000)
	return Figure{
		ID:     "figure6",
		Title:  "Fixed 1µs service time, 15/16 workers",
		XLabel: "offered load (RPS)",
		YLabel: "p99 latency",
		Series: []Series{
			sweepSeries("shinjuku-offload (16 workers, k=5)",
				OffloadFactory(p, 16, 5, 0), Fixed1us, q, loads),
			sweepSeries("shinjuku (15 workers)",
				ShinjukuFactory(p, 15, 0), Fixed1us, q, loads),
		},
	}
}

// Figure6CXL is the X1 ablation: Figure 6's offload configuration with the
// §5.1(2) coherent-memory communication path.
func Figure6CXL(q Quality) Figure {
	p := params.Default()
	loads := loadGrid(250_000, 4_000_000, 250_000)
	return Figure{
		ID:     "figure6-cxl",
		Title:  "Fixed 1µs, 15/16 workers, CXL communication ablation (§5.1-2)",
		XLabel: "offered load (RPS)",
		YLabel: "p99 latency",
		Series: []Series{
			sweepSeries("offload+cxl (16 workers, k=5)",
				IdealNICFactory(idealnicCfg(16, 5, 0, true, false, false)), Fixed1us, q, loads),
			sweepSeries("shinjuku (15 workers)",
				ShinjukuFactory(p, 15, 0), Fixed1us, q, loads),
		},
	}
}

// Figure6LineRate is the X2 ablation: Figure 6 with a line-rate hardware
// scheduler (§5.1-1), alone and combined with CXL.
func Figure6LineRate(q Quality) Figure {
	loads := loadGrid(250_000, 4_000_000, 250_000)
	return Figure{
		ID:     "figure6-linerate",
		Title:  "Fixed 1µs, 16 workers, line-rate scheduler ablation (§5.1-1)",
		XLabel: "offered load (RPS)",
		YLabel: "p99 latency",
		Series: []Series{
			sweepSeries("offload+linerate (16 workers, k=5)",
				IdealNICFactory(idealnicCfg(16, 5, 0, false, true, false)), Fixed1us, q, loads),
			sweepSeries("ideal nic: linerate+cxl (16 workers, k=2)",
				IdealNICFactory(idealnicCfg(16, 2, 0, true, true, false)), Fixed1us, q, loads),
		},
	}
}

func idealnicCfg(workers, k int, slice time.Duration, cxl, lineRate, directIRQ bool) idealnic.Config {
	return idealnic.Config{
		P: params.Default(), Workers: workers, Outstanding: k, Slice: slice,
		CXL: cxl, LineRate: lineRate, DirectInterrupts: directIRQ,
	}
}

// BaselineComparison is the X4 landscape: every system of §2.1 on the
// bimodal workload, normalized per worker (all systems get equal host
// cores; systems that burn a core on dispatch get fewer workers).
func BaselineComparison(q Quality) Figure {
	p := params.Default()
	loads := loadGrid(50_000, 650_000, 50_000)
	slice := 10 * time.Microsecond
	const hostCores = 4
	// A realistic KVS key popularity (mild skew) for the steering-sensitive
	// baselines; informed/centralized schedulers ignore keys.
	keys := dist.NewZipfKeys(4096, 0.9)
	return Figure{
		ID:     "baselines",
		Title:  "Bimodal workload across §2.1 systems (equal host cores, zipf(0.9) keys)",
		XLabel: "offered load (RPS)",
		YLabel: "p99 latency",
		Series: []Series{
			sweepSeriesKeys("shinjuku-offload (4 workers, k=4)",
				OffloadFactory(p, hostCores, 4, slice), BimodalWorkload, keys, q, loads),
			sweepSeriesKeys("shinjuku (3 workers)",
				ShinjukuFactory(p, hostCores-1, slice), BimodalWorkload, keys, q, loads),
			sweepSeriesKeys("rss/ix (4 workers)",
				RSSFactory(p, hostCores), BimodalWorkload, keys, q, loads),
			sweepSeriesKeys("zygos (4 workers)",
				ZygOSFactory(p, hostCores), BimodalWorkload, keys, q, loads),
			sweepSeriesKeys("flow-director (4 workers)",
				FlowDirFactory(p, hostCores), BimodalWorkload, keys, q, loads),
			sweepSeriesKeys("rpcvalet (4 workers)",
				RPCValetFactory(p, hostCores), BimodalWorkload, keys, q, loads),
			sweepSeriesKeys("erss (4 workers elastic)",
				ERSSFactory(p, hostCores), BimodalWorkload, keys, q, loads),
		},
	}
}
