package scenario

import (
	"bytes"
	"testing"
)

// The fuzz layer guards the two JSON surfaces users feed files into:
// strict Spec decoding and preset decoding. Properties: no input may
// panic the decoder, and any accepted input must reach a canonical fixed
// point — encoding what was decoded, then decoding and encoding again,
// yields the same bytes. (DeepEqual round-tripping is deliberately not
// asserted: JSON cannot distinguish nil from empty slices, but the
// canonical encoding must still be stable after one normalization pass.)

func FuzzSpecDecode(f *testing.F) {
	f.Add([]byte(`{"system":"offload","knobs":{"workers":4,"outstanding":4,"slice":"10µs"}}`))
	f.Add([]byte(`{"system":"rss","workload":"exp:10µs","load":{"rps":100000},"seed":3}`))
	f.Add([]byte(`{"system":"offload","seed":7,"faults":{"nic_crash":[{"start":"10ms","end":"14ms"}],"timeout":"1ms","retries":3,"degrade":true}}`))
	f.Add([]byte(`{"system":"offload","seed":7,"faults":{"loss_rate":0.05,"loss_bursts":{"n":4,"horizon":"150ms","mean_len":"250µs"},"delay_extra":"20µs","timeout":500000}}`))
	f.Add([]byte(`{"system":"flowrule","seed":7,"flow":{"flows":4096,"elephant_fraction":0.2,"rat_train":16,"elephant_batch":64},"knobs":{"workers":1,"rule_capacity":1536,"insert_rate":20000,"insert_queue":256,"offload_threshold":16,"adaptive_threshold":true,"idle_timeout":"50ms","slow_queue":512}}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"faults":{}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		sp, err := Decode(data)
		if err != nil {
			return
		}
		enc1, err := sp.Encode()
		if err != nil {
			// Decoded values must encode; anything else is a parser
			// accepting what the encoder cannot represent.
			t.Fatalf("Encode after Decode failed: %v", err)
		}
		sp2, err := Decode(enc1)
		if err != nil {
			t.Fatalf("Decode of canonical encoding failed: %v\n%s", err, enc1)
		}
		enc2, err := sp2.Encode()
		if err != nil {
			t.Fatalf("second Encode failed: %v", err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("canonical encoding is not a fixed point:\n%s\nvs\n%s", enc1, enc2)
		}
	})
}

func FuzzPresetDecode(f *testing.F) {
	f.Add([]byte(`{"id":"x","series":[{"label":"a","system":"rss"}]}`))
	f.Add([]byte(`{"id":"f","workload":"bimodal:0.995:5µs:100µs","load":{"grid":{"lo":100000,"hi":300000,"step":100000}},"seed":7,"series":[{"label":"y","system":"offload","knobs":{"workers":4},"faults":{"timeout":"1ms","degrade":true}}]}`))
	f.Add([]byte(`{"id":"t","series":[{"label":"mt","tenants":[{"name":"a","rps":1000,"workload":"exp:10µs"}]}]}`))
	f.Add([]byte(`{"id":"fr","workload":"fixed:170ns","flow":{"flows":4096,"elephant_fraction":0.2},"load":{"rps":400000,"fsweep":{"lo":4096,"hi":1048576,"mul":4}},"seed":7,"series":[{"label":"t16","system":"flowrule","knobs":{"workers":1,"offload_threshold":16},"quality":{"warmup":10000,"measure":30000}}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodePreset(data)
		if err != nil {
			return
		}
		enc1, err := p.Encode()
		if err != nil {
			t.Fatalf("Encode after DecodePreset failed: %v", err)
		}
		p2, err := DecodePreset(enc1)
		if err != nil {
			t.Fatalf("DecodePreset of canonical encoding failed: %v\n%s", err, enc1)
		}
		enc2, err := p2.Encode()
		if err != nil {
			t.Fatalf("second Encode failed: %v", err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("canonical encoding is not a fixed point:\n%s\nvs\n%s", enc1, enc2)
		}
		// SpecFor inheritance must never panic for any series index.
		for i := range p2.Series {
			_ = p2.SpecFor(i)
		}
	})
}
