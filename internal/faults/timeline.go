package faults

import (
	"sort"
	"time"

	"mindgap/internal/sim"
)

// span is one resolved fault interval [start, end) with a progress
// factor: the fraction of healthy processing rate available inside it.
// Factor 0 is a crash/stall (no progress); 0 < factor < 1 is a
// slowdown. Spans in a timeline are sorted and disjoint; time outside
// every span runs at factor 1.
type span struct {
	start, end sim.Time
	factor     float64
}

// timeline is a sorted, disjoint set of fault spans.
type timeline []span

// mergeWindows resolves a window list into sorted spans with the given
// factor, coalescing overlapping or adjacent windows.
func mergeWindows(ws []Window, factor float64) timeline {
	if len(ws) == 0 {
		return nil
	}
	spans := make(timeline, 0, len(ws))
	for _, w := range ws {
		spans = append(spans, span{sim.Time(w.Start), sim.Time(w.End), factor})
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].start < spans[j].start })
	out := spans[:1]
	for _, sp := range spans[1:] {
		last := &out[len(out)-1]
		if sp.start <= last.end {
			if sp.end > last.end {
				last.end = sp.end
			}
			continue
		}
		out = append(out, sp)
	}
	return out
}

// overlay combines a slowdown timeline with a crash timeline, crash
// winning wherever they overlap: each slow span is clipped against every
// crash span and the surviving pieces are interleaved with the crash
// spans into one sorted, disjoint timeline.
func overlay(slow, crash timeline) timeline {
	if len(crash) == 0 {
		return slow
	}
	out := make(timeline, 0, len(slow)+len(crash))
	out = append(out, crash...)
	for _, sl := range slow {
		cur := sl.start
		for _, cr := range crash {
			if cr.end <= cur {
				continue
			}
			if cr.start >= sl.end {
				break
			}
			if cr.start > cur {
				out = append(out, span{cur, cr.start, sl.factor})
			}
			cur = cr.end
			if cur >= sl.end {
				break
			}
		}
		if cur < sl.end {
			out = append(out, span{cur, sl.end, sl.factor})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].start < out[j].start })
	return out
}

// contains reports whether now falls inside a span of the timeline.
func (t timeline) contains(now sim.Time) bool {
	i := sort.Search(len(t), func(j int) bool { return t[j].end > now })
	return i < len(t) && t[i].start <= now
}

// endOf returns the end of the span containing now, or now itself if no
// span covers it.
func (t timeline) endOf(now sim.Time) sim.Time {
	i := sort.Search(len(t), func(j int) bool { return t[j].end > now })
	if i < len(t) && t[i].start <= now {
		return t[i].end
	}
	return now
}

// stretch converts an amount of work starting at `at` into the wall
// (simulation-clock) duration it takes under the timeline: inside a
// factor-f span, work completes at f times the healthy rate; inside a
// crash span it makes no progress until the span ends. The result is
// always >= work, and exactly work when no span intersects the busy
// period.
func (t timeline) stretch(at sim.Time, work time.Duration) time.Duration {
	if len(t) == 0 || work <= 0 {
		return work
	}
	cur := at
	remaining := float64(work)
	elapsed := float64(0)
	i := sort.Search(len(t), func(j int) bool { return t[j].end > cur })
	for ; i < len(t) && remaining > 0; i++ {
		sp := t[i]
		if cur < sp.start {
			gap := float64(sp.start - cur)
			if remaining <= gap {
				elapsed += remaining
				remaining = 0
				break
			}
			elapsed += gap
			remaining -= gap
			cur = sp.start
		}
		spanLen := float64(sp.end - cur)
		if sp.factor <= 0 {
			elapsed += spanLen
			cur = sp.end
			continue
		}
		capacity := spanLen * sp.factor
		if remaining <= capacity {
			elapsed += remaining / sp.factor
			remaining = 0
			break
		}
		elapsed += spanLen
		remaining -= capacity
		cur = sp.end
	}
	elapsed += remaining
	d := time.Duration(elapsed)
	if d < work {
		// Float rounding must never shrink a cost: a shorter-than-healthy
		// service would let a fault *improve* latency.
		d = work
	}
	return d
}
