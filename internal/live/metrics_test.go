package live

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"mindgap/internal/dist"
	"mindgap/internal/telemetry"
)

func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestMetricsServerEndpoints(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("proto", "datagrams").Add(42)
	reg.GaugeFunc("q", "depth", func() float64 { return 3 })
	reg.Histogram("rt", "latency").Observe(time.Millisecond)

	ms, err := ServeMetrics("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()

	text := scrape(t, ms.URL()+"/metrics")
	for _, want := range []string{"proto/datagrams 42\n", "q/depth 3\n", "rt/latency/count 1\n"} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}

	var snap telemetry.Snapshot
	if err := json.Unmarshal([]byte(scrape(t, ms.URL()+"/debug/vars")), &snap); err != nil {
		t.Fatalf("/debug/vars is not valid snapshot JSON: %v", err)
	}
	if snap.Counters["proto/datagrams"] != 42 || snap.Gauges["q/depth"] != 3 {
		t.Fatalf("/debug/vars snapshot wrong: %+v", snap)
	}
	if snap.Histograms["rt/latency"].Count != 1 {
		t.Fatalf("/debug/vars histogram wrong: %+v", snap.Histograms)
	}
}

// TestLiveMetricsUnderLoad scrapes a running dispatcher+worker system
// while requests flow — with -race this also proves the probes are safe
// against the serving goroutines.
func TestLiveMetricsUnderLoad(t *testing.T) {
	d, ws, cleanup := startSystem(t, 2, 2, 0)
	defer cleanup()

	reg := telemetry.NewRegistry()
	d.RegisterMetrics(reg)
	for _, w := range ws {
		w.RegisterMetrics(reg)
	}
	ms, err := ServeMetrics("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()

	// Scrape concurrently with the load.
	stop := make(chan struct{})
	scraped := make(chan struct{})
	go func() {
		defer close(scraped)
		for {
			select {
			case <-stop:
				return
			default:
				_ = scrape(t, ms.URL()+"/metrics")
				time.Sleep(time.Millisecond)
			}
		}
	}()

	rep, err := RunClient(ClientConfig{
		Dispatcher: d.Addr(),
		RPS:        5_000,
		Service:    dist.Fixed{D: 10 * time.Microsecond},
		Requests:   500,
		Seed:       1,
		Timeout:    10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	close(stop)
	<-scraped

	// The dispatcher's completion counter can trail in-flight FINISH
	// datagrams; poll until the snapshot catches up with the client.
	deadline := time.Now().Add(2 * time.Second)
	for {
		snap := reg.Snapshot()
		if snap.Gauges["dispatcher/completed"] >= float64(rep.Received) ||
			time.Now().After(deadline) {
			if snap.Gauges["dispatcher/completed"] < float64(rep.Received) {
				t.Fatalf("dispatcher/completed = %g, client received %d",
					snap.Gauges["dispatcher/completed"], rep.Received)
			}
			if snap.Gauges["dispatcher/workers_registered"] != 2 {
				t.Fatalf("workers_registered = %g", snap.Gauges["dispatcher/workers_registered"])
			}
			var workerSum float64
			workerSum += snap.Gauges["worker0/completed"]
			workerSum += snap.Gauges["worker1/completed"]
			if workerSum < float64(rep.Received) {
				t.Fatalf("worker completions %g < client received %d", workerSum, rep.Received)
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}
