// Quickstart: simulate a Shinjuku-Offload server (the paper's Figure 2
// configuration) under the bimodal workload and print its latency profile.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"mindgap/internal/core"
	"mindgap/internal/dist"
	"mindgap/internal/loadgen"
	"mindgap/internal/params"
	"mindgap/internal/sim"
	"mindgap/internal/stats"
	"mindgap/internal/task"
)

func main() {
	// 1. A simulation engine: deterministic, nanosecond-resolution.
	eng := sim.New()

	// 2. The system under test: the paper's SmartNIC-offloaded scheduler
	//    with 4 host workers, up to 4 outstanding requests per worker
	//    (§3.4.5), and a 10µs preemption slice (§3.4.4).
	var latency stats.Histogram
	completed := 0
	sys := core.NewOffload(eng, core.OffloadConfig{
		P:           params.Default(), // calibrated to the paper's hardware
		Workers:     4,
		Outstanding: 4,
		Slice:       10 * time.Microsecond,
		Policy:      core.LeastOutstanding,
	}, nil, func(r *task.Request) {
		latency.Record(r.Latency(eng.Now()))
		completed++
		if completed == 200_000 {
			eng.Halt()
		}
	})

	// 3. The workload: Figure 2's bimodal mix — 99.5% of requests take
	//    5µs, 0.5% take 100µs — at 400k requests/second, open loop.
	workload := dist.Bimodal{P1: 0.995, D1: 5 * time.Microsecond, D2: 100 * time.Microsecond}
	loadgen.New(eng, loadgen.Config{
		RPS:     400_000,
		Service: workload,
		Seed:    42,
	}, sys.Inject).Start()

	// 4. Run and report.
	start := time.Now()
	eng.Run()
	fmt.Printf("simulated %v of server time in %v of wall time\n",
		eng.Now().Duration().Round(time.Millisecond), time.Since(start).Round(time.Millisecond))
	fmt.Printf("completed: %d requests at %.0f req/s\n",
		completed, float64(completed)/eng.Now().Duration().Seconds())
	fmt.Printf("latency:   p50=%v  p99=%v  p99.9=%v  max=%v\n",
		latency.P50(), latency.P99(), latency.P999(), latency.Max())
	fmt.Printf("central queue now: %d requests\n", sys.QueueLen())
}
