package queue

import (
	"testing"
	"testing/quick"
)

func TestFIFOBasic(t *testing.T) {
	var q FIFO[int]
	if q.Len() != 0 {
		t.Fatal("zero FIFO not empty")
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty succeeded")
	}
	if _, ok := q.Peek(); ok {
		t.Fatal("Peek on empty succeeded")
	}
	q.Push(1)
	q.Push(2)
	q.Push(3)
	if v, _ := q.Peek(); v != 1 {
		t.Fatalf("Peek = %d", v)
	}
	for want := 1; want <= 3; want++ {
		v, ok := q.Pop()
		if !ok || v != want {
			t.Fatalf("Pop = %d,%v want %d", v, ok, want)
		}
	}
}

func TestFIFOPopTail(t *testing.T) {
	var q FIFO[int]
	for i := 1; i <= 4; i++ {
		q.Push(i)
	}
	if v, _ := q.PopTail(); v != 4 {
		t.Fatalf("PopTail = %d, want 4", v)
	}
	if v, _ := q.Pop(); v != 1 {
		t.Fatalf("Pop = %d, want 1", v)
	}
	if q.Len() != 2 {
		t.Fatalf("Len = %d", q.Len())
	}
	q.Pop()
	if v, ok := q.PopTail(); !ok || v != 3 {
		t.Fatalf("PopTail = %d,%v", v, ok)
	}
	if _, ok := q.PopTail(); ok {
		t.Fatal("PopTail on empty succeeded")
	}
}

func TestFIFOCompactionPreservesOrder(t *testing.T) {
	var q FIFO[int]
	next := 0
	pops := 0
	for round := 0; round < 50; round++ {
		for i := 0; i < 100; i++ {
			q.Push(next)
			next++
		}
		for i := 0; i < 90; i++ {
			v, ok := q.Pop()
			if !ok || v != pops {
				t.Fatalf("Pop = %d,%v want %d", v, ok, pops)
			}
			pops++
		}
	}
	for q.Len() > 0 {
		v, _ := q.Pop()
		if v != pops {
			t.Fatalf("drain Pop = %d want %d", v, pops)
		}
		pops++
	}
	if pops != next {
		t.Fatalf("popped %d, pushed %d", pops, next)
	}
}

// Property: a FIFO behaves identically to a reference slice queue under a
// random sequence of pushes, pops, and tail-pops.
func TestQuickFIFOAgainstModel(t *testing.T) {
	type op struct {
		Kind uint8
		Val  int32
	}
	f := func(ops []op) bool {
		var q FIFO[int32]
		var model []int32
		for _, o := range ops {
			switch o.Kind % 3 {
			case 0:
				q.Push(o.Val)
				model = append(model, o.Val)
			case 1:
				v, ok := q.Pop()
				if len(model) == 0 {
					if ok {
						return false
					}
				} else {
					if !ok || v != model[0] {
						return false
					}
					model = model[1:]
				}
			case 2:
				v, ok := q.PopTail()
				if len(model) == 0 {
					if ok {
						return false
					}
				} else {
					if !ok || v != model[len(model)-1] {
						return false
					}
					model = model[:len(model)-1]
				}
			}
			if q.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRingBasic(t *testing.T) {
	r := NewRing[int](3)
	if r.Cap() != 3 || !r.Empty() || r.Full() {
		t.Fatal("fresh ring state wrong")
	}
	for i := 1; i <= 3; i++ {
		if !r.Push(i) {
			t.Fatalf("Push(%d) failed", i)
		}
	}
	if !r.Full() {
		t.Fatal("ring not full after 3 pushes")
	}
	if r.Push(4) {
		t.Fatal("Push on full ring succeeded")
	}
	if v, _ := r.Peek(); v != 1 {
		t.Fatalf("Peek = %d", v)
	}
	for want := 1; want <= 3; want++ {
		v, ok := r.Pop()
		if !ok || v != want {
			t.Fatalf("Pop = %d,%v want %d", v, ok, want)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("Pop on empty ring succeeded")
	}
	if _, ok := r.Peek(); ok {
		t.Fatal("Peek on empty ring succeeded")
	}
}

func TestRingWraparound(t *testing.T) {
	r := NewRing[int](4)
	next, want := 0, 0
	for round := 0; round < 100; round++ {
		for r.Push(next) {
			next++
		}
		v, ok := r.Pop()
		if !ok || v != want {
			t.Fatalf("Pop = %d,%v want %d", v, ok, want)
		}
		want++
	}
}

func TestRingZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRing(0) did not panic")
		}
	}()
	NewRing[int](0)
}

// Property: a Ring behaves identically to a bounded reference queue.
func TestQuickRingAgainstModel(t *testing.T) {
	type op struct {
		Push bool
		Val  int32
	}
	f := func(capRaw uint8, ops []op) bool {
		capacity := int(capRaw%16) + 1
		r := NewRing[int32](capacity)
		var model []int32
		for _, o := range ops {
			if o.Push {
				ok := r.Push(o.Val)
				if ok != (len(model) < capacity) {
					return false
				}
				if ok {
					model = append(model, o.Val)
				}
			} else {
				v, ok := r.Pop()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					if v != model[0] {
						return false
					}
					model = model[1:]
				}
			}
			if r.Len() != len(model) || r.Full() != (len(model) == capacity) || r.Empty() != (len(model) == 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFIFOPushPop(b *testing.B) {
	var q FIFO[int]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Push(i)
		if q.Len() > 128 {
			q.Pop()
		}
	}
}

func BenchmarkRingPushPop(b *testing.B) {
	r := NewRing[int](128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !r.Push(i) {
			r.Pop()
		}
	}
}
