// Fixture loaded as package path "mindgap/internal/live": live-serving
// code is exempt from the simulation clock rules.
package live

import (
	"math/rand/v2"
	"time"
)

func retryDeadline() time.Time { return time.Now().Add(rand.N(time.Second)) }
