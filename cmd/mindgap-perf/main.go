// Command mindgap-perf guards simulator performance: it reruns the
// repository's tracked benchmarks (`go test -bench` on bench_test.go) and
// compares the metrics that matter for iteration speed — sweep points per
// second, wall nanoseconds per simulated request, and allocations per
// point — against the checked-in BENCH.json baseline.
//
// By default any tracked metric regressing by more than -tolerance
// (20%) fails the run with a per-metric report; improvements are noted
// but never fail. After an intentional performance change, regenerate
// the baseline:
//
//	go run ./cmd/mindgap-perf -write
//
// The absolute numbers in BENCH.json are hardware-dependent; the
// comparison is a ratio test, so it is meaningful on any machine that is
// consistent between baseline and rerun (CI runners of the same class,
// or a developer box before/after a change).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"strconv"
	"strings"
)

// trackedBenchmarks are the bench_test.go targets whose metrics form the
// baseline. PointThroughput is the plain harness; AttributionOverhead is
// the same point with the internal/attr collector attached, so its drift
// bounds the observability layer's cost; EngineSchedule and RequestPool
// isolate the event engine's schedule+fire cycle and the request pool's
// recycle path, the two hot-path primitives everything else rides on;
// FlowRulePoint covers the flow-keyed generator and the rule-table
// fast/slow steering machinery end to end.
var trackedBenchmarks = []string{
	"BenchmarkPointThroughput",
	"BenchmarkAttributionOverhead",
	"BenchmarkEngineSchedule",
	"BenchmarkRequestPool",
	"BenchmarkFlowRulePoint",
}

// trackedMetrics maps each compared unit to its regression direction:
// true means higher-is-better (throughput), false means lower-is-better
// (latency, allocations). Units reported by the benchmarks but absent
// here (mis_dispatch_%, B/op, ns/op) are recorded in BENCH.json for
// reference but never gate.
var trackedMetrics = map[string]bool{
	"points/sec": true,
	"ns/request": false,
	"events/sec": true,
	"allocs/op":  false,
}

// Baseline is the BENCH.json schema: metric units keyed by benchmark name.
type Baseline struct {
	// Note documents how to regenerate the file.
	Note string `json:"note"`
	// GOOS/GOARCH/CPU record the environment the baseline was taken on;
	// ratios are only meaningful against comparable hardware.
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	CPU    string `json:"cpu,omitempty"`
	// Benchmarks holds, per benchmark, every reported metric unit.
	Benchmarks map[string]map[string]float64 `json:"benchmarks"`
}

func main() {
	var (
		write     = flag.Bool("write", false, "regenerate the baseline file instead of comparing")
		baseline  = flag.String("baseline", "BENCH.json", "baseline file to compare against (or write)")
		tolerance = flag.Float64("tolerance", 0.20, "allowed fractional regression before failing")
		benchtime = flag.String("benchtime", "1s", "passed through to go test -benchtime")
		cpuProf   = flag.String("cpuprofile", "", "passed through to go test -cpuprofile (profiles the tracked benchmarks)")
		memProf   = flag.String("memprofile", "", "passed through to go test -memprofile")
	)
	flag.Parse()

	cur, env, err := runBenchmarks(*benchtime, *cpuProf, *memProf)
	if err != nil {
		log.Fatalf("mindgap-perf: %v", err)
	}

	if *write {
		b := Baseline{
			Note:       "regenerate with: go run ./cmd/mindgap-perf -write",
			GOOS:       env["goos"],
			GOARCH:     env["goarch"],
			CPU:        env["cpu"],
			Benchmarks: cur,
		}
		out, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			log.Fatalf("mindgap-perf: %v", err)
		}
		if err := os.WriteFile(*baseline, append(out, '\n'), 0o644); err != nil {
			log.Fatalf("mindgap-perf: %v", err)
		}
		fmt.Printf("wrote %s (%d benchmarks)\n", *baseline, len(cur))
		return
	}

	raw, err := os.ReadFile(*baseline)
	if err != nil {
		log.Fatalf("mindgap-perf: read baseline: %v (run with -write to create it)", err)
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		log.Fatalf("mindgap-perf: parse %s: %v", *baseline, err)
	}

	failed := compare(base, cur, *tolerance)
	if failed {
		fmt.Printf("\nFAIL: regression beyond %.0f%% tolerance; if intentional, run `go run ./cmd/mindgap-perf -write`\n", *tolerance*100)
		os.Exit(1)
	}
	fmt.Printf("\nOK: all tracked metrics within %.0f%% of %s\n", *tolerance*100, *baseline)
}

// compare prints the per-metric report and reports whether any tracked
// metric regressed beyond tol.
func compare(base Baseline, cur map[string]map[string]float64, tol float64) bool {
	failed := false
	fmt.Printf("%-30s %-12s %14s %14s %9s\n", "benchmark", "metric", "baseline", "current", "delta")
	for _, name := range trackedBenchmarks {
		bm, ok := base.Benchmarks[name]
		if !ok {
			fmt.Printf("%-30s (not in baseline; rerun with -write)\n", name)
			continue
		}
		cm, ok := cur[name]
		if !ok {
			fmt.Printf("%-30s MISSING from current run\n", name)
			failed = true
			continue
		}
		for _, unit := range orderedUnits(bm) {
			higherBetter, tracked := trackedMetrics[unit]
			if !tracked {
				continue
			}
			bv, cv := bm[unit], cm[unit]
			if bv == 0 {
				continue
			}
			delta := cv/bv - 1
			status := ""
			regressed := (higherBetter && delta < -tol) || (!higherBetter && delta > tol)
			if regressed {
				status = "  REGRESSION"
				failed = true
			}
			fmt.Printf("%-30s %-12s %14.1f %14.1f %+8.1f%%%s\n", name, unit, bv, cv, delta*100, status)
		}
	}
	return failed
}

// orderedUnits returns m's keys in the fixed tracked order so the report
// (and failures) are stable run to run.
func orderedUnits(m map[string]float64) []string {
	order := []string{"points/sec", "ns/request", "events/sec", "allocs/op"}
	var out []string
	for _, u := range order {
		if _, ok := m[u]; ok {
			out = append(out, u)
		}
	}
	return out
}

// runBenchmarks executes the tracked benchmarks once and parses every
// reported metric, plus the goos/goarch/cpu header lines. Non-empty
// cpuProf/memProf paths are forwarded to go test, which writes the pprof
// files (and the mindgap.test binary they reference) to the working
// directory.
func runBenchmarks(benchtime, cpuProf, memProf string) (map[string]map[string]float64, map[string]string, error) {
	pattern := "^(" + strings.Join(trackedBenchmarks, "|") + ")$"
	args := []string{"test", "-run", "^$", "-bench", pattern,
		"-benchmem", "-benchtime", benchtime}
	if cpuProf != "" {
		args = append(args, "-cpuprofile", cpuProf)
	}
	if memProf != "" {
		args = append(args, "-memprofile", memProf)
	}
	cmd := exec.Command("go", append(args, ".")...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go test -bench: %w\n%s", err, out)
	}
	results := make(map[string]map[string]float64)
	env := make(map[string]string)
	for _, line := range strings.Split(string(out), "\n") {
		line = strings.TrimSpace(line)
		for _, k := range []string{"goos", "goarch", "cpu"} {
			if v, ok := strings.CutPrefix(line, k+": "); ok {
				env[k] = strings.TrimSpace(v)
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		name, metrics, err := parseBenchLine(line)
		if err != nil {
			return nil, nil, err
		}
		results[name] = metrics
	}
	if len(results) == 0 {
		return nil, nil, fmt.Errorf("no benchmark lines in go test output:\n%s", out)
	}
	return results, env, nil
}

// parseBenchLine decodes one `go test -bench` result line:
//
//	BenchmarkX-8   30   33449085 ns/op   5575 ns/request   ...
//
// into the benchmark's base name and its value-per-unit map.
func parseBenchLine(line string) (string, map[string]float64, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", nil, fmt.Errorf("short benchmark line: %q", line)
	}
	name, _, _ := strings.Cut(fields[0], "-") // strip -GOMAXPROCS suffix
	metrics := make(map[string]float64)
	// fields[1] is the iteration count; pairs of (value, unit) follow.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", nil, fmt.Errorf("bad value %q in %q: %v", fields[i], line, err)
		}
		metrics[fields[i+1]] = v
	}
	return name, metrics, nil
}
