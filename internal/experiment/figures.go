package experiment

import (
	"fmt"
	"strconv"
	"time"

	"mindgap/internal/core"
	"mindgap/internal/dist"
	"mindgap/internal/params"
	"mindgap/internal/runner"
	"mindgap/internal/sim"
	"mindgap/internal/stats"
	"mindgap/internal/systems/erss"
	"mindgap/internal/systems/idealnic"
	"mindgap/internal/systems/rpcvalet"
	"mindgap/internal/systems/rtc"
	"mindgap/internal/systems/shinjuku"
	"mindgap/internal/task"
)

// Quality trades run time for statistical confidence.
type Quality struct {
	// Warmup completions are discarded; Measure completions recorded.
	Warmup, Measure int
	// Seed fixes every random stream.
	Seed uint64
}

// Quick is suitable for tests and testing.B benchmarks; Full for the CLI
// runs recorded in EXPERIMENTS.md.
var (
	Quick = Quality{Warmup: 2_000, Measure: 12_000, Seed: 7}
	Full  = Quality{Warmup: 20_000, Measure: 100_000, Seed: 7}
)

// Workload constants of §4.1.
var (
	// BimodalWorkload is Figure 2's distribution: 99.5% 5 µs, 0.5% 100 µs.
	BimodalWorkload = dist.Bimodal{P1: 0.995, D1: 5 * time.Microsecond, D2: 100 * time.Microsecond}
	// Fixed1us, Fixed5us, Fixed100us are the fixed service times of
	// Figures 3–6.
	Fixed1us   = dist.Fixed{D: 1 * time.Microsecond}
	Fixed5us   = dist.Fixed{D: 5 * time.Microsecond}
	Fixed100us = dist.Fixed{D: 100 * time.Microsecond}
)

// OffloadFactory builds a Shinjuku-Offload system factory.
func OffloadFactory(p params.Params, workers, outstanding int, slice time.Duration) Factory {
	return func(eng *sim.Engine, rec *stats.Recorder, done func(*task.Request)) System {
		return core.NewOffload(eng, core.OffloadConfig{
			P: p, Workers: workers, Outstanding: outstanding, Slice: slice,
			Policy: core.LeastOutstanding,
		}, rec, done)
	}
}

// ShinjukuFactory builds a vanilla Shinjuku system factory.
func ShinjukuFactory(p params.Params, workers int, slice time.Duration) Factory {
	return func(eng *sim.Engine, rec *stats.Recorder, done func(*task.Request)) System {
		return shinjuku.New(eng, shinjuku.Config{
			P: p, Workers: workers, Slice: slice,
		}, rec, done)
	}
}

// RSSFactory builds an IX-style RSS run-to-completion factory.
func RSSFactory(p params.Params, workers int) Factory {
	return func(eng *sim.Engine, rec *stats.Recorder, done func(*task.Request)) System {
		return rtc.New(eng, rtc.Config{P: p, Workers: workers}, rec, done)
	}
}

// ZygOSFactory builds an RSS + work-stealing factory.
func ZygOSFactory(p params.Params, workers int) Factory {
	return func(eng *sim.Engine, rec *stats.Recorder, done func(*task.Request)) System {
		return rtc.New(eng, rtc.Config{P: p, Workers: workers, WorkStealing: true}, rec, done)
	}
}

// FlowDirFactory builds a MICA-style key-steering factory.
func FlowDirFactory(p params.Params, workers int) Factory {
	return func(eng *sim.Engine, rec *stats.Recorder, done func(*task.Request)) System {
		return rtc.New(eng, rtc.Config{P: p, Workers: workers, Steering: rtc.SteerKey}, rec, done)
	}
}

// RPCValetFactory builds an integrated-NI hardware-queue factory.
func RPCValetFactory(p params.Params, workers int) Factory {
	return func(eng *sim.Engine, rec *stats.Recorder, done func(*task.Request)) System {
		return rpcvalet.New(eng, rpcvalet.Config{P: p, Workers: workers}, rec, done)
	}
}

// ERSSFactory builds an Elastic RSS factory (§5.1's cited related work:
// load feedback resizes the RSS core set, but the policy stays fixed).
func ERSSFactory(p params.Params, workers int) Factory {
	return func(eng *sim.Engine, rec *stats.Recorder, done func(*task.Request)) System {
		return erss.New(eng, erss.Config{P: p, Workers: workers}, rec, done)
	}
}

// IdealNICFactory builds a §5.1 ablation factory.
func IdealNICFactory(cfg idealnic.Config) Factory {
	return func(eng *sim.Engine, rec *stats.Recorder, done func(*task.Request)) System {
		return idealnic.New(eng, cfg, rec, done)
	}
}

// loadGrid returns lo, lo+step, ..., hi.
func loadGrid(lo, hi, step float64) []float64 {
	var out []float64
	for x := lo; x <= hi+step/2; x += step {
		out = append(out, x)
	}
	return out
}

// gridSeries declares one curve of a figure sweep: a factory swept across
// the load grid at the given quality.
func gridSeries(sweepID, label string, f Factory, svc dist.Distribution, keys *dist.ZipfKeys, q Quality, loads []float64) runner.Series[Result] {
	return LoadSeries(sweepID, label, PointConfig{
		Factory: f,
		Service: svc,
		Keys:    keys,
		Warmup:  q.Warmup,
		Measure: q.Measure,
		Seed:    q.Seed,
	}, loads)
}

// Figure2Spec declares the bimodal tail-latency figure: 99.5% 5 µs + 0.5%
// 100 µs, 10 µs slice, Shinjuku with 3 workers vs Shinjuku-Offload with 4
// workers and up to 4 outstanding requests.
func Figure2Spec(q Quality) FigureSpec {
	p := params.Default()
	loads := loadGrid(50_000, 650_000, 50_000)
	slice := 10 * time.Microsecond
	const id = "figure2"
	return FigureSpec{
		ID:     id,
		Title:  "Bimodal 99.5%/0.5% (5µs/100µs), slice 10µs",
		XLabel: "offered load (RPS)",
		YLabel: "p99 latency",
		Sweep: runner.Sweep[Result]{Name: id, Series: []runner.Series[Result]{
			gridSeries(id, "shinjuku-offload (4 workers, k=4)",
				OffloadFactory(p, 4, 4, slice), BimodalWorkload, nil, q, loads),
			gridSeries(id, "shinjuku (3 workers)",
				ShinjukuFactory(p, 3, slice), BimodalWorkload, nil, q, loads),
		}},
	}
}

// Figure2 runs Figure2Spec on the default parallel runner.
func Figure2(q Quality) Figure { return mustFigure(Figure2Spec(q)) }

// kSweepSeries declares one Figure 3 curve: saturating load, the
// per-worker outstanding limit k sweeping 1..7, plotted against k.
func kSweepSeries(sweepID, label string, q Quality, workers, burst int) runner.Series[Result] {
	p := params.Default()
	const saturating = 5_000_000 // far beyond capacity
	pts := make([]runner.Point[Result], 0, 7)
	for k := 1; k <= 7; k++ {
		k := k
		cfg := PointConfig{
			Factory: func(eng *sim.Engine, rec *stats.Recorder, done func(*task.Request)) System {
				return core.NewOffload(eng, core.OffloadConfig{
					P: p, Workers: workers, Outstanding: k,
					Policy: core.LeastOutstanding, DispatchBurst: burst,
				}, rec, done)
			},
			Service: Fixed1us,
			// Saturating throughput converges fast; warmup matters more
			// than sample count here.
			OfferedRPS: saturating,
			Warmup:     q.Warmup,
			Measure:    q.Measure,
			Seed:       q.Seed,
		}
		pts = append(pts, runner.Point[Result]{
			Key: pointKey(sweepID, label, cfg,
				"k="+strconv.Itoa(k), "burst="+strconv.Itoa(burst)),
			Run: func() Result {
				r := RunPoint(cfg)
				r.Point.OfferedRPS = float64(k) // x-axis is k, not load
				return r
			},
		})
	}
	return runner.Series[Result]{Label: label, Points: pts}
}

func offloadLabel(workers int) string {
	if workers == 1 {
		return "1 worker"
	}
	return strconv.Itoa(workers) + " workers"
}

// Figure3Spec declares the queuing-optimization figure: fixed 1 µs service
// time, Shinjuku-Offload throughput at saturation as the per-worker
// outstanding-request limit k sweeps 1..7, for 4 and 16 workers.
func Figure3Spec(q Quality) FigureSpec {
	const id = "figure3"
	return FigureSpec{
		ID:     id,
		Title:  "Fixed 1µs service time: throughput vs outstanding requests (Shinjuku-Offload)",
		XLabel: "outstanding requests per worker (k)",
		YLabel: "throughput (RPS)",
		Sweep: runner.Sweep[Result]{Name: id, Series: []runner.Series[Result]{
			kSweepSeries(id, offloadLabel(16), q, 16, 0),
			kSweepSeries(id, offloadLabel(4), q, 4, 0),
		}},
	}
}

// Figure3 runs Figure3Spec on the default parallel runner.
func Figure3(q Quality) Figure { return mustFigure(Figure3Spec(q)) }

// Figure3BurstSpec declares the burst-processing ablation of Figure 3: the
// same k sweep with the queue-manager core draining DPDK-style bursts (16
// events) from one input ring before polling the other. Burst processing
// delays credit handling behind floods of new arrivals, deepening the k=1
// penalty — the effect that made the paper's 16-worker curve gain 88% from
// k=1 to k=3 where the fair-polling model gains almost nothing.
func Figure3BurstSpec(q Quality) FigureSpec {
	const id = "figure3-burst"
	const burst = 16
	return FigureSpec{
		ID:     id,
		Title:  "Figure 3 with DPDK burst polling (16 events) at the queue-manager core",
		XLabel: "outstanding requests per worker (k)",
		YLabel: "throughput (RPS)",
		Sweep: runner.Sweep[Result]{Name: id, Series: []runner.Series[Result]{
			kSweepSeries(id, offloadLabel(16)+" (burst 16)", q, 16, burst),
			kSweepSeries(id, offloadLabel(4)+" (burst 16)", q, 4, burst),
		}},
	}
}

// Figure3Burst runs Figure3BurstSpec on the default parallel runner.
func Figure3Burst(q Quality) Figure { return mustFigure(Figure3BurstSpec(q)) }

// Figure4Spec declares the fixed 5 µs figure: preemption off, Shinjuku 3
// workers vs Offload 4 workers (k=4).
func Figure4Spec(q Quality) FigureSpec {
	p := params.Default()
	loads := loadGrid(50_000, 750_000, 50_000)
	const id = "figure4"
	return FigureSpec{
		ID:     id,
		Title:  "Fixed 5µs service time, no preemption",
		XLabel: "offered load (RPS)",
		YLabel: "p99 latency",
		Sweep: runner.Sweep[Result]{Name: id, Series: []runner.Series[Result]{
			gridSeries(id, "shinjuku-offload (4 workers, k=4)",
				OffloadFactory(p, 4, 4, 0), Fixed5us, nil, q, loads),
			gridSeries(id, "shinjuku (3 workers)",
				ShinjukuFactory(p, 3, 0), Fixed5us, nil, q, loads),
		}},
	}
}

// Figure4 runs Figure4Spec on the default parallel runner.
func Figure4(q Quality) Figure { return mustFigure(Figure4Spec(q)) }

// Figure5Spec declares the fixed 100 µs figure: Shinjuku 15 workers vs
// Offload 16 workers (k=2), preemption off.
func Figure5Spec(q Quality) FigureSpec {
	p := params.Default()
	loads := loadGrid(10_000, 170_000, 10_000)
	const id = "figure5"
	return FigureSpec{
		ID:     id,
		Title:  "Fixed 100µs service time, no preemption",
		XLabel: "offered load (RPS)",
		YLabel: "p99 latency",
		Sweep: runner.Sweep[Result]{Name: id, Series: []runner.Series[Result]{
			gridSeries(id, "shinjuku-offload (16 workers, k=2)",
				OffloadFactory(p, 16, 2, 0), Fixed100us, nil, q, loads),
			gridSeries(id, "shinjuku (15 workers)",
				ShinjukuFactory(p, 15, 0), Fixed100us, nil, q, loads),
		}},
	}
}

// Figure5 runs Figure5Spec on the default parallel runner.
func Figure5(q Quality) Figure { return mustFigure(Figure5Spec(q)) }

// Figure6Spec declares the fixed 1 µs figure at high worker counts:
// Shinjuku 15 workers vs Offload 16 workers (k=5). Here the offloaded
// dispatcher is the bottleneck and vanilla Shinjuku greatly outperforms
// (§5.1).
func Figure6Spec(q Quality) FigureSpec {
	p := params.Default()
	loads := loadGrid(250_000, 4_000_000, 250_000)
	const id = "figure6"
	return FigureSpec{
		ID:     id,
		Title:  "Fixed 1µs service time, 15/16 workers",
		XLabel: "offered load (RPS)",
		YLabel: "p99 latency",
		Sweep: runner.Sweep[Result]{Name: id, Series: []runner.Series[Result]{
			gridSeries(id, "shinjuku-offload (16 workers, k=5)",
				OffloadFactory(p, 16, 5, 0), Fixed1us, nil, q, loads),
			gridSeries(id, "shinjuku (15 workers)",
				ShinjukuFactory(p, 15, 0), Fixed1us, nil, q, loads),
		}},
	}
}

// Figure6 runs Figure6Spec on the default parallel runner.
func Figure6(q Quality) Figure { return mustFigure(Figure6Spec(q)) }

// Figure6CXLSpec declares the X1 ablation: Figure 6's offload
// configuration with the §5.1(2) coherent-memory communication path.
func Figure6CXLSpec(q Quality) FigureSpec {
	p := params.Default()
	loads := loadGrid(250_000, 4_000_000, 250_000)
	const id = "figure6-cxl"
	return FigureSpec{
		ID:     id,
		Title:  "Fixed 1µs, 15/16 workers, CXL communication ablation (§5.1-2)",
		XLabel: "offered load (RPS)",
		YLabel: "p99 latency",
		Sweep: runner.Sweep[Result]{Name: id, Series: []runner.Series[Result]{
			gridSeries(id, "offload+cxl (16 workers, k=5)",
				IdealNICFactory(idealnicCfg(16, 5, 0, true, false, false)), Fixed1us, nil, q, loads),
			gridSeries(id, "shinjuku (15 workers)",
				ShinjukuFactory(p, 15, 0), Fixed1us, nil, q, loads),
		}},
	}
}

// Figure6CXL runs Figure6CXLSpec on the default parallel runner.
func Figure6CXL(q Quality) Figure { return mustFigure(Figure6CXLSpec(q)) }

// Figure6LineRateSpec declares the X2 ablation: Figure 6 with a line-rate
// hardware scheduler (§5.1-1), alone and combined with CXL.
func Figure6LineRateSpec(q Quality) FigureSpec {
	loads := loadGrid(250_000, 4_000_000, 250_000)
	const id = "figure6-linerate"
	return FigureSpec{
		ID:     id,
		Title:  "Fixed 1µs, 16 workers, line-rate scheduler ablation (§5.1-1)",
		XLabel: "offered load (RPS)",
		YLabel: "p99 latency",
		Sweep: runner.Sweep[Result]{Name: id, Series: []runner.Series[Result]{
			gridSeries(id, "offload+linerate (16 workers, k=5)",
				IdealNICFactory(idealnicCfg(16, 5, 0, false, true, false)), Fixed1us, nil, q, loads),
			gridSeries(id, "ideal nic: linerate+cxl (16 workers, k=2)",
				IdealNICFactory(idealnicCfg(16, 2, 0, true, true, false)), Fixed1us, nil, q, loads),
		}},
	}
}

// Figure6LineRate runs Figure6LineRateSpec on the default parallel runner.
func Figure6LineRate(q Quality) Figure { return mustFigure(Figure6LineRateSpec(q)) }

func idealnicCfg(workers, k int, slice time.Duration, cxl, lineRate, directIRQ bool) idealnic.Config {
	return idealnic.Config{
		P: params.Default(), Workers: workers, Outstanding: k, Slice: slice,
		CXL: cxl, LineRate: lineRate, DirectInterrupts: directIRQ,
	}
}

// BaselineComparisonSpec declares the X4 landscape: every system of §2.1
// on the bimodal workload, normalized per worker (all systems get equal
// host cores; systems that burn a core on dispatch get fewer workers).
func BaselineComparisonSpec(q Quality) FigureSpec {
	p := params.Default()
	loads := loadGrid(50_000, 650_000, 50_000)
	slice := 10 * time.Microsecond
	const hostCores = 4
	const id = "baselines"
	// A realistic KVS key popularity (mild skew) for the steering-sensitive
	// baselines; informed/centralized schedulers ignore keys.
	keys := dist.NewZipfKeys(4096, 0.9)
	series := []runner.Series[Result]{
		gridSeries(id, "shinjuku-offload (4 workers, k=4)",
			OffloadFactory(p, hostCores, 4, slice), BimodalWorkload, keys, q, loads),
		gridSeries(id, fmt.Sprintf("shinjuku (%d workers)", hostCores-1),
			ShinjukuFactory(p, hostCores-1, slice), BimodalWorkload, keys, q, loads),
		gridSeries(id, "rss/ix (4 workers)",
			RSSFactory(p, hostCores), BimodalWorkload, keys, q, loads),
		gridSeries(id, "zygos (4 workers)",
			ZygOSFactory(p, hostCores), BimodalWorkload, keys, q, loads),
		gridSeries(id, "flow-director (4 workers)",
			FlowDirFactory(p, hostCores), BimodalWorkload, keys, q, loads),
		gridSeries(id, "rpcvalet (4 workers)",
			RPCValetFactory(p, hostCores), BimodalWorkload, keys, q, loads),
		gridSeries(id, "erss (4 workers elastic)",
			ERSSFactory(p, hostCores), BimodalWorkload, keys, q, loads),
	}
	return FigureSpec{
		ID:     id,
		Title:  "Bimodal workload across §2.1 systems (equal host cores, zipf(0.9) keys)",
		XLabel: "offered load (RPS)",
		YLabel: "p99 latency",
		Sweep:  runner.Sweep[Result]{Name: id, Series: series},
	}
}

// BaselineComparison runs BaselineComparisonSpec on the default parallel
// runner.
func BaselineComparison(q Quality) Figure { return mustFigure(BaselineComparisonSpec(q)) }
