package sim

import (
	"math/rand/v2"
	"testing"
	"time"
)

// The timing wheel must be observationally identical to the original
// binary-heap scheduler: same fire order, same timestamps, same Executed()
// and Pending() counts, same Timer.Stop results. The heap survives as the
// overflow level, and refHeap routes every event through it, turning the
// engine back into the old pure-heap scheduler — the reference
// implementation these tests compare against.

func newRefEngine() *Engine {
	e := New()
	e.refHeap = true
	return e
}

// firing is one observed callback execution.
type firing struct {
	id int
	at Time
}

// side is one engine plus its observation log.
type side struct {
	eng *Engine
	log []firing
}

func (s *side) add(id int) { s.log = append(s.log, firing{id, s.eng.Now()}) }

// logFire is the typed-API observation callback.
func logFire(recv, _ any, arg uint64) {
	s := recv.(*side)
	s.add(int(arg))
}

// script interprets data as a deterministic op stream applied identically
// to the wheel engine and the reference heap engine, then verifies the two
// observations match exactly. It exercises: delays across every wheel
// level and the overflow horizon, same-instant bursts, scheduling at the
// current instant from inside a callback (drain-time insertion),
// cancellation from the wheel, the heap, and the ready buffer,
// cancel-then-reschedule, partial stepping, and RunUntil boundaries.
func script(t *testing.T, data []byte) {
	t.Helper()
	wheel := &side{eng: New()}
	ref := &side{eng: newRefEngine()}
	sides := [2]*side{wheel, ref}

	var timers [2][]*Timer // parallel per-side handles
	nextID := 0
	pos := 0
	next := func() byte {
		if pos >= len(data) {
			return 0
		}
		b := data[pos]
		pos++
		return b
	}

	for pos < len(data) {
		switch op := next() % 7; op {
		case 0, 1: // schedule one event; delay spans all levels + overflow
			lo := uint64(next()) | uint64(next())<<8
			shift := uint(next()) % 48
			d := time.Duration(lo << shift)
			if d < 0 {
				d = time.Duration(lo)
			}
			// Keep deadlines clear of Time overflow: the engine panics on
			// wrapped deadlines, and the point here is scheduling order.
			if rem := MaxTime - wheel.eng.Now(); Time(d) > rem/2 {
				d = time.Duration(rem / 2)
			}
			id := nextID
			nextID++
			if op == 0 { // typed API
				for i, s := range sides {
					timers[i] = append(timers[i], s.eng.AfterTimerE(d, logFire, s, nil, uint64(id)))
				}
			} else { // legacy closure API
				for i, s := range sides {
					s := s
					timers[i] = append(timers[i], s.eng.AfterTimer(d, func() { s.add(id) }))
				}
			}
		case 2: // same-instant burst
			n := int(next())%6 + 2
			d := time.Duration(next())
			for k := 0; k < n; k++ {
				id := nextID
				nextID++
				for _, s := range sides {
					s.eng.AfterE(d, logFire, s, nil, uint64(id))
				}
			}
		case 3: // event that schedules another at its own instant (drain-time insert)
			d := time.Duration(uint64(next()) << (uint(next()) % 20))
			id := nextID
			nextID += 2
			for _, s := range sides {
				s := s
				s.eng.After(d, func() {
					s.add(id)
					s.eng.AtE(s.eng.Now(), logFire, s, nil, uint64(id+1))
				})
			}
		case 4: // cancel a prior timer on both sides; results must agree
			if len(timers[0]) == 0 {
				continue
			}
			i := int(next()) % len(timers[0])
			a := timers[0][i].Stop()
			b := timers[1][i].Stop()
			if a != b {
				t.Fatalf("Stop() diverged on timer %d: wheel=%v ref=%v", i, a, b)
			}
		case 5: // partial stepping
			n := int(next()) % 16
			for k := 0; k < n; k++ {
				a := wheel.eng.Step()
				b := ref.eng.Step()
				if a != b {
					t.Fatalf("Step() diverged: wheel=%v ref=%v", a, b)
				}
			}
		case 6: // bounded run
			d := time.Duration(uint64(next())<<uint(next()%24) + 1)
			until := wheel.eng.Now().Add(d)
			wheel.eng.RunUntil(until)
			ref.eng.RunUntil(until)
		}
		if wheel.eng.Now() != ref.eng.Now() {
			t.Fatalf("clocks diverged: wheel=%v ref=%v", wheel.eng.Now(), ref.eng.Now())
		}
		if wheel.eng.Pending() != ref.eng.Pending() {
			t.Fatalf("Pending diverged: wheel=%d ref=%d", wheel.eng.Pending(), ref.eng.Pending())
		}
	}

	wheel.eng.Run()
	ref.eng.Run()

	if wheel.eng.Executed() != ref.eng.Executed() {
		t.Fatalf("Executed diverged: wheel=%d ref=%d", wheel.eng.Executed(), ref.eng.Executed())
	}
	if wheel.eng.Pending() != 0 || ref.eng.Pending() != 0 {
		t.Fatalf("events left pending after Run: wheel=%d ref=%d", wheel.eng.Pending(), ref.eng.Pending())
	}
	if len(wheel.log) != len(ref.log) {
		t.Fatalf("fire counts diverged: wheel=%d ref=%d", len(wheel.log), len(ref.log))
	}
	for i := range wheel.log {
		if wheel.log[i] != ref.log[i] {
			t.Fatalf("firing %d diverged: wheel=%+v ref=%+v", i, wheel.log[i], ref.log[i])
		}
	}
}

// TestWheelVsHeapRandomized drives long random scripts through both
// schedulers. Failures reproduce exactly from the printed seed.
func TestWheelVsHeapRandomized(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewPCG(seed, 0x9e3779b9))
		n := 2000
		if testing.Short() {
			n = 300
		}
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(rng.Uint32())
		}
		t.Run("", func(t *testing.T) { script(t, data) })
	}
}

// FuzzWheelVsHeap lets the fuzzer search for schedules where the wheel and
// the reference heap disagree. The checked-in corpus covers each op plus
// known-delicate shapes: overflow-horizon delays, cancel-while-ready, and
// same-instant bursts straddling a cascade.
func FuzzWheelVsHeap(f *testing.F) {
	f.Add([]byte{0, 1, 0, 0})
	f.Add([]byte{2, 5, 0, 0, 1, 255, 255, 47, 4, 0, 5, 15})
	f.Add([]byte{0, 255, 255, 47, 0, 1, 0, 0, 4, 0, 4, 1, 5, 9})
	f.Add([]byte{3, 200, 18, 3, 0, 0, 5, 3, 4, 0, 6, 9, 23})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			t.Skip("cap script length")
		}
		script(t, data)
	})
}

// TestWheelDeepLevelsAndOverflow pins the cascade and overflow-epoch paths
// directly: events at every level boundary plus several beyond the 64^7 ns
// horizon must still fire in global (time, seq) order.
func TestWheelDeepLevelsAndOverflow(t *testing.T) {
	e := New()
	var got []Time
	var want []Time
	at := func(tm Time) {
		want = append(want, tm)
		e.AtE(tm, func(recv, _ any, _ uint64) {
			eng := recv.(*Engine)
			got = append(got, eng.Now())
		}, e, nil, 0)
	}
	// One event per level: 64^k + 1 for k = 0..6, then overflow.
	var ts []Time
	v := Time(1)
	for k := 0; k < 7; k++ {
		ts = append(ts, v+1)
		v *= 64
	}
	ts = append(ts, Time(1)<<wheelSpan+7, Time(1)<<wheelSpan+7+Time(1)<<wheelSpan)
	// Schedule in reverse so insertion order disagrees with time order.
	for i := len(ts) - 1; i >= 0; i-- {
		at(ts[i])
	}
	// Sort want (ascending times).
	for i := 1; i < len(want); i++ {
		for j := i; j > 0 && want[j] < want[j-1]; j-- {
			want[j], want[j-1] = want[j-1], want[j]
		}
	}
	e.Run()
	if len(got) != len(want) {
		t.Fatalf("fired %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fire %d at %v, want %v (full: %v)", i, got[i], want[i], got)
		}
	}
}

// TestFreeListTracksHighWater verifies the recycle cap follows the
// measured peak backlog instead of a magic constant.
func TestFreeListTracksHighWater(t *testing.T) {
	e := New()
	const n = 10_000 // well beyond the old 4096 cap
	for i := 0; i < n; i++ {
		e.At(Time(i), func() {})
	}
	if e.HighWater() != n {
		t.Fatalf("HighWater = %d, want %d", e.HighWater(), n)
	}
	e.Run()
	if got := len(e.free); got != n {
		t.Fatalf("free list holds %d events after drain, want %d (high-water cap)", got, n)
	}
	// Steady state far below the peak: the free list must not grow past
	// the high-water mark.
	for i := 0; i < 100; i++ {
		e.After(time.Nanosecond, func() {})
		e.Run()
	}
	if got := len(e.free); got > n {
		t.Fatalf("free list grew to %d, beyond high-water %d", got, n)
	}
}
