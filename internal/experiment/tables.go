package experiment

import (
	"time"

	"mindgap/internal/dist"
	"mindgap/internal/params"
)

// TimerCostRow is one row of the §3.4.4 timer-cost table (T1).
type TimerCostRow struct {
	Operation    string
	LinuxCycles  float64
	DirectCycles float64
	LinuxTime    time.Duration
	DirectTime   time.Duration
	Reduction    float64 // fractional cost reduction, e.g. 0.93
}

// TimerCosts regenerates the §3.4.4 numbers: arming the timer drops from
// 610 to 40 cycles (93%), receiving the interrupt from 4193 to 1272 (70%).
func TimerCosts(p params.Params) []TimerCostRow {
	clk := p.HostClock
	rows := []TimerCostRow{
		{
			Operation:    "set timer",
			LinuxCycles:  params.LinuxTimer.ArmCycles,
			DirectCycles: params.DirectAPIC.ArmCycles,
		},
		{
			Operation:    "receive timer interrupt",
			LinuxCycles:  params.LinuxTimer.FireCycles,
			DirectCycles: params.DirectAPIC.FireCycles,
		},
	}
	for i := range rows {
		r := &rows[i]
		r.LinuxTime = clk.CyclesToDuration(r.LinuxCycles)
		r.DirectTime = clk.CyclesToDuration(r.DirectCycles)
		r.Reduction = 1 - r.DirectCycles/r.LinuxCycles
	}
	return rows
}

// IPCOverheadResult is the T2 experiment: the extra tail latency vanilla
// Shinjuku's inter-thread communication adds to minimal-work requests
// compared to single-thread run-to-completion (§2.2 item 4: ≈2 µs).
type IPCOverheadResult struct {
	ShinjukuP99 time.Duration
	RSSP99      time.Duration
	Overhead    time.Duration
}

// IPCOverhead measures T2. Both systems run far from saturation with
// near-zero application work so the path cost dominates.
func IPCOverhead(q Quality) IPCOverheadResult {
	p := params.Default()
	svc := dist.Fixed{D: 200 * time.Nanosecond}
	const load = 100_000
	shin := RunPoint(PointConfig{
		Factory: ShinjukuFactory(p, 3, 0),
		Service: svc, OfferedRPS: load,
		Warmup: q.Warmup, Measure: q.Measure, Seed: q.Seed,
	})
	rss := RunPoint(PointConfig{
		Factory: RSSFactory(p, 3),
		Service: svc, OfferedRPS: load,
		Warmup: q.Warmup, Measure: q.Measure, Seed: q.Seed,
	})
	return IPCOverheadResult{
		ShinjukuP99: shin.P99,
		RSSP99:      rss.P99,
		Overhead:    shin.P99 - rss.P99,
	}
}

// WorkerWaitResult is the T3 experiment: at their respective saturation
// points, Shinjuku-Offload workers running the 1 µs workload (Figure 6)
// wait for work far more than those running the 100 µs workload (Figure 5)
// — the paper measures 110% more waiting.
type WorkerWaitResult struct {
	IdleAt100us   float64
	IdleAt1us     float64
	ExtraWaitFrac float64 // (IdleAt1us - IdleAt100us) / IdleAt100us
}

// WorkerWait measures T3 at saturating load for both configurations.
func WorkerWait(q Quality) WorkerWaitResult {
	p := params.Default()
	// Figure 5 configuration at its knee (just below saturation).
	fig5 := RunPoint(PointConfig{
		Factory: OffloadFactory(p, 16, 2, 0),
		Service: Fixed100us, OfferedRPS: 150_000,
		Warmup: q.Warmup, Measure: q.Measure, Seed: q.Seed,
	})
	// Figure 6 configuration at its knee.
	fig6 := RunPoint(PointConfig{
		Factory: OffloadFactory(p, 16, 5, 0),
		Service: Fixed1us, OfferedRPS: 1_500_000,
		Warmup: q.Warmup, Measure: q.Measure, Seed: q.Seed,
	})
	r := WorkerWaitResult{
		IdleAt100us: fig5.WorkerIdleFraction,
		IdleAt1us:   fig6.WorkerIdleFraction,
	}
	if r.IdleAt100us > 0 {
		r.ExtraWaitFrac = (r.IdleAt1us - r.IdleAt100us) / r.IdleAt100us
	}
	return r
}

// CommLatencyResult is the T4 check: the modelled one-way NIC↔host message
// latency against the paper's measured 2.56 µs.
type CommLatencyResult struct {
	Modelled time.Duration
	Paper    time.Duration
}

// CommLatency reports T4.
func CommLatency(p params.Params) CommLatencyResult {
	return CommLatencyResult{Modelled: p.NicHostOneWay, Paper: 2560 * time.Nanosecond}
}
