package fabric

import (
	"time"

	"mindgap/internal/sim"
	"mindgap/internal/stats"
	"mindgap/internal/telemetry"
)

// Stage models a serial processing element — a CPU core (or pipeline stage
// on one) that handles one item at a time, each costing some processing
// time, with an optional bounded input queue. The SmartNIC ARM dispatcher
// cores, the vanilla Shinjuku networker and dispatcher threads, and the
// hardware scheduler of the ideal NIC are all Stages with different costs.
//
// The queueing behaviour of Stages — not just their raw cost — is what
// reproduces the paper's Figure 3 and Figure 6: near saturation, waiting
// time at the ARM stages inflates the dispatch round trip well beyond the
// 2.56 µs wire latency.
type Stage[T any] struct {
	eng *sim.Engine
	// cost returns the processing time for an item.
	cost func(T) time.Duration
	// done is invoked after an item's processing time has elapsed.
	done func(T)

	name  string
	limit int
	q     deque[T]
	busy  bool
	// cur is the item in service. A serial stage holds exactly one, so the
	// completion event needs no payload: it reads cur from the receiver,
	// which keeps scheduling allocation-free.
	cur T
	// served is stageServed[T] bound once at construction: materializing a
	// generic function value inside a generic method would allocate a
	// dictionary closure per event.
	served sim.EventFunc

	// stretch, when set, converts an item's processing cost into the wall
	// duration it takes under the active fault timeline (crash windows
	// freeze the core, slowdown windows dilate it). Nil — the only state
	// healthy systems ever see — leaves costs untouched.
	stretch func(sim.Time, time.Duration) time.Duration

	processed uint64
	dropped   uint64
	busyTrack stats.BusyTracker
}

// NewStage creates a serial server. cost may be nil for a free stage;
// limit <= 0 means an unbounded input queue.
func NewStage[T any](eng *sim.Engine, name string, limit int, cost func(T) time.Duration, done func(T)) *Stage[T] {
	if done == nil {
		panic("fabric: stage requires a done callback")
	}
	s := &Stage[T]{eng: eng, name: name, limit: limit, cost: cost, done: done}
	s.served = stageServed[T]
	return s
}

// FixedCost adapts a constant processing time to the Stage cost signature.
func FixedCost[T any](d time.Duration) func(T) time.Duration {
	return func(T) time.Duration { return d }
}

// Submit offers an item to the stage. It reports false (and counts a drop)
// if the bounded queue is full.
//
//mindgap:noalloc
func (s *Stage[T]) Submit(item T) bool {
	if !s.busy {
		s.start(item)
		return true
	}
	if s.limit > 0 && s.q.len() >= s.limit {
		s.dropped++
		return false
	}
	s.q.pushBack(item)
	return true
}

// SetStretch installs a fault-timeline cost dilation (see the stretch
// field). Install before the simulation starts; fabric carries the raw
// func type so it does not depend on the faults package.
func (s *Stage[T]) SetStretch(f func(sim.Time, time.Duration) time.Duration) { s.stretch = f }

//mindgap:noalloc
func (s *Stage[T]) start(item T) {
	s.busy = true
	s.busyTrack.SetBusy(s.eng.Now(), true)
	var d time.Duration
	if s.cost != nil {
		d = s.cost(item)
	}
	if s.stretch != nil {
		d = s.stretch(s.eng.Now(), d)
	}
	s.cur = item
	s.eng.AfterE(d, s.served, s, nil, 0)
}

// stageServed fires when the in-service item's processing time elapses.
//
//mindgap:noalloc
func stageServed[T any](recv, _ any, _ uint64) {
	s := recv.(*Stage[T])
	item := s.cur
	s.done(item)
	if next, ok := s.q.popFront(); ok {
		s.processed++
		s.start(next)
		return
	}
	s.processed++
	s.busy = false
	var zero T
	s.cur = zero
	s.busyTrack.SetBusy(s.eng.Now(), false)
}

// QueueLen returns the number of items waiting (excluding the one in
// service).
func (s *Stage[T]) QueueLen() int { return s.q.len() }

// Busy reports whether an item is currently in service.
func (s *Stage[T]) Busy() bool { return s.busy }

// Processed returns the number of items fully processed.
func (s *Stage[T]) Processed() uint64 { return s.processed }

// Dropped returns the number of items rejected by the bounded queue.
func (s *Stage[T]) Dropped() uint64 { return s.dropped }

// Name returns the diagnostic name.
func (s *Stage[T]) Name() string { return s.name }

// BusyTracker exposes the stage's utilization accounting.
func (s *Stage[T]) BusyTracker() *stats.BusyTracker { return &s.busyTrack }

// RegisterTelemetry exposes the stage's occupancy, throughput, and
// utilization probes on reg under the given component label. Utilization
// reads the stage's BusyTracker at the engine's current instant, so it is
// only meaningful after the tracker has been armed.
func (s *Stage[T]) RegisterTelemetry(reg *telemetry.Registry, component string) {
	reg.GaugeFunc(component, "queue_depth", func() float64 { return float64(s.q.len()) })
	reg.GaugeFunc(component, "busy", func() float64 { return boolGauge(s.busy) })
	reg.GaugeFunc(component, "processed", func() float64 { return float64(s.processed) })
	reg.GaugeFunc(component, "dropped", func() float64 { return float64(s.dropped) })
	reg.GaugeFunc(component, "utilization", func() float64 {
		return s.busyTrack.BusyFraction(s.eng.Now())
	})
}

// boolGauge renders a boolean as a 0/1 gauge sample.
func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// deque is a minimal amortized-O(1) FIFO used by Stage.
type deque[T any] struct {
	items []T
	head  int
}

//mindgap:noalloc
func (d *deque[T]) len() int { return len(d.items) - d.head }

//mindgap:noalloc
func (d *deque[T]) pushBack(v T) {
	// Compact when the dead prefix dominates, keeping memory bounded.
	if d.head > 64 && d.head*2 >= len(d.items) {
		n := copy(d.items, d.items[d.head:])
		var zero T
		for i := n; i < len(d.items); i++ {
			d.items[i] = zero
		}
		d.items = d.items[:n]
		d.head = 0
	}
	d.items = append(d.items, v)
}

//mindgap:noalloc
func (d *deque[T]) popFront() (T, bool) {
	var zero T
	if d.len() == 0 {
		return zero, false
	}
	v := d.items[d.head]
	d.items[d.head] = zero
	d.head++
	if d.head == len(d.items) {
		d.items = d.items[:0]
		d.head = 0
	}
	return v, true
}
