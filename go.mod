module mindgap

go 1.22.0

// Pinned to the exact revision vendored by the Go 1.24 distribution
// (src/cmd/vendor), from which vendor/golang.org/x/tools was populated.
// The build always runs in -mod=vendor mode, so it is hermetic: no
// network or module proxy is consulted after checkout.
require golang.org/x/tools v0.28.1-0.20250131145412-98746475647e
