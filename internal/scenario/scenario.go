// Package scenario is the declarative layer between experiment
// definitions and the systems they measure: a serializable Spec (system
// kind + typed knobs, workload, keys, load grid, quality, seeds,
// telemetry/trace toggles) with a canonical JSON encoding and
// fingerprint, plus a central registry that maps system names to
// builders with per-kind knob validation.
//
// Every system in the repository — the paper's Shinjuku-Offload and all
// §2.1 baselines — is assembled through Build, so scenarios are data:
// the experiment harness, the CLIs, and the examples all construct
// systems from the same audited specs, the runner's result cache keys
// derive from Spec.Fingerprint, and checked-in presets under scenarios/
// replace hand-rolled factory closures.
package scenario

import (
	"mindgap/internal/sim"
	"mindgap/internal/stats"
	"mindgap/internal/task"
)

// System is the common surface of every scheduling system in this
// repository (Shinjuku-Offload, vanilla Shinjuku, RSS, ZygOS, Flow
// Director, RPCValet, eRSS, and the ideal-NIC ablations).
type System interface {
	// Name identifies the system in reports.
	Name() string
	// Inject admits a request at the current engine instant.
	Inject(*task.Request)
	// WorkerIdleFraction returns the mean worker idle fraction since
	// ArmWorkerTrackers.
	WorkerIdleFraction(sim.Time) float64
	// ArmWorkerTrackers starts worker utilization accounting.
	ArmWorkerTrackers(sim.Time)
}

// Factory builds a system on the given engine. done must be invoked at
// the instant the client receives each response; rec may be used for
// drop and preemption accounting.
type Factory func(eng *sim.Engine, rec *stats.Recorder, done func(*task.Request)) System
