package hypotheses

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"mindgap/internal/experiment"
	"mindgap/internal/hypothesis"
	"mindgap/internal/runner"
)

var update = flag.Bool("update", false, "rewrite hypothesis.json in canonical form and regenerate FINDINGS.md")

func TestSpecsAreCanonical(t *testing.T) {
	for _, name := range Names() {
		raw, err := Raw(name)
		if err != nil {
			t.Fatal(err)
		}
		s, err := hypothesis.Decode(raw)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		enc, err := s.Encode()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if *update && !bytes.Equal(raw, enc) {
			path := filepath.Join(name, "hypothesis.json")
			if err := os.WriteFile(path, enc, 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("rewrote %s in canonical form", path)
			continue
		}
		if !bytes.Equal(raw, enc) {
			t.Errorf("%s/hypothesis.json is not canonical; run `go test ./hypotheses -run TestSpecsAreCanonical -update`", name)
		}
	}
}

func TestSpecsValidate(t *testing.T) {
	names := Names()
	if len(names) < 4 {
		t.Fatalf("corpus holds %d hypotheses, want at least 4", len(names))
	}
	twins := 0
	for _, name := range names {
		s, err := Load(name)
		if err != nil {
			t.Fatal(err)
		}
		if s.ID != name {
			t.Errorf("directory %q holds hypothesis id %q — they must match", name, s.ID)
		}
		if s.Quality == nil {
			t.Errorf("%s: checked-in hypotheses must pin quality, or FINDINGS bytes would depend on the run-time -quality flag", name)
		}
		if s.Analytic != nil {
			twins++
		}
	}
	if twins == 0 {
		t.Error("corpus declares no analytic twin; at least one hypothesis must cross-check theory")
	}
}

// runAll executes every hypothesis on one runner and renders FINDINGS.
func runAll(t *testing.T, rn *runner.Runner) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte, len(Names()))
	for _, name := range Names() {
		s, err := Load(name)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := hypothesis.Run(context.Background(), rn, s, experiment.Quick)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = rep.Render()
		if !rep.Pass {
			t.Errorf("%s: verdict FAIL — a checked-in claim no longer holds:\n%s", name, out[name])
		}
	}
	return out
}

// TestFindingsGolden executes the whole corpus at two parallelism levels
// and demands byte-identical FINDINGS from both, matching the checked-in
// goldens. This is the determinism contract and the regression tripwire
// in one: scheduler-order nondeterminism, a verdict flip, or any drift
// in the measured numbers all land here as a byte diff.
func TestFindingsGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("executes the full hypothesis corpus twice")
	}
	seq := runAll(t, &runner.Runner{Parallelism: 1})
	par := runAll(t, &runner.Runner{Parallelism: 4})
	for _, name := range Names() {
		if !bytes.Equal(seq[name], par[name]) {
			t.Errorf("%s: FINDINGS differ between -j1 and -j4:\n--- j1 ---\n%s\n--- j4 ---\n%s",
				name, seq[name], par[name])
			continue
		}
		if *update {
			path := filepath.Join(name, "FINDINGS.md")
			if err := os.WriteFile(path, seq[name], 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("rewrote %s", path)
			continue
		}
		golden, err := Findings(name)
		if err != nil {
			t.Errorf("%s: no golden; run `go test ./hypotheses -run TestFindingsGolden -update`", name)
			continue
		}
		if !bytes.Equal(seq[name], golden) {
			t.Errorf("%s: FINDINGS drifted from golden:\n--- measured ---\n%s\n--- golden ---\n%s",
				name, seq[name], golden)
		}
	}
}

// TestCacheWarmReuse proves the corpus is fully cacheable: a second run
// against a warm cache must execute zero simulation points and render
// the same bytes.
func TestCacheWarmReuse(t *testing.T) {
	if testing.Short() {
		t.Skip("executes one hypothesis")
	}
	cache, err := runner.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, err := Load("stealing-beats-blind-rss")
	if err != nil {
		t.Fatal(err)
	}
	var executed, cached atomic.Int64
	rn := &runner.Runner{
		Parallelism: 2,
		Cache:       cache,
		Progress: func(ev runner.Event) {
			if ev.Cached {
				cached.Add(1)
			} else {
				executed.Add(1)
			}
		},
	}
	cold, err := hypothesis.Run(context.Background(), rn, s, experiment.Quick)
	if err != nil {
		t.Fatal(err)
	}
	if executed.Load() == 0 {
		t.Fatal("cold run executed no points — cache cannot have been empty")
	}
	executed.Store(0)
	cached.Store(0)
	warm, err := hypothesis.Run(context.Background(), rn, s, experiment.Quick)
	if err != nil {
		t.Fatal(err)
	}
	if n := executed.Load(); n != 0 {
		t.Fatalf("warm run executed %d points, want 0 (all cached)", n)
	}
	if cached.Load() == 0 {
		t.Fatal("warm run reported no cached points")
	}
	if !bytes.Equal(cold.Render(), warm.Render()) {
		t.Fatal("warm FINDINGS differ from cold")
	}
}
