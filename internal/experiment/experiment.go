// Package experiment is the measurement harness that regenerates every
// figure and in-text number of the paper's evaluation: it drives a
// scheduling system with the open-loop load generator, handles warmup,
// detects saturation, and produces the latency-vs-throughput rows the paper
// plots.
package experiment

import (
	"context"
	"time"

	"mindgap/internal/dist"
	"mindgap/internal/loadgen"
	"mindgap/internal/runner"
	"mindgap/internal/scenario"
	"mindgap/internal/sim"
	"mindgap/internal/stats"
	"mindgap/internal/task"
)

// System and Factory are defined by the scenario layer — the registry in
// internal/scenario is the single assembly point for every system in
// this repository — and aliased here so experiment code and its callers
// keep their historical names.
type (
	System  = scenario.System
	Factory = scenario.Factory
)

// PointConfig describes a single measured load point.
type PointConfig struct {
	// Factory builds the system under test.
	Factory Factory
	// Service is the fake-work service-time distribution. For flow
	// workloads it is the slow-path per-packet processing cost.
	Service dist.Distribution
	// Keys optionally samples per-request application keys.
	Keys *dist.ZipfKeys
	// Flow, when set, drives the point with the flow-keyed generator
	// (population, elephant/rat mix, batches, trains) instead of the
	// open-loop i.i.d. stream; OfferedRPS is then the batch rate.
	Flow *scenario.FlowSpec
	// OfferedRPS is the open-loop arrival rate.
	OfferedRPS float64
	// Warmup completions are discarded; Measure completions are recorded.
	Warmup, Measure int
	// Seed fixes the workload streams.
	Seed uint64
	// MaxSimTime bounds simulated time per point; zero derives a bound
	// from the expected run length. Points that hit the bound are
	// truncated (and almost always saturated).
	MaxSimTime time.Duration
}

// Result bundles the measured point with auxiliary observations.
type Result struct {
	stats.Point
	// SystemName echoes the system under test.
	SystemName string
	// SimTime is the simulated time consumed by the point.
	SimTime time.Duration
	// Truncated is set when the watchdog ended the run before Measure
	// completions were observed.
	Truncated bool
}

// IsSaturated lets the sweep runner apply its early-stop rule to figure
// grids (runner.Series.StopAfterSaturated).
func (r Result) IsSaturated() bool { return r.Saturated }

// RunPoint simulates one load point to completion and returns its row.
func RunPoint(cfg PointConfig) Result {
	if cfg.Warmup < 0 || cfg.Measure <= 0 {
		panic("experiment: need a positive measurement count")
	}
	eng := sim.New()
	rec := &stats.Recorder{}
	completions := 0
	target := cfg.Warmup + cfg.Measure

	var sys System
	var idleAtStop float64
	truncated := false

	stop := func() {
		rec.Stop(eng.Now())
		idleAtStop = sys.WorkerIdleFraction(eng.Now())
		eng.Halt()
	}

	// pool recycles request objects across the run: each request is released
	// the instant its response reaches the client (the done callback), the
	// one point where no component can still hold a live reference to it.
	pool := &task.Pool{}
	done := func(r *task.Request) {
		completions++
		if completions == cfg.Warmup {
			rec.Arm(eng.Now())
			sys.ArmWorkerTrackers(eng.Now())
			pool.Put(r)
			return
		}
		if completions > cfg.Warmup {
			rec.RecordLatency(r.Latency(eng.Now()))
		}
		pool.Put(r)
		if completions >= target {
			stop()
		}
	}
	if cfg.Warmup == 0 {
		// Arm immediately: measurement includes cold start (tests only).
		rec.Arm(0)
	}

	sys = cfg.Factory(eng, rec, done)
	if cfg.Warmup == 0 {
		sys.ArmWorkerTrackers(0)
	}

	if fl := cfg.Flow; fl != nil {
		// Flow records are pooled like requests; records are released by
		// whichever side (generator or system) drops a flow's last
		// reference.
		fgen := loadgen.NewFlow(eng, loadgen.FlowConfig{
			RPS:              cfg.OfferedRPS,
			Service:          cfg.Service,
			Flows:            fl.Flows,
			ElephantFraction: fl.ElephantFraction,
			RatBatch:         fl.RatBatch,
			ElephantBatch:    fl.ElephantBatch,
			RatTrain:         fl.RatTrain,
			ElephantTrain:    fl.ElephantTrain,
			Seed:             cfg.Seed,
			Pool:             pool,
			FlowPool:         &task.FlowPool{},
		}, sys.Inject)
		fgen.Start()
	} else {
		gen := loadgen.New(eng, loadgen.Config{
			RPS:     cfg.OfferedRPS,
			Service: cfg.Service,
			Keys:    cfg.Keys,
			Seed:    cfg.Seed,
			Pool:    pool,
		}, sys.Inject)
		gen.Start()
	}

	maxT := cfg.MaxSimTime
	if maxT == 0 {
		// Expected run length at the offered rate, with 8x headroom for
		// saturated points, plus a floor for very small runs.
		expected := time.Duration(float64(target) / cfg.OfferedRPS * float64(time.Second))
		maxT = 8*expected + 50*time.Millisecond
	}
	eng.At(sim.Time(maxT), func() {
		truncated = true
		stop()
	})
	eng.Run()

	now := eng.Now()
	achieved := rec.Throughput(now)
	p := stats.Point{
		OfferedRPS:         cfg.OfferedRPS,
		AchievedRPS:        achieved,
		P50:                rec.Latency.P50(),
		P99:                rec.Latency.P99(),
		Mean:               rec.Latency.Mean(),
		Max:                rec.Latency.Max(),
		Completed:          rec.Completed(),
		Dropped:            rec.Dropped(),
		Preemptions:        rec.Preemptions(),
		WorkerIdleFraction: idleAtStop,
		Saturated:          truncated || achieved < 0.97*cfg.OfferedRPS,
	}
	return Result{
		Point:      p,
		SystemName: sys.Name(),
		SimTime:    now.Duration(),
		Truncated:  truncated,
	}
}

// Sweep measures one system across a grid of offered loads on the default
// parallel runner. The returned series stops after the second consecutive
// saturated point — matching how the paper's figures end shortly after the
// knee — and is byte-identical to a serial run regardless of parallelism.
func Sweep(cfg PointConfig, loads []float64) []Result {
	out, _ := runner.RunOne(context.Background(), nil, "sweep",
		LoadSeries("", "", cfg, loads))
	return out
}

// Series is a labelled sweep — one curve of a figure.
type Series struct {
	Label   string
	Results []Result
}

// Figure is a reproduced paper figure: several curves over a load grid.
type Figure struct {
	ID    string
	Title string
	// XLabel / YLabel describe the plotted axes.
	XLabel, YLabel string
	Series         []Series
}
