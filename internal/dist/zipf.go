package dist

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// ZipfKeys samples application keys 0..N-1 with a Zipf(s) popularity
// distribution — the skewed key-access pattern that breaks flow-steering
// schedulers like Flow Director (§2.1/§2.2 "load imbalance"). s = 0 is
// uniform; larger s is more skewed (s ≈ 0.99 matches common KVS traces).
type ZipfKeys struct {
	cdf []float64
	s   float64
}

// NewZipfKeys builds the sampler for n keys with skew s >= 0.
func NewZipfKeys(n int, s float64) *ZipfKeys {
	if n <= 0 {
		panic("dist: zipf needs at least one key")
	}
	if s < 0 {
		panic("dist: zipf skew must be non-negative")
	}
	cdf := make([]float64, n)
	acc := 0.0
	for i := 0; i < n; i++ {
		acc += 1 / math.Pow(float64(i+1), s)
		cdf[i] = acc
	}
	for i := range cdf {
		cdf[i] /= acc
	}
	cdf[n-1] = 1
	return &ZipfKeys{cdf: cdf, s: s}
}

// N returns the key-space size.
func (z *ZipfKeys) N() int { return len(z.cdf) }

// Skew returns the Zipf exponent s.
func (z *ZipfKeys) Skew() float64 { return z.s }

// String describes the sampler ("zipf:<n>:<s>") — stable across runs, so
// it can participate in experiment cache keys.
func (z *ZipfKeys) String() string { return fmt.Sprintf("zipf:%d:%g", len(z.cdf), z.s) }

// Sample draws a key.
func (z *ZipfKeys) Sample(r *rand.Rand) uint64 {
	u := r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return uint64(lo)
}
