package scenario

import (
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"mindgap/internal/sim"
	"mindgap/internal/task"
)

// TestRegistryCompleteness pins the registry against DESIGN.md's system
// inventory: every simulated system in the repository must be buildable
// through the registry, under exactly these names. Adding a system
// package without registering it — or renaming a registry entry — fails
// here first.
func TestRegistryCompleteness(t *testing.T) {
	// Implementation package → the registry names it provides.
	inventory := map[string][]string{
		"internal/core":             {"offload"},
		"internal/systems/shinjuku": {"shinjuku"},
		"internal/systems/rtc":      {"rss", "zygos", "flowdir"},
		"internal/systems/rpcvalet": {"rpcvalet"},
		"internal/systems/erss":     {"erss"},
		"internal/systems/idealnic": {"idealnic"},
		"internal/systems/flowrule": {"flowrule"},
	}
	var want []string
	for _, names := range inventory {
		want = append(want, names...)
	}
	sort.Strings(want)
	got := SystemNames()
	if len(got) != len(want) {
		t.Errorf("registry has %d systems %v, DESIGN.md inventory has %d", len(got), got, len(want))
	}
	for _, n := range want {
		if _, ok := Lookup(n); !ok {
			t.Errorf("inventory system %q is not registered", n)
		}
	}
	sorted := append([]string(nil), got...)
	sort.Strings(sorted)
	if !reflect.DeepEqual(got, sorted) {
		t.Errorf("SystemNames() not sorted: %v", got)
	}
}

// TestBuildEverySystem builds one instance of every registered system
// and checks it reports a sensible Name. This is the "every system in
// DESIGN.md's inventory is constructible via scenario.Build" gate.
func TestBuildEverySystem(t *testing.T) {
	// Minimal valid knobs per system kind.
	knobs := map[string]Knobs{
		"offload":  {Workers: 2, Outstanding: 2, Slice: Duration(10 * time.Microsecond)},
		"shinjuku": {Workers: 2, Slice: Duration(10 * time.Microsecond)},
		"rss":      {Workers: 2},
		"zygos":    {Workers: 2},
		"flowdir":  {Workers: 2},
		"rpcvalet": {Workers: 2},
		"erss":     {Workers: 4, MinWorkers: 1},
		"idealnic": {Workers: 2, Outstanding: 2, CXL: true},
		"flowrule": {Workers: 1},
	}
	wantName := map[string]string{
		"offload":  "shinjuku-offload",
		"idealnic": "idealnic/cxl",
	}
	// Flow-workload systems refuse to build without a flow block.
	flows := map[string]*FlowSpec{
		"flowrule": {Flows: 64},
	}
	for _, name := range SystemNames() {
		k, ok := knobs[name]
		if !ok {
			t.Errorf("no test knobs for system %q — extend this table", name)
			continue
		}
		kn := k
		f, err := Build(Spec{System: name, Knobs: &kn, Flow: flows[name]})
		if err != nil {
			t.Errorf("Build(%q): %v", name, err)
			continue
		}
		sys := f(sim.New(), nil, func(*task.Request) {})
		if sys == nil {
			t.Errorf("factory for %q returned nil", name)
			continue
		}
		got := sys.Name()
		if got == "" {
			t.Errorf("system %q has empty Name()", name)
		}
		if want, ok := wantName[name]; ok && got != want {
			t.Errorf("system %q Name() = %q, want %q", name, got, want)
		}
	}
}

// TestBuildValidation checks the registry's refusal paths.
func TestBuildValidation(t *testing.T) {
	if _, err := Build(Spec{System: "nope", Knobs: &Knobs{Workers: 1}}); err == nil ||
		!strings.Contains(err.Error(), "unknown system") {
		t.Errorf("unknown system: err = %v", err)
	}
	if _, err := Build(Spec{System: "rss"}); err == nil {
		t.Error("rss with zero workers built; want workers >= 1 error")
	}
	if _, err := Build(Spec{System: "offload", Knobs: &Knobs{Workers: 2}}); err == nil {
		t.Error("offload with zero outstanding built; want outstanding >= 1 error")
	}
	if _, err := Build(Spec{System: "offload", Knobs: &Knobs{Workers: 2, Outstanding: 2, Policy: "banana"}}); err == nil {
		t.Error("offload with unknown policy built; want error")
	}
	// Non-observable systems must refuse tracing/telemetry requests
	// instead of silently dropping them.
	if _, err := Build(Spec{System: "rss", Knobs: &Knobs{Workers: 2}, Trace: true}); err == nil {
		t.Error("rss with trace:true built; want rejection")
	}
}

// TestBuilderMetadata checks every builder carries the -list-systems
// surface: a doc line and at least the workers knob.
func TestBuilderMetadata(t *testing.T) {
	for _, b := range Systems() {
		if b.Doc == "" {
			t.Errorf("system %q has no doc line", b.Name)
		}
		found := false
		for _, k := range b.Knobs {
			if k == "workers" {
				found = true
			}
		}
		if !found {
			t.Errorf("system %q does not accept the workers knob: %v", b.Name, b.Knobs)
		}
	}
}
