// Package hotalloc enforces zero-allocation discipline in functions
// annotated //mindgap:noalloc and everything they statically call.
//
// PR 7's 2x throughput win came from making the engine's event path
// allocation-free: typed events instead of closures, pooled requests,
// recycled event boxes. The //mindgap:noalloc directive marks the
// functions that form that path — Engine.Step and the event callbacks
// it fires — and this analyzer rejects the constructs that silently
// put allocations back:
//
//   - the closure-scheduling engine APIs (Engine.At / After /
//     AfterTimer, Link.Send / SendEx): every call allocates a closure
//     and an adapter event; the typed AtE / AfterE / AfterTimerE /
//     SendT forms exist precisely so hot code never pays that;
//   - closure literals that capture variables (each is a heap
//     allocation per event);
//   - calls into package fmt and conversions to string (both allocate
//     on every call);
//   - interface boxing of non-pointer-shaped values (storing an int or
//     a multi-word struct in an any allocates; pointers, single-pointer
//     structs, and constants do not).
//
// The annotation is transitive within a package: a function reachable
// from an annotated function through static calls or typed-event
// registration inherits the obligation, so the whole fire path is
// covered by annotating its roots. Arguments of panic calls are exempt
// — a panicking simulation is allowed to format its last words.
//
// The dynamic counterpart of this analyzer is the escape-budget gate
// (mindgap-lint -escapes), which asks the compiler to prove the same
// functions free of heap escapes.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"

	"mindgap/internal/lint/allow"
)

var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "forbid closure scheduling, capturing closures, fmt/string conversions, and interface boxing in //mindgap:noalloc functions",
	Run:  run,
}

// Directive marks a function as part of the zero-allocation hot path.
// Shared with the escape-budget gate in internal/lint/escapes.
const Directive = "//mindgap:noalloc"

type checker struct {
	pass  *analysis.Pass
	decls map[*types.Func]*ast.FuncDecl
	scope map[*types.Func]*types.Func // fn -> annotated root (fn itself if annotated)
}

func run(pass *analysis.Pass) (any, error) {
	c := &checker{
		pass:  pass,
		decls: make(map[*types.Func]*ast.FuncDecl),
		scope: make(map[*types.Func]*types.Func),
	}
	var annotated []*types.Func
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			c.decls[fn] = fd
			if hasDirective(fd.Doc) {
				annotated = append(annotated, fn)
			}
		}
	}
	if len(annotated) == 0 {
		return nil, nil
	}
	sort.Slice(annotated, func(i, j int) bool {
		return c.decls[annotated[i]].Pos() < c.decls[annotated[j]].Pos()
	})

	// Propagate: BFS over static same-package references (calls and
	// typed-event registrations) from the annotated roots. FuncLit
	// bodies are excluded from edge collection — a closure is its own
	// finding, reported where it is created.
	queue := make([]*types.Func, 0, len(annotated))
	for _, fn := range annotated {
		c.scope[fn] = fn
		queue = append(queue, fn)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, callee := range c.edges(c.decls[fn]) {
			if _, seen := c.scope[callee]; !seen {
				c.scope[callee] = c.scope[fn]
				queue = append(queue, callee)
			}
		}
	}

	for fn, fd := range c.decls {
		if c.scope[fn] != nil {
			c.check(fn, fd)
		}
	}
	return nil, nil
}

// hasDirective reports whether the doc group contains a
// //mindgap:noalloc line.
func hasDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, cm := range doc.List {
		t := cm.Text
		if t == Directive || strings.HasPrefix(t, Directive+" ") {
			return true
		}
	}
	return false
}

// edges returns the same-package declared functions referenced by the
// body, in source order, skipping closures and panic arguments.
func (c *checker) edges(fd *ast.FuncDecl) []*types.Func {
	var out []*types.Func
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if isPanic(c.pass, n) {
				return false
			}
		case *ast.Ident:
			if fn, ok := c.pass.TypesInfo.Uses[n].(*types.Func); ok && c.decls[fn] != nil {
				out = append(out, fn)
			}
		}
		return true
	})
	return out
}

func isPanic(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// origin describes why fn carries the obligation, for diagnostics.
func (c *checker) origin(fn *types.Func) string {
	root := c.scope[fn]
	if root == fn {
		return "annotated " + Directive
	}
	return "on the " + Directive + " path via " + root.Name()
}

// closureAPI maps closure-scheduling methods to their typed
// replacements, keyed by "pkgpath.Recv.Method".
var closureAPI = map[string]string{
	"mindgap/internal/sim.Engine.At":         "AtE",
	"mindgap/internal/sim.Engine.After":      "AfterE",
	"mindgap/internal/sim.Engine.AfterTimer": "AfterTimerE",
	"mindgap/internal/fabric.Link.Send":      "SendT",
	"mindgap/internal/fabric.Link.SendEx":    "SendTEx",
}

func methodKey(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || fn.Pkg() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return fn.Pkg().Path() + "." + n.Obj().Name() + "." + fn.Name()
}

func (c *checker) check(fn *types.Func, fd *ast.FuncDecl) {
	why := c.origin(fn)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isPanic(c.pass, n) {
				return false // a dying simulation may allocate its message
			}
			c.checkCall(n, why)
		case *ast.FuncLit:
			c.checkFuncLit(n, fd, why)
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					lt := c.pass.TypesInfo.TypeOf(n.Lhs[i])
					if lt != nil && isInterface(lt) {
						c.checkBox(n.Rhs[i], lt, why)
					}
				}
			}
		case *ast.CompositeLit:
			c.checkCompositeLit(n, why)
		}
		return true
	})
}

func (c *checker) checkCall(call *ast.CallExpr, why string) {
	tv, ok := c.pass.TypesInfo.Types[call.Fun]
	if !ok {
		return
	}
	if tv.IsType() {
		// Conversion. string(x) from a non-string operand allocates.
		t := tv.Type
		if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 && len(call.Args) == 1 {
			at := c.pass.TypesInfo.Types[call.Args[0]]
			if at.Value == nil && at.Type != nil {
				if ab, ok := at.Type.Underlying().(*types.Basic); !ok || ab.Info()&types.IsString == 0 {
					allow.Reportf(c.pass, call.Pos(), "conversion to string allocates (%s)", why)
				}
			}
		}
		return
	}
	var callee *types.Func
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		callee, _ = c.pass.TypesInfo.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		callee, _ = c.pass.TypesInfo.Uses[fun.Sel].(*types.Func)
	}
	if callee != nil {
		if callee.Pkg() != nil && callee.Pkg().Path() == "fmt" {
			allow.Reportf(c.pass, call.Pos(), "fmt.%s allocates on every call (%s)", callee.Name(), why)
			return // boxing into its ...any params is subsumed
		}
		if typed, ok := closureAPI[methodKey(callee)]; ok {
			allow.Reportf(c.pass, call.Pos(),
				"%s schedules a closure and allocates; use the typed %s form (%s)",
				callee.Name(), typed, why)
		}
	}
	// Interface boxing at argument positions.
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis != token.NoPos {
				continue // s... passes the slice through
			}
			pt = sig.Params().At(np - 1).Type().(*types.Slice).Elem()
		case i < np:
			pt = sig.Params().At(i).Type()
		default:
			continue
		}
		if isInterface(pt) {
			c.checkBox(arg, pt, why)
		}
	}
}

func (c *checker) checkFuncLit(lit *ast.FuncLit, encl *ast.FuncDecl, why string) {
	var captured []string
	seen := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := c.pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || seen[obj] || obj.IsField() {
			return true
		}
		if obj.Pos() >= encl.Pos() && obj.Pos() < lit.Pos() {
			seen[obj] = true
			captured = append(captured, obj.Name())
		}
		return true
	})
	if len(captured) == 0 {
		return
	}
	sort.Strings(captured)
	if len(captured) > 3 {
		captured = append(captured[:3], "...")
	}
	allow.Reportf(c.pass, lit.Pos(),
		"closure captures %s and allocates per event; use a typed EventFunc with recv/obj/arg (%s)",
		strings.Join(captured, ", "), why)
}

func (c *checker) checkCompositeLit(lit *ast.CompositeLit, why string) {
	t := c.pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return
	}
	// Through the pointer for &T{...}.
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i, elt := range lit.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				id, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				for j := 0; j < u.NumFields(); j++ {
					if f := u.Field(j); f.Name() == id.Name {
						if isInterface(f.Type()) {
							c.checkBox(kv.Value, f.Type(), why)
						}
						break
					}
				}
			} else if i < u.NumFields() {
				if f := u.Field(i); isInterface(f.Type()) {
					c.checkBox(elt, f.Type(), why)
				}
			}
		}
	case *types.Slice:
		if isInterface(u.Elem()) {
			for _, elt := range lit.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					elt = kv.Value
				}
				c.checkBox(elt, u.Elem(), why)
			}
		}
	case *types.Array:
		if isInterface(u.Elem()) {
			for _, elt := range lit.Elts {
				c.checkBox(elt, u.Elem(), why)
			}
		}
	}
}

// checkBox reports if storing expr into an interface-typed slot
// allocates: constants and nil become static data, pointer-shaped
// values are stored inline, everything else boxes on the heap.
func (c *checker) checkBox(expr ast.Expr, _ types.Type, why string) {
	tv, ok := c.pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return
	}
	if tv.Value != nil || tv.IsNil() {
		return
	}
	t := tv.Type
	if isInterface(t) || pointerShaped(t) {
		return
	}
	if c.pass.TypesSizes != nil && c.pass.TypesSizes.Sizeof(t) == 0 {
		return
	}
	allow.Reportf(c.pass, expr.Pos(),
		"%s boxed into an interface allocates; pass a pointer or use the event's scalar arg (%s)",
		types.TypeString(t, types.RelativeTo(c.pass.Pkg)), why)
}

func isInterface(t types.Type) bool {
	// Type parameters' underlying type is their constraint interface,
	// so generics are conservatively skipped too.
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// pointerShaped reports whether t is represented as a single pointer
// word, following the compiler's direct-interface rule: pointers,
// channels, maps, funcs, unsafe.Pointer, and single-field structs /
// length-1 arrays thereof.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	case *types.Struct:
		return u.NumFields() == 1 && pointerShaped(u.Field(0).Type())
	case *types.Array:
		return u.Len() == 1 && pointerShaped(u.Elem())
	case *types.Interface:
		return true
	}
	return false
}
