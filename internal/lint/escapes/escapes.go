// Package escapes implements the mindgap-lint escape-budget gate.
//
// The hotalloc analyzer proves the absence of *syntactic* allocation
// (closures, boxing, fmt) in //mindgap:noalloc functions, but the
// compiler's escape analysis is the ground truth for what actually
// reaches the heap. This gate runs `go build -gcflags=-m`, attributes
// every "escapes to heap" / "moved to heap" diagnostic to the annotated
// function enclosing it, and compares the per-function counts against a
// checked-in budget file (ESCAPES.json at the module root). Any
// annotated function that gains a heap escape relative to its budget
// fails the build, so a regression in the zero-alloc hot path is caught
// at lint time rather than by a benchmark's allocs/op drifting later.
//
// Two classes of diagnostics inside annotated functions are exempt:
//
//   - Escapes on the line range of a panic(...) call. Panic arguments
//     (fmt.Sprintf and its operands) escape by construction, and a
//     panicking simulation is dead anyway — the steady-state path never
//     executes them.
//
//   - Escapes whose exact position also carries an "inlining call to"
//     diagnostic. The compiler reports an inlined callee's escapes at
//     the call site, so an annotated caller of the (deliberately
//     unannotated, deliberately allocating) event allocator would
//     otherwise inherit the free-list-miss &event{} allocation. The
//     callee is still compiled standalone and reports the same escape
//     at its own line, so annotated callees lose no coverage from this
//     exemption; only attribution across the inlining boundary is
//     suppressed. (Syntactic allocation at a call site — fmt, closures
//     — is hotalloc's job and is caught before this gate runs.)
package escapes

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"mindgap/internal/lint/hotalloc"
)

// BudgetFile is the name of the checked-in budget, relative to the
// module root.
const BudgetFile = "ESCAPES.json"

// Budget maps a fully qualified function key — e.g.
// "mindgap/internal/sim.(*Engine).AtE" — to its allowed number of heap
// escapes. The checked-in budget is all zeros; the file exists so that
// a future, deliberate exception is an explicit reviewed diff rather
// than a silent drift.
type Budget map[string]int

// fn is one annotated function found in the source tree.
type fn struct {
	key        string // pkgpath.(*Recv).Name
	file       string // path relative to module root, slash-separated
	start, end int    // body line range, inclusive
	panics     []lineRange
}

type lineRange struct{ start, end int }

// ModuleDir resolves the root directory of the main module.
func ModuleDir() (string, error) {
	out, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
	if err != nil {
		return "", fmt.Errorf("escapes: resolving module root: %w", err)
	}
	return strings.TrimSpace(string(out)), nil
}

// listPackages returns Dir and GoFiles for every package in the module.
func listPackages(moduleDir string) (dirs map[string][]string, pkgPaths map[string]string, err error) {
	cmd := exec.Command("go", "list", "-e", "-json=Dir,ImportPath,GoFiles", "./...")
	cmd.Dir = moduleDir
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("escapes: go list: %w", err)
	}
	dirs = map[string][]string{}
	pkgPaths = map[string]string{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		var p struct {
			Dir, ImportPath string
			GoFiles         []string
		}
		if err := dec.Decode(&p); err != nil {
			return nil, nil, fmt.Errorf("escapes: decoding go list output: %w", err)
		}
		dirs[p.Dir] = p.GoFiles
		pkgPaths[p.Dir] = p.ImportPath
	}
	return dirs, pkgPaths, nil
}

// funcKey renders a FuncDecl as "(*Recv).Name", "Recv.Name" or "Name".
// Type parameters are dropped: the budget is per generic origin, with
// shape-instantiation diagnostics deduplicated by source position.
func funcKey(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	t := d.Recv.List[0].Type
	ptr := false
	if s, ok := t.(*ast.StarExpr); ok {
		ptr = true
		t = s.X
	}
	if ix, ok := t.(*ast.IndexExpr); ok {
		t = ix.X
	}
	if ix, ok := t.(*ast.IndexListExpr); ok {
		t = ix.X
	}
	name := "?"
	if id, ok := t.(*ast.Ident); ok {
		name = id.Name
	}
	if ptr {
		return "(*" + name + ")." + d.Name.Name
	}
	return name + "." + d.Name.Name
}

// annotated parses every package file and returns the //mindgap:noalloc
// functions with their line ranges and panic-call ranges.
func annotated(moduleDir string) ([]fn, error) {
	dirs, pkgPaths, err := listPackages(moduleDir)
	if err != nil {
		return nil, err
	}
	var fns []fn
	fset := token.NewFileSet()
	for dir, files := range dirs {
		for _, base := range files {
			path := filepath.Join(dir, base)
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("escapes: parsing %s: %w", path, err)
			}
			rel, err := filepath.Rel(moduleDir, path)
			if err != nil {
				return nil, err
			}
			rel = filepath.ToSlash(rel)
			for _, decl := range f.Decls {
				d, ok := decl.(*ast.FuncDecl)
				if !ok || d.Body == nil || !hasDirective(d) {
					continue
				}
				e := fn{
					key:   pkgPaths[dir] + "." + funcKey(d),
					file:  rel,
					start: fset.Position(d.Body.Pos()).Line,
					end:   fset.Position(d.Body.End()).Line,
				}
				ast.Inspect(d.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
						e.panics = append(e.panics, lineRange{
							start: fset.Position(call.Pos()).Line,
							end:   fset.Position(call.End()).Line,
						})
					}
					return true
				})
				fns = append(fns, e)
			}
		}
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].key < fns[j].key })
	return fns, nil
}

// hasDirective reports whether the declaration's doc group contains the
// //mindgap:noalloc directive (same recognition rule as hotalloc).
func hasDirective(d *ast.FuncDecl) bool {
	if d.Doc == nil {
		return false
	}
	for _, c := range d.Doc.List {
		if c.Text == hotalloc.Directive || strings.HasPrefix(c.Text, hotalloc.Directive+" ") {
			return true
		}
	}
	return false
}

// diagLine matches one `-m` diagnostic: path:line:col: message.
var diagLine = regexp.MustCompile(`^([^:#][^:]*\.go):(\d+):(\d+): (.*)$`)

type pos struct {
	file      string
	line, col int
}

// Collect runs the compiler's escape analysis over the whole module and
// returns the observed per-annotated-function escape counts. Every
// annotated function appears in the result, so a function with zero
// escapes is an explicit zero, and Check can detect budget entries for
// functions that no longer exist.
func Collect(moduleDir string) (Budget, error) {
	fns, err := annotated(moduleDir)
	if err != nil {
		return nil, err
	}

	// -a defeats the build cache: a cached package emits no diagnostics,
	// which would silently under-count. The rebuild is the price of a
	// trustworthy reading.
	cmd := exec.Command("go", "build", "-a", "-gcflags=-m", "./...")
	cmd.Dir = moduleDir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	cmd.Stdout = os.Stdout
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("escapes: go build -gcflags=-m failed: %w\n%s", err, stderr.String())
	}

	// First pass: positions that are inlined call sites. Escapes there
	// belong to the (standalone-compiled) callee, not the caller.
	inlined := map[pos]bool{}
	type escape struct {
		p   pos
		msg string
	}
	var escs []escape
	seen := map[string]bool{} // dedupe shape-instantiation repeats
	for _, line := range strings.Split(stderr.String(), "\n") {
		m := diagLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		l, _ := strconv.Atoi(m[2])
		c, _ := strconv.Atoi(m[3])
		p := pos{file: filepath.ToSlash(m[1]), line: l, col: c}
		msg := m[4]
		switch {
		case strings.HasPrefix(msg, "inlining call to "):
			inlined[p] = true
		case strings.HasSuffix(msg, "escapes to heap") || strings.HasPrefix(msg, "moved to heap"):
			if !seen[line] {
				seen[line] = true
				escs = append(escs, escape{p: p, msg: msg})
			}
		}
	}

	counts := Budget{}
	for _, f := range fns {
		counts[f.key] = 0
	}
	for _, e := range escs {
		if inlined[e.p] {
			continue
		}
		for i := range fns {
			f := &fns[i]
			if f.file != e.p.file || e.p.line < f.start || e.p.line > f.end {
				continue
			}
			exempt := false
			for _, pr := range f.panics {
				if e.p.line >= pr.start && e.p.line <= pr.end {
					exempt = true
					break
				}
			}
			if !exempt {
				counts[f.key]++
			}
			break
		}
	}
	return counts, nil
}

// Load reads the budget file under moduleDir.
func Load(moduleDir string) (Budget, error) {
	data, err := os.ReadFile(filepath.Join(moduleDir, BudgetFile))
	if err != nil {
		return nil, err
	}
	var b Budget
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("escapes: parsing %s: %w", BudgetFile, err)
	}
	return b, nil
}

// Save writes the budget file with sorted keys.
func Save(moduleDir string, b Budget) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(moduleDir, BudgetFile), append(data, '\n'), 0o644)
}

// Check compares observed counts against the budget and returns one
// human-readable violation per mismatch, sorted. An empty slice means
// the gate passes.
func Check(observed, budget Budget) []string {
	var out []string
	for key, n := range observed {
		want, ok := budget[key]
		switch {
		case !ok:
			out = append(out, fmt.Sprintf("%s: annotated //mindgap:noalloc but missing from %s (run mindgap-lint -escapes -write and review the diff)", key, BudgetFile))
		case n > want:
			out = append(out, fmt.Sprintf("%s: %d heap escape(s), budget allows %d — the zero-alloc hot path regressed", key, n, want))
		case n < want:
			out = append(out, fmt.Sprintf("%s: %d heap escape(s), budget allows %d — tighten the budget (run mindgap-lint -escapes -write)", key, n, want))
		}
	}
	for key := range budget {
		if _, ok := observed[key]; !ok {
			out = append(out, fmt.Sprintf("%s: budgeted in %s but no //mindgap:noalloc function with this name exists (stale entry?)", key, BudgetFile))
		}
	}
	sort.Strings(out)
	return out
}
