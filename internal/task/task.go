// Package task defines the application-level request that flows through
// every scheduling system in the reproduction. Requests carry the synthetic
// "fake work" service time of the paper's evaluation (§4.1) and the
// bookkeeping needed for preemption: a request preempted on one worker can
// later resume on any other (§3.4.1).
package task

import (
	"time"

	"mindgap/internal/sim"
)

// NoWorker is the LastWorker value of a request never assigned to a core.
const NoWorker = -1

// Request is one application-level request.
type Request struct {
	// ID uniquely identifies the request for its whole lifetime.
	ID uint64
	// ClientID identifies the issuing client (response routing).
	ClientID uint32
	// Key is an application key (e.g. a KVS key) used by flow-steering
	// baselines such as Flow Director; informed schedulers ignore it.
	Key uint64
	// Arrival is the instant the client transmitted the request.
	Arrival sim.Time
	// Service is the total fake-work service time.
	Service time.Duration
	// Remaining is the unfinished portion; it starts equal to Service and
	// shrinks across preemptions.
	Remaining time.Duration
	// Preemptions counts how many times the request was preempted.
	Preemptions int
	// Assignments counts dispatches to a worker (1 + Preemptions that led
	// to reassignment).
	Assignments int
	// LastWorker is the worker that most recently executed the request, or
	// NoWorker.
	LastWorker int
	// Enqueued is the last instant the request entered a scheduler queue;
	// policies and debugging use it.
	Enqueued sim.Time
	// FlowID identifies the parent flow for flow-keyed workloads; zero
	// for the classic i.i.d. request streams.
	FlowID FlowID
	// FlowState points at the parent flow's pooled state record. A
	// flow-aware system reads it once at classification and must nil it
	// there: the record can be recycled the instant the flow's last
	// reference drops, so holding the pointer past classification is a
	// use-after-release bug waiting to happen.
	FlowState *Flow
	// Packets is how many wire packets this request stands for (a
	// DPDK-style batch for flow workloads); zero means a single packet.
	Packets uint32
	// Gen counts reuses of this struct through a Pool. A component that
	// must detect whether "its" request was recycled under it snapshots
	// (pointer, Gen) and compares later.
	Gen uint32
	// pooled guards against double release.
	pooled bool
}

// New creates a request with the full service time remaining.
func New(id uint64, arrival sim.Time, service time.Duration) *Request {
	return &Request{
		ID:         id,
		Arrival:    arrival,
		Service:    service,
		Remaining:  service,
		LastWorker: NoWorker,
	}
}

// Done reports whether the request has no work left.
//
//mindgap:noalloc
func (r *Request) Done() bool { return r.Remaining <= 0 }

// Pool recycles Request objects. A simulation sweep allocates one request
// per simulated arrival — millions per run — and in steady state every one
// is short-lived; the pool removes that allocation entirely. Recycling is
// generation-guarded: each reuse bumps Gen, and Put panics on double
// release. Requests that leave the system without an explicit release
// (dropped on a full queue deep inside a model) are simply collected by
// the GC; the pool replenishes itself on demand.
//
// The free list is capped at the measured high-water mark of concurrently
// live requests — the same adaptive policy as the engine's event free
// list — so the pool's footprint tracks the workload's actual in-flight
// peak rather than a magic constant.
type Pool struct {
	free []*Request
	live int // currently checked-out requests
	high int // peak live; caps the free list
}

// Get returns a request with the full service time remaining, recycled
// from the pool when possible.
//
//mindgap:noalloc
func (p *Pool) Get(id uint64, arrival sim.Time, service time.Duration) *Request {
	p.live++
	if p.live > p.high {
		p.high = p.live
	}
	n := len(p.free)
	if n == 0 {
		return New(id, arrival, service)
	}
	r := p.free[n-1]
	p.free[n-1] = nil
	p.free = p.free[:n-1]
	*r = Request{
		ID:         id,
		Arrival:    arrival,
		Service:    service,
		Remaining:  service,
		LastWorker: NoWorker,
		Gen:        r.Gen, // survives recycling; bumped at Put
	}
	return r
}

// Put releases a request back to the pool. The caller must hold the only
// live reference (a request is released exactly once, at the instant its
// response reaches the client). Put panics on double release.
//
//mindgap:noalloc
func (p *Pool) Put(r *Request) {
	if r.pooled {
		panic("task: Put on an already-released request")
	}
	r.pooled = true
	r.Gen++
	p.live--
	if len(p.free) < p.high {
		p.free = append(p.free, r)
	}
}

// Live returns the number of checked-out requests.
func (p *Pool) Live() int { return p.live }

// HighWater returns the peak number of simultaneously live requests.
func (p *Pool) HighWater() int { return p.high }

// Latency returns the client-observed latency assuming the response reached
// the client at instant respAt.
//
//mindgap:noalloc
func (r *Request) Latency(respAt sim.Time) time.Duration {
	return respAt.Sub(r.Arrival)
}
