// Fixture reproducing the PR-7 flight-control credit leak: a response
// path that recycles the request races a FINISH notification that
// re-reads the request's identity. Reverting the snapshot fix must
// re-introduce exactly the diagnostic below.
package core

import (
	"mindgap/internal/sim"
	"mindgap/internal/task"
)

type sys struct {
	eng  *sim.Engine
	pool *task.Pool
	done func(*task.Request) // delivery: ownership returns to the pool
}

type worker struct {
	s       *sys
	credits int
}

// respond delivers the response. The delivery callback recycles the
// request, so respond is a releasing callback.
func respond(recv, obj any, _ uint64) {
	s := recv.(*sys)
	req := obj.(*task.Request)
	s.done(req)
}

// notifyFinish fires when the FINISH notification crosses the fabric —
// in simulated time, possibly after respond already ran.
func notifyFinish(recv, obj any, _ uint64) {
	w := recv.(*worker)
	req := obj.(*task.Request)
	w.credits++
	_ = req.ID // want `read of recyclable field ID in event callback notifyFinish, which can fire after respond releases the request back to the pool \(both are scheduled in responseBuilt\); snapshot the field into the event arg at build time or guard the read with a Gen compare`
}

// notifySnapshot is the fixed shape: the identity travels in the
// event's scalar arg, snapshotted at build time, and the pointer is
// never re-read.
func notifySnapshot(recv, _ any, arg uint64) {
	w := recv.(*worker)
	w.credits++
	_ = arg
}

// responseBuilt schedules the response delivery and the FINISH
// notification for the same request: the hazard pairing.
func responseBuilt(recv, obj any, _ uint64) {
	w := recv.(*worker)
	req := obj.(*task.Request)
	w.s.eng.AfterE(1, respond, w.s, req, 0)
	w.s.eng.AfterE(2, notifyFinish, w, req, 0)
	// Reading req.ID here, at build time, is the sanctioned snapshot
	// idiom: the request is still live while its events are scheduled.
	w.s.eng.AfterE(2, notifySnapshot, w, nil, req.ID)
}
