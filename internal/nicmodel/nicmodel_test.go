package nicmodel

import (
	"testing"
	"time"

	"mindgap/internal/sim"
	"mindgap/internal/wire"
)

func newNIC(eng *sim.Engine) *NIC {
	return New(eng, Config{InternalLatency: 2560 * time.Nanosecond, RingCap: 4})
}

func TestSteeringByMAC(t *testing.T) {
	eng := sim.New()
	nic := newNIC(eng)
	a := nic.AddFunction("arm", MACForIndex(0), 0)
	b := nic.AddFunction("w0", MACForIndex(1), 0)

	if !nic.Send(Frame{Dst: b.MAC(), Src: a.MAC(), Bytes: 64, Payload: "hello"}) {
		t.Fatal("send rejected")
	}
	eng.Run()
	if eng.Now() != sim.Time(2560) {
		t.Fatalf("delivery at %v, want 2.56µs", eng.Now())
	}
	if a.Pending() != 0 || b.Pending() != 1 {
		t.Fatalf("pending: arm=%d w0=%d", a.Pending(), b.Pending())
	}
	f, ok := b.Poll()
	if !ok || f.Payload != "hello" || f.Src != a.MAC() {
		t.Fatalf("polled %+v, %v", f, ok)
	}
	if nic.Steered() != 1 {
		t.Fatalf("Steered = %d", nic.Steered())
	}
}

func TestUnknownMACDropped(t *testing.T) {
	eng := sim.New()
	nic := newNIC(eng)
	nic.AddFunction("arm", MACForIndex(0), 0)
	if nic.Send(Frame{Dst: wire.MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, Bytes: 64}) {
		t.Fatal("unknown MAC accepted")
	}
	if nic.UnknownMACDrops() != 1 {
		t.Fatalf("UnknownMACDrops = %d", nic.UnknownMACDrops())
	}
}

func TestRingOverflowDrops(t *testing.T) {
	eng := sim.New()
	nic := newNIC(eng)
	src := nic.AddFunction("src", MACForIndex(0), 0)
	dst := nic.AddFunction("dst", MACForIndex(1), 2) // tiny ring
	for i := 0; i < 5; i++ {
		nic.Send(Frame{Dst: dst.MAC(), Src: src.MAC(), Bytes: 64, Payload: i})
	}
	eng.Run()
	if dst.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2 (ring cap)", dst.Pending())
	}
	if dst.RingDrops() != 3 {
		t.Fatalf("RingDrops = %d, want 3", dst.RingDrops())
	}
	if dst.Received() != 2 {
		t.Fatalf("Received = %d", dst.Received())
	}
	// Drain and verify FIFO order of survivors.
	f1, _ := dst.Poll()
	f2, _ := dst.Poll()
	if f1.Payload != 0 || f2.Payload != 1 {
		t.Fatalf("ring order: %v %v", f1.Payload, f2.Payload)
	}
	if _, ok := dst.Poll(); ok {
		t.Fatal("poll on empty ring succeeded")
	}
}

func TestOnRxWakeup(t *testing.T) {
	eng := sim.New()
	nic := newNIC(eng)
	src := nic.AddFunction("src", MACForIndex(0), 0)
	dst := nic.AddFunction("dst", MACForIndex(1), 0)
	woke := 0
	dst.OnRx(func() {
		woke++
		if dst.Pending() == 0 {
			t.Fatal("OnRx fired before frame landed in ring")
		}
	})
	nic.Send(Frame{Dst: dst.MAC(), Src: src.MAC(), Bytes: 64})
	nic.Send(Frame{Dst: dst.MAC(), Src: src.MAC(), Bytes: 64})
	eng.Run()
	if woke != 2 {
		t.Fatalf("OnRx fired %d times, want 2", woke)
	}
}

func TestDuplicateMACPanics(t *testing.T) {
	eng := sim.New()
	nic := newNIC(eng)
	nic.AddFunction("a", MACForIndex(7), 0)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate MAC accepted")
		}
	}()
	nic.AddFunction("b", MACForIndex(7), 0)
}

func TestMACForIndexUniqueAndLocal(t *testing.T) {
	seen := map[wire.MAC]bool{}
	for i := 0; i < 1000; i++ {
		m := MACForIndex(i)
		if seen[m] {
			t.Fatalf("duplicate MAC at index %d", i)
		}
		seen[m] = true
		if m[0]&0x02 == 0 {
			t.Fatal("MAC not locally administered")
		}
	}
}

func TestPerFunctionFIFOUnderLoad(t *testing.T) {
	eng := sim.New()
	nic := New(eng, Config{InternalLatency: time.Microsecond, RingCap: 1024})
	src := nic.AddFunction("src", MACForIndex(0), 0)
	dst := nic.AddFunction("dst", MACForIndex(1), 0)
	const n = 500
	for i := 0; i < n; i++ {
		nic.Send(Frame{Dst: dst.MAC(), Src: src.MAC(), Bytes: 64 + i%256, Payload: i})
	}
	eng.Run()
	for i := 0; i < n; i++ {
		f, ok := dst.Poll()
		if !ok || f.Payload != i {
			t.Fatalf("frame %d out of order: %v %v", i, f.Payload, ok)
		}
	}
	if len(nic.Functions()) != 2 {
		t.Fatalf("Functions() = %d", len(nic.Functions()))
	}
	if dst.Name() != "dst" {
		t.Fatalf("Name = %q", dst.Name())
	}
}
