// Fixture loaded as package path "mindgap/internal/stats": float
// equality in sim/stats code is reported.
package stats

const eps = 1e-9

func positives(a, b float64, f float32) bool {
	if a == b { // want `floating-point == comparison is not exact`
		return true
	}
	if f != 0 { // want `floating-point != comparison is not exact`
		return false
	}
	interp := a*0.5 + b*0.5
	return interp != b // want `floating-point != comparison is not exact`
}

// Negative: both operands are compile-time constants; the comparison is
// exact by the spec.
func constants() bool {
	return eps == 1e-9
}

// Negative: integer comparisons and ordered float comparisons are fine.
func ordered(a, b float64, i, j int) bool {
	if i == j {
		return true
	}
	return a <= b || a > b
}

// Negative: a well-formed suppression silences the diagnostic.
func suppressed(cdf []float64, u float64) int {
	//lint:allow floateq CDF entries are assigned, not computed, so exact match is intended
	if len(cdf) > 0 && cdf[0] == u {
		return 0
	}
	return -1
}
