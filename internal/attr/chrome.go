package attr

import (
	"fmt"

	"mindgap/internal/sim"
	"mindgap/internal/trace"
)

// Chrome trace export extensions: the collector renders its retained
// timelines and decision stream as additional tracks alongside the trace
// package's scheduler/worker view.
//
//   - pid 3 "phases": one thread row per phase; every retained request
//     contributes a complete slice (ph "X") on the row of each phase it
//     passed through, so a phase row shows when requests occupied that
//     phase and the tail's host-queue pile-up is visible at a glance.
//   - pid 4 "audit": counter tracks (ph "C") from the retained decision
//     samples — cumulative mis-dispatch rate, estimate staleness, and
//     per-decision excess backlog.
const (
	chromePidPhases = 3
	chromePidAudit  = 4
)

func toMicros(t sim.Time) float64 { return float64(t) / 1e3 }

// ChromeEvents renders the retained timelines (KeepTimelines) and audit
// samples (AuditSamples) as Chrome trace events, ready to append to a
// trace.Buffer export via trace.WriteChromeWith.
func (c *Collector) ChromeEvents() []trace.ChromeEvent {
	if c == nil {
		return nil
	}
	var events []trace.ChromeEvent
	if len(c.timelines) > 0 {
		events = append(events, metaEvent("process_name", chromePidPhases, 0, "phases"))
		for p := Phase(0); p < PhaseCount; p++ {
			events = append(events,
				metaEvent("thread_name", chromePidPhases, int(p), p.String()))
		}
		for _, tl := range c.timelines {
			name := fmt.Sprintf("req %d", tl.ReqID)
			for _, seg := range tl.Segments {
				dur := toMicros(seg.To) - toMicros(seg.From)
				events = append(events, trace.ChromeEvent{
					Name: name, Cat: "phase", Ph: "X",
					Ts: toMicros(seg.From), Dur: &dur,
					Pid: chromePidPhases, Tid: int(seg.Phase),
					Args: map[string]any{"phase": seg.Phase.String()},
				})
			}
		}
	}
	if len(c.audit.samples) > 0 {
		events = append(events, metaEvent("process_name", chromePidAudit, 0, "audit"))
		for _, s := range c.audit.samples {
			rate := 0.0
			if s.Decisions > 0 {
				rate = float64(s.MisDispatches) / float64(s.Decisions)
			}
			ts := toMicros(s.At)
			events = append(events,
				trace.ChromeEvent{
					Name: "mis_dispatch_rate", Ph: "C", Ts: ts,
					Pid: chromePidAudit, Tid: 0,
					Args: map[string]any{"rate": rate},
				},
				trace.ChromeEvent{
					Name: "staleness_us", Ph: "C", Ts: ts,
					Pid: chromePidAudit, Tid: 0,
					Args: map[string]any{"us": float64(s.Staleness) / 1e3},
				},
				trace.ChromeEvent{
					Name: "excess_us", Ph: "C", Ts: ts,
					Pid: chromePidAudit, Tid: 0,
					Args: map[string]any{"us": float64(s.Excess) / 1e3},
				},
			)
		}
	}
	return events
}

func metaEvent(name string, pid, tid int, value string) trace.ChromeEvent {
	return trace.ChromeEvent{
		Name: name, Ph: "M", Pid: pid, Tid: tid,
		Args: map[string]any{"name": value},
	}
}
