module mindgap

go 1.22
