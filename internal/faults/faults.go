// Package faults is the deterministic fault-schedule engine of the
// adverse-conditions layer: a serializable Spec describing NIC ARM-core
// crash/slowdown windows, NIC↔host fabric loss and latency-spike bursts,
// and host worker stalls, compiled into a Schedule that systems consult
// while they run.
//
// The paper's argument (§5.1) is that a NIC-resident scheduler lives or
// dies by its behaviour under adverse conditions — wimpy ARM cores, a
// 2.56 µs fabric, no interrupt path — and related systems (SuperNIC,
// Wave) treat NIC-core failure and saturation as first-class concerns.
// This package supplies the adversity: every fault is a deterministic
// function of (Spec, seed), scheduled on the simulation clock, so a
// faulted run is exactly as reproducible as a healthy one.
//
// Determinism contract:
//   - The Schedule owns its own random stream, derived from the scenario
//     seed; it never touches the global rand or the wall clock.
//   - Stochastic windows (loss/delay bursts) are materialized once, at
//     Schedule construction, in a fixed draw order.
//   - Per-message loss draws happen in simulation-event order, which the
//     engine already fixes.
package faults

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"
)

// Duration is a time.Duration that serializes as a human-readable string
// ("500µs") in scenario files; plain nanosecond numbers are also accepted
// on decode. It mirrors scenario.Duration, which cannot be imported here
// (the scenario package embeds this package's Spec).
type Duration time.Duration

// D converts back to the standard library type.
func (d Duration) D() time.Duration { return time.Duration(d) }

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("faults: bad duration %q: %v", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return err
	}
	*d = Duration(n)
	return nil
}

// Window is one half-open fault interval [Start, End) on the simulation
// clock.
type Window struct {
	Start Duration `json:"start"`
	End   Duration `json:"end"`
}

// Bursts generates stochastic fault windows from the schedule's seeded
// stream: N windows with uniform starts in [0, Horizon) and exponential
// lengths of mean MeanLen. Burst generation is part of the Schedule's
// identity — same spec and seed, same windows.
type Bursts struct {
	N       int      `json:"n"`
	Horizon Duration `json:"horizon"`
	MeanLen Duration `json:"mean_len"`
}

// Spec is the serializable fault schedule of one scenario. The zero
// value (and a nil *Spec) means a healthy system; every field is
// optional and omitted when unset so healthy specs encode — and
// fingerprint — exactly as they did before this block existed.
type Spec struct {
	// NICCrash lists windows during which every NIC ARM core (networker,
	// queue manager, TX, RX) is dead: items queued at those stages make
	// no progress until the window closes.
	NICCrash []Window `json:"nic_crash,omitempty"`
	// NICSlow lists windows during which the ARM cores run degraded,
	// processing work at NICSlowFactor of their healthy rate (0.25 means
	// 4× slower). Crash windows override overlapping slow windows.
	NICSlow       []Window `json:"nic_slow,omitempty"`
	NICSlowFactor float64  `json:"nic_slow_factor,omitempty"`
	// WorkerStall lists windows during which the stalled host workers
	// make no execution progress (e.g. an antagonist pinning the core).
	// StallWorkers selects the affected worker ids; empty means all.
	WorkerStall  []Window `json:"worker_stall,omitempty"`
	StallWorkers []int    `json:"stall_workers,omitempty"`
	// LinkLoss drops each NIC↔host fabric message with probability
	// LossRate while inside a loss window; LossBursts adds generated
	// windows to the explicit list.
	LinkLoss   []Window `json:"link_loss,omitempty"`
	LossRate   float64  `json:"loss_rate,omitempty"`
	LossBursts *Bursts  `json:"loss_bursts,omitempty"`
	// LinkDelay adds DelayExtra latency to every NIC↔host fabric message
	// delivered inside a delay window; DelayBursts adds generated
	// windows.
	LinkDelay   []Window `json:"link_delay,omitempty"`
	DelayExtra  Duration `json:"delay_extra,omitempty"`
	DelayBursts *Bursts  `json:"delay_bursts,omitempty"`
	// Timeout arms a per-dispatch timer at the NIC: a dispatched request
	// whose completion (or preemption) notification has not arrived
	// within the timeout is declared lost, its credit reclaimed, and the
	// request retried — Retries times, with the timeout multiplied by
	// Backoff on each attempt (0 means 2). Zero disables the machinery.
	Timeout Duration `json:"timeout,omitempty"`
	Retries int      `json:"retries,omitempty"`
	Backoff float64  `json:"backoff,omitempty"`
	// Degrade enables graceful degradation: while the NIC ARM cores are
	// crashed, arrivals bypass the dead dispatcher pipeline and are
	// hash-steered (RSS-style) straight to worker VF rings, trading
	// informed scheduling for continued goodput.
	Degrade bool `json:"degrade,omitempty"`
}

// Empty reports whether the spec describes a healthy system.
func (s *Spec) Empty() bool {
	return s == nil || (len(s.NICCrash) == 0 && len(s.NICSlow) == 0 &&
		len(s.WorkerStall) == 0 && len(s.LinkLoss) == 0 && s.LossBursts == nil &&
		len(s.LinkDelay) == 0 && s.DelayBursts == nil && s.Timeout == 0 && !s.Degrade)
}

// Encode renders the spec in the canonical form: compact JSON. The
// scenario layer embeds Spec, so checked-in files take the scenario
// package's two-space indentation; Encode exists for round-trip tests
// and the fuzz harness.
func (s Spec) Encode() ([]byte, error) {
	return json.Marshal(s)
}

// Decode parses a fault schedule, rejecting unknown fields so a typo'd
// window list cannot silently describe a healthy system.
func Decode(b []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("faults: decode spec: %w", err)
	}
	return s, nil
}

// backoff returns the effective retry backoff multiplier.
func (s Spec) backoff() float64 {
	if s.Backoff <= 0 {
		return 2
	}
	return s.Backoff
}

func validateWindows(kind string, ws []Window) error {
	for _, w := range ws {
		if w.Start < 0 || w.End <= w.Start {
			return fmt.Errorf("faults: bad %s window [%v, %v)", kind, w.Start.D(), w.End.D())
		}
	}
	return nil
}

func validateBursts(kind string, b *Bursts) error {
	if b == nil {
		return nil
	}
	if b.N <= 0 || b.Horizon <= 0 || b.MeanLen <= 0 {
		return fmt.Errorf("faults: %s bursts need n > 0, horizon > 0, mean_len > 0 (got n=%d horizon=%v mean_len=%v)",
			kind, b.N, b.Horizon.D(), b.MeanLen.D())
	}
	return nil
}

// Validate checks the schedule's internal coherence. It does not need a
// system: per-system constraints (worker ids in range, degradation
// support) are enforced where the schedule is wired in.
func (s Spec) Validate() error {
	for _, v := range []struct {
		kind string
		ws   []Window
	}{
		{"nic_crash", s.NICCrash}, {"nic_slow", s.NICSlow},
		{"worker_stall", s.WorkerStall}, {"link_loss", s.LinkLoss},
		{"link_delay", s.LinkDelay},
	} {
		if err := validateWindows(v.kind, v.ws); err != nil {
			return err
		}
	}
	if len(s.NICSlow) > 0 && (s.NICSlowFactor <= 0 || s.NICSlowFactor >= 1) {
		return fmt.Errorf("faults: nic_slow needs nic_slow_factor in (0, 1), got %g", s.NICSlowFactor)
	}
	if len(s.NICSlow) == 0 && s.NICSlowFactor != 0 { //lint:allow floateq exact zero means "field unset", not a computed value
		return fmt.Errorf("faults: nic_slow_factor set without nic_slow windows")
	}
	if len(s.StallWorkers) > 0 && len(s.WorkerStall) == 0 {
		return fmt.Errorf("faults: stall_workers set without worker_stall windows")
	}
	for _, w := range s.StallWorkers {
		if w < 0 {
			return fmt.Errorf("faults: negative stall worker id %d", w)
		}
	}
	hasLossWins := len(s.LinkLoss) > 0 || s.LossBursts != nil
	if hasLossWins && (s.LossRate <= 0 || s.LossRate > 1) {
		return fmt.Errorf("faults: link loss needs loss_rate in (0, 1], got %g", s.LossRate)
	}
	if !hasLossWins && s.LossRate != 0 { //lint:allow floateq exact zero means "field unset", not a computed value
		return fmt.Errorf("faults: loss_rate set without link_loss windows or loss_bursts")
	}
	hasDelayWins := len(s.LinkDelay) > 0 || s.DelayBursts != nil
	if hasDelayWins && s.DelayExtra <= 0 {
		return fmt.Errorf("faults: link delay needs delay_extra > 0, got %v", s.DelayExtra.D())
	}
	if !hasDelayWins && s.DelayExtra != 0 {
		return fmt.Errorf("faults: delay_extra set without link_delay windows or delay_bursts")
	}
	if err := validateBursts("loss", s.LossBursts); err != nil {
		return err
	}
	if err := validateBursts("delay", s.DelayBursts); err != nil {
		return err
	}
	if s.Timeout < 0 {
		return fmt.Errorf("faults: negative timeout %v", s.Timeout.D())
	}
	if s.Retries < 0 {
		return fmt.Errorf("faults: negative retries %d", s.Retries)
	}
	if s.Timeout == 0 && s.Retries > 0 {
		return fmt.Errorf("faults: retries need a timeout")
	}
	if s.Backoff != 0 && s.Backoff < 1 { //lint:allow floateq exact zero means "field unset", not a computed value
		return fmt.Errorf("faults: backoff must be >= 1, got %g", s.Backoff)
	}
	return nil
}
