package experiment

import (
	"fmt"
	"strconv"

	"mindgap/internal/dist"
	"mindgap/internal/runner"
	"mindgap/internal/scenario"
	"mindgap/scenarios"
)

// This file bridges the checked-in scenario presets (scenarios/*.json)
// to the sweep runner: every figure and table definition is loaded from
// its preset, resolved against a run-time Quality, and compiled into
// runner series whose cache keys derive from Spec.Fingerprint().

// mustPreset loads a checked-in preset; the scenarios package's tests
// validate every embedded file, so a failure here is a programmer error.
func mustPreset(id string) scenario.Preset {
	p, err := scenarios.Load(id)
	if err != nil {
		panic(err)
	}
	return p
}

// qualityFor resolves the effective sample counts and seed for one spec:
// the run-time quality, overridden by any spec-pinned QualitySpec, with
// a spec-pinned seed winning over the quality's.
func qualityFor(sp scenario.Spec, q Quality) Quality {
	if sp.Quality != nil {
		switch sp.Quality.Preset {
		case "quick":
			q.Warmup, q.Measure = Quick.Warmup, Quick.Measure
		case "full":
			q.Warmup, q.Measure = Full.Warmup, Full.Measure
		}
		if sp.Quality.Warmup > 0 {
			q.Warmup = sp.Quality.Warmup
		}
		if sp.Quality.Measure > 0 {
			q.Measure = sp.Quality.Measure
		}
	}
	if sp.Seed != 0 {
		q.Seed = sp.Seed
	}
	return q
}

// specLoads resolves a spec's load declaration into offered-RPS values.
// Utilization-derived loads (rho) are computed here — never stored as
// floats in preset files — so the resulting values are bit-identical to
// the historical in-code formula rho·workers/mean.
func specLoads(sp scenario.Spec, svc dist.Distribution) []float64 {
	l := sp.Load
	switch {
	case l == nil:
		return nil
	case l.Grid != nil:
		return l.Grid.Points()
	case l.Rho > 0:
		return []float64{l.Rho * float64(sp.KnobsOrZero().Workers) / svc.Mean().Seconds()}
	default:
		return []float64{l.RPS}
	}
}

// specPointKey builds the cache identity of one measured point from the
// spec fingerprint: the spec with its load pinned to the single offered
// rate and the effective quality and seed baked in, salted with the
// calibration fingerprint. Unlike the label-based keys this replaces,
// two presets that describe the same scenario share cache entries.
func specPointKey(sweepID string, sp scenario.Spec, q Quality, rps float64, extra ...string) string {
	if sweepID == "" {
		return "" // anonymous sweeps are not cacheable
	}
	id := sp
	id.Name = ""
	id.Load = &scenario.LoadSpec{RPS: rps}
	id.Quality = &scenario.QualitySpec{Warmup: q.Warmup, Measure: q.Measure}
	id.Seed = q.Seed
	id.Seeds = nil
	k := sweepID + "|" + id.Fingerprint() + "|params=" + paramsSig()
	for _, e := range extra {
		k += "|" + e
	}
	return k
}

// pointConfigFor compiles a spec into a runnable point config (offered
// load left to the caller): registry build, workload parse, keys, and
// effective quality.
func pointConfigFor(sp scenario.Spec, q Quality) (PointConfig, error) {
	f, err := scenario.Build(sp)
	if err != nil {
		return PointConfig{}, err
	}
	svc, err := dist.Parse(sp.Workload)
	if err != nil {
		return PointConfig{}, err
	}
	eq := qualityFor(sp, q)
	cfg := PointConfig{
		Factory: f,
		Service: svc,
		Warmup:  eq.Warmup,
		Measure: eq.Measure,
		Seed:    eq.Seed,
	}
	if sp.Keys != nil {
		cfg.Keys = sp.Keys.Keys()
	}
	cfg.Flow = sp.Flow
	return cfg, nil
}

// specSeries compiles one resolved spec into a runner series: a load
// grid (stopping after the second consecutive saturated point, like the
// paper's figures), a k sweep (one point per outstanding limit, plotted
// against k), or a single offered load.
func specSeries(sweepID, label string, sp scenario.Spec, q Quality) (runner.Series[Result], error) {
	if sp.Load != nil && sp.Load.KSweep != nil {
		return kSweepSeries(sweepID, label, sp, q)
	}
	if sp.Load != nil && sp.Load.FSweep != nil {
		return fSweepSeries(sweepID, label, sp, q)
	}
	cfg, err := pointConfigFor(sp, q)
	if err != nil {
		return runner.Series[Result]{}, err
	}
	eq := qualityFor(sp, q)
	loads := specLoads(sp, cfg.Service)
	pts := make([]runner.Point[Result], len(loads))
	for i, rps := range loads {
		c := cfg
		c.OfferedRPS = rps
		pts[i] = runner.Point[Result]{
			Key: specPointKey(sweepID, sp, eq, rps),
			Run: func() Result { return RunPoint(c) },
		}
	}
	s := runner.Series[Result]{Label: label, Points: pts}
	if sp.Load != nil && sp.Load.Grid != nil {
		s.StopAfterSaturated = 2
	}
	return s, nil
}

// kSweepSeries compiles a ksweep spec: the per-worker outstanding limit
// sweeps Lo..Hi at the spec's fixed (saturating) offered load, and the
// reported x-coordinate is k itself.
func kSweepSeries(sweepID, label string, sp scenario.Spec, q Quality) (runner.Series[Result], error) {
	ks := sp.Load.KSweep
	pts := make([]runner.Point[Result], 0, ks.Hi-ks.Lo+1)
	for k := ks.Lo; k <= ks.Hi; k++ {
		k := k
		spk := sp.WithOutstanding(k)
		cfg, err := pointConfigFor(spk, q)
		if err != nil {
			return runner.Series[Result]{}, err
		}
		cfg.OfferedRPS = sp.Load.RPS
		pts = append(pts, runner.Point[Result]{
			Key: specPointKey(sweepID, spk, qualityFor(spk, q), sp.Load.RPS,
				"k="+strconv.Itoa(k)),
			Run: func() Result {
				r := RunPoint(cfg)
				r.Point.OfferedRPS = float64(k) // x-axis is k, not load
				return r
			},
		})
	}
	return runner.Series[Result]{Label: label, Points: pts}, nil
}

// fSweepSeries compiles an fsweep spec: the concurrent-flow population
// sweeps the geometric grid at the spec's fixed offered batch rate, and
// the reported x-coordinate is the population. Unlike load grids there
// is no early stop after saturation — the sweep's whole point is to
// show life on both sides of the fast-path crossover, including the
// million-flow tail.
func fSweepSeries(sweepID, label string, sp scenario.Spec, q Quality) (runner.Series[Result], error) {
	fs := sp.Load.FSweep
	flows := fs.Points()
	pts := make([]runner.Point[Result], 0, len(flows))
	for _, n := range flows {
		n := n
		spn := sp.WithFlows(n)
		cfg, err := pointConfigFor(spn, q)
		if err != nil {
			return runner.Series[Result]{}, err
		}
		cfg.OfferedRPS = sp.Load.RPS
		pts = append(pts, runner.Point[Result]{
			Key: specPointKey(sweepID, spn, qualityFor(spn, q), sp.Load.RPS,
				"flows="+strconv.Itoa(n)),
			Run: func() Result {
				r := RunPoint(cfg)
				r.Point.OfferedRPS = float64(n) // x-axis is the flow population
				return r
			},
		})
	}
	return runner.Series[Result]{Label: label, Points: pts}, nil
}

// PresetFigureSpec compiles a series-style preset into a runnable
// FigureSpec. It is the one path from scenario files to the sweep
// runner, shared by the figure definitions below and by
// `mindgap-sim -scenario`.
func PresetFigureSpec(p scenario.Preset, q Quality) (FigureSpec, error) {
	if len(p.Tenants) > 0 {
		return FigureSpec{}, fmt.Errorf("experiment: preset %q is a tenants preset; run it with RunMultiTenant", p.ID)
	}
	sw := runner.Sweep[Result]{Name: p.ID}
	for i := range p.Series {
		s, err := specSeries(p.ID, p.Series[i].Label, p.SpecFor(i), q)
		if err != nil {
			return FigureSpec{}, fmt.Errorf("experiment: preset %q series %q: %w", p.ID, p.Series[i].Label, err)
		}
		sw.Series = append(sw.Series, s)
	}
	return FigureSpec{
		ID:     p.ID,
		Title:  p.Title,
		XLabel: p.XLabel,
		YLabel: p.YLabel,
		Sweep:  sw,
	}, nil
}

// presetFigureSpec resolves a checked-in preset; embedded presets are
// validated by tests, so failure is a programmer error.
func presetFigureSpec(id string, q Quality) FigureSpec {
	f, err := PresetFigureSpec(mustPreset(id), q)
	if err != nil {
		panic(err)
	}
	return f
}
