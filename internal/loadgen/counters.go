package loadgen

import (
	"math/rand/v2"
	"time"

	"mindgap/internal/telemetry"
)

// Counters is the arrival accounting shared by every generator in this
// package. Both the open-loop request generator and the flow generator
// embed it, so callers read one accessor set — and telemetry exposes
// one probe set — instead of per-generator ad-hoc getters.
type Counters struct {
	arrivals uint64 // requests handed to the sink
	packets  uint64 // wire packets those requests stand for
	flows    uint64 // flows started (zero for i.i.d. request streams)
}

// Arrivals returns the number of requests generated so far.
func (c *Counters) Arrivals() uint64 { return c.arrivals }

// Packets returns the number of wire packets generated so far. For the
// plain request generator this equals Arrivals; for the flow generator
// each request is a batch and carries its packet count.
func (c *Counters) Packets() uint64 { return c.packets }

// Flows returns the number of flows started so far (zero for
// generators without flow identity).
func (c *Counters) Flows() uint64 { return c.flows }

// PublishMetrics registers the counters as probe-backed gauges under
// the given component name ("loadgen", "loadgen/flow", ...). A nil
// registry is a no-op, so generators can offer telemetry without
// forcing it on every caller.
func (c *Counters) PublishMetrics(reg *telemetry.Registry, component string) {
	if reg == nil {
		return
	}
	reg.GaugeFunc(component, "arrivals", func() float64 { return float64(c.arrivals) })
	reg.GaugeFunc(component, "packets", func() float64 { return float64(c.packets) })
	reg.GaugeFunc(component, "flows", func() float64 { return float64(c.flows) })
}

// expGap draws one exponential inter-arrival gap for a Poisson process
// at the given rate — the sampling step both generators share.
//
//mindgap:noalloc
func expGap(rng *rand.Rand, rps float64) time.Duration {
	mean := float64(time.Second) / rps
	d := time.Duration(rng.ExpFloat64() * mean)
	if d <= 0 {
		d = 1
	}
	return d
}
