// Package shinjuku models the vanilla Shinjuku system (Kaffes et al., NSDI
// '19) as described in §2.1 of the paper: a host-resident networking
// subsystem and centralized dispatcher pinned to hyperthreads of one
// physical core, workers on the remaining cores, cache-line shared-memory
// IPC, and dispatcher-driven preemption via low-overhead posted interrupts.
//
// This is the baseline Shinjuku-Offload is compared against in every figure.
// Its two structural costs are exactly the ones the paper calls out:
//
//   - It burns a physical core on networking + dispatch, so at equal
//     hardware it runs one fewer worker than Shinjuku-Offload (Figures 2,
//     4, 5).
//   - The dispatcher handles ~5 M req/s (200 ns/request), far more than
//     the offloaded ARM dispatcher — which is why it wins Figure 6.
package shinjuku

import (
	"fmt"
	"time"

	"mindgap/internal/attr"
	"mindgap/internal/core"
	"mindgap/internal/cores"
	"mindgap/internal/fabric"
	"mindgap/internal/params"
	"mindgap/internal/sim"
	"mindgap/internal/stats"
	"mindgap/internal/task"
)

// Config describes one vanilla Shinjuku deployment.
type Config struct {
	// P is the hardware cost model.
	P params.Params
	// Workers is the number of worker cores (the dispatcher's physical
	// core is additional and implicit).
	Workers int
	// Slice is the preemption quantum; zero disables preemption.
	Slice time.Duration
	// Outstanding is the per-worker credit limit. Vanilla Shinjuku keeps
	// exactly one request per worker (cache-line IPC is fast enough that
	// stashing is unnecessary); values > 1 are allowed for ablations.
	Outstanding int
	// Policy is the worker-selection policy (idle-first FIFO by default).
	Policy core.Policy
	// Sockets models a multi-socket host (§1): the NIC DDIO-places every
	// packet into socket 0's LLC (where the networker runs); workers on
	// other sockets pay P.NUMAPenalty on pickup because the dispatcher
	// picks workers with no knowledge of packet placement. 0 or 1 means a
	// single socket.
	Sockets int
	// Attr, when set, receives per-request phase decompositions and a
	// ground-truth audit of every dispatch decision; nil leaves every hook
	// off and the event sequence untouched.
	Attr *attr.Collector
}

// dEventKind tags dispatcher inputs.
type dEventKind uint8

const (
	evNew dEventKind = iota
	evFinish
	evPreempted
)

type dEvent struct {
	kind   dEventKind
	worker int
	req    *task.Request
}

// Dispatcher input classes (polled round-robin, like the real dispatcher's
// loop alternating between the networker ring and worker completion flags).
const (
	dcNew = iota
	dcNotif
)

// Shinjuku is the simulated vanilla system.
type Shinjuku struct {
	eng  *sim.Engine
	cfg  Config
	lgc  *core.Logic
	rec  *stats.Recorder
	done func(*task.Request)
	attr *attr.Collector

	ingress    *fabric.Link
	egress     *fabric.Link
	networker  *fabric.Stage[*task.Request]
	dispatcher *fabric.MultiStage[dEvent]
	shmNetDisp *fabric.Link

	workers []*worker

	// asScratch is the reusable assignment buffer for the dispatcher's
	// scheduling calls (consumed synchronously per event).
	asScratch []core.Assignment
}

// worker is one host worker core connected to the dispatcher by cache-line
// shared memory.
type worker struct {
	sys  *Shinjuku
	id   int
	exec *cores.Exec
	// fromDisp and toDisp model the cache-line channels.
	fromDisp *fabric.Link
	toDisp   *fabric.Link
	// pending holds the assignment being picked up.
	pendingPickup bool
	// stash holds requests delivered while the core was mid-pickup or in
	// post-processing (only possible when Outstanding > 1).
	stash []*task.Request
	post  bool
}

// New builds the system. done runs at the instant the client receives each
// response.
func New(eng *sim.Engine, cfg Config, rec *stats.Recorder, done func(*task.Request)) *Shinjuku {
	if cfg.Workers <= 0 {
		panic("shinjuku: need workers")
	}
	if done == nil {
		panic("shinjuku: need a completion callback")
	}
	if cfg.Outstanding <= 0 {
		cfg.Outstanding = 1
	}
	p := cfg.P
	s := &Shinjuku{
		eng:  eng,
		cfg:  cfg,
		lgc:  core.NewLogic(cfg.Workers, cfg.Outstanding, cfg.Policy),
		rec:  rec,
		done: done,
		attr: cfg.Attr,
	}
	s.ingress = fabric.NewLink(eng, "client→nic", fabric.LinkConfig{
		Latency: p.ClientWireOneWay, BandwidthBps: p.WireBandwidth,
	})
	s.egress = fabric.NewLink(eng, "nic→client", fabric.LinkConfig{
		Latency: p.ClientWireOneWay, BandwidthBps: p.WireBandwidth,
	})
	s.shmNetDisp = fabric.NewLink(eng, "shm net→disp", fabric.LinkConfig{Latency: p.CacheLine})

	s.networker = fabric.NewStage[*task.Request](eng, "host-networker", 0,
		fabric.FixedCost[*task.Request](p.HostNetworkerCost),
		func(r *task.Request) {
			s.shmNetDisp.SendT(0, shmArrive, s, r, 0)
		})

	s.dispatcher = fabric.NewMultiStage[dEvent](eng, "host-dispatcher", 2, nil,
		func(ev dEvent) time.Duration {
			if ev.kind == evFinish {
				return p.HostCompletionCost
			}
			return p.HostDispatchCost
		},
		s.handleDispatcherEvent)

	execCfg := cores.ExecConfig{
		Clock:      p.HostClock,
		Timer:      p.HostTimer,
		Slice:      cfg.Slice,
		SelfArm:    false, // preemption is dispatcher-posted
		CtxSave:    p.CtxSaveCost,
		CtxResume:  p.CtxResumeCost,
		CtxMigrate: p.CtxMigratePenalty,
	}
	for i := 0; i < cfg.Workers; i++ {
		w := &worker{
			sys: s,
			id:  i,
			fromDisp: fabric.NewLink(eng, fmt.Sprintf("shm disp→w%d", i),
				fabric.LinkConfig{Latency: p.CacheLine}),
			toDisp: fabric.NewLink(eng, fmt.Sprintf("shm w%d→disp", i),
				fabric.LinkConfig{Latency: p.CacheLine}),
		}
		w.exec = cores.NewExec(eng, i, execCfg, w.onComplete, w.onPreempt)
		s.workers = append(s.workers, w)
	}
	return s
}

// Name implements the experiment System interface.
func (s *Shinjuku) Name() string { return "shinjuku" }

// Inject admits a client request at the current instant.
func (s *Shinjuku) Inject(req *task.Request) {
	s.attr.Arrive(s.eng.Now(), req.ID, req.Service)
	s.ingress.SendT(s.cfg.P.RequestFrameBytes, shinIngress, s, req, 0)
}

// shinIngress fires when a request frame reaches the host NIC.
//
//mindgap:noalloc
func shinIngress(recv, obj any, _ uint64) {
	s := recv.(*Shinjuku)
	req := obj.(*task.Request)
	s.attr.Ingress(s.eng.Now(), req.ID)
	s.networker.Submit(req)
}

// shmArrive fires when a new request crosses the networker→dispatcher
// cache-line channel.
//
//mindgap:noalloc
func shmArrive(recv, obj any, _ uint64) {
	s := recv.(*Shinjuku)
	s.dispatcher.Submit(dcNew, dEvent{kind: evNew, req: obj.(*task.Request)})
}

// trueLoad returns the worker's resident backlog in ns — remaining work
// executing plus remaining work stashed — the decision audit's ground
// truth.
//
//mindgap:noalloc
func (w *worker) trueLoad() int64 {
	var load int64
	if cur := w.exec.Current(); cur != nil {
		load += int64(cur.Remaining)
	}
	for _, r := range w.stash {
		load += int64(r.Remaining)
	}
	return load
}

// auditDispatch presents one dispatch decision to the attribution layer.
// Vanilla Shinjuku's dispatcher reads worker state over cache lines, so
// its view is far fresher than a NIC's — the audit quantifies exactly how
// much fresher.
//
//mindgap:noalloc
func (s *Shinjuku) auditDispatch(now sim.Time, a core.Assignment) {
	truth := s.attr.TruthScratch(len(s.workers))
	for i, w := range s.workers {
		truth[i] = w.trueLoad()
	}
	d := attr.Decision{At: now, ReqID: a.Req.ID, Chosen: a.Worker, Truth: truth}
	d.Estimate, d.EstimateAge, d.Informed = s.lgc.EstimateFor(now, a.Worker)
	s.attr.Audit(d)
}

//mindgap:noalloc
func (s *Shinjuku) handleDispatcherEvent(ev dEvent) {
	as := s.asScratch[:0]
	now := s.eng.Now()
	switch ev.kind {
	case evNew:
		s.attr.Enqueue(now, ev.req.ID)
		as = s.lgc.EnqueueTo(as, now, ev.req)
	case evFinish:
		as = s.lgc.CompleteTo(as, ev.worker)
	case evPreempted:
		s.attr.Enqueue(now, ev.req.ID)
		as = s.lgc.PreemptedTo(as, now, ev.worker, ev.req)
	}
	for _, a := range as {
		if s.attr != nil {
			s.attr.Dispatch(now, a.Req.ID)
			s.auditDispatch(now, a)
		}
		w := s.workers[a.Worker]
		w.fromDisp.SendT(0, dispDeliver, w, a.Req, 0)
	}
	s.asScratch = as[:0]
}

// dispDeliver fires when an assignment crosses the dispatcher→worker
// cache-line channel.
//
//mindgap:noalloc
func dispDeliver(recv, obj any, _ uint64) {
	w := recv.(*worker)
	w.receive(obj.(*task.Request))
}

// armSlice implements dispatcher-driven preemption: the dispatcher tracks
// when each request started running and posts an interrupt when its slice
// expires (§2.1). The countdown is armed at actual execution start; the
// tracking costs the dispatcher nothing extra — the real implementation
// folds it into its polling loop — while interrupt receipt is charged on
// the worker by Exec.Interrupt.
//
//mindgap:noalloc
func (s *Shinjuku) armSlice(w *worker, req *task.Request) {
	// The generation guards against pooled-request reuse: req may complete,
	// recycle, and restart on this worker before the slice expires.
	s.eng.AfterE(s.cfg.Slice, shinSliceFire, w, req, uint64(req.Gen))
}

// shinSliceFire posts the dispatcher-tracked preemption interrupt.
//
//mindgap:noalloc
func shinSliceFire(recv, obj any, gen uint64) {
	w := recv.(*worker)
	req := obj.(*task.Request)
	if w.exec.Current() == req && uint64(req.Gen) == gen {
		w.exec.Interrupt()
	}
}

// socket returns the worker's socket index (workers are split into
// contiguous blocks across sockets).
//
//mindgap:noalloc
func (w *worker) socket() int {
	s := w.sys.cfg.Sockets
	if s <= 1 {
		return 0
	}
	return w.id * s / w.sys.cfg.Workers
}

// receive accepts an assignment on the worker core.
//
//mindgap:noalloc
func (w *worker) receive(req *task.Request) {
	w.sys.attr.HostArrive(w.sys.eng.Now(), req.ID)
	w.stash = append(w.stash, req)
	w.maybeStart()
}

//mindgap:noalloc
func (w *worker) maybeStart() {
	if w.exec.Busy() || w.post || w.pendingPickup || len(w.stash) == 0 {
		return
	}
	w.pendingPickup = true
	cost := w.sys.cfg.P.PickupCost(false)
	if w.socket() != 0 {
		// The packet sits in socket 0's LLC; a remote worker fetches it
		// across the interconnect.
		cost += w.sys.cfg.P.NUMAPenalty
	}
	w.sys.eng.AfterE(cost, shinPickup, w, nil, 0)
}

// shinPickup fires once the pickup cost has elapsed: start the oldest
// stashed request.
//
//mindgap:noalloc
func shinPickup(recv, _ any, _ uint64) {
	w := recv.(*worker)
	w.pendingPickup = false
	if len(w.stash) == 0 {
		return
	}
	req := w.stash[0]
	w.stash = w.stash[1:]
	w.sys.attr.Start(w.sys.eng.Now(), req.ID)
	w.exec.Start(req)
	if w.sys.cfg.Slice > 0 && req.Remaining > w.sys.cfg.Slice {
		w.sys.armSlice(w, req)
	}
}

//mindgap:noalloc
func (w *worker) onComplete(req *task.Request) {
	sys := w.sys
	sys.attr.Complete(sys.eng.Now(), req.ID)
	w.post = true
	sys.eng.AfterE(sys.cfg.P.WorkerResponseCost, shinResponseBuilt, w, req, 0)
}

// shinResponseBuilt fires once the worker has built the response packet:
// transmit it and raise the completion flag.
//
//mindgap:noalloc
func shinResponseBuilt(recv, obj any, _ uint64) {
	w := recv.(*worker)
	sys := w.sys
	req := obj.(*task.Request)
	sys.egress.SendT(sys.cfg.P.ResponseFrameBytes, shinRespond, sys, req, 0)
	// Completion flag is a cache-line write: effectively free for the
	// worker compared to packet construction.
	w.toDisp.SendT(0, shinNotifyFinish, w, nil, 0)
	w.post = false
	w.maybeStart()
}

// shinRespond fires when the response frame reaches the client.
//
//mindgap:noalloc
func shinRespond(recv, obj any, _ uint64) {
	s := recv.(*Shinjuku)
	req := obj.(*task.Request)
	s.attr.Respond(s.eng.Now(), req.ID)
	s.done(req)
}

// shinNotifyFinish fires when the completion flag's cache line reaches the
// dispatcher.
//
//mindgap:noalloc
func shinNotifyFinish(recv, _ any, _ uint64) {
	w := recv.(*worker)
	w.sys.dispatcher.Submit(dcNotif, dEvent{kind: evFinish, worker: w.id})
}

//mindgap:noalloc
func (w *worker) onPreempt(req *task.Request) {
	sys := w.sys
	sys.attr.Preempt(sys.eng.Now(), req.ID)
	if sys.rec != nil {
		sys.rec.RecordPreemption()
	}
	w.post = true
	w.toDisp.SendT(0, shinNotifyPreempt, w, req, 0)
	w.post = false
	w.maybeStart()
}

// shinNotifyPreempt fires when the preemption flag's cache line reaches
// the dispatcher.
//
//mindgap:noalloc
func shinNotifyPreempt(recv, obj any, _ uint64) {
	w := recv.(*worker)
	w.sys.dispatcher.Submit(dcNotif, dEvent{kind: evPreempted, worker: w.id, req: obj.(*task.Request)})
}

// WorkerIdleFraction returns the mean idle fraction across worker cores.
func (s *Shinjuku) WorkerIdleFraction(now sim.Time) float64 {
	var sum float64
	for _, w := range s.workers {
		sum += w.exec.Track.IdleFraction(now)
	}
	return sum / float64(len(s.workers))
}

// ArmWorkerTrackers starts worker busy-time accounting at now.
func (s *Shinjuku) ArmWorkerTrackers(now sim.Time) {
	for _, w := range s.workers {
		w.exec.Track.Arm(now)
	}
}

// QueueLen exposes the central queue depth.
func (s *Shinjuku) QueueLen() int { return s.lgc.QueueLen() }

// DispatcherUtilization returns the dispatcher core's busy fraction.
func (s *Shinjuku) DispatcherUtilization(now sim.Time) float64 {
	return s.dispatcher.BusyTracker().BusyFraction(now)
}

// ArmDispatcherTracker starts dispatcher utilization accounting.
func (s *Shinjuku) ArmDispatcherTracker(now sim.Time) {
	s.dispatcher.BusyTracker().Arm(now)
	s.networker.BusyTracker().Arm(now)
}

// Completions returns total completed requests across workers.
func (s *Shinjuku) Completions() uint64 {
	var n uint64
	for _, w := range s.workers {
		n += w.exec.Completions()
	}
	return n
}
