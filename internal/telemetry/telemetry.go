// Package telemetry is the unified observability layer: a registry of
// named metrics (counters, gauges, latency histograms) labelled by
// component, shared by the simulated systems and the live UDP
// implementation.
//
// The paper's argument (§5.1) rests on seeing inside the system —
// queueing delay at each NIC ARM core, NIC↔host message latency,
// preemption counts, worker idle gaps. Components expose those signals
// here; consumers take a point-in-time Snapshot (JSON/CSV/expvar text),
// auto-sample gauges into stats.TimeSeries on a sim.Engine, or scrape the
// registry over HTTP in live mode (internal/live.MetricsServer).
//
// Concurrency: counters and settable gauges are atomic, histograms take a
// mutex per observation, and the registry itself is lock-protected, so
// one registry can be mutated by a live system while an HTTP scraper
// snapshots it. Probe-backed gauges run their probe on the snapshotting
// goroutine; probes that touch shared state must do their own locking.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mindgap/internal/stats"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas panic — counters only go up).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("telemetry: counter decrement")
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous scalar: either settable (Set) or backed by a
// probe function that is evaluated on every read.
type Gauge struct {
	bits atomic.Uint64
	fn   func() float64
}

// Set stores v. It panics on a probe-backed gauge, whose value is owned
// by the probe.
func (g *Gauge) Set(v float64) {
	if g.fn != nil {
		panic("telemetry: Set on probe-backed gauge")
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts a settable gauge by delta.
func (g *Gauge) Add(delta float64) {
	if g.fn != nil {
		panic("telemetry: Add on probe-backed gauge")
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value reads the gauge, evaluating the probe if one is attached.
func (g *Gauge) Value() float64 {
	if g.fn != nil {
		return g.fn()
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a registry-owned latency histogram: a stats.Histogram
// behind a mutex so live-mode goroutines can observe concurrently.
type Histogram struct {
	mu sync.Mutex
	h  stats.Histogram
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	h.h.Record(d)
	h.mu.Unlock()
}

// Summary returns the distribution's headline statistics.
func (h *Histogram) Summary() HistogramSummary {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramSummary{
		Count: h.h.Count(),
		Mean:  h.h.Mean(),
		P50:   h.h.P50(),
		P99:   h.h.P99(),
		Max:   h.h.Max(),
	}
}

// HistogramSummary is the serialized form of one histogram.
type HistogramSummary struct {
	Count int64         `json:"count"`
	Mean  time.Duration `json:"mean_ns"`
	P50   time.Duration `json:"p50_ns"`
	P99   time.Duration `json:"p99_ns"`
	Max   time.Duration `json:"max_ns"`
}

// Registry holds a process's metrics, keyed "component/name". Metrics are
// created on first use (get-or-create), so wiring order never matters.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Key builds the canonical "component/name" metric key.
func Key(component, name string) string { return component + "/" + name }

// Counter returns the counter for component/name, creating it if needed.
func (r *Registry) Counter(component, name string) *Counter {
	k := Key(component, name)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[k]
	if !ok {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Gauge returns the settable gauge for component/name, creating it if
// needed. It panics if the key is already a probe-backed gauge.
func (r *Registry) Gauge(component, name string) *Gauge {
	k := Key(component, name)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[k]
	if !ok {
		g = &Gauge{}
		r.gauges[k] = g
	}
	if g.fn != nil {
		panic(fmt.Sprintf("telemetry: gauge %q is probe-backed", k))
	}
	return g
}

// GaugeFunc registers a probe-backed gauge whose value is fn() at read
// time — how components expose internal state (queue depth, busy flags)
// without copying it anywhere. Re-registering a key replaces its probe.
func (r *Registry) GaugeFunc(component, name string, fn func() float64) {
	if fn == nil {
		panic("telemetry: nil gauge probe")
	}
	k := Key(component, name)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauges[k] = &Gauge{fn: fn}
}

// Histogram returns the latency histogram for component/name, creating it
// if needed.
func (r *Registry) Histogram(component, name string) *Histogram {
	k := Key(component, name)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[k]
	if !ok {
		h = &Histogram{}
		r.hists[k] = h
	}
	return h
}

// GaugeValue reads one gauge by key; ok is false for unknown keys.
func (r *Registry) GaugeValue(key string) (float64, bool) {
	r.mu.Lock()
	g, ok := r.gauges[key]
	r.mu.Unlock()
	if !ok {
		return 0, false
	}
	return g.Value(), true
}

// CounterValue reads one counter by key; ok is false for unknown keys.
func (r *Registry) CounterValue(key string) (int64, bool) {
	r.mu.Lock()
	c, ok := r.counters[key]
	r.mu.Unlock()
	if !ok {
		return 0, false
	}
	return c.Value(), true
}

// GaugeKeys returns the registered gauge keys in sorted order.
func (r *Registry) GaugeKeys() []string {
	r.mu.Lock()
	keys := make([]string, 0, len(r.gauges))
	for k := range r.gauges {
		keys = append(keys, k)
	}
	r.mu.Unlock()
	sort.Strings(keys)
	return keys
}

// Snapshot is a point-in-time copy of every metric in a registry.
type Snapshot struct {
	Counters   map[string]int64            `json:"counters"`
	Gauges     map[string]float64          `json:"gauges"`
	Histograms map[string]HistogramSummary `json:"histograms"`
}

// Snapshot evaluates every metric (including gauge probes) at this
// instant.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, c := range r.counters {
		counters[k] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, g := range r.gauges {
		gauges[k] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, h := range r.hists {
		hists[k] = h
	}
	r.mu.Unlock()

	// Probes run outside the registry lock: they may themselves lock the
	// component they observe.
	s := Snapshot{
		Counters:   make(map[string]int64, len(counters)),
		Gauges:     make(map[string]float64, len(gauges)),
		Histograms: make(map[string]HistogramSummary, len(hists)),
	}
	for k, c := range counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		s.Gauges[k] = g.Value()
	}
	for k, h := range hists {
		s.Histograms[k] = h.Summary()
	}
	return s
}

// WriteJSON serializes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteCSV emits "kind,key,field,value" rows in sorted key order.
func (s Snapshot) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "kind,key,field,value"); err != nil {
		return err
	}
	for _, k := range sortedKeys(s.Counters) {
		if _, err := fmt.Fprintf(w, "counter,%s,value,%d\n", k, s.Counters[k]); err != nil {
			return err
		}
	}
	for _, k := range sortedKeys(s.Gauges) {
		if _, err := fmt.Fprintf(w, "gauge,%s,value,%g\n", k, s.Gauges[k]); err != nil {
			return err
		}
	}
	for _, k := range sortedKeys(s.Histograms) {
		h := s.Histograms[k]
		rows := []struct {
			field string
			v     int64
		}{
			{"count", h.Count},
			{"mean_ns", int64(h.Mean)},
			{"p50_ns", int64(h.P50)},
			{"p99_ns", int64(h.P99)},
			{"max_ns", int64(h.Max)},
		}
		for _, row := range rows {
			if _, err := fmt.Fprintf(w, "histogram,%s,%s,%d\n", k, row.field, row.v); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteText emits expvar-style "key value" lines in sorted key order —
// the format served at /metrics in live mode.
func (s Snapshot) WriteText(w io.Writer) error {
	for _, k := range sortedKeys(s.Counters) {
		if _, err := fmt.Fprintf(w, "%s %d\n", k, s.Counters[k]); err != nil {
			return err
		}
	}
	for _, k := range sortedKeys(s.Gauges) {
		if _, err := fmt.Fprintf(w, "%s %g\n", k, s.Gauges[k]); err != nil {
			return err
		}
	}
	for _, k := range sortedKeys(s.Histograms) {
		h := s.Histograms[k]
		if _, err := fmt.Fprintf(w, "%s/count %d\n%s/mean_ns %d\n%s/p50_ns %d\n%s/p99_ns %d\n%s/max_ns %d\n",
			k, h.Count, k, int64(h.Mean), k, int64(h.P50), k, int64(h.P99), k, int64(h.Max)); err != nil {
			return err
		}
	}
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
