// Package task defines the application-level request that flows through
// every scheduling system in the reproduction. Requests carry the synthetic
// "fake work" service time of the paper's evaluation (§4.1) and the
// bookkeeping needed for preemption: a request preempted on one worker can
// later resume on any other (§3.4.1).
package task

import (
	"time"

	"mindgap/internal/sim"
)

// NoWorker is the LastWorker value of a request never assigned to a core.
const NoWorker = -1

// Request is one application-level request.
type Request struct {
	// ID uniquely identifies the request for its whole lifetime.
	ID uint64
	// ClientID identifies the issuing client (response routing).
	ClientID uint32
	// Key is an application key (e.g. a KVS key) used by flow-steering
	// baselines such as Flow Director; informed schedulers ignore it.
	Key uint64
	// Arrival is the instant the client transmitted the request.
	Arrival sim.Time
	// Service is the total fake-work service time.
	Service time.Duration
	// Remaining is the unfinished portion; it starts equal to Service and
	// shrinks across preemptions.
	Remaining time.Duration
	// Preemptions counts how many times the request was preempted.
	Preemptions int
	// Assignments counts dispatches to a worker (1 + Preemptions that led
	// to reassignment).
	Assignments int
	// LastWorker is the worker that most recently executed the request, or
	// NoWorker.
	LastWorker int
	// Enqueued is the last instant the request entered a scheduler queue;
	// policies and debugging use it.
	Enqueued sim.Time
}

// New creates a request with the full service time remaining.
func New(id uint64, arrival sim.Time, service time.Duration) *Request {
	return &Request{
		ID:         id,
		Arrival:    arrival,
		Service:    service,
		Remaining:  service,
		LastWorker: NoWorker,
	}
}

// Done reports whether the request has no work left.
func (r *Request) Done() bool { return r.Remaining <= 0 }

// Latency returns the client-observed latency assuming the response reached
// the client at instant respAt.
func (r *Request) Latency(respAt sim.Time) time.Duration {
	return respAt.Sub(r.Arrival)
}
