// Package attr is the latency-attribution and decision-audit layer: it
// decomposes every request's end-to-end latency into causal phases and
// audits every dispatch decision against the ground-truth queue state the
// dispatcher could not see. The paper's argument is that the NIC acts on
// a stale view of host queues and that this information gap inflates tail
// latency; this package measures the gap itself rather than only its end
// effect on p99.
//
// The phase model partitions arrive→respond exactly (integer nanoseconds,
// no residue):
//
//	ingress      client wire: transmit → scheduler NIC port
//	dispatch     NIC/host processing between ingress and the first queue
//	             entry (networker, shm hops, queue-manager handling)
//	nic-queue    waiting in the central scheduler queue for a decision
//	fabric       dispatch decision → frame lands at the worker (NIC↔host
//	             transit, TX stage, serialization)
//	host-queue   landed at the worker → execution starts (RX-ring/stash
//	             wait plus pickup cost — the wait the dispatcher's stale
//	             view failed to avoid)
//	service      the request's nominal service time
//	preempt-ovh  everything preemption added: context save/resume/migrate,
//	             timer costs, and requeue round trips back to the NIC
//	egress       completion → response reaches the client
//
// Systems call the Collector's lifecycle hooks at the matching instants;
// every hook is a no-op on a nil *Collector, so disabled runs execute the
// exact same event sequence (attribution only observes, never schedules).
package attr

import (
	"time"

	"mindgap/internal/sim"
	"mindgap/internal/stats"
	"mindgap/internal/trace"
)

// Phase indexes one causal segment of a request's end-to-end latency.
type Phase int

// Phases in causal order. The vector of all phases partitions the
// end-to-end latency exactly.
const (
	PhaseIngress Phase = iota
	PhaseDispatch
	PhaseNICQueue
	PhaseFabric
	PhaseHostQueue
	PhaseService
	PhasePreempt
	PhaseEgress
	// PhaseCount sizes phase vectors.
	PhaseCount
)

var phaseNames = [...]string{
	"ingress", "dispatch", "nic-queue", "fabric", "host-queue",
	"service", "preempt-ovh", "egress",
}

// String returns the phase name.
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "phase(?)"
}

// mark tags the last lifecycle step seen for an in-flight request; the
// transition (last mark → new mark) decides which phase the elapsed time
// belongs to.
type markKind uint8

const (
	mkArrive markKind = iota
	mkIngress
	mkEnqueue
	mkDispatch
	mkHostArrive
	mkStart
	mkPreempt
	mkComplete
)

// Config sizes the collector.
type Config struct {
	// TailK bounds the slowest-K reservoir (default 8).
	TailK int
	// KeepTimelines retains every completed request's phase segments for
	// trace export. Off for measurement runs — it grows with completions.
	KeepTimelines bool
	// AuditSamples bounds retained per-decision audit samples (counter
	// tracks in trace export). 0 retains none; aggregates are always kept.
	AuditSamples int
}

// Segment is one retained timeline interval of a request (KeepTimelines).
type Segment struct {
	Phase    Phase
	From, To sim.Time
}

// Timeline is one completed request's retained phase history.
type Timeline struct {
	ReqID    uint64
	Arrive   sim.Time
	Total    time.Duration
	Phases   [PhaseCount]time.Duration
	Segments []Segment
}

// TailSample is one slowest-K reservoir entry.
type TailSample struct {
	ReqID  uint64
	Arrive sim.Time
	Total  time.Duration
	Phases [PhaseCount]time.Duration
}

// reqState tracks one in-flight request.
type reqState struct {
	id      uint64
	arrive  sim.Time
	service time.Duration
	mark    sim.Time
	last    markKind
	phases  [PhaseCount]time.Duration
	segs    []Segment // KeepTimelines only
}

// Collector accumulates phase decompositions and dispatch audits for one
// simulation run. It is an observer: its hooks never schedule engine
// events, so an attached collector cannot perturb the simulation. All
// methods are no-ops on a nil receiver — systems call hooks
// unconditionally and disabled runs stay byte-identical.
//
// Not safe for concurrent use; each run owns its own collector.
type Collector struct {
	cfg Config

	inflight map[uint64]*reqState
	free     []*reqState

	wf        *stats.Waterfall
	completed uint64
	dropped   [trace.DropReasonCount]uint64

	tail      []TailSample
	timelines []Timeline

	audit auditState
}

// New creates a collector.
func New(cfg Config) *Collector {
	if cfg.TailK <= 0 {
		cfg.TailK = 8
	}
	return &Collector{
		cfg:      cfg,
		inflight: make(map[uint64]*reqState),
		wf:       stats.NewWaterfall(int(PhaseCount)),
	}
}

func (c *Collector) acquire() *reqState {
	if n := len(c.free); n > 0 {
		st := c.free[n-1]
		c.free = c.free[:n-1]
		return st
	}
	return &reqState{}
}

func (c *Collector) release(st *reqState) {
	*st = reqState{segs: st.segs[:0]}
	c.free = append(c.free, st)
}

// Arrive opens a request's attribution record at its client transmit
// instant. service is the nominal service time (the work the request
// would take with zero scheduling overhead).
func (c *Collector) Arrive(at sim.Time, id uint64, service time.Duration) {
	if c == nil {
		return
	}
	if _, dup := c.inflight[id]; dup {
		return // defensive: duplicate arrival, keep the original record
	}
	st := c.acquire()
	st.id, st.arrive, st.service = id, at, service
	st.mark, st.last = at, mkArrive
	c.inflight[id] = st
}

// step advances a request's phase state machine; the (last, k) transition
// decides which phase the elapsed interval belongs to. Intervals that
// belong to no direct phase (preempt→requeue notification trips, execution
// beyond the nominal service time) surface as preempt-ovh residue when the
// record closes.
func (c *Collector) step(at sim.Time, id uint64, k markKind) {
	if c == nil {
		return
	}
	st := c.inflight[id]
	if st == nil {
		return
	}
	d := at.Sub(st.mark)
	if d < 0 {
		d = 0
	}
	phase := Phase(-1)
	switch k {
	case mkIngress:
		phase = PhaseIngress
	case mkEnqueue:
		if st.last == mkIngress {
			phase = PhaseDispatch
		}
	case mkDispatch:
		switch st.last {
		case mkEnqueue:
			phase = PhaseNICQueue
		case mkIngress:
			// Steered straight to a worker with no central queue entry
			// (degraded hash steering): the interval is pure dispatch
			// processing.
			phase = PhaseDispatch
		}
	case mkHostArrive:
		if st.last == mkDispatch {
			phase = PhaseFabric
		}
	case mkStart:
		if st.last == mkHostArrive || st.last == mkDispatch {
			phase = PhaseHostQueue
		}
	case mkPreempt, mkComplete:
		if st.last == mkStart {
			// An execution segment: retained for timelines under the
			// service label; the service/overhead split is computed when
			// the record closes.
			if c.cfg.KeepTimelines && at > st.mark {
				st.segs = append(st.segs, Segment{Phase: PhaseService, From: st.mark, To: at})
			}
		}
	}
	if phase >= 0 {
		st.phases[phase] += d
		if c.cfg.KeepTimelines && at > st.mark {
			st.segs = append(st.segs, Segment{Phase: phase, From: st.mark, To: at})
		}
	}
	st.mark, st.last = at, k
}

// Ingress marks arrival at the scheduler's networking subsystem.
func (c *Collector) Ingress(at sim.Time, id uint64) { c.step(at, id, mkIngress) }

// Enqueue marks entry into a scheduler queue (central or per-core).
func (c *Collector) Enqueue(at sim.Time, id uint64) { c.step(at, id, mkEnqueue) }

// Dispatch marks the scheduler's worker-assignment decision.
func (c *Collector) Dispatch(at sim.Time, id uint64) { c.step(at, id, mkDispatch) }

// HostArrive marks the request's frame landing at the worker (RX ring or
// stash) — the boundary between fabric transit and host-queue wait.
func (c *Collector) HostArrive(at sim.Time, id uint64) { c.step(at, id, mkHostArrive) }

// Start marks execution beginning (or resuming) on a worker core.
func (c *Collector) Start(at sim.Time, id uint64) { c.step(at, id, mkStart) }

// Preempt marks a preemption taking the request off its core.
func (c *Collector) Preempt(at sim.Time, id uint64) { c.step(at, id, mkPreempt) }

// Complete marks the request finishing all of its work.
func (c *Collector) Complete(at sim.Time, id uint64) { c.step(at, id, mkComplete) }

// Respond closes the record at the instant the response reaches the
// client: the egress phase is the completion→response interval, service
// is the nominal service time, and preempt-ovh absorbs exactly the time
// no other phase covers — so the phase vector partitions the end-to-end
// latency with zero residue.
func (c *Collector) Respond(at sim.Time, id uint64) {
	if c == nil {
		return
	}
	st := c.inflight[id]
	if st == nil {
		return
	}
	if st.last == mkComplete {
		d := at.Sub(st.mark)
		if d < 0 {
			d = 0
		}
		st.phases[PhaseEgress] = d
		if c.cfg.KeepTimelines && at > st.mark {
			st.segs = append(st.segs, Segment{Phase: PhaseEgress, From: st.mark, To: at})
		}
	}
	total := at.Sub(st.arrive)
	if total < 0 {
		total = 0
	}
	st.phases[PhaseService] = st.service
	var covered time.Duration
	for p := Phase(0); p < PhaseCount; p++ {
		if p != PhasePreempt {
			covered += st.phases[p]
		}
	}
	resid := total - covered
	if resid < 0 {
		// Only reachable through fault-layer retries reusing a request ID
		// with a shorter second life; clamp rather than poison the sums.
		resid = 0
	}
	st.phases[PhasePreempt] = resid

	c.wf.Record(total, st.phases[:])
	c.completed++
	c.tailInsert(st, total)
	if c.cfg.KeepTimelines {
		segs := make([]Segment, len(st.segs))
		copy(segs, st.segs)
		c.timelines = append(c.timelines, Timeline{
			ReqID: st.id, Arrive: st.arrive, Total: total,
			Phases: st.phases, Segments: segs,
		})
	}
	delete(c.inflight, id)
	c.release(st)
}

// Drop closes a request's record as lost, counted by reason.
func (c *Collector) Drop(at sim.Time, id uint64, reason trace.DropReason) {
	if c == nil {
		return
	}
	if int(reason) < len(c.dropped) {
		c.dropped[reason]++
	}
	if st := c.inflight[id]; st != nil {
		delete(c.inflight, id)
		c.release(st)
	}
}

// tailInsert maintains the slowest-K reservoir, ordered by descending
// total latency with ascending request ID breaking ties — a total order,
// so the reservoir is independent of completion interleaving.
func (c *Collector) tailInsert(st *reqState, total time.Duration) {
	worse := func(a TailSample, b TailSample) bool {
		if a.Total != b.Total {
			return a.Total > b.Total
		}
		return a.ReqID < b.ReqID
	}
	s := TailSample{ReqID: st.id, Arrive: st.arrive, Total: total, Phases: st.phases}
	if len(c.tail) == c.cfg.TailK && !worse(s, c.tail[len(c.tail)-1]) {
		return
	}
	i := len(c.tail)
	for i > 0 && worse(s, c.tail[i-1]) {
		i--
	}
	if len(c.tail) < c.cfg.TailK {
		c.tail = append(c.tail, TailSample{})
	}
	copy(c.tail[i+1:], c.tail[i:])
	c.tail[i] = s
}

// Completed returns how many requests closed with a full decomposition.
func (c *Collector) Completed() uint64 {
	if c == nil {
		return 0
	}
	return c.completed
}

// DropCount returns how many requests were dropped for the given reason.
func (c *Collector) DropCount(r trace.DropReason) uint64 {
	if c == nil || int(r) >= len(c.dropped) {
		return 0
	}
	return c.dropped[r]
}

// Waterfall returns the aggregated per-phase distributions.
func (c *Collector) Waterfall() *stats.Waterfall {
	if c == nil {
		return nil
	}
	return c.wf
}

// Tail returns the slowest-K reservoir, slowest first.
func (c *Collector) Tail() []TailSample {
	if c == nil {
		return nil
	}
	return c.tail
}

// Timelines returns the retained per-request timelines (KeepTimelines),
// in completion order.
func (c *Collector) Timelines() []Timeline {
	if c == nil {
		return nil
	}
	return c.timelines
}

// PhaseStat summarizes one phase of the waterfall.
type PhaseStat struct {
	Phase Phase
	// Mean, P50 and P99 are the phase's own duration distribution.
	Mean, P50, P99 time.Duration
	// MeanShare is the phase's share of total latency mass across all
	// completed requests.
	MeanShare float64
	// TailShare is the phase's share of latency within the slowest-K
	// reservoir — where the p99 tail actually spends its time.
	TailShare float64
}

// PhaseStats summarizes every phase in causal order.
func (c *Collector) PhaseStats() []PhaseStat {
	if c == nil {
		return nil
	}
	var tailTotal time.Duration
	var tailPhase [PhaseCount]time.Duration
	for _, s := range c.tail {
		tailTotal += s.Total
		for p := Phase(0); p < PhaseCount; p++ {
			tailPhase[p] += s.Phases[p]
		}
	}
	out := make([]PhaseStat, PhaseCount)
	for p := Phase(0); p < PhaseCount; p++ {
		h := c.wf.Phase(int(p))
		ps := PhaseStat{
			Phase: p, Mean: h.Mean(), P50: h.P50(), P99: h.P99(),
			MeanShare: c.wf.MeanShare(int(p)),
		}
		if tailTotal > 0 {
			ps.TailShare = float64(tailPhase[p]) / float64(tailTotal)
		}
		out[p] = ps
	}
	return out
}
