// Package trace records request lifecycle events inside a simulated
// system: when a request arrived on the wire, entered the central queue,
// was dispatched, started executing, was preempted, completed, and when
// its response reached the client. Traces serve two purposes: debugging
// scheduling models, and asserting causal well-formedness in tests (a
// request must not complete before it starts, every dispatch must follow
// an enqueue, and so on).
package trace

import (
	"fmt"
	"sort"
	"strings"

	"mindgap/internal/sim"
)

// Kind labels one lifecycle step.
type Kind uint8

// Lifecycle steps, in their only legal relative order (Preempt/Requeue/
// Dispatch/Start may repeat as a group).
const (
	// Arrive: the client transmitted the request.
	Arrive Kind = iota
	// Ingress: the request reached the scheduler's networking subsystem.
	Ingress
	// Enqueue: the request entered the central queue.
	Enqueue
	// Dispatch: the scheduler assigned the request to a worker.
	Dispatch
	// Start: a worker core began (or resumed) executing.
	Start
	// Preempt: the slice expired or an interrupt landed.
	Preempt
	// Complete: the request finished all its work.
	Complete
	// Respond: the response reached the client.
	Respond
	// Drop: the request was shed (admission control or full queue).
	Drop
	kindCount
)

var kindNames = [...]string{
	"arrive", "ingress", "enqueue", "dispatch", "start", "preempt",
	"complete", "respond", "drop",
}

// String returns the step name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// DropReason classifies why a request was dropped. The zero value means
// "unspecified" and keeps events recorded through Record byte-identical
// to traces taken before reasons existed.
type DropReason uint8

const (
	// DropUnspecified is the zero value: no reason was recorded.
	DropUnspecified DropReason = iota
	// DropShed: NIC-side admission control rejected the arrival (policy).
	DropShed
	// DropQueueCap: a bounded per-core queue was full (policy).
	DropQueueCap
	// DropTimeout: the dispatch timeout machinery exhausted its retry
	// budget — the request was lost to an injected fault and abandoned.
	DropTimeout
	// DropWireFault: the frame carrying the request was lost to an
	// injected fabric fault (fabric.Link's faultDropped path) with no
	// retry machinery guarding it — a permanent fault loss.
	DropWireFault
	// DropRingOverflow: the frame arrived at a full RX descriptor ring
	// while no credit scheme protected it (degraded steering).
	DropRingOverflow
	dropReasonCount
)

// DropReasonCount is the number of distinct drop reasons (array sizing).
const DropReasonCount = int(dropReasonCount)

var dropReasonNames = [...]string{
	"", "shed", "queue-cap", "timeout", "wire-fault", "ring-overflow",
}

// String returns the reason name ("" for DropUnspecified).
func (r DropReason) String() string {
	if int(r) < len(dropReasonNames) {
		return dropReasonNames[r]
	}
	return fmt.Sprintf("reason(%d)", uint8(r))
}

// PolicyDrop reports whether the reason is a deliberate scheduling
// decision (shed, queue cap) rather than an injected-fault loss.
func (r DropReason) PolicyDrop() bool { return r == DropShed || r == DropQueueCap }

// Event is one recorded lifecycle step.
type Event struct {
	At     sim.Time
	Kind   Kind
	ReqID  uint64
	Worker int // meaningful for Dispatch/Start/Preempt/Complete; else -1
	// Reason is set on Drop events recorded through RecordDrop; zero
	// everywhere else.
	Reason DropReason
}

// String renders the event compactly.
func (e Event) String() string {
	var suffix string
	if e.Kind == Drop && e.Reason != DropUnspecified {
		suffix = " reason=" + e.Reason.String()
	}
	if e.Worker >= 0 {
		return fmt.Sprintf("%v %s req=%d w=%d%s", e.At, e.Kind, e.ReqID, e.Worker, suffix)
	}
	return fmt.Sprintf("%v %s req=%d%s", e.At, e.Kind, e.ReqID, suffix)
}

// Buffer accumulates events up to a capacity; once full, further events
// are counted but not stored (a trace is a debugging window, not a log).
// The zero value is unusable; use New.
type Buffer struct {
	max     int
	events  []Event
	dropped uint64
}

// New creates a buffer holding at most max events (max <= 0 means an
// effectively unbounded debug buffer).
func New(max int) *Buffer {
	if max <= 0 {
		max = 1 << 20
	}
	return &Buffer{max: max, events: make([]Event, 0, min(max, 4096))}
}

// Record appends an event if capacity remains.
func (b *Buffer) Record(at sim.Time, kind Kind, reqID uint64, worker int) {
	if len(b.events) >= b.max {
		b.dropped++
		return
	}
	b.events = append(b.events, Event{At: at, Kind: kind, ReqID: reqID, Worker: worker})
}

// RecordDrop appends a Drop event carrying the reason the request was
// lost, so attribution can distinguish policy drops (shed, queue cap)
// from injected-fault losses.
func (b *Buffer) RecordDrop(at sim.Time, reqID uint64, worker int, reason DropReason) {
	if len(b.events) >= b.max {
		b.dropped++
		return
	}
	b.events = append(b.events, Event{At: at, Kind: Drop, ReqID: reqID, Worker: worker, Reason: reason})
}

// Len returns the number of stored events.
func (b *Buffer) Len() int { return len(b.events) }

// Truncated returns how many events did not fit.
func (b *Buffer) Truncated() uint64 { return b.dropped }

// Events returns all stored events in record order.
func (b *Buffer) Events() []Event { return b.events }

// Lifecycle returns the events of one request in time order.
func (b *Buffer) Lifecycle(reqID uint64) []Event {
	var out []Event
	for _, e := range b.events {
		if e.ReqID == reqID {
			out = append(out, e)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Requests returns the distinct request IDs present in the buffer.
func (b *Buffer) Requests() []uint64 {
	seen := map[uint64]bool{}
	var out []uint64
	for _, e := range b.events {
		if !seen[e.ReqID] {
			seen[e.ReqID] = true
			out = append(out, e.ReqID)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Format renders a request's lifecycle as one line per event.
func (b *Buffer) Format(reqID uint64) string {
	var sb strings.Builder
	for _, e := range b.Lifecycle(reqID) {
		sb.WriteString(e.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Validate checks the causal well-formedness of one request's lifecycle.
// It returns nil for incomplete traces (a request still in flight) as long
// as the prefix is legal.
func (b *Buffer) Validate(reqID uint64) error {
	evs := b.Lifecycle(reqID)
	if len(evs) == 0 {
		return fmt.Errorf("trace: no events for request %d", reqID)
	}
	var started, completed, dropped int
	var dispatched, preempted int
	prev := sim.Time(-1)
	for i, e := range evs {
		if e.At < prev {
			return fmt.Errorf("trace: request %d event %d goes back in time", reqID, i)
		}
		prev = e.At
		switch e.Kind {
		case Arrive:
			if i != 0 {
				return fmt.Errorf("trace: request %d arrives mid-trace", reqID)
			}
		case Dispatch:
			dispatched++
		case Start:
			started++
			if started > dispatched {
				return fmt.Errorf("trace: request %d started more times than dispatched", reqID)
			}
		case Preempt:
			preempted++
			if preempted > started {
				return fmt.Errorf("trace: request %d preempted before starting", reqID)
			}
		case Complete:
			completed++
			if completed > 1 {
				return fmt.Errorf("trace: request %d completed twice", reqID)
			}
			if started == 0 {
				return fmt.Errorf("trace: request %d completed without starting", reqID)
			}
		case Respond:
			if completed == 0 {
				return fmt.Errorf("trace: request %d responded before completing", reqID)
			}
		case Drop:
			dropped++
			if completed > 0 {
				return fmt.Errorf("trace: request %d dropped after completing", reqID)
			}
		}
	}
	if completed > 0 && dropped > 0 {
		return fmt.Errorf("trace: request %d both completed and dropped", reqID)
	}
	return nil
}

// ValidateAll validates every request in the buffer.
func (b *Buffer) ValidateAll() error {
	for _, id := range b.Requests() {
		if err := b.Validate(id); err != nil {
			return err
		}
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
