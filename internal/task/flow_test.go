package task

import "testing"

func TestFlowPoolRecyclesWithGenBump(t *testing.T) {
	p := &FlowPool{}
	f := p.Get(1, ClassElephant, 1024)
	if f.ID != 1 || f.Class != ClassElephant || f.Remaining != 1024 {
		t.Fatalf("fresh flow = %+v", f)
	}
	g0 := f.Gen
	f.Seen, f.Resident = 99, true
	f.Resident = false
	p.Put(f)
	f2 := p.Get(2, ClassRat, 4)
	if f2 != f {
		t.Fatalf("pool did not recycle the freed record")
	}
	if f2.Gen != g0+1 {
		t.Fatalf("Gen = %d after recycle, want %d", f2.Gen, g0+1)
	}
	if f2.ID != 2 || f2.Class != ClassRat || f2.Remaining != 4 || f2.Seen != 0 ||
		f2.Resident || f2.PendingInsert || f2.Retired || f2.InFlight != 0 {
		t.Fatalf("recycled flow not reset: %+v", f2)
	}
}

func TestFlowPoolDoubleReleasePanics(t *testing.T) {
	p := &FlowPool{}
	f := p.Get(1, ClassRat, 4)
	p.Put(f)
	defer func() {
		if recover() == nil {
			t.Fatal("double Put did not panic")
		}
	}()
	p.Put(f)
}

func TestFlowReleaseIfIdleRefCounting(t *testing.T) {
	p := &FlowPool{}
	f := p.Get(1, ClassElephant, 64)
	// Every reference in turn keeps the record alive.
	holds := []struct {
		name  string
		set   func()
		clear func()
	}{
		{"not retired", func() {}, func() { f.Retired = true }},
		{"in flight", func() { f.InFlight = 1 }, func() { f.InFlight = 0 }},
		{"resident rule", func() { f.Resident = true }, func() { f.Resident = false }},
		{"pending insert", func() { f.PendingInsert = true }, func() { f.PendingInsert = false }},
	}
	for _, h := range holds {
		h.set()
		if f.ReleaseIfIdle() {
			t.Fatalf("released while %s", h.name)
		}
		if p.Live() != 1 {
			t.Fatalf("live = %d while %s", p.Live(), h.name)
		}
		h.clear()
	}
	if !f.ReleaseIfIdle() {
		t.Fatal("idle flow not released")
	}
	if p.Live() != 0 {
		t.Fatalf("live = %d after release", p.Live())
	}
}

func TestFlowReleaseIfIdleUnpooled(t *testing.T) {
	f := NewFlow(7, ClassRat, 4)
	if f.ReleaseIfIdle() {
		t.Fatal("released a flow that is not retired")
	}
	f.Retired = true
	if !f.ReleaseIfIdle() {
		t.Fatal("unpooled idle flow should report released")
	}
}

func TestFlowPoolFreeListCappedAtHighWater(t *testing.T) {
	p := &FlowPool{}
	var flows []*Flow
	for i := 0; i < 3; i++ {
		flows = append(flows, p.Get(FlowID(i), ClassRat, 4))
	}
	if p.HighWater() != 3 {
		t.Fatalf("high water = %d, want 3", p.HighWater())
	}
	for _, f := range flows {
		p.Put(f)
	}
	// Churn through many more flows: the free list must stay bounded by
	// the high-water mark, one at a time.
	for i := 0; i < 100; i++ {
		p.Put(p.Get(FlowID(i), ClassRat, 4))
	}
	if len(p.free) > p.HighWater() {
		t.Fatalf("free list %d exceeds high water %d", len(p.free), p.HighWater())
	}
}

func TestFlowPoolPutClearsLRULinks(t *testing.T) {
	p := &FlowPool{}
	a, b := p.Get(1, ClassRat, 4), p.Get(2, ClassRat, 4)
	a.LRUNext, b.LRUPrev = b, a
	p.Put(a)
	p.Put(b)
	if a.LRUPrev != nil || a.LRUNext != nil || b.LRUPrev != nil || b.LRUNext != nil {
		t.Fatal("Put left LRU links dangling")
	}
}
