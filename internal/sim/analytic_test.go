package sim_test

// Analytic validation of the simulation substrate: an M/M/c queue built
// from the engine, the Poisson load generator, and an exponential service
// distribution must reproduce the closed-form waiting-time results
// (Erlang C). This pins the pieces every experiment relies on — event
// ordering, the arrival process, the service sampler — against queueing
// theory rather than against golden files.
//
// Tolerances: waits in a queue near saturation are strongly correlated
// (the autocorrelation time grows like 1/(1−ρ)²), so the sample count
// scales with utilization — 200k measured waits at ρ≤0.85, 1M at ρ=0.9.
// At those sizes the observed relative error across seeds is under 2% for
// the mean and under 4% for the p99; the asserted tolerances (5% mean,
// 10% p99, with a 1µs absolute floor for near-zero predictions) leave
// seed-robustness headroom while still catching real modelling errors (a
// missing wait term at ρ=0.9 shifts the mean by tens of percent).

import (
	"math"
	"sort"
	"testing"
	"time"

	"mindgap/internal/analytic"
	"mindgap/internal/dist"
	"mindgap/internal/loadgen"
	"mindgap/internal/sim"
	"mindgap/internal/task"
)

// mmcWait returns the closed-form mean and p99 of the queueing delay Wq
// for an M/M/c queue, delegating to internal/analytic (the reusable home
// of the Erlang-C forms; this file keeps only the simulation harness).
func mmcWait(c int, lambda, mu float64) (pw float64, mean, p99 time.Duration) {
	rho := lambda / (float64(c) * mu)
	meanSvc := time.Duration(float64(time.Second) / mu)
	pw = analytic.ErlangC(c, rho)
	mean = analytic.MMcMeanWait(c, rho, meanSvc)
	if pw > 0.01 {
		p99 = analytic.MMcWaitQuantile(c, rho, meanSvc, 0.99)
	}
	return pw, mean, p99
}

// runMMC simulates an M/M/c FIFO queue on the engine: Poisson arrivals at
// rps, exponential service with the given mean, c servers, no overheads.
// It returns the queueing delays (time from arrival to service start) of
// `measure` requests after discarding `warmup`.
func runMMC(t *testing.T, c int, rps float64, meanSvc time.Duration, warmup, measure int, seed uint64) []time.Duration {
	t.Helper()
	eng := sim.New()
	waits := make([]time.Duration, 0, measure)
	started := 0
	var fifo []*task.Request
	busy := 0

	var begin func(r *task.Request)
	begin = func(r *task.Request) {
		busy++
		started++
		if started > warmup && len(waits) < measure {
			waits = append(waits, eng.Now().Sub(r.Arrival))
			if len(waits) == measure {
				eng.Halt()
				return
			}
		}
		eng.After(r.Service, func() {
			busy--
			if len(fifo) > 0 {
				next := fifo[0]
				fifo = fifo[1:]
				begin(next)
			}
		})
	}

	gen := loadgen.New(eng, loadgen.Config{
		RPS:     rps,
		Service: dist.Exponential{M: meanSvc},
		Seed:    seed,
	}, func(r *task.Request) {
		if busy < c {
			begin(r)
			return
		}
		fifo = append(fifo, r)
	})
	gen.Start()
	eng.Run()
	if len(waits) < measure {
		t.Fatalf("simulation ended with %d/%d measured waits", len(waits), measure)
	}
	return waits
}

func summarize(waits []time.Duration) (mean, p99 time.Duration) {
	sorted := append([]time.Duration(nil), waits...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum float64
	for _, w := range sorted {
		sum += float64(w)
	}
	mean = time.Duration(sum / float64(len(sorted)))
	p99 = sorted[(len(sorted)*99)/100]
	return mean, p99
}

// within asserts |got−want| ≤ tol·want with a 1µs absolute floor.
func within(t *testing.T, what string, got, want time.Duration, tol float64) {
	t.Helper()
	diff := math.Abs(float64(got - want))
	lim := tol * float64(want)
	if lim < float64(time.Microsecond) {
		lim = float64(time.Microsecond)
	}
	if diff > lim {
		t.Errorf("%s = %v, want %v ±%.0f%% (diff %v)",
			what, got, want, tol*100, time.Duration(diff))
	}
}

func TestMMCAgainstClosedForm(t *testing.T) {
	if testing.Short() {
		t.Skip("analytic validation needs full sample counts")
	}
	const (
		meanSvc = 10 * time.Microsecond
		seed    = 11
	)
	mu := 1 / meanSvc.Seconds()
	cases := []struct {
		c               int
		rho             float64
		warmup, measure int
	}{
		{1, 0.5, 20_000, 200_000},
		{1, 0.7, 20_000, 200_000},
		{1, 0.9, 50_000, 1_000_000},
		{4, 0.7, 20_000, 200_000},
		{4, 0.9, 50_000, 1_000_000},
		{8, 0.85, 20_000, 200_000},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(itoa(tc.c)+"servers-rho"+ftoa(tc.rho), func(t *testing.T) {
			t.Parallel()
			lambda := tc.rho * float64(tc.c) * mu
			pw, wantMean, wantP99 := mmcWait(tc.c, lambda, mu)
			waits := runMMC(t, tc.c, lambda, meanSvc, tc.warmup, tc.measure, seed)
			gotMean, gotP99 := summarize(waits)
			within(t, "mean wait", gotMean, wantMean, 0.05)
			if pw > 0.05 {
				// Only assert the p99 when a meaningful fraction of
				// arrivals wait; below that the percentile sits on the
				// Pw cliff and is numerically unstable.
				within(t, "p99 wait", gotP99, wantP99, 0.10)
			}
			// M/M/1 sanity: Erlang C must reduce to Pw = ρ.
			if tc.c == 1 && math.Abs(analytic.ErlangC(1, tc.rho)-tc.rho) > 1e-12 {
				t.Errorf("ErlangC(1, %v) = %v, want ρ", tc.rho, analytic.ErlangC(1, tc.rho))
			}
		})
	}
}

// TestMMCDeterministic pins that the analytic harness itself is seed
// deterministic: the same seed yields identical wait streams.
func TestMMCDeterministic(t *testing.T) {
	a := runMMC(t, 2, 150_000, 10*time.Microsecond, 100, 2_000, 3)
	b := runMMC(t, 2, 150_000, 10*time.Microsecond, 100, 2_000, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("wait %d differs across identical runs: %v vs %v", i, a[i], b[i])
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func ftoa(f float64) string {
	// Utilizations in this file have at most two decimals.
	n := int(math.Round(f * 100))
	return itoa(n/100) + "." + itoa((n%100)/10) + itoa(n%10)
}
