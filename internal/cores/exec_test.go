package cores

import (
	"testing"
	"time"

	"mindgap/internal/params"
	"mindgap/internal/sim"
	"mindgap/internal/task"
)

func testCfg(slice time.Duration, selfArm bool) ExecConfig {
	return ExecConfig{
		Clock:     params.Clock{Hz: 2.3e9},
		Timer:     params.DirectAPIC,
		Slice:     slice,
		SelfArm:   selfArm,
		CtxSave:   120 * time.Nanosecond,
		CtxResume: 120 * time.Nanosecond,
	}
}

func TestRunToCompletionNoPreemption(t *testing.T) {
	eng := sim.New()
	var completedAt sim.Time
	var got *task.Request
	e := NewExec(eng, 0, testCfg(0, false), func(r *task.Request) {
		completedAt = eng.Now()
		got = r
	}, nil)
	req := task.New(1, 0, 5*time.Microsecond)
	e.Start(req)
	if !e.Busy() || e.Current() != req {
		t.Fatal("core not busy after Start")
	}
	eng.Run()
	if completedAt != sim.Time(5000) {
		t.Fatalf("completed at %v, want 5µs", completedAt)
	}
	if got != req || !req.Done() {
		t.Fatal("wrong request or not done")
	}
	if e.Busy() || e.Current() != nil {
		t.Fatal("core still busy after completion")
	}
	if req.Assignments != 1 || req.LastWorker != 0 {
		t.Fatalf("assignments=%d lastWorker=%d", req.Assignments, req.LastWorker)
	}
}

func TestSelfArmShortRequestNoSlice(t *testing.T) {
	eng := sim.New()
	var completedAt sim.Time
	e := NewExec(eng, 0, testCfg(10*time.Microsecond, true),
		func(*task.Request) { completedAt = eng.Now() },
		func(*task.Request) { t.Fatal("short request preempted") })
	e.Start(task.New(1, 0, 5*time.Microsecond))
	eng.Run()
	// Arm cost (40 cycles @2.3GHz = 17ns) + 5µs service.
	if completedAt != sim.Time(5017) {
		t.Fatalf("completed at %v, want 5.017µs", completedAt)
	}
}

func TestSelfArmSliceExpiry(t *testing.T) {
	eng := sim.New()
	var preemptedAt sim.Time
	var preempted *task.Request
	e := NewExec(eng, 2, testCfg(10*time.Microsecond, true),
		func(*task.Request) { t.Fatal("long request completed in one slice") },
		func(r *task.Request) {
			preemptedAt = eng.Now()
			preempted = r
		})
	req := task.New(1, 0, 25*time.Microsecond)
	e.Start(req)
	eng.Run()
	// arm 17ns + slice 10µs + fire 553ns + save 120ns = 10690ns.
	if preemptedAt != sim.Time(10690) {
		t.Fatalf("preempted at %v, want 10.69µs", preemptedAt)
	}
	if preempted.Remaining != 15*time.Microsecond {
		t.Fatalf("remaining = %v, want 15µs", preempted.Remaining)
	}
	if preempted.Preemptions != 1 {
		t.Fatalf("preemptions = %d", preempted.Preemptions)
	}
	if e.Busy() {
		t.Fatal("core busy after preemption")
	}
	if e.Preemptions() != 1 || e.Completions() != 0 {
		t.Fatalf("core counters: %d/%d", e.Preemptions(), e.Completions())
	}
}

func TestSelfArmFullLifecycleAcrossSlices(t *testing.T) {
	eng := sim.New()
	cfg := testCfg(10*time.Microsecond, true)
	var done *task.Request
	var e *Exec
	// Re-start the request on the same core each time it is preempted,
	// emulating a trivial scheduler loop.
	e = NewExec(eng, 0, cfg,
		func(r *task.Request) { done = r },
		func(r *task.Request) { e.Start(r) })
	req := task.New(1, 0, 25*time.Microsecond)
	e.Start(req)
	eng.Run()
	if done == nil || !done.Done() {
		t.Fatal("request never completed")
	}
	if req.Preemptions != 2 {
		t.Fatalf("preemptions = %d, want 2 (25µs / 10µs slice)", req.Preemptions)
	}
	if req.Assignments != 3 {
		t.Fatalf("assignments = %d, want 3", req.Assignments)
	}
	// Resume cost is charged on restarts: total time must exceed 25µs
	// plus preemption overheads.
	min := 25 * time.Microsecond
	if eng.Now().Duration() <= min {
		t.Fatalf("lifecycle took %v, expected > %v with overheads", eng.Now(), min)
	}
}

func TestExternalInterrupt(t *testing.T) {
	eng := sim.New()
	var preempted *task.Request
	var preemptedAt sim.Time
	e := NewExec(eng, 0, testCfg(0, false),
		func(*task.Request) { t.Fatal("completed despite interrupt") },
		func(r *task.Request) {
			preempted = r
			preemptedAt = eng.Now()
		})
	req := task.New(1, 0, 100*time.Microsecond)
	e.Start(req)
	eng.After(10*time.Microsecond, func() {
		if !e.Interrupt() {
			t.Fatal("Interrupt() = false on busy core")
		}
	})
	eng.Run()
	if preempted == nil {
		t.Fatal("no preemption")
	}
	if preempted.Remaining != 90*time.Microsecond {
		t.Fatalf("remaining = %v, want 90µs", preempted.Remaining)
	}
	// fire 553 + save 120 after the 10µs mark.
	if preemptedAt != sim.Time(10673) {
		t.Fatalf("preempted at %v, want 10.673µs", preemptedAt)
	}
}

func TestInterruptAfterCompletionIsBenign(t *testing.T) {
	eng := sim.New()
	completed := false
	e := NewExec(eng, 0, testCfg(0, false),
		func(*task.Request) { completed = true },
		func(*task.Request) { t.Fatal("preempted a finished request") })
	e.Start(task.New(1, 0, time.Microsecond))
	eng.Run()
	if !completed {
		t.Fatal("not completed")
	}
	if e.Interrupt() {
		t.Fatal("Interrupt on idle core reported success")
	}
}

func TestInterruptExactlyAtCompletionInstant(t *testing.T) {
	// The §3.4.4 race: an interrupt arriving the same instant the request
	// completes must not preempt.
	eng := sim.New()
	completed := false
	e := NewExec(eng, 0, testCfg(0, false),
		func(*task.Request) { completed = true },
		func(*task.Request) { t.Fatal("preempted at completion instant") })
	e.Start(task.New(1, 0, time.Microsecond))
	eng.After(time.Microsecond, func() {
		if e.Interrupt() {
			t.Fatal("Interrupt succeeded at completion instant")
		}
	})
	eng.Run()
	if !completed {
		t.Fatal("not completed")
	}
}

func TestResumeCostChargedOnlyAfterPreemption(t *testing.T) {
	eng := sim.New()
	var completedAt sim.Time
	e := NewExec(eng, 0, testCfg(0, false),
		func(*task.Request) { completedAt = eng.Now() }, func(*task.Request) {})
	req := task.New(1, 0, 10*time.Microsecond)
	req.Remaining = 4 * time.Microsecond
	req.Preemptions = 1 // previously preempted elsewhere
	e.Start(req)
	eng.Run()
	// resume 120ns + 4µs remaining.
	if completedAt != sim.Time(4120) {
		t.Fatalf("completed at %v, want 4.12µs", completedAt)
	}
}

func TestStartOnBusyCorePanics(t *testing.T) {
	eng := sim.New()
	e := NewExec(eng, 0, testCfg(0, false), func(*task.Request) {}, nil)
	e.Start(task.New(1, 0, time.Microsecond))
	defer func() {
		if recover() == nil {
			t.Fatal("Start on busy core did not panic")
		}
	}()
	e.Start(task.New(2, 0, time.Microsecond))
}

func TestStartCompletedRequestPanics(t *testing.T) {
	eng := sim.New()
	e := NewExec(eng, 0, testCfg(0, false), func(*task.Request) {}, nil)
	req := task.New(1, 0, time.Microsecond)
	req.Remaining = 0
	defer func() {
		if recover() == nil {
			t.Fatal("Start on done request did not panic")
		}
	}()
	e.Start(req)
}

func TestBusyTrackingAcrossRequests(t *testing.T) {
	eng := sim.New()
	e := NewExec(eng, 0, testCfg(0, false), func(*task.Request) {}, nil)
	e.Track.Arm(0)
	e.Start(task.New(1, 0, time.Microsecond))
	eng.Run() // busy [0, 1µs]
	eng.RunUntil(sim.Time(3000))
	e.Start(task.New(2, 0, time.Microsecond))
	eng.Run() // busy [3µs, 4µs]
	got := e.Track.BusyFraction(eng.Now())
	if got != 0.5 {
		t.Fatalf("busy fraction = %v, want 0.5", got)
	}
	if e.Completions() != 2 {
		t.Fatalf("completions = %d", e.Completions())
	}
}

func TestWorkConservation(t *testing.T) {
	// Total work executed across arbitrary preemption patterns must equal
	// the request's service time: no work lost, none duplicated.
	eng := sim.New()
	cfg := testCfg(3*time.Microsecond, true)
	var done *task.Request
	var e *Exec
	e = NewExec(eng, 0, cfg,
		func(r *task.Request) { done = r },
		func(r *task.Request) {
			// Resume after a random-ish think time.
			eng.After(time.Duration(r.Preemptions)*500*time.Nanosecond, func() { e.Start(r) })
		})
	req := task.New(1, 0, 10*time.Microsecond)
	e.Start(req)
	eng.Run()
	if done == nil {
		t.Fatal("request never finished")
	}
	if req.Preemptions != 3 {
		t.Fatalf("preemptions = %d, want 3 (10µs at 3µs slices)", req.Preemptions)
	}
	if req.Remaining != 0 {
		t.Fatalf("remaining = %v", req.Remaining)
	}
}
