package wire

import (
	"encoding/binary"
	"fmt"
)

// Version is the mindgap protocol version carried in every header.
const Version = 1

// MsgType distinguishes the messages of the dispatcher/worker/client
// protocol (§3.4: request hand-off, completion/preemption notifications,
// responses, and the host→NIC load feedback the paper advocates for).
type MsgType uint8

// Protocol message types.
const (
	// MsgInvalid is the zero value; it never appears on the wire.
	MsgInvalid MsgType = iota
	// MsgRequest is a client request entering the system.
	MsgRequest
	// MsgAssign carries a request from the dispatcher to a worker.
	MsgAssign
	// MsgFinish tells the dispatcher a worker completed a request.
	MsgFinish
	// MsgPreempted tells the dispatcher a worker preempted a request; the
	// request re-enters the tail of the central queue (§3.4.1).
	MsgPreempted
	// MsgResponse is the worker's reply to the client.
	MsgResponse
	// MsgHello registers a worker with the dispatcher (live mode).
	MsgHello
	// MsgLoadInfo is host→NIC load feedback: instantaneous per-core load
	// the NIC folds into scheduling decisions (§3.1).
	MsgLoadInfo
	msgTypeCount // sentinel
)

var msgTypeNames = [...]string{
	"invalid", "request", "assign", "finish", "preempted", "response",
	"hello", "loadinfo",
}

// String returns the lowercase message-type name.
func (m MsgType) String() string {
	if int(m) < len(msgTypeNames) {
		return msgTypeNames[m]
	}
	return fmt.Sprintf("msgtype(%d)", uint8(m))
}

// Valid reports whether m is a defined, transmittable message type.
func (m MsgType) Valid() bool { return m > MsgInvalid && m < msgTypeCount }

// HeaderSize is the encoded size of a protocol header.
const HeaderSize = 32

// Header is the fixed-size mindgap application header. All multi-byte
// fields are big-endian.
//
// Layout:
//
//	offset size field
//	0      1    Version
//	1      1    Type
//	2      2    Flags
//	4      8    ReqID
//	12     4    ClientID
//	16     4    WorkerID
//	20     4    ServiceNS
//	24     4    RemainingNS
//	28     2    PayloadLen
//	30     2    Checksum (RFC 1071 over header with field zeroed)
type Header struct {
	Type  MsgType
	Flags uint16
	// ReqID identifies the request across its whole lifetime, including
	// across preemptions and reassignment to a different worker.
	ReqID uint64
	// ClientID routes the response back to the issuing client.
	ClientID uint32
	// WorkerID names the worker a message is addressed to or comes from.
	WorkerID uint32
	// ServiceNS is the synthetic service time in nanoseconds — the "fake
	// work that keeps the server busy for a specific amount of time" (§4.1).
	ServiceNS uint32
	// RemainingNS is the unfinished portion of a preempted request.
	RemainingNS uint32
	// PayloadLen is the number of payload bytes following the header.
	PayloadLen uint16
}

// MarshalTo writes the header into b (>= HeaderSize bytes).
func (h *Header) MarshalTo(b []byte) error {
	if len(b) < HeaderSize {
		return ErrShortBuffer
	}
	b[0] = Version
	b[1] = byte(h.Type)
	binary.BigEndian.PutUint16(b[2:4], h.Flags)
	binary.BigEndian.PutUint64(b[4:12], h.ReqID)
	binary.BigEndian.PutUint32(b[12:16], h.ClientID)
	binary.BigEndian.PutUint32(b[16:20], h.WorkerID)
	binary.BigEndian.PutUint32(b[20:24], h.ServiceNS)
	binary.BigEndian.PutUint32(b[24:28], h.RemainingNS)
	binary.BigEndian.PutUint16(b[28:30], h.PayloadLen)
	binary.BigEndian.PutUint16(b[30:32], 0)
	binary.BigEndian.PutUint16(b[30:32], internetChecksum(b[:HeaderSize]))
	return nil
}

// Unmarshal parses and validates the header from b.
func (h *Header) Unmarshal(b []byte) error {
	if len(b) < HeaderSize {
		return ErrShortBuffer
	}
	if b[0] != Version {
		return ErrBadVersion
	}
	if internetChecksum(b[:HeaderSize]) != 0 {
		return ErrBadChecksum
	}
	h.Type = MsgType(b[1])
	if !h.Type.Valid() {
		return fmt.Errorf("wire: invalid message type %d", b[1])
	}
	h.Flags = binary.BigEndian.Uint16(b[2:4])
	h.ReqID = binary.BigEndian.Uint64(b[4:12])
	h.ClientID = binary.BigEndian.Uint32(b[12:16])
	h.WorkerID = binary.BigEndian.Uint32(b[16:20])
	h.ServiceNS = binary.BigEndian.Uint32(b[20:24])
	h.RemainingNS = binary.BigEndian.Uint32(b[24:28])
	h.PayloadLen = binary.BigEndian.Uint16(b[28:30])
	return nil
}

// Datagram encoding: header + payload, the format live mode sends inside a
// kernel UDP socket (the kernel supplies Ethernet/IP/UDP).

// EncodeDatagram appends the encoded header and payload to dst and returns
// the extended slice. h.PayloadLen is set from payload.
func EncodeDatagram(dst []byte, h *Header, payload []byte) ([]byte, error) {
	if len(payload) > 0xffff {
		return dst, ErrBadLength
	}
	h.PayloadLen = uint16(len(payload))
	off := len(dst)
	dst = append(dst, make([]byte, HeaderSize)...)
	if err := h.MarshalTo(dst[off:]); err != nil {
		return dst[:off], err
	}
	return append(dst, payload...), nil
}

// DecodeDatagram parses a datagram produced by EncodeDatagram. The returned
// payload aliases b; callers that retain it past the buffer's reuse must
// copy.
func DecodeDatagram(b []byte, h *Header) (payload []byte, err error) {
	if err := h.Unmarshal(b); err != nil {
		return nil, err
	}
	if len(b) < HeaderSize+int(h.PayloadLen) {
		return nil, ErrBadLength
	}
	return b[HeaderSize : HeaderSize+int(h.PayloadLen)], nil
}
