package stats

import (
	"strings"
	"testing"
	"time"

	"mindgap/internal/sim"
)

func TestTimeSeriesSamplesAtCadence(t *testing.T) {
	eng := sim.New()
	v := 0.0
	ts := NewTimeSeries(eng, time.Microsecond, 0, func() float64 { v++; return v })
	eng.RunUntil(sim.Time(5500))
	if ts.Len() != 5 {
		t.Fatalf("samples = %d, want 5", ts.Len())
	}
	at, val := ts.At(2)
	if at != sim.Time(3000) || val != 3 {
		t.Fatalf("At(2) = %v, %v", at, val)
	}
	if ts.Max() != 5 || ts.Mean() != 3 {
		t.Fatalf("Max=%v Mean=%v", ts.Max(), ts.Mean())
	}
}

func TestTimeSeriesStop(t *testing.T) {
	eng := sim.New()
	ts := NewTimeSeries(eng, time.Microsecond, 0, func() float64 { return 1 })
	eng.RunUntil(sim.Time(3500))
	ts.Stop()
	eng.RunUntil(sim.Time(10000))
	if ts.Len() != 3 {
		t.Fatalf("samples after stop = %d, want 3", ts.Len())
	}
	// Engine must drain fully (no immortal timer).
	if eng.Pending() != 0 {
		t.Fatalf("pending events = %d after stop", eng.Pending())
	}
}

func TestTimeSeriesMaxSamples(t *testing.T) {
	eng := sim.New()
	ts := NewTimeSeries(eng, time.Microsecond, 4, func() float64 { return 0 })
	eng.Run() // drains: sampling self-terminates at max
	if ts.Len() != 4 {
		t.Fatalf("samples = %d, want 4", ts.Len())
	}
}

func TestTimeSeriesLastBelow(t *testing.T) {
	eng := sim.New()
	// Value spikes to 10 then decays by 1 per sample.
	v := 10.0
	ts := NewTimeSeries(eng, time.Microsecond, 12, func() float64 {
		v--
		return v + 1
	})
	eng.Run()
	at, ok := ts.LastBelow(4)
	if !ok {
		t.Fatal("never settled")
	}
	// Values: 10,9,...; ≤4 first at sample 7 (value 4? values are 10-…)
	// samples: i=0→10 ... i=6→4: settles at t=7µs.
	if at != sim.Time(7000) {
		t.Fatalf("settled at %v", at)
	}
	if _, ok := ts.LastBelow(-5); ok {
		t.Fatal("settled below impossible threshold")
	}
}

func TestTimeSeriesCSV(t *testing.T) {
	eng := sim.New()
	ts := NewTimeSeries(eng, time.Microsecond, 2, func() float64 { return 1.5 })
	eng.Run()
	var sb strings.Builder
	if err := ts.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "time_ns,value\n1000,1.5\n2000,1.5\n"
	if sb.String() != want {
		t.Fatalf("CSV = %q", sb.String())
	}
}

func TestTimeSeriesValidation(t *testing.T) {
	eng := sim.New()
	for _, f := range []func(){
		func() { NewTimeSeries(eng, 0, 0, func() float64 { return 0 }) },
		func() { NewTimeSeries(eng, time.Microsecond, 0, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid timeseries accepted")
				}
			}()
			f()
		}()
	}
}

func TestTimeSeriesNegativeIntervalRejected(t *testing.T) {
	eng := sim.New()
	defer func() {
		if recover() == nil {
			t.Fatal("negative interval accepted")
		}
	}()
	NewTimeSeries(eng, -time.Microsecond, 0, func() float64 { return 0 })
}

func TestTimeSeriesMaxCapacityStopsTimer(t *testing.T) {
	eng := sim.New()
	ts := NewTimeSeries(eng, time.Microsecond, 3, func() float64 { return 1 })
	eng.Run()
	if ts.Len() != 3 {
		t.Fatalf("samples = %d, want 3", ts.Len())
	}
	// The sampler must not re-arm once full: the engine is drained, and
	// running further adds nothing.
	if eng.Pending() != 0 {
		t.Fatalf("pending events = %d after reaching max", eng.Pending())
	}
	eng.RunUntil(sim.Time(100_000))
	if ts.Len() != 3 {
		t.Fatalf("samples grew past max: %d", ts.Len())
	}
}

// TestTimeSeriesSameInstantTieBreak pins the engine's deterministic
// same-instant ordering as observed through a probe: events at the same
// instant fire in scheduling order, so whether a mutation scheduled for
// the sampling instant lands before or after the sample depends only on
// whether it was scheduled before or after the sampler was created.
func TestTimeSeriesSameInstantTieBreak(t *testing.T) {
	// Sampler created first: its 1µs timer was scheduled before the
	// mutation at 1µs, so the sample reads the old value.
	eng := sim.New()
	v := 0.0
	ts := NewTimeSeries(eng, time.Microsecond, 1, func() float64 { return v })
	eng.At(sim.Time(1000), func() { v = 7 })
	eng.Run()
	if _, val := ts.At(0); val != 0 {
		t.Fatalf("sampler-first: sample = %v, want 0 (old value)", val)
	}

	// Mutation scheduled first: it fires before the sampler's timer at
	// the same instant, so the sample reads the new value.
	eng2 := sim.New()
	w := 0.0
	eng2.At(sim.Time(1000), func() { w = 7 })
	ts2 := NewTimeSeries(eng2, time.Microsecond, 1, func() float64 { return w })
	eng2.Run()
	if _, val := ts2.At(0); val != 7 {
		t.Fatalf("mutation-first: sample = %v, want 7 (new value)", val)
	}
}
