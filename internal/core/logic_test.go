package core

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
	"time"

	"mindgap/internal/task"
)

func req(id uint64) *task.Request { return task.New(id, 0, time.Microsecond) }

func TestLogicImmediateAssign(t *testing.T) {
	l := NewLogic(2, 1, LeastOutstanding)
	as := l.Enqueue(0, req(1))
	if len(as) != 1 || as[0].Req.ID != 1 {
		t.Fatalf("assignments = %v", as)
	}
	if l.Outstanding(as[0].Worker) != 1 {
		t.Fatal("credit not charged")
	}
	if l.QueueLen() != 0 {
		t.Fatal("queue not drained")
	}
}

func TestLogicCreditExhaustion(t *testing.T) {
	l := NewLogic(2, 1, LeastOutstanding)
	for i := uint64(1); i <= 2; i++ {
		if got := l.Enqueue(0, req(i)); len(got) != 1 {
			t.Fatalf("req %d assignments = %v", i, got)
		}
	}
	// Both workers at k=1: third request queues.
	if got := l.Enqueue(0, req(3)); len(got) != 0 {
		t.Fatalf("over-capacity assignment: %v", got)
	}
	if l.QueueLen() != 1 {
		t.Fatalf("QueueLen = %d", l.QueueLen())
	}
	// Completion frees a credit and dispatches the queued request.
	as := l.Complete(0)
	if len(as) != 1 || as[0].Req.ID != 3 || as[0].Worker != 0 {
		t.Fatalf("post-completion assignments = %v", as)
	}
}

func TestLogicFIFOOrder(t *testing.T) {
	l := NewLogic(1, 1, LeastOutstanding)
	l.Enqueue(0, req(1))
	l.Enqueue(0, req(2))
	l.Enqueue(0, req(3))
	for want := uint64(2); want <= 3; want++ {
		as := l.Complete(0)
		if len(as) != 1 || as[0].Req.ID != want {
			t.Fatalf("FIFO violated: got %v want id %d", as, want)
		}
	}
}

func TestLogicQueuingOptimizationStashing(t *testing.T) {
	// k=5: a single worker accepts five outstanding requests (§3.4.5).
	l := NewLogic(1, 5, LeastOutstanding)
	for i := uint64(1); i <= 7; i++ {
		l.Enqueue(0, req(i))
	}
	if l.Outstanding(0) != 5 {
		t.Fatalf("outstanding = %d, want 5", l.Outstanding(0))
	}
	if l.QueueLen() != 2 {
		t.Fatalf("QueueLen = %d, want 2", l.QueueLen())
	}
}

func TestLogicPreemptedRequeuesAtTail(t *testing.T) {
	l := NewLogic(1, 1, LeastOutstanding)
	r1 := req(1)
	l.Enqueue(0, r1) // assigned
	l.Enqueue(0, req(2))
	l.Enqueue(0, req(3))
	// Worker preempts r1: r1 goes behind 2 and 3.
	as := l.Preempted(100, 0, r1)
	if len(as) != 1 || as[0].Req.ID != 2 {
		t.Fatalf("post-preemption dispatch = %v, want id 2", as)
	}
	as = l.Complete(0)
	if as[0].Req.ID != 3 {
		t.Fatalf("next = %v, want id 3", as)
	}
	as = l.Complete(0)
	if as[0].Req.ID != 1 {
		t.Fatalf("requeued preempted request not at tail: %v", as)
	}
	if r1.Enqueued != 100 {
		t.Fatalf("Enqueued = %v, want 100", r1.Enqueued)
	}
}

func TestLogicPreferIdleWorker(t *testing.T) {
	l := NewLogic(3, 2, LeastOutstanding)
	a1 := l.Enqueue(0, req(1))
	a2 := l.Enqueue(0, req(2))
	a3 := l.Enqueue(0, req(3))
	// Three requests must land on three distinct workers before any worker
	// gets a second one.
	seen := map[int]bool{a1[0].Worker: true, a2[0].Worker: true, a3[0].Worker: true}
	if len(seen) != 3 {
		t.Fatalf("requests not spread across idle workers: %v %v %v", a1, a2, a3)
	}
}

func TestLogicRoundRobinFairness(t *testing.T) {
	l := NewLogic(4, 8, RoundRobin)
	counts := make([]int, 4)
	for i := uint64(0); i < 16; i++ {
		as := l.Enqueue(0, req(i))
		counts[as[0].Worker]++
	}
	for w, c := range counts {
		if c != 4 {
			t.Fatalf("worker %d got %d requests, want 4 (round robin)", w, c)
		}
	}
}

func TestLogicInformedSelection(t *testing.T) {
	l := NewLogic(3, 4, InformedLeastLoaded)
	l.ReportLoad(0, 50_000)
	l.ReportLoad(1, 1_000)
	l.ReportLoad(2, 90_000)
	as := l.Enqueue(0, req(1))
	if as[0].Worker != 1 {
		t.Fatalf("informed policy picked worker %d, want 1 (least loaded)", as[0].Worker)
	}
}

func TestLogicInformedFallsBackToOutstanding(t *testing.T) {
	l := NewLogic(2, 4, InformedLeastLoaded)
	// No load reports: behaves like least-outstanding.
	a1 := l.Enqueue(0, req(1))
	a2 := l.Enqueue(0, req(2))
	if a1[0].Worker == a2[0].Worker {
		t.Fatal("informed fallback did not spread load")
	}
}

func TestLogicCreditUnderflowPanics(t *testing.T) {
	l := NewLogic(1, 1, LeastOutstanding)
	defer func() {
		if recover() == nil {
			t.Fatal("Complete without outstanding did not panic")
		}
	}()
	l.Complete(0)
}

func TestLogicConstructorValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewLogic(0, 1, LeastOutstanding) },
		func() { NewLogic(1, 0, LeastOutstanding) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid constructor did not panic")
				}
			}()
			f()
		}()
	}
}

func TestPolicyString(t *testing.T) {
	for _, p := range []Policy{LeastOutstanding, RoundRobin, InformedLeastLoaded, Policy(99)} {
		if p.String() == "" {
			t.Fatal("empty policy name")
		}
	}
}

// TestQuickLogicInvariants drives Logic with a random event sequence and
// checks the credit/queue conservation invariants after every step.
func TestQuickLogicInvariants(t *testing.T) {
	f := func(seed uint64, workersRaw, kRaw uint8, steps uint16) bool {
		workers := int(workersRaw%8) + 1
		k := int(kRaw%6) + 1
		rng := rand.New(rand.NewPCG(seed, 42))
		l := NewLogic(workers, k, Policy(rng.IntN(3)))

		// inFlight[w] holds requests covered by w's credits.
		inFlight := make([]map[uint64]*task.Request, workers)
		for i := range inFlight {
			inFlight[i] = map[uint64]*task.Request{}
		}
		nextID := uint64(1)
		admitted, finished := 0, 0

		apply := func(as []Assignment) bool {
			for _, a := range as {
				if a.Worker < 0 || a.Worker >= workers || a.Req == nil {
					return false
				}
				if _, dup := inFlight[a.Worker][a.Req.ID]; dup {
					return false
				}
				inFlight[a.Worker][a.Req.ID] = a.Req
			}
			return true
		}

		for s := 0; s < int(steps%500); s++ {
			switch rng.IntN(3) {
			case 0: // new request
				if !apply(l.Enqueue(0, req(nextID))) {
					return false
				}
				nextID++
				admitted++
			case 1: // completion on a random busy worker
				w := rng.IntN(workers)
				if len(inFlight[w]) == 0 {
					continue
				}
				for id := range inFlight[w] {
					delete(inFlight[w], id)
					break
				}
				finished++
				if !apply(l.Complete(w)) {
					return false
				}
			case 2: // preemption on a random busy worker
				w := rng.IntN(workers)
				if len(inFlight[w]) == 0 {
					continue
				}
				var victim *task.Request
				for id, r := range inFlight[w] {
					victim = r
					delete(inFlight[w], id)
					break
				}
				if !apply(l.Preempted(0, w, victim)) {
					return false
				}
			}
			// Invariants.
			carried := 0
			for w := 0; w < workers; w++ {
				out := l.Outstanding(w)
				if out < 0 || out > k {
					return false
				}
				if out != len(inFlight[w]) {
					return false
				}
				carried += out
			}
			// Conservation: admitted = finished + carried + queued.
			if admitted != finished+carried+l.QueueLen() {
				return false
			}
			// Work conservation: queue non-empty ⇒ all credits exhausted.
			if l.QueueLen() > 0 {
				for w := 0; w < workers; w++ {
					if l.Outstanding(w) < k {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestAffinityPrefersLastWorker(t *testing.T) {
	// Whenever a preempted request resumes while its previous worker has
	// spare credit, affinity must choose that worker even though other
	// workers are also free.
	l := NewLogic(3, 1, LeastOutstanding)
	l.EnableAffinity()
	for trial := 0; trial < 20; trial++ {
		r := req(uint64(trial + 1))
		as := l.Enqueue(0, r)
		w := as[0].Worker
		// The core model stamps LastWorker when execution starts.
		r.LastWorker = w
		r.Preemptions = 1
		// Preempt r: its worker frees, the other two are also free —
		// affinity must send it straight back to w.
		as = l.Preempted(0, w, r)
		if len(as) != 1 || as[0].Req != r || as[0].Worker != w {
			t.Fatalf("trial %d: affinity resume = %v, want worker %d", trial, as, w)
		}
		// Clean up for the next trial.
		l.Complete(as[0].Worker)
	}
}

func TestAffinityFallsBackWhenLastWorkerBusy(t *testing.T) {
	l := NewLogic(2, 1, LeastOutstanding)
	l.EnableAffinity()
	r := req(1)
	as := l.Enqueue(0, r) // -> worker A
	aw := as[0].Worker
	r.LastWorker = aw
	r.Preemptions = 1
	l.Enqueue(0, req(2)) // worker B busy
	l.Enqueue(0, req(3)) // queued behind full credits
	// Preempt r from worker A: the queue head is request 3 (FIFO), which
	// is fresh, so it takes worker A; r waits at the tail.
	as = l.Preempted(0, aw, r)
	if len(as) != 1 || as[0].Req.ID != 3 {
		t.Fatalf("dispatch = %v, want fresh request 3", as)
	}
	// The other worker (not r's last) completes: r must still dispatch
	// there — affinity is a preference, not a constraint.
	other := 1 - aw
	as = l.Complete(other)
	if len(as) != 1 || as[0].Req != r || as[0].Worker != other {
		t.Fatalf("fallback dispatch = %v, want r on worker %d", as, other)
	}
}

func TestAffinityIgnoresFreshRequests(t *testing.T) {
	l := NewLogic(2, 2, LeastOutstanding)
	l.EnableAffinity()
	// Fresh requests must spread normally (no affinity distortion).
	a1 := l.Enqueue(0, req(1))
	a2 := l.Enqueue(0, req(2))
	if a1[0].Worker == a2[0].Worker {
		t.Fatal("fresh requests not spread across workers")
	}
}
