// Package allow implements the mindgap-lint suppression mechanism.
//
// A diagnostic may be silenced with a directive comment on the same
// line, or on the line immediately above it:
//
//	//lint:allow <analyzer> <reason>
//
// The reason is mandatory: a suppression without a justification is
// itself reported as a diagnostic (by the lintallow analyzer below), so
// every exemption in the tree carries a one-line explanation of why the
// nondeterminism (or deadlock risk) is acceptable there.
package allow

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
	"sync"

	"golang.org/x/tools/go/analysis"
)

// Prefix is the directive marker. Like all Go directives it must start
// at the beginning of a line comment with no space after "//".
const Prefix = "//lint:allow"

// Known lists the analyzer names a directive may reference. The
// lintallow analyzer rejects directives naming anything else, so a typo
// in a suppression cannot silently disable it.
var Known = map[string]bool{
	"simclock":   true,
	"maporder":   true,
	"floateq":    true,
	"lockedsend": true,
	"poolsafe":   true,
	"hotalloc":   true,
	"timerstop":  true,
}

// Directive is one parsed //lint:allow comment.
type Directive struct {
	Pos      token.Pos
	Line     int
	Analyzer string // "" if missing
	Reason   string // "" if missing
}

// parse splits the text of a single //-comment into a Directive.
// ok is false if the comment is not an allow directive at all.
func parse(c *ast.Comment) (d Directive, ok bool) {
	text := c.Text
	if !strings.HasPrefix(text, Prefix) {
		return d, false
	}
	rest := text[len(Prefix):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		// e.g. //lint:allowed — some other token, not our directive.
		return d, false
	}
	d.Pos = c.Slash
	// A second "//" ends the directive: anything after it is trailing
	// commentary, not part of the reason. (This also lets analyzer
	// testdata place `// want` expectations on the directive line.)
	if i := strings.Index(rest, "//"); i >= 0 {
		rest = rest[:i]
	}
	fields := strings.Fields(rest)
	if len(fields) > 0 {
		d.Analyzer = fields[0]
		d.Reason = strings.TrimSpace(strings.Join(fields[1:], " "))
	}
	return d, true
}

// directives caches the parsed directives of a file, keyed by line.
// The cache is global because analyzers from several passes share the
// same *ast.File values within one driver process.
var directives sync.Map // *ast.File -> map[int][]Directive

func fileDirectives(fset *token.FileSet, f *ast.File) map[int][]Directive {
	if v, ok := directives.Load(f); ok {
		return v.(map[int][]Directive)
	}
	m := make(map[int][]Directive)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			d, ok := parse(c)
			if !ok {
				continue
			}
			d.Line = fset.Position(c.Slash).Line
			m[d.Line] = append(m[d.Line], d)
		}
	}
	v, _ := directives.LoadOrStore(f, m)
	return v.(map[int][]Directive)
}

// Suppressed reports whether a diagnostic from the named analyzer at
// pos is covered by a well-formed allow directive (matching analyzer
// name AND a non-empty reason) on the same line or the line above.
func Suppressed(pass *analysis.Pass, analyzer string, pos token.Pos) bool {
	for _, f := range pass.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			line := pass.Fset.Position(pos).Line
			m := fileDirectives(pass.Fset, f)
			for _, d := range append(m[line], m[line-1]...) {
				if d.Analyzer == analyzer && d.Reason != "" {
					return true
				}
			}
			return false
		}
	}
	return false
}

// Reportf reports a diagnostic for pass.Analyzer unless it is
// suppressed by an allow directive. All mindgap-lint analyzers report
// through this function.
func Reportf(pass *analysis.Pass, pos token.Pos, format string, args ...any) {
	if Suppressed(pass, pass.Analyzer.Name, pos) {
		return
	}
	pass.Report(analysis.Diagnostic{
		Pos:      pos,
		Category: pass.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer validates the directives themselves: an allow comment with a
// missing or unknown analyzer name, or without a reason, is a
// diagnostic. This is what makes the reason mandatory.
var Analyzer = &analysis.Analyzer{
	Name: "lintallow",
	Doc:  "check that //lint:allow directives name a known analyzer and give a reason",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parse(c)
				if !ok {
					continue
				}
				switch {
				case d.Analyzer == "":
					pass.Reportf(c.Slash, "lint:allow directive is missing an analyzer name and a reason")
				case !Known[d.Analyzer]:
					pass.Reportf(c.Slash, "lint:allow directive names unknown analyzer %q", d.Analyzer)
				case d.Reason == "":
					pass.Reportf(c.Slash, "lint:allow %s directive is missing a reason: every suppression must say why it is safe", d.Analyzer)
				}
			}
		}
	}
	return nil, nil
}
