package experiment

import (
	"context"
	"time"

	"mindgap/internal/dist"
	"mindgap/internal/loadgen"
	"mindgap/internal/runner"
	"mindgap/internal/scenario"
	"mindgap/internal/sim"
	"mindgap/internal/stats"
	"mindgap/internal/task"
)

// AffinityResult is the X11 extension experiment: §3.1's scheduling
// affinity. With affinity off, a preempted request resumes on whichever
// worker frees first and pays a cache-migration penalty; with affinity on,
// the scheduler prefers the request's previous worker.
type AffinityResult struct {
	// MigrationsOff/On count cross-core resumes per configuration.
	MigrationsOff, MigrationsOn uint64
	// Preemptions counts preemptions in the affinity-on run (similar in
	// both; reported for rate context).
	Preemptions uint64
	// MeanOff/On and P99Off/On are client-observed latencies.
	MeanOff, MeanOn time.Duration
	P99Off, P99On   time.Duration
}

// affinityMeasure is the runner payload of one X11 simulation.
type affinityMeasure struct {
	Migrations, Preemptions uint64
	Mean, P99               time.Duration
}

// migrationCounter is the extra surface the affinity experiment needs
// beyond scenario.System; the offload system implements it.
type migrationCounter interface {
	Migrations() uint64
	Preemptions() uint64
}

// AffinityAblationWith measures X11 on rn, running the affinity-off and
// affinity-on configurations (the two series of the table-affinity
// preset) concurrently. The workload is preemption-heavy: 10% of
// requests run 100 µs against a 10 µs slice, so every long request is
// preempted ~9 times and each resume either stays local or migrates.
func AffinityAblationWith(ctx context.Context, rn *runner.Runner, q Quality) (AffinityResult, error) {
	p := mustPreset("table-affinity")
	point := func(i int) (runner.Point[affinityMeasure], error) {
		sp := p.SpecFor(i)
		f, err := scenario.Build(sp)
		if err != nil {
			return runner.Point[affinityMeasure]{}, err
		}
		svc, err := dist.Parse(sp.Workload)
		if err != nil {
			return runner.Point[affinityMeasure]{}, err
		}
		eq := qualityFor(sp, q)
		rps := specLoads(sp, svc)[0]
		return runner.Point[affinityMeasure]{
			Key: specPointKey(p.ID, sp, eq, rps),
			Run: func() affinityMeasure {
				eng := sim.New()
				var lat stats.Histogram
				completions := 0
				target := eq.Warmup + eq.Measure
				sys := f(eng, nil, func(r *task.Request) {
					completions++
					if completions > eq.Warmup {
						lat.Record(r.Latency(eng.Now()))
					}
					if completions >= target {
						eng.Halt()
					}
				})
				loadgen.New(eng, loadgen.Config{RPS: rps, Service: svc, Seed: eq.Seed}, sys.Inject).Start()
				expected := time.Duration(float64(target) / rps * float64(time.Second))
				eng.At(sim.Time(8*expected+50*time.Millisecond), eng.Halt)
				eng.Run()
				mc := sys.(migrationCounter)
				return affinityMeasure{
					Migrations:  mc.Migrations(),
					Preemptions: mc.Preemptions(),
					Mean:        lat.Mean(),
					P99:         lat.P99(),
				}
			},
		}, nil
	}
	offPt, err := point(0)
	if err != nil {
		return AffinityResult{}, err
	}
	onPt, err := point(1)
	if err != nil {
		return AffinityResult{}, err
	}
	runs, err := runner.RunOne(ctx, rn, p.ID,
		runner.Series[affinityMeasure]{Points: []runner.Point[affinityMeasure]{offPt, onPt}})
	if len(runs) < 2 {
		return AffinityResult{}, err
	}
	off, on := runs[0], runs[1]
	return AffinityResult{
		MigrationsOff: off.Migrations,
		MigrationsOn:  on.Migrations,
		Preemptions:   on.Preemptions,
		MeanOff:       off.Mean,
		MeanOn:        on.Mean,
		P99Off:        off.P99,
		P99On:         on.P99,
	}, err
}

// AffinityAblation measures X11 on the default parallel runner.
func AffinityAblation(q Quality) AffinityResult {
	r, _ := AffinityAblationWith(context.Background(), nil, q)
	return r
}
