// Flow identity: the per-flow state record behind the flow-keyed
// workload layer. Where Request models one unit of application work, a
// Flow models the network-level identity that SmartNIC offload engines
// key their state on — the 5-tuple a rule table matches, the connection
// a PnO-TCP engine owns. Systems that offload per-flow state (the
// flowrule kind) read and mutate the record; systems that ignore flow
// identity never touch it.
package task

import "mindgap/internal/sim"

// FlowID uniquely identifies one flow for its whole lifetime (a
// stand-in for the 5-tuple hash a real NIC would match on).
type FlowID uint64

// FlowClass partitions flows by size, after the elephant/rat split of
// the SmartNIC offload literature: a few heavy-hitter elephants carry
// most packets, a long tail of rats carries the rest.
type FlowClass uint8

const (
	// ClassRat is a short flow: a handful of packets, dead before any
	// offload decision can pay off.
	ClassRat FlowClass = iota
	// ClassElephant is a long flow: the packet train that makes a
	// fast-path rule worth its insertion cost and table slot.
	ClassElephant
)

// Flow is the pooled per-flow state record. It is referenced from two
// sides with different lifetimes: the load generator owns the workload
// view (Remaining, Retired) and a rule-table system owns the NIC view
// (Seen, Resident, PendingInsert, the LRU links). Neither side may free
// the record while the other still holds it — ReleaseIfIdle is the one
// release point, callable from either side, and a no-op until every
// reference is gone.
type Flow struct {
	// ID uniquely identifies the flow.
	ID FlowID
	// Class is the flow's size class (elephant or rat).
	Class FlowClass
	// Remaining is how many packets the workload has yet to transmit.
	Remaining uint32
	// InFlight counts batches emitted by the generator but not yet
	// observed by the sink's classifier.
	InFlight uint32
	// Seen counts packets the NIC classifier has observed — the signal
	// offload-threshold policies act on.
	Seen uint64
	// Resident marks an installed fast-path rule for this flow.
	Resident bool
	// PendingInsert marks a rule sitting in the insertion pipeline.
	PendingInsert bool
	// Retired marks the workload side done with the flow (train
	// exhausted). The record stays live until the NIC side lets go.
	Retired bool
	// LastHit is the last fast-path hit instant (idle-timeout eviction).
	LastHit sim.Time
	// LRUPrev and LRUNext link resident flows in recency order. They are
	// owned by the rule-table system; everything else must leave them be.
	LRUPrev, LRUNext *Flow
	// Gen counts reuses of this struct through a FlowPool, with the same
	// snapshot-and-compare discipline as Request.Gen.
	Gen uint32
	// pool is the owning pool (nil for plain-allocated flows), so
	// ReleaseIfIdle can be called by components that never saw the pool.
	pool *FlowPool
	// pooled guards against double release.
	pooled bool
}

// NewFlow creates an unpooled flow with the full packet train remaining.
func NewFlow(id FlowID, class FlowClass, train uint32) *Flow {
	return &Flow{ID: id, Class: class, Remaining: train}
}

// ReleaseIfIdle returns the record to its pool once nothing references
// it: the workload retired the flow, no batch is in flight toward the
// classifier, and the NIC holds neither a resident rule nor a pending
// insertion. Both the generator and the rule-table system call it after
// clearing their reference; whichever call drops the last one frees the
// record. It reports whether the record was released.
//
//mindgap:noalloc
func (f *Flow) ReleaseIfIdle() bool {
	if !f.Retired || f.InFlight != 0 || f.Resident || f.PendingInsert {
		return false
	}
	if f.pool == nil {
		// Plain-allocated flow: the GC collects it once the caller's
		// reference goes away.
		return true
	}
	f.pool.Put(f)
	return true
}

// FlowPool recycles Flow records with the same generation-guarded
// discipline as Pool: each reuse bumps Gen, Put panics on double
// release, and the free list is capped at the measured high-water mark
// of concurrently live flows — so a million-flow point holds a
// million-record footprint, not a leak.
type FlowPool struct {
	free []*Flow
	live int // currently checked-out flows
	high int // peak live; caps the free list
}

// Get returns a flow with the full packet train remaining, recycled
// from the pool when possible.
//
//mindgap:noalloc
func (p *FlowPool) Get(id FlowID, class FlowClass, train uint32) *Flow {
	p.live++
	if p.live > p.high {
		p.high = p.live
	}
	n := len(p.free)
	if n == 0 {
		f := NewFlow(id, class, train)
		f.pool = p
		return f
	}
	f := p.free[n-1]
	p.free[n-1] = nil
	p.free = p.free[:n-1]
	*f = Flow{
		ID:        id,
		Class:     class,
		Remaining: train,
		Gen:       f.Gen, // survives recycling; bumped at Put
		pool:      p,
	}
	return f
}

// Put releases a flow back to the pool. The caller must hold the only
// live reference; ReleaseIfIdle is the usual (reference-counted) way
// in. Put panics on double release.
//
//mindgap:noalloc
func (p *FlowPool) Put(f *Flow) {
	if f.pooled {
		panic("task: Put on an already-released flow")
	}
	f.pooled = true
	f.Gen++
	f.LRUPrev, f.LRUNext = nil, nil
	p.live--
	if len(p.free) < p.high {
		p.free = append(p.free, f)
	}
}

// Live returns the number of checked-out flows.
func (p *FlowPool) Live() int { return p.live }

// HighWater returns the peak number of simultaneously live flows.
func (p *FlowPool) HighWater() int { return p.high }
