package driver_test

import (
	"testing"

	"mindgap/internal/lint"
	"mindgap/internal/lint/driver"
)

// TestRepoLintClean is the same gate CI enforces: the full analyzer
// suite over the whole module must produce zero diagnostics. Any
// finding is either a real determinism/deadlock hazard to fix or needs
// an explicit //lint:allow <analyzer> <reason>.
func TestRepoLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module; skipped in -short")
	}
	diags, err := driver.Run([]string{"mindgap/..."}, lint.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
