// Command mindgap-sim runs a single simulated configuration and prints its
// measured point — the interactive counterpart to mindgap-bench's fixed
// figure grids. With -replicates (or -seeds) the point is measured across
// several independent seeds — fanned out in parallel by the sweep runner —
// and reported with cross-seed error bars.
//
// Usage:
//
//	mindgap-sim -system offload -workers 4 -outstanding 4 -slice 10µs \
//	            -dist bimodal:0.995:5µs:100µs -rps 400000
//	mindgap-sim -system shinjuku -workers 3 -rps 300000
//	mindgap-sim -system rss|zygos|flowdir|rpcvalet -workers 4 ...
//	mindgap-sim -system idealnic -cxl -linerate ...
//	mindgap-sim -replicates 5 -j 5      # error bars across seeds 7..11
//	mindgap-sim -seeds 1,2,3 -cache ~/.mindgap
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"time"

	"mindgap/internal/dist"
	"mindgap/internal/experiment"
	"mindgap/internal/params"
	"mindgap/internal/runner"
	"mindgap/internal/systems/idealnic"
)

func main() {
	var (
		system      = flag.String("system", "offload", "offload, shinjuku, rss, zygos, flowdir, rpcvalet, idealnic")
		workers     = flag.Int("workers", 4, "worker cores")
		outstanding = flag.Int("outstanding", 4, "per-worker outstanding limit (offload/idealnic)")
		slice       = flag.Duration("slice", 10*time.Microsecond, "preemption quantum (0 disables)")
		distSpec    = flag.String("dist", "bimodal:0.995:5µs:100µs", "service-time distribution")
		rps         = flag.Float64("rps", 400_000, "offered load")
		warmup      = flag.Int("warmup", 20_000, "warmup completions to discard")
		measure     = flag.Int("measure", 100_000, "completions to measure")
		seed        = flag.Uint64("seed", 7, "workload seed")
		replicates  = flag.Int("replicates", 0, "measure across this many consecutive seeds starting at -seed (0 = single run)")
		seedList    = flag.String("seeds", "", "comma-separated explicit seed list (overrides -replicates)")
		jobs        = flag.Int("j", runtime.GOMAXPROCS(0), "max concurrently simulated replicates")
		timeout     = flag.Duration("timeout", 0, "deadline; replicates completed by then are still summarized (0 = none)")
		cacheDir    = flag.String("cache", "", "directory for the on-disk result cache (empty = no caching)")
		zipfN       = flag.Int("zipf-keys", 0, "key-space size for zipf keys (0 = no keys)")
		zipfS       = flag.Float64("zipf-skew", 0.99, "zipf skew")
		cxl         = flag.Bool("cxl", false, "idealnic: coherent-memory communication (§5.1-2)")
		lineRate    = flag.Bool("linerate", false, "idealnic: hardware line-rate scheduler (§5.1-1)")
		directIRQ   = flag.Bool("directirq", false, "idealnic: NIC-posted interrupts (§5.1-3)")
	)
	flag.Parse()

	svc, err := dist.Parse(*distSpec)
	if err != nil {
		log.Fatalf("mindgap-sim: %v", err)
	}
	p := params.Default()

	var factory experiment.Factory
	switch *system {
	case "offload":
		factory = experiment.OffloadFactory(p, *workers, *outstanding, *slice)
	case "shinjuku":
		factory = experiment.ShinjukuFactory(p, *workers, *slice)
	case "rss":
		factory = experiment.RSSFactory(p, *workers)
	case "zygos":
		factory = experiment.ZygOSFactory(p, *workers)
	case "flowdir":
		factory = experiment.FlowDirFactory(p, *workers)
	case "rpcvalet":
		factory = experiment.RPCValetFactory(p, *workers)
	case "idealnic":
		factory = experiment.IdealNICFactory(idealnic.Config{
			P: p, Workers: *workers, Outstanding: *outstanding, Slice: *slice,
			CXL: *cxl, LineRate: *lineRate, DirectInterrupts: *directIRQ,
		})
	default:
		fmt.Fprintf(os.Stderr, "mindgap-sim: unknown system %q\n", *system)
		os.Exit(2)
	}

	cfg := experiment.PointConfig{
		Factory:    factory,
		Service:    svc,
		OfferedRPS: *rps,
		Warmup:     *warmup,
		Measure:    *measure,
	}
	if *zipfN > 0 {
		cfg.Keys = dist.NewZipfKeys(*zipfN, *zipfS)
	}

	seeds, err := replicateSeeds(*seedList, *replicates, *seed)
	if err != nil {
		log.Fatalf("mindgap-sim: %v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	rn := &runner.Runner{Parallelism: *jobs}
	if *cacheDir != "" {
		c, err := runner.OpenCache(*cacheDir)
		if err != nil {
			log.Fatalf("mindgap-sim: %v", err)
		}
		rn.Cache = c
	}

	// sysKey describes the system configuration for the result cache (the
	// factory itself is a closure the runner cannot hash).
	sysKey := fmt.Sprintf("sim|%s|workers=%d|k=%d|slice=%s|cxl=%t|linerate=%t|directirq=%t",
		*system, *workers, *outstanding, *slice, *cxl, *lineRate, *directIRQ)

	start := time.Now()
	if len(seeds) > 0 {
		rep, err := experiment.RunPointReplicatedWith(ctx, rn, sysKey, cfg, seeds)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mindgap-sim: %v — %d/%d replicates completed\n",
				err, len(rep.Runs), len(seeds))
		}
		if len(rep.Runs) == 0 {
			os.Exit(1)
		}
		fmt.Printf("system=%s workload=%v offered=%.0f rps replicates=%d seeds=%v\n",
			rep.Runs[0].SystemName, svc, *rps, len(rep.Runs), seeds[:len(rep.Runs)])
		fmt.Printf("p99 = %v ± %v   achieved = %.0f ± %.0f rps   saturated=%t\n",
			rep.MeanP99, rep.P99StdDev, rep.MeanAchieved, rep.AchievedStdDev, rep.AnySaturated)
		fmt.Printf("relative p99 spread = %.2f%% (std dev / mean across seeds)\n",
			rep.RelativeP99Spread()*100)
		for i, r := range rep.Runs {
			fmt.Printf("  seed %-6d %s\n", seeds[i], r.Point)
		}
		fmt.Printf("walltime=%v\n", time.Since(start).Round(time.Millisecond))
		if err != nil {
			os.Exit(1)
		}
		return
	}

	cfg.Seed = *seed
	r := experiment.RunPoint(cfg)
	fmt.Printf("system=%s workload=%v offered=%.0f rps\n", r.SystemName, svc, *rps)
	fmt.Printf("%s\n", r.Point)
	fmt.Printf("mean=%v max=%v preemptions=%d drops=%d simtime=%v walltime=%v\n",
		r.Mean, r.Max, r.Preemptions, r.Dropped,
		r.SimTime.Round(time.Millisecond), time.Since(start).Round(time.Millisecond))
}

// replicateSeeds resolves the -seeds / -replicates flags: an explicit list
// wins; otherwise n consecutive seeds starting at base. An empty result
// means single-run mode.
func replicateSeeds(list string, n int, base uint64) ([]uint64, error) {
	if list != "" {
		var out []uint64
		for _, f := range strings.Split(list, ",") {
			f = strings.TrimSpace(f)
			if f == "" {
				continue
			}
			v, err := strconv.ParseUint(f, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad -seeds entry %q: %v", f, err)
			}
			out = append(out, v)
		}
		if len(out) == 0 {
			return nil, fmt.Errorf("-seeds given but empty")
		}
		return out, nil
	}
	if n <= 0 {
		return nil, nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = base + uint64(i)
	}
	return out, nil
}
