package experiment

import (
	"testing"
	"time"
)

// These integration tests pin the qualitative claims of each paper figure
// — who wins, roughly by how much, and where the knees fall. They run the
// real figure harness at reduced quality, so they are the slowest tests in
// the repository; -short skips them.

func shapeQuality() Quality { return Quality{Warmup: 1_000, Measure: 8_000, Seed: 7} }

func TestFigure2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure harness test")
	}
	f := Figure2(shapeQuality())
	offload, shin := f.Series[0], f.Series[1]
	// Offload (4 workers) must saturate at a strictly higher load than
	// Shinjuku (3 workers).
	if offload.SaturationPoint() <= shin.SaturationPoint() {
		t.Fatalf("offload sat %v ≤ shinjuku sat %v",
			offload.SaturationPoint(), shin.SaturationPoint())
	}
	// Both must hold low two-digit-µs p99 at low load (preemption keeps
	// the bimodal tail in check).
	for _, s := range f.Series {
		if p99 := s.Results[0].P99; p99 > 60*time.Microsecond {
			t.Fatalf("%s low-load p99 = %v, want well below 60µs", s.Label, p99)
		}
	}
}

func TestFigure3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure harness test")
	}
	f := Figure3(shapeQuality())
	w16, w4 := f.Series[0], f.Series[1]
	t4 := func(k int) float64 { return w4.Results[k-1].AchievedRPS }
	t16 := func(k int) float64 { return w16.Results[k-1].AchievedRPS }
	// 4 workers: large gain from k=1 to k=5 (paper: +250%).
	gain4 := t4(5)/t4(1) - 1
	if gain4 < 1.5 {
		t.Fatalf("4-worker k=1→5 gain = %.0f%%, want ≥ 150%%", gain4*100)
	}
	// Throughput must be non-decreasing in k for both counts.
	for k := 2; k <= 7; k++ {
		if t4(k) < 0.98*t4(k-1) || t16(k) < 0.98*t16(k-1) {
			t.Fatalf("throughput decreased with k at k=%d", k)
		}
	}
	// Both plateau at the same dispatcher cap (within 10%).
	if r := t16(7) / t4(7); r < 0.9 || r > 1.1 {
		t.Fatalf("plateaus differ: 16w=%.0f 4w=%.0f", t16(7), t4(7))
	}
	// 16 workers must dominate 4 workers at every k.
	for k := 1; k <= 7; k++ {
		if t16(k) < t4(k)-1 {
			t.Fatalf("16 workers below 4 workers at k=%d", k)
		}
	}
}

func TestFigure4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure harness test")
	}
	f := Figure4(shapeQuality())
	offload, shin := f.Series[0], f.Series[1]
	// The extra worker must push offload's knee past Shinjuku's by
	// roughly the worker ratio (4/3 ≈ 1.33; allow 1.15+).
	ratio := offload.SaturationPoint() / shin.SaturationPoint()
	if ratio < 1.15 {
		t.Fatalf("offload/shinjuku saturation ratio = %.2f, want ≥ 1.15", ratio)
	}
}

func TestFigure5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure harness test")
	}
	f := Figure5(shapeQuality())
	offload, shin := f.Series[0], f.Series[1]
	if offload.SaturationPoint() <= shin.SaturationPoint() {
		t.Fatalf("offload sat %v ≤ shinjuku sat %v (16 vs 15 workers at 100µs)",
			offload.SaturationPoint(), shin.SaturationPoint())
	}
	// At 100µs service, latency floors sit just above 100µs for both.
	for _, s := range f.Series {
		p99 := s.Results[0].P99
		if p99 < 100*time.Microsecond || p99 > 150*time.Microsecond {
			t.Fatalf("%s low-load p99 = %v, want ≈110µs", s.Label, p99)
		}
	}
}

func TestFigure6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure harness test")
	}
	f := Figure6(shapeQuality())
	offload, shin := f.Series[0], f.Series[1]
	// The crossover claim: Shinjuku greatly outperforms the offload at
	// 1µs and high worker counts (paper shows ≥ 2×).
	ratio := shin.PeakThroughput() / offload.PeakThroughput()
	if ratio < 1.8 {
		t.Fatalf("shinjuku/offload peak ratio = %.2f, want ≥ 1.8", ratio)
	}
	// Offload workers must be starved at its saturation point — the §5.1
	// bottleneck diagnosis.
	last := offload.Results[len(offload.Results)-1]
	if last.WorkerIdleFraction < 0.5 {
		t.Fatalf("offload worker idle = %.2f at saturation, want > 0.5", last.WorkerIdleFraction)
	}
}

func TestFigure6AblationsRemoveCrossover(t *testing.T) {
	if testing.Short() {
		t.Skip("figure harness test")
	}
	q := shapeQuality()
	stock := Figure6(q)
	stockOffload := stock.Series[0].PeakThroughput()
	shinPeak := stock.Series[1].PeakThroughput()

	lr := Figure6LineRate(q)
	lrPeak := lr.Series[0].PeakThroughput()
	if lrPeak < 1.5*stockOffload {
		t.Fatalf("line-rate ablation peak %.0f not ≥ 1.5× stock offload %.0f", lrPeak, stockOffload)
	}
	ideal := lr.Series[1].PeakThroughput()
	if ideal < shinPeak {
		t.Fatalf("full ideal NIC peak %.0f below shinjuku %.0f — crossover not removed", ideal, shinPeak)
	}
}

func TestWorkerWaitDirection(t *testing.T) {
	if testing.Short() {
		t.Skip("figure harness test")
	}
	r := WorkerWait(shapeQuality())
	// T3's direction: at saturation, 1µs-workload workers wait far more
	// than 100µs-workload workers (paper: 110% more).
	if r.IdleAt1us <= r.IdleAt100us {
		t.Fatalf("idle@1µs %.3f ≤ idle@100µs %.3f", r.IdleAt1us, r.IdleAt100us)
	}
	if r.ExtraWaitFrac < 1.0 {
		t.Fatalf("extra waiting = %.0f%%, want ≥ 100%%", r.ExtraWaitFrac*100)
	}
}

func TestBaselineComparisonShape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure harness test")
	}
	f := BaselineComparison(Quality{Warmup: 500, Measure: 5_000, Seed: 7})
	byName := map[string]Series{}
	for _, s := range f.Series {
		byName[s.Label] = s
	}
	// The preemptive centralized systems must hold a low p99 at moderate
	// load where run-to-completion baselines suffer head-of-line blocking.
	at := func(label string, idx int) Result {
		s := byName[label]
		if idx >= len(s.Results) {
			idx = len(s.Results) - 1
		}
		return s.Results[idx]
	}
	// Index 7 = 400k offered (ρ ≈ 0.55 for 4 workers).
	offload := at("shinjuku-offload (4 workers, k=4)", 7)
	rss := at("rss/ix (4 workers)", 7)
	if !offload.Saturated && !rss.Saturated && offload.P99 >= rss.P99 {
		t.Fatalf("offload p99 %v not below rss p99 %v at moderate load", offload.P99, rss.P99)
	}
}
