package wire

// Frame is a fully parsed Ethernet/IPv4/UDP/mindgap frame. Decoding fills a
// caller-owned Frame in place and Payload aliases the input buffer
// (gopacket's DecodingLayerParser idiom), so the hot path allocates nothing.
type Frame struct {
	Eth     Ethernet
	IP      IPv4
	UDP     UDP
	App     Header
	Payload []byte
}

// FrameOverhead is the total encoded size of all headers in a frame.
const FrameOverhead = EthernetSize + IPv4Size + UDPSize + HeaderSize

// WireSize returns the full on-wire size of the frame, honouring Ethernet's
// 64-byte minimum frame size (60 bytes before the 4-byte FCS, which this
// codec does not materialize but sizing accounts for).
func (f *Frame) WireSize() int {
	n := FrameOverhead + len(f.Payload)
	if n < 60 {
		n = 60
	}
	return n + 4 // FCS
}

// EncodeFrame writes the frame into buf and returns the number of bytes
// used. Length and checksum fields of all layers are computed here, so
// callers only populate addresses, ports and the application header.
func EncodeFrame(buf []byte, f *Frame) (int, error) {
	if len(f.Payload) > 0xffff-IPv4Size-UDPSize-HeaderSize {
		return 0, ErrBadLength
	}
	total := FrameOverhead + len(f.Payload)
	if len(buf) < total {
		return 0, ErrShortBuffer
	}
	f.Eth.EtherType = EtherTypeIPv4
	if err := f.Eth.MarshalTo(buf); err != nil {
		return 0, err
	}
	f.IP.Protocol = IPProtoUDP
	f.IP.TotalLen = uint16(IPv4Size + UDPSize + HeaderSize + len(f.Payload))
	if f.IP.TTL == 0 {
		f.IP.TTL = 64
	}
	if err := f.IP.MarshalTo(buf[EthernetSize:]); err != nil {
		return 0, err
	}
	f.UDP.Length = uint16(UDPSize + HeaderSize + len(f.Payload))
	if err := f.UDP.MarshalTo(buf[EthernetSize+IPv4Size:]); err != nil {
		return 0, err
	}
	f.App.PayloadLen = uint16(len(f.Payload))
	if err := f.App.MarshalTo(buf[EthernetSize+IPv4Size+UDPSize:]); err != nil {
		return 0, err
	}
	copy(buf[FrameOverhead:], f.Payload)
	return total, nil
}

// DecodeFrame parses data into f, validating every layer. f.Payload aliases
// data.
func DecodeFrame(data []byte, f *Frame) error {
	if err := f.Eth.Unmarshal(data); err != nil {
		return err
	}
	if f.Eth.EtherType != EtherTypeIPv4 {
		return ErrBadEtherType
	}
	rest := data[EthernetSize:]
	if err := f.IP.Unmarshal(rest); err != nil {
		return err
	}
	if f.IP.Protocol != IPProtoUDP {
		return ErrBadIPProtocol
	}
	if int(f.IP.TotalLen) > len(rest) {
		return ErrBadLength
	}
	rest = rest[IPv4Size:f.IP.TotalLen]
	if err := f.UDP.Unmarshal(rest); err != nil {
		return err
	}
	if int(f.UDP.Length) > len(rest) {
		return ErrBadLength
	}
	rest = rest[UDPSize:f.UDP.Length]
	var err error
	f.Payload, err = DecodeDatagram(rest, &f.App)
	return err
}
